module dualgraph

go 1.24

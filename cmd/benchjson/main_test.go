package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, metrics, ok := parseLine("BenchmarkSimRoundLoop-8   \t     100\t  11922420 ns/op\t 1468550 B/op\t      37 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "BenchmarkSimRoundLoop" {
		t.Fatalf("name = %q", name)
	}
	want := map[string]float64{"iterations": 100, "ns/op": 11922420, "B/op": 1468550, "allocs/op": 37}
	for k, v := range want {
		if metrics[k] != v {
			t.Fatalf("metrics[%q] = %v, want %v", k, metrics[k], v)
		}
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	name, metrics, ok := parseLine("BenchmarkTable1DualStrongSelect/n=33-4  12  93812 ns/op  410.0 rounds")
	if !ok || name != "BenchmarkTable1DualStrongSelect/n=33" {
		t.Fatalf("name = %q ok = %v", name, ok)
	}
	if metrics["rounds"] != 410 {
		t.Fatalf("rounds = %v", metrics["rounds"])
	}
}

func TestIgnoresNonBenchmarkLines(t *testing.T) {
	for _, line := range []string{"goos: linux", "PASS", "ok  \tdualgraph\t2.1s", ""} {
		if _, _, ok := parseLine(line); ok {
			t.Fatalf("line %q wrongly recognized", line)
		}
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	in := `goos: linux
BenchmarkA-8    10    100 ns/op    5 B/op    1 allocs/op
BenchmarkB/n=3-8    20    200 ns/op
PASS
`
	var sb strings.Builder
	if err := run(strings.NewReader(in), &sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	if doc.Benchmarks[0].Name != "BenchmarkA" || doc.Benchmarks[0].Metrics["ns/op"] != 100 {
		t.Fatalf("unexpected first entry: %+v", doc.Benchmarks[0])
	}
	if doc.Benchmarks[1].Name != "BenchmarkB/n=3" || doc.Benchmarks[1].Metrics["ns/op"] != 200 {
		t.Fatalf("unexpected second entry: %+v", doc.Benchmarks[1])
	}
}

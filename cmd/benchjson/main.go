// Command benchjson converts `go test -bench` output on stdin into a JSON
// object mapping benchmark name to its measured metrics, for CI artifacts
// that track the performance trajectory across PRs:
//
//	go test -run NONE -bench . -benchmem . | benchjson > BENCH.json
//
// Standard metrics (ns/op, B/op, allocs/op) and custom ReportMetric values
// (e.g. rounds, trials/op) are all captured.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run parses benchmark lines and writes the JSON report. Non-benchmark
// lines (headers, PASS/ok trailers) are ignored.
func run(r io.Reader, w io.Writer) error {
	results := map[string]map[string]float64{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, metrics, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if _, seen := results[name]; !seen {
			order = append(order, name)
		}
		results[name] = metrics
	}
	if err := sc.Err(); err != nil {
		return err
	}
	ordered := make([]map[string]any, 0, len(order))
	for _, name := range order {
		ordered = append(ordered, map[string]any{"name": name, "metrics": results[name]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"benchmarks": ordered})
}

// parseLine handles one `Benchmark<Name>-P  N  <value> <unit> ...` line.
func parseLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix so names are machine-independent.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", nil, false
	}
	metrics := map[string]float64{"iterations": float64(iters)}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = value
	}
	return name, metrics, true
}

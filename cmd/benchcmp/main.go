// Command benchcmp diffs two benchjson reports (see cmd/benchjson) and fails
// when a gated benchmark regresses beyond a threshold. CI runs it against the
// previous run's BENCH artifact so a PR cannot silently give back the round-loop
// or epoch-swap wins:
//
//	benchcmp -old BENCH_baseline.json -new BENCH_pr7.json
//	benchcmp -old a.json -new b.json -match 'BenchmarkSimRoundLoop' -threshold 0.05
//
// Only benchmarks whose name matches -match and that appear in BOTH files are
// gated; benchmarks present on one side only are reported but never fail the
// run (new benchmarks have no baseline, retired ones no successor).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

// report mirrors benchjson's output shape.
type report struct {
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	var (
		oldPath   = fs.String("old", "", "baseline benchjson report (required)")
		newPath   = fs.String("new", "", "candidate benchjson report (required)")
		match     = fs.String("match", "^Benchmark(SimRoundLoop|EpochSwap|AdaptiveAdversaryRound)", "regexp selecting the gated benchmarks")
		metric    = fs.String("metric", "ns/op", "metric to compare")
		threshold = fs.Float64("threshold", 0.10, "maximum allowed fractional regression (0.10 = +10%)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("both -old and -new are required")
	}
	if *threshold < 0 {
		return fmt.Errorf("-threshold must be >= 0, got %g", *threshold)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		return fmt.Errorf("bad -match pattern: %w", err)
	}
	oldRep, err := load(*oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(*newPath)
	if err != nil {
		return err
	}

	names := map[string]bool{}
	for name := range oldRep {
		if re.MatchString(name) {
			names[name] = true
		}
	}
	for name := range newRep {
		if re.MatchString(name) {
			names[name] = true
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no benchmark in either report matches %q", *match)
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)

	var regressed []string
	for _, name := range ordered {
		oldV, inOld := oldRep[name][*metric]
		newV, inNew := newRep[name][*metric]
		switch {
		case !inOld:
			fmt.Fprintf(w, "%-56s new (no baseline, not gated)  %s = %.4g\n", name, *metric, newV)
		case !inNew:
			fmt.Fprintf(w, "%-56s (absent from candidate, not gated)\n", name)
		case oldV == 0:
			// A zero baseline admits no fractional comparison: 0 -> anything
			// would read as an infinite regression. Report, don't gate.
			fmt.Fprintf(w, "%-56s %s 0 -> %.4g  (zero baseline, not gated)\n", name, *metric, newV)
		default:
			delta := (newV - oldV) / oldV
			verdict := "ok"
			if delta > *threshold {
				verdict = "REGRESSION"
				regressed = append(regressed, name)
			}
			fmt.Fprintf(w, "%-56s %s %.4g -> %.4g  (%+.1f%%)  %s\n",
				name, *metric, oldV, newV, 100*delta, verdict)
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% on %s: %v",
			len(regressed), 100**threshold, *metric, regressed)
	}
	return nil
}

// load reads a benchjson report into name -> metrics.
func load(path string) (map[string]map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Name] = b.Metrics
	}
	return out, nil
}

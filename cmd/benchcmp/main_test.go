package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport writes a benchjson-shaped report with the given name -> ns/op
// values and returns its path.
func writeReport(t *testing.T, name string, nsop map[string]float64) string {
	t.Helper()
	var entries []string
	for bench, v := range nsop {
		entries = append(entries,
			fmt.Sprintf(`{"name":%q,"metrics":{"ns/op":%g,"allocs/op":5}}`, bench, v))
	}
	path := filepath.Join(t.TempDir(), name)
	body := `{"benchmarks":[` + strings.Join(entries, ",") + `]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWithinThresholdPasses(t *testing.T) {
	oldPath := writeReport(t, "old.json", map[string]float64{
		"BenchmarkSimRoundLoop": 1000,
		"BenchmarkEpochSwap":    500,
	})
	newPath := writeReport(t, "new.json", map[string]float64{
		"BenchmarkSimRoundLoop": 1080, // +8%: inside the 10% gate
		"BenchmarkEpochSwap":    300,  // improvement
	})
	var out strings.Builder
	if err := run([]string{"-old", oldPath, "-new", newPath}, &out); err != nil {
		t.Fatalf("within-threshold comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("expected ok verdicts in output:\n%s", out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	oldPath := writeReport(t, "old.json", map[string]float64{
		"BenchmarkSimRoundLoop":                 1000,
		"BenchmarkEpochSwapIncremental/pDown=1": 200,
	})
	newPath := writeReport(t, "new.json", map[string]float64{
		"BenchmarkSimRoundLoop":                 1200, // +20%: beyond the gate
		"BenchmarkEpochSwapIncremental/pDown=1": 205,
	})
	var out strings.Builder
	err := run([]string{"-old", oldPath, "-new", newPath}, &out)
	if err == nil {
		t.Fatalf("20%% regression must fail the gate; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkSimRoundLoop") {
		t.Fatalf("error should name the regressed benchmark, got: %v", err)
	}
	if strings.Contains(err.Error(), "EpochSwapIncremental") {
		t.Fatalf("+2.5%% is within threshold and must not be reported: %v", err)
	}
}

func TestUnmatchedBenchmarksNotGated(t *testing.T) {
	// A benchmark outside the -match set may regress arbitrarily.
	oldPath := writeReport(t, "old.json", map[string]float64{
		"BenchmarkSimRoundLoop": 1000,
		"BenchmarkGridSweep":    100,
	})
	newPath := writeReport(t, "new.json", map[string]float64{
		"BenchmarkSimRoundLoop": 900,
		"BenchmarkGridSweep":    900, // 9x slower but not gated
	})
	var out strings.Builder
	if err := run([]string{"-old", oldPath, "-new", newPath}, &out); err != nil {
		t.Fatalf("unmatched benchmark must not be gated: %v", err)
	}
	if strings.Contains(out.String(), "BenchmarkGridSweep") {
		t.Fatalf("unmatched benchmark should not appear in the report:\n%s", out.String())
	}
}

func TestNewBenchmarkWithoutBaselinePasses(t *testing.T) {
	oldPath := writeReport(t, "old.json", map[string]float64{
		"BenchmarkSimRoundLoop": 1000,
	})
	newPath := writeReport(t, "new.json", map[string]float64{
		"BenchmarkSimRoundLoop":        1000,
		"BenchmarkSimRoundLoopDynamic": 5000, // new in this PR: no baseline
	})
	var out strings.Builder
	if err := run([]string{"-old", oldPath, "-new", newPath}, &out); err != nil {
		t.Fatalf("baseline-less benchmark must not fail the gate: %v", err)
	}
	if !strings.Contains(out.String(), "no baseline") {
		t.Fatalf("baseline-less benchmark should be reported as ungated:\n%s", out.String())
	}
}

func TestZeroBaselineMetricNotGated(t *testing.T) {
	// A metric that was 0 in the baseline (e.g. allocs/op of an
	// allocation-free loop) admits no fractional comparison; it must be
	// reported informationally, never as an infinite regression.
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(
		`{"benchmarks":[{"name":"BenchmarkSimRoundLoop","metrics":{"allocs/op":0}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(
		`{"benchmarks":[{"name":"BenchmarkSimRoundLoop","metrics":{"allocs/op":2}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-old", oldPath, "-new", newPath, "-metric", "allocs/op"}, &out); err != nil {
		t.Fatalf("zero baseline must not gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "zero baseline") {
		t.Fatalf("zero-baseline metric should be labelled:\n%s", out.String())
	}
}

func TestNoMatchesIsAnError(t *testing.T) {
	oldPath := writeReport(t, "old.json", map[string]float64{"BenchmarkGridSweep": 100})
	newPath := writeReport(t, "new.json", map[string]float64{"BenchmarkGridSweep": 100})
	var out strings.Builder
	if err := run([]string{"-old", oldPath, "-new", newPath}, &out); err == nil {
		t.Fatal("an empty gate set should be an error, not a silent pass")
	}
}

func TestMissingFlagsAndFiles(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-old", "x.json"}, &out); err == nil {
		t.Fatal("missing -new must error")
	}
	if err := run([]string{"-old", "nope.json", "-new", "nope.json"}, &out); err == nil {
		t.Fatal("unreadable report must error")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFloors(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "floors.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleOutput = `ok  	dualgraph/internal/sim	0.154s	coverage: 77.3% of statements
ok  	dualgraph/internal/graph	0.024s	coverage: 94.7% of statements
?   	dualgraph/cmd/dgsim	[no test files]
ok  	dualgraph/internal/new	0.01s	coverage: 12.0% of statements
`

func TestCoverCheckPasses(t *testing.T) {
	floors := writeFloors(t, "# floors\ndualgraph/internal/sim 75\ndualgraph/internal/graph 92\n")
	var out strings.Builder
	if err := run(floors, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatalf("gate failed on passing coverage: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no floor set") {
		t.Fatalf("unfloored package not reported:\n%s", out.String())
	}
}

func TestCoverCheckFailsBelowFloor(t *testing.T) {
	floors := writeFloors(t, "dualgraph/internal/sim 90\n")
	var out strings.Builder
	if err := run(floors, strings.NewReader(sampleOutput), &out); err == nil {
		t.Fatalf("gate passed with 77.3%% against floor 90:\n%s", out.String())
	}
}

func TestCoverCheckFailsOnMissingPackage(t *testing.T) {
	floors := writeFloors(t, "dualgraph/internal/vanished 50\n")
	var out strings.Builder
	if err := run(floors, strings.NewReader(sampleOutput), &out); err == nil {
		t.Fatalf("gate passed with a floored package absent from the input:\n%s", out.String())
	}
}

func TestCoverCheckRejectsMalformedFloors(t *testing.T) {
	for _, bad := range []string{
		"dualgraph/internal/sim\n",
		"dualgraph/internal/sim 101\n",
		"dualgraph/internal/sim abc\n",
		"dualgraph/internal/sim 50\ndualgraph/internal/sim 60\n",
	} {
		floors := writeFloors(t, bad)
		if err := run(floors, strings.NewReader(""), &strings.Builder{}); err == nil {
			t.Fatalf("malformed floors %q accepted", bad)
		}
	}
}

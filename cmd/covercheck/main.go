// Command covercheck gates per-package statement coverage against a
// checked-in floors file:
//
//	go test -short -cover ./... | covercheck -floors coverage_floors.txt
//
// Input is `go test -cover` output; every "ok ... coverage: X% of
// statements" line is matched against the floors file (lines of
// "<import-path> <minimum-percent>", '#' comments). A package below its
// floor fails the gate, as does a floored package missing from the input —
// a silently skipped package must not read as a passing one. Packages
// without a floor are reported informationally, so newly added packages
// surface until they get a line in the floors file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	floorsPath := flag.String("floors", "coverage_floors.txt", "path to the coverage floors file")
	flag.Parse()
	if err := run(*floorsPath, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
}

// coverLine matches `go test -cover` package result lines, e.g.
// "ok  	dualgraph/internal/sim	0.154s	coverage: 77.3% of statements".
var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+\S+\s+coverage:\s+([0-9.]+)% of statements`)

func run(floorsPath string, in io.Reader, out io.Writer) error {
	floors, err := readFloors(floorsPath)
	if err != nil {
		return err
	}
	got := make(map[string]float64)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := coverLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		pct, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("unparsable coverage %q for %s", m[2], m[1])
		}
		got[m[1]] = pct
	}
	if err := sc.Err(); err != nil {
		return err
	}

	var pkgs []string
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	failed := 0
	for _, pkg := range pkgs {
		floor := floors[pkg]
		pct, ok := got[pkg]
		switch {
		case !ok:
			fmt.Fprintf(out, "FAIL %-40s no coverage line (floor %.0f%%): package skipped or broken\n", pkg, floor)
			failed++
		case pct < floor:
			fmt.Fprintf(out, "FAIL %-40s %5.1f%% < floor %.0f%%\n", pkg, pct, floor)
			failed++
		default:
			fmt.Fprintf(out, "ok   %-40s %5.1f%% >= floor %.0f%%\n", pkg, pct, floor)
		}
	}
	var unfloored []string
	for pkg := range got {
		if _, ok := floors[pkg]; !ok {
			unfloored = append(unfloored, pkg)
		}
	}
	sort.Strings(unfloored)
	for _, pkg := range unfloored {
		fmt.Fprintf(out, "info %-40s %5.1f%% (no floor set)\n", pkg, got[pkg])
	}
	if failed > 0 {
		return fmt.Errorf("%d package(s) below their coverage floor", failed)
	}
	return nil
}

// readFloors parses the floors file: one "<import-path> <percent>" pair per
// line, blank lines and '#' comments ignored.
func readFloors(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<package> <floor>\", got %q", path, lineNo, line)
		}
		floor, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || floor < 0 || floor > 100 {
			return nil, fmt.Errorf("%s:%d: floor %q is not a percentage", path, lineNo, fields[1])
		}
		if _, dup := floors[fields[0]]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate floor for %s", path, lineNo, fields[0])
		}
		floors[fields[0]] = floor
	}
	return floors, sc.Err()
}

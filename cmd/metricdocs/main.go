// Command metricdocs prints docs/METRICS.md to stdout: the markdown catalog
// of every metric registered in the default registry — name, type, labels,
// and help text. The underscore imports below pull in every instrumented
// layer so their package-level registrations run; a new instrumented package
// must be added here to appear in the catalog. `make docs-metrics` pipes the
// output into the committed file and CI fails when the two drift
// (`make docs-check`), so the metric catalog can never silently fall behind
// the instrumentation.
package main

import (
	"os"

	"dualgraph/internal/metrics"

	_ "dualgraph/internal/engine"
	_ "dualgraph/internal/graph"
	_ "dualgraph/internal/progress"
	_ "dualgraph/internal/service"
	_ "dualgraph/internal/sim"
)

func main() {
	metrics.Default.WriteMarkdown(os.Stdout)
}

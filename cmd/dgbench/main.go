// Command dgbench regenerates the paper's tables and figures as measured
// experiments. Run all of them or one by ID (see DESIGN.md for the index):
//
//	dgbench -experiment all
//	dgbench -experiment table1-thm12 -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dualgraph/internal/engine"
	"dualgraph/internal/expt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dgbench", flag.ContinueOnError)
	var (
		id      = fs.String("experiment", "all", "experiment id, 'all', or 'list'")
		quick   = fs.Bool("quick", false, "smaller sweeps and trial counts")
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "trial engine worker count (0 = one per CPU); output is identical at any value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := expt.Config{
		Out:    w,
		Quick:  *quick,
		Seed:   *seed,
		Engine: engine.Config{Workers: *workers},
	}

	switch *id {
	case "list":
		for _, e := range expt.All() {
			fmt.Fprintf(w, "%-26s %s\n", e.ID, e.Title)
		}
		return nil
	case "all":
		for i, e := range expt.All() {
			if i > 0 {
				fmt.Fprintln(w)
			}
			if err := e.Run(cfg); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	default:
		e, ok := expt.ByID(*id)
		if !ok {
			var ids []string
			for _, x := range expt.All() {
				ids = append(ids, x.ID)
			}
			return fmt.Errorf("unknown experiment %q; known: %s", *id, strings.Join(ids, ", "))
		}
		return e.Run(cfg)
	}
}

// Command dgbench regenerates the paper's tables and figures as measured
// experiments. Run all of them or one by ID (see DESIGN.md for the index):
//
//	dgbench -experiment all
//	dgbench -experiment table1-thm12 -quick
//
// With -reduce-bench N it instead measures streaming-reducer throughput:
// an N-trial memory-bounded sweep of the standard Table 2 workload
// (Harmonic Broadcast vs the greedy collider on the clique-bridge network),
// reporting trials/s and the streamed aggregate.
//
//	dgbench -reduce-bench 100000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/expt"
	"dualgraph/internal/graph"
	"dualgraph/internal/registry"
	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dgbench", flag.ContinueOnError)
	var (
		id          = fs.String("experiment", "all", "experiment id, 'all', or 'list'")
		quick       = fs.Bool("quick", false, "smaller sweeps and trial counts")
		seed        = fs.Int64("seed", 1, "random seed")
		workers     = fs.Int("workers", 0, "trial engine worker count (0 = one per CPU); output is identical at any value")
		reduceBench = fs.Int("reduce-bench", 0, "if > 0, skip experiments and measure streaming-reducer throughput over this many trials")
		list        = fs.Bool("list", false, "print registered topologies/algorithms/adversaries/schedules with parameter docs, then exit (use -experiment list for the experiment index)")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile  = fs.String("memprofile", "", "write a post-GC heap profile to this file after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		// Open eagerly so a bad path fails before minutes of work, write on
		// the way out so the profile reflects live heap at end of run.
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dgbench: memprofile:", err)
			}
			f.Close()
		}()
	}
	if *list {
		// -list is a pure query; reject any other explicitly-set flag
		// instead of silently ignoring it (the reduce-bench policy).
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name != "list" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-list prints the registry and runs nothing; drop -%s", conflict)
		}
		registry.WriteList(w)
		return nil
	}
	if *reduceBench > 0 {
		// Reject explicitly-set experiment flags rather than silently
		// ignoring them (the same failure mode dgsim -v used to have).
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "experiment" || f.Name == "quick" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-reduce-bench runs the reducer throughput workload, not experiments; drop -%s", conflict)
		}
		return runReduceBench(w, *reduceBench, *seed, *workers)
	}
	cfg := expt.Config{
		Out:    w,
		Quick:  *quick,
		Seed:   *seed,
		Engine: engine.Config{Workers: *workers},
	}

	switch *id {
	case "list":
		for _, e := range expt.All() {
			fmt.Fprintf(w, "%-26s %s\n", e.ID, e.Title)
		}
		return nil
	case "all":
		for i, e := range expt.All() {
			if i > 0 {
				fmt.Fprintln(w)
			}
			if err := e.Run(cfg); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	default:
		e, ok := expt.ByID(*id)
		if !ok {
			var ids []string
			for _, x := range expt.All() {
				ids = append(ids, x.ID)
			}
			return fmt.Errorf("unknown experiment %q; known: %s", *id, strings.Join(ids, ", "))
		}
		return e.Run(cfg)
	}
}

// runReduceBench measures the streaming reducer end to end: trials
// independently seeded Harmonic Broadcast runs against the greedy collider
// on the clique-bridge network (the Table 2 workload), folded into shard
// accumulators without retaining any per-trial results. The aggregate line
// is deterministic in (seed, trials); the throughput line is the only
// wall-clock-dependent output.
func runReduceBench(w io.Writer, trials int, seed int64, workers int) error {
	const n = 65
	d, err := graph.CliqueBridge(n)
	if err != nil {
		return err
	}
	alg, err := core.NewHarmonicForN(n, 0.02)
	if err != nil {
		return err
	}
	bound := int(2 * float64(n*alg.T) * stats.HarmonicNumber(n))
	simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: seed, MaxRounds: bound}
	ec := engine.Config{Workers: workers}
	fmt.Fprintf(w, "reduce-bench: topology=clique-bridge n=%d alg=%s adversary=greedy-collider rule=CR4 start=async seed=%d trials=%d shards=%d\n",
		n, alg.Name(), seed, trials, engine.Shards(trials))
	start := time.Now()
	sum, err := engine.RunStream(d, alg, adversary.GreedyCollider{}, simCfg, trials, ec, engine.StreamConfig{})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	mean, _ := sum.Rounds.Mean()
	p50, _ := sum.Rounds.Quantile(0.5)
	p95, _ := sum.Rounds.Quantile(0.95)
	maxR, _ := sum.Rounds.Max()
	fmt.Fprintf(w, "completed=%d/%d rounds: mean=%.2f p50=%.2f p95=%.2f max=%.0f\n",
		sum.Completed, sum.Trials, mean, p50, p95, maxR)
	fmt.Fprintf(w, "throughput: %.0f trials/s (%d trials in %v)\n",
		float64(trials)/elapsed.Seconds(), trials, elapsed.Round(time.Millisecond))
	return nil
}

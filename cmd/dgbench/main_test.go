package main

import (
	"strings"
	"testing"
)

func runOutput(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestListIncludesEveryExperiment(t *testing.T) {
	out := runOutput(t, "-experiment", "list")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 15 {
		t.Fatalf("experiment list suspiciously short: %d lines", len(lines))
	}
	for _, id := range []string{"table1-classical-rr", "table2-dual-harmonic", "fig-ssf-size", "ext-pref-attach"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %q missing from list:\n%s", id, out)
		}
	}
}

// TestRegistryList golden-checks -list: the shared registry rendering with
// entry and parameter doc lines (the full format is pinned in
// internal/registry's tests; here we pin the CLI wiring and one line of
// each kind).
func TestRegistryList(t *testing.T) {
	out := runOutput(t, "-list")
	for _, want := range []string{
		"topologies:",
		"algorithms:",
		"adversaries:",
		"  clique-bridge      Theorem 2 network: (n-1)-clique with a receiver behind a bridge; G' complete",
		"      epsilon          float  failure probability in the paper's T = ceil(12 ln(n/ε)) (default 0.02)",
		"  benign             never uses unreliable edges (the classical static model)",
		"schedules:",
		"  static             fixed topology for the whole run (the historical behaviour; the default)",
		"      p-down           float  per-epoch per-node crash probability (default 0.2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q\n---\n%s", want, out)
		}
	}
}

func TestRegistryListRejectsOtherFlags(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-list", "-experiment", "all"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "-experiment") {
		t.Fatalf("err = %v, want an -experiment conflict error", err)
	}
}

func TestSSFExperimentGolden(t *testing.T) {
	out := runOutput(t, "-experiment", "fig-ssf-size", "-quick", "-seed", "1")
	lines := strings.Split(out, "\n")
	want := []string{
		"== fig-ssf-size — strongly selective family sizes: Kautz-Singleton vs round robin",
		"   paper: Section 5, Definition 6, Theorem 7, constructive note [19]",
	}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
	if !strings.Contains(out, "kautz-singleton") {
		t.Fatalf("table body missing:\n%s", out)
	}
}

// TestReduceBench smoke-tests the reducer-throughput mode: the workload
// banner and the deterministic aggregate line are pinned; the throughput
// line (the only wall-clock output) just has to be present.
func TestReduceBench(t *testing.T) {
	out := runOutput(t, "-reduce-bench", "16", "-seed", "3", "-workers", "2")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("reduce-bench printed %d lines, want 3:\n%s", len(lines), out)
	}
	if want := "reduce-bench: topology=clique-bridge n=65 alg=harmonic(T=98) adversary=greedy-collider rule=CR4 start=async seed=3 trials=16 shards=16"; lines[0] != want {
		t.Fatalf("banner = %q, want %q", lines[0], want)
	}
	if !strings.HasPrefix(lines[1], "completed=16/16 rounds: mean=") {
		t.Fatalf("aggregate line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "trials/s") {
		t.Fatalf("throughput line = %q", lines[2])
	}
}

// TestExperimentsByteIdenticalAcrossWorkers is the dgbench half of the
// static-schedule byte-identity property: the Table 2 dual-harmonic
// experiment (whose cells now run through the schedule-aware engine) must
// print exactly the output the pre-dynamics binary printed, at every worker
// count. The pinned lines were captured from the binary built at the
// previous commit with -quick -seed 1.
func TestExperimentsByteIdenticalAcrossWorkers(t *testing.T) {
	var first string
	for _, workers := range []string{"1", "2", "8"} {
		out := runOutput(t, "-experiment", "table2-dual-harmonic", "-quick", "-seed", "1", "-workers", workers)
		if first == "" {
			first = out
		} else if out != first {
			t.Fatalf("workers=%s output differs from workers=1", workers)
		}
		for _, want := range []string{
			"clique-bridge     17  81  405            9472         0.043         5/5\n",
			"complete-layered  65  98  4605           60633  0.076  5/5\n",
			"random                                   fit: rounds ≈ 27.59·n^0.96\n",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("workers=%s output missing pre-dynamics golden line %q:\n%s", workers, want, out)
			}
		}
	}
}

// TestDynamicExperimentRuns smoke-tests the dynamics extension experiment:
// every schedule cell completes and the schedule axis labels surface.
func TestDynamicExperimentRuns(t *testing.T) {
	out := runOutput(t, "-experiment", "ext-dynamic", "-quick", "-seed", "1", "-workers", "2")
	for _, want := range []string{
		"== ext-dynamic",
		"sched=static",
		`sched=churn{"p-down":0.3}`,
		"sched=waypoint",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ext-dynamic output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "nope"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}

// TestReduceBenchRejectsExperimentFlags: explicitly-set experiment flags
// must fail loudly instead of being silently ignored by -reduce-bench.
func TestReduceBenchRejectsExperimentFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-reduce-bench", "8", "-experiment", "table1-thm2"},
		{"-reduce-bench", "8", "-quick"},
	} {
		var sb strings.Builder
		err := run(args, &sb)
		if err == nil || !strings.Contains(err.Error(), "-reduce-bench") {
			t.Errorf("run(%v) error = %v, want a -reduce-bench conflict error", args, err)
		}
	}
}

package main

import (
	"strings"
	"testing"
)

func runOutput(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestListIncludesEveryExperiment(t *testing.T) {
	out := runOutput(t, "-experiment", "list")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 15 {
		t.Fatalf("experiment list suspiciously short: %d lines", len(lines))
	}
	for _, id := range []string{"table1-classical-rr", "table2-dual-harmonic", "fig-ssf-size", "ext-pref-attach"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %q missing from list:\n%s", id, out)
		}
	}
}

// TestRegistryList golden-checks -list: the shared registry rendering with
// entry and parameter doc lines (the full format is pinned in
// internal/registry's tests; here we pin the CLI wiring and one line of
// each kind).
func TestRegistryList(t *testing.T) {
	out := runOutput(t, "-list")
	for _, want := range []string{
		"topologies:",
		"algorithms:",
		"adversaries:",
		"  clique-bridge      Theorem 2 network: (n-1)-clique with a receiver behind a bridge; G' complete",
		"      epsilon          float  failure probability in the paper's T = ceil(12 ln(n/ε)) (default 0.02)",
		"  benign             never uses unreliable edges (the classical static model)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q\n---\n%s", want, out)
		}
	}
}

func TestRegistryListRejectsOtherFlags(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-list", "-experiment", "all"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "-experiment") {
		t.Fatalf("err = %v, want an -experiment conflict error", err)
	}
}

func TestSSFExperimentGolden(t *testing.T) {
	out := runOutput(t, "-experiment", "fig-ssf-size", "-quick", "-seed", "1")
	lines := strings.Split(out, "\n")
	want := []string{
		"== fig-ssf-size — strongly selective family sizes: Kautz-Singleton vs round robin",
		"   paper: Section 5, Definition 6, Theorem 7, constructive note [19]",
	}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
	if !strings.Contains(out, "kautz-singleton") {
		t.Fatalf("table body missing:\n%s", out)
	}
}

// TestReduceBench smoke-tests the reducer-throughput mode: the workload
// banner and the deterministic aggregate line are pinned; the throughput
// line (the only wall-clock output) just has to be present.
func TestReduceBench(t *testing.T) {
	out := runOutput(t, "-reduce-bench", "16", "-seed", "3", "-workers", "2")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("reduce-bench printed %d lines, want 3:\n%s", len(lines), out)
	}
	if want := "reduce-bench: topology=clique-bridge n=65 alg=harmonic(T=98) adversary=greedy-collider rule=CR4 start=async seed=3 trials=16 shards=16"; lines[0] != want {
		t.Fatalf("banner = %q, want %q", lines[0], want)
	}
	if !strings.HasPrefix(lines[1], "completed=16/16 rounds: mean=") {
		t.Fatalf("aggregate line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "trials/s") {
		t.Fatalf("throughput line = %q", lines[2])
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "nope"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}

// TestReduceBenchRejectsExperimentFlags: explicitly-set experiment flags
// must fail loudly instead of being silently ignored by -reduce-bench.
func TestReduceBenchRejectsExperimentFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-reduce-bench", "8", "-experiment", "table1-thm2"},
		{"-reduce-bench", "8", "-quick"},
	} {
		var sb strings.Builder
		err := run(args, &sb)
		if err == nil || !strings.Contains(err.Error(), "-reduce-bench") {
			t.Errorf("run(%v) error = %v, want a -reduce-bench conflict error", args, err)
		}
	}
}

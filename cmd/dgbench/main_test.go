package main

import (
	"strings"
	"testing"
)

func runOutput(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestListIncludesEveryExperiment(t *testing.T) {
	out := runOutput(t, "-experiment", "list")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 15 {
		t.Fatalf("experiment list suspiciously short: %d lines", len(lines))
	}
	for _, id := range []string{"table1-classical-rr", "table2-dual-harmonic", "fig-ssf-size", "ext-pref-attach"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %q missing from list:\n%s", id, out)
		}
	}
}

func TestSSFExperimentGolden(t *testing.T) {
	out := runOutput(t, "-experiment", "fig-ssf-size", "-quick", "-seed", "1")
	lines := strings.Split(out, "\n")
	want := []string{
		"== fig-ssf-size — strongly selective family sizes: Kautz-Singleton vs round robin",
		"   paper: Section 5, Definition 6, Theorem 7, constructive note [19]",
	}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
	if !strings.Contains(out, "kautz-singleton") {
		t.Fatalf("table body missing:\n%s", out)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "nope"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}

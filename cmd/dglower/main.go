// Command dglower runs the paper's lower-bound constructions against a
// chosen deterministic algorithm and reports the forced round counts.
//
//	dglower -game thm2 -n 32 -alg round-robin
//	dglower -game thm12 -n 33 -alg strong-select
//	dglower -game thm4 -n 18 -k 6
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dualgraph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dglower:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dglower", flag.ContinueOnError)
	var (
		game    = fs.String("game", "thm2", "lower-bound game: thm2|thm4|thm12")
		n       = fs.Int("n", 32, "network size (thm12 needs odd n with n-1 a power of two)")
		algName = fs.String("alg", "round-robin", "deterministic algorithm: round-robin|strong-select (thm4: harmonic|uniform)")
		k       = fs.Int("k", 0, "round budget for thm4 (default n/3)")
		trials  = fs.Int("trials", 200, "Monte-Carlo trials for thm4")
		seed    = fs.Int64("seed", 1, "random seed (thm4)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *game {
	case "thm2":
		alg, err := deterministicAlg(*algName, *n)
		if err != nil {
			return err
		}
		res, err := dualgraph.RunTheorem2Game(*n, alg, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Theorem 2 game: n=%d alg=%s\n", *n, alg.Name())
		fmt.Fprintf(w, "  forced rounds: %d (bound: > n-3 = %d)\n", res.ForcedRounds, *n-3)
		fmt.Fprintf(w, "  worst bridge process: %d\n", res.WorstBridgePid)
		fmt.Fprintf(w, "  2-broadcastability witness: %d rounds\n", res.WitnessRounds)
		return nil

	case "thm12":
		alg, err := deterministicAlg(*algName, *n)
		if err != nil {
			return err
		}
		res, err := dualgraph.RunTheorem12Game(*n, alg, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Theorem 12 game: n=%d alg=%s\n", *n, alg.Name())
		fmt.Fprintf(w, "  forced rounds: %d (theory bound: %d)\n", res.ForcedRounds, res.TheoryBound)
		fmt.Fprintf(w, "  stages: %d/%d, extensions: %v\n", res.StagesCompleted, res.StagesPlanned, res.StageExtensions)
		if res.HitHorizon {
			fmt.Fprintln(w, "  note: a stage hit the horizon; the algorithm failed to keep isolating")
		}
		return nil

	case "thm4":
		budget := *k
		if budget == 0 {
			budget = *n / 3
		}
		var alg dualgraph.Algorithm
		var err error
		switch *algName {
		case "harmonic", "round-robin": // round-robin default rewritten to harmonic for thm4
			alg, err = dualgraph.NewHarmonicForN(*n, 0.1)
		case "uniform":
			alg, err = dualgraph.NewUniform(0.25)
		default:
			return fmt.Errorf("thm4 needs a randomized algorithm, got %q", *algName)
		}
		if err != nil {
			return err
		}
		res, err := dualgraph.RunTheorem4(*n, budget, *trials, alg, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Theorem 4 Monte-Carlo: n=%d k=%d trials=%d alg=%s\n", *n, budget, *trials, alg.Name())
		fmt.Fprintf(w, "  min success probability: %.3f (worst bridge pid %d)\n", res.MinSuccess, res.WorstBridgePid)
		fmt.Fprintf(w, "  Theorem 4 bound k/(n-2): %.3f\n", res.Bound)
		return nil
	}
	return fmt.Errorf("unknown game %q", *game)
}

func deterministicAlg(name string, n int) (dualgraph.Algorithm, error) {
	switch name {
	case "round-robin":
		return dualgraph.NewRoundRobin(), nil
	case "strong-select":
		return dualgraph.NewStrongSelect(n)
	}
	return nil, fmt.Errorf("unknown deterministic algorithm %q", name)
}

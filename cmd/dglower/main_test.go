package main

import (
	"strings"
	"testing"
)

func runLines(t *testing.T, args ...string) []string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
}

func TestTheorem2Golden(t *testing.T) {
	lines := runLines(t, "-game", "thm2", "-n", "8", "-alg", "round-robin")
	want := []string{
		"Theorem 2 game: n=8 alg=round-robin",
		"  forced rounds: 7 (bound: > n-3 = 5)",
		"  worst bridge process: 7",
		"  2-broadcastability witness: 2 rounds",
	}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestTheorem12Runs(t *testing.T) {
	lines := runLines(t, "-game", "thm12", "-n", "9", "-alg", "round-robin")
	if want := "Theorem 12 game: n=9 alg=round-robin"; lines[0] != want {
		t.Fatalf("line 0 = %q, want %q", lines[0], want)
	}
	if !strings.HasPrefix(lines[1], "  forced rounds: ") {
		t.Fatalf("line 1 = %q", lines[1])
	}
}

func TestTheorem4Runs(t *testing.T) {
	lines := runLines(t, "-game", "thm4", "-n", "14", "-k", "5", "-trials", "20", "-seed", "2")
	if !strings.HasPrefix(lines[0], "Theorem 4 Monte-Carlo: n=14 k=5 trials=20") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "  Theorem 4 bound k/(n-2): 0.417") {
		t.Fatalf("line 2 = %q", lines[2])
	}
}

func TestUnknownGameFails(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-game", "nope"}, &sb); err == nil {
		t.Fatal("expected error for unknown game")
	}
}

// Worker mode (`dgsimd -worker`): instead of serving jobs, the process
// attaches to a coordinator's job and drains its (cell, shard) unit pool —
// claim, fold the unit's trial range through the engine's per-shard inner
// loop, report the serialized accumulator, repeat. Any number of workers may
// attach; each unit's accumulator is bit-identical to the one a local run
// would have produced, so the coordinator's merged output does not depend on
// how many workers ran or which of them died.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"dualgraph/internal/engine"
	"dualgraph/internal/service"
)

// errJobOver signals that the coordinator's job reached a terminal state:
// the worker's cue to exit cleanly.
var errJobOver = errors.New("job is terminal")

// runWorker is the worker-mode main loop. It returns nil when the job ends
// (in any terminal state) or when ctx is cancelled — an interrupted worker
// simply stops claiming, and its in-flight lease expires back into the pool.
func runWorker(ctx context.Context, logger *log.Logger, coordinator, jobID string, poll time.Duration) error {
	base := strings.TrimRight(coordinator, "/") + "/v1/jobs/" + jobID
	client := &http.Client{Timeout: 30 * time.Second}
	folded := 0
	for ctx.Err() == nil {
		claim, err := claimUnit(ctx, client, base)
		if errors.Is(err, errJobOver) {
			break
		}
		if err != nil {
			return err
		}
		if claim == nil {
			// Every remaining unit is leased elsewhere; the job status poll in
			// claimUnit said the job is still running, so check back shortly.
			select {
			case <-ctx.Done():
			case <-time.After(poll):
			}
			continue
		}
		blob, err := foldUnit(ctx, *claim)
		if err != nil {
			if ctx.Err() != nil {
				break // interrupted mid-fold; the lease returns the unit
			}
			return fmt.Errorf("unit (%d, %d): %w", claim.Cell, claim.Shard, err)
		}
		err = reportUnit(ctx, client, base, service.Report{Cell: claim.Cell, Shard: claim.Shard, Summary: blob})
		if errors.Is(err, errJobOver) {
			break
		}
		if err != nil {
			return err
		}
		folded++
		logger.Printf("folded (%d, %d) %s trials [%d, %d)", claim.Cell, claim.Shard, claim.Label, claim.TrialLo, claim.TrialHi)
	}
	logger.Printf("worker done: folded %d units of %s", folded, jobID)
	return nil
}

// claimUnit asks the coordinator for the next unit. nil with no error means
// nothing is claimable right now but the job is still running; errJobOver
// means the job ended.
func claimUnit(ctx context.Context, client *http.Client, base string) (*service.Claim, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/shards/claim", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("claim: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var c service.Claim
		if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
			return nil, fmt.Errorf("claim: decode: %w", err)
		}
		return &c, nil
	case http.StatusNoContent:
		// All leased, or all done: the job status tells which.
		st, err := jobStatus(ctx, client, base)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return nil, errJobOver
		}
		return nil, nil
	case http.StatusConflict:
		return nil, errJobOver
	default:
		return nil, fmt.Errorf("claim: %s", httpError(resp))
	}
}

// foldUnit reproduces the claimed unit bit-exactly: build the scenario, run
// its trial range through engine.FoldShardContext with the claim's stream
// configuration, and serialize the accumulator.
func foldUnit(ctx context.Context, c service.Claim) ([]byte, error) {
	b, err := c.Scenario.Build()
	if err != nil {
		return nil, err
	}
	sum, err := engine.FoldShardContext(ctx,
		engine.Trial{Net: b.Net, Sched: b.Sched, Alg: b.Alg, Adv: b.Adv, Cfg: b.Cfg},
		c.TrialLo, c.TrialHi,
		engine.StreamConfig{Quantiles: c.Quantiles, ExactK: c.ExactK})
	if err != nil {
		return nil, err
	}
	return sum.MarshalBinary()
}

// reportUnit delivers a folded unit; a 409 means the job ended while we were
// folding (errJobOver), which is a clean exit, not a failure.
func reportUnit(ctx context.Context, client *http.Client, base string, rep service.Report) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/shards/report", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return errJobOver
	default:
		return fmt.Errorf("report: %s", httpError(resp))
	}
}

// jobStatus fetches the job's status snapshot.
func jobStatus(ctx context.Context, client *http.Client, base string) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base, nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return service.JobStatus{}, fmt.Errorf("status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, fmt.Errorf("status: %s", httpError(resp))
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.JobStatus{}, fmt.Errorf("status: decode: %w", err)
	}
	return st, nil
}

// httpError renders a non-OK response: the server's {"error": ...} body when
// present, else the bare status.
func httpError(resp *http.Response) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Sprintf("%s (%s)", e.Error, resp.Status)
	}
	return resp.Status
}

// Command dgsimd is the long-running sweep service: it accepts declarative
// spec.Sweep jobs over a versioned HTTP API, executes them one at a time on
// one shared deterministic worker pool, and streams per-cell summary lines
// back as cells complete — byte-identical to what `dgsim -spec` prints for
// the same sweep file.
//
//	dgsimd -addr :8080 -workers 8
//
// With -worker the same binary runs in worker mode instead: it attaches to
// a coordinator dgsimd's job (one submitted with "mode": "coordinator") and
// repeatedly claims (cell, shard) work units over the shard claim/report
// API, folds each unit's trials with the engine's exact per-shard loop, and
// reports the serialized accumulator back. Workers are fungible and
// crash-safe: a killed worker's leased unit returns to the pool when its
// lease expires, and the coordinator's merged results stay byte-identical
// to a single-process run regardless of worker count or deaths.
//
//	# coordinator job: units run on remote workers, not the local pool
//	curl -s localhost:8080/v1/jobs -d '{"sweep":{"base":{"n":17},"seeds":[1,2,3],"trials":1000},"mode":"coordinator"}'
//	# any number of workers, anywhere:
//	dgsimd -worker -coordinator http://localhost:8080 -job job-000001
//
//	# submit a job (absent versions read as v1)
//	curl -s localhost:8080/v1/jobs -d '{"sweep":{"base":{"n":17},"seeds":[1,2,3],"trials":1000}}'
//	# follow its results as they complete (JSON lines; add
//	# -H 'Accept: text/event-stream' for SSE)
//	curl -sN localhost:8080/v1/jobs/job-000001/results
//	# status / listing / cancel
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001
//
// SIGTERM (or SIGINT) drains gracefully: admission stops, queued jobs are
// cancelled, the running job stops at the next shard boundary with every
// completed cell already streamed, and the process exits 0 once the pool
// and all open result streams have wound down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualgraph/internal/engine"
	"dualgraph/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.SetFlags(0)
		log.Fatalf("dgsimd: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dgsimd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers    = fs.Int("workers", 0, "shared trial pool size (0 = one per CPU); never changes results, only throughput")
		queue      = fs.Int("queue", 64, "max queued jobs before submissions get 429")
		drainGrace = fs.Duration("drain-grace", time.Minute, "max time to wait for the running shard and open streams on shutdown")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the service listener (off by default; enable only on trusted networks)")

		workerMode  = fs.Bool("worker", false, "run as a remote worker for a coordinator job instead of serving")
		coordinator = fs.String("coordinator", "", "worker mode: base URL of the coordinator dgsimd (e.g. http://host:8080)")
		jobID       = fs.String("job", "", "worker mode: id of the coordinator job to work on")
		poll        = fs.Duration("poll", 250*time.Millisecond, "worker mode: back-off between claim attempts when all units are leased")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*workerMode && (*coordinator != "" || *jobID != "") {
		return errors.New("-coordinator and -job only apply with -worker")
	}

	logger := log.New(os.Stderr, "dgsimd: ", log.LstdFlags)
	if *workerMode {
		if *coordinator == "" || *jobID == "" {
			return errors.New("-worker requires -coordinator and -job")
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runWorker(ctx, logger, *coordinator, *jobID, *poll)
	}
	svc := service.New(service.Config{
		Engine:     engine.Config{Workers: *workers},
		QueueLimit: *queue,
	})
	handler := svc.Handler()
	if *pprofOn {
		// The service API keeps its own mux; the debug mux wraps it so the
		// pprof routes exist only when asked for and never shadow /v1/.
		debug := http.NewServeMux()
		debug.Handle("/", handler)
		debug.HandleFunc("/debug/pprof/", pprof.Index)
		debug.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debug.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debug.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debug.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = debug
	}
	hs := &http.Server{Handler: handler}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is the startup handshake: scripts (and the
	// serve-smoke test) parse it to find the port when -addr ends in :0.
	logger.Printf("listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Printf("signal received; draining (grace %v)", *drainGrace)
	graceCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := svc.Drain(graceCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
	}
	// Shutdown after Drain: jobs are terminal by now, so open result
	// streams have flushed their done lines and Shutdown returns once the
	// last response closes.
	if err := hs.Shutdown(graceCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	logger.Printf("drained, exiting")
	return nil
}

// The coordinator/worker smoke: a real dgsimd server, a coordinator-mode
// job, an orphaned claim (the "dead worker"), and two real `dgsimd -worker`
// processes draining the unit pool. The streamed results must be
// byte-identical to the same sweep run on the server's local engine.
package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// coordSweep is the job both paths run: 3 cells × 40 trials.
const coordSweep = `{"base":{"n":13},"seeds":[1,2,3],"trials":40}`

// postJob submits a job envelope and returns its id.
func postJob(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated || st.ID == "" {
		t.Fatalf("submit: status %d, id %q", resp.StatusCode, st.ID)
	}
	return st.ID
}

// resultLines streams a job's results to the done line and returns the raw
// cell lines (label + summary) in delivery order.
func resultLines(t *testing.T, base, id string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Done    bool   `json:"done"`
			State   string `json:"state"`
			Label   string `json:"label"`
			Summary string `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if line.Done {
			if line.State != "done" {
				t.Fatalf("job %s ended %q", id, line.State)
			}
			return lines
		}
		lines = append(lines, line.Label+": "+line.Summary)
	}
	t.Fatalf("stream for %s ended without a done line", id)
	return nil
}

func TestWorkerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "dgsimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	srv := exec.Command(bin, "-addr", "127.0.0.1:0")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = srv.Process.Kill()
		_ = srv.Wait()
	}()

	var base string
	sc := bufio.NewScanner(stderr)
	if sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "listening on ")
		if i < 0 {
			t.Fatalf("first log line is not the listen handshake: %q", line)
		}
		base = "http://" + strings.TrimSpace(line[i+len("listening on "):])
	} else {
		t.Fatal("dgsimd never printed its listen address")
	}
	go func() { // drain the rest of the server log
		for sc.Scan() {
		}
	}()

	// Reference: the sweep on the server's local engine.
	localID := postJob(t, base, `{"sweep":`+coordSweep+`}`)
	want := resultLines(t, base, localID)

	// The coordinator job, with a short lease so the orphaned claim below
	// returns to the pool while the workers drain it.
	coordID := postJob(t, base, `{"sweep":`+coordSweep+`,"mode":"coordinator","lease_seconds":1}`)

	// Dead worker: claim one unit, never report it.
	resp, err := http.Post(base+"/v1/jobs/"+coordID+"/shards/claim", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("orphan claim: status %d", resp.StatusCode)
	}

	// Two real worker processes; both must exit 0 once the job is done.
	workers := make([]*exec.Cmd, 2)
	for i := range workers {
		w := exec.Command(bin, "-worker", "-coordinator", base, "-job", coordID, "-poll", "50ms")
		out, err := w.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			s := bufio.NewScanner(out)
			for s.Scan() {
			}
		}()
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	done := make(chan error, len(workers))
	for _, w := range workers {
		go func(w *exec.Cmd) { done <- w.Wait() }(w)
	}
	for range workers {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("worker exited non-zero: %v", err)
			}
		case <-time.After(120 * time.Second):
			t.Fatal("workers did not finish the job")
		}
	}

	got := resultLines(t, base, coordID)
	if len(got) != len(want) {
		t.Fatalf("coordinator streamed %d lines, local %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cell %d differs:\nremote: %s\n local: %s", i, got[i], want[i])
		}
	}

	// Flag contract: worker flags demand each other.
	if out, err := exec.Command(bin, "-worker").CombinedOutput(); err == nil ||
		!strings.Contains(string(out), "-coordinator") {
		t.Fatalf("-worker alone: err=%v out=%s", err, out)
	}
	if out, err := exec.Command(bin, "-job", "x").CombinedOutput(); err == nil ||
		!strings.Contains(string(out), "-worker") {
		t.Fatalf("-job without -worker: err=%v out=%s", err, out)
	}
}

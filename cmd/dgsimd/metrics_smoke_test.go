// The metrics-smoke gate (`make metrics-smoke`): build the real dgsimd
// binary with -pprof, run a sweep to completion while scraping GET /metrics,
// validate the exposition format by hand, and assert the key series carry
// the values the job implies (a fresh process ran exactly this sweep, so
// engine_trials_total must equal cells × trials). Also checks the healthz
// JSON body and the opt-in pprof mount.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$`)
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
)

// validateExposition hand-checks the Prometheus text format: every line is a
// well-formed HELP, TYPE, or sample; every sample's family was TYPEd first.
func validateExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("malformed HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			typed[m[1]] = true
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
				continue
			}
			name := line[:strings.IndexAny(line, "{ ")]
			family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !typed[name] && !typed[family] {
				t.Errorf("sample %q has no preceding TYPE line", name)
			}
		}
	}
}

// scrapeMetrics GETs /metrics and validates its format.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	validateExposition(t, string(body))
	return string(body)
}

// metricValue extracts one unlabeled sample value from an exposition body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("exposition has no %q sample", name)
	return 0
}

func TestMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "dgsimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-pprof")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	rd := bufio.NewScanner(stderr)
	var base string
	for rd.Scan() {
		if i := strings.Index(rd.Text(), "listening on "); i >= 0 {
			base = "http://" + strings.TrimSpace(rd.Text()[i+len("listening on "):])
			break
		}
	}
	if base == "" {
		t.Fatal("dgsimd never printed its listen address")
	}
	go func() { // keep draining so the child never blocks on stderr
		for rd.Scan() {
		}
	}()

	// Empty server: exposition is already well-formed and the healthz body
	// carries its JSON fields.
	scrapeMetrics(t, base)
	hresp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status        string  `json:"status"`
		Queued        int     `json:"queued"`
		Running       int     `json:"running"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: status %d body %+v", hresp.StatusCode, health)
	}
	if health.UptimeSeconds <= 0 {
		t.Fatalf("healthz uptime = %v, want > 0", health.UptimeSeconds)
	}

	// -pprof was set: the debug mux must answer (the index page), and the
	// service API must still be reachable through it.
	presp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d (built with -pprof)", presp.StatusCode)
	}

	// Run a sweep while scraping. 4 cells × 2000 trials is long enough that
	// at least one mid-run scrape lands while the job executes.
	const cells, trials = 4, 2000
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":"metrics-smoke","sweep":{"base":{"n":13},"seeds":[1,2,3,4],"trials":%d}}`, trials)))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || job.Cells != cells {
		t.Fatalf("submit: status %d, %+v", resp.StatusCode, job)
	}
	for i := 0; i < 3; i++ {
		scrapeMetrics(t, base) // mid-run scrapes must stay well-formed
	}
	waitStatus(t, base, job.ID, func(s string) bool { return s == "done" })

	body := scrapeMetrics(t, base)
	for _, series := range []string{
		"engine_shard_duration_seconds_bucket{le=\"+Inf\"}",
		"service_jobs_completed_total{state=\"done\"} 1",
		"service_jobs_running 0",
		"service_jobs_queued 0",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	// Fresh process, exactly one job: the engine counters equal the job's
	// own arithmetic.
	if got := metricValue(t, body, "engine_trials_total"); got != cells*trials {
		t.Errorf("engine_trials_total = %v, want %d", got, cells*trials)
	}
	if got := metricValue(t, body, "engine_cells_completed_total"); got != cells {
		t.Errorf("engine_cells_completed_total = %v, want %d", got, cells)
	}
	if got := metricValue(t, body, "service_jobs_submitted_total"); got != 1 {
		t.Errorf("service_jobs_submitted_total = %v, want 1", got)
	}
	if got := metricValue(t, body, "service_cells_streamed_total"); got != cells {
		t.Errorf("service_cells_streamed_total = %v, want %d", got, cells)
	}
	if got := metricValue(t, body, "engine_worker_busy_seconds_total"); got <= 0 {
		t.Errorf("engine_worker_busy_seconds_total = %v, want > 0", got)
	}

	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	cmd.Process = nil
}

// The serve-smoke gate (`make serve-smoke`): build the real dgsimd binary,
// start it on a free port, submit a small sweep and stream its results,
// cancel a second long-running job, then SIGTERM the process and assert a
// graceful drain (exit code 0 after the drain log line).
package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// waitStatus polls the job status endpoint until pred holds.
func waitStatus(t *testing.T, base, id string, pred func(state string) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if s, _ := st["state"].(string); pred(s) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state", id)
	return nil
}

func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "dgsimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-queue", "8")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	// Handshake: parse the resolved listen address off the first log line,
	// and keep collecting stderr for the drain assertions.
	logC := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			logC <- sc.Text()
		}
		close(logC)
	}()
	var base string
	select {
	case line := <-logC:
		i := strings.Index(line, "listening on ")
		if i < 0 {
			t.Fatalf("first log line is not the listen handshake: %q", line)
		}
		base = "http://" + strings.TrimSpace(line[i+len("listening on "):])
	case <-time.After(30 * time.Second):
		t.Fatal("dgsimd never printed its listen address")
	}

	// 1. Submit a small sweep and stream its per-cell results to the end.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"version":1,"name":"smoke","sweep":{"base":{"n":13},"seeds":[1,2,3],"trials":50}}`))
	if err != nil {
		t.Fatal(err)
	}
	var small struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&small); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || small.Cells != 3 {
		t.Fatalf("submit: status %d, %+v", resp.StatusCode, small)
	}

	stream, err := http.Get(base + "/v1/jobs/" + small.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var cellLines, doneState = 0, ""
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if d, _ := line["done"].(bool); d {
			doneState, _ = line["state"].(string)
			break
		}
		if _, ok := line["summary"].(string); !ok {
			t.Fatalf("cell line without summary: %q", sc.Text())
		}
		cellLines++
	}
	stream.Body.Close()
	if cellLines != 3 || doneState != "done" {
		t.Fatalf("streamed %d cells, done state %q", cellLines, doneState)
	}

	// 2. Submit a long job, cancel it mid-run, and confirm it terminates.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"name":"victim","sweep":{"base":{"n":17},"seeds":[1,2,3,4],"trials":400000}}`))
	if err != nil {
		t.Fatal(err)
	}
	var victim struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&victim); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitStatus(t, base, victim.ID, func(s string) bool { return s == "running" })

	req, _ := http.NewRequest("DELETE", base+"/v1/jobs/"+victim.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	st := waitStatus(t, base, victim.ID, func(s string) bool {
		return s == "cancelled" || s == "done" || s == "failed"
	})
	if s, _ := st["state"].(string); s != "cancelled" {
		t.Fatalf("cancelled job ended %q", s)
	}

	// 3. Start another long job so the drain has something to interrupt,
	// then SIGTERM and assert a graceful exit.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"name":"drained","sweep":{"base":{"n":17},"seeds":[5,6,7,8],"trials":400000}}`))
	if err != nil {
		t.Fatal(err)
	}
	var drained struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&drained); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitStatus(t, base, drained.ID, func(s string) bool { return s == "running" })

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("dgsimd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("dgsimd did not exit within the drain window")
	}
	var sawDrained bool
	for line := range logC {
		if strings.Contains(line, "drained, exiting") {
			sawDrained = true
		}
	}
	if !sawDrained {
		t.Fatal("dgsimd exited without the drain log line")
	}
}

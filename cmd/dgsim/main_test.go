package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"dualgraph"
	"dualgraph/internal/service"
)

// runLines invokes the command's run path and returns its output lines.
func runLines(t *testing.T, args ...string) []string {
	t.Helper()
	var sb strings.Builder
	if err := run(context.Background(), args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
}

func TestSingleTrialGolden(t *testing.T) {
	lines := runLines(t,
		"-topo", "line", "-n", "8", "-alg", "round-robin", "-adv", "benign",
		"-rule", "3", "-start", "sync", "-seed", "1")
	want := []string{
		"topology=line n=8 alg=round-robin adversary=benign rule=CR3 start=sync seed=1",
		"completed=true rounds=7 transmissions=7 eccentricity=7",
	}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestMultiTrialGolden(t *testing.T) {
	// The aggregate line is identical at any -workers value; pin workers=2 to
	// exercise the parallel path deterministically.
	lines := runLines(t,
		"-topo", "clique-bridge", "-n", "9", "-alg", "harmonic", "-adv", "greedy",
		"-trials", "8", "-seed", "2", "-workers", "2")
	want := []string{
		"topology=clique-bridge n=9 alg=harmonic(T=74) adversary=greedy-collider rule=CR4 start=async seed=2 trials=8",
		"completed=8/8 rounds: min=85 p50=144 p90=187 p99=187 max=234 mean-transmissions=863.8",
	}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestPreferentialAttachmentTopology(t *testing.T) {
	lines := runLines(t, "-topo", "pa", "-n", "16", "-alg", "harmonic", "-adv", "greedy", "-seed", "5")
	if want := "topology=pa n=16 alg=harmonic(T=81) adversary=greedy-collider rule=CR4 start=async seed=5"; lines[0] != want {
		t.Fatalf("line 0 = %q, want %q", lines[0], want)
	}
	if !strings.HasPrefix(lines[1], "completed=true ") {
		t.Fatalf("pa broadcast did not complete: %q", lines[1])
	}
}

func TestVerboseListsEveryNode(t *testing.T) {
	lines := runLines(t,
		"-topo", "line", "-n", "5", "-alg", "round-robin", "-adv", "benign",
		"-rule", "3", "-start", "sync", "-seed", "1", "-v")
	if got, want := len(lines), 2+5; got != want {
		t.Fatalf("verbose output has %d lines, want %d", got, want)
	}
	if want := "  node   0 (pid   1): first receive round 0"; lines[2] != want {
		t.Fatalf("first node line = %q, want %q", lines[2], want)
	}
}

// TestUnknownNamesListValidOnes is the name-drift regression test: every
// unknown name must fail with the registry's typed error, which lists the
// valid names and suggests near misses.
func TestUnknownNamesListValidOnes(t *testing.T) {
	cases := []struct {
		args []string
		want []string
	}{
		{[]string{"-topo", "nope"}, []string{"valid topology names", "clique-bridge"}},
		{[]string{"-topo", "geometirc"}, []string{`did you mean "geometric"?`}},
		{[]string{"-alg", "harmonix"}, []string{`did you mean "harmonic"?`, "valid algorithm names"}},
		{[]string{"-adv", "greddy"}, []string{`did you mean "greedy"?`, "valid adversary names"}},
	}
	for _, c := range cases {
		var sb strings.Builder
		err := run(context.Background(), c.args, &sb)
		if err == nil {
			t.Fatalf("run(%v): expected error", c.args)
		}
		for _, want := range c.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("run(%v) error %q missing %q", c.args, err, want)
			}
		}
	}
}

// TestListPrintsEveryRegisteredName golden-checks the -list surface: the
// three section headers, a known entry line, and a parameter doc line.
func TestListPrintsEveryRegisteredName(t *testing.T) {
	lines := runLines(t, "-list")
	out := strings.Join(lines, "\n")
	for _, want := range []string{
		"topologies:",
		"algorithms:",
		"adversaries:",
		"  geometric          unit-square placement: short links reliable, longer ones unreliable; scales to 100k+ nodes",
		"      r-reliable       float  links shorter than this are reliable (default 0.28)",
		"  strong-select      deterministic Strong Select, O(n^{3/2}√log n) (Section 5)",
		"  greedy             adaptive greedy collider: jams single deliveries into collisions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

// TestSpecGridGolden runs a two-axis sweep file at two worker counts and
// pins the output: the acceptance criterion that -spec executes a grid
// bit-identically at any -workers value.
func TestSpecGridGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	blob := `{
		"base": {"seed": 2},
		"algorithms": [{"name": "harmonic"}, {"name": "round-robin"}],
		"ns": [9, 17],
		"trials": 8
	}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"grid: cells=4 trials-per-cell=8",
		"alg=harmonic n=9: completed=8/8 rounds: min=85 mean=149.38 p50=148.00 p90=201.10 p95=217.55 p99=230.71 max=234 mean-transmissions=863.8",
	}
	for _, workers := range []string{"1", "2", "8"} {
		lines := runLines(t, "-spec", path, "-workers", workers)
		if len(lines) != 5 {
			t.Fatalf("workers=%s: %d output lines, want 5:\n%s", workers, len(lines), strings.Join(lines, "\n"))
		}
		for i, w := range want {
			if lines[i] != w {
				t.Fatalf("workers=%s line %d = %q, want %q", workers, i, lines[i], w)
			}
		}
	}
}

// TestSpecGridFirstCellMatchesStreamFlagPath checks grid-vs-single-cell
// consistency through the CLI: the harmonic n=9 seed=2 cell of the spec
// grid must report exactly the aggregate the -stream flag path reports for
// the same scenario (same seeds, same reduction).
func TestSpecGridFirstCellMatchesStreamFlagPath(t *testing.T) {
	lines := runLines(t,
		"-topo", "clique-bridge", "-n", "9", "-alg", "harmonic", "-adv", "greedy",
		"-trials", "8", "-seed", "2", "-stream")
	const want = "completed=8/8 rounds: min=85 mean=149.38 p50=148.00 p90=201.10 p95=217.55 p99=230.71 max=234 mean-transmissions=863.8"
	if lines[1] != want {
		t.Fatalf("stream flag path line = %q, want %q (grid golden)", lines[1], want)
	}
}

// TestPRejectedWhenNothingTakesIt: -p must fail loudly when neither the
// algorithm nor the adversary documents a "p" parameter, instead of being
// silently dropped (and it must keep flowing to entries that do take it,
// per the registry schema rather than a hardcoded name list).
func TestPRejectedWhenNothingTakesIt(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-alg", "harmonic", "-adv", "greedy", "-p", "0.5"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "-p applies") {
		t.Fatalf("err = %v, want a -p rejection", err)
	}
	lines := runLines(t, "-topo", "line", "-n", "5", "-alg", "uniform", "-p", "0.5",
		"-adv", "benign", "-rule", "3", "-start", "sync", "-seed", "1")
	if want := "alg=uniform(p=0.500)"; !strings.Contains(lines[0], want) {
		t.Fatalf("line 0 = %q, want it to carry %q", lines[0], want)
	}
}

// TestTypoWithPStillSuggests: a typoed name must surface the registry's
// did-you-mean error even when -p is set (name validation runs first).
func TestTypoWithPStillSuggests(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-alg", "harmonix", "-p", "0.5"}, &sb)
	if err == nil || !strings.Contains(err.Error(), `did you mean "harmonic"?`) {
		t.Fatalf("err = %v, want the suggestion error, not a -p complaint", err)
	}
}

func TestListRejectsOtherFlags(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-list", "-topo", "line"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "-topo") {
		t.Fatalf("err = %v, want a -topo conflict error", err)
	}
}

func TestSpecRejectsCellFlags(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-spec", "whatever.json", "-topo", "line"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "-topo") {
		t.Fatalf("err = %v, want a -topo conflict error", err)
	}
}

// TestStreamGolden pins the streamed aggregate line at a fixed seed: within
// the sketch's exact regime the quantiles are computed by the same linear
// interpolation as stats.Quantile, identically at any worker count.
func TestStreamGolden(t *testing.T) {
	for _, workers := range []string{"1", "2"} {
		lines := runLines(t,
			"-topo", "clique-bridge", "-n", "9", "-alg", "harmonic", "-adv", "greedy",
			"-trials", "8", "-seed", "2", "-workers", workers, "-stream")
		want := []string{
			"topology=clique-bridge n=9 alg=harmonic(T=74) adversary=greedy-collider rule=CR4 start=async seed=2 trials=8 stream=true",
			"completed=8/8 rounds: min=85 mean=149.38 p50=148.00 p90=201.10 p95=217.55 p99=230.71 max=234 mean-transmissions=863.8",
		}
		for i, w := range want {
			if i >= len(lines) || lines[i] != w {
				t.Fatalf("workers=%s line %d = %q, want %q", workers, i, lines[i], w)
			}
		}
	}
}

// TestVerboseRejectedForSweeps is the regression test for the silently
// dropped flag: -v only makes sense for a single retained run, so pairing
// it with a sweep must fail loudly instead of being ignored.
func TestVerboseRejectedForSweeps(t *testing.T) {
	for _, args := range [][]string{
		{"-trials", "8", "-v"},
		{"-trials", "8", "-stream", "-v"},
		{"-stream", "-v"},
	} {
		var sb strings.Builder
		err := run(context.Background(), args, &sb)
		if err == nil || !strings.Contains(err.Error(), "-v") {
			t.Errorf("run(%v) error = %v, want a -v incompatibility error", args, err)
		}
		if sb.Len() != 0 {
			t.Errorf("run(%v) produced output despite the flag error", args)
		}
	}
}

// TestStaticScheduleByteIdentical is the dynamics-tentpole regression
// property: with the default (or explicit) "static" schedule, dgsim output
// must be byte-identical to the pre-dynamics binaries at fixed seeds,
// across worker counts, on both the slice and streaming aggregation paths.
// The want strings were captured from the binaries built at the previous
// commit.
func TestStaticScheduleByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "many",
			args: []string{"-topo", "geometric", "-n", "40", "-alg", "harmonic",
				"-adv", "greedy", "-trials", "16", "-seed", "7"},
			want: []string{
				"topology=geometric n=40 alg=harmonic(T=92) adversary=greedy-collider rule=CR4 start=async seed=7 trials=16",
				"completed=16/16 rounds: min=974 p50=1314 p90=1408 p99=1442 max=1467 mean-transmissions=9861.6",
			},
		},
		{
			name: "stream",
			args: []string{"-topo", "clique-bridge", "-n", "17", "-alg", "harmonic",
				"-adv", "greedy", "-trials", "32", "-seed", "3", "-stream"},
			want: []string{
				"topology=clique-bridge n=17 alg=harmonic(T=81) adversary=greedy-collider rule=CR4 start=async seed=3 trials=32 stream=true",
				"completed=32/32 rounds: min=199 mean=368.28 p50=362.50 p90=493.70 p95=524.75 p99=548.83 max=551 mean-transmissions=2794.8",
			},
		},
	}
	for _, c := range cases {
		for _, workers := range []string{"1", "2", "8"} {
			for _, explicit := range []bool{false, true} {
				args := append([]string{}, c.args...)
				args = append(args, "-workers", workers)
				if explicit {
					args = append(args, "-sched", "static")
				}
				lines := runLines(t, args...)
				for i, w := range c.want {
					if i >= len(lines) || lines[i] != w {
						t.Fatalf("%s workers=%s explicit=%v line %d = %q, want %q",
							c.name, workers, explicit, i, lines[i], w)
					}
				}
			}
		}
	}
}

// TestSchedFlagDynamicGolden pins a dynamic run end to end: the churn
// schedule header carries the sched fragment and the aggregate is
// bit-identical at any worker count (per-epoch randomness is a pure
// function of each trial's seed).
func TestSchedFlagDynamicGolden(t *testing.T) {
	var want []string
	for _, workers := range []string{"1", "2", "8"} {
		lines := runLines(t,
			"-topo", "geometric", "-n", "40", "-alg", "harmonic", "-adv", "greedy",
			"-sched", "churn", "-trials", "8", "-seed", "7", "-workers", workers)
		if got := "topology=geometric n=40 alg=harmonic(T=92) adversary=greedy-collider rule=CR4 start=async seed=7 trials=8 sched=churn"; lines[0] != got {
			t.Fatalf("workers=%s header = %q", workers, lines[0])
		}
		if want == nil {
			want = lines
			continue
		}
		for i := range want {
			if lines[i] != want[i] {
				t.Fatalf("workers=%s line %d = %q, want %q (worker-count dependence)", workers, i, lines[i], want[i])
			}
		}
	}
}

// TestSchedUnknownSuggests: the schedule registry plugs into the same typed
// suggestion error as the other three registries.
func TestSchedUnknownSuggests(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-sched", "statc"}, &sb)
	if err == nil || !strings.Contains(err.Error(), `did you mean "static"?`) {
		t.Fatalf("err = %v, want the static suggestion", err)
	}
	if !strings.Contains(err.Error(), "valid schedule names") {
		t.Fatalf("err = %v, want the schedule name list", err)
	}
}

// TestErrorPrintsSuggestionsToStderr is the CLI golden test for the
// suggestion bugfix: when a run fails on an unknown registry name, the
// stderr report must carry a dedicated did-you-mean line with every
// suggestion — including on the -spec path, where the error text used to
// bury the hint behind the full valid-name list.
func TestErrorPrintsSuggestionsToStderr(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "sweep.json")
	blob := `{"base": {"topology": {"name": "geometirc"}}}`
	if err := os.WriteFile(specPath, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-topo", "geometirc"}, "dgsim: did you mean: geometric?\n"},
		{[]string{"-spec", specPath}, "dgsim: did you mean: geometric?\n"},
		{[]string{"-sched", "fode"}, "dgsim: did you mean: fade?\n"},
	}
	for _, c := range cases {
		var out, stderr strings.Builder
		err := run(context.Background(), c.args, &out)
		if err == nil {
			t.Fatalf("run(%v): expected error", c.args)
		}
		printError(&stderr, err)
		lines := strings.SplitAfter(stderr.String(), "\n")
		if len(lines) < 2 || lines[1] != c.want {
			t.Errorf("run(%v) stderr suggestion line = %q, want %q", c.args, stderr.String(), c.want)
		}
	}
	// Errors without a registry lookup keep the single-line report.
	var stderr strings.Builder
	printError(&stderr, fmt.Errorf("trials must be >= 1"))
	if got := stderr.String(); got != "dgsim: trials must be >= 1\n" {
		t.Errorf("plain error stderr = %q", got)
	}
}

// TestStreamSweepBoundedMemory is the -short smoke demanded by the
// streaming tentpole: a 100k-trial streamed dgsim sweep must retain
// O(shards) accumulator state — not O(trials) results — so live heap stays
// flat. (The slice path retains ~30MB of Results at this trial count.)
func TestStreamSweepBoundedMemory(t *testing.T) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	lines := runLines(t,
		"-topo", "line", "-n", "6", "-alg", "uniform", "-p", "0.5", "-adv", "benign",
		"-rule", "3", "-start", "sync", "-seed", "5", "-trials", "100000", "-stream")

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if !strings.HasPrefix(lines[1], "completed=100000/100000 ") {
		t.Fatalf("sweep incomplete: %q", lines[1])
	}
	const limit = 8 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > limit {
		t.Fatalf("live heap grew %d bytes across a 100k-trial streamed sweep (limit %d): O(trials) retention", grew, limit)
	}
}

// TestSpecOutputMatchesServiceHTTP is the cross-surface determinism gate:
// the per-cell lines `dgsim -spec` prints and the per-cell results the
// dgsimd HTTP API streams for the same sweep document must be byte-identical
// at every worker count — one shared renderer, one shared engine, one
// answer.
func TestSpecOutputMatchesServiceHTTP(t *testing.T) {
	const blob = `{
		"base": {"seed": 3},
		"algorithms": [{"name": "harmonic"}, {"name": "round-robin"}],
		"ns": [9, 13],
		"trials": 6
	}`
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		cliLines := runLines(t, "-spec", path, "-workers", fmt.Sprint(workers))[1:] // drop the grid header

		svc := service.New(service.Config{Engine: dualgraph.EngineConfig{Workers: workers}})
		ts := httptest.NewServer(svc.Handler())

		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"sweep":`+blob+`}`))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()

		stream, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
		if err != nil {
			t.Fatal(err)
		}
		var httpLines []string
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			var line struct {
				Done    bool   `json:"done"`
				Label   string `json:"label"`
				Summary string `json:"summary"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("bad stream line %q: %v", sc.Text(), err)
			}
			if line.Done {
				break
			}
			httpLines = append(httpLines, line.Label+": "+line.Summary)
		}
		stream.Body.Close()
		ts.Close()
		svc.Close()

		if len(httpLines) != len(cliLines) {
			t.Fatalf("workers=%d: HTTP streamed %d cells, CLI printed %d", workers, len(httpLines), len(cliLines))
		}
		for i := range cliLines {
			if httpLines[i] != cliLines[i] {
				t.Fatalf("workers=%d cell %d:\n  http: %q\n  cli:  %q", workers, i, httpLines[i], cliLines[i])
			}
		}
	}
}

// TestSpecInterruptedPrintsPartialNotice: a cancelled -spec run must fail
// with a notice saying how much of the grid the partial output covers, and
// every line it did print must be a valid prefix of the full run's output.
func TestSpecInterruptedPrintsPartialNotice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	blob := `{"base": {"n": 9}, "seeds": [1, 2, 3], "trials": 4}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // interrupt before any cell completes
	var sb strings.Builder
	err := run(ctx, []string{"-spec", path}, &sb)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled chain", err)
	}
	if !strings.Contains(err.Error(), "interrupted after 0/3 cells") {
		t.Fatalf("err = %q, want the partial-results notice", err)
	}
}

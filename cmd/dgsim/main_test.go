package main

import (
	"strings"
	"testing"
)

// runLines invokes the command's run path and returns its output lines.
func runLines(t *testing.T, args ...string) []string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
}

func TestSingleTrialGolden(t *testing.T) {
	lines := runLines(t,
		"-topo", "line", "-n", "8", "-alg", "round-robin", "-adv", "benign",
		"-rule", "3", "-start", "sync", "-seed", "1")
	want := []string{
		"topology=line n=8 alg=round-robin adversary=benign rule=CR3 start=sync seed=1",
		"completed=true rounds=7 transmissions=7 eccentricity=7",
	}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestMultiTrialGolden(t *testing.T) {
	// The aggregate line is identical at any -workers value; pin workers=2 to
	// exercise the parallel path deterministically.
	lines := runLines(t,
		"-topo", "clique-bridge", "-n", "9", "-alg", "harmonic", "-adv", "greedy",
		"-trials", "8", "-seed", "2", "-workers", "2")
	want := []string{
		"topology=clique-bridge n=9 alg=harmonic(T=74) adversary=greedy-collider rule=CR4 start=async seed=2 trials=8",
		"completed=8/8 rounds: min=85 p50=144 p90=187 p99=187 max=234 mean-transmissions=863.8",
	}
	for i, w := range want {
		if i >= len(lines) || lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestPreferentialAttachmentTopology(t *testing.T) {
	lines := runLines(t, "-topo", "pa", "-n", "16", "-alg", "harmonic", "-adv", "greedy", "-seed", "5")
	if want := "topology=pa n=16 alg=harmonic(T=81) adversary=greedy-collider rule=CR4 start=async seed=5"; lines[0] != want {
		t.Fatalf("line 0 = %q, want %q", lines[0], want)
	}
	if !strings.HasPrefix(lines[1], "completed=true ") {
		t.Fatalf("pa broadcast did not complete: %q", lines[1])
	}
}

func TestVerboseListsEveryNode(t *testing.T) {
	lines := runLines(t,
		"-topo", "line", "-n", "5", "-alg", "round-robin", "-adv", "benign",
		"-rule", "3", "-start", "sync", "-seed", "1", "-v")
	if got, want := len(lines), 2+5; got != want {
		t.Fatalf("verbose output has %d lines, want %d", got, want)
	}
	if want := "  node   0 (pid   1): first receive round 0"; lines[2] != want {
		t.Fatalf("first node line = %q, want %q", lines[2], want)
	}
}

func TestUnknownTopologyFails(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-topo", "nope"}, &sb); err == nil {
		t.Fatal("expected error for unknown topology")
	}
}

// Command dgsim runs broadcast simulations, from one cell to a whole grid.
// Topologies, algorithms, and adversaries are addressed by registry name
// (`dgsim -list` prints every name with its parameter docs).
//
// With -trials 1 it prints the outcome of a single run; with -trials N it
// fans N independently seeded runs out over the parallel trial engine and
// prints aggregate statistics (results are identical at any -workers
// value). With -stream the sweep runs on the streaming reducer, which keeps
// memory bounded regardless of -trials. With -spec file.json the flags are
// replaced by a declarative sweep file: the whole Cartesian grid executes
// as one parallel run, one aggregate line per cell, bit-identical at any
// -workers value.
//
// Examples:
//
//	dgsim -topo clique-bridge -n 33 -alg harmonic -adv greedy -rule 4 -seed 7 -v
//	dgsim -topo geometric -n 65 -alg harmonic -adv greedy -trials 1000
//	dgsim -topo clique-bridge -n 17 -alg harmonic -adv greedy -trials 1000000 -stream
//	dgsim -topo geometric -n 65 -alg harmonic -adv greedy -sched churn -trials 100
//	dgsim -spec sweep.json -workers 8
//	dgsim -list
//
// With -sched a dynamic epoch schedule (churn, fade, waypoint mobility)
// mutates the topology every few rounds; schedule parameters (churn rate,
// epoch length, ...) are set through a -spec file's "schedule" block.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"dualgraph"
	"dualgraph/internal/metrics"
	"dualgraph/internal/progress"
)

// progressOut receives -progress lines; a package variable so tests can
// capture them.
var progressOut io.Writer = os.Stderr

func main() {
	// SIGINT/SIGTERM cancel the run context: the engine stops at the next
	// shard boundary, every already-printed -spec cell line stays valid, and
	// the error path below reports how much of the grid completed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		stop()
		printError(os.Stderr, err)
		os.Exit(1)
	}
}

// printError reports a failed run on stderr. When the error chain carries a
// registry *ErrUnknownName with near-miss suggestions, they are printed as
// their own stderr line: the typed error's Error() text only surfaces the
// closest one, and on the -spec path the long valid-name list buried the
// hint entirely.
func printError(w io.Writer, err error) {
	fmt.Fprintln(w, "dgsim:", err)
	var unknown *dualgraph.ErrUnknownName
	if errors.As(err, &unknown) && len(unknown.Suggestions) > 0 {
		fmt.Fprintf(w, "dgsim: did you mean: %s?\n", strings.Join(unknown.Suggestions, ", "))
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dgsim", flag.ContinueOnError)
	var (
		topo      = fs.String("topo", "clique-bridge", "topology name (see -list)")
		n         = fs.Int("n", 33, "network size")
		algName   = fs.String("alg", "harmonic", "algorithm name (see -list)")
		advName   = fs.String("adv", "greedy", "adversary name (see -list)")
		rule      = fs.Int("rule", 4, "collision rule 1..4")
		start     = fs.String("start", "async", "start rule: sync|async")
		sched     = fs.String("sched", "static", "epoch schedule name driving topology dynamics (see -list); defaults via -spec for parameters")
		seed      = fs.Int64("seed", 1, "random seed")
		maxRounds = fs.Int("max-rounds", 0, "round cap (0 = default)")
		p         = fs.Float64("p", 0.25, "probability parameter for uniform algorithm / random adversary")
		verbose   = fs.Bool("v", false, "print per-node first-receive rounds (single-trial mode only)")
		trials    = fs.Int("trials", 1, "number of independently seeded runs (per-trial seed derived from -seed and the trial index)")
		workers   = fs.Int("workers", 0, "trial engine worker count (0 = one per CPU)")
		stream    = fs.Bool("stream", false, "aggregate trials with the streaming reducer (memory bounded at any -trials; quantiles exact up to the spill threshold, P² estimates beyond)")
		specPath  = fs.String("spec", "", "run the declarative sweep in this JSON file instead of the cell flags")
		ckptPath  = fs.String("checkpoint", "", "with -spec: append every completed (cell, shard) accumulator to this file as the grid runs, so a killed run can -resume it")
		resume    = fs.String("resume", "", "with -spec: restore completed shards from this checkpoint file (skipping their work), keep appending to it, and reproduce the full output byte-identically")
		progFlag  = fs.Bool("progress", false, "with -stream or -spec: print a live progress line to stderr every 2s (done/total trials, trials/s, ETA, live rounds p50/p99)")
		metrAddr  = fs.String("metrics", "", "with -stream or -spec: serve Prometheus metrics on this address (e.g. localhost:9090) for the duration of the run")
		list      = fs.Bool("list", false, "print registered topologies/algorithms/adversaries/schedules with parameter docs, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "p" {
			pSet = true
		}
	})
	if *list {
		// -list is a pure query; any other explicitly-set flag was a
		// mistake, so reject it instead of silently ignoring it.
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name != "list" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-list prints the registry and runs nothing; drop -%s", conflict)
		}
		dualgraph.WriteRegistry(w)
		return nil
	}
	if *ckptPath != "" && *resume != "" {
		return fmt.Errorf("use -checkpoint to start a checkpoint file and -resume to continue one (a resumed run keeps appending to the same file); the flags are mutually exclusive")
	}
	if *specPath == "" && (*ckptPath != "" || *resume != "") {
		return fmt.Errorf("-checkpoint and -resume apply to -spec sweeps only")
	}
	if (*progFlag || *metrAddr != "") && !*stream && *specPath == "" {
		// Live telemetry hangs off the engine's per-shard completion
		// callbacks, which only the streaming paths expose.
		return fmt.Errorf("-progress and -metrics report live sweep telemetry; use them with -stream or -spec")
	}
	if *specPath != "" {
		// The spec file is the whole experiment; reject explicitly-set cell
		// flags instead of silently ignoring them.
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "spec", "workers", "checkpoint", "resume", "progress", "metrics":
			default:
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-spec runs a self-contained sweep file; drop -%s", conflict)
		}
		return runSpec(ctx, w, *specPath, *workers, *ckptPath, *resume, *progFlag, *metrAddr)
	}

	if startRule(*start) == 0 {
		return fmt.Errorf("unknown start rule %q", *start)
	}
	algP := pParams(dualgraph.AlgorithmInfo, *algName, *p)
	advP := pParams(dualgraph.AdversaryInfo, *advName, *p)
	sc, err := dualgraph.NewScenario(
		dualgraph.WithTopology(*topo, nil),
		dualgraph.WithN(*n),
		dualgraph.WithAlgorithm(*algName, algP),
		dualgraph.WithAdversary(*advName, advP),
		dualgraph.WithSchedule(*sched, nil),
		dualgraph.WithCollisionRule(dualgraph.CollisionRule(*rule)),
		dualgraph.WithStart(startRule(*start)),
		dualgraph.WithSeed(*seed),
		dualgraph.WithMaxRounds(*maxRounds),
	)
	if err != nil {
		return err
	}
	if pSet && algP == nil && advP == nil {
		// Names are valid (validation above would have produced the typed
		// suggestion error otherwise) but neither schema documents a "p"
		// parameter: reject rather than silently drop the flag.
		return fmt.Errorf("-p applies to entries with a %q parameter (see -list); neither algorithm %q nor adversary %q takes one",
			"p", *algName, *advName)
	}
	built, err := sc.Build()
	if err != nil {
		return err
	}

	if *trials < 1 {
		return fmt.Errorf("trials must be >= 1, got %d", *trials)
	}
	if *verbose && (*trials > 1 || *stream) {
		// Per-node first-receive rounds exist only for a single retained
		// run; silently dropping the flag hid this, so reject it instead.
		return fmt.Errorf("-v prints per-node rounds of a single run and is incompatible with -trials %d%s; drop -v or use -trials 1",
			*trials, streamSuffix(*stream))
	}
	if *stream {
		return runStream(ctx, w, built, *topo, schedSuffix(*sched), *rule, *start, *seed, *trials, *workers, *progFlag, *metrAddr)
	}
	if *trials > 1 {
		return runMany(ctx, w, built, *topo, schedSuffix(*sched), *rule, *start, *seed, *trials, *workers)
	}

	res, err := built.RunContext(ctx)
	if err != nil {
		return err
	}
	// Report the network the run actually started on: epoch 0 of the
	// schedule. For static/churn/fade that is the built base network; for
	// generative schedules (waypoint) the base only contributes its size,
	// so its eccentricity would describe a network the run never used.
	net0, err := built.Sched.Epoch(0, built.Cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "topology=%s n=%d alg=%s adversary=%s rule=CR%d start=%s seed=%d%s\n",
		*topo, net0.N(), built.Alg.Name(), built.Adv.Name(), *rule, *start, *seed, schedSuffix(*sched))
	fmt.Fprintf(w, "completed=%v rounds=%d transmissions=%d eccentricity=%d\n",
		res.Completed, res.Rounds, res.Transmissions, net0.Eccentricity())
	if *verbose {
		for node, r := range res.FirstReceive {
			fmt.Fprintf(w, "  node %3d (pid %3d): first receive round %d\n", node, res.ProcOf[node], r)
		}
	}
	return nil
}

// startRule maps the flag string; an unknown value yields 0, which scenario
// validation rejects with a clear message.
func startRule(s string) dualgraph.StartRule {
	switch s {
	case "sync":
		return dualgraph.SyncStart
	case "async":
		return dualgraph.AsyncStart
	}
	return 0
}

// pParams routes the -p flag by the registry's own parameter schema: the
// named entry receives it exactly when its schema documents a "p"
// parameter. Unknown names return nil and fail scenario validation later
// with the registry's suggestion-bearing error.
func pParams(info func(string) (dualgraph.RegistryEntry, bool), name string, p float64) dualgraph.Params {
	if e, ok := info(name); ok && e.AcceptsParam("p") {
		return dualgraph.Params{"p": p}
	}
	return nil
}

func streamSuffix(stream bool) string {
	if stream {
		return " -stream"
	}
	return ""
}

// schedSuffix renders the header fragment of a dynamic run; static runs —
// named "static" or spelled as the empty default, like the spec layer
// treats them — keep their historical headers byte-identical.
func schedSuffix(sched string) string {
	if sched == "" || sched == "static" {
		return ""
	}
	return " sched=" + sched
}

// startObservability wires the live-telemetry surfaces of a streaming run: a
// progress tracker fed by per-shard completions, the -progress stderr line on
// a 2s ticker, and the -metrics Prometheus listener. The tracker is
// observe-only, so attaching it never changes the run's output. The ticker
// always runs (it is what refreshes the progress_* gauges the listener
// serves) but writes to io.Discard unless -progress asked for the line.
// cleanup stops the ticker — emitting one final line — and closes the
// listener.
func startObservability(total int, sc dualgraph.StreamConfig, showProgress bool, metricsAddr string) (onShard func(dualgraph.ShardState), cleanup func(), err error) {
	var stops []func()
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return nil, nil, fmt.Errorf("-metrics: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", metrics.Handler())
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		// Handshake line: tests (and humans with -metrics :0) learn the
		// bound address from here.
		fmt.Fprintf(os.Stderr, "metrics listening on %s\n", ln.Addr())
		stops = append(stops, func() { _ = srv.Close() })
	}
	tr := progress.NewTracker(int64(total), sc)
	out := io.Discard
	if showProgress {
		out = progressOut
	}
	stops = append(stops, tr.Start(out, 2*time.Second))
	return tr.Observe, func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}

// composeShard chains two optional per-shard callbacks.
func composeShard(a, b func(dualgraph.ShardState)) func(dualgraph.ShardState) {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(st dualgraph.ShardState) { a(st); b(st) }
}

// runSpec executes a declarative sweep file: every cell of the Cartesian
// grid runs Trials times on the shared worker pool, and one aggregate line
// prints per cell — streamed in cell order as cells complete, so an
// interrupted run leaves a valid prefix of the full output. The whole
// output is bit-identical at any -workers value.
//
// With ckptPath every completed (cell, shard) accumulator is appended to a
// crash-safe checkpoint file the moment it finishes; with resumePath the
// file's intact records are restored (their trials never re-run, any torn
// tail from the crash is truncated away, fresh shards keep appending) and
// the full output — including the already-checkpointed cells — reprints
// byte-identically to an uninterrupted run.
func runSpec(ctx context.Context, w io.Writer, path string, workers int, ckptPath, resumePath string, showProgress bool, metricsAddr string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sw dualgraph.Sweep
	if err := json.Unmarshal(blob, &sw); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	cells, err := sw.Cells()
	if err != nil {
		return err
	}
	trials := sw.Trials
	if trials == 0 {
		trials = 1
	}

	sc := dualgraph.StreamConfig{}
	var (
		seed    map[dualgraph.ShardKey]*dualgraph.TrialSummary
		writer  *dualgraph.CheckpointWriter
		onShard func(dualgraph.ShardState)
	)
	if ckptPath != "" || resumePath != "" {
		hash, err := sw.Hash()
		if err != nil {
			return err
		}
		meta := dualgraph.CheckpointMetaFor(hash, len(cells), trials, sc)
		if resumePath != "" {
			recs, wr, err := dualgraph.ResumeCheckpoint(resumePath, meta)
			if err != nil {
				return err
			}
			seed = dualgraph.CheckpointSeed(recs)
			writer = wr
		} else {
			wr, err := dualgraph.CreateCheckpoint(ckptPath, meta)
			if err != nil {
				return err
			}
			writer = wr
		}
		defer writer.Close()
		// Append from worker goroutines; a failing write aborts nothing
		// mid-run (results stay correct without the checkpoint) but is
		// reported once the sweep returns.
		var mu sync.Mutex
		var appendErr error
		onShard = func(st dualgraph.ShardState) {
			err := writer.Append(dualgraph.CheckpointRecord{
				Cell: st.Cell, Shard: st.Shard,
				TrialLo: st.TrialLo, TrialHi: st.TrialHi,
				Summary: st.Summary,
			})
			if err != nil {
				mu.Lock()
				if appendErr == nil {
					appendErr = err
				}
				mu.Unlock()
			}
		}
		defer func() {
			if appendErr != nil {
				printError(os.Stderr, fmt.Errorf("checkpoint incomplete: %w", appendErr))
			}
		}()
	}

	if showProgress || metricsAddr != "" {
		obs, cleanup, err := startObservability(len(cells)*trials, sc, showProgress, metricsAddr)
		if err != nil {
			return err
		}
		defer cleanup()
		onShard = composeShard(onShard, obs)
	}

	fmt.Fprintf(w, "grid: cells=%d trials-per-cell=%d\n", len(cells), trials)
	printed := 0
	_, err = sw.StreamFrom(ctx, dualgraph.EngineConfig{Workers: workers}, sc, seed, onShard,
		func(cr dualgraph.CellResult) {
			fmt.Fprintf(w, "%s: %s\n", cr.Cell.Label, dualgraph.FormatSummary(cr.Summary))
			printed++
		})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("interrupted after %d/%d cells (partial results above are final for their cells): %w",
				printed, len(cells), err)
		}
		return err
	}
	return nil
}

// runStream executes a memory-bounded Monte Carlo sweep through the
// streaming reducer and prints aggregate round statistics. Counts, min and
// max are exact; mean is exact up to rounding; quantiles are exact while
// the trial count is within the sketch's exact regime and P² estimates
// beyond it. Output is identical at any -workers value.
func runStream(ctx context.Context, w io.Writer, b *dualgraph.BuiltScenario, topo, sched string, rule int, start string, seed int64, trials, workers int, showProgress bool, metricsAddr string) error {
	sc := dualgraph.StreamConfig{}
	var onShard func(dualgraph.ShardState)
	if showProgress || metricsAddr != "" {
		obs, cleanup, err := startObservability(trials, sc, showProgress, metricsAddr)
		if err != nil {
			return err
		}
		defer cleanup()
		onShard = obs
	}
	sum, err := b.RunStreamFromContext(ctx, trials, dualgraph.EngineConfig{Workers: workers}, sc, nil, onShard)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "topology=%s n=%d alg=%s adversary=%s rule=CR%d start=%s seed=%d trials=%d stream=true%s\n",
		topo, b.Net.N(), b.Alg.Name(), b.Adv.Name(), rule, start, seed, trials, sched)
	fmt.Fprintf(w, "%s\n", dualgraph.FormatSummary(sum))
	return nil
}

// runMany executes a Monte Carlo sweep through the parallel trial engine
// and prints aggregate round statistics.
func runMany(ctx context.Context, w io.Writer, b *dualgraph.BuiltScenario, topo, sched string, rule int, start string, seed int64, trials, workers int) error {
	results, err := b.RunManyContext(ctx, trials, dualgraph.EngineConfig{Workers: workers})
	if err != nil {
		return err
	}
	completed := 0
	totalTx := 0
	rounds := make([]int, 0, len(results))
	for _, res := range results {
		if res.Completed {
			completed++
		}
		totalTx += res.Transmissions
		rounds = append(rounds, res.Rounds)
	}
	sort.Ints(rounds)
	pct := func(q float64) int { return rounds[int(q*float64(len(rounds)-1))] }
	fmt.Fprintf(w, "topology=%s n=%d alg=%s adversary=%s rule=CR%d start=%s seed=%d trials=%d%s\n",
		topo, b.Net.N(), b.Alg.Name(), b.Adv.Name(), rule, start, seed, trials, sched)
	fmt.Fprintf(w, "completed=%d/%d rounds: min=%d p50=%d p90=%d p99=%d max=%d mean-transmissions=%.1f\n",
		completed, trials, rounds[0], pct(0.50), pct(0.90), pct(0.99),
		rounds[len(rounds)-1], float64(totalTx)/float64(trials))
	return nil
}

// Command dgsim runs broadcast simulations: one topology, one algorithm,
// one adversary, one collision rule. With -trials 1 it prints the outcome
// of a single run; with -trials N it fans N independently seeded runs out
// over the parallel trial engine and prints aggregate statistics (results
// are identical at any -workers value). With -stream the sweep runs on the
// streaming reducer, which keeps memory bounded regardless of -trials —
// million-trial sweeps run in O(1) result memory, with exact counts and
// mean and P²-estimated quantiles (exact below the spill threshold).
//
// Examples:
//
//	dgsim -topo clique-bridge -n 33 -alg harmonic -adv greedy -rule 4 -seed 7 -v
//	dgsim -topo geometric -n 65 -alg harmonic -adv greedy -trials 1000
//	dgsim -topo clique-bridge -n 17 -alg harmonic -adv greedy -trials 1000000 -stream
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"dualgraph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dgsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dgsim", flag.ContinueOnError)
	var (
		topo      = fs.String("topo", "clique-bridge", "topology: clique-bridge|complete-layered|line|star|complete|tree|grid|random|geometric|pa")
		n         = fs.Int("n", 33, "network size")
		algName   = fs.String("alg", "harmonic", "algorithm: strong-select|harmonic|round-robin|decay|uniform")
		advName   = fs.String("adv", "greedy", "adversary: benign|random|greedy|full")
		rule      = fs.Int("rule", 4, "collision rule 1..4")
		start     = fs.String("start", "async", "start rule: sync|async")
		seed      = fs.Int64("seed", 1, "random seed")
		maxRounds = fs.Int("max-rounds", 0, "round cap (0 = default)")
		p         = fs.Float64("p", 0.25, "probability parameter for uniform algorithm / random adversary")
		verbose   = fs.Bool("v", false, "print per-node first-receive rounds (single-trial mode only)")
		trials    = fs.Int("trials", 1, "number of independently seeded runs (per-trial seed derived from -seed and the trial index)")
		workers   = fs.Int("workers", 0, "trial engine worker count (0 = one per CPU)")
		stream    = fs.Bool("stream", false, "aggregate trials with the streaming reducer (memory bounded at any -trials; quantiles exact up to the spill threshold, P² estimates beyond)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, err := buildTopology(*topo, *n, *seed)
	if err != nil {
		return err
	}
	alg, err := buildAlgorithm(*algName, net.N(), *p)
	if err != nil {
		return err
	}
	adv, err := buildAdversary(*advName, *p)
	if err != nil {
		return err
	}
	cfg := dualgraph.Config{
		Rule:      dualgraph.CollisionRule(*rule),
		MaxRounds: *maxRounds,
		Seed:      *seed,
	}
	switch *start {
	case "sync":
		cfg.Start = dualgraph.SyncStart
	case "async":
		cfg.Start = dualgraph.AsyncStart
	default:
		return fmt.Errorf("unknown start rule %q", *start)
	}

	if *trials < 1 {
		return fmt.Errorf("trials must be >= 1, got %d", *trials)
	}
	if *verbose && (*trials > 1 || *stream) {
		// Per-node first-receive rounds exist only for a single retained
		// run; silently dropping the flag hid this, so reject it instead.
		return fmt.Errorf("-v prints per-node rounds of a single run and is incompatible with -trials %d%s; drop -v or use -trials 1",
			*trials, streamSuffix(*stream))
	}
	if *stream {
		return runStream(w, net, alg, adv, cfg, *topo, *rule, *start, *seed, *trials, *workers)
	}
	if *trials > 1 {
		return runMany(w, net, alg, adv, cfg, *topo, *rule, *start, *seed, *trials, *workers)
	}

	res, err := dualgraph.Run(net, alg, adv, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "topology=%s n=%d alg=%s adversary=%s rule=CR%d start=%s seed=%d\n",
		*topo, net.N(), alg.Name(), adv.Name(), *rule, *start, *seed)
	fmt.Fprintf(w, "completed=%v rounds=%d transmissions=%d eccentricity=%d\n",
		res.Completed, res.Rounds, res.Transmissions, net.Eccentricity())
	if *verbose {
		for node, r := range res.FirstReceive {
			fmt.Fprintf(w, "  node %3d (pid %3d): first receive round %d\n", node, res.ProcOf[node], r)
		}
	}
	return nil
}

func streamSuffix(stream bool) string {
	if stream {
		return " -stream"
	}
	return ""
}

// runStream executes a memory-bounded Monte Carlo sweep through the
// streaming reducer and prints aggregate round statistics. Counts, min and
// max are exact; mean is exact up to rounding; quantiles are exact while
// the trial count is within the sketch's exact regime and P² estimates
// beyond it. Output is identical at any -workers value.
func runStream(w io.Writer, net *dualgraph.Network, alg dualgraph.Algorithm, adv dualgraph.Adversary,
	cfg dualgraph.Config, topo string, rule int, start string, seed int64, trials, workers int) error {
	sum, err := dualgraph.RunStream(net, alg, adv, cfg, trials,
		dualgraph.EngineConfig{Workers: workers}, dualgraph.StreamConfig{})
	if err != nil {
		return err
	}
	stat := func(f func() (float64, error)) float64 {
		v, err := f()
		if err != nil {
			return math.NaN()
		}
		return v
	}
	fmt.Fprintf(w, "topology=%s n=%d alg=%s adversary=%s rule=CR%d start=%s seed=%d trials=%d stream=true\n",
		topo, net.N(), alg.Name(), adv.Name(), rule, start, seed, trials)
	fmt.Fprintf(w, "completed=%d/%d rounds: min=%.0f mean=%.2f p50=%.2f p90=%.2f p95=%.2f p99=%.2f max=%.0f mean-transmissions=%.1f\n",
		sum.Completed, sum.Trials,
		stat(sum.Rounds.Min), stat(sum.Rounds.Mean),
		stat(func() (float64, error) { return sum.Rounds.Quantile(0.5) }),
		stat(func() (float64, error) { return sum.Rounds.Quantile(0.9) }),
		stat(func() (float64, error) { return sum.Rounds.Quantile(0.95) }),
		stat(func() (float64, error) { return sum.Rounds.Quantile(0.99) }),
		stat(sum.Rounds.Max), stat(sum.Transmissions.Mean))
	return nil
}

// runMany executes a Monte Carlo sweep through the parallel trial engine
// and prints aggregate round statistics.
func runMany(w io.Writer, net *dualgraph.Network, alg dualgraph.Algorithm, adv dualgraph.Adversary,
	cfg dualgraph.Config, topo string, rule int, start string, seed int64, trials, workers int) error {
	results, err := dualgraph.RunMany(net, alg, adv, cfg, trials, dualgraph.EngineConfig{Workers: workers})
	if err != nil {
		return err
	}
	completed := 0
	totalTx := 0
	rounds := make([]int, 0, len(results))
	for _, res := range results {
		if res.Completed {
			completed++
		}
		totalTx += res.Transmissions
		rounds = append(rounds, res.Rounds)
	}
	sort.Ints(rounds)
	pct := func(q float64) int { return rounds[int(q*float64(len(rounds)-1))] }
	fmt.Fprintf(w, "topology=%s n=%d alg=%s adversary=%s rule=CR%d start=%s seed=%d trials=%d\n",
		topo, net.N(), alg.Name(), adv.Name(), rule, start, seed, trials)
	fmt.Fprintf(w, "completed=%d/%d rounds: min=%d p50=%d p90=%d p99=%d max=%d mean-transmissions=%.1f\n",
		completed, trials, rounds[0], pct(0.50), pct(0.90), pct(0.99),
		rounds[len(rounds)-1], float64(totalTx)/float64(trials))
	return nil
}

func buildTopology(name string, n int, seed int64) (*dualgraph.Network, error) {
	rng := dualgraph.NewRand(seed)
	switch name {
	case "clique-bridge":
		return dualgraph.CliqueBridge(n)
	case "complete-layered":
		return dualgraph.CompleteLayered(n)
	case "line":
		return dualgraph.Line(n)
	case "star":
		return dualgraph.Star(n)
	case "complete":
		return dualgraph.Complete(n)
	case "tree":
		return dualgraph.BinaryTree(n)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return dualgraph.Grid(side, side, 2, 0.3, rng)
	case "random":
		return dualgraph.RandomDual(n, 0.12, 0.35, rng)
	case "geometric":
		return dualgraph.Geometric(n, 0.28, 0.7, rng)
	case "pa":
		return dualgraph.PreferentialAttachment(n, 3, 0.5, rng)
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func buildAlgorithm(name string, n int, p float64) (dualgraph.Algorithm, error) {
	switch name {
	case "strong-select":
		return dualgraph.NewStrongSelect(n)
	case "harmonic":
		return dualgraph.NewHarmonicForN(n, 0.02)
	case "round-robin":
		return dualgraph.NewRoundRobin(), nil
	case "decay":
		return dualgraph.NewDecay(), nil
	case "uniform":
		return dualgraph.NewUniform(p)
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func buildAdversary(name string, p float64) (dualgraph.Adversary, error) {
	switch name {
	case "benign":
		return dualgraph.Benign{}, nil
	case "random":
		return dualgraph.NewRandomAdversary(p)
	case "greedy":
		return dualgraph.GreedyCollider{}, nil
	case "full":
		return dualgraph.FullDelivery{}, nil
	}
	return nil, fmt.Errorf("unknown adversary %q", name)
}

// Command dgsim runs a single broadcast simulation: one topology, one
// algorithm, one adversary, one collision rule, and prints the outcome.
//
// Example:
//
//	dgsim -topo clique-bridge -n 33 -alg harmonic -adv greedy -rule 4 -seed 7 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"dualgraph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dgsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dgsim", flag.ContinueOnError)
	var (
		topo      = fs.String("topo", "clique-bridge", "topology: clique-bridge|complete-layered|line|star|complete|tree|grid|random|geometric")
		n         = fs.Int("n", 33, "network size")
		algName   = fs.String("alg", "harmonic", "algorithm: strong-select|harmonic|round-robin|decay|uniform")
		advName   = fs.String("adv", "greedy", "adversary: benign|random|greedy|full")
		rule      = fs.Int("rule", 4, "collision rule 1..4")
		start     = fs.String("start", "async", "start rule: sync|async")
		seed      = fs.Int64("seed", 1, "random seed")
		maxRounds = fs.Int("max-rounds", 0, "round cap (0 = default)")
		p         = fs.Float64("p", 0.25, "probability parameter for uniform algorithm / random adversary")
		verbose   = fs.Bool("v", false, "print per-node first-receive rounds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, err := buildTopology(*topo, *n, *seed)
	if err != nil {
		return err
	}
	alg, err := buildAlgorithm(*algName, net.N(), *p)
	if err != nil {
		return err
	}
	adv, err := buildAdversary(*advName, *p)
	if err != nil {
		return err
	}
	cfg := dualgraph.Config{
		Rule:      dualgraph.CollisionRule(*rule),
		MaxRounds: *maxRounds,
		Seed:      *seed,
	}
	switch *start {
	case "sync":
		cfg.Start = dualgraph.SyncStart
	case "async":
		cfg.Start = dualgraph.AsyncStart
	default:
		return fmt.Errorf("unknown start rule %q", *start)
	}

	res, err := dualgraph.Run(net, alg, adv, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("topology=%s n=%d alg=%s adversary=%s rule=CR%d start=%s seed=%d\n",
		*topo, net.N(), alg.Name(), adv.Name(), *rule, *start, *seed)
	fmt.Printf("completed=%v rounds=%d transmissions=%d eccentricity=%d\n",
		res.Completed, res.Rounds, res.Transmissions, net.Eccentricity())
	if *verbose {
		for node, r := range res.FirstReceive {
			fmt.Printf("  node %3d (pid %3d): first receive round %d\n", node, res.ProcOf[node], r)
		}
	}
	return nil
}

func buildTopology(name string, n int, seed int64) (*dualgraph.Network, error) {
	rng := dualgraph.NewRand(seed)
	switch name {
	case "clique-bridge":
		return dualgraph.CliqueBridge(n)
	case "complete-layered":
		return dualgraph.CompleteLayered(n)
	case "line":
		return dualgraph.Line(n)
	case "star":
		return dualgraph.Star(n)
	case "complete":
		return dualgraph.Complete(n)
	case "tree":
		return dualgraph.BinaryTree(n)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return dualgraph.Grid(side, side, 2, 0.3, rng)
	case "random":
		return dualgraph.RandomDual(n, 0.12, 0.35, rng)
	case "geometric":
		return dualgraph.Geometric(n, 0.28, 0.7, rng)
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func buildAlgorithm(name string, n int, p float64) (dualgraph.Algorithm, error) {
	switch name {
	case "strong-select":
		return dualgraph.NewStrongSelect(n)
	case "harmonic":
		return dualgraph.NewHarmonicForN(n, 0.02)
	case "round-robin":
		return dualgraph.NewRoundRobin(), nil
	case "decay":
		return dualgraph.NewDecay(), nil
	case "uniform":
		return dualgraph.NewUniform(p)
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func buildAdversary(name string, p float64) (dualgraph.Adversary, error) {
	switch name {
	case "benign":
		return dualgraph.Benign{}, nil
	case "random":
		return dualgraph.NewRandomAdversary(p)
	case "greedy":
		return dualgraph.GreedyCollider{}, nil
	case "full":
		return dualgraph.FullDelivery{}, nil
	}
	return nil, fmt.Errorf("unknown adversary %q", name)
}

package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dualgraph"
)

// resumeSpec is a grid big enough that a mid-run SIGKILL lands between the
// first and the last checkpoint record: 4 cells × 60 trials of the harmonic
// algorithm under the greedy collider.
const resumeSpec = `{
  "base": {"topology": {"name": "clique-bridge"}, "algorithm": {"name": "harmonic"},
           "adversary": {"name": "greedy"}, "n": 9, "rule": "CR4", "start": "async", "seed": 7},
  "topologies": [{"name": "clique-bridge"}, {"name": "line"}],
  "algorithms": [{"name": "harmonic"}, {"name": "round-robin"}],
  "trials": 60
}`

// writeResumeSpec drops the spec into dir and returns its path.
func writeResumeSpec(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(path, []byte(resumeSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// recordCount recovers the checkpoint leniently and reports how many intact
// records it holds right now (0 when the file is missing or headerless).
func recordCount(specPath, ckPath string) int {
	blob, err := os.ReadFile(specPath)
	if err != nil {
		return 0
	}
	var sw dualgraph.Sweep
	if err := sw.UnmarshalJSON(blob); err != nil {
		return 0
	}
	cells, err := sw.Cells()
	if err != nil {
		return 0
	}
	hash, err := sw.Hash()
	if err != nil {
		return 0
	}
	trials := sw.Trials
	if trials == 0 {
		trials = 1
	}
	meta := dualgraph.CheckpointMetaFor(hash, len(cells), trials, dualgraph.StreamConfig{})
	recs, _, err := dualgraph.RecoverCheckpoint(ckPath, meta)
	if err != nil {
		return 0
	}
	return len(recs)
}

// TestKillAndResumeByteIdentical is the end-to-end crash-recovery golden
// test: a real dgsim process is SIGKILLed mid-grid while checkpointing, and
// the resumed run's full output is byte-identical to an uninterrupted run —
// at workers 1, 2, and 8.
func TestKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	dir := t.TempDir()
	specPath := writeResumeSpec(t, dir)

	// Uninterrupted reference output.
	var want strings.Builder
	if err := run(context.Background(), []string{"-spec", specPath, "-workers", "4"}, &want); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "dgsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Kill a slow (1-worker) checkpointing run once it has persisted some —
	// but not all — shards. 4 cells × Shards(60)=60 shards = 240 records.
	ckPath := filepath.Join(dir, "grid.ckpt")
	cmd := exec.Command(bin, "-spec", specPath, "-checkpoint", ckPath, "-workers", "1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for recordCount(specPath, ckPath) < 3 {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("checkpoint never accumulated records")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected to report the kill; the checkpoint is what matters
	killed := recordCount(specPath, ckPath)
	if killed == 0 {
		t.Fatal("killed run left no recoverable records")
	}
	if killed >= 240 {
		t.Skip("run finished before the kill landed; nothing left to resume")
	}
	ckBlob, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []string{"1", "2", "8"} {
		// Each resume gets its own copy: resuming appends to the file, and
		// every worker count must recover from the same crash state.
		cp := filepath.Join(dir, "resume-"+workers+".ckpt")
		if err := os.WriteFile(cp, ckBlob, 0o644); err != nil {
			t.Fatal(err)
		}
		var got strings.Builder
		if err := run(context.Background(), []string{"-spec", specPath, "-resume", cp, "-workers", workers}, &got); err != nil {
			t.Fatalf("resume workers=%s: %v", workers, err)
		}
		if got.String() != want.String() {
			t.Fatalf("workers=%s: resumed output differs from uninterrupted run:\n--- resumed\n%s--- uninterrupted\n%s",
				workers, got.String(), want.String())
		}
		// The resumed checkpoint must now be complete: a second resume runs
		// nothing and still reproduces the output.
		var again strings.Builder
		if err := run(context.Background(), []string{"-spec", specPath, "-resume", cp, "-workers", workers}, &again); err != nil {
			t.Fatalf("re-resume workers=%s: %v", workers, err)
		}
		if again.String() != want.String() {
			t.Fatalf("workers=%s: fully-seeded resume output differs", workers)
		}
	}
}

// TestResumeRejectsEditedSpec: the spec-hash gate refuses to splice a
// checkpoint into a different experiment.
func TestResumeRejectsEditedSpec(t *testing.T) {
	dir := t.TempDir()
	specPath := writeResumeSpec(t, dir)
	small := strings.Replace(resumeSpec, `"trials": 60`, `"trials": 6`, 1)
	if err := os.WriteFile(specPath, []byte(small), 0o644); err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(dir, "grid.ckpt")
	var out strings.Builder
	if err := run(context.Background(), []string{"-spec", specPath, "-checkpoint", ckPath, "-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(small, `"seed": 7`, `"seed": 8`, 1)
	if err := os.WriteFile(specPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-spec", specPath, "-resume", ckPath}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "spec changed") {
		t.Fatalf("edited spec resumed: %v", err)
	}
}

// TestCheckpointFlagValidation pins the flag contract.
func TestCheckpointFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-checkpoint", "x"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "-spec") {
		t.Fatalf("-checkpoint without -spec: %v", err)
	}
	if err := run(context.Background(), []string{"-resume", "x"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "-spec") {
		t.Fatalf("-resume without -spec: %v", err)
	}
	if err := run(context.Background(), []string{"-spec", "s", "-checkpoint", "x", "-resume", "y"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-checkpoint with -resume: %v", err)
	}
}

// Command regdocs prints docs/REGISTRY.md to stdout: the markdown rendering
// of every registry table (topologies, algorithms, adversaries, schedules)
// with their parameter schemas. `make docs-registry` pipes it into the
// committed file and CI fails when the two drift (`make docs-check`), so
// the registry documentation can never silently fall behind the code.
package main

import (
	"os"

	"dualgraph"
)

func main() {
	dualgraph.WriteRegistryMarkdown(os.Stdout)
}

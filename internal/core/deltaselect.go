package core

import (
	"fmt"
	"math/rand"

	"dualgraph/internal/sim"
	"dualgraph/internal/ssf"
)

// DeltaSelect is the oblivious algorithm of Clementi, Monti and Silvestri
// for dynamic-fault graphs that the paper compares against in Section 2.2:
// all holders cycle forever through a single (n, Δ)-strongly-selective
// family, where Δ is a known upper bound on the in-degree of the
// interference graph G'. Whenever a frontier node u has a G-neighbour v
// without the message, the contention set at v (its G'-in-neighbours that
// hold the message) has size at most Δ, so some set of the family isolates u
// within it and v receives.
//
// Its round complexity is O(n · min{n, Δ² log n}) with the constructive
// families used here; it beats Strong Select when Δ is small but, unlike
// Strong Select, requires knowledge of Δ (the comparison the paper makes:
// "This algorithm outperforms ours when Δ = o(√(n/log n)); however, it
// requires that all processes know the in-degree Δ of the interference
// graph G'").
type DeltaSelect struct {
	n      int
	delta  int
	family ssf.Family
}

var _ sim.Algorithm = (*DeltaSelect)(nil)

// NewDeltaSelect builds the algorithm for n processes with the in-degree
// bound delta (clamped to n).
func NewDeltaSelect(n, delta int) (*DeltaSelect, error) {
	if n < 2 {
		return nil, fmt.Errorf("delta select needs n >= 2, got %d", n)
	}
	if delta < 1 {
		return nil, fmt.Errorf("delta select needs delta >= 1, got %d", delta)
	}
	if delta > n {
		delta = n
	}
	family, err := ssf.New(n, delta)
	if err != nil {
		return nil, fmt.Errorf("selective family: %w", err)
	}
	return &DeltaSelect{n: n, delta: delta, family: family}, nil
}

// Name implements sim.Algorithm.
func (a *DeltaSelect) Name() string { return fmt.Sprintf("delta-select(Δ=%d)", a.delta) }

// FamilySize returns the size of the underlying selective family
// (diagnostics).
func (a *DeltaSelect) FamilySize() int { return a.family.Size() }

// NewProcess implements sim.Algorithm; the algorithm is deterministic and
// oblivious (the schedule depends only on the id and the round), so rng is
// ignored.
func (a *DeltaSelect) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	return &deltaSelectProc{alg: a, id: id}
}

type deltaSelectProc struct {
	alg *DeltaSelect
	id  int
	has bool
}

var _ sim.Process = (*deltaSelectProc)(nil)

func (p *deltaSelectProc) Start(_ int, hasMessage bool) { p.has = hasMessage }

func (p *deltaSelectProc) Decide(round int) bool {
	if !p.has {
		return false
	}
	set := (round - 1) % p.alg.family.Size()
	return p.alg.family.Contains(set, p.id)
}

func (p *deltaSelectProc) Receive(_ int, r sim.Reception) {
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

package core

import (
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

func TestNewTreeCastValidation(t *testing.T) {
	g := graph.NewGraph(1, false)
	if _, err := NewTreeCast(g.Freeze(), 0); err == nil {
		t.Fatal("expected error for n=1")
	}
	g = graph.NewGraph(4, false)
	g.MustAddEdge(0, 1)
	if _, err := NewTreeCast(g.Freeze(), 9); err == nil {
		t.Fatal("expected error for out-of-range source")
	}
}

func TestTreeCastBFSSlots(t *testing.T) {
	// Line 0-1-2-3: BFS order is 0,1,2,3, so node k transmits in round k+1.
	g := graph.NewGraph(4, false)
	for u := 0; u+1 < 4; u++ {
		g.MustAddEdge(graph.NodeID(u), graph.NodeID(u+1))
	}
	tc, err := NewTreeCast(g.Freeze(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for pid := 1; pid <= 4; pid++ {
		p := tc.NewProcess(pid, 4, nil)
		p.Start(1, true) // force-hold so the slot is observable
		for r := 1; r <= 4; r++ {
			want := r == pid
			if got := p.Decide(r); got != want {
				t.Errorf("pid %d round %d: Decide = %v, want %v", pid, r, got, want)
			}
		}
	}
}

func TestTreeCastUnreachableNodesSilent(t *testing.T) {
	// Node 3 unreachable in the trusted graph: it gets no slot.
	g := graph.NewGraph(4, true)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	tc, err := NewTreeCast(g.Freeze(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := tc.NewProcess(4, 4, nil)
	p.Start(1, true)
	for r := 1; r <= 10; r++ {
		if p.Decide(r) {
			t.Fatal("unreachable node transmitted")
		}
	}
}

func TestTreeCastSingleSenderPerRound(t *testing.T) {
	d, err := graph.BinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTreeCast(d.G(), d.Source())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(d, tc, adversary.Benign{}, sim.Config{
		Rule: sim.CR1, Start: sim.SyncStart, Seed: 1,
		MaxRounds: 16, RecordSenders: true, RunToMaxRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("treecast must complete on its own topology")
	}
	for r, senders := range res.SendersByRound {
		if len(senders) > 1 {
			t.Fatalf("round %d has %d senders; treecast must be collision-free", r+1, len(senders))
		}
	}
}

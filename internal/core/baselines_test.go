package core

import (
	"math/rand"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

func TestRoundRobinTransmissionPattern(t *testing.T) {
	p := NewRoundRobin().NewProcess(3, 5, nil)
	p.Start(1, true)
	want := map[int]bool{3: true, 8: true, 13: true}
	for r := 1; r <= 15; r++ {
		if got := p.Decide(r); got != want[r] {
			t.Errorf("round %d: Decide = %v, want %v", r, got, want[r])
		}
	}
}

func TestRoundRobinCompletesOnCliqueBridgeWorstCase(t *testing.T) {
	// Round robin isolates every process once per n rounds, so even the
	// Theorem 2 adversary cannot stop it beyond ~2n rounds.
	n := 20
	d, err := graph.CliqueBridge(n)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewTheorem2(n, n-1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(d, NewRoundRobin(), adv, sim.Config{
		Rule:      sim.CR1,
		Start:     sim.SyncStart,
		MaxRounds: 3 * n,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("round robin must complete against the Theorem 2 adversary")
	}
	if res.Rounds < n-3 {
		t.Fatalf("completion in %d rounds contradicts Theorem 2 (n-3 = %d)", res.Rounds, n-3)
	}
}

func TestDecayCompletesOnClassicalNetworks(t *testing.T) {
	for _, build := range []func() (*graph.Dual, error){
		func() (*graph.Dual, error) { return graph.Complete(32) },
		func() (*graph.Dual, error) { return graph.Line(24) },
		func() (*graph.Dual, error) { return graph.BinaryTree(31) },
	} {
		d, err := build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(d, NewDecay(), adversary.Benign{}, sim.Config{
			Rule:      sim.CR3,
			Start:     sim.AsyncStart,
			MaxRounds: 20000,
			Seed:      77,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("decay did not complete on %d-node classical network", d.N())
		}
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0); err == nil {
		t.Fatal("expected error for p=0")
	}
	if _, err := NewUniform(1.5); err == nil {
		t.Fatal("expected error for p>1")
	}
}

func TestUniformAlwaysSendsAtP1(t *testing.T) {
	a, err := NewUniform(1)
	if err != nil {
		t.Fatal(err)
	}
	p := a.NewProcess(1, 4, rand.New(rand.NewSource(1)))
	p.Start(1, true)
	for r := 1; r <= 10; r++ {
		if !p.Decide(r) {
			t.Fatal("uniform(1) holder must always transmit")
		}
	}
}

func TestUniformCompletesOnStar(t *testing.T) {
	d, err := graph.Star(16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewUniform(0.2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(d, a, adversary.Benign{}, sim.Config{
		Rule: sim.CR3, Start: sim.AsyncStart, MaxRounds: 5000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("uniform must complete on a star (source reaches all leaves)")
	}
}

func TestAlgorithmNames(t *testing.T) {
	if NewRoundRobin().Name() != "round-robin" {
		t.Error("round robin name")
	}
	if NewDecay().Name() != "decay" {
		t.Error("decay name")
	}
	h, err := NewHarmonic(7)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "harmonic(T=7)" {
		t.Errorf("harmonic name = %q", h.Name())
	}
	ss, err := NewStrongSelect(16)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Name() != "strong-select" {
		t.Error("strong select name")
	}
	u, err := NewUniform(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "uniform(p=0.250)" {
		t.Errorf("uniform name = %q", u.Name())
	}
}

func TestDecayHoldersEventuallyRelay(t *testing.T) {
	// Two-hop line: the middle node must relay.
	d, err := graph.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(d, NewDecay(), adversary.Benign{}, sim.Config{
		Rule: sim.CR3, Start: sim.AsyncStart, MaxRounds: 1000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("decay must complete on a 3-node line")
	}
	if res.FirstReceive[2] <= res.FirstReceive[1] {
		t.Fatal("far node cannot receive before the relay")
	}
}

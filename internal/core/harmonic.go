package core

import (
	"fmt"
	"math"
	"math/rand"

	"dualgraph/internal/sim"
)

// Harmonic is the randomized Harmonic Broadcast algorithm of Section 7.
// After first receiving the message in round t_v, a node transmits in every
// round t > t_v with probability
//
//	p_v(t) = 1 / (1 + floor((t - t_v - 1) / T)),
//
// i.e. with probability 1 for T rounds, then 1/2 for T rounds, then 1/3, and
// so on. With T = ceil(12 ln(n/ε)) broadcast completes within
// 2·n·T·H(n) = O(n log² n) rounds with probability at least 1-ε
// (Theorems 18 and 19).
type Harmonic struct {
	// T is the number of rounds each probability level is held for.
	T int
}

var _ sim.Algorithm = (*Harmonic)(nil)

// NewHarmonic builds the algorithm with an explicit T >= 1.
func NewHarmonic(t int) (*Harmonic, error) {
	if t < 1 {
		return nil, fmt.Errorf("harmonic needs T >= 1, got %d", t)
	}
	return &Harmonic{T: t}, nil
}

// NewHarmonicForN builds the algorithm with the paper's parameter choice
// T = ceil(12 ln(n/epsilon)) for failure probability epsilon.
func NewHarmonicForN(n int, epsilon float64) (*Harmonic, error) {
	if n < 2 {
		return nil, fmt.Errorf("harmonic needs n >= 2, got %d", n)
	}
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("epsilon %v outside (0,1)", epsilon)
	}
	return NewHarmonic(HarmonicT(n, epsilon))
}

// HarmonicT returns the paper's T = ceil(12 ln(n/epsilon)).
func HarmonicT(n int, epsilon float64) int {
	return int(math.Ceil(12 * math.Log(float64(n)/epsilon)))
}

// Name implements sim.Algorithm.
func (a *Harmonic) Name() string { return fmt.Sprintf("harmonic(T=%d)", a.T) }

// NewProcess implements sim.Algorithm.
func (a *Harmonic) NewProcess(id, n int, rng *rand.Rand) sim.Process {
	return &harmonicProc{t: a.T, rng: rng, wake: -1}
}

type harmonicProc struct {
	t    int
	rng  *rand.Rand
	wake int // t_v: the round the process first received the message; -1 if none
}

var _ sim.Process = (*harmonicProc)(nil)

func (p *harmonicProc) Start(round int, hasMessage bool) {
	if hasMessage {
		// The source receives the message from the environment before round
		// 1; the paper sets t_s = 0 so it transmits from round 1 on.
		p.wake = 0
	}
}

func (p *harmonicProc) Decide(round int) bool {
	if p.wake < 0 || round <= p.wake {
		return false
	}
	return p.rng.Float64() < SendProbability(round, p.wake, p.t)
}

func (p *harmonicProc) Receive(round int, r sim.Reception) {
	if p.wake < 0 && r.Kind == sim.Delivered && r.Broadcast {
		p.wake = round
	}
}

// SendProbability returns p_v(t) for a node that first received the message
// in round tv, with level length T: 1/(1 + floor((t-tv-1)/T)) for t > tv and
// 0 otherwise.
func SendProbability(t, tv, T int) float64 {
	if t <= tv {
		return 0
	}
	return 1 / float64(1+(t-tv-1)/T)
}

// SumProbabilities returns P(t), the sum over a wake-up pattern (the sorted
// rounds t_1 <= ... <= t_n at which nodes receive the message) of the
// per-node transmission probabilities in round t (Section 7, equation (2)).
func SumProbabilities(pattern []int, t, T int) float64 {
	sum := 0.0
	for _, tv := range pattern {
		sum += SendProbability(t, tv, T)
	}
	return sum
}

// BusyRounds counts the busy rounds (P(t) >= 1) induced by a wake-up pattern
// within rounds 1..horizon. Lemma 15 proves this is at most n·T·H(n) for any
// pattern.
func BusyRounds(pattern []int, T, horizon int) int {
	busy := 0
	for t := 1; t <= horizon; t++ {
		if SumProbabilities(pattern, t, T) >= 1 {
			busy++
		}
	}
	return busy
}

// FrontLoadedPattern returns the wake-up pattern in which node i wakes as
// early as possible subject to waking one node per round: 0, 1, 2, ..., n-1.
// Lemma 14 shows a busy-round-maximizing pattern has all its busy rounds
// first; this pattern is the natural adversarial candidate.
func FrontLoadedPattern(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// SimultaneousPattern returns the pattern in which all nodes wake in round
// 0; the probability sum then decays like n/(1+t/T).
func SimultaneousPattern(n int) []int {
	return make([]int, n)
}

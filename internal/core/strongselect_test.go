package core

import (
	"math"
	"math/rand"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

func TestNewStrongSelectValidation(t *testing.T) {
	if _, err := NewStrongSelect(1); err == nil {
		t.Fatal("expected error for n=1")
	}
}

func TestStrongSelectScales(t *testing.T) {
	a, err := NewStrongSelect(1024)
	if err != nil {
		t.Fatal(err)
	}
	// smax = log2(sqrt(1024 / 10)) = log2(10.1...) = 3.
	if a.Smax() != 3 {
		t.Fatalf("Smax = %d, want 3", a.Smax())
	}
	if a.EpochLength() != 7 {
		t.Fatalf("EpochLength = %d, want 7", a.EpochLength())
	}
	// The top family must be the (n,n)-SSF round robin.
	if a.Family(a.Smax()).Size() != 1024 {
		t.Fatalf("top family size = %d, want n", a.Family(a.Smax()).Size())
	}
}

func TestStrongSelectSlotSchedule(t *testing.T) {
	a, err := NewStrongSelect(1024) // smax=3, epoch length 7
	if err != nil {
		t.Fatal(err)
	}
	// Epoch layout: round 1 -> F1; rounds 2-3 -> F2; rounds 4-7 -> F3.
	wantScale := []int{1, 2, 2, 3, 3, 3, 3}
	for r := 1; r <= 7; r++ {
		if got := a.SlotAt(r).Scale; got != wantScale[r-1] {
			t.Errorf("round %d scale = %d, want %d", r, got, wantScale[r-1])
		}
	}
	// Second epoch repeats the scales with advanced counters.
	for r := 8; r <= 14; r++ {
		if got := a.SlotAt(r).Scale; got != wantScale[r-8] {
			t.Errorf("round %d scale = %d, want %d", r, got, wantScale[r-8])
		}
	}
	// Counters advance by the per-epoch set count of the scale.
	if a.SlotAt(1).Counter != 0 || a.SlotAt(8).Counter != 1 {
		t.Errorf("scale-1 counters = %d,%d, want 0,1", a.SlotAt(1).Counter, a.SlotAt(8).Counter)
	}
	if a.SlotAt(4).Counter != 0 || a.SlotAt(7).Counter != 3 || a.SlotAt(11).Counter != 4 {
		t.Errorf("scale-3 counters wrong: %d %d %d",
			a.SlotAt(4).Counter, a.SlotAt(7).Counter, a.SlotAt(11).Counter)
	}
}

func TestStrongSelectSlotCountersAreContiguous(t *testing.T) {
	a, err := NewStrongSelect(256)
	if err != nil {
		t.Fatal(err)
	}
	// For each scale, counters across rounds must be 0,1,2,... in order.
	next := make([]int, a.Smax()+1)
	for r := 1; r <= 10*a.EpochLength(); r++ {
		slot := a.SlotAt(r)
		if slot.Counter != next[slot.Scale] {
			t.Fatalf("round %d scale %d counter = %d, want %d", r, slot.Scale, slot.Counter, next[slot.Scale])
		}
		next[slot.Scale]++
		if wantSet := slot.Counter % a.Family(slot.Scale).Size(); slot.Set != wantSet {
			t.Fatalf("round %d set = %d, want %d", r, slot.Set, wantSet)
		}
	}
}

func TestStrongSelectSourceParticipatesOncePerFamily(t *testing.T) {
	n := 64
	a, err := NewStrongSelect(n)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := a.NewProcess(1, n, nil).(*strongSelectProc)
	if !ok {
		t.Fatal("unexpected process type")
	}
	p.Start(1, true)
	// Count scale-s transmission opportunities consumed.
	horizon := 50 * a.EpochLength() * n
	for r := 1; r <= horizon; r++ {
		p.Decide(r)
	}
	if !p.Done() {
		t.Fatal("process must finish all its iterations")
	}
	// After Done, it never transmits again.
	for r := horizon + 1; r < horizon+2*a.EpochLength(); r++ {
		if p.Decide(r) {
			t.Fatal("finished process transmitted")
		}
	}
}

func TestStrongSelectNonHolderSilent(t *testing.T) {
	a, err := NewStrongSelect(16)
	if err != nil {
		t.Fatal(err)
	}
	p := a.NewProcess(3, 16, nil)
	p.Start(1, false)
	for r := 1; r <= 100; r++ {
		if p.Decide(r) {
			t.Fatal("process without the message transmitted")
		}
	}
	p.Receive(100, sim.Reception{Kind: sim.Delivered, Broadcast: true, FromProc: 1})
	sent := false
	for r := 101; r <= 100+16*16*64; r++ {
		if p.Decide(r) {
			sent = true
			break
		}
	}
	if !sent {
		t.Fatal("holder never transmitted")
	}
}

func strongSelectBound(n int) int {
	// X = 12 n^{3/2} f(n) / sqrt(log n) from Theorem 10, with the
	// constructive family's extra log factor absorbed into a generous
	// constant.
	nf := float64(n)
	return int(40*nf*math.Sqrt(nf)*math.Log2(nf)) + 1000
}

func TestStrongSelectCompletesOnDualGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	topos := map[string]*graph.Dual{}
	d, err := graph.CliqueBridge(33)
	if err != nil {
		t.Fatal(err)
	}
	topos["clique-bridge"] = d
	d, err = graph.CompleteLayered(33)
	if err != nil {
		t.Fatal(err)
	}
	topos["complete-layered"] = d
	d, err = graph.RandomDual(40, 0.1, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	topos["random"] = d
	d, err = graph.DirectedLayered([]int{3, 4, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	topos["directed-layered"] = d

	for name, dd := range topos {
		t.Run(name, func(t *testing.T) {
			alg, err := NewStrongSelect(dd.N())
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(dd, alg, adversary.GreedyCollider{}, sim.Config{
				Rule:      sim.CR4,
				Start:     sim.AsyncStart,
				MaxRounds: strongSelectBound(dd.N()),
				Seed:      99,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("strong select did not complete within %d rounds", strongSelectBound(dd.N()))
			}
		})
	}
}

func TestStrongSelectDeterministic(t *testing.T) {
	d, err := graph.CliqueBridge(17)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewStrongSelect(17)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) int {
		res, err := sim.Run(d, alg, adversary.GreedyCollider{}, sim.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	// Deterministic algorithm + deterministic adversary: seed must not matter.
	if run(1) != run(2) {
		t.Fatal("deterministic execution depends on the seed")
	}
}

package core

import (
	"fmt"
	"math"
	"math/rand"

	"dualgraph/internal/sim"
)

// RoundRobin is the deterministic baseline: once a process holds the
// message it transmits exactly in the rounds congruent to its identifier
// modulo n. In any round exactly one process is scheduled, so every holder
// is isolated once every n rounds. Round robin broadcasts in O(n·D) rounds
// in any dual graph of source eccentricity D and in O(n) rounds in
// constant-diameter networks — matching the Theorem 2 lower bound and the
// classical O(n) bound of Table 1 (it is also the paper's remark after
// Theorem 4).
type RoundRobin struct{}

var _ sim.Algorithm = (*RoundRobin)(nil)

// NewRoundRobin returns the round-robin algorithm.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements sim.Algorithm.
func (RoundRobin) Name() string { return "round-robin" }

// NewProcess implements sim.Algorithm; round robin is deterministic and
// ignores rng.
func (RoundRobin) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	return &roundRobinProc{id: id, n: n}
}

type roundRobinProc struct {
	id, n int
	has   bool
}

var _ sim.Process = (*roundRobinProc)(nil)

func (p *roundRobinProc) Start(_ int, hasMessage bool) { p.has = hasMessage }

func (p *roundRobinProc) Decide(round int) bool {
	return p.has && (round-1)%p.n == p.id-1
}

func (p *roundRobinProc) Receive(_ int, r sim.Reception) {
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

// Decay is the classical randomized broadcast protocol of Bar-Yehuda,
// Goldreich and Itai, used here as the classical-model baseline of Table 2.
// Rounds are grouped into globally aligned phases of ceil(log2 n)+1 rounds;
// a holder transmits in the j-th round of each phase with probability 2^-j
// (j = 0, 1, ...), sweeping through all densities of contending neighbours.
type Decay struct{}

var _ sim.Algorithm = (*Decay)(nil)

// NewDecay returns the decay algorithm.
func NewDecay() *Decay { return &Decay{} }

// Name implements sim.Algorithm.
func (Decay) Name() string { return "decay" }

// NewProcess implements sim.Algorithm.
func (Decay) NewProcess(id, n int, rng *rand.Rand) sim.Process {
	phase := int(math.Ceil(math.Log2(float64(n)))) + 1
	if phase < 1 {
		phase = 1
	}
	return &decayProc{phaseLen: phase, rng: rng}
}

type decayProc struct {
	phaseLen int
	rng      *rand.Rand
	has      bool
}

var _ sim.Process = (*decayProc)(nil)

func (p *decayProc) Start(_ int, hasMessage bool) { p.has = hasMessage }

func (p *decayProc) Decide(round int) bool {
	if !p.has {
		return false
	}
	j := (round - 1) % p.phaseLen
	return p.rng.Float64() < math.Pow(2, -float64(j))
}

func (p *decayProc) Receive(_ int, r sim.Reception) {
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

// Uniform is the simplest randomized baseline: every holder transmits each
// round with a fixed probability p.
type Uniform struct {
	// P is the per-round transmission probability.
	P float64
}

var _ sim.Algorithm = (*Uniform)(nil)

// NewUniform validates p and returns the uniform algorithm.
func NewUniform(p float64) (*Uniform, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("uniform needs p in (0,1], got %v", p)
	}
	return &Uniform{P: p}, nil
}

// Name implements sim.Algorithm.
func (a *Uniform) Name() string { return fmt.Sprintf("uniform(p=%.3f)", a.P) }

// NewProcess implements sim.Algorithm.
func (a *Uniform) NewProcess(id, n int, rng *rand.Rand) sim.Process {
	return &uniformProc{p: a.P, rng: rng}
}

type uniformProc struct {
	p   float64
	rng *rand.Rand
	has bool
}

var _ sim.Process = (*uniformProc)(nil)

func (p *uniformProc) Start(_ int, hasMessage bool) { p.has = hasMessage }

func (p *uniformProc) Decide(_ int) bool {
	return p.has && p.rng.Float64() < p.p
}

func (p *uniformProc) Receive(_ int, r sim.Reception) {
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

// Package core implements the paper's broadcast algorithms: the
// deterministic Strong Select algorithm (Section 5, O(n^{3/2} √log n)
// rounds), the randomized Harmonic Broadcast algorithm (Section 7,
// O(n log² n) rounds w.h.p.), and the baselines they are compared against
// (round robin, the classical Decay protocol, and uniform-probability
// broadcast).
package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"dualgraph/internal/sim"
	"dualgraph/internal/ssf"
)

// StrongSelect is the deterministic broadcast algorithm of Section 5. Rounds
// are grouped into epochs of 2^smax - 1 rounds; the first round of each
// epoch runs the smallest strongly selective family F_1, the next two rounds
// F_2, the next four F_3, and so on, so family F_s advances 2^{s-1} sets per
// epoch. A node that receives the message waits, for each s, until F_s
// cycles back to its first set and then participates in exactly one complete
// iteration of F_s, transmitting in the rounds whose set contains its id.
// Participating only once bounds the interval in which a node can interfere,
// at the cost of the amortized progress argument of Theorem 10.
type StrongSelect struct {
	n        int
	smax     int
	epochLen int
	families []ssf.Family // families[s-1] is the (n, 2^s)-SSF; the last is round robin
}

var _ sim.Algorithm = (*StrongSelect)(nil)

// NewStrongSelect builds the algorithm for an n-process network,
// constructing one strongly selective family per scale s = 1..smax with
// smax = log2(sqrt(n / log n)) as in the paper (at least 1), and the
// round-robin (n,n)-SSF at the top scale.
func NewStrongSelect(n int) (*StrongSelect, error) {
	if n < 2 {
		return nil, fmt.Errorf("strong select needs n >= 2, got %d", n)
	}
	smax := 1
	if n >= 4 {
		s := int(math.Floor(math.Log2(math.Sqrt(float64(n) / math.Log2(float64(n))))))
		if s > smax {
			smax = s
		}
	}
	a := &StrongSelect{
		n:        n,
		smax:     smax,
		epochLen: (1 << smax) - 1,
		families: make([]ssf.Family, smax),
	}
	for s := 1; s < smax; s++ {
		k := 1 << s
		if k > n {
			k = n
		}
		f, err := ssf.New(n, k)
		if err != nil {
			return nil, fmt.Errorf("family for s=%d: %w", s, err)
		}
		a.families[s-1] = f
	}
	rr, err := ssf.NewRoundRobin(n)
	if err != nil {
		return nil, err
	}
	a.families[smax-1] = rr
	return a, nil
}

// Name implements sim.Algorithm.
func (a *StrongSelect) Name() string { return "strong-select" }

// Smax returns the number of selective-family scales (diagnostics).
func (a *StrongSelect) Smax() int { return a.smax }

// EpochLength returns the number of rounds per epoch (diagnostics).
func (a *StrongSelect) EpochLength() int { return a.epochLen }

// Family returns the (n, 2^s)-SSF used at scale s in 1..Smax (diagnostics).
func (a *StrongSelect) Family(s int) ssf.Family { return a.families[s-1] }

// Slot describes which selective family and set a given global round runs.
type Slot struct {
	// Scale is the family index s in 1..smax.
	Scale int
	// Set is the index of the family set used this round.
	Set int
	// Counter is the global number of scale-s slots before this one.
	Counter int
}

// SlotAt returns the schedule slot of the given 1-based global round.
// Within an epoch, round positions [2^{s-1}, 2^s - 1] belong to scale s.
func (a *StrongSelect) SlotAt(round int) Slot {
	epoch := (round - 1) / a.epochLen
	pos := (round-1)%a.epochLen + 1
	s := bits.Len(uint(pos)) // floor(log2 pos) + 1
	perEpoch := 1 << (s - 1)
	offset := pos - perEpoch
	counter := epoch*perEpoch + offset
	return Slot{
		Scale:   s,
		Set:     counter % a.families[s-1].Size(),
		Counter: counter,
	}
}

// NewProcess implements sim.Algorithm. Strong Select is deterministic and
// ignores rng.
func (a *StrongSelect) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	return &strongSelectProc{
		alg:    a,
		id:     id,
		phases: make([]participation, a.smax),
	}
}

type participationState int

const (
	waiting participationState = iota + 1
	participating
	finished
)

type participation struct {
	state    participationState
	consumed int
}

type strongSelectProc struct {
	alg    *StrongSelect
	id     int
	has    bool
	phases []participation
}

var _ sim.Process = (*strongSelectProc)(nil)

func (p *strongSelectProc) Start(_ int, hasMessage bool) {
	for i := range p.phases {
		p.phases[i] = participation{state: waiting}
	}
	if hasMessage {
		p.has = true
	}
}

func (p *strongSelectProc) Decide(round int) bool {
	if !p.has {
		return false
	}
	slot := p.alg.SlotAt(round)
	ph := &p.phases[slot.Scale-1]
	family := p.alg.families[slot.Scale-1]
	switch ph.state {
	case waiting:
		if slot.Set != 0 {
			return false
		}
		// F_s cycled back to its first set: begin the single iteration.
		ph.state = participating
		ph.consumed = 0
	case finished:
		return false
	}
	send := family.Contains(slot.Set, p.id)
	ph.consumed++
	if ph.consumed == family.Size() {
		ph.state = finished
	}
	return send
}

func (p *strongSelectProc) Receive(_ int, r sim.Reception) {
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

// Done reports whether the process has completed all its iterations and will
// never transmit again (diagnostics and termination tests).
func (p *strongSelectProc) Done() bool {
	if !p.has {
		return false
	}
	for _, ph := range p.phases {
		if ph.state != finished {
			return false
		}
	}
	return true
}

package core

import (
	"fmt"
	"math/rand"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// TreeCast is a centralized, known-topology broadcast schedule: given a
// graph believed to be reliable, it precomputes a BFS order from the source
// and has each node transmit exactly once, in the round equal to its BFS
// index. With a single sender per round there are no collisions, and on a
// truly reliable topology the broadcast completes in at most n-1 rounds.
//
// TreeCast is the protocol a deployment builds after ETX-style link culling
// (see internal/linkest): it is optimal when the culled topology really is
// reliable and fails when a link it trusts turns out to be adversarial —
// the cautionary tale motivating the dual graph model. It assumes the
// identity process-to-node assignment, unlike the topology-oblivious
// algorithms in this package.
type TreeCast struct {
	slots []int // slots[pid-1] = transmission round of that process
	n     int
}

var _ sim.Algorithm = (*TreeCast)(nil)

// NewTreeCast precomputes the BFS schedule of g from source. Unreachable
// nodes get no slot (they never transmit).
func NewTreeCast(g *graph.Graph, source graph.NodeID) (*TreeCast, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("treecast needs n >= 2, got %d", n)
	}
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("source %d out of range", source)
	}
	t := &TreeCast{slots: make([]int, n), n: n}
	order := 1
	queue := []graph.NodeID{source}
	seen := make([]bool, n)
	seen[source] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		t.slots[int(u)] = order
		order++
		for _, v := range g.Out(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return t, nil
}

// Name implements sim.Algorithm.
func (t *TreeCast) Name() string { return "treecast" }

// Rounds returns the schedule length (diagnostics).
func (t *TreeCast) Rounds() int { return t.n }

// NewProcess implements sim.Algorithm. The schedule is deterministic.
func (t *TreeCast) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	slot := 0
	if id >= 1 && id <= len(t.slots) {
		slot = t.slots[id-1]
	}
	return &treeCastProc{slot: slot}
}

type treeCastProc struct {
	slot int
	has  bool
}

var _ sim.Process = (*treeCastProc)(nil)

func (p *treeCastProc) Start(_ int, hasMessage bool) { p.has = hasMessage }

func (p *treeCastProc) Decide(round int) bool {
	return p.has && p.slot != 0 && round == p.slot
}

func (p *treeCastProc) Receive(_ int, r sim.Reception) {
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

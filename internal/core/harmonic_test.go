package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dualgraph/internal/adversary"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

func TestSendProbabilitySchedule(t *testing.T) {
	T := 3
	// tv = 0: rounds 1..3 -> 1, rounds 4..6 -> 1/2, rounds 7..9 -> 1/3.
	cases := []struct {
		t    int
		want float64
	}{{1, 1}, {2, 1}, {3, 1}, {4, 0.5}, {6, 0.5}, {7, 1.0 / 3}, {9, 1.0 / 3}, {10, 0.25}}
	for _, c := range cases {
		if got := SendProbability(c.t, 0, T); got != c.want {
			t.Errorf("p(%d) = %v, want %v", c.t, got, c.want)
		}
	}
	// t <= tv: probability 0.
	if SendProbability(5, 5, T) != 0 || SendProbability(4, 5, T) != 0 {
		t.Error("probability before wake must be 0")
	}
}

func TestSendProbabilityNonIncreasing(t *testing.T) {
	f := func(tvRaw, tRaw uint8, TRaw uint8) bool {
		T := 1 + int(TRaw%20)
		tv := int(tvRaw % 50)
		tt := tv + 1 + int(tRaw%100)
		return SendProbability(tt+1, tv, T) <= SendProbability(tt, tv, T)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHarmonicTMatchesPaper(t *testing.T) {
	// T = ceil(12 ln(n/eps)).
	if got, want := HarmonicT(100, 0.01), int(math.Ceil(12*math.Log(10000))); got != want {
		t.Fatalf("HarmonicT = %d, want %d", got, want)
	}
}

func TestNewHarmonicValidation(t *testing.T) {
	if _, err := NewHarmonic(0); err == nil {
		t.Fatal("expected error for T=0")
	}
	if _, err := NewHarmonicForN(1, 0.1); err == nil {
		t.Fatal("expected error for n=1")
	}
	if _, err := NewHarmonicForN(10, 0); err == nil {
		t.Fatal("expected error for epsilon=0")
	}
	if _, err := NewHarmonicForN(10, 1); err == nil {
		t.Fatal("expected error for epsilon=1")
	}
}

func TestHarmonicSourceTransmitsRound1(t *testing.T) {
	a, err := NewHarmonic(5)
	if err != nil {
		t.Fatal(err)
	}
	p := a.NewProcess(1, 8, rand.New(rand.NewSource(1)))
	p.Start(1, true)
	// p(1) = 1: the source must transmit in round 1 with certainty.
	if !p.Decide(1) {
		t.Fatal("source must transmit in round 1 (probability 1)")
	}
}

func TestHarmonicNonHolderSilent(t *testing.T) {
	a, err := NewHarmonic(2)
	if err != nil {
		t.Fatal(err)
	}
	p := a.NewProcess(2, 8, rand.New(rand.NewSource(1)))
	p.Start(3, false)
	for r := 3; r < 50; r++ {
		if p.Decide(r) {
			t.Fatal("non-holder transmitted")
		}
	}
	p.Receive(50, sim.Reception{Kind: sim.Delivered, Broadcast: true})
	// Next T rounds: probability 1.
	if !p.Decide(51) {
		t.Fatal("fresh holder must transmit with probability 1")
	}
}

func TestHarmonicIgnoresNonBroadcastReceptions(t *testing.T) {
	a, err := NewHarmonic(2)
	if err != nil {
		t.Fatal(err)
	}
	p := a.NewProcess(2, 8, rand.New(rand.NewSource(1)))
	p.Start(1, false)
	p.Receive(1, sim.Reception{Kind: sim.Collision})
	p.Receive(2, sim.Reception{Kind: sim.Delivered, Broadcast: false, FromProc: 3})
	if p.Decide(3) {
		t.Fatal("process without the broadcast payload transmitted")
	}
}

func harmonicBound(n, T int) int {
	// Theorem 18: all nodes receive by 2·n·T·H(n) w.p. >= 1-eps.
	return int(2*float64(n*T)*stats.HarmonicNumber(n)) + 1
}

func TestHarmonicCompletesOnDualGraphsWHP(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	topos := map[string]*graph.Dual{}
	d, err := graph.CliqueBridge(33)
	if err != nil {
		t.Fatal(err)
	}
	topos["clique-bridge"] = d
	d, err = graph.CompleteLayered(33)
	if err != nil {
		t.Fatal(err)
	}
	topos["complete-layered"] = d
	d, err = graph.RandomDual(40, 0.1, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	topos["random"] = d

	for name, dd := range topos {
		t.Run(name, func(t *testing.T) {
			n := dd.N()
			alg, err := NewHarmonicForN(n, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(dd, alg, adversary.GreedyCollider{}, sim.Config{
				Rule:      sim.CR4,
				Start:     sim.AsyncStart,
				MaxRounds: harmonicBound(n, alg.T),
				Seed:      4242,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("harmonic did not complete within the Theorem 18 bound %d", harmonicBound(n, alg.T))
			}
		})
	}
}

func TestBusyRoundsWithinLemma15Bound(t *testing.T) {
	// Lemma 15: busy rounds <= n·T·H(n) for every wake-up pattern.
	f := func(seed int64, nRaw, TRaw uint8) bool {
		n := 2 + int(nRaw%20)
		T := 1 + int(TRaw%5)
		rng := rand.New(rand.NewSource(seed))
		pattern := make([]int, n)
		for i := 1; i < n; i++ {
			pattern[i] = pattern[i-1] + rng.Intn(3)
		}
		bound := int(float64(n*T)*stats.HarmonicNumber(n)) + 1
		horizon := pattern[n-1] + 4*bound
		return BusyRounds(pattern, T, horizon) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBusyRoundsFrontLoadedPattern(t *testing.T) {
	n, T := 16, 3
	pattern := FrontLoadedPattern(n)
	bound := int(float64(n*T)*stats.HarmonicNumber(n)) + 1
	busy := BusyRounds(pattern, T, 4*bound)
	if busy > bound {
		t.Fatalf("busy rounds %d exceed Lemma 15 bound %d", busy, bound)
	}
	if busy == 0 {
		t.Fatal("front-loaded pattern must have busy rounds")
	}
}

func TestSimultaneousPattern(t *testing.T) {
	n, T := 8, 2
	p := SimultaneousPattern(n)
	// In round 1 all n nodes transmit with probability 1: P(1) = n.
	if got := SumProbabilities(p, 1, T); got != float64(n) {
		t.Fatalf("P(1) = %v, want %d", got, n)
	}
	// Eventually the sum drops below 1 and stays there.
	if got := SumProbabilities(p, 10*n*T, T); got >= 1 {
		t.Fatalf("P(late) = %v, want < 1", got)
	}
}

package core

import (
	"math/rand"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

func TestNewDeltaSelectValidation(t *testing.T) {
	if _, err := NewDeltaSelect(1, 1); err == nil {
		t.Fatal("expected error for n=1")
	}
	if _, err := NewDeltaSelect(8, 0); err == nil {
		t.Fatal("expected error for delta=0")
	}
	// delta > n clamps instead of failing.
	a, err := NewDeltaSelect(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.FamilySize() != 8 {
		t.Fatalf("clamped family size = %d, want 8 (round robin)", a.FamilySize())
	}
}

func TestDeltaSelectScheduleIsOblivious(t *testing.T) {
	a, err := NewDeltaSelect(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Two processes with the same id must produce identical schedules.
	p1 := a.NewProcess(5, 16, nil)
	p2 := a.NewProcess(5, 16, nil)
	p1.Start(1, true)
	p2.Start(1, true)
	for r := 1; r <= 3*a.FamilySize(); r++ {
		if p1.Decide(r) != p2.Decide(r) {
			t.Fatalf("schedule not oblivious at round %d", r)
		}
	}
}

func TestDeltaSelectCyclesThroughFamily(t *testing.T) {
	a, err := NewDeltaSelect(8, 8) // round robin family
	if err != nil {
		t.Fatal(err)
	}
	p := a.NewProcess(3, 8, nil)
	p.Start(1, true)
	for r := 1; r <= 24; r++ {
		want := (r-1)%8 == 2 // set index id-1
		if got := p.Decide(r); got != want {
			t.Errorf("round %d: Decide = %v, want %v", r, got, want)
		}
	}
}

func TestDeltaSelectNonHolderSilent(t *testing.T) {
	a, err := NewDeltaSelect(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := a.NewProcess(1, 8, nil)
	p.Start(1, false)
	for r := 1; r <= 40; r++ {
		if p.Decide(r) {
			t.Fatal("non-holder transmitted")
		}
	}
}

func TestDeltaSelectCompletesOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d, err := graph.Grid(5, 5, 2, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	delta := d.GPrime().MaxInDegree()
	a, err := NewDeltaSelect(d.N(), delta)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(d, a, adversary.GreedyCollider{}, sim.Config{
		Rule:      sim.CR4,
		Start:     sim.AsyncStart,
		MaxRounds: d.N() * a.FamilySize() * 2,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("delta select did not complete on the grid")
	}
}

func TestDeltaSelectFrontierAdvancesPerIteration(t *testing.T) {
	// On a line with delta = true max in-degree, each family iteration must
	// advance the frontier at least one hop: completion within
	// (n-1) * familySize rounds.
	d, err := graph.Line(10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewDeltaSelect(10, d.GPrime().MaxInDegree())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(d, a, adversary.Benign{}, sim.Config{
		Rule:      sim.CR4,
		Start:     sim.AsyncStart,
		MaxRounds: 9 * a.FamilySize(),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("delta select exceeded the per-iteration frontier bound (%d rounds)", 9*a.FamilySize())
	}
}

func TestDeltaSelectBeatsStrongSelectOnLowDegree(t *testing.T) {
	// The Section 2.2 comparison: with small Δ, delta select (which knows Δ)
	// should finish no later than strong select on a long path.
	d, err := graph.Line(64)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDeltaSelect(64, d.GPrime().MaxInDegree())
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewStrongSelect(64)
	if err != nil {
		t.Fatal(err)
	}
	run := func(alg sim.Algorithm) int {
		res, err := sim.Run(d, alg, adversary.Benign{}, sim.Config{
			Rule:      sim.CR4,
			Start:     sim.AsyncStart,
			MaxRounds: 2_000_000,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%s did not complete", alg.Name())
		}
		return res.Rounds
	}
	if dsRounds, ssRounds := run(ds), run(ss); dsRounds > ssRounds {
		t.Fatalf("delta select (%d rounds) slower than strong select (%d) despite Δ=2", dsRounds, ssRounds)
	}
}

package adversary_test

import (
	"fmt"
	"reflect"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/exhaustive"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// namedNet is one small topology of the cross-validation matrix.
type namedNet struct {
	name string
	d    *graph.Dual
}

// smallNets returns every registry-style topology at sizes small enough for
// exhaustive search: the correctness spine of the adaptive adversary is that
// it reproduces the exhaustive worst case exactly on all of them.
func smallNets(t testing.TB) []namedNet {
	t.Helper()
	build := func(name string, d *graph.Dual, err error) namedNet {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return namedNet{name: name, d: d}
	}
	line, errLine := graph.Line(4)
	star, errStar := graph.Star(5)
	complete, errComplete := graph.Complete(4)
	cb4, errCB4 := graph.CliqueBridge(4)
	cb5, errCB5 := graph.CliqueBridge(5)
	cb6, errCB6 := graph.CliqueBridge(6)
	return []namedNet{
		build("line4", line, errLine),
		build("star5", star, errStar),
		build("complete4", complete, errComplete),
		build("bridge4", cb4, errCB4),
		build("bridge5", cb5, errCB5),
		build("bridge6", cb6, errCB6),
	}
}

// algsFor returns the algorithm panel for an n-node network: a deterministic
// schedule-driven algorithm, the paper's select-family representative, and a
// randomized one (the planner must predict randomized algorithms exactly too,
// because replays share the run's seed).
func algsFor(t testing.TB, n int) []sim.Algorithm {
	t.Helper()
	ss, err := core.NewStrongSelect(n)
	if err != nil {
		t.Fatal(err)
	}
	return []sim.Algorithm{core.NewRoundRobin(), ss, core.NewDecay()}
}

// adaptiveRounds plays alg against adv and folds the outcome onto the
// exhaustive value scale: the completion round, or horizon+1 when the
// broadcast did not finish within the horizon.
func adaptiveRounds(t *testing.T, sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary,
	rule sim.CollisionRule, start sim.StartRule, horizon int, seed int64) int {
	t.Helper()
	run, err := sim.RunDynamic(sched, alg, adv, sim.Config{
		Rule:      rule,
		Start:     start,
		MaxRounds: horizon,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed {
		return horizon + 1
	}
	return run.Rounds
}

// TestAdaptiveUnboundedMatchesExhaustive is the tentpole property: with an
// unbounded delivery horizon, the adaptive best-response adversary must
// realize EXACTLY the worst case exhaustive.Search reports — on every small
// topology, under every collision rule, for deterministic and randomized
// algorithms, across seeds.
func TestAdaptiveUnboundedMatchesExhaustive(t *testing.T) {
	const horizon = 20
	rules := []sim.CollisionRule{sim.CR1, sim.CR2, sim.CR3, sim.CR4}
	seeds := []int64{1, 9}
	if testing.Short() {
		rules = []sim.CollisionRule{sim.CR1, sim.CR4}
		seeds = seeds[:1]
	}
	for _, net := range smallNets(t) {
		for _, alg := range algsFor(t, net.d.N()) {
			for _, rule := range rules {
				for _, seed := range seeds {
					name := fmt.Sprintf("%s/%s/cr%d/seed%d", net.name, alg.Name(), rule, seed)
					t.Run(name, func(t *testing.T) {
						res, err := exhaustive.Search(net.d, alg, exhaustive.Config{
							Rule:        rule,
							Horizon:     horizon,
							MaxBranches: 2000000,
							Seed:        seed,
						})
						if err != nil {
							t.Fatal(err)
						}
						adv, err := adversary.NewAdaptive(0, horizon, 0, 0)
						if err != nil {
							t.Fatal(err)
						}
						got := adaptiveRounds(t, graph.Static(net.d), alg, adv,
							rule, sim.SyncStart, horizon, seed)
						if got != res.WorstRounds {
							t.Fatalf("adaptive realized %d rounds, exhaustive worst case is %d",
								got, res.WorstRounds)
						}
					})
				}
			}
		}
	}
}

// TestAdaptiveMatchesExhaustiveAsyncStart covers the async-start rule: wake
// on first delivery changes the reachable state space, and the planner must
// track it through the same signature chain.
func TestAdaptiveMatchesExhaustiveAsyncStart(t *testing.T) {
	const horizon = 24
	d, err := graph.CliqueBridge(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range algsFor(t, d.N()) {
		t.Run(alg.Name(), func(t *testing.T) {
			res, err := exhaustive.Search(d, alg, exhaustive.Config{
				Rule:        sim.CR1,
				Start:       sim.AsyncStart,
				Horizon:     horizon,
				MaxBranches: 2000000,
				Seed:        5,
			})
			if err != nil {
				t.Fatal(err)
			}
			adv, err := adversary.NewAdaptive(0, horizon, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := adaptiveRounds(t, graph.Static(d), alg, adv,
				sim.CR1, sim.AsyncStart, horizon, 5)
			if got != res.WorstRounds {
				t.Fatalf("adaptive realized %d rounds, exhaustive worst case is %d",
					got, res.WorstRounds)
			}
		})
	}
}

// TestAdaptiveMatchesExhaustiveOnDynamicSchedules cross-validates on
// time-varying networks: churn and fade schedules change the deliverable
// fringe (and its EdgeID universe) every epoch, and the planner's per-round
// epoch resolution must agree with the engine's.
func TestAdaptiveMatchesExhaustiveOnDynamicSchedules(t *testing.T) {
	const horizon = 20
	base, err := graph.CliqueBridge(5)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := graph.NewChurn(base, 2, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	fade, err := graph.NewFade(base, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	scheds := []struct {
		name  string
		sched graph.Schedule
	}{
		{"static", graph.Static(base)},
		{"churn", churn},
		{"fade", fade},
	}
	seeds := []int64{3, 7, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	alg := core.NewRoundRobin()
	for _, sc := range scheds {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				res, err := exhaustive.SearchSchedule(sc.sched, alg, exhaustive.Config{
					Rule:        sim.CR1,
					Horizon:     horizon,
					MaxBranches: 2000000,
					Seed:        seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				adv, err := adversary.NewAdaptive(0, horizon, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				got := adaptiveRounds(t, sc.sched, alg, adv,
					sim.CR1, sim.SyncStart, horizon, seed)
				if got != res.WorstRounds {
					t.Fatalf("adaptive realized %d rounds, exhaustive worst case is %d",
						got, res.WorstRounds)
				}
			})
		}
	}
}

// TestAdaptiveHorizonMonotone pins the bounded-horizon ordering: allowing
// deliveries only in rounds 1..h yields a strategy set nested inside the one
// for h+1, so the realized completion round must be non-decreasing in h and
// never exceed the unbounded (== exhaustive) value.
func TestAdaptiveHorizonMonotone(t *testing.T) {
	const horizon = 20
	nets := smallNets(t)
	if testing.Short() {
		nets = nets[:4]
	}
	for _, net := range nets {
		t.Run(net.name, func(t *testing.T) {
			alg := core.NewRoundRobin()
			sched := graph.Static(net.d)
			unbounded, err := adversary.NewAdaptive(0, horizon, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			full := adaptiveRounds(t, sched, alg, unbounded, sim.CR1, sim.SyncStart, horizon, 1)
			res, err := exhaustive.Search(net.d, alg, exhaustive.Config{
				Rule:        sim.CR1,
				Horizon:     horizon,
				MaxBranches: 2000000,
				Seed:        1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if full != res.WorstRounds {
				t.Fatalf("unbounded adaptive %d != exhaustive %d", full, res.WorstRounds)
			}
			prev := 0
			for h := 1; h <= 6; h++ {
				adv, err := adversary.NewAdaptive(h, horizon, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				got := adaptiveRounds(t, sched, alg, adv, sim.CR1, sim.SyncStart, horizon, 1)
				if got < prev {
					t.Fatalf("adaptive(h=%d) realized %d < adaptive(h=%d)'s %d: horizons must be monotone",
						h, got, h-1, prev)
				}
				if got > full {
					t.Fatalf("adaptive(h=%d) realized %d > unbounded %d: bounded horizon cannot be stronger",
						h, got, full)
				}
				prev = got
			}
		})
	}
}

// TestAdaptiveGridDeterministicAcrossWorkers is the concurrency contract: a
// single shared Adaptive value driven through the engine's grid runner must
// produce bit-identical summaries at every worker count, because each trial
// gets a private fork via sim.RunForker and the planner itself has no
// randomness, map-order, or wall-clock dependence.
func TestAdaptiveGridDeterministicAcrossWorkers(t *testing.T) {
	cb, err := graph.CliqueBridge(5)
	if err != nil {
		t.Fatal(err)
	}
	line, err := graph.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := adversary.NewAdaptive(0, 20, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var cells []engine.Trial
	for _, net := range []*graph.Dual{cb, line} {
		for _, alg := range []sim.Algorithm{core.NewRoundRobin(), core.NewDecay()} {
			cells = append(cells, engine.Trial{
				Net: net, Alg: alg, Adv: shared,
				Cfg: sim.Config{Rule: sim.CR1, Start: sim.SyncStart, MaxRounds: 20, Seed: 17},
			})
		}
	}
	const trials = 8
	ref, err := engine.RunGridStream(cells, trials, engine.Config{Workers: 1}, engine.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := engine.RunGridStream(cells, trials, engine.Config{Workers: workers}, engine.StreamConfig{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: grid summaries differ from workers=1", workers)
		}
	}
}

// TestAdaptiveConstructorValidation pins the typed-parameter contract used by
// the registry entry.
func TestAdaptiveConstructorValidation(t *testing.T) {
	for _, bad := range [][4]int{
		{-1, 0, 0, 0},
		{0, -1, 0, 0},
		{0, 0, -1, 0},
		{0, 0, 0, -1},
	} {
		if _, err := adversary.NewAdaptive(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Fatalf("NewAdaptive(%v) accepted a negative parameter", bad)
		}
	}
	a, err := adversary.NewAdaptive(0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "adaptive(h=∞)" {
		t.Fatalf("unbounded name = %q", a.Name())
	}
	b, err := adversary.NewAdaptive(3, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "adaptive(h=3)" {
		t.Fatalf("bounded name = %q", b.Name())
	}
}

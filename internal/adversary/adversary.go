// Package adversary provides implementations of the dual-graph adversary:
// the entity that chooses the process-to-node assignment, decides each round
// which unreliable (G' \ G) edges deliver, and resolves CR4 collisions.
//
// The implementations range from Benign (never uses unreliable edges, which
// makes a classical network behave exactly like the static model) through
// Random and FullDelivery to GreedyCollider (an adaptive jammer) and
// Theorem2 (the exact adversary from the paper's Theorem 2 proof).
package adversary

import (
	"errors"
	"fmt"
	"math/rand"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// identityAssign maps node i to process id i+1.
func identityAssign(n int) []int {
	procOf := make([]int, n)
	for i := range procOf {
		procOf[i] = i + 1
	}
	return procOf
}

// Benign never delivers along unreliable edges and resolves CR4 collisions
// to silence. On a classical network (G = G') it makes the simulation
// coincide with the standard static radio model under CR3/CR4.
type Benign struct{}

var _ sim.Adversary = (*Benign)(nil)

// Name implements sim.Adversary.
func (Benign) Name() string { return "benign" }

// AssignProcs implements sim.Adversary with the identity assignment.
func (Benign) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	return identityAssign(d.N()), nil
}

// Deliver implements sim.Adversary: no unreliable edge ever delivers.
//
// Benign deliberately does NOT implement sim.BufferedDeliverer: its nil map
// makes the compatibility shim free anyway, and Benign is the adversary most
// commonly embedded by wrappers that override Deliver — an inherited
// DeliverInto would silently shadow such overrides.
func (Benign) Deliver(_ *sim.View, _ []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	return nil
}

// Resolve implements sim.Adversary: collisions resolve to silence.
func (Benign) Resolve(_ *sim.View, _ graph.NodeID, _ []graph.NodeID) graph.NodeID {
	return sim.NoDelivery
}

// FullDelivery delivers every unreliable edge of every sender in every
// round, making G' behave like a static graph. CR4 collisions resolve to
// the first reaching message.
type FullDelivery struct{}

var _ sim.Adversary = (*FullDelivery)(nil)

// Name implements sim.Adversary.
func (FullDelivery) Name() string { return "full-delivery" }

// AssignProcs implements sim.Adversary with the identity assignment.
func (FullDelivery) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	return identityAssign(d.N()), nil
}

// Deliver implements sim.Adversary: every unreliable edge delivers.
func (FullDelivery) Deliver(v *sim.View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	out := make(map[graph.NodeID][]graph.NodeID, len(senders))
	for _, s := range senders {
		if targets := v.Dual.UnreliableOut(s); len(targets) > 0 {
			out[s] = targets
		}
	}
	return out
}

// DeliverInto implements sim.BufferedDeliverer.
func (FullDelivery) DeliverInto(v *sim.View, senders []graph.NodeID, sink *sim.DeliverySink) {
	for _, s := range senders {
		for _, t := range v.Dual.UnreliableOut(s) {
			sink.Add(s, t)
		}
	}
}

// Resolve implements sim.Adversary: deliver the first reaching message.
func (FullDelivery) Resolve(_ *sim.View, _ graph.NodeID, reaching []graph.NodeID) graph.NodeID {
	return reaching[0]
}

// Random delivers each unreliable edge of each sender independently with
// probability P each round, assigns processes to nodes uniformly at random,
// and resolves CR4 collisions uniformly among silence and the reaching
// messages. It models benign stochastic link flakiness rather than a
// worst-case opponent.
type Random struct {
	// P is the per-edge, per-round delivery probability.
	P float64
}

var _ sim.Adversary = (*Random)(nil)

// NewRandom validates p and returns a Random adversary.
func NewRandom(p float64) (*Random, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("delivery probability %v outside [0,1]", p)
	}
	return &Random{P: p}, nil
}

// Name implements sim.Adversary.
func (a *Random) Name() string { return fmt.Sprintf("random(p=%.2f)", a.P) }

// AssignProcs implements sim.Adversary with a uniformly random assignment.
func (a *Random) AssignProcs(d *graph.Dual, rng *rand.Rand) ([]int, error) {
	n := d.N()
	procOf := make([]int, n)
	for i, p := range rng.Perm(n) {
		procOf[i] = p + 1
	}
	return procOf, nil
}

// Deliver implements sim.Adversary.
func (a *Random) Deliver(v *sim.View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	out := make(map[graph.NodeID][]graph.NodeID)
	for _, s := range senders {
		for _, t := range v.Dual.UnreliableOut(s) {
			if v.Rng.Float64() < a.P {
				out[s] = append(out[s], t)
			}
		}
	}
	return out
}

// DeliverInto implements sim.BufferedDeliverer. It draws from v.Rng in the
// same (sender, target) order as Deliver, so both paths produce identical
// executions for a fixed seed.
func (a *Random) DeliverInto(v *sim.View, senders []graph.NodeID, sink *sim.DeliverySink) {
	for _, s := range senders {
		for _, t := range v.Dual.UnreliableOut(s) {
			if v.Rng.Float64() < a.P {
				sink.Add(s, t)
			}
		}
	}
}

// Resolve implements sim.Adversary: uniform among ⊥ and the messages.
func (a *Random) Resolve(v *sim.View, _ graph.NodeID, reaching []graph.NodeID) graph.NodeID {
	i := v.Rng.Intn(len(reaching) + 1)
	if i == len(reaching) {
		return sim.NoDelivery
	}
	return reaching[i]
}

// GreedyCollider is an adaptive jammer: whenever a node that lacks the
// message is reached by exactly one transmission, it deploys an unreliable
// edge from another concurrent sender to turn the reception into a
// collision, and it never delivers a message to a node that no reliable edge
// reaches. Under CR4 it resolves collisions to a message from a sender that
// does not hold the broadcast message when possible, and to silence
// otherwise, so collisions never leak the payload.
type GreedyCollider struct{}

var _ sim.Adversary = (*GreedyCollider)(nil)

// Name implements sim.Adversary.
func (GreedyCollider) Name() string { return "greedy-collider" }

// AssignProcs implements sim.Adversary with the identity assignment.
func (GreedyCollider) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	return identityAssign(d.N()), nil
}

// Deliver implements sim.Adversary.
func (GreedyCollider) Deliver(v *sim.View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	n := v.Dual.N()
	// reliableCount[u] = number of messages reaching u via reliable edges
	// (including senders' own messages).
	reliableCount := make([]int, n)
	reachedBy := make([]graph.NodeID, n) // valid when reliableCount == 1
	for _, s := range senders {
		reliableCount[s]++
		reachedBy[s] = s
		for _, u := range v.Dual.ReliableOut(s) {
			reliableCount[u]++
			reachedBy[u] = s
		}
	}
	out := make(map[graph.NodeID][]graph.NodeID)
	for u := 0; u < n; u++ {
		if v.HasMessage[u] || reliableCount[u] != 1 || v.Sent[u] {
			continue
		}
		// u would cleanly receive a message: jam it with any other sender
		// that has an unreliable edge to u.
		for _, s := range senders {
			if s == reachedBy[u] {
				continue
			}
			if v.Dual.HasUnreliableEdge(s, graph.NodeID(u)) {
				out[s] = append(out[s], graph.NodeID(u))
				break
			}
		}
	}
	return out
}

// DeliverInto implements sim.BufferedDeliverer with the same jamming policy
// as Deliver, reading the reliable reception picture straight off the sink's
// reach bitsets instead of recounting it edge by edge: EachReachedOnce
// yields exactly the nodes a lone message would cleanly reach, in ascending
// node order — the same nodes, in the same order, as the old O(n) scan over
// a per-sender count pass. Each jam targets only the node just yielded, so
// adding mid-iteration never changes which nodes the sweep visits.
func (GreedyCollider) DeliverInto(v *sim.View, senders []graph.NodeID, sink *sim.DeliverySink) {
	sink.EachReachedOnce(func(u, from graph.NodeID) bool {
		if v.HasMessage[u] || v.Sent[u] {
			return true
		}
		// u would cleanly receive a message: jam it with any other sender
		// that has an unreliable edge to u.
		for _, s := range senders {
			if s == from {
				continue
			}
			if v.Dual.HasUnreliableEdge(s, u) {
				sink.Add(s, u)
				break
			}
		}
		return true
	})
}

// Resolve implements sim.Adversary.
func (GreedyCollider) Resolve(v *sim.View, _ graph.NodeID, reaching []graph.NodeID) graph.NodeID {
	for _, s := range reaching {
		if !v.HasMessage[s] {
			return s
		}
	}
	return sim.NoDelivery
}

// ErrWrongTopology is returned when a proof-specific adversary is used on a
// network with the wrong shape.
var ErrWrongTopology = errors.New("adversary requires a specific topology")

// Theorem2 is the adversary from the proof of Theorem 2, specialized to the
// CliqueBridge network: the source node holds process 1, the receiver holds
// process n, and the bridge holds the adversarially chosen process
// BridgePid. Communication nondeterminism is resolved by the proof's rules:
//
//  1. If more than one process sends, all messages reach all processes.
//  2. If a single process at a clique node other than the bridge sends, its
//     message reaches exactly the clique.
//  3. If only the bridge or only the receiver sends, the message reaches
//     everyone.
type Theorem2 struct {
	// BridgePid is the process id placed on the bridge node (2..n-1).
	BridgePid int
}

var _ sim.Adversary = (*Theorem2)(nil)

// NewTheorem2 validates the bridge process id for an n-process network.
func NewTheorem2(n, bridgePid int) (*Theorem2, error) {
	if bridgePid < 2 || bridgePid > n-1 {
		return nil, fmt.Errorf("bridge pid %d outside [2, %d]", bridgePid, n-1)
	}
	return &Theorem2{BridgePid: bridgePid}, nil
}

// Name implements sim.Adversary.
func (a *Theorem2) Name() string { return fmt.Sprintf("theorem2(bridge=%d)", a.BridgePid) }

// AssignProcs implements sim.Adversary: process 1 at the source, process n
// at the receiver, BridgePid at the bridge, all other processes in
// increasing id order on the remaining clique nodes (the proof's "default
// rule").
func (a *Theorem2) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	n := d.N()
	if a.BridgePid < 2 || a.BridgePid > n-1 {
		return nil, fmt.Errorf("%w: bridge pid %d outside [2,%d]", ErrWrongTopology, a.BridgePid, n-1)
	}
	if len(d.ReliableOut(graph.ReceiverNode(n))) != 1 {
		return nil, fmt.Errorf("%w: clique-bridge expected", ErrWrongTopology)
	}
	procOf := make([]int, n)
	procOf[d.Source()] = 1
	procOf[graph.ReceiverNode(n)] = n
	procOf[graph.BridgeNode] = a.BridgePid
	next := 2
	for node := 0; node < n; node++ {
		if procOf[node] != 0 {
			continue
		}
		if next == a.BridgePid {
			next++
		}
		procOf[node] = next
		next++
	}
	return procOf, nil
}

// Deliver implements sim.Adversary using the proof's three rules.
func (a *Theorem2) Deliver(v *sim.View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	n := v.Dual.N()
	receiver := graph.ReceiverNode(n)
	all := func() map[graph.NodeID][]graph.NodeID {
		out := make(map[graph.NodeID][]graph.NodeID, len(senders))
		for _, s := range senders {
			if targets := v.Dual.UnreliableOut(s); len(targets) > 0 {
				out[s] = targets
			}
		}
		return out
	}
	if len(senders) > 1 {
		return all() // Rule 1: everything reaches everyone (⊤ everywhere).
	}
	if len(senders) == 1 {
		s := senders[0]
		if s == graph.BridgeNode || s == receiver {
			return all() // Rule 3: message reaches all processes.
		}
		// Rule 2: a lone clique sender reaches exactly the clique, which its
		// reliable edges already cover; no unreliable delivery.
	}
	return nil
}

// DeliverInto implements sim.BufferedDeliverer using the proof's three
// rules, mirroring Deliver.
func (a *Theorem2) DeliverInto(v *sim.View, senders []graph.NodeID, sink *sim.DeliverySink) {
	n := v.Dual.N()
	receiver := graph.ReceiverNode(n)
	all := func() {
		for _, s := range senders {
			for _, t := range v.Dual.UnreliableOut(s) {
				sink.Add(s, t)
			}
		}
	}
	if len(senders) > 1 {
		all() // Rule 1: everything reaches everyone (⊤ everywhere).
		return
	}
	if len(senders) == 1 {
		s := senders[0]
		if s == graph.BridgeNode || s == receiver {
			all() // Rule 3: message reaches all processes.
		}
		// Rule 2: a lone clique sender reaches exactly the clique, which its
		// reliable edges already cover; no unreliable delivery.
	}
}

// Resolve implements sim.Adversary. Theorem 2 is proved under CR1 where
// Resolve is never consulted; under CR4 we resolve to silence, which is the
// adversary's strongest choice.
func (a *Theorem2) Resolve(_ *sim.View, _ graph.NodeID, _ []graph.NodeID) graph.NodeID {
	return sim.NoDelivery
}

package adversary_test

import (
	"math/rand"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// oneShot transmits in round 1 only (when it holds the message); used to set
// up precise single-round scenarios.
type oneShot struct {
	ids map[int]bool
}

func (a oneShot) Name() string { return "one-shot" }

func (a oneShot) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	return &oneShotProc{send: a.ids[id]}
}

type oneShotProc struct {
	send bool
	has  bool
	rec  sim.Reception
}

func (p *oneShotProc) Start(_ int, hasMessage bool) { p.has = hasMessage }
func (p *oneShotProc) Decide(round int) bool        { return round == 1 && p.send && p.has }
func (p *oneShotProc) Receive(_ int, r sim.Reception) {
	p.rec = r
}

func TestNewRandomValidation(t *testing.T) {
	if _, err := adversary.NewRandom(-0.1); err == nil {
		t.Fatal("expected error for p < 0")
	}
	if _, err := adversary.NewRandom(1.1); err == nil {
		t.Fatal("expected error for p > 1")
	}
	a, err := adversary.NewRandom(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "random(p=0.50)" {
		t.Errorf("name = %q", a.Name())
	}
}

func TestRandomAdversaryExtremes(t *testing.T) {
	// p=0 behaves like Benign, p=1 like FullDelivery, for delivery purposes.
	g := graph.NewGraph(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	gp := g.Clone()
	gp.MustAddEdge(0, 2)
	d, err := graph.NewDual(g, gp, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p float64) *sim.Result {
		adv, err := adversary.NewRandom(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(d, core.NewRoundRobin(), adv, sim.Config{
			Rule: sim.CR3, Start: sim.SyncStart, Seed: 42, MaxRounds: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// With p=1 the source's unreliable shortcut delivers in round 1, so the
	// far node receives strictly earlier than with p=0.
	if run(1).FirstReceive[2] >= run(0).FirstReceive[2] {
		t.Fatal("p=1 must deliver the shortcut and beat p=0")
	}
}

func TestGreedyColliderJamsLoneDelivery(t *testing.T) {
	// Clique-bridge, n=5: bridge (node 1, pid 2) and another clique node
	// (node 2, pid 3) transmit together. The receiver is reached reliably
	// only by the bridge; the greedy adversary must deploy the other
	// sender's unreliable edge to the receiver to cause a collision.
	n := 5
	d, err := graph.CliqueBridge(n)
	if err != nil {
		t.Fatal(err)
	}
	// Give both senders the message artificially by making the source also a
	// sender: pids at nodes: identity (pid = node+1).
	alg := oneShot{ids: map[int]bool{1: true, 2: true, 3: true}}
	procs := map[int]*oneShotProc{}
	wrapped := captureAlg{inner: alg, procs: procs}
	_, err = sim.Run(d, wrapped, adversary.GreedyCollider{}, sim.Config{
		Rule: sim.CR2, Start: sim.SyncStart, MaxRounds: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Under CR2 the receiver (pid 5) must see ⊤, not the bridge's message:
	// the greedy adversary jammed it. (Only the source holds the broadcast
	// message, so senders 2 and 3 transmit non-broadcast messages, but they
	// still collide.)
	recPID5 := procs[5].rec
	if recPID5.Kind != sim.Collision {
		t.Fatalf("receiver reception = %+v, want collision", recPID5)
	}
}

// captureAlg wraps an algorithm to expose the created processes.
type captureAlg struct {
	inner oneShot
	procs map[int]*oneShotProc
}

func (c captureAlg) Name() string { return c.inner.Name() }

func (c captureAlg) NewProcess(id, n int, rng *rand.Rand) sim.Process {
	p, ok := c.inner.NewProcess(id, n, rng).(*oneShotProc)
	if !ok {
		panic("unexpected process type")
	}
	// Every process with a scripted send needs the message; mark all as
	// holders via Start(hasMessage=true) interception below.
	c.procs[id] = p
	return &forceHolder{p}
}

// forceHolder marks the process as holding the message at start so that
// scripted senders actually transmit.
type forceHolder struct {
	*oneShotProc
}

func (f *forceHolder) Start(round int, _ bool) { f.oneShotProc.Start(round, true) }

func TestGreedyColliderNeverDeliversToUnreached(t *testing.T) {
	// Single sender: greedy adversary must not deliver any unreliable edge
	// (delivering could only help the broadcast).
	n := 5
	d, err := graph.CliqueBridge(n)
	if err != nil {
		t.Fatal(err)
	}
	alg := oneShot{ids: map[int]bool{1: true}}
	procs := map[int]*oneShotProc{}
	_, err = sim.Run(d, captureAlg{inner: alg, procs: procs}, adversary.GreedyCollider{}, sim.Config{
		Rule: sim.CR2, Start: sim.SyncStart, MaxRounds: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The receiver (pid 5) has no reliable edge from the source: silence.
	if procs[5].rec.Kind != sim.Silence {
		t.Fatalf("receiver reception = %v, want ⊥", procs[5].rec.Kind)
	}
}

func TestTheorem2Validation(t *testing.T) {
	if _, err := adversary.NewTheorem2(10, 1); err == nil {
		t.Fatal("expected error for bridge pid 1 (reserved for the source)")
	}
	if _, err := adversary.NewTheorem2(10, 10); err == nil {
		t.Fatal("expected error for bridge pid n (reserved for the receiver)")
	}
	if _, err := adversary.NewTheorem2(10, 5); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem2Assignment(t *testing.T) {
	n := 8
	d, err := graph.CliqueBridge(n)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewTheorem2(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	procOf, err := adv.AssignProcs(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if procOf[d.Source()] != 1 {
		t.Errorf("source pid = %d, want 1", procOf[d.Source()])
	}
	if procOf[graph.BridgeNode] != 5 {
		t.Errorf("bridge pid = %d, want 5", procOf[graph.BridgeNode])
	}
	if procOf[graph.ReceiverNode(n)] != n {
		t.Errorf("receiver pid = %d, want %d", procOf[graph.ReceiverNode(n)], n)
	}
}

func TestTheorem2RejectsWrongTopology(t *testing.T) {
	d, err := graph.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewTheorem2(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.AssignProcs(d, nil); err == nil {
		t.Fatal("expected topology error on a complete graph")
	}
}

func TestTheorem2DeliveryRules(t *testing.T) {
	n := 6
	d, err := graph.CliqueBridge(n)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewTheorem2(n, 3)
	if err != nil {
		t.Fatal(err)
	}

	run := func(senderPids ...int) map[int]*oneShotProc {
		ids := map[int]bool{}
		for _, pid := range senderPids {
			ids[pid] = true
		}
		procs := map[int]*oneShotProc{}
		_, err := sim.Run(d, captureAlg{inner: oneShot{ids: ids}, procs: procs}, adv, sim.Config{
			Rule: sim.CR1, Start: sim.SyncStart, MaxRounds: 1, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return procs
	}

	// Rule 2: lone clique sender (the source, pid 1): clique receives the
	// message, receiver (pid n) hears silence.
	procs := run(1)
	if procs[n].rec.Kind != sim.Silence {
		t.Errorf("rule 2: receiver heard %v, want ⊥", procs[n].rec.Kind)
	}
	if procs[2].rec.Kind != sim.Delivered {
		t.Errorf("rule 2: clique member heard %v, want message", procs[2].rec.Kind)
	}

	// Rule 3: lone bridge sender (pid 3 on the bridge node): everyone
	// receives the message.
	procs = run(3)
	for pid := 1; pid <= n; pid++ {
		if pid == 3 {
			continue
		}
		if procs[pid].rec.Kind != sim.Delivered {
			t.Errorf("rule 3: pid %d heard %v, want message", pid, procs[pid].rec.Kind)
		}
	}

	// Rule 1: two senders: everyone receives ⊤ under CR1.
	procs = run(1, 2)
	for pid := 1; pid <= n; pid++ {
		if procs[pid].rec.Kind != sim.Collision {
			t.Errorf("rule 1: pid %d heard %v, want ⊤", pid, procs[pid].rec.Kind)
		}
	}
}

func TestBenignAndFullDeliveryNames(t *testing.T) {
	if (adversary.Benign{}).Name() == "" || (adversary.FullDelivery{}).Name() == "" {
		t.Fatal("adversaries must have names")
	}
	if (adversary.GreedyCollider{}).Name() != "greedy-collider" {
		t.Fatal("greedy collider name")
	}
}

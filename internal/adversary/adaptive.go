package adversary

import (
	"errors"
	"fmt"
	"math/rand"

	"dualgraph/internal/exhaustive"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// Adaptive is the online best-response adversary: each round it searches the
// game tree of fringe-edge delivery choices against the current reaching
// state (via exhaustive.Planner) and plays the choice that maximizes the
// eventual completion round. With an unbounded horizon and ample budget it
// realizes exactly the worst case exhaustive.Search reports; bounding
// Horizon yields a provably-no-stronger opponent (deliveries are allowed
// only in rounds 1..Horizon, so the strategy sets nest).
//
// Adaptive only works where exhaustive search works: deterministic-enough
// rounds with at most MaxArcsPerRound (16) deliverable fringe arcs, i.e.
// small networks. Beyond the cap a run fails with exhaustive.ErrTooManyArcs
// rather than silently weakening the opponent.
//
// The value itself is stateless and safe to share across concurrent trials:
// it implements sim.RunForker, and every run gets a private fork carrying
// the planner (transposition table, played script). Determinism is
// inherited from the planner's contract — ascending-mask enumeration,
// lowest-EdgeID tie-breaks, no randomness — so adaptive sweeps are
// bit-identical at any worker count.
type Adaptive struct {
	// Horizon is the delivery horizon h: rounds 1..h may deliver. 0 means
	// unbounded (the full search horizon).
	Horizon int
	// SearchRounds is the evaluation horizon of the planner's search;
	// 0 defaults to 32.
	SearchRounds int
	// NodeBudget caps search expansions per planned round; 0 defaults to
	// 200000.
	NodeBudget int
	// TableSize caps the planner's transposition table; 0 defaults to 65536.
	TableSize int
}

var (
	_ sim.Adversary         = (*Adaptive)(nil)
	_ sim.BufferedDeliverer = (*Adaptive)(nil)
	_ sim.RunForker         = (*Adaptive)(nil)
)

// ErrNotForked reports that an Adaptive adversary's delivery path ran
// without the per-run fork the engine performs via sim.RunForker — the
// adversary was invoked outside sim.Run/RunDynamic.
var ErrNotForked = errors.New("adaptive adversary used without a per-run fork")

// NewAdaptive validates the search parameters and returns an Adaptive
// adversary. Zero values select the documented defaults.
func NewAdaptive(horizon, searchRounds, nodeBudget, tableSize int) (*Adaptive, error) {
	if horizon < 0 {
		return nil, fmt.Errorf("adaptive: horizon %d < 0", horizon)
	}
	if searchRounds < 0 {
		return nil, fmt.Errorf("adaptive: search rounds %d < 0", searchRounds)
	}
	if nodeBudget < 0 {
		return nil, fmt.Errorf("adaptive: node budget %d < 0", nodeBudget)
	}
	if tableSize < 0 {
		return nil, fmt.Errorf("adaptive: table size %d < 0", tableSize)
	}
	return &Adaptive{
		Horizon:      horizon,
		SearchRounds: searchRounds,
		NodeBudget:   nodeBudget,
		TableSize:    tableSize,
	}, nil
}

// Name implements sim.Adversary.
func (a *Adaptive) Name() string {
	if a.Horizon == 0 {
		return "adaptive(h=∞)"
	}
	return fmt.Sprintf("adaptive(h=%d)", a.Horizon)
}

// AssignProcs implements sim.Adversary with the identity assignment — the
// same assignment the exhaustive search fixes, which is what makes the two
// directly comparable.
func (a *Adaptive) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	return identityAssign(d.N()), nil
}

// ForkRun implements sim.RunForker: every run gets a private planner built
// against the run's schedule, algorithm, and effective config, so the shared
// Adaptive value stays immutable under concurrent trials.
func (a *Adaptive) ForkRun(sched graph.Schedule, alg sim.Algorithm, cfg sim.Config) (sim.Adversary, error) {
	p, err := exhaustive.NewPlanner(sched, alg, exhaustive.PlannerConfig{
		Rule:          cfg.Rule,
		Start:         cfg.Start,
		Seed:          cfg.Seed,
		SearchRounds:  a.SearchRounds,
		DeliverRounds: a.Horizon,
		NodeBudget:    a.NodeBudget,
		TableSize:     a.TableSize,
	})
	if err != nil {
		return nil, err
	}
	return &adaptiveRun{name: a.Name(), planner: p}, nil
}

// Deliver implements sim.Adversary. It is unreachable through the engine —
// RunDynamic always forks first — and delivers nothing when called directly.
func (a *Adaptive) Deliver(_ *sim.View, _ []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	return nil
}

// DeliverInto implements sim.BufferedDeliverer by failing the run: reaching
// it means the engine skipped the sim.RunForker fork, and a silently-benign
// "adaptive" adversary would be worse than a loud error.
func (a *Adaptive) DeliverInto(_ *sim.View, _ []graph.NodeID, sink *sim.DeliverySink) {
	sink.Fail(ErrNotForked)
}

// Resolve implements sim.Adversary: CR4 collisions resolve to silence, the
// adversary's strongest choice and the convention the search models.
func (a *Adaptive) Resolve(_ *sim.View, _ graph.NodeID, _ []graph.NodeID) graph.NodeID {
	return sim.NoDelivery
}

// adaptiveRun is the per-run fork: the planner plus the script of choices
// played so far. It is used by exactly one run, sequentially.
type adaptiveRun struct {
	name    string
	planner *exhaustive.Planner
	script  [][]graph.EdgeID
	failed  bool
}

var (
	_ sim.Adversary         = (*adaptiveRun)(nil)
	_ sim.BufferedDeliverer = (*adaptiveRun)(nil)
)

func (r *adaptiveRun) Name() string { return r.name }

func (r *adaptiveRun) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	return identityAssign(d.N()), nil
}

// plan advances the script to the given round and returns its delivery
// choice. Rounds the engine never asked about (no senders, hence no call)
// are padded with empty entries — exactly the choice the planner's model
// enumerates for them, so the script replayed inside the planner stays in
// lockstep with the live execution.
func (r *adaptiveRun) plan(round int) ([]graph.EdgeID, error) {
	if r.failed {
		return nil, nil
	}
	for len(r.script) < round-1 {
		r.script = append(r.script, nil)
	}
	choice, err := r.planner.Plan(r.script)
	if err != nil {
		r.failed = true
		return nil, err
	}
	r.script = append(r.script, choice)
	return choice, nil
}

// DeliverInto implements sim.BufferedDeliverer: the planned round feeds the
// sink's direct edge-id entry point; planning failures abort the run through
// the sink's typed failure path.
func (r *adaptiveRun) DeliverInto(v *sim.View, _ []graph.NodeID, sink *sim.DeliverySink) {
	choice, err := r.plan(v.Round)
	if err != nil {
		sink.Fail(fmt.Errorf("adaptive adversary: %w", err))
		return
	}
	for _, id := range choice {
		sink.AddEdgeID(id)
	}
}

// Deliver implements sim.Adversary (compatibility path; the engine prefers
// DeliverInto). The map path has no typed failure channel, so planning
// failures surface as a self-loop delivery the sink always rejects — (0,0)
// can never be a G' \ G edge.
func (r *adaptiveRun) Deliver(v *sim.View, _ []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	choice, err := r.plan(v.Round)
	if err != nil {
		return map[graph.NodeID][]graph.NodeID{0: {0}}
	}
	if len(choice) == 0 {
		return nil
	}
	out := make(map[graph.NodeID][]graph.NodeID)
	for _, id := range choice {
		from, to := v.Dual.UnreliableEdge(id)
		out[from] = append(out[from], to)
	}
	return out
}

func (r *adaptiveRun) Resolve(_ *sim.View, _ graph.NodeID, _ []graph.NodeID) graph.NodeID {
	return sim.NoDelivery
}

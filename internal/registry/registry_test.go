package registry

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// TestEveryTopologyBuildsAtSmallN is the registry half of the Spec-layer
// property test: every registered name must construct with default params
// at a small odd size (odd so complete-layered's structural constraint is
// met without special-casing).
func TestEveryTopologyBuildsAtSmallN(t *testing.T) {
	for _, e := range Topologies() {
		d, err := Topology(e.Name, 9, 1, nil)
		if err != nil {
			t.Errorf("Topology(%q, 9): %v", e.Name, err)
			continue
		}
		if d.N() < 2 {
			t.Errorf("Topology(%q, 9): built %d nodes", e.Name, d.N())
		}
	}
}

func TestEveryAlgorithmBuildsAtSmallN(t *testing.T) {
	for _, e := range Algorithms() {
		alg, err := Algorithm(e.Name, 9, nil)
		if err != nil {
			t.Errorf("Algorithm(%q, 9): %v", e.Name, err)
			continue
		}
		if alg.Name() == "" {
			t.Errorf("Algorithm(%q): empty Name()", e.Name)
		}
	}
}

func TestEveryAdversaryBuilds(t *testing.T) {
	for _, e := range Adversaries() {
		adv, err := Adversary(e.Name, nil)
		if err != nil {
			t.Errorf("Adversary(%q): %v", e.Name, err)
			continue
		}
		if adv.Name() == "" {
			t.Errorf("Adversary(%q): empty Name()", e.Name)
		}
	}
}

// TestDefaultsMatchHistoricalConstructors pins the registry's parameter
// defaults to the constructor calls dgsim and expt hardcoded before the
// registry existed: same seed, same network.
func TestDefaultsMatchHistoricalConstructors(t *testing.T) {
	seed := int64(7)
	cases := []struct {
		name string
		n    int
		want func() (*graph.Dual, error)
	}{
		{"random", 21, func() (*graph.Dual, error) {
			return graph.RandomDual(21, 0.12, 0.35, rand.New(rand.NewSource(seed)))
		}},
		{"geometric", 21, func() (*graph.Dual, error) {
			return graph.Geometric(21, 0.28, 0.7, rand.New(rand.NewSource(seed)))
		}},
		{"pa", 21, func() (*graph.Dual, error) {
			return graph.PreferentialAttachment(21, 3, 0.5, rand.New(rand.NewSource(seed)))
		}},
		{"grid", 21, func() (*graph.Dual, error) {
			return graph.Grid(5, 5, 2, 0.3, rand.New(rand.NewSource(seed)))
		}},
	}
	for _, c := range cases {
		got, err := Topology(c.name, c.n, seed, nil)
		if err != nil {
			t.Fatalf("Topology(%q): %v", c.name, err)
		}
		want, err := c.want()
		if err != nil {
			t.Fatalf("reference %q: %v", c.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Topology(%q) with default params differs from the historical construction", c.name)
		}
	}
}

func TestUnknownNameSuggestions(t *testing.T) {
	_, err := Topology("geometirc", 9, 1, nil)
	var unk *ErrUnknownName
	if !errors.As(err, &unk) {
		t.Fatalf("error %v is not *ErrUnknownName", err)
	}
	if unk.Kind != "topology" || unk.Name != "geometirc" {
		t.Fatalf("wrong error fields: %+v", unk)
	}
	if len(unk.Suggestions) == 0 || unk.Suggestions[0] != "geometric" {
		t.Fatalf("suggestions = %v, want geometric first", unk.Suggestions)
	}
	if !strings.Contains(err.Error(), `did you mean "geometric"?`) ||
		!strings.Contains(err.Error(), "clique-bridge") {
		t.Fatalf("error text missing suggestion or valid names: %v", err)
	}
	for _, call := range []func() error{
		func() error { _, err := Algorithm("harmonix", 9, nil); return err },
		func() error { _, err := Adversary("greddy", nil); return err },
	} {
		if err := call(); !errors.As(err, &unk) {
			t.Errorf("error %v is not *ErrUnknownName", err)
		}
	}
}

// TestEmptyNameIsMissingNotSuggested: "" must read as a missing field with
// no nonsense suggestions (every name is edit-distance-close to "").
func TestEmptyNameIsMissingNotSuggested(t *testing.T) {
	_, err := Topology("", 9, 1, nil)
	var unk *ErrUnknownName
	if !errors.As(err, &unk) {
		t.Fatalf("error %v is not *ErrUnknownName", err)
	}
	if len(unk.Suggestions) != 0 {
		t.Fatalf("empty name got suggestions %v", unk.Suggestions)
	}
	if !strings.HasPrefix(err.Error(), "missing topology name") {
		t.Fatalf("error text = %v, want a missing-name message", err)
	}
}

func TestUnknownAndMistypedParamsRejected(t *testing.T) {
	if _, err := Topology("geometric", 9, 1, Params{"radius": 0.3}); err == nil ||
		!strings.Contains(err.Error(), "r-reliable") {
		t.Fatalf("unknown param error should list accepted params, got %v", err)
	}
	if _, err := Topology("grid", 9, 1, Params{"reach": 1.5}); err == nil ||
		!strings.Contains(err.Error(), "integer") {
		t.Fatalf("non-integral int param should fail, got %v", err)
	}
	if err := ValidateAlgorithm("uniform", Params{"p": "high"}); err == nil {
		t.Fatal("string for float param should fail validation")
	}
	if err := ValidateTopology("layered-random", Params{"layers": []any{2.0, 3.0}}); err != nil {
		t.Fatalf("JSON-decoded layer list should validate: %v", err)
	}
}

// TestGridRowsColsOverride checks the explicit-shape escape hatch and its
// paired-flags guard.
func TestGridRowsColsOverride(t *testing.T) {
	d, err := Topology("grid", 0, 3, Params{"rows": 2, "cols": 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 10 {
		t.Fatalf("2x5 grid built %d nodes", d.N())
	}
	if _, err := Topology("grid", 9, 3, Params{"rows": 2}); err == nil {
		t.Fatal("rows without cols must fail")
	}
}

func TestLayeredTopologiesDeriveN(t *testing.T) {
	d, err := Topology("layered-random", 999, 1, Params{"layers": []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 6 {
		t.Fatalf("layered-random [2,3] built %d nodes, want 6", d.N())
	}
}

func TestHarmonicExplicitT(t *testing.T) {
	alg, err := Algorithm("harmonic", 9, Params{"t": 13})
	if err != nil {
		t.Fatal(err)
	}
	if got := alg.Name(); got != "harmonic(T=13)" {
		t.Fatalf("explicit T name = %q", got)
	}
}

func TestDeltaSelectDefaultsToTrivialBound(t *testing.T) {
	alg, err := Algorithm("delta-select", 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	var _ sim.Algorithm = alg
}

// TestWriteListGolden pins the shared -list rendering: every entry line and
// every parameter doc line, in sorted section order.
func TestWriteListGolden(t *testing.T) {
	var sb strings.Builder
	WriteList(&sb)
	out := sb.String()
	for _, want := range []string{
		"topologies:\n",
		"algorithms:\n",
		"adversaries:\n",
		"  geometric          unit-square placement: short links reliable, longer ones unreliable; scales to 100k+ nodes\n",
		"      r-reliable       float  links shorter than this are reliable (default 0.28)\n",
		"  harmonic           randomized Harmonic Broadcast, O(n log² n) w.h.p. (Section 7)\n",
		"      p                float  per-edge per-round delivery probability (default 0.25)\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteList output missing %q\n---\n%s", want, out)
		}
	}
	// Every registered name must appear.
	for _, es := range [][]Entry{Topologies(), Algorithms(), Adversaries()} {
		for _, e := range es {
			if !strings.Contains(out, "  "+e.Name) {
				t.Errorf("WriteList output missing entry %q", e.Name)
			}
		}
	}
}

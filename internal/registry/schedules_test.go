package registry

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dualgraph/internal/graph"
)

func scheduleBase(t *testing.T) *graph.Dual {
	t.Helper()
	d, err := graph.RandomDual(16, 0.25, 0.4, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestEveryScheduleBuildsWithDefaults: every registered schedule must
// construct over a generic base with its documented defaults and produce a
// few valid epochs — the bare-name-is-runnable property the other three
// registries already guarantee.
func TestEveryScheduleBuildsWithDefaults(t *testing.T) {
	base := scheduleBase(t)
	for _, e := range Schedules() {
		s, err := Schedule(e.Name, base, nil)
		if err != nil {
			t.Fatalf("schedule %q with defaults: %v", e.Name, err)
		}
		if s.N() != base.N() {
			t.Fatalf("schedule %q: N = %d, want %d", e.Name, s.N(), base.N())
		}
		for epoch := 0; epoch < 3; epoch++ {
			if _, err := s.Epoch(epoch, 5); err != nil {
				t.Fatalf("schedule %q epoch %d: %v", e.Name, epoch, err)
			}
		}
	}
}

// TestStaticScheduleIsDefaultBehaviour: the "static" entry wraps the base
// network itself, with epoch length 0 — the exact pre-dynamics semantics.
func TestStaticScheduleIsDefaultBehaviour(t *testing.T) {
	base := scheduleBase(t)
	s, err := Schedule("static", base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.EpochLength() != 0 {
		t.Fatalf("static epoch length = %d, want 0", s.EpochLength())
	}
	d, err := s.Epoch(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d != base {
		t.Fatal("static schedule does not return the base network")
	}
}

// TestScheduleUnknownNameSuggests: schedule lookups fail with the same
// typed, suggestion-bearing error as the other registries.
func TestScheduleUnknownNameSuggests(t *testing.T) {
	base := scheduleBase(t)
	_, err := Schedule("churm", base, nil)
	var unknown *ErrUnknownName
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want *ErrUnknownName", err)
	}
	if unknown.Kind != "schedule" {
		t.Fatalf("kind = %q, want schedule", unknown.Kind)
	}
	if len(unknown.Suggestions) == 0 || unknown.Suggestions[0] != "churn" {
		t.Fatalf("suggestions = %v, want churn first", unknown.Suggestions)
	}
	if !strings.Contains(err.Error(), "valid schedule names") {
		t.Fatalf("error text %q missing the valid-name list", err)
	}
	if err := ValidateSchedule("nope", nil); err == nil {
		t.Fatal("ValidateSchedule accepted an unknown name")
	}
}

// TestScheduleParamValidation: unknown keys and ill-typed values are
// rejected by the schema before any construction happens.
func TestScheduleParamValidation(t *testing.T) {
	base := scheduleBase(t)
	if _, err := Schedule("churn", base, Params{"p-dwon": 0.5}); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("churn accepted a typoed parameter: %v", err)
	}
	if _, err := Schedule("churn", base, Params{"epoch-len": 2.5}); err == nil || !strings.Contains(err.Error(), "integer") {
		t.Fatalf("churn accepted a fractional epoch-len: %v", err)
	}
	if err := ValidateSchedule("waypoint", Params{"leg-epochs": "fast"}); err == nil {
		t.Fatal("waypoint accepted a string leg-epochs")
	}
	// Out-of-range values pass the schema but fail the constructor.
	if _, err := Schedule("churn", base, Params{"p-down": 1.5}); err == nil {
		t.Fatal("churn accepted p-down > 1")
	}
}

// TestScheduleInfoAndList: introspection covers the schedule registry like
// the other three.
func TestScheduleInfoAndList(t *testing.T) {
	e, ok := ScheduleInfo("churn")
	if !ok {
		t.Fatal("ScheduleInfo(churn) missing")
	}
	if !e.AcceptsParam("p-down") || e.AcceptsParam("p-fade") {
		t.Fatalf("churn schema wrong: %+v", e.Params)
	}
	var sb strings.Builder
	WriteList(&sb)
	for _, want := range []string{"schedules:", "  churn", "  fade", "  waypoint", "  static"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("WriteList missing %q", want)
		}
	}
	var md strings.Builder
	WriteMarkdown(&md)
	for _, want := range []string{"## schedules", "### `churn`", "| `p-down` | float | `0.2` |", "## topologies", "### `geometric`"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("WriteMarkdown missing %q", want)
		}
	}
}

// Package registry is the single name→constructor table of the library:
// every topology generator, broadcast algorithm, adversary, and epoch
// schedule (the topology-dynamics layer) is registered here under a stable
// name with a self-describing parameter schema. The declarative
// Scenario/Sweep layer (internal/spec), both CLIs, and the experiment
// harness all resolve names through this package, so a name that works in
// one place works everywhere — and an unknown name fails everywhere with
// the same typed error listing the valid names.
//
// Construction is deterministic: a registered constructor derives all its
// randomness from the seed it is handed, never from global state, so the
// same (name, n, seed, params) triple always builds the same value.
package registry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Params is a JSON-friendly named-parameter bag for a registered
// constructor. Numeric values may be any Go numeric type (JSON decoding
// yields float64; integer parameters accept any value that is exactly an
// integer), and list-of-int parameters accept []int or []any of numbers.
// Unknown keys are rejected at validation time so typos fail loudly.
type Params map[string]any

// ParamDoc describes one parameter of a registered constructor.
type ParamDoc struct {
	// Name is the parameter key in Params.
	Name string
	// Type is the human-readable type: "int", "float", or "[]int".
	Type string
	// Default is the value used when the key is absent.
	Default any
	// Doc is a one-line description.
	Doc string
}

// Entry is the self-describing header of a registered constructor.
type Entry struct {
	// Name is the stable lookup key (e.g. "geometric").
	Name string
	// Doc is a one-line description of what the constructor builds.
	Doc string
	// Params documents the accepted parameters in display order.
	Params []ParamDoc
	// IgnoresN marks topology entries whose size comes entirely from
	// parameters (layered chains): the requested n has no effect on the
	// built network. Sweeping an n axis over such a topology would run
	// byte-identical duplicate cells, so the sweep layer rejects it.
	IgnoresN bool
}

// AcceptsParam reports whether the entry's schema documents the key.
func (e Entry) AcceptsParam(name string) bool {
	_, ok := e.paramDoc(name)
	return ok
}

// ErrUnknownName reports a failed name lookup in one of the registries. It
// carries the full list of valid names and, when the unknown name is a near
// miss, edit-distance suggestions — so the "silent name drift" failure mode
// (a bare `unknown topology "x"` with no hint of what would have worked)
// cannot recur.
type ErrUnknownName struct {
	// Kind is "topology", "algorithm", "adversary", or "schedule".
	Kind string
	// Name is the name that failed to resolve.
	Name string
	// Known lists every registered name, sorted.
	Known []string
	// Suggestions lists registered names within a small edit distance of
	// Name, closest first.
	Suggestions []string
}

// Error implements error.
func (e *ErrUnknownName) Error() string {
	var sb strings.Builder
	if e.Name == "" {
		fmt.Fprintf(&sb, "missing %s name", e.Kind)
	} else {
		fmt.Fprintf(&sb, "unknown %s %q", e.Kind, e.Name)
	}
	if len(e.Suggestions) > 0 {
		fmt.Fprintf(&sb, " (did you mean %q?)", e.Suggestions[0])
	}
	fmt.Fprintf(&sb, "; valid %s names: %s", e.Kind, strings.Join(e.Known, ", "))
	return sb.String()
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// unknownName builds the typed lookup error with suggestions. An empty
// name is a missing field, not a near miss — it gets no suggestions (every
// name is trivially "close" to "").
func unknownName(kind, name string, known []string) *ErrUnknownName {
	if name == "" {
		return &ErrUnknownName{Kind: kind, Known: known}
	}
	type scored struct {
		name string
		d    int
	}
	var close []scored
	for _, k := range known {
		if d := editDistance(name, k); d <= 2 || strings.HasPrefix(k, name) {
			close = append(close, scored{k, d})
		}
	}
	sort.Slice(close, func(i, j int) bool {
		if close[i].d != close[j].d {
			return close[i].d < close[j].d
		}
		return close[i].name < close[j].name
	})
	e := &ErrUnknownName{Kind: kind, Name: name, Known: known}
	for _, s := range close {
		e.Suggestions = append(e.Suggestions, s.name)
	}
	return e
}

// check validates a Params bag against the entry's schema: every provided
// key must be documented and every provided value must coerce to the
// documented type. Absent keys are fine (defaults apply at build time).
func (e Entry) check(p Params) error {
	for key := range p {
		doc, ok := e.paramDoc(key)
		if !ok {
			return fmt.Errorf("%q: unknown parameter %q (accepted: %s)",
				e.Name, key, e.paramNames())
		}
		if err := e.checkType(p, doc); err != nil {
			return err
		}
	}
	return nil
}

func (e Entry) checkType(p Params, doc ParamDoc) error {
	var err error
	switch doc.Type {
	case "int":
		_, err = getInt(p, doc)
	case "float":
		_, err = getFloat(p, doc)
	case "[]int":
		_, err = getInts(p, doc)
	default:
		err = fmt.Errorf("registry bug: parameter %q has unhandled type %q", doc.Name, doc.Type)
	}
	return err
}

func (e Entry) paramDoc(name string) (ParamDoc, bool) {
	for _, d := range e.Params {
		if d.Name == name {
			return d, true
		}
	}
	return ParamDoc{}, false
}

func (e Entry) paramNames() string {
	if len(e.Params) == 0 {
		return "none"
	}
	names := make([]string, len(e.Params))
	for i, d := range e.Params {
		names[i] = d.Name
	}
	return strings.Join(names, ", ")
}

// getFloat reads a float parameter, applying the doc default when absent.
func getFloat(p Params, doc ParamDoc) (float64, error) {
	v, ok := p[doc.Name]
	if !ok {
		v = doc.Default
	}
	switch x := v.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	}
	return 0, fmt.Errorf("parameter %q: want a number, got %T", doc.Name, v)
}

// getInt reads an integer parameter; float values are accepted only when
// they are exactly integral (JSON decodes all numbers as float64).
func getInt(p Params, doc ParamDoc) (int, error) {
	v, ok := p[doc.Name]
	if !ok {
		v = doc.Default
	}
	switch x := v.(type) {
	case int:
		return x, nil
	case int64:
		return int(x), nil
	case float64:
		if x != math.Trunc(x) {
			return 0, fmt.Errorf("parameter %q: want an integer, got %v", doc.Name, x)
		}
		return int(x), nil
	}
	return 0, fmt.Errorf("parameter %q: want an integer, got %T", doc.Name, v)
}

// getInts reads a list-of-int parameter ([]int, or []any of integral
// numbers as produced by JSON decoding).
func getInts(p Params, doc ParamDoc) ([]int, error) {
	v, ok := p[doc.Name]
	if !ok {
		v = doc.Default
	}
	switch xs := v.(type) {
	case []int:
		return xs, nil
	case []any:
		out := make([]int, len(xs))
		for i, x := range xs {
			n, err := getInt(Params{doc.Name: x}, ParamDoc{Name: doc.Name})
			if err != nil {
				return nil, fmt.Errorf("parameter %q[%d]: want an integer, got %v", doc.Name, i, x)
			}
			out[i] = n
		}
		return out, nil
	}
	return nil, fmt.Errorf("parameter %q: want a list of integers, got %T", doc.Name, v)
}

// entries returns the Entry headers of a registry table, sorted by name.
func entries[E any](m map[string]E, header func(E) Entry) []Entry {
	out := make([]Entry, 0, len(m))
	for _, e := range m {
		out = append(out, header(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func names(es []Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	return out
}

// WriteList renders every registry — topologies, algorithms, adversaries,
// schedules — with per-entry parameter docs. Both CLIs' -list flags print
// exactly this, so the output is golden-tested once and shared.
func WriteList(w io.Writer) {
	for i, s := range sections() {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s:\n", s.kind)
		for _, e := range s.entries {
			fmt.Fprintf(w, "  %-18s %s\n", e.Name, e.Doc)
			for _, d := range e.Params {
				def := ""
				if d.Default != nil {
					def = fmt.Sprintf(" (default %v)", d.Default)
				}
				fmt.Fprintf(w, "      %-16s %-6s %s%s\n", d.Name, d.Type, d.Doc, def)
			}
		}
	}
}

// section is one registry table for the list/markdown renderers.
type section struct {
	kind    string
	entries []Entry
}

// sections returns the four registry tables in display order.
func sections() []section {
	return []section{
		{"topologies", Topologies()},
		{"algorithms", Algorithms()},
		{"adversaries", Adversaries()},
		{"schedules", Schedules()},
	}
}

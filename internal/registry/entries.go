package registry

import (
	"fmt"
	"math/rand"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// topoEntry pairs an Entry with its dual-graph constructor. n is the
// requested network size; generators whose size is structural (grid,
// layered) may build a nearby size — callers must read the built network's
// N(), not echo the request. seed feeds the generator's private rng;
// deterministic generators ignore it.
type topoEntry struct {
	Entry
	build func(e Entry, n int, seed int64, p Params) (*graph.Dual, error)
}

// algEntry pairs an Entry with its algorithm constructor. n is the process
// count of the network the algorithm will run on (its built N(), post any
// structural adjustment by the topology).
type algEntry struct {
	Entry
	build func(e Entry, n int, p Params) (sim.Algorithm, error)
}

// advEntry pairs an Entry with its adversary constructor.
type advEntry struct {
	Entry
	build func(e Entry, p Params) (sim.Adversary, error)
}

// schedEntry pairs an Entry with its epoch-schedule constructor. base is the
// already-built scenario network the schedule mutates (or, for generative
// schedules like waypoint mobility, mines for its node count and source).
type schedEntry struct {
	Entry
	build func(e Entry, base *graph.Dual, p Params) (graph.Schedule, error)
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// topologies is the topology registry. Parameter defaults reproduce the
// historical hardcoded values of cmd/dgsim and internal/expt, so a default
// Choice builds the exact network those paths always built.
var topologies = map[string]*topoEntry{
	"clique-bridge": {
		Entry: Entry{
			Name: "clique-bridge",
			Doc:  "Theorem 2 network: (n-1)-clique with a receiver behind a bridge; G' complete",
		},
		build: func(_ Entry, n int, _ int64, _ Params) (*graph.Dual, error) {
			return graph.CliqueBridge(n)
		},
	},
	"complete-layered": {
		Entry: Entry{
			Name: "complete-layered",
			Doc:  "Theorem 12 network of two-node layers (odd n >= 5); G' complete",
		},
		build: func(_ Entry, n int, _ int64, _ Params) (*graph.Dual, error) {
			return graph.CompleteLayered(n)
		},
	},
	"line": {
		Entry: Entry{Name: "line", Doc: "classical path 0-1-...-(n-1), source at 0"},
		build: func(_ Entry, n int, _ int64, _ Params) (*graph.Dual, error) {
			return graph.Line(n)
		},
	},
	"star": {
		Entry: Entry{Name: "star", Doc: "classical star, source at the hub"},
		build: func(_ Entry, n int, _ int64, _ Params) (*graph.Dual, error) {
			return graph.Star(n)
		},
	},
	"complete": {
		Entry: Entry{Name: "complete", Doc: "classical clique (single hop)"},
		build: func(_ Entry, n int, _ int64, _ Params) (*graph.Dual, error) {
			return graph.Complete(n)
		},
	},
	"tree": {
		Entry: Entry{Name: "tree", Doc: "classical complete binary tree rooted at the source"},
		build: func(_ Entry, n int, _ int64, _ Params) (*graph.Dual, error) {
			return graph.BinaryTree(n)
		},
	},
	"grid": {
		Entry: Entry{
			Name: "grid",
			Doc:  "lattice with random unreliable gray-zone links; builds the smallest square holding n unless rows/cols are given",
			Params: []ParamDoc{
				{Name: "rows", Type: "int", Default: 0, Doc: "lattice rows; 0 derives a square from n"},
				{Name: "cols", Type: "int", Default: 0, Doc: "lattice columns; 0 derives a square from n"},
				{Name: "reach", Type: "int", Default: 2, Doc: "Chebyshev radius of gray-zone candidate links"},
				{Name: "p", Type: "float", Default: 0.3, Doc: "per-candidate unreliable link probability"},
			},
		},
		build: func(e Entry, n int, seed int64, p Params) (*graph.Dual, error) {
			rows, err := getInt(p, mustDoc(e, "rows"))
			if err != nil {
				return nil, err
			}
			cols, err := getInt(p, mustDoc(e, "cols"))
			if err != nil {
				return nil, err
			}
			reach, err := getInt(p, mustDoc(e, "reach"))
			if err != nil {
				return nil, err
			}
			prob, err := getFloat(p, mustDoc(e, "p"))
			if err != nil {
				return nil, err
			}
			if (rows == 0) != (cols == 0) {
				return nil, fmt.Errorf("grid: rows and cols must be given together (got rows=%d cols=%d)", rows, cols)
			}
			if rows == 0 {
				side := 1
				for side*side < n {
					side++
				}
				rows, cols = side, side
			}
			return graph.Grid(rows, cols, reach, prob, newRng(seed))
		},
	},
	"random": {
		Entry: Entry{
			Name: "random",
			Doc:  "random connected G plus independent unreliable edges",
			Params: []ParamDoc{
				{Name: "p-reliable", Type: "float", Default: 0.12, Doc: "reliable edge probability beyond the backbone path"},
				{Name: "p-unreliable", Type: "float", Default: 0.35, Doc: "unreliable edge probability on remaining pairs"},
			},
		},
		build: func(e Entry, n int, seed int64, p Params) (*graph.Dual, error) {
			pr, err := getFloat(p, mustDoc(e, "p-reliable"))
			if err != nil {
				return nil, err
			}
			pu, err := getFloat(p, mustDoc(e, "p-unreliable"))
			if err != nil {
				return nil, err
			}
			return graph.RandomDual(n, pr, pu, newRng(seed))
		},
	},
	"geometric": {
		Entry: Entry{
			Name: "geometric",
			Doc:  "unit-square placement: short links reliable, longer ones unreliable; scales to 100k+ nodes",
			Params: []ParamDoc{
				{Name: "r-reliable", Type: "float", Default: 0.28, Doc: "links shorter than this are reliable"},
				{Name: "r-unreliable", Type: "float", Default: 0.7, Doc: "links shorter than this (but beyond r-reliable) are unreliable"},
			},
		},
		build: func(e Entry, n int, seed int64, p Params) (*graph.Dual, error) {
			rr, err := getFloat(p, mustDoc(e, "r-reliable"))
			if err != nil {
				return nil, err
			}
			ru, err := getFloat(p, mustDoc(e, "r-unreliable"))
			if err != nil {
				return nil, err
			}
			return graph.Geometric(n, rr, ru, newRng(seed))
		},
	},
	"pa": {
		Entry: Entry{
			Name: "pa",
			Doc:  "scale-free Barabási–Albert dual graph with gray-zone attachment links",
			Params: []ParamDoc{
				{Name: "m", Type: "int", Default: 3, Doc: "links each joining node attaches with"},
				{Name: "unreliable-frac", Type: "float", Default: 0.5, Doc: "probability a non-first attachment link is unreliable"},
			},
		},
		build: func(e Entry, n int, seed int64, p Params) (*graph.Dual, error) {
			m, err := getInt(p, mustDoc(e, "m"))
			if err != nil {
				return nil, err
			}
			frac, err := getFloat(p, mustDoc(e, "unreliable-frac"))
			if err != nil {
				return nil, err
			}
			return graph.PreferentialAttachment(n, m, frac, newRng(seed))
		},
	},
	"layered-random": {
		Entry: Entry{
			Name:     "layered-random",
			IgnoresN: true,
			Doc:      "consecutive fully connected undirected layers (source alone on top); G' complete; n is derived from layers, not the requested size",
			Params: []ParamDoc{
				{Name: "layers", Type: "[]int", Default: []int{4, 4, 4}, Doc: "layer sizes below the source"},
			},
		},
		build: func(e Entry, _ int, _ int64, p Params) (*graph.Dual, error) {
			sizes, err := getInts(p, mustDoc(e, "layers"))
			if err != nil {
				return nil, err
			}
			return graph.LayeredRandom(sizes)
		},
	},
	"directed-layered": {
		Entry: Entry{
			Name:     "directed-layered",
			IgnoresN: true,
			Doc:      "directed layer chain with unreliable forward shortcuts; n is derived from layers, not the requested size",
			Params: []ParamDoc{
				{Name: "layers", Type: "[]int", Default: []int{4, 4, 4}, Doc: "layer sizes below the source"},
			},
		},
		build: func(e Entry, _ int, _ int64, p Params) (*graph.Dual, error) {
			sizes, err := getInts(p, mustDoc(e, "layers"))
			if err != nil {
				return nil, err
			}
			return graph.DirectedLayered(sizes)
		},
	},
}

// algorithms is the algorithm registry.
var algorithms = map[string]*algEntry{
	"strong-select": {
		Entry: Entry{Name: "strong-select", Doc: "deterministic Strong Select, O(n^{3/2}√log n) (Section 5)"},
		build: func(_ Entry, n int, _ Params) (sim.Algorithm, error) {
			return core.NewStrongSelect(n)
		},
	},
	"harmonic": {
		Entry: Entry{
			Name: "harmonic",
			Doc:  "randomized Harmonic Broadcast, O(n log² n) w.h.p. (Section 7)",
			Params: []ParamDoc{
				{Name: "epsilon", Type: "float", Default: 0.02, Doc: "failure probability in the paper's T = ceil(12 ln(n/ε))"},
				{Name: "t", Type: "int", Default: 0, Doc: "explicit level length T; 0 derives it from n and epsilon"},
			},
		},
		build: func(e Entry, n int, p Params) (sim.Algorithm, error) {
			t, err := getInt(p, mustDoc(e, "t"))
			if err != nil {
				return nil, err
			}
			if t > 0 {
				return core.NewHarmonic(t)
			}
			eps, err := getFloat(p, mustDoc(e, "epsilon"))
			if err != nil {
				return nil, err
			}
			return core.NewHarmonicForN(n, eps)
		},
	},
	"round-robin": {
		Entry: Entry{Name: "round-robin", Doc: "deterministic round-robin baseline, O(n·D) on classical graphs"},
		build: func(_ Entry, _ int, _ Params) (sim.Algorithm, error) {
			return core.NewRoundRobin(), nil
		},
	},
	"decay": {
		Entry: Entry{Name: "decay", Doc: "classical randomized Decay baseline (Bar-Yehuda et al.)"},
		build: func(_ Entry, _ int, _ Params) (sim.Algorithm, error) {
			return core.NewDecay(), nil
		},
	},
	"uniform": {
		Entry: Entry{
			Name: "uniform",
			Doc:  "fixed-probability transmission baseline",
			Params: []ParamDoc{
				{Name: "p", Type: "float", Default: 0.25, Doc: "per-round transmission probability"},
			},
		},
		build: func(e Entry, _ int, p Params) (sim.Algorithm, error) {
			prob, err := getFloat(p, mustDoc(e, "p"))
			if err != nil {
				return nil, err
			}
			return core.NewUniform(prob)
		},
	},
	"delta-select": {
		Entry: Entry{
			Name: "delta-select",
			Doc:  "Δ-aware oblivious baseline (Clementi et al.), needs an in-degree bound on G'",
			Params: []ParamDoc{
				{Name: "delta", Type: "int", Default: 0, Doc: "in-degree bound Δ on G'; 0 uses the trivial bound n-1"},
			},
		},
		build: func(e Entry, n int, p Params) (sim.Algorithm, error) {
			delta, err := getInt(p, mustDoc(e, "delta"))
			if err != nil {
				return nil, err
			}
			if delta == 0 {
				delta = n - 1
			}
			return core.NewDeltaSelect(n, delta)
		},
	},
}

// adversaries is the adversary registry.
var adversaries = map[string]*advEntry{
	"benign": {
		Entry: Entry{Name: "benign", Doc: "never uses unreliable edges (the classical static model)"},
		build: func(_ Entry, _ Params) (sim.Adversary, error) {
			return adversary.Benign{}, nil
		},
	},
	"random": {
		Entry: Entry{
			Name: "random",
			Doc:  "delivers each unreliable edge independently with probability p",
			Params: []ParamDoc{
				{Name: "p", Type: "float", Default: 0.25, Doc: "per-edge per-round delivery probability"},
			},
		},
		build: func(e Entry, p Params) (sim.Adversary, error) {
			prob, err := getFloat(p, mustDoc(e, "p"))
			if err != nil {
				return nil, err
			}
			return adversary.NewRandom(prob)
		},
	},
	"greedy": {
		Entry: Entry{Name: "greedy", Doc: "adaptive greedy collider: jams single deliveries into collisions"},
		build: func(_ Entry, _ Params) (sim.Adversary, error) {
			return adversary.GreedyCollider{}, nil
		},
	},
	"adaptive": {
		Entry: Entry{
			Name: "adaptive",
			Doc:  "online best-response search over fringe deliveries (exact worst case on small networks; fails beyond 16 deliverable arcs per round)",
			Params: []ParamDoc{
				{Name: "horizon", Type: "int", Default: 0, Doc: "delivery horizon h: rounds 1..h may deliver; 0 = unbounded"},
				{Name: "search-rounds", Type: "int", Default: 0, Doc: "evaluation horizon of the search; 0 = 32"},
				{Name: "node-budget", Type: "int", Default: 0, Doc: "search expansions per planned round; 0 = 200000"},
				{Name: "table-size", Type: "int", Default: 0, Doc: "transposition-table entry cap; 0 = 65536"},
			},
		},
		build: func(e Entry, p Params) (sim.Adversary, error) {
			horizon, err := getInt(p, mustDoc(e, "horizon"))
			if err != nil {
				return nil, err
			}
			searchRounds, err := getInt(p, mustDoc(e, "search-rounds"))
			if err != nil {
				return nil, err
			}
			nodeBudget, err := getInt(p, mustDoc(e, "node-budget"))
			if err != nil {
				return nil, err
			}
			tableSize, err := getInt(p, mustDoc(e, "table-size"))
			if err != nil {
				return nil, err
			}
			return adversary.NewAdaptive(horizon, searchRounds, nodeBudget, tableSize)
		},
	},
	"full": {
		Entry: Entry{Name: "full", Doc: "always delivers every unreliable edge"},
		build: func(_ Entry, _ Params) (sim.Adversary, error) {
			return adversary.FullDelivery{}, nil
		},
	},
}

// schedules is the epoch-schedule registry: the dynamics layer. The
// "static" entry is the default everywhere and reproduces the historical
// fixed-topology behaviour exactly; the others mutate (or regenerate) the
// scenario's network every epoch-len rounds. All parameter defaults are
// chosen so a bare name is runnable.
var schedules = map[string]*schedEntry{
	"static": {
		Entry: Entry{
			Name: "static",
			Doc:  "fixed topology for the whole run (the historical behaviour; the default)",
		},
		build: func(_ Entry, base *graph.Dual, _ Params) (graph.Schedule, error) {
			return graph.Static(base), nil
		},
	},
	"churn": {
		Entry: Entry{
			Name: "churn",
			Doc:  "node churn: each epoch, nodes crash w.p. p-down and lose all non-backbone links (epoch 0 is the unmutated base)",
			Params: []ParamDoc{
				{Name: "epoch-len", Type: "int", Default: 8, Doc: "rounds per epoch"},
				{Name: "p-down", Type: "float", Default: 0.2, Doc: "per-epoch per-node crash probability"},
			},
		},
		build: func(e Entry, base *graph.Dual, p Params) (graph.Schedule, error) {
			epochLen, err := getInt(p, mustDoc(e, "epoch-len"))
			if err != nil {
				return nil, err
			}
			pDown, err := getFloat(p, mustDoc(e, "p-down"))
			if err != nil {
				return nil, err
			}
			return graph.NewChurn(base, epochLen, pDown)
		},
	},
	"fade": {
		Entry: Entry{
			Name: "fade",
			Doc:  "link fading: each epoch, reliable non-backbone edges demote to unreliable w.p. p-fade, and recover next epoch",
			Params: []ParamDoc{
				{Name: "epoch-len", Type: "int", Default: 8, Doc: "rounds per epoch"},
				{Name: "p-fade", Type: "float", Default: 0.3, Doc: "per-epoch per-edge demotion probability"},
			},
		},
		build: func(e Entry, base *graph.Dual, p Params) (graph.Schedule, error) {
			epochLen, err := getInt(p, mustDoc(e, "epoch-len"))
			if err != nil {
				return nil, err
			}
			pFade, err := getFloat(p, mustDoc(e, "p-fade"))
			if err != nil {
				return nil, err
			}
			return graph.NewFade(base, epochLen, pFade)
		},
	},
	"waypoint": {
		Entry: Entry{
			Name: "waypoint",
			Doc:  "random-waypoint mobility over the geometric model; the scenario topology contributes only its node count and source",
			Params: []ParamDoc{
				{Name: "epoch-len", Type: "int", Default: 8, Doc: "rounds per epoch"},
				{Name: "leg-epochs", Type: "int", Default: 4, Doc: "epochs per waypoint-to-waypoint leg (larger = slower motion)"},
				{Name: "r-reliable", Type: "float", Default: 0.28, Doc: "links shorter than this are reliable"},
				{Name: "r-unreliable", Type: "float", Default: 0.7, Doc: "links shorter than this (but beyond r-reliable) are unreliable"},
			},
		},
		build: func(e Entry, base *graph.Dual, p Params) (graph.Schedule, error) {
			epochLen, err := getInt(p, mustDoc(e, "epoch-len"))
			if err != nil {
				return nil, err
			}
			legEpochs, err := getInt(p, mustDoc(e, "leg-epochs"))
			if err != nil {
				return nil, err
			}
			rr, err := getFloat(p, mustDoc(e, "r-reliable"))
			if err != nil {
				return nil, err
			}
			ru, err := getFloat(p, mustDoc(e, "r-unreliable"))
			if err != nil {
				return nil, err
			}
			return graph.NewWaypoint(base, epochLen, legEpochs, rr, ru)
		},
	},
}

// mustDoc fetches a ParamDoc that registration guarantees exists; a miss is
// a registry table bug, not a user error.
func mustDoc(e Entry, name string) ParamDoc {
	d, ok := e.paramDoc(name)
	if !ok {
		panic(fmt.Sprintf("registry: entry %q has no parameter %q", e.Name, name))
	}
	return d
}

// Topologies returns every registered topology entry, sorted by name.
func Topologies() []Entry {
	return entries(topologies, func(e *topoEntry) Entry { return e.Entry })
}

// Algorithms returns every registered algorithm entry, sorted by name.
func Algorithms() []Entry {
	return entries(algorithms, func(e *algEntry) Entry { return e.Entry })
}

// Adversaries returns every registered adversary entry, sorted by name.
func Adversaries() []Entry {
	return entries(adversaries, func(e *advEntry) Entry { return e.Entry })
}

// Schedules returns every registered epoch-schedule entry, sorted by name.
func Schedules() []Entry {
	return entries(schedules, func(e *schedEntry) Entry { return e.Entry })
}

// Topology builds the named dual-graph topology at size n. seed feeds the
// generator's private rng (pure: same inputs, same network). Generators with
// structural sizes may build a nearby size — read the result's N().
func Topology(name string, n int, seed int64, p Params) (*graph.Dual, error) {
	e, ok := topologies[name]
	if !ok {
		return nil, unknownName("topology", name, names(Topologies()))
	}
	if err := e.check(p); err != nil {
		return nil, fmt.Errorf("topology %w", err)
	}
	return e.build(e.Entry, n, seed, p)
}

// Algorithm builds the named broadcast algorithm for an n-node network.
// n must be the network's built N() (a topology may adjust the requested
// size), so resolve the topology first.
func Algorithm(name string, n int, p Params) (sim.Algorithm, error) {
	e, ok := algorithms[name]
	if !ok {
		return nil, unknownName("algorithm", name, names(Algorithms()))
	}
	if err := e.check(p); err != nil {
		return nil, fmt.Errorf("algorithm %w", err)
	}
	return e.build(e.Entry, n, p)
}

// Adversary builds the named adversary.
func Adversary(name string, p Params) (sim.Adversary, error) {
	e, ok := adversaries[name]
	if !ok {
		return nil, unknownName("adversary", name, names(Adversaries()))
	}
	if err := e.check(p); err != nil {
		return nil, fmt.Errorf("adversary %w", err)
	}
	return e.build(e.Entry, p)
}

// Schedule builds the named epoch schedule over an already-built base
// network. Like every registry constructor it is deterministic: the
// schedule's own randomness is derived at run time from each trial's seed,
// so the same (name, base, params) always yields the same dynamics law.
func Schedule(name string, base *graph.Dual, p Params) (graph.Schedule, error) {
	e, ok := schedules[name]
	if !ok {
		return nil, unknownName("schedule", name, names(Schedules()))
	}
	if err := e.check(p); err != nil {
		return nil, fmt.Errorf("schedule %w", err)
	}
	return e.build(e.Entry, base, p)
}

// ValidateTopology checks that name resolves and p matches its schema
// without building anything (n-independent validation for the Spec layer).
func ValidateTopology(name string, p Params) error {
	e, ok := topologies[name]
	if !ok {
		return unknownName("topology", name, names(Topologies()))
	}
	if err := e.check(p); err != nil {
		return fmt.Errorf("topology %w", err)
	}
	return nil
}

// ValidateAlgorithm checks that name resolves and p matches its schema.
func ValidateAlgorithm(name string, p Params) error {
	e, ok := algorithms[name]
	if !ok {
		return unknownName("algorithm", name, names(Algorithms()))
	}
	if err := e.check(p); err != nil {
		return fmt.Errorf("algorithm %w", err)
	}
	return nil
}

// ValidateAdversary checks that name resolves and p matches its schema.
func ValidateAdversary(name string, p Params) error {
	e, ok := adversaries[name]
	if !ok {
		return unknownName("adversary", name, names(Adversaries()))
	}
	if err := e.check(p); err != nil {
		return fmt.Errorf("adversary %w", err)
	}
	return nil
}

// ValidateSchedule checks that name resolves and p matches its schema.
func ValidateSchedule(name string, p Params) error {
	e, ok := schedules[name]
	if !ok {
		return unknownName("schedule", name, names(Schedules()))
	}
	if err := e.check(p); err != nil {
		return fmt.Errorf("schedule %w", err)
	}
	return nil
}

// TopologyInfo returns the entry header of the named topology.
func TopologyInfo(name string) (Entry, bool) {
	e, ok := topologies[name]
	if !ok {
		return Entry{}, false
	}
	return e.Entry, true
}

// AlgorithmInfo returns the entry header of the named algorithm.
func AlgorithmInfo(name string) (Entry, bool) {
	e, ok := algorithms[name]
	if !ok {
		return Entry{}, false
	}
	return e.Entry, true
}

// AdversaryInfo returns the entry header of the named adversary.
func AdversaryInfo(name string) (Entry, bool) {
	e, ok := adversaries[name]
	if !ok {
		return Entry{}, false
	}
	return e.Entry, true
}

// ScheduleInfo returns the entry header of the named epoch schedule.
func ScheduleInfo(name string) (Entry, bool) {
	e, ok := schedules[name]
	if !ok {
		return Entry{}, false
	}
	return e.Entry, true
}

// Package linkest implements link-quality estimation, the practice the
// paper's introduction describes: real deployments probe their links and
// cull unreliable ones with estimators such as ETX before running
// higher-layer protocols on the surviving topology.
//
// The package runs a collision-free round-robin probing phase against a
// stochastic link model, estimates per-arc delivery rates, and builds the
// culled "estimated reliable" graph. Its purpose in this reproduction is the
// cautionary experiment behind the dual graph model: links that behave well
// during probing can be adversarial afterwards, so protocols that trust the
// culled topology (e.g. a precomputed tree schedule) break, while dual-graph
// algorithms do not.
package linkest

import (
	"fmt"
	"math/rand"

	"dualgraph/internal/graph"
)

// Arc is a directed link between two nodes.
type Arc struct {
	From, To graph.NodeID
}

// Survey is the outcome of a probing phase.
type Survey struct {
	// Cycles is the number of full probe cycles performed.
	Cycles int
	// Threshold is the delivery-rate cutoff for declaring an arc reliable.
	Threshold float64
	// Rates maps every G' arc to its observed delivery rate.
	Rates map[Arc]float64
	// Estimated is the culled graph: all arcs with rate >= Threshold.
	Estimated *graph.Builder
	// TruePositives counts estimated arcs that are truly reliable;
	// FalsePositives counts estimated arcs that are actually unreliable;
	// FalseNegatives counts truly reliable arcs that were culled.
	TruePositives, FalsePositives, FalseNegatives int

	dual *graph.Dual
}

// Probe runs `cycles` collision-free round-robin probe cycles on the
// network: every node beacons once per cycle, reliable arcs always deliver,
// and each unreliable arc delivers independently with probability
// deliveryProb. Arcs with observed rate >= threshold form the estimated
// reliable graph.
func Probe(d *graph.Dual, deliveryProb float64, cycles int, threshold float64, seed int64) (*Survey, error) {
	if cycles < 1 {
		return nil, fmt.Errorf("probe needs cycles >= 1, got %d", cycles)
	}
	if deliveryProb < 0 || deliveryProb > 1 {
		return nil, fmt.Errorf("delivery probability %v outside [0,1]", deliveryProb)
	}
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("threshold %v outside (0,1]", threshold)
	}
	rng := rand.New(rand.NewSource(seed))
	n := d.N()
	counts := make(map[Arc]int)
	for cycle := 0; cycle < cycles; cycle++ {
		for u := 0; u < n; u++ {
			from := graph.NodeID(u)
			for _, v := range d.ReliableOut(from) {
				counts[Arc{from, v}]++
			}
			for _, v := range d.UnreliableOut(from) {
				if rng.Float64() < deliveryProb {
					counts[Arc{from, v}]++
				}
			}
		}
	}

	s := &Survey{
		Cycles:    cycles,
		Threshold: threshold,
		Rates:     make(map[Arc]float64),
		Estimated: graph.NewBuilder(n, true),
		dual:      d,
	}
	for u := 0; u < n; u++ {
		from := graph.NodeID(u)
		for _, v := range d.GPrime().Out(from) {
			arc := Arc{from, v}
			rate := float64(counts[arc]) / float64(cycles)
			s.Rates[arc] = rate
			reliable := d.G().HasEdge(from, v)
			if rate >= threshold {
				if err := s.Estimated.AddEdge(from, v); err != nil {
					return nil, fmt.Errorf("estimated graph: %w", err)
				}
				if reliable {
					s.TruePositives++
				} else {
					s.FalsePositives++
				}
			} else if reliable {
				s.FalseNegatives++
			}
		}
	}
	return s, nil
}

// Precision returns TP/(TP+FP); 1 when nothing was estimated.
func (s *Survey) Precision() float64 {
	total := s.TruePositives + s.FalsePositives
	if total == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(total)
}

// Recall returns TP/(TP+FN); 1 when there is nothing to recall.
func (s *Survey) Recall() float64 {
	total := s.TruePositives + s.FalseNegatives
	if total == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(total)
}

// CulledDual builds the dual graph a culling deployment would effectively
// assume: the estimated graph as the reliable layer under the original G'.
// It fails when culling disconnected the source (recall too low), which is
// itself a meaningful experimental outcome.
func (s *Survey) CulledDual() (*graph.Dual, error) {
	return graph.NewDualGraphs(s.Estimated.Freeze(), s.dual.GPrime(), s.dual.Source())
}

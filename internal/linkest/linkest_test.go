package linkest

import (
	"math/rand"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

func buildDual(t *testing.T) *graph.Dual {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	d, err := graph.Grid(4, 4, 2, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProbeValidation(t *testing.T) {
	d := buildDual(t)
	if _, err := Probe(d, 0.5, 0, 0.9, 1); err == nil {
		t.Fatal("expected error for 0 cycles")
	}
	if _, err := Probe(d, -0.1, 10, 0.9, 1); err == nil {
		t.Fatal("expected error for negative probability")
	}
	if _, err := Probe(d, 0.5, 10, 0, 1); err == nil {
		t.Fatal("expected error for zero threshold")
	}
	if _, err := Probe(d, 0.5, 10, 1.5, 1); err == nil {
		t.Fatal("expected error for threshold > 1")
	}
}

func TestProbeReliableArcsAlwaysKept(t *testing.T) {
	d := buildDual(t)
	s, err := Probe(d, 0.0, 20, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With delivery probability 0 the unreliable arcs never deliver:
	// perfect classification.
	if s.FalsePositives != 0 || s.FalseNegatives != 0 {
		t.Fatalf("FP=%d FN=%d, want 0/0", s.FalsePositives, s.FalseNegatives)
	}
	if s.Precision() != 1 || s.Recall() != 1 {
		t.Fatalf("precision=%v recall=%v, want 1/1", s.Precision(), s.Recall())
	}
	// Reliable arcs must all have rate 1.
	for arc, rate := range s.Rates {
		if d.G().HasEdge(arc.From, arc.To) && rate != 1 {
			t.Fatalf("reliable arc %v has rate %v", arc, rate)
		}
	}
}

func TestProbeFlakyLinksSurviveCulling(t *testing.T) {
	d := buildDual(t)
	// Links that deliver 90% of probes survive a 0.75 ETX-style threshold.
	s, err := Probe(d, 0.9, 200, 0.75, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.FalsePositives == 0 {
		t.Fatal("flaky links delivering 90% of probes must pass the cull")
	}
	if s.Recall() != 1 {
		t.Fatalf("recall = %v, want 1 (reliable arcs always deliver)", s.Recall())
	}
}

func TestProbeRatesConcentrate(t *testing.T) {
	d := buildDual(t)
	s, err := Probe(d, 0.5, 400, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for arc, rate := range s.Rates {
		if d.G().HasEdge(arc.From, arc.To) {
			continue
		}
		if rate < 0.35 || rate > 0.65 {
			t.Fatalf("unreliable arc %v rate %v far from 0.5 after 400 cycles", arc, rate)
		}
	}
}

func TestCulledDualValid(t *testing.T) {
	d := buildDual(t)
	s, err := Probe(d, 0.9, 100, 0.75, 4)
	if err != nil {
		t.Fatal(err)
	}
	culled, err := s.CulledDual()
	if err != nil {
		t.Fatal(err)
	}
	if culled.N() != d.N() {
		t.Fatal("culled dual has wrong size")
	}
	// The culled reliable layer is a supergraph of G here (recall 1), so it
	// must contain every true reliable arc.
	for u := 0; u < d.N(); u++ {
		for _, v := range d.ReliableOut(graph.NodeID(u)) {
			if !culled.G().HasEdge(graph.NodeID(u), v) {
				t.Fatalf("culled graph lost reliable arc (%d,%d)", u, v)
			}
		}
	}
}

// TestProbeThenBetray is the package's reason to exist: the adversary
// behaves during probing (links deliver 95% of probes, so they survive the
// cull) and then turns every unreliable link off. The TreeCast schedule
// computed over the culled topology strands any subtree hanging off a
// trusted-but-unreliable link, while Strong Select on the honest dual graph
// still completes.
func TestProbeThenBetray(t *testing.T) {
	d := buildDual(t)
	s, err := Probe(d, 0.95, 200, 0.75, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.FalsePositives == 0 {
		t.Fatal("setup: the cull must have admitted unreliable links")
	}
	culled, err := s.CulledDual()
	if err != nil {
		t.Fatal(err)
	}

	// TreeCast trusts the culled graph. The betrayal: a benign adversary
	// never delivers unreliable edges again.
	tc, err := core.NewTreeCast(culled.G(), culled.Source())
	if err != nil {
		t.Fatal(err)
	}
	resTree, err := sim.Run(d, tc, adversary.Benign{}, sim.Config{
		Rule:      sim.CR4,
		Start:     sim.AsyncStart,
		MaxRounds: 4 * d.N(),
		Seed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}

	ss, err := core.NewStrongSelect(d.N())
	if err != nil {
		t.Fatal(err)
	}
	resSS, err := sim.Run(d, ss, adversary.Benign{}, sim.Config{
		Rule:      sim.CR4,
		Start:     sim.AsyncStart,
		MaxRounds: 1_000_000,
		Seed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resSS.Completed {
		t.Fatal("strong select must complete regardless of the betrayal")
	}

	// Whether TreeCast survives depends on whether its BFS tree used a
	// betrayed link; with 0.95-delivery probing on this grid it does. If
	// this ever flakes the seed made the tree all-reliable, which would be a
	// setup failure worth knowing about.
	if resTree.Completed {
		t.Fatal("treecast completed despite betrayed links; probe setup no longer exercises the failure")
	}
}

func TestTreeCastOnHonestTopologyIsFast(t *testing.T) {
	d := buildDual(t)
	tc, err := core.NewTreeCast(d.G(), d.Source())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(d, tc, adversary.Benign{}, sim.Config{
		Rule:      sim.CR4,
		Start:     sim.AsyncStart,
		MaxRounds: d.N() + 1,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("treecast must complete on its own reliable topology")
	}
	if res.Rounds >= d.N() {
		t.Fatalf("treecast took %d rounds, want < n", res.Rounds)
	}
}

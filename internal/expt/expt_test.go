package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryIDsUniqueAndSorted(t *testing.T) {
	exps := All()
	if len(exps) < 10 {
		t.Fatalf("expected at least 10 experiments, got %d", len(exps))
	}
	seen := map[string]bool{}
	prev := ""
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.ID < prev {
			t.Errorf("experiments not sorted: %q after %q", e.ID, prev)
		}
		prev = e.ID
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1-thm2"); !ok {
		t.Fatal("table1-thm2 must exist")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode; this
// doubles as the integration test of the whole stack (the experiments return
// errors when a paper bound is violated).
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(Config{Out: &buf, Quick: true, Seed: 11}); err != nil {
				t.Fatalf("experiment failed: %v\noutput so far:\n%s", err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("output missing banner: %q", out[:minInt(len(out), 80)])
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDualTopologyUnknown(t *testing.T) {
	if _, err := dualTopology("bogus", 10, 1); err == nil {
		t.Fatal("expected error for unknown topology")
	}
}

func TestOddify(t *testing.T) {
	if oddify(8) != 9 || oddify(9) != 9 {
		t.Fatal("oddify wrong")
	}
}

func TestFitLine(t *testing.T) {
	got := fitLine([]int{2, 4, 8}, []float64{4, 16, 64})
	if !strings.Contains(got, "n^2.00") {
		t.Errorf("fitLine = %q, want quadratic fit", got)
	}
	if fitLine([]int{1}, []float64{1}) != "fit: n/a" {
		t.Error("single-point fit must degrade to n/a")
	}
}

package expt

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"

	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/registry"
	"dualgraph/internal/sim"
)

func TestRegistryIDsUniqueAndSorted(t *testing.T) {
	exps := All()
	if len(exps) < 10 {
		t.Fatalf("expected at least 10 experiments, got %d", len(exps))
	}
	seen := map[string]bool{}
	prev := ""
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.ID < prev {
			t.Errorf("experiments not sorted: %q after %q", e.ID, prev)
		}
		prev = e.ID
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1-thm2"); !ok {
		t.Fatal("table1-thm2 must exist")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode; this
// doubles as the integration test of the whole stack (the experiments return
// errors when a paper bound is violated).
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(Config{Out: &buf, Quick: true, Seed: 11}); err != nil {
				t.Fatalf("experiment failed: %v\noutput so far:\n%s", err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("output missing banner: %q", out[:minInt(len(out), 80)])
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Errorf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestExperimentOutputWorkerCountInvariant is the engine port's golden
// guarantee: an experiment's rendered table must be byte-identical whether
// its trials run on 1 worker or fan out over 8.
func TestExperimentOutputWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, id := range []string{"table1-dual-strongselect", "table2-dual-harmonic"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s must exist", id)
		}
		render := func(workers int) string {
			var buf bytes.Buffer
			err := e.Run(Config{
				Out: &buf, Quick: true, Seed: 11,
				Engine: engine.Config{Workers: workers},
			})
			if err != nil {
				t.Fatalf("%s with %d workers: %v", id, workers, err)
			}
			return buf.String()
		}
		if seq, par := render(1), render(8); seq != par {
			t.Fatalf("%s output differs between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", id, seq, par)
		}
	}
}

// TestTable1RowMatchesSequentialReference recomputes the Table 1 classical
// round-robin "line" rows with a plain sequential sim.Run loop and checks
// the engine-rendered experiment reports exactly those numbers.
func TestTable1RowMatchesSequentialReference(t *testing.T) {
	seed := int64(11)
	want := map[int]int{} // n -> rounds
	for _, n := range sweepSizes(true) {
		d, err := registry.Topology("line", n, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(d, core.NewRoundRobin(), benign(), sim.Config{
			Rule:  sim.CR3,
			Start: sim.SyncStart,
			Seed:  seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		want[n] = res.Rounds
	}

	e, ok := ByID("table1-classical-rr")
	if !ok {
		t.Fatal("table1-classical-rr must exist")
	}
	var buf bytes.Buffer
	if err := e.Run(Config{Out: &buf, Quick: true, Seed: seed, Engine: engine.Config{Workers: 8}}); err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "line" {
			continue
		}
		n, err1 := strconv.Atoi(fields[1])
		rounds, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			continue
		}
		got[n] = rounds
	}
	for n, rounds := range want {
		if got[n] != rounds {
			t.Errorf("line n=%d: experiment reports %d rounds, sequential reference says %d", n, got[n], rounds)
		}
	}
}

// TestQuickEnginePathInShortMode keeps one cheap engine-backed experiment in
// the -short test path, so even the fast CI lane exercises the fan-out.
func TestQuickEnginePathInShortMode(t *testing.T) {
	e, ok := ByID("fig-busy-rounds")
	if !ok {
		t.Fatal("fig-busy-rounds must exist")
	}
	var buf bytes.Buffer
	if err := e.Run(Config{Out: &buf, Quick: true, Seed: 3, Engine: engine.Config{Workers: 4}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "front-loaded") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

// TestScenarioUnknownNamesFail pins the registry routing: an experiment
// cell with an unknown name fails with the registry's typed error instead
// of a bare message.
func TestScenarioUnknownNamesFail(t *testing.T) {
	_, err := scenario("bogus", 10, "harmonic", "greedy", sim.CR4, sim.AsyncStart, 1)
	var unk *registry.ErrUnknownName
	if !errors.As(err, &unk) {
		t.Fatalf("want *registry.ErrUnknownName, got %v", err)
	}
}

func TestFitLine(t *testing.T) {
	got := fitLine([]int{2, 4, 8}, []float64{4, 16, 64})
	if !strings.Contains(got, "n^2.00") {
		t.Errorf("fitLine = %q, want quadratic fit", got)
	}
	if fitLine([]int{1}, []float64{1}) != "fit: n/a" {
		t.Error("single-point fit must degrade to n/a")
	}
}

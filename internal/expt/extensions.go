package expt

import (
	"fmt"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/exhaustive"
	"dualgraph/internal/graph"
	"dualgraph/internal/linkest"
	"dualgraph/internal/lowerbound"
	"dualgraph/internal/registry"
	"dualgraph/internal/repeat"
	"dualgraph/internal/schedule"
	"dualgraph/internal/sim"
	"dualgraph/internal/spec"
	"dualgraph/internal/stats"
)

// extDeltaSelect reproduces the Section 2.2 comparison with the
// Clementi-Monti-Silvestri algorithm: knowing the interference in-degree Δ
// beats Strong Select when Δ is small, and degenerates when Δ is large.
func extDeltaSelect() Experiment {
	e := Experiment{
		ID:       "ext-delta-select",
		Title:    "Δ-aware oblivious baseline vs Strong Select (Clementi et al. comparison)",
		PaperRef: "Section 2.2, discussion of [11]: faster iff Δ = o(√(n/log n)), needs Δ",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "topology\tn\tΔ(G')\tdelta-select rounds\tstrong-select rounds\twinner")
		type job struct {
			topo string
			n    int
		}
		type row struct {
			nn, delta, dsRounds, ssRounds int
		}
		var jobs []job
		for _, topo := range []string{"line", "geometric", "clique-bridge"} {
			for _, n := range sweepSizes(cfg.Quick)[:2] {
				jobs = append(jobs, job{topo, n})
			}
		}
		rows, err := engine.Map(len(jobs), cfg.Engine, func(i int) (row, error) {
			j := jobs[i]
			d, err := registry.Topology(j.topo, j.n, cfg.Seed, nil)
			if err != nil {
				return row{}, err
			}
			nn := d.N()
			delta := d.GPrime().MaxInDegree()
			ds, err := core.NewDeltaSelect(nn, delta)
			if err != nil {
				return row{}, err
			}
			ss, err := core.NewStrongSelect(nn)
			if err != nil {
				return row{}, err
			}
			budget := nn*ds.FamilySize() + strongSelectBudget(nn)
			run := func(alg sim.Algorithm) (int, error) {
				res, err := sim.Run(d, alg, greedy(), sim.Config{
					Rule:      sim.CR4,
					Start:     sim.AsyncStart,
					MaxRounds: budget,
					Seed:      cfg.Seed,
				})
				if err != nil {
					return 0, err
				}
				if !res.Completed {
					return budget, nil
				}
				return res.Rounds, nil
			}
			dsRounds, err := run(ds)
			if err != nil {
				return row{}, err
			}
			ssRounds, err := run(ss)
			if err != nil {
				return row{}, err
			}
			return row{nn: nn, delta: delta, dsRounds: dsRounds, ssRounds: ssRounds}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			winner := "delta-select"
			if r.ssRounds < r.dsRounds {
				winner = "strong-select"
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n",
				jobs[i].topo, r.nn, r.delta, r.dsRounds, r.ssRounds, winner)
		}
		return tw.Flush()
	}
	return e
}

// extRepeatedBroadcast measures the Section 8 future-work extension:
// throughput of sequential vs pipelined repeated broadcast.
func extRepeatedBroadcast() Experiment {
	e := Experiment{
		ID:       "ext-repeated-broadcast",
		Title:    "repeated broadcast: sequential vs pipelined throughput",
		PaperRef: "Section 8 (future work: repeated broadcast in dual graphs)",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		n, m := 16, 8
		if cfg.Quick {
			m = 4
		}
		d, err := graph.CliqueBridge(n)
		if err != nil {
			return err
		}
		budget := 3 * n
		seq, err := repeat.NewSequential(budget, false, 0)
		if err != nil {
			return err
		}
		pipe, err := repeat.NewPipelined(false, 0)
		if err != nil {
			return err
		}
		T := core.HarmonicT(n, 0.1)
		// The per-message budget must cover the Theorem 18 w.h.p. bound:
		// a message that misses its block can never be delivered later.
		harmonicBudget := int(2 * float64(n*T) * stats.HarmonicNumber(n))
		seqH, err := repeat.NewSequential(harmonicBudget, true, T)
		if err != nil {
			return err
		}
		pipeH, err := repeat.NewPipelined(true, T)
		if err != nil {
			return err
		}
		fmt.Fprintln(tw, "protocol\tmessages\trounds\tthroughput (msg/round)\ttransmissions")
		protocols := []repeat.Protocol{seq, pipe, seqH, pipeH}
		results, err := engine.Map(len(protocols), cfg.Engine, func(i int) (*repeat.Result, error) {
			res, err := repeat.Run(d, protocols[i], repeat.Config{
				Messages:  m,
				MaxRounds: 2 * m * harmonicBudget,
				Seed:      cfg.Seed,
				Adversary: repeat.Greedy,
			})
			if err != nil {
				return nil, err
			}
			if !res.Completed {
				return nil, fmt.Errorf("%s did not complete", protocols[i].Name())
			}
			return res, nil
		})
		if err != nil {
			return err
		}
		for i, res := range results {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%d\n",
				protocols[i].Name(), m, res.Rounds, res.Throughput, res.Transmissions)
		}
		return tw.Flush()
	}
	return e
}

// extLinkCulling is the probe-then-betray experiment motivating the model:
// ETX-style culling admits links that behave during probing, and protocols
// that trust the culled topology break when those links turn adversarial.
func extLinkCulling() Experiment {
	e := Experiment{
		ID:       "ext-link-culling",
		Title:    "ETX-style culling vs worst-case links (probe, cull, betray)",
		PaperRef: "Section 1 (gray zones, ETX [13]); the model's motivation",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		// Fixed geometric deployment: a sparse reliable backbone under a
		// dense gray zone, the regime where trusting culled links hurts.
		d, err := graph.Geometric(30, 0.18, 0.8, newRng(9))
		if err != nil {
			return err
		}
		fmt.Fprintln(tw, "probe delivery\tfalse positives\tprecision\ttreecast after betrayal\tstrong-select after betrayal")
		probePs := []float64{0.0, 0.5, 0.95}
		type row struct {
			falsePositives int
			precision      float64
			treeRes, ssRes *sim.Result
		}
		rows, err := engine.Map(len(probePs), cfg.Engine, func(i int) (row, error) {
			probeP := probePs[i]
			s, err := linkest.Probe(d, probeP, 200, 0.75, cfg.Seed)
			if err != nil {
				return row{}, err
			}
			culled, err := s.CulledDual()
			if err != nil {
				return row{}, err
			}
			tc, err := core.NewTreeCast(culled.G(), culled.Source())
			if err != nil {
				return row{}, err
			}
			resTree, err := sim.Run(d, tc, adversary.Benign{}, sim.Config{
				Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: 4 * d.N(), Seed: cfg.Seed,
			})
			if err != nil {
				return row{}, err
			}
			ss, err := core.NewStrongSelect(d.N())
			if err != nil {
				return row{}, err
			}
			resSS, err := sim.Run(d, ss, adversary.Benign{}, sim.Config{
				Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: strongSelectBudget(d.N()), Seed: cfg.Seed,
			})
			if err != nil {
				return row{}, err
			}
			if !resSS.Completed {
				return row{}, fmt.Errorf("strong select must survive the betrayal")
			}
			return row{
				falsePositives: s.FalsePositives,
				precision:      s.Precision(),
				treeRes:        resTree,
				ssRes:          resSS,
			}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			fmt.Fprintf(tw, "%.2f\t%d\t%.2f\t%s\t%s\n",
				probePs[i], r.falsePositives, r.precision, verdict(r.treeRes), verdict(r.ssRes))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(cfg.Out, "   (betrayal: unreliable links deliver during probing, never afterwards)")
		return nil
	}
	return e
}

func verdict(res *sim.Result) string {
	if res.Completed {
		return fmt.Sprintf("ok (%d rounds)", res.Rounds)
	}
	return "STRANDED"
}

// extBroadcastability measures k-broadcastability (Section 3): the
// omniscient-schedule optimum against the rounds the algorithms actually
// need, quantifying the price of not knowing the topology.
func extBroadcastability() Experiment {
	e := Experiment{
		ID:       "ext-broadcastability",
		Title:    "k-broadcastability: omniscient schedules vs oblivious algorithms",
		PaperRef: "Section 3 (k-broadcastable networks); Theorem 2 witness",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "topology\tn\texact k\tgreedy k\teccentricity\tstrong-select rounds\tgap")
		topos := []string{"clique-bridge", "line", "complete-layered", "random"}
		type row struct {
			n, exactK, greedyK, ecc, ssRounds int
		}
		rows, err := engine.Map(len(topos), cfg.Engine, func(i int) (row, error) {
			topo := topos[i]
			d, err := registry.Topology(topo, 17, cfg.Seed, nil)
			if err != nil {
				return row{}, err
			}
			exact, err := schedule.Exact(d)
			if err != nil {
				return row{}, err
			}
			greedyS, err := schedule.Greedy(d)
			if err != nil {
				return row{}, err
			}
			ss, err := core.NewStrongSelect(d.N())
			if err != nil {
				return row{}, err
			}
			res, err := sim.Run(d, ss, greedy(), sim.Config{
				Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: strongSelectBudget(d.N()), Seed: cfg.Seed,
			})
			if err != nil {
				return row{}, err
			}
			if !res.Completed {
				return row{}, fmt.Errorf("%s: strong select incomplete", topo)
			}
			if exact.Rounds() > greedyS.Rounds() {
				return row{}, fmt.Errorf("%s: exact schedule longer than greedy", topo)
			}
			return row{
				n: d.N(), exactK: exact.Rounds(), greedyK: greedyS.Rounds(),
				ecc: d.Eccentricity(), ssRounds: res.Rounds,
			}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.1fx\n",
				topos[i], r.n, r.exactK, r.greedyK, r.ecc,
				r.ssRounds, float64(r.ssRounds)/float64(r.exactK))
		}
		return tw.Flush()
	}
	return e
}

// extPreferentialAttachment opens the scale-free workload: Barabási–Albert
// duals whose attachment links are unreliable with a tunable fraction. Hubs
// give the adaptive adversary many jamming arcs concentrated on few nodes —
// a qualitatively different regime from the paper's clique constructions.
func extPreferentialAttachment() Experiment {
	e := Experiment{
		ID:       "ext-pref-attach",
		Title:    "scale-free preferential-attachment duals under adaptive jamming",
		PaperRef: "Section 1 (beyond grids: hub-and-spoke deployments with gray-zone shortcuts)",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "n\tunreliable frac\t|E|\t|E'\\E|\tΔ(G')\tbenign median\tgreedy median\tcompleted")
		trials := 15
		if cfg.Quick {
			trials = 5
		}
		type job struct {
			n    int
			frac float64
		}
		type row struct {
			edges, fringe, delta   int
			benignMed, greedyMed   float64
			benignDone, greedyDone int
		}
		var jobs []job
		for _, n := range sweepSizes(cfg.Quick) {
			for _, frac := range []float64{0.3, 0.7} {
				jobs = append(jobs, job{n, frac})
			}
		}
		rows := make([]row, len(jobs))
		for i, j := range jobs {
			d, err := graph.PreferentialAttachment(j.n, 3, j.frac, newRng(cfg.Seed+int64(i)))
			if err != nil {
				return err
			}
			alg, err := mustHarmonic(d.N())
			if err != nil {
				return err
			}
			budget := int(4 * float64(d.N()*core.HarmonicT(d.N(), 0.02)) * stats.HarmonicNumber(d.N()))
			simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: budget, Seed: cfg.Seed}
			bMed, _, bDone, err := medianRounds(cfg.Engine, d, alg, benign(), simCfg, trials)
			if err != nil {
				return err
			}
			gMed, _, gDone, err := medianRounds(cfg.Engine, d, alg, greedy(), simCfg, trials)
			if err != nil {
				return err
			}
			rows[i] = row{
				edges: d.G().NumEdges() / 2, fringe: d.NumUnreliable() / 2,
				delta:     d.GPrime().MaxInDegree(),
				benignMed: bMed, greedyMed: gMed, benignDone: bDone, greedyDone: gDone,
			}
		}
		for i, r := range rows {
			fmt.Fprintf(tw, "%d\t%.1f\t%d\t%d\t%d\t%.0f\t%.0f\t%d+%d/%d\n",
				jobs[i].n, jobs[i].frac, r.edges, r.fringe, r.delta,
				r.benignMed, r.greedyMed, r.benignDone, r.greedyDone, trials)
		}
		return tw.Flush()
	}
	return e
}

// extDynamic opens the time-varying workload: broadcast on epoch-scheduled
// dynamic dual graphs — node churn, link fading, and waypoint mobility —
// run as one declarative schedule-axis sweep. Churn removes gray-zone arcs
// (disarming the collider), fading hands it more, and mobility reshapes the
// whole geometry every epoch; the table contrasts all three against the
// static baseline on the same geometric deployment.
func extDynamic() Experiment {
	e := Experiment{
		ID:       "ext-dynamic",
		Title:    "broadcast on dynamic dual graphs: churn, fading, waypoint mobility",
		PaperRef: "Section 2 model with time-varying (G, G'): gray-zone links fluctuate over a deployment's lifetime",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "schedule\tcompleted\tp50 rounds\tp95 rounds\tmean transmissions")
		trials := 20
		n := 40
		if cfg.Quick {
			trials, n = 6, 25
		}
		sw := spec.Sweep{
			Base: spec.Scenario{
				Topology:  spec.Choice{Name: "geometric"},
				Algorithm: spec.Choice{Name: "harmonic"},
				Adversary: spec.Choice{Name: "greedy"},
				Schedule:  spec.Choice{Name: "static"},
				N:         n,
				Rule:      sim.CR4,
				Start:     sim.AsyncStart,
				Seed:      cfg.Seed,
			},
			Schedules: []spec.Choice{
				{Name: "static"},
				{Name: "churn", Params: registry.Params{"p-down": 0.1}},
				{Name: "churn", Params: registry.Params{"p-down": 0.3}},
				{Name: "fade", Params: registry.Params{"p-fade": 0.3}},
				{Name: "waypoint"},
			},
			Trials: trials,
		}
		grid, err := sw.Run(cfg.Engine, engine.StreamConfig{})
		if err != nil {
			return err
		}
		for _, cr := range grid.Cells {
			p50, err := cr.Summary.Rounds.Quantile(0.5)
			if err != nil {
				return err
			}
			p95, err := cr.Summary.Rounds.Quantile(0.95)
			if err != nil {
				return err
			}
			tx, err := cr.Summary.Transmissions.Mean()
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%d/%d\t%.0f\t%.0f\t%.0f\n",
				cr.Cell.Label, cr.Summary.Completed, cr.Summary.Trials, p50, p95, tx)
		}
		return tw.Flush()
	}
	return e
}

// extExhaustive validates the heuristic adversaries against the true worst
// case found by exhaustive search on tiny networks, and cross-checks the
// Theorem 2 game.
func extExhaustive() Experiment {
	e := Experiment{
		ID:       "ext-exhaustive",
		Title:    "exhaustive worst-case adversary search on tiny networks",
		PaperRef: "Section 2.1 adversary semantics (universally quantified choices)",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "n\talgorithm\texhaustive worst\tgreedy heuristic\tthm2 game\tbranches")
		type job struct {
			n    int
			kind algKind
		}
		type row struct {
			name                             string
			worst, heuristic, game, branches int
		}
		var jobs []job
		for _, n := range []int{4, 5, 6} {
			jobs = append(jobs, job{n, algRoundRobin})
			if !cfg.Quick {
				jobs = append(jobs, job{n, algStrongSelect})
			}
		}
		rows, err := engine.Map(len(jobs), cfg.Engine, func(i int) (row, error) {
			j := jobs[i]
			d, err := graph.CliqueBridge(j.n)
			if err != nil {
				return row{}, err
			}
			alg, err := buildAlg(j.kind, j.n)
			if err != nil {
				return row{}, err
			}
			search, err := exhaustive.Search(d, alg, exhaustive.Config{
				Rule:    sim.CR1,
				Horizon: 40 * j.n,
			})
			if err != nil {
				return row{}, err
			}
			heuristic, err := sim.Run(d, alg, adversary.GreedyCollider{}, sim.Config{
				Rule: sim.CR1, Start: sim.SyncStart, Seed: cfg.Seed,
			})
			if err != nil {
				return row{}, err
			}
			game, err := lowerbound.RunTheorem2Game(j.n, alg, 0)
			if err != nil {
				return row{}, err
			}
			if search.WorstRounds < heuristic.Rounds {
				return row{}, fmt.Errorf("exhaustive worst below heuristic for %s n=%d", alg.Name(), j.n)
			}
			return row{
				name: alg.Name(), worst: search.WorstRounds, heuristic: heuristic.Rounds,
				game: game.ForcedRounds, branches: search.Branches,
			}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\n",
				jobs[i].n, r.name, r.worst, r.heuristic, r.game, r.branches)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(cfg.Out, "   (thm2 game additionally optimizes the bridge assignment, so it can exceed")
		fmt.Fprintln(cfg.Out, "    the identity-assignment exhaustive bound)")
		return nil
	}
	return e
}

// extAdaptive cross-validates the three adversary strengths on tiny
// networks: the offline exhaustive worst case, the online adaptive
// best-response adversary (which must realize exactly the same bound — the
// experiment fails if it does not), and the stateless greedy heuristic. A
// horizon-1 adaptive column shows how much of the worst case survives when
// the adversary may only interfere in the first round.
func extAdaptive() Experiment {
	e := Experiment{
		ID:       "ext-adaptive",
		Title:    "adaptive best-response adversary vs exhaustive worst case",
		PaperRef: "Section 2.1 adversary semantics (online play of the universal quantifier)",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "n\talgorithm\texhaustive worst\tadaptive(∞)\tadaptive(h=1)\tgreedy heuristic")
		type job struct {
			n    int
			kind algKind
		}
		type row struct {
			name                               string
			worst, adaptive, capped, heuristic int
		}
		var jobs []job
		for _, n := range []int{4, 5, 6} {
			jobs = append(jobs, job{n, algRoundRobin})
			if !cfg.Quick {
				jobs = append(jobs, job{n, algStrongSelect})
			}
		}
		rows, err := engine.Map(len(jobs), cfg.Engine, func(i int) (row, error) {
			j := jobs[i]
			d, err := graph.CliqueBridge(j.n)
			if err != nil {
				return row{}, err
			}
			alg, err := buildAlg(j.kind, j.n)
			if err != nil {
				return row{}, err
			}
			horizon := 8 * j.n
			search, err := exhaustive.Search(d, alg, exhaustive.Config{
				Rule:    sim.CR1,
				Horizon: horizon,
				Seed:    cfg.Seed,
			})
			if err != nil {
				return row{}, err
			}
			play := func(deliverRounds int) (int, error) {
				adv, err := adversary.NewAdaptive(deliverRounds, horizon, 0, 0)
				if err != nil {
					return 0, err
				}
				run, err := sim.Run(d, alg, adv, sim.Config{
					Rule: sim.CR1, Start: sim.SyncStart, MaxRounds: horizon, Seed: cfg.Seed,
				})
				if err != nil {
					return 0, err
				}
				if !run.Completed {
					return horizon + 1, nil
				}
				return run.Rounds, nil
			}
			adaptive, err := play(0)
			if err != nil {
				return row{}, err
			}
			if adaptive != search.WorstRounds {
				return row{}, fmt.Errorf("adaptive adversary realized %d rounds but exhaustive worst is %d for %s n=%d",
					adaptive, search.WorstRounds, alg.Name(), j.n)
			}
			capped, err := play(1)
			if err != nil {
				return row{}, err
			}
			heuristic, err := sim.Run(d, alg, adversary.GreedyCollider{}, sim.Config{
				Rule: sim.CR1, Start: sim.SyncStart, Seed: cfg.Seed,
			})
			if err != nil {
				return row{}, err
			}
			return row{
				name: alg.Name(), worst: search.WorstRounds, adaptive: adaptive,
				capped: capped, heuristic: heuristic.Rounds,
			}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\n",
				jobs[i].n, r.name, r.worst, r.adaptive, r.capped, r.heuristic)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(cfg.Out, "   (adaptive(∞) is asserted equal to the exhaustive bound; the h=1 column")
		fmt.Fprintln(cfg.Out, "    caps interference to round 1, so it lower-bounds the unbounded play)")
		return nil
	}
	return e
}

package expt

import (
	"fmt"
	"math"

	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/lowerbound"
	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

// table2ClassicalDecay reproduces the classical-model column of Table 2:
// randomized broadcast in O(D log(n/D) + log² n) rounds (Czumaj-Rytter
// [12]); our executable stand-in is the Decay protocol of Bar-Yehuda et al.
func table2ClassicalDecay() Experiment {
	e := Experiment{
		ID:       "table2-classical-decay",
		Title:    "randomized broadcast in the classical model: Decay",
		PaperRef: "Table 2, classical column (O(n log(n/D)+log²n) [12])",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		trials := 9
		if cfg.Quick {
			trials = 5
		}
		fmt.Fprintln(tw, "topology\tn\tmedian rounds\tmax rounds\tcompleted")
		for _, topo := range []string{"complete", "line", "tree"} {
			var ns []int
			var meds []float64
			for _, n := range sweepSizes(cfg.Quick) {
				// The cell is a declarative Scenario; the aggregation on top
				// (medianRounds with its historical seed stepping) stays
				// expt-specific, so tables are byte-identical to the
				// positional era.
				scn, err := scenario(topo, n, "decay", "benign",
					sim.CR3, sim.AsyncStart, cfg.Seed)
				if err != nil {
					return err
				}
				scn.MaxRounds = 400 * n
				b, err := scn.Build()
				if err != nil {
					return err
				}
				med, maxR, done, err := medianRounds(cfg.Engine, b.Net, b.Alg, b.Adv, b.Cfg, trials)
				if err != nil {
					return err
				}
				ns = append(ns, n)
				meds = append(meds, med)
				fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%d/%d\n", topo, n, med, maxR, done, trials)
			}
			fmt.Fprintf(tw, "%s\t\t\t%s\n", topo, fitLine(ns, meds))
		}
		return tw.Flush()
	}
	return e
}

// table2DualHarmonic reproduces the bold dual-graph entry of Table 2:
// Harmonic Broadcast completes in O(n log² n) rounds w.h.p. on dual graphs.
func table2DualHarmonic() Experiment {
	e := Experiment{
		ID:       "table2-dual-harmonic",
		Title:    "Harmonic Broadcast on dual graphs: O(n log² n) w.h.p. (Theorem 19)",
		PaperRef: "Table 2, dual column (bold O(n log² n)); Section 7",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		trials := 9
		if cfg.Quick {
			trials = 5
		}
		fmt.Fprintln(tw, "topology\tn\tT\tmedian rounds\tThm18 bound\tmedian/bound\tcompleted")
		for _, topo := range []string{"clique-bridge", "complete-layered", "random"} {
			var ns []int
			var meds []float64
			for _, n := range sweepSizes(cfg.Quick) {
				scn, err := scenario(topo, n, "harmonic", "greedy",
					sim.CR4, sim.AsyncStart, cfg.Seed)
				if err != nil {
					return err
				}
				b, err := scn.Build()
				if err != nil {
					return err
				}
				// The Theorem 18 budget is derived from the T of the
				// algorithm actually built, so it cannot drift from the
				// registry's construction.
				h, ok := b.Alg.(*core.Harmonic)
				if !ok {
					return fmt.Errorf("scenario built %T for %q, want *core.Harmonic", b.Alg, "harmonic")
				}
				nn := b.Net.N()
				paperT := h.T
				bound := int(2 * float64(nn*paperT) * stats.HarmonicNumber(nn))
				b.Cfg.MaxRounds = bound
				med, _, done, err := medianRounds(cfg.Engine, b.Net, b.Alg, b.Adv, b.Cfg, trials)
				if err != nil {
					return err
				}
				if done < trials {
					return fmt.Errorf("%s n=%d: %d/%d runs exceeded the Theorem 18 bound", topo, nn, trials-done, trials)
				}
				ns = append(ns, nn)
				meds = append(meds, med)
				fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%d\t%.3f\t%d/%d\n",
					topo, nn, paperT, med, bound, med/float64(bound), done, trials)
			}
			fmt.Fprintf(tw, "%s\t\t\t\t%s\n", topo, fitLine(ns, meds))
		}
		return tw.Flush()
	}
	return e
}

// table2Theorem4 reproduces the randomized lower bound of Theorem 4: the
// success probability within k rounds on the clique-bridge network is at
// most k/(n-2) for the adversary's best bridge assignment.
func table2Theorem4() Experiment {
	e := Experiment{
		ID:       "table2-thm4",
		Title:    "Theorem 4 Monte-Carlo: success within k rounds is at most k/(n-2)",
		PaperRef: "Theorem 4; Table 2 dual column open randomized lower bound",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		n := 18
		trials := 200
		if cfg.Quick {
			n = 14
			trials = 80
		}
		fmt.Fprintln(tw, "algorithm\tn\tk\tmin success\tbound k/(n-2)\trespects bound")
		h, err := core.NewHarmonicForN(n, 0.1)
		if err != nil {
			return err
		}
		u, err := core.NewUniform(0.25)
		if err != nil {
			return err
		}
		type job struct {
			alg sim.Algorithm
			k   int
		}
		var jobs []job
		for _, alg := range []sim.Algorithm{h, u} {
			for _, k := range []int{2, n / 3, n - 4} {
				jobs = append(jobs, job{alg, k})
			}
		}
		results, err := engine.Map(len(jobs), cfg.Engine, func(i int) (*lowerbound.Theorem4Result, error) {
			return lowerbound.RunTheorem4(n, jobs[i].k, trials, jobs[i].alg, cfg.Seed)
		})
		if err != nil {
			return err
		}
		for i, res := range results {
			j := jobs[i]
			// Allow 3-sigma Monte-Carlo slack.
			slack := 3 * math.Sqrt(res.Bound*(1-res.Bound)/float64(trials))
			ok := res.MinSuccess <= res.Bound+slack
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.3f\t%v\n",
				j.alg.Name(), n, j.k, res.MinSuccess, res.Bound, ok)
		}
		return tw.Flush()
	}
	return e
}

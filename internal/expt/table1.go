package expt

import (
	"fmt"
	"math"

	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/lowerbound"
	"dualgraph/internal/sim"
)

// table1ClassicalRR reproduces the classical-model column of Table 1:
// deterministic broadcast in O(n) rounds (Chlebus et al. [5]) via round
// robin on undirected classical graphs with synchronous start.
func table1ClassicalRR() Experiment {
	e := Experiment{
		ID:       "table1-classical-rr",
		Title:    "deterministic broadcast in the classical model: round robin is O(n·D)",
		PaperRef: "Table 1, classical column (O(n) [5], Ω(n) [21])",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "topology\tn\trounds\trounds/n")
		for _, topo := range []string{"complete", "line", "tree"} {
			sizes := sweepSizes(cfg.Quick)
			// Each cell is a declarative Scenario run on the Spec path; the
			// registry resolves the same constructors the harness always
			// used, so tables are byte-identical to the positional era.
			results, err := engine.Map(len(sizes), cfg.Engine, func(i int) (*sim.Result, error) {
				scn, err := scenario(topo, sizes[i], "round-robin", "benign",
					sim.CR3, sim.SyncStart, cfg.Seed)
				if err != nil {
					return nil, err
				}
				return scn.Run()
			})
			if err != nil {
				return err
			}
			var ns []int
			var rounds []float64
			for i, res := range results {
				n := sizes[i]
				if !res.Completed {
					return fmt.Errorf("%s n=%d: round robin did not complete", topo, n)
				}
				ns = append(ns, n)
				rounds = append(rounds, float64(res.Rounds))
				fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\n", topo, n, res.Rounds, float64(res.Rounds)/float64(n))
			}
			fmt.Fprintf(tw, "%s\t\t\t%s\n", topo, fitLine(ns, rounds))
		}
		return tw.Flush()
	}
	return e
}

// table1DualStrongSelect reproduces the bold dual-graph entry of Table 1:
// Strong Select completes in O(n^{3/2} √log n) rounds on dual graphs under
// CR4, asynchronous start, and an adaptive adversary.
func table1DualStrongSelect() Experiment {
	e := Experiment{
		ID:       "table1-dual-strongselect",
		Title:    "Strong Select on dual graphs: O(n^{3/2} √log n) (Theorem 10)",
		PaperRef: "Table 1, dual column (bold O(n^{3/2}√log n)); Section 5",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "topology\tn\trounds\trounds/n^1.5\tbound X")
		type row struct {
			nn, rounds, bound int
		}
		for _, topo := range []string{"clique-bridge", "complete-layered", "geometric"} {
			sizes := sweepSizes(cfg.Quick)
			rows, err := engine.Map(len(sizes), cfg.Engine, func(i int) (row, error) {
				scn, err := scenario(topo, sizes[i], "strong-select", "greedy",
					sim.CR4, sim.AsyncStart, cfg.Seed)
				if err != nil {
					return row{}, err
				}
				b, err := scn.Build()
				if err != nil {
					return row{}, err
				}
				// The round budget depends on the built size, which a
				// structural generator may have adjusted, so it is set after
				// materializing rather than in the spec.
				nn := b.Net.N()
				bound := strongSelectBudget(nn)
				b.Cfg.MaxRounds = bound
				res, err := b.Run()
				if err != nil {
					return row{}, err
				}
				if !res.Completed {
					return row{}, fmt.Errorf("%s n=%d: strong select exceeded its budget %d", topo, nn, bound)
				}
				return row{nn: nn, rounds: res.Rounds, bound: bound}, nil
			})
			if err != nil {
				return err
			}
			var ns []int
			var rounds []float64
			for _, r := range rows {
				ns = append(ns, r.nn)
				rounds = append(rounds, float64(r.rounds))
				norm := float64(r.rounds) / math.Pow(float64(r.nn), 1.5)
				fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%d\n", topo, r.nn, r.rounds, norm, r.bound)
			}
			fmt.Fprintf(tw, "%s\t\t\t%s\n", topo, fitLine(ns, rounds))
		}
		return tw.Flush()
	}
	return e
}

// strongSelectBudget is a generous executable form of the Theorem 10 bound,
// with the constructive families' extra log factor folded into the constant.
func strongSelectBudget(n int) int {
	nf := float64(n)
	return int(40*nf*math.Sqrt(nf)*math.Log2(nf)) + 2000
}

// table1Theorem2 reproduces the Ω(n) lower bound for 2-broadcastable
// networks (Theorem 2): the adversary game forces every deterministic
// algorithm past n-3 rounds in a network broadcastable in 2 rounds.
func table1Theorem2() Experiment {
	e := Experiment{
		ID:       "table1-thm2",
		Title:    "Theorem 2 game: deterministic broadcast needs > n-3 rounds at diameter 2",
		PaperRef: "Theorem 2; Table 1 (Ω(n) [21] vs dual-graph bold row)",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "algorithm\tn\tforced rounds\tn-3\twitness rounds")
		sizes := []int{16, 32, 64}
		if cfg.Quick {
			sizes = []int{16, 32}
		}
		type job struct {
			n   int
			alg sim.Algorithm
		}
		var jobs []job
		for _, n := range sizes {
			ss, err := core.NewStrongSelect(n)
			if err != nil {
				return err
			}
			jobs = append(jobs, job{n, core.NewRoundRobin()}, job{n, ss})
		}
		results, err := engine.Map(len(jobs), cfg.Engine, func(i int) (*lowerbound.Theorem2Result, error) {
			return lowerbound.RunTheorem2Game(jobs[i].n, jobs[i].alg, 0)
		})
		if err != nil {
			return err
		}
		for i, res := range results {
			j := jobs[i]
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n",
				j.alg.Name(), j.n, res.ForcedRounds, j.n-3, res.WitnessRounds)
			if res.ForcedRounds <= j.n-3 {
				return fmt.Errorf("theorem 2 violated for %s at n=%d", j.alg.Name(), j.n)
			}
		}
		return tw.Flush()
	}
	return e
}

// table1Theorem12 reproduces the Ω(n log n) undirected lower bound
// (Theorem 12) by running the candidate-set adversary game.
func table1Theorem12() Experiment {
	e := Experiment{
		ID:       "table1-thm12",
		Title:    "Theorem 12 game: Ω(n log n) forced rounds on the complete layered network",
		PaperRef: "Theorem 12; Table 1 bold Ω(n log n)",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "algorithm\tn\tforced rounds\ttheory bound\tforced/(n·log n)\tmin stage ext")
		sizes := []int{9, 17, 33, 65}
		if cfg.Quick {
			sizes = []int{9, 17, 33}
		}
		type job struct {
			n   int
			alg sim.Algorithm
		}
		var jobs []job
		for _, n := range sizes {
			jobs = append(jobs, job{n, core.NewRoundRobin()})
			if !cfg.Quick {
				ss, err := core.NewStrongSelect(n)
				if err != nil {
					return err
				}
				jobs = append(jobs, job{n, ss})
			}
		}
		results, err := engine.Map(len(jobs), cfg.Engine, func(i int) (*lowerbound.Theorem12Result, error) {
			return lowerbound.RunTheorem12Game(jobs[i].n, jobs[i].alg, 0)
		})
		if err != nil {
			return err
		}
		for i, res := range results {
			j := jobs[i]
			minExt := res.ForcedRounds
			for _, ext := range res.StageExtensions {
				if ext < minExt {
					minExt = ext
				}
			}
			norm := float64(res.ForcedRounds) / (float64(j.n) * math.Log2(float64(j.n)))
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%d\n",
				j.alg.Name(), j.n, res.ForcedRounds, res.TheoryBound, norm, minExt)
			if !res.HitHorizon && res.ForcedRounds < res.TheoryBound {
				return fmt.Errorf("theorem 12 bound violated for %s at n=%d", j.alg.Name(), j.n)
			}
		}
		return tw.Flush()
	}
	return e
}

package expt

import (
	"fmt"
	"reflect"

	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/interference"
	"dualgraph/internal/registry"
	"dualgraph/internal/sim"
	"dualgraph/internal/ssf"
	"dualgraph/internal/stats"
)

// algKind names the algorithm variants the figure jobs construct inside
// their trials (each trial builds its own instance from the network size).
type algKind int

const (
	algRoundRobin algKind = iota
	algStrongSelect
	algHarmonic
)

func buildAlg(kind algKind, n int) (sim.Algorithm, error) {
	switch kind {
	case algRoundRobin:
		return core.NewRoundRobin(), nil
	case algStrongSelect:
		return core.NewStrongSelect(n)
	case algHarmonic:
		return mustHarmonic(n)
	}
	return nil, fmt.Errorf("unknown algorithm kind %d", kind)
}

// figSeparation measures the Section 1 separation claim: the same algorithm
// on the same topology, classical (benign adversary and G = G') versus dual
// (worst-case unreliable edges), and the crossover between Strong Select and
// Harmonic.
func figSeparation() Experiment {
	e := Experiment{
		ID:       "fig-separation",
		Title:    "classical vs dual separation and algorithm crossover",
		PaperRef: "Section 1 (separation); Tables 1-2 side by side",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "n\talgorithm\tclassical rounds\tdual rounds\tdual/classical")
		// Topologies and algorithms are deterministic in (n, seed): build
		// them once per n and share the read-only values across jobs.
		type job struct {
			n               int
			dual, classical *graph.Dual
			alg             sim.Algorithm
		}
		type row struct {
			name             string
			cRounds, dRounds int
		}
		var jobs []job
		for _, n := range sweepSizes(cfg.Quick) {
			dual, err := registry.Topology("clique-bridge", n, cfg.Seed, nil)
			if err != nil {
				return err
			}
			classical, err := graph.ClassicalFrozen(dual.G(), dual.Source())
			if err != nil {
				return err
			}
			for _, kind := range []algKind{algRoundRobin, algStrongSelect, algHarmonic} {
				alg, err := buildAlg(kind, n)
				if err != nil {
					return err
				}
				jobs = append(jobs, job{n: n, dual: dual, classical: classical, alg: alg})
			}
		}
		rows, err := engine.Map(len(jobs), cfg.Engine, func(i int) (row, error) {
			j := jobs[i]
			budget := strongSelectBudget(j.n) * 4
			resC, err := sim.Run(j.classical, j.alg, benign(), sim.Config{
				Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: budget, Seed: cfg.Seed,
			})
			if err != nil {
				return row{}, err
			}
			resD, err := sim.Run(j.dual, j.alg, greedy(), sim.Config{
				Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: budget, Seed: cfg.Seed,
			})
			if err != nil {
				return row{}, err
			}
			return row{name: j.alg.Name(), cRounds: resC.Rounds, dRounds: resD.Rounds}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			ratio := float64(r.dRounds) / float64(maxI(r.cRounds, 1))
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.2f\n", jobs[i].n, r.name, r.cRounds, r.dRounds, ratio)
		}
		return tw.Flush()
	}
	return e
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// figBusyRounds validates Lemma 15: for any wake-up pattern the number of
// busy rounds (sum of transmission probabilities >= 1) is at most n·T·H(n).
func figBusyRounds() Experiment {
	e := Experiment{
		ID:       "fig-busy-rounds",
		Title:    "Lemma 15: busy rounds vs the n·T·H(n) bound",
		PaperRef: "Section 7, Lemmas 14-15",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		T := 4
		fmt.Fprintln(tw, "pattern\tn\tbusy rounds\tbound n·T·H(n)\tbusy/bound")
		ns := []int{16, 32, 64}
		if !cfg.Quick {
			ns = append(ns, 128, 256)
		}
		patterns := []struct {
			name string
			mk   func(n int) []int
		}{
			{"front-loaded", core.FrontLoadedPattern},
			{"simultaneous", core.SimultaneousPattern},
			{"random", func(n int) []int { return randomPattern(n, cfg.Seed) }},
		}
		type job struct {
			n       int
			pattern int
		}
		type row struct {
			busy  int
			bound float64
		}
		var jobs []job
		for _, n := range ns {
			for pi := range patterns {
				jobs = append(jobs, job{n, pi})
			}
		}
		rows, err := engine.Map(len(jobs), cfg.Engine, func(i int) (row, error) {
			j := jobs[i]
			p := patterns[j.pattern]
			bound := float64(j.n*T) * stats.HarmonicNumber(j.n)
			horizon := int(4*bound) + 100
			busy := core.BusyRounds(p.mk(j.n), T, horizon)
			if float64(busy) > bound {
				return row{}, fmt.Errorf("lemma 15 violated: pattern %s n=%d busy=%d bound=%.0f", p.name, j.n, busy, bound)
			}
			return row{busy: busy, bound: bound}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			j := jobs[i]
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.3f\n",
				patterns[j.pattern].name, j.n, r.busy, r.bound, float64(r.busy)/r.bound)
		}
		return tw.Flush()
	}
	return e
}

func randomPattern(n int, seed int64) []int {
	rng := newRng(seed)
	p := make([]int, n)
	for i := 1; i < n; i++ {
		p[i] = p[i-1] + rng.Intn(4)
	}
	return p
}

// figSSFSize measures the constructive Kautz-Singleton SSF sizes against the
// k² log² n bound and against the trivial round robin.
func figSSFSize() Experiment {
	e := Experiment{
		ID:       "fig-ssf-size",
		Title:    "strongly selective family sizes: Kautz-Singleton vs round robin",
		PaperRef: "Section 5, Definition 6, Theorem 7, constructive note [19]",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "n\tk\tchosen size\tround robin\tkautz-singleton\tverified")
		ns := []int{64, 256, 1024}
		if !cfg.Quick {
			ns = append(ns, 4096, 16384)
		}
		type job struct {
			n, k int
		}
		type row struct {
			chosen, rs int
			verified   string
		}
		var jobs []job
		for _, n := range ns {
			for _, k := range []int{2, 4, 8, 16} {
				if k <= n {
					jobs = append(jobs, job{n, k})
				}
			}
		}
		rows, err := engine.Map(len(jobs), cfg.Engine, func(i int) (row, error) {
			j := jobs[i]
			chosen, err := ssf.New(j.n, j.k)
			if err != nil {
				return row{}, err
			}
			rs, err := ssf.NewReedSolomon(j.n, j.k)
			if err != nil {
				return row{}, err
			}
			verified := "spot-check"
			if j.n <= 64 && j.k <= 3 {
				if err := ssf.Verify(chosen, j.k); err != nil {
					return row{}, fmt.Errorf("verification failed n=%d k=%d: %w", j.n, j.k, err)
				}
				verified = "exhaustive"
			} else if err := ssf.VerifyRandom(chosen, j.k, 100, newRng(cfg.Seed)); err != nil {
				return row{}, fmt.Errorf("spot verification failed n=%d k=%d: %w", j.n, j.k, err)
			}
			return row{chosen: chosen.Size(), rs: rs.Size(), verified: verified}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			j := jobs[i]
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\n", j.n, j.k, r.chosen, j.n, r.rs, r.verified)
		}
		return tw.Flush()
	}
	return e
}

// figLemma1 validates Lemma 1 executably: dual-graph algorithms run on
// explicit-interference networks via the reduction adversary produce
// transcripts identical to the native explicit-interference engine.
func figLemma1() Experiment {
	e := Experiment{
		ID:       "fig-lemma1",
		Title:    "Lemma 1 reduction: dual-graph algorithms on explicit-interference networks",
		PaperRef: "Lemma 1; Appendix A",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "n\talgorithm\trule\tnative rounds\treduced rounds\ttranscripts equal")
		type job struct {
			n    int
			m    *interference.Model
			alg  sim.Algorithm
			rule sim.CollisionRule
		}
		type row struct {
			name             string
			native, reduced  int
			transcriptsEqual bool
		}
		// The topology, its interference model, and the algorithms are
		// deterministic in (n, seed): build them once per n and share the
		// read-only values across the six (alg, rule) jobs.
		var jobs []job
		for _, n := range []int{16, 32} {
			d, err := registry.Topology("random", n, cfg.Seed, nil)
			if err != nil {
				return err
			}
			m := interference.FromDual(d)
			for _, kind := range []algKind{algRoundRobin, algStrongSelect, algHarmonic} {
				alg, err := buildAlg(kind, n)
				if err != nil {
					return err
				}
				for _, rule := range []sim.CollisionRule{sim.CR1, sim.CR4} {
					jobs = append(jobs, job{n: n, m: m, alg: alg, rule: rule})
				}
			}
		}
		rows, err := engine.Map(len(jobs), cfg.Engine, func(i int) (row, error) {
			j := jobs[i]
			c := sim.Config{
				Rule: j.rule, Start: sim.AsyncStart,
				MaxRounds: strongSelectBudget(j.n), Seed: cfg.Seed, RecordSenders: true,
			}
			native, err := interference.Run(j.m, j.alg, c)
			if err != nil {
				return row{}, err
			}
			reduced, err := sim.Run(j.m.Dual(), j.alg, interference.ReductionAdversary{}, c)
			if err != nil {
				return row{}, err
			}
			equal := reflect.DeepEqual(native.SendersByRound, reduced.SendersByRound) &&
				reflect.DeepEqual(native.FirstReceive, reduced.FirstReceive)
			if !equal {
				return row{}, fmt.Errorf("lemma 1 reduction mismatch: n=%d alg=%s rule=%v", j.n, j.alg.Name(), j.rule)
			}
			return row{name: j.alg.Name(), native: native.Rounds, reduced: reduced.Rounds, transcriptsEqual: equal}, nil
		})
		if err != nil {
			return err
		}
		for i, r := range rows {
			j := jobs[i]
			fmt.Fprintf(tw, "%d\t%s\t%v\t%d\t%d\t%v\n",
				j.n, r.name, j.rule, r.native, r.reduced, r.transcriptsEqual)
		}
		return tw.Flush()
	}
	return e
}

package expt

import (
	"fmt"
	"reflect"

	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/interference"
	"dualgraph/internal/sim"
	"dualgraph/internal/ssf"
	"dualgraph/internal/stats"
)

// figSeparation measures the Section 1 separation claim: the same algorithm
// on the same topology, classical (benign adversary and G = G') versus dual
// (worst-case unreliable edges), and the crossover between Strong Select and
// Harmonic.
func figSeparation() Experiment {
	e := Experiment{
		ID:       "fig-separation",
		Title:    "classical vs dual separation and algorithm crossover",
		PaperRef: "Section 1 (separation); Tables 1-2 side by side",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "n\talgorithm\tclassical rounds\tdual rounds\tdual/classical")
		for _, n := range sweepSizes(cfg.Quick) {
			dual, err := dualTopology("clique-bridge", n, cfg.Seed)
			if err != nil {
				return err
			}
			classical, err := graph.Classical(dual.G(), dual.Source())
			if err != nil {
				return err
			}
			ss, err := core.NewStrongSelect(n)
			if err != nil {
				return err
			}
			h, err := mustHarmonic(n)
			if err != nil {
				return err
			}
			for _, alg := range []sim.Algorithm{core.NewRoundRobin(), ss, h} {
				budget := strongSelectBudget(n) * 4
				resC, err := sim.Run(classical, alg, benign(), sim.Config{
					Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: budget, Seed: cfg.Seed,
				})
				if err != nil {
					return err
				}
				resD, err := sim.Run(dual, alg, greedy(), sim.Config{
					Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: budget, Seed: cfg.Seed,
				})
				if err != nil {
					return err
				}
				ratio := float64(resD.Rounds) / float64(maxI(resC.Rounds, 1))
				fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.2f\n", n, alg.Name(), resC.Rounds, resD.Rounds, ratio)
			}
		}
		return tw.Flush()
	}
	return e
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// figBusyRounds validates Lemma 15: for any wake-up pattern the number of
// busy rounds (sum of transmission probabilities >= 1) is at most n·T·H(n).
func figBusyRounds() Experiment {
	e := Experiment{
		ID:       "fig-busy-rounds",
		Title:    "Lemma 15: busy rounds vs the n·T·H(n) bound",
		PaperRef: "Section 7, Lemmas 14-15",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		T := 4
		fmt.Fprintln(tw, "pattern\tn\tbusy rounds\tbound n·T·H(n)\tbusy/bound")
		ns := []int{16, 32, 64}
		if !cfg.Quick {
			ns = append(ns, 128, 256)
		}
		for _, n := range ns {
			for _, p := range []struct {
				name    string
				pattern []int
			}{
				{"front-loaded", core.FrontLoadedPattern(n)},
				{"simultaneous", core.SimultaneousPattern(n)},
				{"random", randomPattern(n, cfg.Seed)},
			} {
				bound := float64(n*T) * stats.HarmonicNumber(n)
				horizon := int(4*bound) + 100
				busy := core.BusyRounds(p.pattern, T, horizon)
				if float64(busy) > bound {
					return fmt.Errorf("lemma 15 violated: pattern %s n=%d busy=%d bound=%.0f", p.name, n, busy, bound)
				}
				fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.3f\n", p.name, n, busy, bound, float64(busy)/bound)
			}
		}
		return tw.Flush()
	}
	return e
}

func randomPattern(n int, seed int64) []int {
	rng := newRng(seed)
	p := make([]int, n)
	for i := 1; i < n; i++ {
		p[i] = p[i-1] + rng.Intn(4)
	}
	return p
}

// figSSFSize measures the constructive Kautz-Singleton SSF sizes against the
// k² log² n bound and against the trivial round robin.
func figSSFSize() Experiment {
	e := Experiment{
		ID:       "fig-ssf-size",
		Title:    "strongly selective family sizes: Kautz-Singleton vs round robin",
		PaperRef: "Section 5, Definition 6, Theorem 7, constructive note [19]",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "n\tk\tchosen size\tround robin\tkautz-singleton\tverified")
		ns := []int{64, 256, 1024}
		if !cfg.Quick {
			ns = append(ns, 4096, 16384)
		}
		for _, n := range ns {
			for _, k := range []int{2, 4, 8, 16} {
				if k > n {
					continue
				}
				chosen, err := ssf.New(n, k)
				if err != nil {
					return err
				}
				rs, err := ssf.NewReedSolomon(n, k)
				if err != nil {
					return err
				}
				verified := "spot-check"
				if n <= 64 && k <= 3 {
					if err := ssf.Verify(chosen, k); err != nil {
						return fmt.Errorf("verification failed n=%d k=%d: %w", n, k, err)
					}
					verified = "exhaustive"
				} else if err := ssf.VerifyRandom(chosen, k, 100, newRng(cfg.Seed)); err != nil {
					return fmt.Errorf("spot verification failed n=%d k=%d: %w", n, k, err)
				}
				fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\n", n, k, chosen.Size(), n, rs.Size(), verified)
			}
		}
		return tw.Flush()
	}
	return e
}

// figLemma1 validates Lemma 1 executably: dual-graph algorithms run on
// explicit-interference networks via the reduction adversary produce
// transcripts identical to the native explicit-interference engine.
func figLemma1() Experiment {
	e := Experiment{
		ID:       "fig-lemma1",
		Title:    "Lemma 1 reduction: dual-graph algorithms on explicit-interference networks",
		PaperRef: "Lemma 1; Appendix A",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		fmt.Fprintln(tw, "n\talgorithm\trule\tnative rounds\treduced rounds\ttranscripts equal")
		for _, n := range []int{16, 32} {
			d, err := dualTopology("random", n, cfg.Seed)
			if err != nil {
				return err
			}
			m := interference.FromDual(d)
			ss, err := core.NewStrongSelect(n)
			if err != nil {
				return err
			}
			h, err := mustHarmonic(n)
			if err != nil {
				return err
			}
			for _, alg := range []sim.Algorithm{core.NewRoundRobin(), ss, h} {
				for _, rule := range []sim.CollisionRule{sim.CR1, sim.CR4} {
					c := sim.Config{
						Rule: rule, Start: sim.AsyncStart,
						MaxRounds: strongSelectBudget(n), Seed: cfg.Seed, RecordSenders: true,
					}
					native, err := interference.Run(m, alg, c)
					if err != nil {
						return err
					}
					reduced, err := sim.Run(m.Dual(), alg, interference.ReductionAdversary{}, c)
					if err != nil {
						return err
					}
					equal := reflect.DeepEqual(native.SendersByRound, reduced.SendersByRound) &&
						reflect.DeepEqual(native.FirstReceive, reduced.FirstReceive)
					if !equal {
						return fmt.Errorf("lemma 1 reduction mismatch: n=%d alg=%s rule=%v", n, alg.Name(), rule)
					}
					fmt.Fprintf(tw, "%d\t%s\t%v\t%d\t%d\t%v\n",
						n, alg.Name(), rule, native.Rounds, reduced.Rounds, equal)
				}
			}
		}
		return tw.Flush()
	}
	return e
}

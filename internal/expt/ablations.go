package expt

import (
	"fmt"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/registry"
	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

// ablCollisionRules compares the same algorithm and topology across the four
// collision rules CR1-CR4 (Section 2.1), demonstrating the rules' relative
// strength.
func ablCollisionRules() Experiment {
	e := Experiment{
		ID:       "abl-collision-rules",
		Title:    "ablation: collision rules CR1-CR4",
		PaperRef: "Section 2.1 collision rules",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		trials := 7
		if cfg.Quick {
			trials = 3
		}
		n := 33
		fmt.Fprintln(tw, "algorithm\trule\tmedian rounds\tcompleted")
		d, err := registry.Topology("complete-layered", n, cfg.Seed, nil)
		if err != nil {
			return err
		}
		h, err := mustHarmonic(d.N())
		if err != nil {
			return err
		}
		ss, err := core.NewStrongSelect(d.N())
		if err != nil {
			return err
		}
		for _, alg := range []sim.Algorithm{ss, h} {
			for _, rule := range []sim.CollisionRule{sim.CR1, sim.CR2, sim.CR3, sim.CR4} {
				med, _, done, err := medianRounds(cfg.Engine, d, alg, greedy(), sim.Config{
					Rule:      rule,
					Start:     sim.AsyncStart,
					MaxRounds: strongSelectBudget(d.N()) * 2,
					Seed:      cfg.Seed,
				}, trials)
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "%s\t%v\t%.0f\t%d/%d\n", alg.Name(), rule, med, done, trials)
			}
		}
		return tw.Flush()
	}
	return e
}

// ablHarmonicT sweeps the Harmonic Broadcast level length T around the
// paper's ceil(12 ln(n/ε)) choice, showing the completion-probability /
// round-count tradeoff.
func ablHarmonicT() Experiment {
	e := Experiment{
		ID:       "abl-harmonic-T",
		Title:    "ablation: Harmonic Broadcast level length T",
		PaperRef: "Section 7, Theorem 18 parameter choice",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		trials := 9
		if cfg.Quick {
			trials = 5
		}
		n := 33
		d, err := registry.Topology("clique-bridge", n, cfg.Seed, nil)
		if err != nil {
			return err
		}
		paperT := core.HarmonicT(n, 0.02)
		fmt.Fprintln(tw, "T\tT/paperT\tmedian rounds\tcompleted within bound")
		for _, mult := range []float64{0.25, 0.5, 1, 2} {
			T := int(float64(paperT) * mult)
			if T < 1 {
				T = 1
			}
			alg, err := core.NewHarmonic(T)
			if err != nil {
				return err
			}
			bound := int(2 * float64(n*paperT) * stats.HarmonicNumber(n))
			med, _, done, err := medianRounds(cfg.Engine, d, alg, greedy(), sim.Config{
				Rule:      sim.CR4,
				Start:     sim.AsyncStart,
				MaxRounds: bound,
				Seed:      cfg.Seed,
			}, trials)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%.2f\t%.0f\t%d/%d\n", T, mult, med, done, trials)
		}
		return tw.Flush()
	}
	return e
}

// ablAdversary compares adversary strength: from benign (classical static
// behaviour) through stochastic to adaptive worst-case.
func ablAdversary() Experiment {
	e := Experiment{
		ID:       "abl-adversary",
		Title:    "ablation: adversary strength (benign / random / greedy / full delivery)",
		PaperRef: "Section 2.1 adversary classes",
	}
	e.Run = func(cfg Config) error {
		header(cfg.Out, e)
		tw := newTable(cfg.Out)
		trials := 7
		if cfg.Quick {
			trials = 3
		}
		n := 33
		d, err := registry.Topology("clique-bridge", n, cfg.Seed, nil)
		if err != nil {
			return err
		}
		h, err := mustHarmonic(n)
		if err != nil {
			return err
		}
		ss, err := core.NewStrongSelect(n)
		if err != nil {
			return err
		}
		rnd3, err := adversary.NewRandom(0.3)
		if err != nil {
			return err
		}
		rnd8, err := adversary.NewRandom(0.8)
		if err != nil {
			return err
		}
		advs := []sim.Adversary{
			adversary.Benign{},
			rnd3,
			rnd8,
			adversary.GreedyCollider{},
			adversary.FullDelivery{},
		}
		fmt.Fprintln(tw, "algorithm\tadversary\tmedian rounds\tcompleted")
		for _, alg := range []sim.Algorithm{core.NewRoundRobin(), ss, h} {
			for _, adv := range advs {
				med, _, done, err := medianRounds(cfg.Engine, d, alg, adv, sim.Config{
					Rule:      sim.CR4,
					Start:     sim.AsyncStart,
					MaxRounds: strongSelectBudget(n) * 2,
					Seed:      cfg.Seed,
				}, trials)
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "%s\t%s\t%.0f\t%d/%d\n", alg.Name(), adv.Name(), med, done, trials)
			}
		}
		return tw.Flush()
	}
	return e
}

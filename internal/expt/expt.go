// Package expt is the experiment harness: it regenerates, as measured
// scaling experiments, every table of the paper plus per-theorem validation
// figures and ablations. Each experiment has a stable ID used by
// cmd/dgbench and by the benchmark suite; DESIGN.md carries the full
// experiment index.
//
// All experiments fan their Monte Carlo trials and sweep cells out over the
// parallel trial engine (internal/engine). Because every trial's seed is a
// pure function of the experiment seed and the trial index, an experiment's
// table is byte-identical at any worker count.
package expt

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
	"dualgraph/internal/spec"
	"dualgraph/internal/stats"
)

// Config parameterizes an experiment run.
type Config struct {
	// Out receives the experiment's table.
	Out io.Writer
	// Quick trims sweeps and trial counts for CI-speed runs.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Engine configures the parallel trial engine used to fan out the
	// experiment's simulations; the zero value uses one worker per CPU.
	// Worker count never changes an experiment's output.
	Engine engine.Config
}

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the stable identifier (e.g. "table1-dual-strongselect").
	ID string
	// Title is a one-line description.
	Title string
	// PaperRef points at the table/theorem the experiment reproduces.
	PaperRef string
	// Run executes the experiment and writes its table to cfg.Out.
	Run func(cfg Config) error
}

// All returns every registered experiment in a stable order.
func All() []Experiment {
	exps := []Experiment{
		table1ClassicalRR(),
		table1DualStrongSelect(),
		table1Theorem2(),
		table1Theorem12(),
		table2ClassicalDecay(),
		table2DualHarmonic(),
		table2Theorem4(),
		figSeparation(),
		figBusyRounds(),
		figSSFSize(),
		figLemma1(),
		ablCollisionRules(),
		ablHarmonicT(),
		ablAdversary(),
		extDeltaSelect(),
		extDynamic(),
		extPreferentialAttachment(),
		extRepeatedBroadcast(),
		extLinkCulling(),
		extBroadcastability(),
		extExhaustive(),
		extAdaptive(),
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// newTable returns a tabwriter for aligned experiment output.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// header prints the experiment banner.
func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "== %s — %s\n   paper: %s\n", e.ID, e.Title, e.PaperRef)
}

// roundsAcc is the per-shard accumulator of medianRounds: a streaming
// summary of per-trial completion rounds plus the completion tally.
type roundsAcc struct {
	rounds    *stats.Stream
	completed int
}

// medianRounds fans `trials` independent executions out over the engine's
// streaming reducer and returns the median and maximum completion round
// without retaining per-trial results. Executions that do not complete
// count as maxRounds. Trial i's seed is cfg.Seed + i*104729, a pure
// function of the trial index, and shard merges run in shard-index order,
// so the aggregate is identical at any worker count (and — at trial counts
// within the sketch's exact regime, which covers every registered
// experiment — byte-identical to the historical slice path).
func medianRounds(
	ec engine.Config,
	d *graph.Dual,
	alg sim.Algorithm,
	adv sim.Adversary,
	cfg sim.Config,
	trials int,
) (median, maxRound float64, completed int, err error) {
	acc, err := engine.Reduce(trials, ec,
		func(i int) (*sim.Result, error) {
			c := cfg
			c.Seed = cfg.Seed + int64(i)*104729
			return sim.Run(d, alg, adv, c)
		},
		func() *roundsAcc {
			s, _ := stats.NewStream([]float64{0.5}, 0)
			return &roundsAcc{rounds: s}
		},
		func(a *roundsAcc, _ int, res *sim.Result) error {
			r := float64(res.Rounds)
			if !res.Completed {
				r = float64(cfg.MaxRounds)
			} else {
				a.completed++
			}
			return a.rounds.Add(r)
		},
		func(dst, src *roundsAcc) error {
			dst.completed += src.completed
			return dst.rounds.Merge(src.rounds)
		})
	if err != nil {
		return 0, 0, 0, err
	}
	median, err = acc.rounds.Median()
	if err != nil {
		return 0, 0, 0, err
	}
	maxRound, err = acc.rounds.Max()
	if err != nil {
		return 0, 0, 0, err
	}
	return median, maxRound, acc.completed, nil
}

// sweepSizes returns the n sweep for scaling experiments.
func sweepSizes(quick bool) []int {
	if quick {
		return []int{17, 33, 65}
	}
	return []int{17, 33, 65, 129, 257}
}

// fitLine reports the fitted power-law exponent of rounds vs n, or NaN-free
// fallback text when the fit fails.
func fitLine(ns []int, rounds []float64) string {
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	alpha, c, err := stats.FitPowerLaw(xs, rounds)
	if err != nil {
		return "fit: n/a"
	}
	return fmt.Sprintf("fit: rounds ≈ %.2f·n^%.2f", c, alpha)
}

// scenario builds the declarative spec of one experiment cell. All name
// lookup goes through internal/registry (there is no expt-private topology
// table anymore), so experiment cells are the same first-class values
// cmd/dgsim -spec files describe.
func scenario(topo string, n int, alg, adv string, rule sim.CollisionRule, start sim.StartRule, seed int64) (spec.Scenario, error) {
	return spec.New(
		spec.WithTopology(topo, nil),
		spec.WithN(n),
		spec.WithAlgorithm(alg, nil),
		spec.WithAdversary(adv, nil),
		spec.WithCollisionRule(rule),
		spec.WithStart(start),
		spec.WithSeed(seed),
	)
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// greedy returns the standard worst-case-ish adversary used in the dual
// experiments.
func greedy() sim.Adversary { return adversary.GreedyCollider{} }

// benign returns the classical-model adversary.
func benign() sim.Adversary { return adversary.Benign{} }

// mustHarmonic builds the Harmonic algorithm with the paper's T or fails the
// experiment.
func mustHarmonic(n int) (sim.Algorithm, error) {
	return core.NewHarmonicForN(n, 0.02)
}

package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dualgraph/internal/engine"
	"dualgraph/internal/spec"
)

// claimOnce POSTs one shard claim and returns (claim, true) on 200 or
// (zero, false) on 204. Anything else fails the test.
func claimOnce(t *testing.T, ts *httptest.Server, id string) (Claim, bool) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs/"+id+"/shards/claim", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var c Claim
		if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
			t.Fatal(err)
		}
		return c, true
	case http.StatusNoContent:
		return Claim{}, false
	case http.StatusConflict:
		// The job reached a terminal state between this worker's last status
		// check and the claim — a legitimate shutdown race, not a failure.
		return Claim{}, false
	default:
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("claim: status %d: %v", resp.StatusCode, e)
		return Claim{}, false
	}
}

// reportShard POSTs one shard report and returns the HTTP status plus the
// decoded job status (valid only on 200).
func reportShard(t *testing.T, ts *httptest.Server, id string, rep Report) (int, JobStatus) {
	t.Helper()
	body, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+id+"/shards/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// foldClaim executes a claimed unit exactly as a dgsimd worker does: build
// the scenario, fold the trial range through the engine's per-shard inner
// loop, serialize the accumulator.
func foldClaim(t *testing.T, c Claim) []byte {
	t.Helper()
	b, err := c.Scenario.Build()
	if err != nil {
		t.Fatalf("build claim (%d, %d): %v", c.Cell, c.Shard, err)
	}
	sum, err := engine.FoldShardContext(t.Context(),
		engine.Trial{Net: b.Net, Sched: b.Sched, Alg: b.Alg, Adv: b.Adv, Cfg: b.Cfg},
		c.TrialLo, c.TrialHi,
		engine.StreamConfig{Quantiles: c.Quantiles, ExactK: c.ExactK})
	if err != nil {
		t.Fatalf("fold claim (%d, %d): %v", c.Cell, c.Shard, err)
	}
	blob, err := sum.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// workLoop claims, folds, and reports units until the job reaches a
// terminal state; 204 (everything leased elsewhere) backs off briefly.
func workLoop(t *testing.T, ts *httptest.Server, s *Server, id string, unitsDone *atomic.Int64) {
	for {
		st, err := s.Get(id)
		if err != nil {
			t.Error(err)
			return
		}
		if st.State.Terminal() {
			return
		}
		c, ok := claimOnce(t, ts, id)
		if !ok {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		code, _ := reportShard(t, ts, id, Report{Cell: c.Cell, Shard: c.Shard, Summary: foldClaim(t, c)})
		switch code {
		case http.StatusOK:
			unitsDone.Add(1)
		case http.StatusConflict:
			return // job ended while this worker was folding
		default:
			t.Errorf("report (%d, %d): status %d", c.Cell, c.Shard, code)
			return
		}
	}
}

// A coordinator job served by remote workers — including one that claims a
// unit and dies without reporting — must stream exactly the lines the same
// sweep produces on the local engine, in the same order.
func TestCoordinatorMatchesSingleProcess(t *testing.T) {
	cfg := Config{Stream: engine.StreamConfig{Quantiles: []float64{0.5, 0.99}, ExactK: 8}}
	s, ts := newTestServer(t, cfg)
	sw := smallSweep(24) // 4 cells × Shards(24)=24 shards = 96 units

	// Reference: the same sweep on the same server's local path.
	local := submit(t, ts, JobRequest{Name: "local", Sweep: sw})
	wantLines, wantDone := streamLines(t, ts, local.ID)
	if wantDone.State != Done {
		t.Fatalf("local reference job ended %s", wantDone.State)
	}

	st := submit(t, ts, JobRequest{Name: "remote", Sweep: sw, Mode: ModeCoordinator, LeaseSeconds: 1})
	if st.State != Running || st.Mode != ModeCoordinator {
		t.Fatalf("coordinator job submitted as %+v", st)
	}

	// A worker claims the very first unit and dies without reporting: its
	// lease must expire and the unit must be re-run by a surviving worker.
	if _, ok := claimOnce(t, ts, st.ID); !ok {
		t.Fatal("dying worker got no claim from a fresh job")
	}

	var unitsDone atomic.Int64
	done := make(chan struct{})
	for w := 0; w < 2; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			workLoop(t, ts, s, st.ID, &unitsDone)
		}()
	}
	<-done
	<-done

	lines, doneL := streamLines(t, ts, st.ID)
	if doneL.State != Done || doneL.CellsCompleted != len(wantLines) {
		t.Fatalf("coordinator done line %+v", doneL)
	}
	// Every unit reported at least once (96 = 4 cells × 24 shards, including
	// the orphaned one). Under heavy instrumentation a fold can outlive its
	// 1s lease and be re-run, so duplicates may push the count above 96 —
	// idempotency makes that harmless.
	if n := unitsDone.Load(); n < 96 {
		t.Fatalf("workers reported %d units, want >= 96", n)
	}
	if len(lines) != len(wantLines) {
		t.Fatalf("got %d lines, want %d", len(lines), len(wantLines))
	}
	for i := range lines {
		if lines[i] != wantLines[i] {
			t.Fatalf("cell %d differs from local run:\nremote: %+v\n local: %+v", i, lines[i], wantLines[i])
		}
	}
	if fin := getStatus(t, ts, st.ID); fin.State != Done || fin.Mode != ModeCoordinator {
		t.Fatalf("final status %+v", fin)
	}
}

// The claim/report endpoints enforce the ledger contract: coordinator-only,
// running-only, well-formed summaries, idempotent duplicates.
func TestCoordinatorEndpointContract(t *testing.T) {
	s, ts := newTestServer(t, Config{Stream: engine.StreamConfig{ExactK: 8}})

	// Local jobs own no ledger: claim and report are 409.
	local := submit(t, ts, JobRequest{Sweep: smallSweep(4)})
	resp, err := http.Post(ts.URL+"/v1/jobs/"+local.ID+"/shards/claim", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("claim on local job: status %d, want 409", resp.StatusCode)
	}
	if code, _ := reportShard(t, ts, local.ID, Report{}); code != http.StatusConflict {
		t.Fatalf("report on local job: status %d, want 409", code)
	}

	// Unknown jobs are 404.
	resp, err = http.Post(ts.URL+"/v1/jobs/nope/shards/claim", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("claim on unknown job: status %d, want 404", resp.StatusCode)
	}

	sw := smallSweep(2) // 4 cells × 2 shards = 8 units
	st := submit(t, ts, JobRequest{Sweep: sw, Mode: ModeCoordinator})

	c, ok := claimOnce(t, ts, st.ID)
	if !ok {
		t.Fatal("fresh coordinator job refused a claim")
	}
	if c.Cell != 0 || c.Shard != 0 || c.SpecHash == "" || c.LeaseSeconds != 60 {
		t.Fatalf("first claim %+v: want unit (0, 0), a spec hash, and the 60s default lease", c)
	}
	if c.ExactK != 8 {
		t.Fatalf("claim carries ExactK %d, want the server's stream config (8)", c.ExactK)
	}
	blob := foldClaim(t, c)

	// Malformed and range-violating reports never touch the ledger.
	if code, _ := reportShard(t, ts, st.ID, Report{Cell: 0, Shard: 0, Summary: []byte("junk")}); code != http.StatusBadRequest {
		t.Fatalf("garbage summary: status %d, want 400", code)
	}
	if code, _ := reportShard(t, ts, st.ID, Report{Cell: 99, Shard: 0, Summary: blob}); code != http.StatusBadRequest {
		t.Fatalf("out-of-range cell: status %d, want 400", code)
	}
	// A summary sized for the wrong trial range is caught: fold two trials
	// for a unit that spans one.
	built, err := c.Scenario.Build()
	if err != nil {
		t.Fatal(err)
	}
	oversized, err := engine.FoldShardContext(t.Context(),
		engine.Trial{Net: built.Net, Sched: built.Sched, Alg: built.Alg, Adv: built.Adv, Cfg: built.Cfg},
		0, 2, engine.StreamConfig{ExactK: c.ExactK})
	if err != nil {
		t.Fatal(err)
	}
	wrongBlob, err := oversized.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := reportShard(t, ts, st.ID, Report{Cell: 1, Shard: 1, Summary: wrongBlob}); code != http.StatusBadRequest {
		t.Fatalf("wrong-sized summary: status %d, want 400", code)
	}

	// A valid report lands once; the duplicate is an acknowledged no-op.
	code, before := reportShard(t, ts, st.ID, Report{Cell: 0, Shard: 0, Summary: blob})
	if code != http.StatusOK {
		t.Fatalf("report: status %d", code)
	}
	code, after := reportShard(t, ts, st.ID, Report{Cell: 0, Shard: 0, Summary: blob})
	if code != http.StatusOK || after.CellsCompleted != before.CellsCompleted {
		t.Fatalf("duplicate report: status %d, cells %d → %d", code, before.CellsCompleted, after.CellsCompleted)
	}

	// Drive the job to completion; a terminal job refuses claims with 409.
	var n atomic.Int64
	workLoop(t, ts, s, st.ID, &n)
	if fin := waitState(t, s, st.ID, func(st State) bool { return st == Done }); fin.CellsCompleted != 4 {
		t.Fatalf("final status %+v", fin)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs/"+st.ID+"/shards/claim", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("claim on done job: status %d, want 409", resp.StatusCode)
	}

	// Cancelling a coordinator job closes the ledger the same way.
	st2 := submit(t, ts, JobRequest{Sweep: sw, Mode: ModeCoordinator})
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := waitState(t, s, st2.ID, State.Terminal); got.State != Cancelled {
		t.Fatalf("cancelled coordinator job is %s", got.State)
	}
	if code, _ := reportShard(t, ts, st2.ID, Report{Cell: 0, Shard: 0, Summary: blob}); code != http.StatusConflict {
		t.Fatalf("report on cancelled job: status %d, want 409", code)
	}
}

// An expired lease returns its unit to the pool in index order, so a dead
// worker's unit is the next thing a live worker picks up.
func TestLeaseExpiryReturnsUnit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sw := smallSweep(1) // 4 cells × 1 shard = 4 units
	st := submit(t, ts, JobRequest{Sweep: sw, Mode: ModeCoordinator, LeaseSeconds: 1})

	first, ok := claimOnce(t, ts, st.ID)
	if !ok || first.Cell != 0 {
		t.Fatalf("first claim %+v", first)
	}
	// While the lease is live, the same unit is not claimable again.
	second, ok := claimOnce(t, ts, st.ID)
	if !ok || second.Cell == first.Cell {
		t.Fatalf("second claim %+v: want the next unit, not a double-lease of the first", second)
	}
	time.Sleep(1100 * time.Millisecond)
	// Both leases have expired unreported: the scan restarts at unit 0.
	again, ok := claimOnce(t, ts, st.ID)
	if !ok || again.Cell != first.Cell || again.Shard != first.Shard {
		t.Fatalf("post-expiry claim %+v: want the orphaned unit (%d, %d)", again, first.Cell, first.Shard)
	}
}

// Submit validates coordinator envelopes like any other: unknown modes and
// negative leases fail before a job id is spent.
func TestCoordinatorSubmitValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, err := s.Submit(JobRequest{Sweep: smallSweep(2), Mode: "sharded"}); err == nil ||
		!strings.Contains(err.Error(), "unknown job mode") {
		t.Fatalf("unknown mode: %v", err)
	}
	if _, err := s.Submit(JobRequest{Sweep: smallSweep(2), LeaseSeconds: -1}); err == nil ||
		!strings.Contains(err.Error(), "lease_seconds") {
		t.Fatalf("negative lease: %v", err)
	}
	// A claim's scenario must be self-contained: it round-trips through JSON
	// with the cell's swept values baked in.
	st, err := s.Submit(JobRequest{Sweep: smallSweep(2), Mode: ModeCoordinator})
	if err != nil {
		t.Fatal(err)
	}
	c, ok, err := s.ClaimShard(st.ID)
	if err != nil || !ok {
		t.Fatalf("claim: %v ok=%v", err, ok)
	}
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Claim
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario.Seed != c.Scenario.Seed || back.TrialHi != c.TrialHi {
		t.Fatalf("claim did not survive JSON: %+v vs %+v", back, c)
	}
	var unused spec.Scenario = back.Scenario
	_ = unused
}

// HTTP front end: the versioned v1 job API.
//
//	POST   /v1/jobs              submit a JobRequest envelope  → 201 JobStatus
//	GET    /v1/jobs              list jobs                     → 200 [JobStatus]
//	GET    /v1/jobs/{id}         job status                    → 200 JobStatus
//	DELETE /v1/jobs/{id}         cancel (idempotent)           → 200 JobStatus
//	GET    /v1/jobs/{id}/results stream per-cell results       → 200 ndjson/SSE
//	GET    /v1/healthz           liveness + drain state        → 200/503
//	GET    /metrics              Prometheus text exposition    → 200
//
// Results stream as JSON lines (application/x-ndjson), one CellLine per
// finished cell in cell order, terminated by a {"done":true,...} line with
// the job's final state; with `Accept: text/event-stream` the same payloads
// go out as SSE `cell` and `done` events. `?from=K` resumes mid-stream.
// Errors are {"error":"..."} JSON; typed spec/service errors map to 400
// (invalid spec or version), 404 (unknown job), 429 (queue full), and 503
// (draining).
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dualgraph/internal/metrics"
	"dualgraph/internal/registry"
	"dualgraph/internal/spec"
)

// maxRequestBody bounds POST bodies (a sweep envelope is small; 4 MiB is
// generous even for very wide hand-written grids).
const maxRequestBody = 4 << 20

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("POST /v1/jobs/{id}/shards/claim", s.handleClaim)
	mux.HandleFunc("POST /v1/jobs/{id}/shards/report", s.handleReport)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.Handle("GET /metrics", metrics.Handler())
	return mux
}

// writeJSON writes one JSON document with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError maps typed errors to status codes and renders them as
// {"error":"..."} JSON.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var (
		version *spec.ErrUnsupportedVersion
		dup     *spec.ErrDuplicateLabel
		unknown *registry.ErrUnknownName
	)
	switch {
	case errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotCoordinator), errors.Is(err, ErrJobNotRunning):
		status = http.StatusConflict
	case errors.As(err, &version), errors.As(err, &dup), errors.As(err, &unknown):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("decode job request: %w", err))
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// doneLine terminates a results stream: the job's final state once every
// cell line has been delivered.
type doneLine struct {
	Done           bool   `json:"done"`
	State          State  `json:"state"`
	Cells          int    `json:"cells"`
	CellsCompleted int    `json:"cells_completed"`
	Error          string `json:"error,omitempty"`
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if f := r.URL.Query().Get("from"); f != "" {
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			writeError(w, fmt.Errorf("bad from value %q: want a non-negative integer", f))
			return
		}
		from = v
	}
	// Existence check before committing to a streaming response, so unknown
	// jobs get a clean 404.
	if _, err := s.Get(id); err != nil {
		writeError(w, err)
		return
	}

	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	emit := func(event string, v any) error {
		if sse {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: ", event); err != nil {
				return err
			}
			if err := enc.Encode(v); err != nil { // Encode appends the \n
				return err
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return err
			}
		} else if err := enc.Encode(v); err != nil {
			return err
		}
		flush()
		return nil
	}

	st, err := s.StreamResults(r.Context(), id, from, func(line CellLine) error {
		return emit("cell", line)
	})
	if err != nil {
		// Mid-stream failure (client gone, request context ended): the
		// response is already committed, nothing useful can be written.
		return
	}
	_ = emit("done", doneLine{
		Done:           true,
		State:          st.State,
		Cells:          st.Cells,
		CellsCompleted: st.CellsCompleted,
		Error:          st.Error,
	})
}

// handleClaim leases the next claimable (cell, shard) unit of a coordinator
// job to the calling worker: 200 with a Claim body, or 204 when nothing is
// claimable right now (poll the job status to distinguish "all leased" from
// "job finished"). Non-coordinator jobs get 409.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	claim, ok, err := s.ClaimShard(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, claim)
}

// handleReport accepts a worker's completed unit: 200 with the job's status
// snapshot (also for idempotent duplicates), 400 for undecodable or
// range-violating summaries, 409 once the job is no longer running.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var rep Report
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		writeError(w, fmt.Errorf("decode shard report: %w", err))
		return
	}
	st, err := s.ReportShard(r.PathValue("id"), rep)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// healthBody is the /v1/healthz response: liveness plus a small operational
// snapshot. The 200/503 split (ok/draining) is the machine-readable signal;
// the body is for humans and dashboards.
type healthBody struct {
	Status        string  `json:"status"`
	Queued        int     `json:"queued"`
	Running       int     `json:"running"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := healthBody{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	for _, j := range s.jobs {
		switch j.state {
		case Queued:
			body.Queued++
		case Running:
			body.Running++
		}
	}
	draining := s.draining
	s.mu.Unlock()
	if draining {
		body.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

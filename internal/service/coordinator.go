// Coordinator mode: a job whose (cell, shard) work units are executed by
// remote dgsimd workers instead of the local engine. The coordinator holds
// the authoritative unit ledger; workers repeatedly claim the lowest
// claimable unit over the v1 job API, fold its trials through
// engine.FoldShardContext — the exact per-shard inner loop of the local
// engine — and report the serialized accumulator back. The coordinator
// merges each cell's accumulators in shard-index order, so the job's result
// lines are byte-identical to the same sweep under `dgsim -spec` or a local
// service job, regardless of how many workers ran, in what order they
// finished, or how many of them died.
//
// Worker death costs progress, never correctness: every claim carries a
// lease deadline, and a unit whose lease expired without a report simply
// becomes claimable again (lazy expiry — no timers). Reports are idempotent;
// a slow worker reporting a unit that was re-run elsewhere gets a friendly
// "already done" instead of corrupting the ledger.
package service

import (
	"errors"
	"fmt"
	"time"

	"dualgraph/internal/engine"
	"dualgraph/internal/spec"
)

// ModeCoordinator marks a JobRequest whose work units are executed by remote
// workers rather than the local engine.
const ModeCoordinator = "coordinator"

// defaultLease is the claim lease duration when the request does not set
// one. Long enough for any realistic shard, short enough that a dead
// worker's units return to the pool quickly.
const defaultLease = 60 * time.Second

// Typed coordinator errors; the HTTP layer maps them to status codes.
var (
	// ErrNotCoordinator reports a shard claim/report against a job that runs
	// on the local engine.
	ErrNotCoordinator = errors.New("service: job does not use remote workers")
	// ErrJobNotRunning reports a shard claim/report against a job that has
	// already reached a terminal state.
	ErrJobNotRunning = errors.New("service: job is not running")
)

// unitState is the ledger state of one (cell, shard) work unit.
type unitState uint8

const (
	unitPending unitState = iota // claimable
	unitLeased                   // claimed, lease not yet expired
	unitDone                     // reported
)

// coordination is the remote-execution ledger of one coordinator job; every
// field is guarded by Server.mu.
type coordination struct {
	specHash string
	shards   int
	lease    time.Duration

	units     []unitState
	deadlines []time.Time            // per unit, meaningful while leased
	accs      []*engine.TrialSummary // per unit, set when done
	remaining []int                  // per cell, undone shard count
	pending   int                    // undone unit count
	sums      []*engine.TrialSummary // per cell, merged when complete
	nextCell  int                    // reorder frontier for CellLine delivery
}

// Claim is the coordinator's answer to a successful shard claim: everything
// a worker needs to reproduce the unit bit-exactly — the fully specified
// cell scenario, the trial range, the stream statistics configuration, and
// the sweep identity it must echo back implicitly by folding exactly these
// trials.
type Claim struct {
	// Cell and Shard name the claimed unit.
	Cell  int `json:"cell"`
	Shard int `json:"shard"`
	// TrialLo and TrialHi delimit the unit's half-open trial range.
	TrialLo int `json:"trial_lo"`
	TrialHi int `json:"trial_hi"`
	// Scenario is the cell's fully specified scenario.
	Scenario spec.Scenario `json:"scenario"`
	// Label is the cell's grid label (for worker logs).
	Label string `json:"label"`
	// Quantiles and ExactK are the stream configuration the accumulator must
	// be built with.
	Quantiles []float64 `json:"quantiles,omitempty"`
	ExactK    int       `json:"exact_k,omitempty"`
	// SpecHash identifies the sweep (workers may log or cross-check it).
	SpecHash string `json:"spec_hash"`
	// LeaseSeconds is how long the claim is held before the unit returns to
	// the pool.
	LeaseSeconds int `json:"lease_seconds"`
}

// Report is a worker's completed unit: the claimed identity plus the
// serialized accumulator (engine.TrialSummary encoding, base64 in JSON).
type Report struct {
	Cell    int    `json:"cell"`
	Shard   int    `json:"shard"`
	Summary []byte `json:"summary"`
}

// newCoordination builds the ledger for a coordinator job.
func newCoordination(sw spec.Sweep, cells int, trials int, sc engine.StreamConfig, leaseSeconds int) (*coordination, error) {
	hash, err := sw.Hash()
	if err != nil {
		return nil, err
	}
	lease := defaultLease
	if leaseSeconds > 0 {
		lease = time.Duration(leaseSeconds) * time.Second
	}
	shards := engine.Shards(trials)
	units := cells * shards
	co := &coordination{
		specHash:  hash,
		shards:    shards,
		lease:     lease,
		units:     make([]unitState, units),
		deadlines: make([]time.Time, units),
		accs:      make([]*engine.TrialSummary, units),
		remaining: make([]int, cells),
		pending:   units,
		sums:      make([]*engine.TrialSummary, cells),
	}
	for c := range co.remaining {
		co.remaining[c] = shards
	}
	return co, nil
}

// ClaimShard leases the lowest claimable unit of a coordinator job to a
// worker. A unit is claimable when pending, or when leased past its
// deadline — lazy lease expiry, which is how a dead worker's unit returns to
// the pool. ok is false when nothing is claimable right now (every remaining
// unit is actively leased, or the job is complete); workers poll the job
// status to tell the two apart.
func (s *Server) ClaimShard(id string) (Claim, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Claim{}, false, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	if j.coord == nil {
		return Claim{}, false, fmt.Errorf("%w (%q)", ErrNotCoordinator, id)
	}
	if j.state != Running {
		return Claim{}, false, fmt.Errorf("%w (%q is %s)", ErrJobNotRunning, id, j.state)
	}
	co := j.coord
	now := time.Now()
	for u := range co.units {
		switch co.units[u] {
		case unitDone:
			continue
		case unitLeased:
			if now.Before(co.deadlines[u]) {
				continue
			}
			// Lease expired without a report: the worker died (or stalled);
			// the unit returns to the pool here, on the next claim scan.
			mLeaseExpirations.Inc()
		}
		co.units[u] = unitLeased
		co.deadlines[u] = now.Add(co.lease)
		mShardClaims.Inc()
		c, sh := u/co.shards, u%co.shards
		lo, hi := engine.ShardRange(j.trials, sh)
		return Claim{
			Cell: c, Shard: sh, TrialLo: lo, TrialHi: hi,
			Scenario:     j.cells[c].Scenario,
			Label:        j.cells[c].Label,
			Quantiles:    s.cfg.Stream.Quantiles,
			ExactK:       s.cfg.Stream.ExactK,
			SpecHash:     co.specHash,
			LeaseSeconds: int(co.lease / time.Second),
		}, true, nil
	}
	return Claim{}, false, nil
}

// ReportShard records a worker's completed unit. The summary must decode and
// cover exactly the unit's trial range; violations are rejected without
// touching the ledger. Reporting an already-done unit is an acknowledged
// no-op (the idempotency a re-leased unit needs). When the report completes
// a cell, its accumulators merge in shard-index order and the cell's line is
// delivered in enumeration order — exactly the local path's semantics — and
// when it completes the whole grid, the job ends Done.
func (s *Server) ReportShard(id string, rep Report) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	if j.coord == nil {
		return JobStatus{}, fmt.Errorf("%w (%q)", ErrNotCoordinator, id)
	}
	if j.state != Running {
		return JobStatus{}, fmt.Errorf("%w (%q is %s)", ErrJobNotRunning, id, j.state)
	}
	co := j.coord
	if rep.Cell < 0 || rep.Cell >= len(j.cells) || rep.Shard < 0 || rep.Shard >= co.shards {
		return JobStatus{}, fmt.Errorf("report names unit (%d, %d) outside %d cells × %d shards",
			rep.Cell, rep.Shard, len(j.cells), co.shards)
	}
	var sum engine.TrialSummary
	if err := sum.UnmarshalBinary(rep.Summary); err != nil {
		return JobStatus{}, fmt.Errorf("report for (%d, %d): %w", rep.Cell, rep.Shard, err)
	}
	lo, hi := engine.ShardRange(j.trials, rep.Shard)
	if sum.Trials != int64(hi-lo) {
		return JobStatus{}, fmt.Errorf("report for (%d, %d) covers %d trials, unit range [%d, %d) has %d",
			rep.Cell, rep.Shard, sum.Trials, lo, hi, hi-lo)
	}
	u := rep.Cell*co.shards + rep.Shard
	if co.units[u] == unitDone {
		mDuplicateReports.Inc()
		return j.status(), nil // duplicate from a re-leased unit's first owner
	}
	co.units[u] = unitDone
	co.accs[u] = &sum
	co.pending--
	co.remaining[rep.Cell]--
	mShardReports.Inc()
	if co.remaining[rep.Cell] == 0 {
		dst := co.accs[rep.Cell*co.shards]
		for t := 1; t < co.shards; t++ {
			if err := dst.Merge(co.accs[rep.Cell*co.shards+t]); err != nil {
				j.state = Failed
				j.err = fmt.Sprintf("cell %d merge: %v", rep.Cell, err)
				mJobsRunning.Add(-1)
				jobCompleted(Failed)
				s.cond.Broadcast()
				return j.status(), nil
			}
		}
		co.sums[rep.Cell] = dst
		// Reorder frontier: deliver every consecutive completed cell, in
		// enumeration order, exactly like the local path's onCell buffer.
		for co.nextCell < len(j.cells) && co.sums[co.nextCell] != nil {
			c := co.nextCell
			j.results = append(j.results, CellLine{
				Cell: c, Label: j.cells[c].Label,
				Summary: spec.FormatSummary(co.sums[c]),
			})
			co.nextCell++
			mCellsStreamed.Inc()
		}
	}
	if co.pending == 0 {
		j.state = Done
		mJobsRunning.Add(-1)
		jobCompleted(Done)
	}
	s.cond.Broadcast()
	return j.status(), nil
}

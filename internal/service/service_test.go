package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dualgraph/internal/engine"
	"dualgraph/internal/spec"
)

// smallSweep is a quick 4-cell grid used by most tests.
func smallSweep(trials int) spec.Sweep {
	sw := spec.Sweep{Base: spec.Default(), Seeds: []int64{1, 2, 3, 4}, Trials: trials}
	sw.Base.N = 13
	return sw
}

// slowSweep is a grid big enough to still be running when a test cancels
// or drains it — minutes of work if left alone. Cancel latency is one
// claimed shard (trials/256 runs), so the -short race lane shrinks the
// trial count to keep the drained shard cheap under instrumentation.
func slowSweep() spec.Sweep {
	trials := 400000
	if testing.Short() {
		trials = 50000
	}
	sw := spec.Sweep{Base: spec.Default(), Seeds: []int64{1, 2, 3, 4}, Trials: trials}
	sw.Base.N = 17
	return sw
}

// newTestServer builds a Server plus its httptest front end and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// submit POSTs a job envelope and decodes the created status.
func submit(t *testing.T, ts *httptest.Server, req JobRequest) JobStatus {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %v", resp.StatusCode, e)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// streamLines reads a job's ndjson result stream to the end, returning the
// cell lines and the terminating done line.
func streamLines(t *testing.T, ts *httptest.Server, id string) ([]CellLine, doneLine) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	var (
		lines []CellLine
		done  doneLine
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", raw, err)
		}
		if probe.Done {
			if err := json.Unmarshal(raw, &done); err != nil {
				t.Fatal(err)
			}
			return lines, done
		}
		var line CellLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	t.Fatalf("stream ended without a done line (read %d lines, scanner err %v)", len(lines), sc.Err())
	return nil, doneLine{}
}

// getStatus fetches one job status over HTTP.
func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Server, id string, want func(State) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if want(st.State) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Get(id)
	t.Fatalf("job %s stuck in state %s", id, st.State)
	return JobStatus{}
}

// A submitted sweep must run end to end with every per-cell line streamed
// in cell order and byte-identical to the same sweep's local
// Sweep.Run + FormatSummary rendering — i.e. to `dgsim -spec` output —
// whatever worker count the service pool uses.
func TestJobResultsDeterministicAcrossWorkerCounts(t *testing.T) {
	sw := smallSweep(64)

	// Local reference: the exact lines dgsim -spec prints for each cell.
	grid, err := sw.Run(engine.Config{Workers: 1}, engine.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(grid.Cells))
	for i, cr := range grid.Cells {
		want[i] = fmt.Sprintf("%s: %s", cr.Cell.Label, spec.FormatSummary(cr.Summary))
	}

	for _, workers := range []int{1, 2, 8} {
		_, ts := newTestServer(t, Config{Engine: engine.Config{Workers: workers}})
		st := submit(t, ts, JobRequest{Name: "determinism", Sweep: sw})
		if st.Cells != len(grid.Cells) || st.Trials != 64 {
			t.Fatalf("workers=%d: submitted status %+v", workers, st)
		}
		lines, done := streamLines(t, ts, st.ID)
		if done.State != Done || !done.Done || done.CellsCompleted != len(want) {
			t.Fatalf("workers=%d: done line %+v", workers, done)
		}
		if len(lines) != len(want) {
			t.Fatalf("workers=%d: got %d lines, want %d", workers, len(lines), len(want))
		}
		for i, line := range lines {
			if line.Cell != i {
				t.Fatalf("workers=%d: line %d is cell %d (out of order)", workers, i, line.Cell)
			}
			if got := line.Label + ": " + line.Summary; got != want[i] {
				t.Fatalf("workers=%d: cell %d over HTTP differs from local run:\n http: %s\nlocal: %s", workers, i, got, want[i])
			}
		}
	}
}

// A second reader attaching after completion (and one resuming with ?from=)
// must see the same lines.
func TestResultsReplayAndResume(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, JobRequest{Sweep: smallSweep(16)})
	first, done := streamLines(t, ts, st.ID)
	if done.State != Done {
		t.Fatalf("done line %+v", done)
	}
	second, _ := streamLines(t, ts, st.ID)
	if len(second) != len(first) {
		t.Fatalf("replay: %d lines vs %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay line %d differs", i)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results?from=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("resumed stream is empty")
	}
	var line CellLine
	if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if line.Cell != 2 {
		t.Fatalf("?from=2 started at cell %d", line.Cell)
	}
}

// SSE negotiation: Accept: text/event-stream must switch the stream to
// cell/done events carrying the same JSON payloads.
func TestResultsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, JobRequest{Sweep: smallSweep(8)})

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+st.ID+"/results", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var cells, dones int
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		l := sc.Text()
		switch {
		case strings.HasPrefix(l, "event: "):
			event = strings.TrimPrefix(l, "event: ")
		case strings.HasPrefix(l, "data: "):
			data := strings.TrimPrefix(l, "data: ")
			switch event {
			case "cell":
				var line CellLine
				if err := json.Unmarshal([]byte(data), &line); err != nil {
					t.Fatalf("bad cell event %q: %v", data, err)
				}
				cells++
			case "done":
				var d doneLine
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					t.Fatalf("bad done event %q: %v", data, err)
				}
				if d.State != Done {
					t.Fatalf("done event state %s", d.State)
				}
				dones++
			}
		}
	}
	if cells != 4 || dones != 1 {
		t.Fatalf("saw %d cell events and %d done events", cells, dones)
	}
}

// DELETE on a running job must cancel it promptly (within one shard
// boundary) and terminate its result streams with a cancelled done line.
func TestCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Engine: engine.Config{Workers: 2}})
	st := submit(t, ts, JobRequest{Name: "victim", Sweep: slowSweep()})
	waitState(t, s, st.ID, func(st State) bool { return st == Running })

	// Attach a live stream before cancelling, to prove it terminates.
	type streamEnd struct {
		done doneLine
	}
	endC := make(chan streamEnd, 1)
	go func() {
		_, done := streamLines(t, ts, st.ID)
		endC <- streamEnd{done}
	}()

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	start := time.Now()
	fin := waitState(t, s, st.ID, func(st State) bool { return st.Terminal() })
	if fin.State != Cancelled {
		t.Fatalf("cancelled job ended %s", fin.State)
	}
	// Shard-boundary promptness: one shard is trials/256 ≈ 2k tiny runs;
	// seconds, not the minutes the full grid would need.
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	select {
	case end := <-endC:
		if end.done.State != Cancelled {
			t.Fatalf("stream done line state %s", end.done.State)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("result stream did not terminate after cancel")
	}

	// DELETE is idempotent on a terminal job.
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second cancel status %d", resp2.StatusCode)
	}
}

// Cancelling a queued job must flip it to cancelled without it ever
// running, while the job ahead of it is unaffected.
func TestCancelQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Engine: engine.Config{Workers: 2}})
	first := submit(t, ts, JobRequest{Name: "running", Sweep: slowSweep()})
	second := submit(t, ts, JobRequest{Name: "queued", Sweep: smallSweep(8)})

	waitState(t, s, first.ID, func(st State) bool { return st == Running })
	if st := getStatus(t, ts, second.ID); st.State != Queued {
		t.Fatalf("second job state %s before cancel", st.State)
	}
	if _, err := s.Cancel(second.ID); err != nil {
		t.Fatal(err)
	}
	if st := getStatus(t, ts, second.ID); st.State != Cancelled {
		t.Fatalf("second job state %s after cancel", st.State)
	}
	if _, err := s.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, func(st State) bool { return st.Terminal() })
}

// The typed error paths over HTTP: bad versions 400, unknown jobs 404.
func TestHTTPErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	errOf := func(resp *http.Response) string {
		defer resp.Body.Close()
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return e["error"]
	}

	// Unknown envelope version.
	resp := post(`{"version":2,"sweep":{"base":{"n":13}}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("envelope v2: status %d", resp.StatusCode)
	}
	if msg := errOf(resp); !strings.Contains(msg, "unsupported job version 2") {
		t.Fatalf("envelope v2 error: %q", msg)
	}

	// Unknown sweep version (rejected by the spec layer on decode).
	resp = post(`{"sweep":{"version":3,"base":{"n":13}}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep v3: status %d", resp.StatusCode)
	}
	if msg := errOf(resp); !strings.Contains(msg, "unsupported sweep version 3") {
		t.Fatalf("sweep v3 error: %q", msg)
	}

	// Duplicate labels are caught at submission.
	resp = post(`{"sweep":{"base":{"n":13},"seeds":[1,1]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dup labels: status %d", resp.StatusCode)
	}
	if msg := errOf(resp); !strings.Contains(msg, "same label") {
		t.Fatalf("dup labels error: %q", msg)
	}

	// Unknown registry names carry the spec layer's message.
	resp = post(`{"sweep":{"base":{"n":13,"topology":{"name":"cliqe-bridge"}}}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name: status %d", resp.StatusCode)
	}

	// Unknown job id.
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/results"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d", path, r.StatusCode)
		}
	}
}

// Race lane: concurrent submits, cancels, lists, status reads, and result
// streams against one server must be data-race free and leave every job in
// a coherent state.
func TestConcurrentSubmitCancelList(t *testing.T) {
	s, ts := newTestServer(t, Config{Engine: engine.Config{Workers: 2}, QueueLimit: 256})

	const submitters = 8
	var wg sync.WaitGroup
	ids := make(chan string, submitters*4)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				st, err := s.Submit(JobRequest{Name: fmt.Sprintf("r%d-%d", g, k), Sweep: smallSweep(4)})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- st.ID
			}
		}(g)
	}
	var aux sync.WaitGroup
	stopAux := make(chan struct{})
	for g := 0; g < 4; g++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stopAux:
					return
				default:
				}
				for _, st := range s.List() {
					if _, err := s.Get(st.ID); err != nil {
						t.Errorf("get %s: %v", st.ID, err)
					}
				}
			}
		}()
	}
	cancelled := make(map[string]bool)
	var cmu sync.Mutex
	for g := 0; g < 2; g++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for id := range ids {
				if _, err := s.Cancel(id); err != nil {
					t.Errorf("cancel %s: %v", id, err)
				}
				cmu.Lock()
				cancelled[id] = true
				cmu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(ids)
	time.Sleep(10 * time.Millisecond)
	close(stopAux)
	aux.Wait()

	// Every job must settle into a terminal state.
	for _, st := range s.List() {
		waitState(t, s, st.ID, func(st State) bool { return st.Terminal() })
	}
	_ = cancelled
	_ = ts
}

// Drain: admission stops, queued jobs cancel, the running job stops at a
// shard boundary keeping its streamed cells, the executor exits, and no
// goroutines are left behind.
func TestDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Engine: engine.Config{Workers: 2}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running := submit(t, ts, JobRequest{Name: "running", Sweep: slowSweep()})
	queued := submit(t, ts, JobRequest{Name: "queued", Sweep: smallSweep(8)})
	waitState(t, s, running.ID, func(st State) bool { return st == Running })

	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if st, _ := s.Get(queued.ID); st.State != Cancelled {
		t.Fatalf("queued job after drain: %s", st.State)
	}
	st, _ := s.Get(running.ID)
	if !st.State.Terminal() {
		t.Fatalf("running job after drain: %s", st.State)
	}

	// Admission is closed.
	if _, err := s.Submit(JobRequest{Sweep: smallSweep(1)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}

	// Drain is idempotent.
	if err := s.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}

	// Completed result streams still replay after drain.
	lines, done := streamLines(t, ts, running.ID)
	if done.State != Cancelled && done.State != Done {
		t.Fatalf("drained job done line: %+v", done)
	}
	if len(lines) != done.CellsCompleted {
		t.Fatalf("replayed %d lines, status says %d", len(lines), done.CellsCompleted)
	}

	// No goroutine leak: everything the server started has exited.
	ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
}

// Package service is the long-running sweep service behind cmd/dgsimd: a
// job manager that accepts declarative spec.Sweep jobs over a versioned
// envelope, executes them one at a time on one shared deterministic grid
// pool (engine.RunGridStreamContext via spec.Sweep.Stream), supports
// per-job cancellation at (cell, shard) granularity, and streams per-cell
// summary lines — rendered by the same spec.FormatSummary the CLI uses, so
// a job's streamed results are byte-identical to `dgsim -spec` output for
// the same sweep — to any number of concurrent readers as cells complete.
//
// Lifecycle: Submit validates and enqueues (queued) → the single executor
// goroutine picks the job up (running) → the job ends done, failed, or
// cancelled. Cancel flips a queued job straight to cancelled and interrupts
// a running job's context; already-completed cells of a cancelled job
// remain final. Drain stops admission, cancels everything outstanding, and
// waits for the executor to exit, so a drained server holds no goroutines.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dualgraph/internal/engine"
	"dualgraph/internal/spec"
)

// Config parameterizes a Server. The zero value is ready to use.
type Config struct {
	// Engine configures the shared trial pool (zero = one worker per CPU).
	Engine engine.Config
	// Stream configures the per-cell summary accumulators.
	Stream engine.StreamConfig
	// QueueLimit bounds queued-but-not-started jobs; <= 0 means 64.
	QueueLimit int
}

func (c Config) queueLimit() int {
	if c.QueueLimit > 0 {
		return c.QueueLimit
	}
	return 64
}

// State is a job lifecycle state.
type State string

// Job lifecycle states. Queued and Running are live; the other three are
// terminal.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// JobRequest is the versioned wire envelope around a sweep: what POST
// /v1/jobs accepts. An absent version reads as version 1; unknown versions
// are rejected with *spec.ErrUnsupportedVersion.
type JobRequest struct {
	// Version is the envelope's wire-format version (see spec.WireVersion).
	Version int `json:"version,omitempty"`
	// Name is an optional human label echoed in statuses.
	Name string `json:"name,omitempty"`
	// Sweep is the declarative job body (its own version field is checked
	// by the spec layer on unmarshal).
	Sweep spec.Sweep `json:"sweep"`
	// Mode selects where the work runs: empty for the local engine,
	// ModeCoordinator to hand (cell, shard) units to remote workers over the
	// shard claim/report API. Coordinator jobs start Running immediately —
	// they occupy no slot in the local executor queue.
	Mode string `json:"mode,omitempty"`
	// LeaseSeconds is the shard-claim lease duration of a coordinator job
	// (0 = 60s): a claimed unit that is not reported within the lease
	// becomes claimable again, which is how a dead worker's work returns to
	// the pool.
	LeaseSeconds int `json:"lease_seconds,omitempty"`
}

// JobStatus is the externally visible snapshot of one job.
type JobStatus struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// Name echoes the request's optional label.
	Name string `json:"name,omitempty"`
	// State is the lifecycle state at snapshot time.
	State State `json:"state"`
	// Cells is the expanded grid size.
	Cells int `json:"cells"`
	// CellsCompleted counts cells whose summaries have been streamed.
	CellsCompleted int `json:"cells_completed"`
	// Trials is the per-cell Monte Carlo depth.
	Trials int `json:"trials"`
	// Mode echoes the request's execution mode (empty = local engine).
	Mode string `json:"mode,omitempty"`
	// Created is the submission time.
	Created time.Time `json:"created"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
}

// CellLine is one streamed result: a finished cell's label and its
// canonical summary line. Line c of a job is deterministic — byte-identical
// to the same sweep's cell c under `dgsim -spec` at any worker count.
type CellLine struct {
	// Cell is the cell's enumeration index.
	Cell int `json:"cell"`
	// Label identifies the cell by its swept axes.
	Label string `json:"label"`
	// Summary is the canonical aggregate line (spec.FormatSummary).
	Summary string `json:"summary"`
}

// Typed service errors; the HTTP layer maps them to status codes.
var (
	// ErrDraining rejects submissions after drain began.
	ErrDraining = errors.New("service: draining, not accepting new jobs")
	// ErrQueueFull rejects submissions when the admission queue is full.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrUnknownJob reports a lookup of a job id the server never issued.
	ErrUnknownJob = errors.New("service: unknown job")
)

// job is the internal record; all mutable fields are guarded by Server.mu.
type job struct {
	id      string
	name    string
	sweep   spec.Sweep
	cells   []spec.Cell
	trials  int
	created time.Time

	state   State
	err     string
	results []CellLine
	cancel  context.CancelFunc // non-nil exactly while running on the local engine
	coord   *coordination      // non-nil exactly for coordinator jobs
}

func (j *job) status() JobStatus {
	mode := ""
	if j.coord != nil {
		mode = ModeCoordinator
	}
	return JobStatus{
		ID:             j.id,
		Name:           j.name,
		State:          j.state,
		Cells:          len(j.cells),
		CellsCompleted: len(j.results),
		Trials:         j.trials,
		Mode:           mode,
		Created:        j.created,
		Error:          j.err,
	}
}

// Server is the sweep job manager. Create with New, serve with Handler,
// stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg   Config
	start time.Time // process-visible uptime anchor for /v1/healthz

	mu   sync.Mutex
	cond *sync.Cond // broadcast on every job state or result change
	jobs map[string]*job
	ids  []string // submission order, for stable listings
	next int
	// draining: admission closed; queue closed once, by Drain.
	draining bool

	queue    chan *job
	baseCtx  context.Context // parent of every job context
	baseStop context.CancelFunc
	execDone chan struct{} // closed when the executor goroutine exits
}

// New builds a Server and starts its executor goroutine.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		jobs:     make(map[string]*job),
		queue:    make(chan *job, cfg.queueLimit()),
		execDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	go s.execute()
	return s
}

// Submit validates the request, expands its grid (so malformed sweeps —
// unknown names, bad versions, duplicate cell labels — fail here, before a
// job id exists), and enqueues the job. Jobs execute in submission order.
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	if req.Version != 0 && req.Version != spec.WireVersion {
		return JobStatus{}, &spec.ErrUnsupportedVersion{Kind: "job", Got: req.Version}
	}
	if req.Mode != "" && req.Mode != ModeCoordinator {
		return JobStatus{}, fmt.Errorf("unknown job mode %q (want empty or %q)", req.Mode, ModeCoordinator)
	}
	if req.LeaseSeconds < 0 {
		return JobStatus{}, fmt.Errorf("lease_seconds must be >= 0, got %d", req.LeaseSeconds)
	}
	cells, err := req.Sweep.Cells()
	if err != nil {
		return JobStatus{}, err
	}
	trials := req.Sweep.Trials
	if trials <= 0 {
		trials = 1
	}
	var coord *coordination
	if req.Mode == ModeCoordinator {
		coord, err = newCoordination(req.Sweep, len(cells), trials, s.cfg.Stream, req.LeaseSeconds)
		if err != nil {
			return JobStatus{}, err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	s.next++
	j := &job{
		id:      fmt.Sprintf("job-%06d", s.next),
		name:    req.Name,
		sweep:   req.Sweep,
		cells:   cells,
		trials:  trials,
		created: time.Now().UTC(),
		state:   Queued,
		coord:   coord,
	}
	if coord != nil {
		// Coordinator jobs never enter the executor queue: the work happens
		// on remote workers, so the job is claimable — Running — at once and
		// local jobs keep executing beside it.
		j.state = Running
	} else {
		select {
		case s.queue <- j:
		default:
			s.next-- // id not spent
			return JobStatus{}, ErrQueueFull
		}
	}
	s.jobs[j.id] = j
	s.ids = append(s.ids, j.id)
	mJobsSubmitted.Inc()
	if coord != nil {
		mJobsRunning.Add(1)
	} else {
		mJobsQueued.Add(1)
	}
	s.cond.Broadcast()
	return j.status(), nil
}

// Get returns the status snapshot of one job.
func (s *Server) Get(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// List returns every job's status in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.ids))
	for _, id := range s.ids {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel stops a job: a queued job flips straight to cancelled (the
// executor will skip it), a running job has its context cancelled — the
// pool stops within one shard boundary and the job ends cancelled, keeping
// every already-streamed cell. Cancelling a terminal job is a no-op that
// returns its (unchanged) status.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	switch j.state {
	case Queued:
		j.state = Cancelled
		mJobsQueued.Add(-1)
		jobCompleted(Cancelled)
		s.cond.Broadcast()
	case Running:
		if j.coord != nil {
			// No local execution to interrupt: the ledger simply stops
			// accepting claims and reports.
			j.state = Cancelled
			mJobsRunning.Add(-1)
			jobCompleted(Cancelled)
			s.cond.Broadcast()
		} else {
			j.cancel() // executor publishes the terminal state
		}
	}
	return j.status(), nil
}

// StreamResults delivers a job's result lines to emit in cell order,
// starting at index from: lines already present are emitted immediately,
// later ones as their cells complete, until the job reaches a terminal
// state and every line has been delivered. It returns the job's final
// status. It unblocks with ctx's error when the caller's context ends
// first, and stops (returning the emit error) if emit fails — the
// disconnected-client path. Any number of streams may run concurrently.
func (s *Server) StreamResults(ctx context.Context, id string, from int, emit func(CellLine) error) (JobStatus, error) {
	if from < 0 {
		from = 0
	}
	// cond.Wait cannot watch a context, so a context-end wakes all waiters;
	// the loop re-checks ctx after every wake.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok {
			s.mu.Unlock()
			return JobStatus{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
		}
		for len(j.results) <= from && !j.state.Terminal() && ctx.Err() == nil {
			s.cond.Wait()
		}
		lines := append([]CellLine(nil), j.results[min(from, len(j.results)):]...)
		st := j.status()
		s.mu.Unlock()

		for _, line := range lines {
			if err := emit(line); err != nil {
				return st, err
			}
		}
		from += len(lines)
		if st.State.Terminal() && from >= st.CellsCompleted {
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// execute is the single executor goroutine: jobs run strictly one at a
// time, so every job gets the whole shared pool and per-cell results are
// reproducible independent of what else is queued.
func (s *Server) execute() {
	defer close(s.execDone)
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	s.mu.Lock()
	if j.state != Queued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	j.state = Running
	j.cancel = cancel
	mJobsQueued.Add(-1)
	mJobsRunning.Add(1)
	s.cond.Broadcast()
	s.mu.Unlock()

	_, err := j.sweep.Stream(ctx, s.cfg.Engine, s.cfg.Stream, func(cr spec.CellResult) {
		line := CellLine{Cell: cr.Cell.Index, Label: cr.Cell.Label, Summary: spec.FormatSummary(cr.Summary)}
		s.mu.Lock()
		j.results = append(j.results, line)
		mCellsStreamed.Inc()
		s.cond.Broadcast()
		s.mu.Unlock()
	})

	s.mu.Lock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = Done
	case errors.Is(err, context.Canceled):
		j.state = Cancelled
	default:
		j.state = Failed
		j.err = err.Error()
	}
	mJobsRunning.Add(-1)
	jobCompleted(j.state)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Drain shuts the server down gracefully: admission stops (Submit returns
// ErrDraining), queued jobs flip to cancelled, the running job's context is
// cancelled — its claimed shards finish and its completed cells stay
// streamed — and Drain waits for the executor goroutine to exit, or for ctx
// to end first (returning ctx's error with the executor still winding
// down). Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // executor exits after the jobs already queued
		for _, id := range s.ids {
			j := s.jobs[id]
			if j.state == Queued || (j.state == Running && j.coord != nil) {
				if j.state == Queued {
					mJobsQueued.Add(-1)
				} else {
					mJobsRunning.Add(-1)
				}
				j.state = Cancelled
				jobCompleted(Cancelled)
			}
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	// Cancel the running job (if any) through the shared parent, after
	// queued jobs were flipped so none of them starts.
	s.baseStop()

	select {
	case <-s.execDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close is Drain with no deadline: it returns once the executor has
// exited.
func (s *Server) Close() {
	_ = s.Drain(context.Background())
}

// Service instrumentation. Job lifecycle gauges are transition-updated under
// Server.mu — every state mutation site adjusts them — rather than computed
// at scrape time, so the /metrics handler never takes the job lock and the
// gauges stay exact across queued/running/terminal flips. Because gauges
// must stay balanced (an increment recorded while metrics were enabled must
// get its decrement even if they are disabled in between), service metrics
// deliberately ignore the metrics.Enabled gate; that gate exists for the
// engine/sim hot paths, and nothing here is hot — the costliest site is one
// atomic per job state change or per shard report.
//
// Note the gauges are process-global (metrics.Default): a process running
// several Servers (as tests do) sees their sums, which is the right reading
// for a scrape endpoint. Per-server counts are on /v1/healthz.
package service

import "dualgraph/internal/metrics"

var (
	mJobsSubmitted = metrics.NewCounter("service_jobs_submitted_total",
		"Jobs accepted by Submit (after validation and queue admission).")
	mJobsCompleted = metrics.NewCounterVec("service_jobs_completed_total",
		"Jobs reaching a terminal state, by final state.", "state")
	mJobsQueued = metrics.NewGauge("service_jobs_queued",
		"Jobs currently queued (admitted, not yet started).")
	mJobsRunning = metrics.NewGauge("service_jobs_running",
		"Jobs currently running (local executor or coordinator ledger).")

	mShardClaims = metrics.NewCounter("service_shard_claims_total",
		"Shard leases granted to workers by coordinator jobs.")
	mLeaseExpirations = metrics.NewCounter("service_lease_expirations_total",
		"Expired shard leases returned to the pool on a later claim scan.")
	mShardReports = metrics.NewCounter("service_shard_reports_total",
		"Worker shard reports accepted into coordinator ledgers.")
	mDuplicateReports = metrics.NewCounter("service_duplicate_reports_total",
		"Idempotent duplicate shard reports (unit already done when reported).")
	mCellsStreamed = metrics.NewCounter("service_cells_streamed_total",
		"Cell result lines streamed to job result buffers (local and coordinator jobs).")
)

// Pre-resolved terminal-state children, one atomic add per job completion.
var (
	mCompletedDone      = mJobsCompleted.With(string(Done))
	mCompletedFailed    = mJobsCompleted.With(string(Failed))
	mCompletedCancelled = mJobsCompleted.With(string(Cancelled))
)

// jobCompleted records a terminal transition. Callers adjust the live gauge
// (queued or running) at the transition site, where the prior state is known.
func jobCompleted(final State) {
	switch final {
	case Done:
		mCompletedDone.Inc()
	case Failed:
		mCompletedFailed.Inc()
	case Cancelled:
		mCompletedCancelled.Inc()
	}
}

package service

// Metric and health-endpoint tests. The repo's tests never run in parallel,
// so exact before/after deltas on the process-global instruments are safe
// within this package.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dualgraph/internal/metrics"
)

// scrape GETs /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("/metrics content type %q, want %q", ct, metrics.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpointWhileJobsRun scrapes /metrics concurrently from many
// goroutines while a job executes, then checks the settled exposition
// carries the expected series. The race lane runs this package, so the
// concurrent scrapes double as a data-race probe on the registry.
func TestMetricsEndpointWhileJobsRun(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	baseDone := jobsCompletedValue(Done)
	baseStreamed := mCellsStreamed.Value()

	st := submit(t, ts, JobRequest{Sweep: smallSweep(512)})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					body := scrape(t, ts)
					if !strings.Contains(body, "# TYPE engine_trials_total counter") {
						t.Error("scrape missing engine_trials_total TYPE line")
						return
					}
				}
			}
		}()
	}
	waitState(t, s, st.ID, State.Terminal)
	close(stop)
	wg.Wait()

	body := scrape(t, ts)
	for _, series := range []string{
		"engine_trials_total ",
		"engine_shards_completed_total ",
		"engine_shard_duration_seconds_bucket{le=\"+Inf\"}",
		"service_jobs_submitted_total ",
		"service_jobs_queued ",
		"service_jobs_running ",
		"service_jobs_completed_total{state=\"done\"}",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	if d := jobsCompletedValue(Done) - baseDone; d != 1 {
		t.Errorf("done-job completions delta = %d, want 1", d)
	}
	if d := mCellsStreamed.Value() - baseStreamed; d != 4 {
		t.Errorf("cells streamed delta = %d, want 4", d)
	}
}

func jobsCompletedValue(st State) int64 {
	return mJobsCompleted.With(string(st)).Value()
}

// Job lifecycle gauges must balance: after every submitted job reaches a
// terminal state, queued and running return to their baselines, and the
// terminal counters account for every job.
func TestJobGaugesBalance(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	baseQueued := mJobsQueued.Value()
	baseRunning := mJobsRunning.Value()
	baseDone := jobsCompletedValue(Done)
	baseCancelled := jobsCompletedValue(Cancelled)

	done := submit(t, ts, JobRequest{Sweep: smallSweep(64)})
	waitState(t, s, done.ID, State.Terminal)

	// A cancelled-while-queued job: submit a slow job to occupy the executor,
	// queue a second, cancel the second, then cancel the first.
	slow := submit(t, ts, JobRequest{Sweep: slowSweep()})
	queued := submit(t, ts, JobRequest{Sweep: smallSweep(64)})
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, slow.ID, State.Terminal)
	waitState(t, s, queued.ID, State.Terminal)

	if got := mJobsQueued.Value(); got != baseQueued {
		t.Errorf("queued gauge = %d, want baseline %d", got, baseQueued)
	}
	if got := mJobsRunning.Value(); got != baseRunning {
		t.Errorf("running gauge = %d, want baseline %d", got, baseRunning)
	}
	if d := jobsCompletedValue(Done) - baseDone; d != 1 {
		t.Errorf("done delta = %d, want 1", d)
	}
	// slow and queued both end cancelled; slow may occasionally finish done
	// on a very fast machine is impossible here (400k/50k trials), so assert
	// exactly 2.
	if d := jobsCompletedValue(Cancelled) - baseCancelled; d != 2 {
		t.Errorf("cancelled delta = %d, want 2", d)
	}
}

// Coordinator ledger counters: claims, reports, idempotent duplicates, and
// the running gauge settling when the last report completes the job.
func TestCoordinatorMetricCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	baseClaims := mShardClaims.Value()
	baseReports := mShardReports.Value()
	baseDups := mDuplicateReports.Value()
	baseRunning := mJobsRunning.Value()

	sw := smallSweep(4) // 4 cells × 4 shards = 16 units
	st := submit(t, ts, JobRequest{Sweep: sw, Mode: ModeCoordinator})

	var first Claim
	var blob []byte
	units := 0
	for {
		c, ok := claimOnce(t, ts, st.ID)
		if !ok {
			break
		}
		units++
		b := foldClaim(t, c)
		if units == 1 {
			first, blob = c, b
		}
		if code, _ := reportShard(t, ts, st.ID, Report{Cell: c.Cell, Shard: c.Shard, Summary: b}); code != http.StatusOK {
			t.Fatalf("report: status %d", code)
		}
	}
	if units != 16 {
		t.Fatalf("claimed %d units, want 16", units)
	}
	waitState(t, s, st.ID, State.Terminal)

	// A duplicate report of an already-done unit is acknowledged but counted
	// separately — after the job is done it 409s, so replay against a second
	// running job instead: easiest is asserting the duplicate path on the
	// same job before completion is covered elsewhere; here just verify the
	// counters and that replaying after terminal state does not count.
	if code, _ := reportShard(t, ts, st.ID, Report{Cell: first.Cell, Shard: first.Shard, Summary: blob}); code != http.StatusConflict {
		t.Fatalf("post-terminal report: status %d, want 409", code)
	}

	if d := mShardClaims.Value() - baseClaims; d != 16 {
		t.Errorf("claims delta = %d, want 16", d)
	}
	if d := mShardReports.Value() - baseReports; d != 16 {
		t.Errorf("reports delta = %d, want 16", d)
	}
	if d := mDuplicateReports.Value() - baseDups; d != 0 {
		t.Errorf("duplicate delta = %d, want 0", d)
	}
	if got := mJobsRunning.Value(); got != baseRunning {
		t.Errorf("running gauge = %d, want baseline %d", got, baseRunning)
	}
}

// The duplicate-report counter increments when a still-running job receives
// a report for a unit that is already done.
func TestDuplicateReportCounter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	baseDups := mDuplicateReports.Value()

	st := submit(t, ts, JobRequest{Sweep: smallSweep(4), Mode: ModeCoordinator})
	c, ok := claimOnce(t, ts, st.ID)
	if !ok {
		t.Fatal("no unit claimable")
	}
	blob := foldClaim(t, c)
	rep := Report{Cell: c.Cell, Shard: c.Shard, Summary: blob}
	if code, _ := reportShard(t, ts, st.ID, rep); code != http.StatusOK {
		t.Fatalf("report: status %d", code)
	}
	// Same unit again while 15 units keep the job running: idempotent, counted.
	if code, _ := reportShard(t, ts, st.ID, rep); code != http.StatusOK {
		t.Fatalf("duplicate report: status %d", code)
	}
	if d := mDuplicateReports.Value() - baseDups; d != 1 {
		t.Errorf("duplicate delta = %d, want 1", d)
	}
}

// /v1/healthz carries a JSON body (status, queued/running counts, uptime)
// on both the 200 and the 503 side.
func TestHealthzBody(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	slow := submit(t, ts, JobRequest{Sweep: slowSweep()})
	queued := submit(t, ts, JobRequest{Sweep: smallSweep(64)})
	waitState(t, s, slow.ID, func(st State) bool { return st == Running })

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body healthBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	if body.Status != "ok" || body.Running != 1 || body.Queued != 1 {
		t.Fatalf("healthz body = %+v, want ok with 1 running, 1 queued", body)
	}
	if body.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v, want > 0", body.UptimeSeconds)
	}

	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, slow.ID, State.Terminal)
}

// Package ssf implements (n,k)-strongly selective families (SSFs), the
// combinatorial selection objects used by the Strong Select broadcast
// algorithm (Section 5 of the paper).
//
// A family F of subsets of [n] is (n,k)-strongly selective if for every
// non-empty Z ⊆ [n] with |Z| <= k and every z in Z there is a set F_i with
// Z ∩ F_i = {z}.
//
// The paper uses existential families of size O(k² log n) (Erdős, Frankl,
// Füredi). This package provides the constructive Kautz–Singleton variant of
// size O(k² log² n) built from Reed–Solomon superimposed codes — which the
// paper notes costs only an extra sqrt(log n) factor in Strong Select — plus
// the trivial round-robin (n,n)-SSF and randomized constructions with
// verification for experimentation.
package ssf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Family is a strongly selective family with constant-time membership tests.
// Sets are indexed 0..Size()-1 and identifiers are 1..N() as in the paper.
type Family interface {
	// N returns the universe size n.
	N() int
	// K returns the selectivity parameter k the family was built for.
	K() int
	// Size returns the number of sets in the family.
	Size() int
	// Contains reports whether id (1-based) is in the set with index set.
	Contains(set int, id int) bool
}

// Members returns the sorted members of the given set of a family; intended
// for tests and diagnostics, not the simulation hot path.
func Members(f Family, set int) []int {
	var out []int
	for id := 1; id <= f.N(); id++ {
		if f.Contains(set, id) {
			out = append(out, id)
		}
	}
	return out
}

// RoundRobin is the trivial (n,n)-SSF: n singleton sets {1}, {2}, ..., {n}.
type RoundRobin struct {
	n int
}

var _ Family = (*RoundRobin)(nil)

// NewRoundRobin returns the (n,n)-SSF of n singletons.
func NewRoundRobin(n int) (*RoundRobin, error) {
	if n < 1 {
		return nil, fmt.Errorf("round robin needs n >= 1, got %d", n)
	}
	return &RoundRobin{n: n}, nil
}

// N implements Family.
func (r *RoundRobin) N() int { return r.n }

// K implements Family; round robin isolates any subset, so k = n.
func (r *RoundRobin) K() int { return r.n }

// Size implements Family.
func (r *RoundRobin) Size() int { return r.n }

// Contains implements Family.
func (r *RoundRobin) Contains(set, id int) bool { return id-1 == set }

// ReedSolomon is the Kautz–Singleton (n,k)-SSF built from a Reed–Solomon
// code over GF(q): identifier x is encoded as the degree-(m-1) polynomial
// p_x whose coefficients are the base-q digits of x-1, and the family has a
// set F_{i,σ} = { x : p_x(i) = σ } for every evaluation point i and symbol σ.
// Because two distinct polynomials of degree <= m-1 agree on at most m-1
// points and q >= (k-1)(m-1)+1, any z in a subset Z of size <= k has an
// evaluation point where it differs from all others, so F_{i,p_z(i)} isolates
// it. The family has q² sets, which is O(k² log² n).
type ReedSolomon struct {
	n, k, q, m int
}

var _ Family = (*ReedSolomon)(nil)

// NewReedSolomon builds the Kautz–Singleton (n,k)-SSF. It selects the code
// length m and prime field size q minimizing the family size q² subject to
// q^m >= n and q >= (k-1)(m-1)+1.
func NewReedSolomon(n, k int) (*ReedSolomon, error) {
	if n < 2 {
		return nil, fmt.Errorf("reed-solomon SSF needs n >= 2, got %d", n)
	}
	if k < 2 || k > n {
		return nil, fmt.Errorf("reed-solomon SSF needs 2 <= k <= n, got k=%d n=%d", k, n)
	}
	bestQ, bestM := 0, 0
	maxM := 1 + int(math.Ceil(math.Log2(float64(n))))
	for m := 2; m <= maxM; m++ {
		q := nextPrime(maxInt(kthRoot(n, m), (k-1)*(m-1)+1))
		if bestQ == 0 || q < bestQ {
			bestQ, bestM = q, m
		}
	}
	return &ReedSolomon{n: n, k: k, q: bestQ, m: bestM}, nil
}

// N implements Family.
func (f *ReedSolomon) N() int { return f.n }

// K implements Family.
func (f *ReedSolomon) K() int { return f.k }

// Size implements Family.
func (f *ReedSolomon) Size() int { return f.q * f.q }

// FieldSize returns the prime q of the underlying field (diagnostics).
func (f *ReedSolomon) FieldSize() int { return f.q }

// CodeLength returns the polynomial coefficient count m (diagnostics).
func (f *ReedSolomon) CodeLength() int { return f.m }

// Contains implements Family. Set index s encodes the pair
// (evaluation point i, symbol σ) as s = i*q + σ.
func (f *ReedSolomon) Contains(set, id int) bool {
	if id < 1 || id > f.n || set < 0 || set >= f.Size() {
		return false
	}
	point := set / f.q
	symbol := set % f.q
	return f.eval(id-1, point) == symbol
}

// eval evaluates the polynomial of codeword x at the given point via
// Horner's rule on the base-q digits of x.
func (f *ReedSolomon) eval(x, point int) int {
	digits := make([]int, f.m)
	for i := 0; i < f.m; i++ {
		digits[i] = x % f.q
		x /= f.q
	}
	acc := 0
	for i := f.m - 1; i >= 0; i-- {
		acc = (acc*point + digits[i]) % f.q
	}
	return acc
}

// Explicit is a family given by explicit membership bitsets. It backs the
// randomized construction and hand-built families in tests.
type Explicit struct {
	n, k int
	sets []bitset
}

var _ Family = (*Explicit)(nil)

// NewExplicit builds an explicit family from 1-based member lists. The
// claimed selectivity k is recorded but not verified; use Verify.
func NewExplicit(n, k int, sets [][]int) (*Explicit, error) {
	if n < 1 {
		return nil, fmt.Errorf("explicit family needs n >= 1, got %d", n)
	}
	e := &Explicit{n: n, k: k, sets: make([]bitset, len(sets))}
	for i, members := range sets {
		e.sets[i] = newBitset(n)
		for _, id := range members {
			if id < 1 || id > n {
				return nil, fmt.Errorf("set %d: member %d out of [1,%d]", i, id, n)
			}
			e.sets[i].set(id - 1)
		}
	}
	return e, nil
}

// N implements Family.
func (e *Explicit) N() int { return e.n }

// K implements Family.
func (e *Explicit) K() int { return e.k }

// Size implements Family.
func (e *Explicit) Size() int { return len(e.sets) }

// Contains implements Family.
func (e *Explicit) Contains(set, id int) bool {
	if set < 0 || set >= len(e.sets) || id < 1 || id > e.n {
		return false
	}
	return e.sets[set].get(id - 1)
}

// ErrConstructionFailed is returned when the randomized construction cannot
// produce a verified family within its retry budget.
var ErrConstructionFailed = errors.New("randomized SSF construction failed verification")

// NewRandomized samples an explicit family in the style of the existential
// argument: size ~ c·k²·ln n sets, each including every identifier
// independently with probability 1/k, retried until exhaustive verification
// succeeds. Exhaustive verification is exponential in k, so this is only
// suitable for small n and k (tests, ablations).
func NewRandomized(n, k, retries int, rng *rand.Rand) (*Explicit, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	size := int(math.Ceil(3 * float64(k*k) * math.Log(float64(n)+1)))
	if size < n {
		sizeCap := n // never worse than round robin
		if size > sizeCap {
			size = sizeCap
		}
	}
	for attempt := 0; attempt < retries; attempt++ {
		e := &Explicit{n: n, k: k, sets: make([]bitset, size)}
		for i := range e.sets {
			e.sets[i] = newBitset(n)
			for id := 0; id < n; id++ {
				if rng.Float64() < 1/float64(k) {
					e.sets[i].set(id)
				}
			}
		}
		if err := Verify(e, k); err == nil {
			return e, nil
		}
	}
	return nil, ErrConstructionFailed
}

// New returns the smallest available verified-by-construction (n,k)-SSF:
// the Kautz–Singleton family if it is smaller than n sets, otherwise the
// round-robin family (which is an (n,k)-SSF for every k <= n). This mirrors
// the paper's size bound O(min{n, k² log n}) with the constructive log²
// variant.
func New(n, k int) (Family, error) {
	if n < 1 || k < 1 || k > n {
		return nil, fmt.Errorf("need 1 <= k <= n, got k=%d n=%d", k, n)
	}
	rr, err := NewRoundRobin(n)
	if err != nil {
		return nil, err
	}
	if k < 2 || n < 4 {
		return rr, nil
	}
	rs, err := NewReedSolomon(n, k)
	if err != nil {
		return nil, err
	}
	if rs.Size() < rr.Size() {
		return rs, nil
	}
	return rr, nil
}

// Verify exhaustively checks the (n,k)-strong selectivity property. Its cost
// is C(n,k) subset enumerations, so it is feasible only for small n and k.
// It returns nil if the property holds and a descriptive error for the first
// violated subset otherwise.
func Verify(f Family, k int) error {
	n := f.N()
	if k > n {
		return fmt.Errorf("k=%d exceeds n=%d", k, n)
	}
	// Precompute, for each id, the bitset of sets containing it.
	size := f.Size()
	containing := make([]bitset, n+1)
	for id := 1; id <= n; id++ {
		containing[id] = newBitset(size)
		for s := 0; s < size; s++ {
			if f.Contains(s, id) {
				containing[id].set(s)
			}
		}
	}
	subset := make([]int, 0, k)
	var rec func(start int) error
	rec = func(start int) error {
		if len(subset) >= 1 {
			if err := checkSubset(containing, subset, size); err != nil {
				return err
			}
		}
		if len(subset) == k {
			return nil
		}
		for id := start; id <= n; id++ {
			subset = append(subset, id)
			if err := rec(id + 1); err != nil {
				return err
			}
			subset = subset[:len(subset)-1]
		}
		return nil
	}
	return rec(1)
}

// VerifyRandom checks strong selectivity on `trials` random subsets of size
// at most k. It can only find violations, never certify the property.
func VerifyRandom(f Family, k, trials int, rng *rand.Rand) error {
	n := f.N()
	size := f.Size()
	containing := make([]bitset, n+1)
	for id := 1; id <= n; id++ {
		containing[id] = newBitset(size)
		for s := 0; s < size; s++ {
			if f.Contains(s, id) {
				containing[id].set(s)
			}
		}
	}
	for t := 0; t < trials; t++ {
		sz := 1 + rng.Intn(k)
		perm := rng.Perm(n)
		subset := make([]int, sz)
		for i := 0; i < sz; i++ {
			subset[i] = perm[i] + 1
		}
		if err := checkSubset(containing, subset, size); err != nil {
			return err
		}
	}
	return nil
}

// checkSubset verifies that every element of subset is isolated by some set:
// a set containing z but no other member exists iff
// containing[z] AND NOT(union of containing[y] for y != z) is non-empty.
func checkSubset(containing []bitset, subset []int, size int) error {
	for _, z := range subset {
		rest := newBitset(size)
		for _, y := range subset {
			if y != z {
				rest.orInto(containing[y])
			}
		}
		if !containing[z].intersectsComplement(rest) {
			return fmt.Errorf("no set isolates %d within subset %v", z, subset)
		}
	}
	return nil
}

// bitset is a minimal fixed-size bitset.
type bitset []uint64

func newBitset(bits int) bitset { return make(bitset, (bits+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) orInto(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// intersectsComplement reports whether b AND NOT(other) is non-empty.
func (b bitset) intersectsComplement(other bitset) bool {
	for i := range b {
		if b[i]&^other[i] != 0 {
			return true
		}
	}
	return false
}

// nextPrime returns the smallest prime >= x.
func nextPrime(x int) int {
	if x <= 2 {
		return 2
	}
	for p := x; ; p++ {
		if isPrime(p) {
			return p
		}
	}
}

func isPrime(p int) bool {
	if p < 2 {
		return false
	}
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			return false
		}
	}
	return true
}

// kthRoot returns the smallest q with q^m >= n.
func kthRoot(n, m int) int {
	q := int(math.Floor(math.Pow(float64(n), 1/float64(m))))
	if q < 2 {
		q = 2
	}
	for pow(q, m) < n {
		q++
	}
	return q
}

func pow(q, m int) int {
	r := 1
	for i := 0; i < m; i++ {
		if r > 1<<40 { // avoid overflow; already >= any practical n
			return r
		}
		r *= q
	}
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

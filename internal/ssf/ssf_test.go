package ssf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundRobinIsStronglySelective(t *testing.T) {
	f, err := NewRoundRobin(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f, 8); err != nil {
		t.Fatalf("round robin must be (n,n)-SSF: %v", err)
	}
}

func TestRoundRobinMembership(t *testing.T) {
	f, err := NewRoundRobin(5)
	if err != nil {
		t.Fatal(err)
	}
	for set := 0; set < 5; set++ {
		members := Members(f, set)
		if len(members) != 1 || members[0] != set+1 {
			t.Errorf("set %d = %v, want {%d}", set, members, set+1)
		}
	}
}

func TestRoundRobinRejectsZero(t *testing.T) {
	if _, err := NewRoundRobin(0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestReedSolomonSmallExhaustive(t *testing.T) {
	cases := []struct{ n, k int }{
		{8, 2}, {12, 2}, {12, 3}, {16, 2}, {16, 3}, {20, 2}, {20, 3},
	}
	for _, c := range cases {
		f, err := NewReedSolomon(c.n, c.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", c.n, c.k, err)
		}
		if err := Verify(f, c.k); err != nil {
			t.Errorf("n=%d k=%d: %v", c.n, c.k, err)
		}
	}
}

func TestReedSolomonRandomizedCheckLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ n, k int }{
		{100, 4}, {256, 8}, {1024, 8}, {1024, 16},
	}
	for _, c := range cases {
		f, err := NewReedSolomon(c.n, c.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", c.n, c.k, err)
		}
		if err := VerifyRandom(f, c.k, 300, rng); err != nil {
			t.Errorf("n=%d k=%d: %v", c.n, c.k, err)
		}
	}
}

func TestReedSolomonSizeBound(t *testing.T) {
	// Size must be O(k² log² n): check against a generous constant.
	for _, c := range []struct{ n, k int }{{64, 2}, {256, 4}, {1024, 8}, {4096, 16}} {
		f, err := NewReedSolomon(c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		logN := math.Log2(float64(c.n))
		bound := 16 * float64(c.k*c.k) * logN * logN
		if float64(f.Size()) > bound {
			t.Errorf("n=%d k=%d: size %d exceeds 16·k²·log²n = %.0f", c.n, c.k, f.Size(), bound)
		}
	}
}

func TestReedSolomonParamValidation(t *testing.T) {
	if _, err := NewReedSolomon(1, 1); err == nil {
		t.Fatal("expected error for n=1")
	}
	if _, err := NewReedSolomon(10, 1); err == nil {
		t.Fatal("expected error for k=1")
	}
	if _, err := NewReedSolomon(10, 11); err == nil {
		t.Fatal("expected error for k>n")
	}
}

func TestReedSolomonDistinctCodewords(t *testing.T) {
	f, err := NewReedSolomon(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct ids must have distinct evaluation vectors.
	seen := make(map[string]int)
	for id := 1; id <= 50; id++ {
		key := ""
		for p := 0; p < f.FieldSize(); p++ {
			key += string(rune('a' + f.eval(id-1, p)%26))
			key += string(rune('0' + f.eval(id-1, p)/26))
		}
		if prev, ok := seen[key]; ok {
			t.Fatalf("ids %d and %d share a codeword", prev, id)
		}
		seen[key] = id
	}
}

func TestNewPicksSmallest(t *testing.T) {
	// For k close to n, round robin (size n) must win.
	f, err := New(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 32 {
		t.Fatalf("New(32,32).Size() = %d, want 32 (round robin)", f.Size())
	}
	// For small k and large n, Reed-Solomon must win.
	f, err = New(1<<14, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() >= 1<<14 {
		t.Fatalf("New(16384,2).Size() = %d, want < n", f.Size())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := New(4, 5); err == nil {
		t.Fatal("expected error for k>n")
	}
}

func TestExplicitFamily(t *testing.T) {
	// Hand-built (4,2)-SSF.
	sets := [][]int{{1}, {2}, {3}, {4}}
	f, err := NewExplicit(4, 2, sets)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f, 2); err != nil {
		t.Fatal(err)
	}
	if !f.Contains(0, 1) || f.Contains(0, 2) {
		t.Fatal("membership mismatch")
	}
}

func TestExplicitRejectsBadMember(t *testing.T) {
	if _, err := NewExplicit(4, 2, [][]int{{5}}); err == nil {
		t.Fatal("expected error for out-of-range member")
	}
	if _, err := NewExplicit(4, 2, [][]int{{0}}); err == nil {
		t.Fatal("expected error for member 0")
	}
}

func TestVerifyDetectsViolation(t *testing.T) {
	// Family where ids 1 and 2 always appear together: not (n,2)-selective.
	sets := [][]int{{1, 2}, {3}, {1, 2, 3}}
	f, err := NewExplicit(3, 2, sets)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f, 2); err == nil {
		t.Fatal("Verify must reject a family that never isolates 1 from 2")
	}
}

func TestVerifyRandomDetectsViolation(t *testing.T) {
	sets := [][]int{{1, 2}}
	f, err := NewExplicit(2, 2, sets)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := VerifyRandom(f, 2, 200, rng); err == nil {
		t.Fatal("VerifyRandom must find the violation in a 2-element universe")
	}
}

func TestRandomizedConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f, err := NewRandomized(12, 2, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f, 2); err != nil {
		t.Fatalf("randomized construction returned unverified family: %v", err)
	}
}

func TestRandomizedConstructionFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Zero retries must fail deterministically.
	if _, err := NewRandomized(8, 2, 0, rng); !errors.Is(err, ErrConstructionFailed) {
		t.Fatalf("want ErrConstructionFailed, got %v", err)
	}
}

func TestNextPrime(t *testing.T) {
	cases := [][2]int{{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {90, 97}}
	for _, c := range cases {
		if got := nextPrime(c[0]); got != c[1] {
			t.Errorf("nextPrime(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestKthRoot(t *testing.T) {
	cases := []struct{ n, m, want int }{
		{16, 2, 4}, {17, 2, 5}, {27, 3, 3}, {28, 3, 4}, {1000, 2, 32},
	}
	for _, c := range cases {
		if got := kthRoot(c.n, c.m); got != c.want {
			t.Errorf("kthRoot(%d,%d) = %d, want %d", c.n, c.m, got, c.want)
		}
	}
}

func TestReedSolomonSelectivityProperty(t *testing.T) {
	// Property-based: random (n, k) in a small range, exhaustive verify.
	f := func(nRaw, kRaw uint8) bool {
		n := 6 + int(nRaw%12) // 6..17
		k := 2 + int(kRaw%2)  // 2..3
		fam, err := NewReedSolomon(n, k)
		if err != nil {
			return false
		}
		return Verify(fam, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMembersCoverUniverse(t *testing.T) {
	// Every id must belong to at least one set (otherwise it can never be
	// isolated as a singleton subset).
	f, err := NewReedSolomon(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 41)
	for s := 0; s < f.Size(); s++ {
		for _, id := range Members(f, s) {
			counts[id]++
		}
	}
	for id := 1; id <= 40; id++ {
		if counts[id] == 0 {
			t.Errorf("id %d appears in no set", id)
		}
	}
}

// Binary serialization of Stream accumulators. The encoding is versioned,
// fixed-layout, and bit-exact: every float64 travels as its IEEE-754 bit
// pattern, the exact buffer keeps its insertion order, and each P² estimator
// ships its full five-marker state — so unmarshal reproduces a Stream whose
// in-memory state is indistinguishable from the original. That is the
// foundation of the repo's resume/distribution contract:
//
//	marshal(s); wire; unmarshal -> s'; dst.Merge(s')
//
// is byte-equivalent to dst.Merge(s) — a shard accumulator can cross a
// process boundary (checkpoint file, worker report) without perturbing a
// single bit of the final aggregate.
//
// Layout (all little-endian):
//
//	magic   uint32  'D','G','S','T'
//	version uint16  codecVersion
//	flags   uint16  bit0: spilled to P²
//	exactK  int64
//	count   int64
//	mean, m2, min, max  4 × float64 bits
//	nTargets uint32, then nTargets × float64 target bits
//	exact sketch (flag bit0 clear): nExact uint32, then nExact × float64
//	P² sketch (flag bit0 set): nTargets estimators, each
//	        q float64, count int64, init[5], n[5], np[5], h[5] float64
//
// Trailing bytes are rejected, as is any truncation — a torn write never
// decodes to a plausible smaller accumulator.
package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// codecMagic brands a Stream encoding ("DGST" little-endian).
const codecMagic uint32 = 0x54534744

// codecVersion is the current Stream wire-format version. Bump it on any
// layout change; old versions are rejected with *ErrEncodingVersion rather
// than misread.
const codecVersion uint16 = 1

const flagSpilled uint16 = 1

// ErrCorruptEncoding reports a Stream encoding that is truncated, carries
// trailing garbage, or violates a structural invariant (out-of-range
// targets, impossible counts). Errors wrap it, so
// errors.Is(err, ErrCorruptEncoding) identifies every corrupt-input failure.
var ErrCorruptEncoding = errors.New("stats: corrupt or truncated stream encoding")

// ErrEncodingVersion reports a Stream encoding written by a wire format this
// build does not speak.
type ErrEncodingVersion struct {
	// Got is the rejected version number.
	Got int
}

func (e *ErrEncodingVersion) Error() string {
	return fmt.Sprintf("stats: unsupported stream encoding version %d (this build speaks version %d)",
		e.Got, codecVersion)
}

// corrupt wraps ErrCorruptEncoding with context.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptEncoding, fmt.Sprintf(format, args...))
}

// encodedSize returns the exact encoding length of s.
func (s *Stream) encodedSize() int {
	n := 4 + 2 + 2 + 8 + 8 + 4*8 + 4 + 8*len(s.targets)
	if s.p2s == nil {
		n += 4 + 8*len(s.exact)
	} else {
		n += len(s.p2s) * (8 + 8 + 4*5*8)
	}
	return n
}

// appender writes fixed-layout little-endian fields into a preallocated
// buffer.
type appender struct{ buf []byte }

func (a *appender) u16(v uint16) { a.buf = binary.LittleEndian.AppendUint16(a.buf, v) }
func (a *appender) u32(v uint32) { a.buf = binary.LittleEndian.AppendUint32(a.buf, v) }
func (a *appender) u64(v uint64) { a.buf = binary.LittleEndian.AppendUint64(a.buf, v) }
func (a *appender) i64(v int64)  { a.u64(uint64(v)) }
func (a *appender) f64(v float64) {
	a.u64(math.Float64bits(v))
}

// reader consumes the same layout, failing with ErrCorruptEncoding on any
// short read.
type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = corrupt("need %d more bytes, have %d", n, len(r.buf))
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *reader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// MarshalBinary encodes the full accumulator state. The encoding is
// canonical: equal states produce equal bytes, which tests exploit to assert
// that two reduction paths agreed to the last bit.
func (s *Stream) MarshalBinary() ([]byte, error) {
	a := &appender{buf: make([]byte, 0, s.encodedSize())}
	a.u32(codecMagic)
	a.u16(codecVersion)
	var flags uint16
	if s.p2s != nil {
		flags |= flagSpilled
	}
	a.u16(flags)
	a.i64(int64(s.exactK))
	a.i64(s.count)
	a.f64(s.mean)
	a.f64(s.m2)
	a.f64(s.min)
	a.f64(s.max)
	a.u32(uint32(len(s.targets)))
	for _, t := range s.targets {
		a.f64(t)
	}
	if s.p2s == nil {
		a.u32(uint32(len(s.exact)))
		for _, v := range s.exact {
			a.f64(v)
		}
		return a.buf, nil
	}
	for _, p := range s.p2s {
		a.f64(p.q)
		a.i64(p.count)
		for _, arr := range [][5]float64{p.init, p.n, p.np, p.h} {
			for _, v := range arr {
				a.f64(v)
			}
		}
	}
	return a.buf, nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary into s,
// replacing its state entirely. Truncated or trailing-garbage input fails
// with an error wrapping ErrCorruptEncoding; an unknown wire version fails
// with *ErrEncodingVersion. On error s is left unchanged.
func (s *Stream) UnmarshalBinary(data []byte) error {
	r := &reader{buf: data}
	if magic := r.u32(); r.err == nil && magic != codecMagic {
		return corrupt("bad magic %#x", magic)
	}
	version := r.u16()
	if r.err == nil && version != codecVersion {
		return &ErrEncodingVersion{Got: int(version)}
	}
	flags := r.u16()
	if r.err == nil && flags&^flagSpilled != 0 {
		return corrupt("unknown flag bits %#x", flags&^flagSpilled)
	}
	var d Stream
	d.exactK = int(r.i64())
	d.count = r.i64()
	d.mean = r.f64()
	d.m2 = r.f64()
	d.min = r.f64()
	d.max = r.f64()
	nTargets := r.u32()
	if r.err != nil {
		return r.err
	}
	if d.exactK < minExactK {
		return corrupt("exactK %d below minimum %d", d.exactK, minExactK)
	}
	if d.count < 0 {
		return corrupt("negative count %d", d.count)
	}
	if int(nTargets) > len(data)/8 {
		// Cheap bound before allocating: every target costs 8 bytes.
		return corrupt("target count %d exceeds encoding size", nTargets)
	}
	d.targets = make([]float64, nTargets)
	for i := range d.targets {
		q := r.f64()
		if r.err == nil && (math.IsNaN(q) || q < 0 || q > 1) {
			return corrupt("target quantile %v out of [0,1]", q)
		}
		d.targets[i] = q
	}
	if flags&flagSpilled == 0 {
		nExact := r.u32()
		if r.err != nil {
			return r.err
		}
		if int(nExact) > d.exactK || int64(nExact) != d.count {
			return corrupt("exact buffer length %d inconsistent with count %d / exactK %d",
				nExact, d.count, d.exactK)
		}
		if int(nExact) > len(data)/8 {
			// Cheap bound before allocating: every value costs 8 bytes.
			return corrupt("exact buffer length %d exceeds encoding size", nExact)
		}
		if nExact > 0 {
			d.exact = make([]float64, nExact)
			for i := range d.exact {
				v := r.f64()
				if r.err == nil && math.IsNaN(v) {
					return corrupt("NaN in exact buffer")
				}
				d.exact[i] = v
			}
		}
	} else {
		// A spill only ever happens while replaying at least minExactK
		// buffered values, so a spilled stream always has enough mass to have
		// initialized every marker.
		if d.count < minExactK {
			return corrupt("spilled stream with count %d < %d", d.count, minExactK)
		}
		d.p2s = make([]*p2, nTargets)
		for i := range d.p2s {
			p := &p2{}
			p.q = r.f64()
			p.count = r.i64()
			for _, arr := range []*[5]float64{&p.init, &p.n, &p.np, &p.h} {
				for j := range arr {
					arr[j] = r.f64()
				}
			}
			if r.err != nil {
				return r.err
			}
			if p.q != d.targets[i] {
				return corrupt("P² estimator %d tracks %v, stream target is %v", i, p.q, d.targets[i])
			}
			if p.count < 0 {
				return corrupt("negative P² count %d", p.count)
			}
			d.p2s[i] = p
		}
	}
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return corrupt("%d trailing bytes", len(r.buf))
	}
	*s = d
	return nil
}

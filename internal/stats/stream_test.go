package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustStream(t *testing.T, quantiles []float64, exactK int) *Stream {
	t.Helper()
	s, err := NewStream(quantiles, exactK)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func addAll(t *testing.T, s *Stream, xs []float64) {
	t.Helper()
	for _, x := range xs {
		if err := s.Add(x); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream([]float64{1.5}, 0); err == nil {
		t.Error("target quantile > 1 must be rejected")
	}
	if _, err := NewStream([]float64{math.NaN()}, 0); err == nil {
		t.Error("NaN target quantile must be rejected")
	}
	if _, err := NewStream(nil, 3); err == nil {
		t.Error("exactK below the P² initialization minimum must be rejected")
	}
	s, err := NewStream(nil, 0)
	if err != nil || s == nil {
		t.Fatalf("default construction failed: %v", err)
	}
}

func TestStreamEmptyErrors(t *testing.T) {
	s := mustStream(t, []float64{0.5}, 0)
	if _, err := s.Mean(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean on empty = %v, want ErrEmpty", err)
	}
	if _, err := s.Stddev(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Stddev on empty = %v, want ErrEmpty", err)
	}
	if _, err := s.Quantile(0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("Quantile on empty = %v, want ErrEmpty", err)
	}
	if err := s.Add(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stddev(); !errors.Is(err, ErrInsufficient) {
		t.Errorf("Stddev on one element = %v, want ErrInsufficient", err)
	}
}

func TestStreamRejectsNaN(t *testing.T) {
	s := mustStream(t, []float64{0.5}, 0)
	addAll(t, s, []float64{1, 2})
	if err := s.Add(math.NaN()); !errors.Is(err, ErrNaN) {
		t.Fatalf("Add(NaN) = %v, want ErrNaN", err)
	}
	// The rejected value must not have touched any state.
	if s.Count() != 2 {
		t.Errorf("count after rejected Add = %d, want 2", s.Count())
	}
	if m, _ := s.Mean(); m != 1.5 {
		t.Errorf("mean after rejected Add = %v, want 1.5", m)
	}
}

// TestStreamExactRegimeMatchesBatch: below the spill threshold the stream
// must agree with the batch statistics — quantiles identically (same
// code path over the same multiset), moments up to rounding.
func TestStreamExactRegimeMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	s := mustStream(t, []float64{0.5, 0.9}, 0)
	addAll(t, s, xs)
	if !s.Exact() {
		t.Fatal("500 values with default exactK must stay exact")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.97, 1} {
		want, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("q=%v: stream %v != batch %v", q, got, want)
		}
	}
	wantMean, _ := Mean(xs)
	gotMean, _ := s.Mean()
	if !almostEqual(gotMean, wantMean, 1e-9*math.Abs(wantMean)+1e-12) {
		t.Errorf("mean: stream %v != batch %v", gotMean, wantMean)
	}
	wantSd, _ := Stddev(xs)
	gotSd, _ := s.Stddev()
	if !almostEqual(gotSd, wantSd, 1e-9*wantSd) {
		t.Errorf("stddev: stream %v != batch %v", gotSd, wantSd)
	}
	gotMin, _ := s.Min()
	gotMax, _ := s.Max()
	wantMax, _ := Max(xs)
	if gotMax != wantMax {
		t.Errorf("max: stream %v != batch %v", gotMax, wantMax)
	}
	if q0, _ := Quantile(xs, 0); gotMin != q0 {
		t.Errorf("min: stream %v != batch %v", gotMin, q0)
	}
}

// TestStreamP2Accuracy: beyond the spill threshold the P² estimates must
// land near the exact sample quantiles. The check brackets each estimate
// between the exact (q-eps)- and (q+eps)-quantiles, which is the natural
// tolerance for an order-statistic sketch.
func TestStreamP2Accuracy(t *testing.T) {
	for _, dist := range []struct {
		name string
		gen  func(*rand.Rand) float64
	}{
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64() }},
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() }},
	} {
		t.Run(dist.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			xs := make([]float64, 60000)
			for i := range xs {
				xs[i] = dist.gen(rng)
			}
			s := mustStream(t, []float64{0.5, 0.9, 0.99}, 512)
			addAll(t, s, xs)
			if s.Exact() {
				t.Fatal("60000 values past exactK=512 must have spilled")
			}
			const eps = 0.02
			for _, q := range []float64{0.5, 0.9, 0.99} {
				got, err := s.Quantile(q)
				if err != nil {
					t.Fatal(err)
				}
				lo, _ := Quantile(xs, math.Max(0, q-eps))
				hi, _ := Quantile(xs, math.Min(1, q+eps))
				if got < lo || got > hi {
					t.Errorf("q=%v: P² estimate %v outside exact band [%v, %v]", q, got, lo, hi)
				}
			}
			// Moments stay exact regardless of the sketch spilling.
			wantMean, _ := Mean(xs)
			gotMean, _ := s.Mean()
			if !almostEqual(gotMean, wantMean, 1e-9) {
				t.Errorf("mean diverged: %v vs %v", gotMean, wantMean)
			}
		})
	}
}

func TestStreamQuantileUntrackedAfterSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := mustStream(t, []float64{0.5}, 8)
	for i := 0; i < 100; i++ {
		if err := s.Add(rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	if s.Exact() {
		t.Fatal("must have spilled")
	}
	if _, err := s.Quantile(0.25); !errors.Is(err, ErrUntracked) {
		t.Errorf("untracked quantile error = %v, want ErrUntracked", err)
	}
	// 0, 0.5 and 1 remain answerable: tracked target plus exact extremes.
	for _, q := range []float64{0, 0.5, 1} {
		if _, err := s.Quantile(q); err != nil {
			t.Errorf("Quantile(%v) after spill: %v", q, err)
		}
	}
}

func TestStreamMergeConfigMismatch(t *testing.T) {
	a := mustStream(t, []float64{0.5}, 16)
	b := mustStream(t, []float64{0.9}, 16)
	c := mustStream(t, []float64{0.5}, 32)
	addAll(t, a, []float64{1})
	addAll(t, b, []float64{2})
	addAll(t, c, []float64{3})
	if err := a.Merge(b); err == nil {
		t.Error("merging different targets must fail")
	}
	if err := a.Merge(c); err == nil {
		t.Error("merging different exactK must fail")
	}
}

// TestStreamMergeMatchesSingleStream cross-checks every merge regime
// (exact+exact staying exact, exact+exact spilling, spilled+exact,
// exact+spilled, spilled+spilled) against a single stream fed the
// concatenated values, and against the exact batch statistics.
func TestStreamMergeMatchesSingleStream(t *testing.T) {
	const exactK = 64
	cases := []struct {
		name   string
		sizes  []int
		spills bool
	}{
		{"exact-stays-exact", []int{20, 30}, false},
		{"exact-pair-spills", []int{50, 40}, true},
		{"spilled-absorbs-exact", []int{200, 30}, true},
		{"exact-adopts-spilled", []int{30, 200}, true},
		{"spilled-pair", []int{200, 300}, true},
		{"many-shards", []int{10, 90, 200, 5, 60}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			var all []float64
			merged := mustStream(t, []float64{0.5, 0.9}, exactK)
			single := mustStream(t, []float64{0.5, 0.9}, exactK)
			for _, sz := range tc.sizes {
				part := mustStream(t, []float64{0.5, 0.9}, exactK)
				for i := 0; i < sz; i++ {
					x := rng.NormFloat64() * 10
					all = append(all, x)
					addAll(t, part, []float64{x})
					addAll(t, single, []float64{x})
				}
				if err := merged.Merge(part); err != nil {
					t.Fatal(err)
				}
			}
			if merged.Exact() != !tc.spills {
				t.Fatalf("spilled=%v, want %v", !merged.Exact(), tc.spills)
			}
			if merged.Count() != int64(len(all)) {
				t.Fatalf("count %d, want %d", merged.Count(), len(all))
			}
			// Counts, extremes and moments are exact in every regime.
			wantMean, _ := Mean(all)
			gotMean, _ := merged.Mean()
			if !almostEqual(gotMean, wantMean, 1e-9) {
				t.Errorf("mean %v, want %v", gotMean, wantMean)
			}
			wantSd, _ := Stddev(all)
			gotSd, _ := merged.Stddev()
			if !almostEqual(gotSd, wantSd, 1e-9) {
				t.Errorf("stddev %v, want %v", gotSd, wantSd)
			}
			gotMax, _ := merged.Max()
			wantMax, _ := Max(all)
			if gotMax != wantMax {
				t.Errorf("max %v, want %v", gotMax, wantMax)
			}
			// Quantiles: identical to the batch in the exact regime; within
			// a ±0.1-quantile band of the exact answer once estimating (the
			// generous bound absorbs the weighted marker merge).
			for _, q := range []float64{0.5, 0.9} {
				got, err := merged.Quantile(q)
				if err != nil {
					t.Fatal(err)
				}
				if merged.Exact() {
					want, _ := Quantile(all, q)
					if got != want {
						t.Errorf("q=%v exact: %v, want %v", q, got, want)
					}
					continue
				}
				lo, _ := Quantile(all, math.Max(0, q-0.1))
				hi, _ := Quantile(all, math.Min(1, q+0.1))
				if got < lo || got > hi {
					t.Errorf("q=%v estimate %v outside [%v, %v]", q, got, lo, hi)
				}
				// And the merged sketch should track the single-stream
				// sketch (same values, different fold order) closely.
				ref, _ := single.Quantile(q)
				if sd, _ := Stddev(all); math.Abs(got-ref) > sd {
					t.Errorf("q=%v merged %v far from single-stream %v", q, got, ref)
				}
			}
		})
	}
}

// TestStreamMergeDoesNotMutateSource: Reduce merges left to right and may
// reuse sources afterwards in principle; Merge must treat src as read-only.
func TestStreamMergeDoesNotMutateSource(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := mustStream(t, []float64{0.5}, 16)
	for i := 0; i < 100; i++ {
		addAll(t, src, []float64{rng.Float64()})
	}
	before, _ := src.Quantile(0.5)
	cnt := src.Count()
	dst := mustStream(t, []float64{0.5}, 16)
	for i := 0; i < 100; i++ {
		addAll(t, dst, []float64{rng.Float64() + 10})
	}
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	after, _ := src.Quantile(0.5)
	if before != after || src.Count() != cnt {
		t.Error("Merge mutated its source")
	}
}

// TestStreamPropertyCrossCheck is the satellite property test: on random
// workloads the streaming mean/variance must match the exact batch values,
// and streaming quantiles must match exactly in the exact regime and fall
// inside an exact-quantile band after spilling.
func TestStreamPropertyCrossCheck(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, spill bool) bool {
		n := 2 + int(sizeRaw%2000)
		exactK := DefaultExactK
		if spill {
			exactK = 32
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * (1 + rng.Float64()*50)
		}
		s, err := NewStream([]float64{0.5, 0.95}, exactK)
		if err != nil {
			return false
		}
		for _, x := range xs {
			if err := s.Add(x); err != nil {
				return false
			}
		}
		wantMean, _ := Mean(xs)
		gotMean, _ := s.Mean()
		if !almostEqual(gotMean, wantMean, 1e-8*(1+math.Abs(wantMean))) {
			return false
		}
		wantSd, _ := Stddev(xs)
		gotSd, _ := s.Stddev()
		if !almostEqual(gotSd, wantSd, 1e-8*(1+wantSd)) {
			return false
		}
		for _, q := range []float64{0.5, 0.95} {
			got, err := s.Quantile(q)
			if err != nil {
				return false
			}
			if s.Exact() {
				want, _ := Quantile(xs, q)
				if got != want {
					return false
				}
				continue
			}
			lo, _ := Quantile(xs, math.Max(0, q-0.15))
			hi, _ := Quantile(xs, math.Min(1, q+0.15))
			if got < lo || got > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamConstantValues: a degenerate all-equal sample must not break
// the P² marker invariants (division by zero in the interpolation).
func TestStreamConstantValues(t *testing.T) {
	s := mustStream(t, []float64{0.5, 0.99}, 8)
	for i := 0; i < 1000; i++ {
		if err := s.Add(42); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got, err := s.Quantile(q)
		if err != nil || got != 42 {
			t.Fatalf("Quantile(%v) of constant sample = %v (%v), want 42", q, got, err)
		}
	}
	sd, err := s.Stddev()
	if err != nil || sd != 0 {
		t.Fatalf("Stddev of constant sample = %v (%v), want 0", sd, err)
	}
}

// TestStreamMergeConfigMismatchEvenWhenEmpty: compatibility must be checked
// before the empty-source fast path, so detection does not depend on which
// operand happened to receive values.
func TestStreamMergeConfigMismatchEvenWhenEmpty(t *testing.T) {
	a := mustStream(t, []float64{0.5}, 16)
	addAll(t, a, []float64{1, 2})
	empty := mustStream(t, []float64{0.9}, 16)
	if err := a.Merge(empty); err == nil {
		t.Error("merging an empty stream with different targets must still fail")
	}
}

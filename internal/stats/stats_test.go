package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

// TestQuantileRejectsNaN is the regression test for NaN poisoning: NaN
// compares false against everything, so sort.Float64s produces an arbitrary
// order and Quantile silently returned garbage instead of an error.
func TestQuantileRejectsNaN(t *testing.T) {
	for _, xs := range [][]float64{
		{math.NaN()},
		{1, 2, math.NaN(), 4},
		{math.NaN(), math.NaN()},
	} {
		if _, err := Quantile(xs, 0.5); !errors.Is(err, ErrNaN) {
			t.Errorf("Quantile(%v) error = %v, want ErrNaN", xs, err)
		}
		if _, err := Median(xs); !errors.Is(err, ErrNaN) {
			t.Errorf("Median(%v) error = %v, want ErrNaN", xs, err)
		}
	}
	// A NaN q must also be rejected: it passes `q < 0 || q > 1` because NaN
	// fails every comparison.
	if _, err := Quantile([]float64{1, 2, 3}, math.NaN()); err == nil {
		t.Error("Quantile with NaN q must error")
	}
}

func TestStddev(t *testing.T) {
	got, err := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.138, 0.001) {
		t.Fatalf("Stddev = %v, want ~2.138", got)
	}
}

// TestStddevInsufficientVsEmpty pins the error split: an empty sample is
// ErrEmpty, a one-element sample (which has no deviation) is the distinct
// ErrInsufficient rather than the misleading ErrEmpty.
func TestStddevInsufficientVsEmpty(t *testing.T) {
	if _, err := Stddev(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Stddev(nil) error = %v, want ErrEmpty", err)
	}
	_, err := Stddev([]float64{3})
	if !errors.Is(err, ErrInsufficient) {
		t.Errorf("Stddev(one element) error = %v, want ErrInsufficient", err)
	}
	if errors.Is(err, ErrEmpty) {
		t.Error("Stddev(one element) must not report ErrEmpty")
	}
}

func TestLinearFitInsufficientVsEmpty(t *testing.T) {
	if _, _, err := LinearFit(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("LinearFit(empty) error = %v, want ErrEmpty", err)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficient) {
		t.Errorf("LinearFit(one point) error = %v, want ErrInsufficient", err)
	}
}

func TestMedianOddEven(t *testing.T) {
	m, err := Median([]float64{3, 1, 2})
	if err != nil || m != 2 {
		t.Fatalf("Median odd = %v (%v), want 2", m, err)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Fatalf("Median even = %v (%v), want 2.5", m, err)
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 5 {
		t.Fatalf("Quantile(0)=%v Quantile(1)=%v, want 1 and 5", q0, q1)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("expected error for q > 1")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMax(t *testing.T) {
	m, err := Max([]float64{-3, 7, 2})
	if err != nil || m != 7 {
		t.Fatalf("Max = %v (%v), want 7", m, err)
	}
}

func TestHarmonicNumber(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{{0, 1}, {1, 1}, {2, 1.5}, {4, 25.0 / 12}}
	for _, c := range cases {
		if got := HarmonicNumber(c.n); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("H(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	// H(n) ~ ln n + gamma.
	if got := HarmonicNumber(100000); !almostEqual(got, math.Log(100000)+0.5772156649, 1e-4) {
		t.Errorf("H(1e5) = %v diverges from ln n + gamma", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 3, 1e-12) {
		t.Fatalf("fit = (%v, %v), want (2, 3)", slope, intercept)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for single point")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("expected error for degenerate x")
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	alpha, c, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(alpha, 1.5, 1e-9) || !almostEqual(c, 3, 1e-9) {
		t.Fatalf("fit = (%v, %v), want (1.5, 3)", alpha, c)
	}
}

func TestFitPowerLawRejectsNonPositive(t *testing.T) {
	if _, _, err := FitPowerLaw([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for non-positive x")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%50)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v, err := Quantile(xs, qq)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawRecoversExponentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.5 + 2*rng.Float64()
		c := 0.5 + rng.Float64()
		xs := []float64{2, 4, 8, 16, 32, 64}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = c * math.Pow(x, alpha)
		}
		gotA, gotC, err := FitPowerLaw(xs, ys)
		return err == nil && almostEqual(gotA, alpha, 1e-6) && almostEqual(gotC, c, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package stats

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// fill adds n deterministic pseudo-random values to s.
func fill(t *testing.T, s *Stream, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if err := s.Add(rng.NormFloat64()*10 + 50); err != nil {
			t.Fatal(err)
		}
	}
}

// roundTrip marshals s and unmarshals into a fresh Stream.
func roundTrip(t *testing.T, s *Stream) *Stream {
	t.Helper()
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Stream
	if err := out.UnmarshalBinary(blob); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return &out
}

// marshalBytes is a test helper asserting Marshal succeeds.
func marshalBytes(t *testing.T, s *Stream) []byte {
	t.Helper()
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestRoundTripStateEquality: unmarshal(marshal(s)) reproduces the exact
// in-memory state — including P² marker bits — in every sketch regime.
func TestRoundTripStateEquality(t *testing.T) {
	targets := []float64{0.5, 0.9, 0.99}
	for _, tc := range []struct {
		name string
		n    int
	}{
		{"empty", 0},
		{"one", 1},
		{"exact", 40},
		{"boundary", 64},
		{"spilled", 500},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := mustStream(t, targets, 64)
			fill(t, s, 7, tc.n)
			got := roundTrip(t, s)
			if !reflect.DeepEqual(s, got) {
				t.Fatalf("state mismatch after round trip:\n got %+v\nwant %+v", got, s)
			}
			// Canonical encoding: re-marshal is byte-identical.
			if a, b := marshalBytes(t, s), marshalBytes(t, got); !reflect.DeepEqual(a, b) {
				t.Fatal("re-marshal is not byte-identical")
			}
		})
	}
}

// TestP2MarkerBitEquality pins the marker state fields one by one, so a
// codec regression names the field it lost rather than a generic DeepEqual
// diff.
func TestP2MarkerBitEquality(t *testing.T) {
	s := mustStream(t, []float64{0.5, 0.95}, 16)
	fill(t, s, 11, 1000)
	if s.Exact() {
		t.Fatal("fixture must have spilled")
	}
	got := roundTrip(t, s)
	for i := range s.p2s {
		want, have := s.p2s[i], got.p2s[i]
		if math.Float64bits(want.q) != math.Float64bits(have.q) {
			t.Fatalf("estimator %d: q bits differ", i)
		}
		if want.count != have.count {
			t.Fatalf("estimator %d: count %d != %d", i, have.count, want.count)
		}
		for j := 0; j < 5; j++ {
			for name, pair := range map[string][2]float64{
				"init": {want.init[j], have.init[j]},
				"n":    {want.n[j], have.n[j]},
				"np":   {want.np[j], have.np[j]},
				"h":    {want.h[j], have.h[j]},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("estimator %d marker %d: %s bits differ (%v != %v)",
						i, j, name, pair[1], pair[0])
				}
			}
		}
	}
}

// TestMergeThroughWireIsByteEquivalent: for every merge regime, merging a
// round-tripped operand is byte-equivalent to merging the in-memory one —
// the invariant the resume and coordinator/worker paths rest on.
func TestMergeThroughWireIsByteEquivalent(t *testing.T) {
	targets := []float64{0.5, 0.9}
	const exactK = 32
	regimes := []struct {
		name   string
		na, nb int
	}{
		{"empty/empty", 0, 0},
		{"empty/exact", 0, 10},
		{"exact/empty", 10, 0},
		{"exact/exact-fits", 10, 12},
		{"exact/exact-spills", 20, 20},
		{"exact/spilled", 10, 200},
		{"spilled/exact", 200, 10},
		{"spilled/spilled", 200, 300},
	}
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			mk := func() (*Stream, *Stream) {
				a := mustStream(t, targets, exactK)
				b := mustStream(t, targets, exactK)
				fill(t, a, 3, rg.na)
				fill(t, b, 4, rg.nb)
				return a, b
			}
			memA, memB := mk()
			if err := memA.Merge(memB); err != nil {
				t.Fatal(err)
			}
			wireA, wireB := mk()
			wireA = roundTrip(t, wireA)
			wireB = roundTrip(t, wireB)
			if err := wireA.Merge(wireB); err != nil {
				t.Fatal(err)
			}
			if a, b := marshalBytes(t, memA), marshalBytes(t, wireA); !reflect.DeepEqual(a, b) {
				t.Fatalf("merge through the wire diverged from in-memory merge")
			}
		})
	}
}

// TestUnmarshalRejectsEveryTruncation: no prefix of a valid encoding decodes.
func TestUnmarshalRejectsEveryTruncation(t *testing.T) {
	for _, n := range []int{0, 20, 500} {
		s := mustStream(t, []float64{0.5, 0.9}, 32)
		fill(t, s, 9, n)
		blob := marshalBytes(t, s)
		for cut := 0; cut < len(blob); cut++ {
			var out Stream
			err := out.UnmarshalBinary(blob[:cut])
			if err == nil {
				t.Fatalf("n=%d: truncation to %d/%d bytes decoded successfully", n, cut, len(blob))
			}
			var version *ErrEncodingVersion
			if !errors.Is(err, ErrCorruptEncoding) && !errors.As(err, &version) {
				t.Fatalf("n=%d cut=%d: error is not typed: %v", n, cut, err)
			}
		}
	}
}

// TestUnmarshalRejectsStructuralCorruption covers the typed failure paths a
// random bit flip cannot reliably hit.
func TestUnmarshalRejectsStructuralCorruption(t *testing.T) {
	base := func() []byte {
		s := mustStream(t, []float64{0.5}, 32)
		fill(t, s, 5, 10)
		return marshalBytes(t, s)
	}

	t.Run("bad magic", func(t *testing.T) {
		blob := base()
		blob[0] ^= 0xff
		var out Stream
		if err := out.UnmarshalBinary(blob); !errors.Is(err, ErrCorruptEncoding) {
			t.Fatalf("want ErrCorruptEncoding, got %v", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		blob := base()
		blob[4] = 0x7f // version u16 little-endian low byte
		var out Stream
		var version *ErrEncodingVersion
		if err := out.UnmarshalBinary(blob); !errors.As(err, &version) {
			t.Fatalf("want *ErrEncodingVersion, got %v", err)
		} else if version.Got != 0x7f {
			t.Fatalf("version error carries %d, want %d", version.Got, 0x7f)
		}
	})
	t.Run("unknown flags", func(t *testing.T) {
		blob := base()
		blob[6] |= 0x80
		var out Stream
		if err := out.UnmarshalBinary(blob); !errors.Is(err, ErrCorruptEncoding) {
			t.Fatalf("want ErrCorruptEncoding, got %v", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		blob := append(base(), 0x00)
		var out Stream
		if err := out.UnmarshalBinary(blob); !errors.Is(err, ErrCorruptEncoding) {
			t.Fatalf("want ErrCorruptEncoding, got %v", err)
		}
	})
	t.Run("unchanged on error", func(t *testing.T) {
		s := mustStream(t, []float64{0.5}, 32)
		fill(t, s, 6, 8)
		before := marshalBytes(t, s)
		if err := s.UnmarshalBinary(base()[:10]); err == nil {
			t.Fatal("truncated decode succeeded")
		}
		if after := marshalBytes(t, s); !reflect.DeepEqual(before, after) {
			t.Fatal("failed unmarshal mutated the receiver")
		}
	})
}

// TestRoundTripThenAddMatchesDirect: a restored accumulator keeps folding
// exactly like the original — resume is not only merge-compatible but
// add-compatible.
func TestRoundTripThenAddMatchesDirect(t *testing.T) {
	for _, split := range []int{0, 5, 31, 32, 100} {
		direct := mustStream(t, []float64{0.5, 0.9}, 32)
		fill(t, direct, 21, split)
		restored := roundTrip(t, direct)
		fill(t, direct, 22, 60)
		fill(t, restored, 22, 60)
		if a, b := marshalBytes(t, direct), marshalBytes(t, restored); !reflect.DeepEqual(a, b) {
			t.Fatalf("split=%d: adds after restore diverged from uninterrupted adds", split)
		}
	}
}

// FuzzStreamUnmarshal: arbitrary input never panics; every accepted input
// re-marshals byte-identically (the encoding is canonical).
func FuzzStreamUnmarshal(f *testing.F) {
	for _, n := range []int{0, 10, 200} {
		s, err := NewStream([]float64{0.5, 0.9}, 32)
		if err != nil {
			f.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			_ = s.Add(rng.Float64() * 100)
		}
		blob, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Stream
		if err := s.UnmarshalBinary(data); err != nil {
			var version *ErrEncodingVersion
			if !errors.Is(err, ErrCorruptEncoding) && !errors.As(err, &version) {
				t.Fatalf("rejection is not typed: %v", err)
			}
			return
		}
		again, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted input failed: %v", err)
		}
		if !reflect.DeepEqual(again, data) {
			t.Fatalf("accepted encoding is not canonical:\n in  %x\n out %x", data, again)
		}
	})
}

// Streaming (single-pass, mergeable) summary statistics for memory-bounded
// Monte Carlo sweeps: a Stream folds values one at a time into O(1)-per-value
// state — Welford mean/variance, min/max, count — plus a quantile sketch that
// is exact up to ExactK buffered values and degrades to one P² estimator
// (Jain & Chlamtac, CACM 1985) per tracked quantile beyond that. Streams
// merge, so a trial population can be reduced shard by shard (see
// internal/engine.Reduce) without ever materializing it.
//
// Accuracy contract:
//
//   - count, min, max and the completion-style tallies built on Count are
//     exact at any size;
//   - mean and variance are exact up to floating-point rounding (Welford
//     updates, Chan et al. pairwise merge);
//   - quantiles are exact (identical to Quantile on the full sample) while
//     the total count is at most ExactK, and P² estimates beyond that. P²
//     keeps five markers per target and is asymptotically consistent with
//     O(1/√n)-scale error on smooth distributions; merging two spilled
//     sketches combines markers by count-weighted interpolation, which adds
//     a second approximation of the same order. Quantile(0) and Quantile(1)
//     always return the exact min/max.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultExactK is the spill threshold used when NewStream is given
// exactK <= 0: below it quantiles are exact, above it P² takes over.
const DefaultExactK = 4096

// minExactK keeps the exact buffer large enough that a spill always fully
// initializes the five P² markers.
const minExactK = 8

// ErrUntracked is returned by Stream.Quantile after the sketch has spilled
// to P² estimators and the requested quantile is not one of the tracked
// targets (nor 0 or 1, which stay exact via min/max).
var ErrUntracked = errors.New("quantile not tracked by this stream")

// Stream is an online, mergeable summary of a float64 sample. The zero
// value is not usable; construct with NewStream. Streams are not safe for
// concurrent use — the engine gives each shard its own and merges after.
type Stream struct {
	targets []float64
	exactK  int

	count    int64
	mean, m2 float64
	min, max float64

	// exact buffers every value (in insertion order, so a spill replays
	// them deterministically) until it reaches exactK; nil once spilled.
	exact []float64
	// p2s holds one estimator per target once spilled; nil before.
	p2s []*p2
}

// NewStream returns a Stream tracking the given target quantiles with an
// exact-until-exactK sketch (exactK <= 0 means DefaultExactK). Targets must
// be in [0,1]; order is significant only for Merge compatibility, which
// requires identical (targets, exactK) configurations.
func NewStream(quantiles []float64, exactK int) (*Stream, error) {
	if exactK <= 0 {
		exactK = DefaultExactK
	}
	if exactK < minExactK {
		return nil, fmt.Errorf("stats: exactK %d below minimum %d", exactK, minExactK)
	}
	ts := make([]float64, len(quantiles))
	for i, q := range quantiles {
		if math.IsNaN(q) || q < 0 || q > 1 {
			return nil, fmt.Errorf("stats: target quantile %v out of [0,1]", q)
		}
		ts[i] = q
	}
	return &Stream{targets: ts, exactK: exactK}, nil
}

// Add folds one value into the stream. NaN is rejected with ErrNaN and
// leaves the stream unchanged.
func (s *Stream) Add(x float64) error {
	if math.IsNaN(x) {
		return ErrNaN
	}
	s.count++
	if s.count == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.count)
	s.m2 += d * (x - s.mean)

	if s.p2s == nil {
		if len(s.exact) < s.exactK {
			s.exact = append(s.exact, x)
			return nil
		}
		s.spill()
	}
	for _, p := range s.p2s {
		p.add(x)
	}
	return nil
}

// spill converts the exact buffer into one P² estimator per target,
// replaying the buffered values in insertion order.
func (s *Stream) spill() {
	s.p2s = make([]*p2, len(s.targets))
	for i, q := range s.targets {
		s.p2s[i] = &p2{q: q}
	}
	for _, v := range s.exact {
		for _, p := range s.p2s {
			p.add(v)
		}
	}
	s.exact = nil
}

// Merge folds o into s; o is left unchanged. The two streams must share the
// same configuration. Merging is deterministic: for a fixed sequence of
// merges the result is a pure function of the operand states, which is what
// lets the engine guarantee worker-count-independent aggregates by always
// merging shard accumulators in shard-index order.
func (s *Stream) Merge(o *Stream) error {
	if o == nil {
		return nil
	}
	// Check compatibility before the empty-source fast path, so a
	// misconfigured merge fails loudly regardless of operand order or of
	// which shards happened to receive values.
	if s.exactK != o.exactK || len(s.targets) != len(o.targets) {
		return fmt.Errorf("stats: merging streams with different configurations")
	}
	for i := range s.targets {
		if s.targets[i] != o.targets[i] {
			return fmt.Errorf("stats: merging streams with different quantile targets")
		}
	}
	if o.count == 0 {
		return nil
	}
	if s.count == 0 {
		*s = *o
		s.targets = append([]float64(nil), o.targets...)
		s.exact = append([]float64(nil), o.exact...)
		if o.p2s != nil {
			s.p2s = make([]*p2, len(o.p2s))
			for i, p := range o.p2s {
				s.p2s[i] = p.clone()
			}
		}
		return nil
	}

	// Moments: Chan et al. pairwise update; min/max/count are exact.
	n1, n2 := float64(s.count), float64(o.count)
	delta := o.mean - s.mean
	tot := n1 + n2
	s.mean += delta * n2 / tot
	s.m2 += o.m2 + delta*delta*n1*n2/tot
	s.count += o.count
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}

	// Quantile sketch: stay exact while the union fits in one buffer; feed
	// raw values into the spilled side when only one side has spilled; and
	// combine markers by count-weighted interpolation when both have.
	switch {
	case s.p2s == nil && o.p2s == nil:
		if len(s.exact)+len(o.exact) <= s.exactK {
			s.exact = append(s.exact, o.exact...)
			return nil
		}
		s.spill()
		feed(s.p2s, o.exact)
	case s.p2s == nil: // s still exact, o spilled: adopt o's markers, replay s.
		buf := s.exact
		s.exact = nil
		s.p2s = make([]*p2, len(o.p2s))
		for i, p := range o.p2s {
			s.p2s[i] = p.clone()
		}
		feed(s.p2s, buf)
	case o.p2s == nil: // o still exact: replay its raw values.
		feed(s.p2s, o.exact)
	default:
		for i := range s.p2s {
			s.p2s[i].merge(o.p2s[i])
		}
	}
	return nil
}

func feed(ps []*p2, xs []float64) {
	for _, x := range xs {
		for _, p := range ps {
			p.add(x)
		}
	}
}

// Snapshot returns an independent deep copy of the stream. The copy shares
// no state with the original, so a progress reporter can take a snapshot
// under the lock that guards its accumulator and then query quantiles at
// leisure while the original keeps folding — the read-only-view primitive
// behind live percentile reporting.
func (s *Stream) Snapshot() *Stream {
	c := *s
	c.targets = append([]float64(nil), s.targets...)
	c.exact = append([]float64(nil), s.exact...)
	if s.p2s != nil {
		c.p2s = make([]*p2, len(s.p2s))
		for i, p := range s.p2s {
			c.p2s[i] = p.clone()
		}
	}
	return &c
}

// Count returns the number of values folded in.
func (s *Stream) Count() int64 { return s.count }

// Exact reports whether the quantile sketch is still exact (has not spilled
// to P² estimators).
func (s *Stream) Exact() bool { return s.p2s == nil }

// Targets returns a copy of the tracked quantile targets.
func (s *Stream) Targets() []float64 { return append([]float64(nil), s.targets...) }

// Mean returns the arithmetic mean of the streamed values.
func (s *Stream) Mean() (float64, error) {
	if s.count == 0 {
		return 0, ErrEmpty
	}
	return s.mean, nil
}

// Variance returns the sample (n-1) variance of the streamed values.
func (s *Stream) Variance() (float64, error) {
	if s.count == 0 {
		return 0, ErrEmpty
	}
	if s.count < 2 {
		return 0, ErrInsufficient
	}
	return s.m2 / float64(s.count-1), nil
}

// Stddev returns the sample standard deviation of the streamed values.
func (s *Stream) Stddev() (float64, error) {
	v, err := s.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the minimum streamed value.
func (s *Stream) Min() (float64, error) {
	if s.count == 0 {
		return 0, ErrEmpty
	}
	return s.min, nil
}

// Max returns the maximum streamed value.
func (s *Stream) Max() (float64, error) {
	if s.count == 0 {
		return 0, ErrEmpty
	}
	return s.max, nil
}

// Quantile returns the q-quantile of the streamed values: exact (identical
// to the batch Quantile) while the sketch has not spilled, the P² estimate
// of a tracked target after it has, and ErrUntracked for a spilled
// non-target. q = 0 and q = 1 are always exact.
func (s *Stream) Quantile(q float64) (float64, error) {
	if s.count == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, errors.New("quantile out of [0,1]")
	}
	if q == 0 {
		return s.min, nil
	}
	if q == 1 {
		return s.max, nil
	}
	if s.p2s == nil {
		return Quantile(s.exact, q)
	}
	for i, t := range s.targets {
		if t == q {
			return s.p2s[i].estimate(), nil
		}
	}
	return 0, fmt.Errorf("%w: %v (tracked: %v)", ErrUntracked, q, s.targets)
}

// Median is Quantile(0.5).
func (s *Stream) Median() (float64, error) { return s.Quantile(0.5) }

// p2 is one P² quantile estimator (Jain & Chlamtac 1985): five markers
// whose heights track the min, the q/2-, q- and (1+q)/2-quantiles, and the
// max, nudged toward their desired positions after every observation with
// piecewise-parabolic interpolation.
type p2 struct {
	q     float64
	count int64
	init  [5]float64 // first five observations, before initialization
	n     [5]float64 // marker positions (1-based counts)
	np    [5]float64 // desired marker positions
	h     [5]float64 // marker heights
}

func (p *p2) clone() *p2 {
	c := *p
	return &c
}

// dn is the per-observation increment of the desired positions.
func (p *p2) dn(i int) float64 {
	switch i {
	case 1:
		return p.q / 2
	case 2:
		return p.q
	case 3:
		return (1 + p.q) / 2
	case 4:
		return 1
	}
	return 0
}

func (p *p2) add(x float64) {
	if p.count < 5 {
		p.init[p.count] = x
		p.count++
		if p.count == 5 {
			h := p.init
			sort.Float64s(h[:])
			p.h = h
			p.n = [5]float64{1, 2, 3, 4, 5}
			q := p.q
			p.np = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
		}
		return
	}
	p.count++
	// Cell k such that h[k] <= x < h[k+1], extending the extreme markers.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.n[i]++
	}
	for i := 1; i < 5; i++ {
		p.np[i] += p.dn(i)
	}
	for i := 1; i <= 3; i++ {
		d := p.np[i] - p.n[i]
		if (d >= 1 && p.n[i+1]-p.n[i] > 1) || (d <= -1 && p.n[i-1]-p.n[i] < -1) {
			sgn := 1.0
			if d < 0 {
				sgn = -1
			}
			if hp := p.parabolic(i, sgn); p.h[i-1] < hp && hp < p.h[i+1] {
				p.h[i] = hp
			} else {
				p.h[i] = p.linear(i, sgn)
			}
			p.n[i] += sgn
		}
	}
}

func (p *p2) parabolic(i int, s float64) float64 {
	return p.h[i] + s/(p.n[i+1]-p.n[i-1])*
		((p.n[i]-p.n[i-1]+s)*(p.h[i+1]-p.h[i])/(p.n[i+1]-p.n[i])+
			(p.n[i+1]-p.n[i]-s)*(p.h[i]-p.h[i-1])/(p.n[i]-p.n[i-1]))
}

func (p *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.h[i] + s*(p.h[j]-p.h[i])/(p.n[j]-p.n[i])
}

// merge combines another fully initialized estimator into p by
// count-weighted marker interpolation: extreme markers take the true
// min/max, interior heights average by weight, positions add, and desired
// positions are recomputed for the combined count. Both operands always
// have count >= minExactK in Stream's usage, so the markers exist.
func (p *p2) merge(o *p2) {
	n1, n2 := float64(p.count), float64(o.count)
	tot := n1 + n2
	p.h[0] = math.Min(p.h[0], o.h[0])
	p.h[4] = math.Max(p.h[4], o.h[4])
	for i := 1; i <= 3; i++ {
		p.h[i] = (n1*p.h[i] + n2*o.h[i]) / tot
	}
	p.count += o.count
	m := float64(p.count)
	p.n[0] = 1
	p.n[4] = m
	for i := 1; i <= 3; i++ {
		p.n[i] += o.n[i]
	}
	// Belt and braces: restore the strictly-increasing position invariant
	// the update step relies on (the sums above preserve it in practice).
	for i := 1; i <= 3; i++ {
		if p.n[i] <= p.n[i-1] {
			p.n[i] = p.n[i-1] + 1
		}
	}
	for i := 3; i >= 1; i-- {
		if p.n[i] >= p.n[i+1] {
			p.n[i] = p.n[i+1] - 1
		}
	}
	q := p.q
	p.np = [5]float64{1, (m-1)*q/2 + 1, (m-1)*q + 1, (m-1)*(1+q)/2 + 1, m}
}

// estimate returns the current quantile estimate (the middle marker).
func (p *p2) estimate() float64 {
	if p.count < 5 {
		// Unreachable via Stream (spills replay >= minExactK values), but
		// degrade gracefully: exact over the few buffered observations.
		buf := append([]float64(nil), p.init[:p.count]...)
		v, _ := Quantile(buf, p.q)
		return v
	}
	return p.h[2]
}

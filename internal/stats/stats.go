// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, harmonic numbers, and power-law
// (log-log) exponent fitting for scaling experiments.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("empty sample")

// ErrInsufficient is returned when a sample is non-empty but still too small
// for the requested statistic (e.g. Stddev of a single value).
var ErrInsufficient = errors.New("insufficient sample")

// ErrNaN is returned when a sample (or a streamed value) contains NaN, which
// has no place in an order statistic: NaN compares false against everything,
// so it silently corrupts sort-based quantiles instead of failing loudly.
var ErrNaN = errors.New("sample contains NaN")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Stddev returns the sample standard deviation of xs. An empty sample is
// ErrEmpty; a one-element sample has no deviation and is ErrInsufficient.
func Stddev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) < 2 {
		return 0, ErrInsufficient
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. A sample containing NaN is
// rejected with ErrNaN rather than silently producing a garbage order.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	// NaN fails every comparison, so `q < 0 || q > 1` alone would let it
	// through and index the slice with int(NaN).
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, errors.New("quantile out of [0,1]")
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return 0, ErrNaN
		}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// HarmonicNumber returns H(n) = sum_{i=1..n} 1/i, with H(0) = 1 as defined
// in the paper's Lemma 15.
func HarmonicNumber(n int) float64 {
	if n <= 0 {
		return 1
	}
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// LinearFit returns the least-squares slope and intercept of y against x.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("length mismatch")
	}
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if len(xs) < 2 {
		return 0, 0, ErrInsufficient
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, errors.New("degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// FitPowerLaw fits y = c * x^alpha by least squares on (log x, log y) and
// returns the exponent alpha and constant c. All inputs must be positive.
func FitPowerLaw(xs, ys []float64) (alpha, c float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	if len(xs) != len(ys) {
		return 0, 0, errors.New("length mismatch")
	}
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, errors.New("power-law fit needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, intercept, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, err
	}
	return slope, math.Exp(intercept), nil
}

package schedule

import (
	"errors"
	"math/rand"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/exhaustive"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

func TestExactCliqueBridgeIsTwoBroadcastable(t *testing.T) {
	// Section 3 / Theorem 2: the clique-bridge network is 2-broadcastable.
	d, err := graph.CliqueBridge(8)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Exact(d)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Rounds() != 2 {
		t.Fatalf("exact schedule = %d rounds, want 2", sched.Rounds())
	}
}

func TestExactLineNeedsDiameterRounds(t *testing.T) {
	d, err := graph.Line(7)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Exact(d)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Rounds() != 6 {
		t.Fatalf("exact schedule on a line = %d rounds, want 6", sched.Rounds())
	}
}

func TestExactCompleteLayered(t *testing.T) {
	// The Theorem 12 network has (n-1)/2 layers; a guaranteed schedule needs
	// at least one round per layer (G' is complete, so concurrent senders
	// can always be jammed into collisions at uncovered nodes).
	d, err := graph.CompleteLayered(9)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Exact(d)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Rounds() != 4 {
		t.Fatalf("exact schedule = %d rounds, want 4 (one per layer)", sched.Rounds())
	}
}

func TestExactRejectsLargeNetworks(t *testing.T) {
	d, err := graph.Line(30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exact(d); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestGreedyMatchesExactOnSmallNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5; i++ {
		d, err := graph.RandomDual(10, 0.2, 0.4, rng)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Exact(d)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := Greedy(d)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Rounds() < exact.Rounds() {
			t.Fatalf("greedy (%d) beat exact (%d): exact search is broken", greedy.Rounds(), exact.Rounds())
		}
	}
}

func TestGreedySchedulesAreLoneTransmissions(t *testing.T) {
	d, err := graph.CliqueBridge(12)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Greedy(d)
	if err != nil {
		t.Fatal(err)
	}
	for r, senders := range sched {
		if len(senders) != 1 {
			t.Fatalf("greedy round %d has %d senders, want 1", r+1, len(senders))
		}
	}
}

// certify replays a schedule under a heuristic adversary and checks it
// completes in exactly the scheduled number of rounds.
func certify(t *testing.T, d *graph.Dual, sched Schedule, adv sim.Adversary) {
	t.Helper()
	res, err := sim.Run(d, Alg(sched), adv, sim.Config{
		Rule:      sim.CR1,
		Start:     sim.SyncStart,
		MaxRounds: sched.Rounds() + 1,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("schedule of %d rounds did not complete under %s", sched.Rounds(), adv.Name())
	}
	if res.Rounds > sched.Rounds() {
		t.Fatalf("schedule took %d rounds, scheduled %d", res.Rounds, sched.Rounds())
	}
}

func TestSchedulesCertifiedAgainstAdversaries(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	duals := []*graph.Dual{}
	d, err := graph.CliqueBridge(10)
	if err != nil {
		t.Fatal(err)
	}
	duals = append(duals, d)
	d, err = graph.RandomDual(12, 0.25, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	duals = append(duals, d)

	for _, dd := range duals {
		exact, err := Exact(dd)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := Greedy(dd)
		if err != nil {
			t.Fatal(err)
		}
		for _, adv := range []sim.Adversary{adversary.Benign{}, adversary.GreedyCollider{}, adversary.FullDelivery{}} {
			certify(t, dd, exact, adv)
			certify(t, dd, greedy, adv)
		}
	}
}

func TestScheduleGuaranteeHoldsUnderExhaustiveAdversary(t *testing.T) {
	// The strongest certificate: for a tiny network, the exact schedule must
	// complete under every adversary delivery behaviour.
	d, err := graph.CliqueBridge(5)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Exact(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exhaustive.Search(d, Alg(sched), exhaustive.Config{
		Rule:    sim.CR1,
		Horizon: sched.Rounds(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllComplete {
		t.Fatal("exact schedule failed under some adversary behaviour")
	}
	if res.WorstRounds > sched.Rounds() {
		t.Fatalf("worst case %d exceeds scheduled %d", res.WorstRounds, sched.Rounds())
	}
}

func TestProgressSemantics(t *testing.T) {
	// 0-1 reliable, 0-2 reliable, plus unreliable 1-2. If 0 and 1 both
	// transmit, node 2 is not guaranteed: 1's unreliable edge can collide.
	g := graph.NewGraph(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	gp := g.Clone()
	gp.MustAddEdge(1, 2)
	d, err := graph.NewDual(g, gp, 0)
	if err != nil {
		t.Fatal(err)
	}
	holders := uint64(1)<<0 | 1<<1
	got := progress(d, holders, []graph.NodeID{0, 1})
	if got&(1<<2) != 0 {
		t.Fatal("node 2 must not be guaranteed when a concurrent G' edge exists")
	}
	got = progress(d, holders, []graph.NodeID{0})
	if got&(1<<2) == 0 {
		t.Fatal("lone reliable transmission must guarantee delivery")
	}
}

// Package schedule analyzes k-broadcastability (Section 3 of the paper): a
// network (G, G') is k-broadcastable when an omniscient scheduler can pick,
// for every round, a set of transmitting holders such that the message
// provably reaches every node within k rounds no matter which unreliable
// edges the adversary deploys.
//
// A node v is guaranteed to newly receive the message in a round with
// transmitter set S exactly when some holder s in S has a reliable edge to v
// and no other member of S has any G' edge to v — otherwise the adversary
// can either withhold the message or force a collision at v.
//
// The package provides an exact minimum-round schedule by breadth-first
// search over holder sets (exponential; small n only), a scalable greedy
// scheduler, and replay of either schedule as a sim.Algorithm to certify the
// result against the simulator's adversaries. The Theorem 2 witness
// (source, then bridge) is the two-round special case of these schedules.
package schedule

import (
	"errors"
	"fmt"
	"math/rand"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// Schedule is a per-round list of transmitting nodes.
type Schedule [][]graph.NodeID

// Rounds returns the schedule length.
func (s Schedule) Rounds() int { return len(s) }

// progress returns the holder set after one round in which exactly the
// holders in senders transmit: v is newly covered iff exactly one sender has
// a G edge to v and no other sender has a G' edge to v.
func progress(d *graph.Dual, holders uint64, senders []graph.NodeID) uint64 {
	n := d.N()
	var reliableFrom [64]int8 // -1 = none, -2 = several; else the sender index
	var unreliableHit [64]bool
	for v := 0; v < n; v++ {
		reliableFrom[v] = -1
	}
	for i, s := range senders {
		for _, v := range d.ReliableOut(s) {
			switch reliableFrom[v] {
			case -1:
				reliableFrom[v] = int8(i)
			default:
				reliableFrom[v] = -2
			}
		}
		for _, v := range d.UnreliableOut(s) {
			unreliableHit[v] = true
		}
	}
	next := holders
	for v := 0; v < n; v++ {
		if holders&(1<<v) != 0 {
			continue
		}
		if reliableFrom[v] >= 0 && !unreliableHit[v] {
			next |= 1 << v
		}
	}
	return next
}

// ErrTooLarge is returned when the exact search would exceed its state
// budget.
var ErrTooLarge = errors.New("network too large for exact broadcastability search")

// ErrNoSchedule is returned when no guaranteed schedule exists within the
// bound (cannot happen on valid duals, where one-at-a-time BFS always
// works).
var ErrNoSchedule = errors.New("no guaranteed broadcast schedule found")

// Exact returns a minimum-length guaranteed schedule via BFS over holder
// sets. It supports n <= 24 (the state space is 2^n).
func Exact(d *graph.Dual) (Schedule, error) {
	n := d.N()
	if n > 24 {
		return nil, fmt.Errorf("%w: n=%d > 24", ErrTooLarge, n)
	}
	start := uint64(1) << d.Source()
	full := uint64(1)<<n - 1

	type step struct {
		parent uint64
		via    []graph.NodeID
	}
	prev := map[uint64]step{}
	frontier := []uint64{start}
	visited := map[uint64]bool{start: true}

	for len(frontier) > 0 {
		var next []uint64
		for _, holders := range frontier {
			if holders == full {
				var sched Schedule
				for at := full; at != start; at = prev[at].parent {
					sched = append(Schedule{prev[at].via}, sched...)
				}
				return sched, nil
			}
			for _, senders := range usefulSenderSets(d, holders) {
				h2 := progress(d, holders, senders)
				if h2 == holders || visited[h2] {
					continue
				}
				visited[h2] = true
				prev[h2] = step{parent: holders, via: senders}
				next = append(next, h2)
			}
		}
		frontier = next
	}
	return nil, ErrNoSchedule
}

// usefulSenderSets enumerates candidate transmitter sets among the holders.
// Exhaustive enumeration over all holder subsets is exponential twice over,
// so the search uses all singletons (always safe) plus all pairs, which is
// sufficient for optimal schedules on the paper's constructions and yields
// an upper bound in general.
func usefulSenderSets(d *graph.Dual, holders uint64) [][]graph.NodeID {
	var hs []graph.NodeID
	for v := 0; v < d.N(); v++ {
		if holders&(1<<v) != 0 {
			hs = append(hs, graph.NodeID(v))
		}
	}
	var sets [][]graph.NodeID
	for i, a := range hs {
		sets = append(sets, []graph.NodeID{a})
		for _, b := range hs[i+1:] {
			sets = append(sets, []graph.NodeID{a, b})
		}
	}
	return sets
}

// Greedy returns a guaranteed schedule by picking, each round, the single
// holder whose lone transmission covers the most uncovered nodes (lone
// transmissions are always collision-free). It runs in polynomial time at
// any size; its length is an upper bound on broadcastability.
func Greedy(d *graph.Dual) (Schedule, error) {
	n := d.N()
	holders := make([]bool, n)
	holders[d.Source()] = true
	covered := 1
	var sched Schedule
	for covered < n {
		best, bestGain := graph.NodeID(-1), 0
		for u := 0; u < n; u++ {
			if !holders[u] {
				continue
			}
			gain := 0
			for _, v := range d.ReliableOut(graph.NodeID(u)) {
				if !holders[v] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = graph.NodeID(u), gain
			}
		}
		if bestGain == 0 {
			return nil, ErrNoSchedule
		}
		sched = append(sched, []graph.NodeID{best})
		for _, v := range d.ReliableOut(best) {
			if !holders[v] {
				holders[v] = true
				covered++
			}
		}
	}
	return sched, nil
}

// Alg wraps a schedule as a sim.Algorithm (identity assignment assumed), so
// a schedule's guarantee can be certified by replaying it against the
// simulator's adversaries.
func Alg(s Schedule) sim.Algorithm { return scheduleAlg{s: s} }

type scheduleAlg struct {
	s Schedule
}

func (a scheduleAlg) Name() string { return fmt.Sprintf("schedule(%d rounds)", len(a.s)) }

func (a scheduleAlg) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	node := graph.NodeID(id - 1)
	rounds := map[int]bool{}
	for r, senders := range a.s {
		for _, s := range senders {
			if s == node {
				rounds[r+1] = true
			}
		}
	}
	return &scheduleProc{rounds: rounds}
}

type scheduleProc struct {
	rounds map[int]bool
	has    bool
}

func (p *scheduleProc) Start(_ int, hasMessage bool) { p.has = hasMessage }

func (p *scheduleProc) Decide(round int) bool { return p.has && p.rounds[round] }

func (p *scheduleProc) Receive(_ int, r sim.Reception) {
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

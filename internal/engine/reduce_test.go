package engine_test

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

// intSum is a trivial accumulator for exercising Reduce's plumbing.
type intSum struct {
	n   int
	sum int64
}

func reduceSum(n int, cfg engine.Config, fn func(int) (int64, error)) (*intSum, error) {
	return engine.Reduce(n, cfg, fn,
		func() *intSum { return &intSum{} },
		func(a *intSum, _ int, v int64) error {
			a.n++
			a.sum += v
			return nil
		},
		func(dst, src *intSum) error {
			dst.n += src.n
			dst.sum += src.sum
			return nil
		})
}

func TestReduceSumAnyWorkerCount(t *testing.T) {
	const n = 10007 // prime, so shard blocks are uneven
	var want int64
	for i := 0; i < n; i++ {
		want += int64(i) * int64(i)
	}
	for _, workers := range []int{1, 2, 3, 8, 300} {
		acc, err := reduceSum(n, engine.Config{Workers: workers}, func(i int) (int64, error) {
			return int64(i) * int64(i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if acc.n != n || acc.sum != want {
			t.Fatalf("workers=%d: folded %d trials sum %d, want %d trials sum %d",
				workers, acc.n, acc.sum, n, want)
		}
	}
}

func TestReduceZeroAndNegativeTrials(t *testing.T) {
	acc, err := reduceSum(0, engine.Config{}, func(int) (int64, error) { return 0, nil })
	if err != nil || acc == nil || acc.n != 0 {
		t.Fatalf("zero trials: acc=%+v err=%v, want fresh empty accumulator", acc, err)
	}
	if _, err := reduceSum(-1, engine.Config{}, func(int) (int64, error) { return 0, nil }); err == nil {
		t.Fatal("negative trial count must error")
	}
}

func TestReduceReportsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := reduceSum(500, engine.Config{Workers: workers}, func(i int) (int64, error) {
			if i == 77 || i == 300 || i == 499 {
				return 0, fmt.Errorf("%w at %d", errBoom, i)
			}
			return 1, nil
		})
		if err == nil || !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: want errBoom, got %v", workers, err)
		}
		if !strings.Contains(err.Error(), "trial 77") {
			t.Fatalf("workers=%d: error %q must name the lowest failing trial", workers, err)
		}
	}
}

func TestReduceFoldErrorsPropagate(t *testing.T) {
	_, err := engine.Reduce(100, engine.Config{Workers: 3},
		func(i int) (float64, error) {
			if i == 42 {
				return math.NaN(), nil
			}
			return float64(i), nil
		},
		func() *stats.Stream {
			s, _ := stats.NewStream(nil, 0)
			return s
		},
		func(s *stats.Stream, _ int, v float64) error { return s.Add(v) },
		func(dst, src *stats.Stream) error { return dst.Merge(src) })
	if err == nil || !errors.Is(err, stats.ErrNaN) {
		t.Fatalf("fold error must surface with its trial index, got %v", err)
	}
	if !strings.Contains(err.Error(), "trial 42") {
		t.Fatalf("error %q must name trial 42", err)
	}
}

func TestShardsPureFunctionOfN(t *testing.T) {
	if got := engine.Shards(10); got != 10 {
		t.Errorf("Shards(10) = %d, want one shard per trial below the cap", got)
	}
	if got := engine.Shards(1_000_000); got != 256 {
		t.Errorf("Shards(1e6) = %d, want the 256 cap", got)
	}
}

// streamWorkload is the randomized sweep used by the RunStream tests.
func streamWorkload(t testing.TB) (*graph.Dual, sim.Algorithm, sim.Adversary, sim.Config) {
	t.Helper()
	d, err := graph.CliqueBridge(15)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(15, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewRandom(0.4)
	if err != nil {
		t.Fatal(err)
	}
	return d, alg, adv, sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 99}
}

// TestRunStreamDeterministicAcrossWorkerCounts is the reducer's core
// guarantee: the summary — including every floating-point bit of the
// Welford moments and the P² marker states — is identical at any worker
// count, because the trial→shard partition and the merge order are pure
// functions of the trial count.
func TestRunStreamDeterministicAcrossWorkerCounts(t *testing.T) {
	d, alg, adv, simCfg := streamWorkload(t)
	// 600 trials with ExactK 32 forces shard merges through every regime,
	// including P² marker merges.
	sc := engine.StreamConfig{ExactK: 32}
	var ref *engine.TrialSummary
	for _, workers := range []int{1, 2, 3, 8, 64} {
		sum, err := engine.RunStream(d, alg, adv, simCfg, 600, engine.Config{Workers: workers}, sc)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = sum
			continue
		}
		if !reflect.DeepEqual(sum, ref) {
			t.Fatalf("workers=%d: summary diverged from workers=1", workers)
		}
	}
}

// TestRunStreamMatchesRunMany cross-checks the streaming path against the
// slice path on the same seeds: counts, min and max must agree exactly,
// the mean up to rounding, and — while within the exact regime — the
// quantiles must equal stats.Quantile over the materialized rounds.
func TestRunStreamMatchesRunMany(t *testing.T) {
	d, alg, adv, simCfg := streamWorkload(t)
	const trials = 300
	results, err := engine.RunMany(d, alg, adv, simCfg, trials, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := engine.RunStream(d, alg, adv, simCfg, trials, engine.Config{}, engine.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}

	rounds := make([]float64, 0, trials)
	var completed int64
	var txTotal float64
	for _, res := range results {
		if res.Completed {
			completed++
		}
		rounds = append(rounds, float64(res.Rounds))
		txTotal += float64(res.Transmissions)
	}
	if sum.Trials != trials || sum.Completed != completed {
		t.Fatalf("counts: got %d/%d, want %d/%d", sum.Completed, sum.Trials, completed, trials)
	}
	if !sum.Rounds.Exact() {
		t.Fatal("300 trials under the default ExactK must stay exact")
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
		want, err := stats.Quantile(rounds, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sum.Rounds.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("q=%v: stream %v != slice-path %v", q, got, want)
		}
	}
	gotMean, _ := sum.Transmissions.Mean()
	if want := txTotal / trials; math.Abs(gotMean-want) > 1e-9*want {
		t.Errorf("mean transmissions: stream %v != slice-path %v", gotMean, want)
	}
}

// TestRunStreamP2WithinToleranceOfSlicePath pushes past the exact regime
// and checks the documented accuracy contract against the exact slice-path
// quantiles: each P² estimate must fall between the exact (q-0.02)- and
// (q+0.02)-quantiles of the materialized sample.
func TestRunStreamP2WithinToleranceOfSlicePath(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-checking thousands of trials is slow")
	}
	d, alg, adv, simCfg := streamWorkload(t)
	const trials = 4000
	results, err := engine.RunMany(d, alg, adv, simCfg, trials, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := engine.StreamConfig{ExactK: 256}
	sum, err := engine.RunStream(d, alg, adv, simCfg, trials, engine.Config{}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rounds.Exact() {
		t.Fatal("4000 trials past ExactK=256 must have spilled")
	}
	rounds := make([]float64, trials)
	for i, res := range results {
		rounds[i] = float64(res.Rounds)
	}
	sort.Float64s(rounds)
	// Band of exact neighbouring quantiles, widened by one round: rounds
	// are integers, so on a nearly-atomic distribution the band can be a
	// single point while P² interpolates between atoms (e.g. 1.999 vs 2).
	const eps = 0.02
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got, err := sum.Rounds.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		lo, _ := stats.Quantile(rounds, math.Max(0, q-eps))
		hi, _ := stats.Quantile(rounds, math.Min(1, q+eps))
		if got < lo-1 || got > hi+1 {
			t.Errorf("q=%v: P² estimate %v outside exact band [%v, %v]±1", q, got, lo, hi)
		}
	}
	gotMax, _ := sum.Rounds.Max()
	if want := rounds[len(rounds)-1]; gotMax != want {
		t.Errorf("max: stream %v != slice-path %v", gotMax, want)
	}
}

// The 100k-trial bounded-memory smoke lives in cmd/dgsim's test suite
// (TestStreamSweepBoundedMemory), where it exercises this package's
// RunStream end to end through the CLI path.

// Binary serialization of TrialSummary accumulators: the engine-level unit
// of checkpoint and coordinator/worker state. A summary encodes its exact
// tallies plus both stats.Stream accumulators through their bit-exact codec,
// so unmarshal→Merge is byte-equivalent to merging the in-memory original —
// the property that lets a (cell, shard) accumulator cross a process
// boundary without perturbing the final aggregate.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dualgraph/internal/stats"
)

// summaryMagic brands a TrialSummary encoding ("DGTS" little-endian).
const summaryMagic uint32 = 0x53544744

// summaryVersion is the TrialSummary wire-format version; unknown versions
// are rejected rather than misread.
const summaryVersion uint16 = 1

// ErrCorruptSummary reports a TrialSummary encoding that is truncated,
// carries trailing bytes, or violates a tally invariant. Stream-level
// corruption surfaces as stats.ErrCorruptEncoding; both wrap into the
// returned error chain.
var ErrCorruptSummary = errors.New("engine: corrupt or truncated summary encoding")

func corruptSummary(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptSummary, fmt.Sprintf(format, args...))
}

// MarshalBinary encodes the summary: exact tallies plus the two stream
// accumulators in their canonical bit-exact encodings.
func (t *TrialSummary) MarshalBinary() ([]byte, error) {
	rounds, err := t.Rounds.MarshalBinary()
	if err != nil {
		return nil, err
	}
	tx, err := t.Transmissions.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 4+2+2+8+8+4+len(rounds)+4+len(tx))
	buf = binary.LittleEndian.AppendUint32(buf, summaryMagic)
	buf = binary.LittleEndian.AppendUint16(buf, summaryVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Trials))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Completed))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rounds)))
	buf = append(buf, rounds...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tx)))
	buf = append(buf, tx...)
	return buf, nil
}

// UnmarshalBinary decodes an encoding produced by MarshalBinary, replacing
// t's state entirely. Structural damage fails with an error wrapping
// ErrCorruptSummary (or stats.ErrCorruptEncoding for stream-level damage);
// an unknown version is rejected with a descriptive error. On error t is
// left unchanged.
func (t *TrialSummary) UnmarshalBinary(data []byte) error {
	const header = 4 + 2 + 2 + 8 + 8
	if len(data) < header {
		return corruptSummary("need %d header bytes, have %d", header, len(data))
	}
	if magic := binary.LittleEndian.Uint32(data[0:]); magic != summaryMagic {
		return corruptSummary("bad magic %#x", magic)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != summaryVersion {
		return fmt.Errorf("engine: unsupported summary encoding version %d (this build speaks version %d)",
			v, summaryVersion)
	}
	if reserved := binary.LittleEndian.Uint16(data[6:]); reserved != 0 {
		return corruptSummary("nonzero reserved bits %#x", reserved)
	}
	var d TrialSummary
	d.Trials = int64(binary.LittleEndian.Uint64(data[8:]))
	d.Completed = int64(binary.LittleEndian.Uint64(data[16:]))
	rest := data[header:]

	takeBlob := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, corruptSummary("truncated stream length")
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return nil, corruptSummary("stream blob needs %d bytes, have %d", n, len(rest))
		}
		blob := rest[:n]
		rest = rest[n:]
		return blob, nil
	}
	roundsBlob, err := takeBlob()
	if err != nil {
		return err
	}
	txBlob, err := takeBlob()
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return corruptSummary("%d trailing bytes", len(rest))
	}

	d.Rounds = &stats.Stream{}
	if err := d.Rounds.UnmarshalBinary(roundsBlob); err != nil {
		return fmt.Errorf("engine: rounds stream: %w", err)
	}
	d.Transmissions = &stats.Stream{}
	if err := d.Transmissions.UnmarshalBinary(txBlob); err != nil {
		return fmt.Errorf("engine: transmissions stream: %w", err)
	}
	if d.Trials < 0 || d.Completed < 0 || d.Completed > d.Trials {
		return corruptSummary("impossible tallies: completed %d of %d trials", d.Completed, d.Trials)
	}
	if d.Rounds.Count() != d.Trials || d.Transmissions.Count() != d.Trials {
		return corruptSummary("stream counts (%d, %d) disagree with trial tally %d",
			d.Rounds.Count(), d.Transmissions.Count(), d.Trials)
	}
	*t = d
	return nil
}

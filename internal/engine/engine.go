// Package engine is the sharded, deterministic Monte-Carlo trial engine.
// It fans independent trials out over a fixed worker pool (GOMAXPROCS-sized
// by default) using a batched work queue, while guaranteeing that results —
// and the first error, if any — are bit-identical regardless of the worker
// count or the goroutine schedule.
//
// Determinism rests on two rules:
//
//  1. every trial derives its randomness only from the base seed and its
//     trial index, via SeedFor(baseSeed, index), never from shared RNG
//     state or wall-clock time; and
//  2. trial i's result is written to slot i of a preallocated result slice,
//     so the output order is the input order no matter which worker ran it.
//
// The experiment harness (internal/expt), the public dualgraph.RunMany API,
// and both CLIs are built on this package.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// Config parameterizes the worker pool. The zero value is ready to use: one
// worker per logical CPU and an automatically sized work batch.
type Config struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Batch is the number of consecutive trial indices a worker claims at a
	// time; <= 0 picks a size that balances queue contention against load
	// balancing. Batch size never affects results, only scheduling.
	Batch int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) batch(n, workers int) int {
	if c.Batch > 0 {
		return c.Batch
	}
	// Aim for ~8 batches per worker so slow trials rebalance, capped to keep
	// the atomic counter cold on large trial counts.
	b := n / (workers * 8)
	if b < 1 {
		b = 1
	}
	if b > 64 {
		b = 64
	}
	return b
}

// SeedFor derives the RNG seed of one trial as a SplitMix64-style mix of
// the base seed and the trial index. The derivation is a pure function of
// (base, trial) — which is what makes engine runs reproducible at any
// worker count — and, unlike a plain base^trial XOR, it decorrelates the
// trial-seed sets of nearby base seeds: replications run with different
// base seeds are statistically independent rather than permutations of the
// same trials.
func SeedFor(base int64, trial int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(trial)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// trialError carries the error of the lowest-indexed failing trial, so the
// reported error is deterministic even when several trials fail.
type trialError struct {
	mu    sync.Mutex
	index int
	err   error
}

func (te *trialError) record(index int, err error) {
	te.mu.Lock()
	if te.err == nil || index < te.index {
		te.index, te.err = index, err
	}
	te.mu.Unlock()
}

func (te *trialError) get() error {
	te.mu.Lock()
	defer te.mu.Unlock()
	return te.err
}

// MapContext runs fn for every trial index 0..n-1 across the worker pool
// and returns the results in index order. fn must be safe for concurrent
// invocation and must derive any randomness from its trial index alone
// (typically via SeedFor). On error MapContext returns the error of the
// lowest-indexed failing trial (wrapped with that index) and stops claiming
// new batches; trials already claimed still finish.
//
// Cancelling ctx stops the pool at batch granularity: workers finish the
// batch they claimed and claim no more, and MapContext returns ctx.Err()
// (wrapped, so errors.Is(err, context.Canceled) works). A trial error takes
// precedence over cancellation in the returned error, keeping the reported
// failure deterministic.
func MapContext[T any](ctx context.Context, n int, cfg Config, fn func(trial int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("engine: negative trial count %d", n)
	}
	if n == 0 {
		return []T{}, nil
	}
	workers := cfg.workers()
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		// Sequential fast path: no goroutines, no atomics; identical results
		// by construction. Cancellation is checked per batch, mirroring the
		// granularity of the pooled path.
		batch := cfg.batch(n, workers)
		for lo := 0; lo < n; lo += batch {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("engine: %w", err)
			}
			hi := lo + batch
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				r, err := fn(i)
				if err != nil {
					return nil, fmt.Errorf("engine: trial %d: %w", i, err)
				}
				results[i] = r
			}
		}
		return results, nil
	}

	batch := cfg.batch(n, workers)
	var (
		next    atomic.Int64
		failed  atomic.Bool
		firstEr trialError
		wg      sync.WaitGroup
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				select {
				case <-done:
					return
				default:
				}
				lo := int(next.Add(int64(batch))) - batch
				if lo >= n {
					return
				}
				hi := lo + batch
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					r, err := fn(i)
					if err != nil {
						firstEr.record(i, err)
						failed.Store(true)
						break
					}
					results[i] = r
				}
			}
		}()
	}
	wg.Wait()
	if err := firstEr.get(); err != nil {
		return nil, fmt.Errorf("engine: trial %d: %w", firstEr.index, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return results, nil
}

// Map is MapContext without cancellation, kept as the compatibility entry
// point for callers that predate the context-first API.
func Map[T any](n int, cfg Config, fn func(trial int) (T, error)) ([]T, error) {
	return MapContext(context.Background(), n, cfg, fn)
}

// Trial is one fully specified simulation: a network, an algorithm, an
// adversary, and a sim configuration (including its own seed). Sched, when
// set, makes the trial dynamic: the run executes on the schedule's epoch
// sequence instead of the fixed Net (which then only documents the base
// topology the schedule was built over).
type Trial struct {
	Net   *graph.Dual
	Sched graph.Schedule
	Alg   sim.Algorithm
	Adv   sim.Adversary
	Cfg   sim.Config
}

// RunTrialsContext executes heterogeneous trials across the pool and returns
// their results in input order. Each trial uses exactly the seed in its own
// sim.Config. Algorithms and adversaries may be shared between trials and
// must therefore be stateless factories, which all the built-in ones are.
// Cancellation follows MapContext's batch-granularity contract.
func RunTrialsContext(ctx context.Context, trials []Trial, cfg Config) ([]*sim.Result, error) {
	return MapContext(ctx, len(trials), cfg, func(i int) (*sim.Result, error) {
		t := trials[i]
		return sim.RunDynamic(t.schedule(), t.Alg, t.Adv, t.Cfg)
	})
}

// RunTrials is RunTrialsContext without cancellation (compatibility entry
// point).
func RunTrials(trials []Trial, cfg Config) ([]*sim.Result, error) {
	return RunTrialsContext(context.Background(), trials, cfg)
}

// RunManyContext executes trials independent runs of one (net, alg, adv,
// simCfg) combination. Trial i runs with sim seed SeedFor(simCfg.Seed, i),
// so a fixed simCfg.Seed yields bit-identical results at any worker count.
// It is exactly RunManyScheduleContext over a static schedule, mirroring how
// sim.Run relates to sim.RunDynamic.
func RunManyContext(ctx context.Context, net *graph.Dual, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config, trials int, cfg Config) ([]*sim.Result, error) {
	return RunManyScheduleContext(ctx, graph.Static(net), alg, adv, simCfg, trials, cfg)
}

// RunMany is RunManyContext without cancellation (compatibility entry
// point).
func RunMany(net *graph.Dual, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config, trials int, cfg Config) ([]*sim.Result, error) {
	return RunManyContext(context.Background(), net, alg, adv, simCfg, trials, cfg)
}

// Dynamic-network trial execution: the schedule-aware counterparts of
// RunMany and RunStream. Determinism is inherited rather than re-proven:
// trial i runs with sim seed SeedFor(baseSeed, i) exactly like the static
// entry points, and sim.RunDynamic derives every epoch's randomness from
// that trial seed alone (graph.EpochSeed), so a dynamic sweep is
// bit-identical at any worker count for the same reason a static one is.
//
// Schedule implementations must be safe for concurrent Epoch calls — every
// worker materializes its own trials' epochs. The built-in schedules are:
// they hold only immutable construction state and derive randomness
// statelessly per call.
package engine

import (
	"context"
	"fmt"

	"dualgraph/internal/graph"
	"dualgraph/internal/metrics"
	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

// RunManyScheduleContext executes trials independent dynamic runs of one
// (schedule, alg, adv, simCfg) combination. Trial i runs with sim seed
// SeedFor(simCfg.Seed, i); a static schedule makes it exactly
// RunManyContext. Cancellation follows MapContext's batch-granularity
// contract.
func RunManyScheduleContext(ctx context.Context, sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config, trials int, cfg Config) ([]*sim.Result, error) {
	return MapContext(ctx, trials, cfg, func(i int) (*sim.Result, error) {
		c := simCfg
		c.Seed = SeedFor(simCfg.Seed, i)
		return sim.RunDynamic(sched, alg, adv, c)
	})
}

// RunManySchedule is RunManyScheduleContext without cancellation
// (compatibility entry point).
func RunManySchedule(sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config, trials int, cfg Config) ([]*sim.Result, error) {
	return RunManyScheduleContext(context.Background(), sched, alg, adv, simCfg, trials, cfg)
}

// RunStreamScheduleContext is the memory-bounded dynamic sweep:
// RunStream's exact seed derivation and shard reduction over sim.RunDynamic
// executions, cancellable at shard granularity (see ReduceContext).
func RunStreamScheduleContext(ctx context.Context, sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config,
	trials int, cfg Config, sc StreamConfig) (*TrialSummary, error) {
	if _, err := stats.NewStream(sc.quantiles(), sc.ExactK); err != nil {
		return nil, err
	}
	return ReduceContext(ctx, trials, cfg,
		func(i int) (*sim.Result, error) {
			c := simCfg
			c.Seed = SeedFor(simCfg.Seed, i)
			return sim.RunDynamic(sched, alg, adv, c)
		},
		sc.newSummary,
		func(acc *TrialSummary, _ int, res *sim.Result) error {
			return acc.fold(res)
		},
		func(dst, src *TrialSummary) error {
			return dst.Merge(src)
		},
	)
}

// RunStreamScheduleFromContext is RunStreamScheduleContext with checkpoint
// hooks (see ReduceFromContext): shards in seed are restored instead of run,
// onShard observes each freshly completed shard, and the final summary is
// bit-identical to an uninterrupted RunStreamScheduleContext at any worker
// count on either side of the interruption.
func RunStreamScheduleFromContext(ctx context.Context, sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config,
	trials int, cfg Config, sc StreamConfig,
	seed map[int]*TrialSummary, onShard func(ShardState)) (*TrialSummary, error) {
	if _, err := stats.NewStream(sc.quantiles(), sc.ExactK); err != nil {
		return nil, err
	}
	var hook func(shard, lo, hi int, acc *TrialSummary)
	if onShard != nil {
		hook = func(shard, lo, hi int, acc *TrialSummary) {
			onShard(ShardState{Shard: shard, TrialLo: lo, TrialHi: hi, Summary: acc})
		}
	}
	return ReduceFromContext(ctx, trials, cfg, seed, hook,
		func(i int) (*sim.Result, error) {
			c := simCfg
			c.Seed = SeedFor(simCfg.Seed, i)
			return sim.RunDynamic(sched, alg, adv, c)
		},
		sc.newSummary,
		func(acc *TrialSummary, _ int, res *sim.Result) error {
			return acc.fold(res)
		},
		func(dst, src *TrialSummary) error {
			return dst.Merge(src)
		},
	)
}

// RunStreamFromContext is RunStreamScheduleFromContext over a static
// schedule: the checkpointable counterpart of RunStreamContext.
func RunStreamFromContext(ctx context.Context, net *graph.Dual, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config,
	trials int, cfg Config, sc StreamConfig,
	seed map[int]*TrialSummary, onShard func(ShardState)) (*TrialSummary, error) {
	return RunStreamScheduleFromContext(ctx, graph.Static(net), alg, adv, simCfg, trials, cfg, sc, seed, onShard)
}

// FoldShardContext executes the trials [lo, hi) of one cell sequentially in
// index order, folding each result into a fresh summary — exactly the
// per-shard inner loop of the streaming reducers, with the same
// SeedFor(cfg.Seed, i) derivation. A remote worker that runs a claimed
// (cell, shard) unit through FoldShardContext therefore produces an
// accumulator bit-identical to the one the local engine would have built,
// which is what makes coordinator/worker grids byte-equivalent to
// single-process runs. ctx is consulted between trials; cancellation
// abandons the shard (a claimed unit either completes or reports nothing).
func FoldShardContext(ctx context.Context, t Trial, lo, hi int, sc StreamConfig) (*TrialSummary, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("engine: bad trial range [%d, %d)", lo, hi)
	}
	if _, err := stats.NewStream(sc.quantiles(), sc.ExactK); err != nil {
		return nil, err
	}
	sched := t.schedule()
	acc := sc.newSummary()
	clock := newWorkerClock(metrics.Enabled())
	clock.beginUnit()
	for i := lo; i < hi; i++ {
		if err := ctx.Err(); err != nil {
			clock.abortUnit()
			clock.drain()
			return nil, fmt.Errorf("engine: %w", err)
		}
		c := t.Cfg
		c.Seed = SeedFor(t.Cfg.Seed, i)
		res, err := sim.RunDynamic(sched, t.Alg, t.Adv, c)
		if err == nil {
			err = acc.fold(res)
		}
		if err != nil {
			clock.abortUnit()
			clock.drain()
			return nil, fmt.Errorf("engine: trial %d: %w", i, err)
		}
	}
	clock.endUnit()
	clock.drain()
	if clock.on {
		mTrialsTotal.Add(int64(hi - lo))
		mShardsCompleted.Inc()
	}
	return acc, nil
}

// RunStreamSchedule is RunStreamScheduleContext without cancellation
// (compatibility entry point).
func RunStreamSchedule(sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config,
	trials int, cfg Config, sc StreamConfig) (*TrialSummary, error) {
	return RunStreamScheduleContext(context.Background(), sched, alg, adv, simCfg, trials, cfg, sc)
}

// schedule resolves a trial's schedule: the explicit one when set, else the
// static wrap of its fixed network.
func (t Trial) schedule() graph.Schedule {
	if t.Sched != nil {
		return t.Sched
	}
	return graph.Static(t.Net)
}

// Dynamic-network trial execution: the schedule-aware counterparts of
// RunMany and RunStream. Determinism is inherited rather than re-proven:
// trial i runs with sim seed SeedFor(baseSeed, i) exactly like the static
// entry points, and sim.RunDynamic derives every epoch's randomness from
// that trial seed alone (graph.EpochSeed), so a dynamic sweep is
// bit-identical at any worker count for the same reason a static one is.
//
// Schedule implementations must be safe for concurrent Epoch calls — every
// worker materializes its own trials' epochs. The built-in schedules are:
// they hold only immutable construction state and derive randomness
// statelessly per call.
package engine

import (
	"context"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

// RunManyScheduleContext executes trials independent dynamic runs of one
// (schedule, alg, adv, simCfg) combination. Trial i runs with sim seed
// SeedFor(simCfg.Seed, i); a static schedule makes it exactly
// RunManyContext. Cancellation follows MapContext's batch-granularity
// contract.
func RunManyScheduleContext(ctx context.Context, sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config, trials int, cfg Config) ([]*sim.Result, error) {
	return MapContext(ctx, trials, cfg, func(i int) (*sim.Result, error) {
		c := simCfg
		c.Seed = SeedFor(simCfg.Seed, i)
		return sim.RunDynamic(sched, alg, adv, c)
	})
}

// RunManySchedule is RunManyScheduleContext without cancellation
// (compatibility entry point).
func RunManySchedule(sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config, trials int, cfg Config) ([]*sim.Result, error) {
	return RunManyScheduleContext(context.Background(), sched, alg, adv, simCfg, trials, cfg)
}

// RunStreamScheduleContext is the memory-bounded dynamic sweep:
// RunStream's exact seed derivation and shard reduction over sim.RunDynamic
// executions, cancellable at shard granularity (see ReduceContext).
func RunStreamScheduleContext(ctx context.Context, sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config,
	trials int, cfg Config, sc StreamConfig) (*TrialSummary, error) {
	if _, err := stats.NewStream(sc.quantiles(), sc.ExactK); err != nil {
		return nil, err
	}
	return ReduceContext(ctx, trials, cfg,
		func(i int) (*sim.Result, error) {
			c := simCfg
			c.Seed = SeedFor(simCfg.Seed, i)
			return sim.RunDynamic(sched, alg, adv, c)
		},
		sc.newSummary,
		func(acc *TrialSummary, _ int, res *sim.Result) error {
			return acc.fold(res)
		},
		func(dst, src *TrialSummary) error {
			return dst.Merge(src)
		},
	)
}

// RunStreamSchedule is RunStreamScheduleContext without cancellation
// (compatibility entry point).
func RunStreamSchedule(sched graph.Schedule, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config,
	trials int, cfg Config, sc StreamConfig) (*TrialSummary, error) {
	return RunStreamScheduleContext(context.Background(), sched, alg, adv, simCfg, trials, cfg, sc)
}

// schedule resolves a trial's schedule: the explicit one when set, else the
// static wrap of its fixed network.
func (t Trial) schedule() graph.Schedule {
	if t.Sched != nil {
		return t.Sched
	}
	return graph.Static(t.Net)
}

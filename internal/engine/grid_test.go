package engine_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// gridCells builds a small heterogeneous grid: two topologies × two
// algorithms, each cell with its own sim config.
func gridCells(t testing.TB) []engine.Trial {
	t.Helper()
	cb, err := graph.CliqueBridge(9)
	if err != nil {
		t.Fatal(err)
	}
	line, err := graph.Line(9)
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.NewHarmonicForN(9, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	var cells []engine.Trial
	for _, net := range []*graph.Dual{cb, line} {
		for _, alg := range []sim.Algorithm{h, core.NewRoundRobin()} {
			cells = append(cells, engine.Trial{
				Net: net, Alg: alg, Adv: adversary.GreedyCollider{},
				Cfg: sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 5},
			})
		}
	}
	return cells
}

// TestGridStreamMatchesPerCellRunStream is the grid determinism contract:
// every cell summary must be bit-identical (including P² marker state, via
// DeepEqual) to running that cell alone through RunStream, and identical at
// any worker count of the grid call.
func TestGridStreamMatchesPerCellRunStream(t *testing.T) {
	cells := gridCells(t)
	const trials = 12
	var ref []*engine.TrialSummary
	for _, cell := range cells {
		sum, err := engine.RunStream(cell.Net, cell.Alg, cell.Adv, cell.Cfg, trials,
			engine.Config{Workers: 1}, engine.StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, sum)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := engine.RunGridStream(cells, trials, engine.Config{Workers: workers}, engine.StreamConfig{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(cells) {
			t.Fatalf("workers=%d: %d summaries for %d cells", workers, len(got), len(cells))
		}
		for c := range cells {
			if !reflect.DeepEqual(got[c], ref[c]) {
				t.Errorf("workers=%d cell %d: grid summary differs from standalone RunStream", workers, c)
			}
		}
	}
}

func TestGridStreamEdgeCases(t *testing.T) {
	if sums, err := engine.RunGridStream(nil, 5, engine.Config{}, engine.StreamConfig{}); err != nil || len(sums) != 0 {
		t.Fatalf("empty grid: sums=%v err=%v", sums, err)
	}
	cells := gridCells(t)
	sums, err := engine.RunGridStream(cells, 0, engine.Config{}, engine.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range sums {
		if s == nil || s.Trials != 0 {
			t.Fatalf("cell %d: zero-trial summary = %+v", c, s)
		}
	}
	if _, err := engine.RunGridStream(cells, -1, engine.Config{}, engine.StreamConfig{}); err == nil {
		t.Fatal("negative trials must fail")
	}
}

// badAdv fails delivery validation from a specific cell onward, so the
// reported error index is predictable.
type badAdv struct{ adversary.Benign }

func (badAdv) Name() string { return "bad" }

func (badAdv) Deliver(v *sim.View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	// Deliver along a non-edge: every node to itself.
	m := map[graph.NodeID][]graph.NodeID{}
	for _, s := range senders {
		m[s] = []graph.NodeID{s}
	}
	return m
}

func TestGridStreamReportsLowestCellError(t *testing.T) {
	line, err := graph.Line(6)
	if err != nil {
		t.Fatal(err)
	}
	good := engine.Trial{Net: line, Alg: core.NewRoundRobin(), Adv: adversary.Benign{},
		Cfg: sim.Config{Rule: sim.CR3, Start: sim.SyncStart, Seed: 1}}
	bad := good
	bad.Adv = badAdv{}
	_, err = engine.RunGridStream([]engine.Trial{good, bad, bad}, 4, engine.Config{Workers: 4}, engine.StreamConfig{})
	if err == nil || !errors.Is(err, sim.ErrBadDelivery) {
		t.Fatalf("err = %v, want ErrBadDelivery", err)
	}
	const want = "cell 1 trial 0"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Fatalf("err = %q, want it to name %q", got, want)
	}
}

package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// testCell builds one small runnable trial cell.
func testCell(t *testing.T, seed int64) Trial {
	t.Helper()
	net, err := graph.CliqueBridge(9)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(net.N(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	return Trial{
		Net: net,
		Alg: alg,
		Adv: adversary.GreedyCollider{},
		Cfg: sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: seed},
	}
}

// A pre-cancelled context must stop every entry point before (or at) the
// first claim boundary and surface context.Canceled through errors.Is.
func TestContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cell := testCell(t, 1)

	if _, err := MapContext(ctx, 100, Config{Workers: 4}, func(i int) (int, error) { return i, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("MapContext: want context.Canceled, got %v", err)
	}
	if _, err := ReduceContext(ctx, 100, Config{Workers: 4},
		func(i int) (int, error) { return i, nil },
		func() *int { v := 0; return &v },
		func(acc *int, _ int, v int) error { *acc += v; return nil },
		func(dst, src *int) error { *dst += *src; return nil },
	); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReduceContext: want context.Canceled, got %v", err)
	}
	if _, err := RunManyContext(ctx, cell.Net, cell.Alg, cell.Adv, cell.Cfg, 50, Config{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunManyContext: want context.Canceled, got %v", err)
	}
	if _, err := RunStreamContext(ctx, cell.Net, cell.Alg, cell.Adv, cell.Cfg, 50, Config{Workers: 4}, StreamConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunStreamContext: want context.Canceled, got %v", err)
	}
	if _, err := RunGridStreamContext(ctx, []Trial{cell}, 50, Config{Workers: 4}, StreamConfig{}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunGridStreamContext: want context.Canceled, got %v", err)
	}
}

// Cancelling mid-run stops the grid without delivering incomplete cells:
// every summary handed to onCell must be byte-identical to the same cell's
// uninterrupted standalone RunStream.
func TestGridContextCancelDeliversOnlyCompleteCells(t *testing.T) {
	const trials = 64
	cells := []Trial{testCell(t, 1), testCell(t, 2), testCell(t, 3), testCell(t, 4)}

	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	delivered := map[int]*TrialSummary{}
	n := 0
	_, err := RunGridStreamContext(ctx, cells, trials, Config{Workers: 2}, StreamConfig{},
		func(c int, sum *TrialSummary) {
			mu.Lock()
			delivered[c] = sum
			n++
			if n == 1 {
				cancel() // cancel after the first completed cell
			}
			mu.Unlock()
		})
	defer cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(delivered) == 0 {
		t.Fatal("cancel fired from onCell, so at least one cell completed")
	}
	if len(delivered) == len(cells) {
		t.Log("all cells completed before the cancel took effect (tiny grid); delivery-equality still checked")
	}
	for c, got := range delivered {
		want, err := RunStream(cells[c].Net, cells[c].Alg, cells[c].Adv, cells[c].Cfg, trials, Config{Workers: 1}, StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Trials != want.Trials || got.Completed != want.Completed {
			t.Fatalf("cell %d: delivered summary (%d/%d) differs from standalone (%d/%d)",
				c, got.Completed, got.Trials, want.Completed, want.Trials)
		}
		gm, _ := got.Rounds.Mean()
		wm, _ := want.Rounds.Mean()
		if gm != wm {
			t.Fatalf("cell %d: delivered mean %v != standalone %v", c, gm, wm)
		}
	}
}

// onCell must fire exactly once per cell on an uninterrupted run, and the
// delivered summaries must be the returned ones.
func TestGridOnCellDeliversEveryCellOnce(t *testing.T) {
	cells := []Trial{testCell(t, 1), testCell(t, 2), testCell(t, 3)}
	var calls [3]atomic.Int32
	var got [3]*TrialSummary
	var mu sync.Mutex
	sums, err := RunGridStreamContext(context.Background(), cells, 10, Config{Workers: 4}, StreamConfig{},
		func(c int, sum *TrialSummary) {
			calls[c].Add(1)
			mu.Lock()
			got[c] = sum
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	for c := range cells {
		if n := calls[c].Load(); n != 1 {
			t.Fatalf("cell %d delivered %d times", c, n)
		}
		if got[c] != sums[c] {
			t.Fatalf("cell %d: onCell summary is not the returned summary", c)
		}
	}
}

// A trial error must still win over cancellation and be reported with the
// deterministic lowest (cell, trial) key.
func TestContextErrorPrecedence(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := MapContext(ctx, 8, Config{Workers: 1}, func(i int) (int, error) {
		if i == 3 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the trial error to take precedence, got %v", err)
	}
}

// Engine instrumentation: process-wide instruments fed by the streaming
// reducers (Reduce, the grid runner, and the worker-mode shard fold). All
// recording happens at shard granularity — never inside the per-trial or
// per-round hot loops — so the cost is a handful of atomic operations per
// completed (cell, shard) unit, amortized over thousands of simulated
// rounds. Every site is gated on metrics.Enabled(), which is what lets
// BenchmarkMetricsOverhead measure the instrumented-vs-uninstrumented
// delta; results are observe-only either way (byte-identical outputs).
package engine

import (
	"strconv"
	"time"

	"dualgraph/internal/metrics"
)

var (
	mTrialsTotal = metrics.NewCounter("engine_trials_total",
		"Trials folded by the streaming reducers (recorded per completed shard).")
	mCellTrials = metrics.NewCounterVec("engine_cell_trials_total",
		"Trials folded per grid cell index; rate() gives per-cell trials/sec.", "cell")
	mShardsCompleted = metrics.NewCounter("engine_shards_completed_total",
		"Freshly folded (cell, shard) work units.")
	mShardsSeeded = metrics.NewCounter("engine_shards_seeded_total",
		"Work units restored from a checkpoint/seed map instead of being re-run.")
	mCellsCompleted = metrics.NewCounter("engine_cells_completed_total",
		"Grid cells whose shards all finished and merged.")
	mUnitsPending = metrics.NewGauge("engine_units_pending",
		"Work-queue depth: (cell, shard) units not yet folded across active streaming runs.")
	mWorkerBusy = metrics.NewFloatCounter("engine_worker_busy_seconds_total",
		"Pool-goroutine seconds spent folding shards.")
	mWorkerIdle = metrics.NewFloatCounter("engine_worker_idle_seconds_total",
		"Pool-goroutine seconds spent claiming, waiting, or draining rather than folding.")
	mShardDuration = metrics.NewHistogram("engine_shard_duration_seconds",
		"Wall time to fold one (cell, shard) unit.",
		[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60})
)

// workerClock accrues one pool goroutine's busy/idle split and flushes it to
// the counters when the goroutine drains. The zero value (disabled) makes
// every method a no-op, so the work loops carry no metrics branches of their
// own beyond constructing the clock.
type workerClock struct {
	on        bool
	wallStart time.Time
	busy      time.Duration
	unitStart time.Time
}

func newWorkerClock(on bool) workerClock {
	c := workerClock{on: on}
	if on {
		c.wallStart = time.Now()
	}
	return c
}

// beginUnit marks the start of one shard fold.
func (c *workerClock) beginUnit() {
	if c.on {
		c.unitStart = time.Now()
	}
}

// endUnit records one completed shard fold: its duration histogram sample
// and the busy-time accrual.
func (c *workerClock) endUnit() {
	if !c.on {
		return
	}
	d := time.Since(c.unitStart)
	c.busy += d
	mShardDuration.Observe(d.Seconds())
}

// abortUnit accrues busy time for a fold that ended in error or
// cancellation without recording a duration sample.
func (c *workerClock) abortUnit() {
	if c.on {
		c.busy += time.Since(c.unitStart)
	}
}

// drain flushes the goroutine's busy/idle split; call exactly once, when the
// work loop exits.
func (c *workerClock) drain() {
	if !c.on {
		return
	}
	wall := time.Since(c.wallStart)
	mWorkerBusy.Add(c.busy.Seconds())
	idle := wall - c.busy
	if idle > 0 {
		mWorkerIdle.Add(idle.Seconds())
	}
}

// cellLabel renders a cell index as its metric label value.
func cellLabel(c int) string { return strconv.Itoa(c) }

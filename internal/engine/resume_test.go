package engine_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dualgraph/internal/engine"
	"dualgraph/internal/stats"
)

// captureShards runs the grid once on one worker and returns every shard's
// serialized accumulator, keyed by unit. Marshalling happens inside the
// callback, before the engine can reuse the summary as a merge destination.
func captureShards(t *testing.T, cells []engine.Trial, trials int, sc engine.StreamConfig) (map[engine.ShardKey][]byte, []*engine.TrialSummary) {
	t.Helper()
	var mu sync.Mutex
	blobs := map[engine.ShardKey][]byte{}
	sums, err := engine.RunGridStreamFromContext(context.Background(), cells, trials,
		engine.Config{Workers: 1}, sc, nil,
		func(st engine.ShardState) {
			blob, err := st.Summary.MarshalBinary()
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			blobs[st.Key()] = blob
			mu.Unlock()
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return blobs, sums
}

// seedFromBlobs deserializes a subset of captured shards into a seed map.
func seedFromBlobs(t *testing.T, blobs map[engine.ShardKey][]byte, keep func(engine.ShardKey) bool) map[engine.ShardKey]*engine.TrialSummary {
	t.Helper()
	seed := map[engine.ShardKey]*engine.TrialSummary{}
	for k, blob := range blobs {
		if !keep(k) {
			continue
		}
		var sum engine.TrialSummary
		if err := sum.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		seed[k] = &sum
	}
	return seed
}

// TestGridStreamFromSeededMatchesFull is the resume contract at the engine
// layer: restoring any subset of shard accumulators from their serialized
// form and running only the remainder yields summaries bit-identical to the
// uninterrupted run — at any worker count.
func TestGridStreamFromSeededMatchesFull(t *testing.T) {
	cells := gridCells(t)
	const trials = 20
	sc := engine.StreamConfig{ExactK: 8}
	blobs, want := captureShards(t, cells, trials, sc)

	rng := rand.New(rand.NewSource(42))
	randomPick := map[engine.ShardKey]bool{}
	for k := range blobs {
		randomPick[k] = rng.Intn(2) == 0
	}
	subsets := map[string]func(engine.ShardKey) bool{
		"none":       func(engine.ShardKey) bool { return false },
		"all":        func(engine.ShardKey) bool { return true },
		"even":       func(k engine.ShardKey) bool { return (k.Cell+k.Shard)%2 == 0 },
		"first-cell": func(k engine.ShardKey) bool { return k.Cell == 0 },
		"random":     func(k engine.ShardKey) bool { return randomPick[k] },
	}
	for name, keep := range subsets {
		t.Run(name, func(t *testing.T) {
			seed := seedFromBlobs(t, blobs, keep)
			for _, workers := range []int{1, 2, 8} {
				var mu sync.Mutex
				fresh := map[engine.ShardKey]bool{}
				got, err := engine.RunGridStreamFromContext(context.Background(), cells, trials,
					engine.Config{Workers: workers}, sc, seedFromBlobs(t, blobs, keep),
					func(st engine.ShardState) {
						mu.Lock()
						fresh[st.Key()] = true
						mu.Unlock()
					}, nil)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				for c := range cells {
					a, err := want[c].MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					b, err := got[c].MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("workers=%d cell %d: seeded run diverged from full run", workers, c)
					}
				}
				for k := range seed {
					if fresh[k] {
						t.Fatalf("workers=%d: seeded unit %+v re-ran", workers, k)
					}
				}
				for k := range blobs {
					if _, seeded := seed[k]; !seeded && !fresh[k] {
						t.Fatalf("workers=%d: unit %+v neither seeded nor run", workers, k)
					}
				}
			}
		})
	}
}

// TestRunStreamFromSeededMatchesFull covers the single-cell entry point the
// same way: seed half the shards, expect bit-identical summaries.
func TestRunStreamFromSeededMatchesFull(t *testing.T) {
	cell := gridCells(t)[0]
	const trials = 30
	sc := engine.StreamConfig{ExactK: 8}
	var mu sync.Mutex
	blobs := map[int][]byte{}
	want, err := engine.RunStreamFromContext(context.Background(), cell.Net, cell.Alg, cell.Adv, cell.Cfg,
		trials, engine.Config{Workers: 1}, sc, nil,
		func(st engine.ShardState) {
			blob, err := st.Summary.MarshalBinary()
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			blobs[st.Shard] = blob
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		seedCopy := map[int]*engine.TrialSummary{}
		for s, blob := range blobs {
			if s%2 != 0 {
				continue
			}
			var sum engine.TrialSummary
			if err := sum.UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			seedCopy[s] = &sum
		}
		got, err := engine.RunStreamFromContext(context.Background(), cell.Net, cell.Alg, cell.Adv, cell.Cfg,
			trials, engine.Config{Workers: workers}, sc, seedCopy, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		a, _ := want.MarshalBinary()
		b, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("workers=%d: seeded stream diverged from full run", workers)
		}
	}
}

// TestFoldShardMatchesEngineShard: a worker that folds a claimed unit through
// FoldShardContext produces the exact accumulator the in-process engine
// built for the same unit — the coordinator/worker determinism premise.
func TestFoldShardMatchesEngineShard(t *testing.T) {
	cells := gridCells(t)
	const trials = 20
	sc := engine.StreamConfig{ExactK: 8}
	blobs, _ := captureShards(t, cells, trials, sc)
	if len(blobs) == 0 {
		t.Fatal("no shards captured")
	}
	for k, blob := range blobs {
		lo, hi := engine.ShardRange(trials, k.Shard)
		sum, err := engine.FoldShardContext(context.Background(), cells[k.Cell], lo, hi, sc)
		if err != nil {
			t.Fatalf("unit %+v: %v", k, err)
		}
		got, err := sum.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(blob, got) {
			t.Fatalf("unit %+v: FoldShardContext accumulator differs from engine shard", k)
		}
	}
}

// TestSeededUnitValidation: out-of-range seed keys are rejected up front.
func TestSeededUnitValidation(t *testing.T) {
	cells := gridCells(t)
	sc := engine.StreamConfig{}
	bad := map[engine.ShardKey]*engine.TrialSummary{{Cell: len(cells), Shard: 0}: nil}
	if _, err := engine.RunGridStreamFromContext(context.Background(), cells, 10,
		engine.Config{}, sc, bad, nil, nil); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	bad = map[engine.ShardKey]*engine.TrialSummary{{Cell: 0, Shard: engine.Shards(10)}: nil}
	if _, err := engine.RunGridStreamFromContext(context.Background(), cells, 10,
		engine.Config{}, sc, bad, nil, nil); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := engine.RunStreamFromContext(context.Background(), cells[0].Net, cells[0].Alg, cells[0].Adv,
		cells[0].Cfg, 10, engine.Config{}, sc, map[int]*engine.TrialSummary{-1: nil}, nil); err == nil {
		t.Fatal("negative stream shard accepted")
	}
}

// TestTrialSummaryCodec pins the engine-level wrapper: round trip, typed
// truncation rejection, and receiver preservation on error.
func TestTrialSummaryCodec(t *testing.T) {
	_, sums := captureShards(t, gridCells(t), 20, engine.StreamConfig{ExactK: 8})
	sum := sums[0]
	blob, err := sum.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out engine.TrialSummary
	if err := out.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum, &out) {
		t.Fatal("round trip lost state")
	}
	for cut := 0; cut < len(blob); cut++ {
		var tr engine.TrialSummary
		err := tr.UnmarshalBinary(blob[:cut])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded", cut, len(blob))
		}
		var version *stats.ErrEncodingVersion
		if !errors.Is(err, engine.ErrCorruptSummary) && !errors.Is(err, stats.ErrCorruptEncoding) && !errors.As(err, &version) {
			t.Fatalf("cut=%d: rejection is not typed: %v", cut, err)
		}
	}
	// Tally invariants: trial count must match the stream counts.
	var tampered engine.TrialSummary
	if err := tampered.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	tampered.Trials++
	bad, err := tampered.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var rej engine.TrialSummary
	if err := rej.UnmarshalBinary(bad); !errors.Is(err, engine.ErrCorruptSummary) {
		t.Fatalf("tally mismatch accepted: %v", err)
	}
	before := blob
	if err := out.UnmarshalBinary(blob[:8]); err == nil {
		t.Fatal("truncated decode succeeded")
	}
	after, err := out.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("failed unmarshal mutated the receiver")
	}
}

package engine

// White-box metric tests: the package's tests run sequentially (no
// t.Parallel anywhere in the repo), so exact before/after deltas on the
// package-global instruments are safe.

import (
	"context"
	"errors"
	"testing"

	"dualgraph/internal/metrics"
)

// reduceSum runs a trivial integer reduction of n trials and returns it.
func reduceSum(t *testing.T, n, workers int, seed map[int]*int) int {
	t.Helper()
	acc, err := ReduceFromContext(context.Background(), n, Config{Workers: workers},
		seed, nil,
		func(trial int) (int, error) { return trial, nil },
		func() *int { return new(int) },
		func(acc *int, _ int, v int) error { *acc += v; return nil },
		func(dst, src *int) error { *dst += *src; return nil })
	if err != nil {
		t.Fatal(err)
	}
	return *acc
}

func TestReduceMetricsDeltas(t *testing.T) {
	const n = 100 // below the cap: one shard per trial
	baseTrials := mTrialsTotal.Value()
	baseShards := mShardsCompleted.Value()
	baseSeeded := mShardsSeeded.Value()
	basePending := mUnitsPending.Value()
	baseBusy := mWorkerBusy.Value()
	baseDur := mShardDuration.Count()

	if got := reduceSum(t, n, 4, nil); got != n*(n-1)/2 {
		t.Fatalf("sum = %d", got)
	}

	if d := mTrialsTotal.Value() - baseTrials; d != n {
		t.Errorf("trials delta = %d, want %d", d, n)
	}
	if d := mShardsCompleted.Value() - baseShards; d != int64(Shards(n)) {
		t.Errorf("shards delta = %d, want %d", d, Shards(n))
	}
	if d := mShardsSeeded.Value() - baseSeeded; d != 0 {
		t.Errorf("seeded delta = %d, want 0", d)
	}
	if got := mUnitsPending.Value(); got != basePending {
		t.Errorf("pending gauge = %d, want baseline %d", got, basePending)
	}
	if mWorkerBusy.Value() <= baseBusy {
		t.Errorf("busy seconds did not advance")
	}
	if d := mShardDuration.Count() - baseDur; d != int64(Shards(n)) {
		t.Errorf("shard duration observations delta = %d, want %d", d, Shards(n))
	}
}

func TestReduceMetricsSeededSkips(t *testing.T) {
	const n = 50
	// Seed shards 0..9 with their true partial sums so the result is intact.
	seed := make(map[int]*int)
	for s := 0; s < 10; s++ {
		lo, hi := ShardRange(n, s)
		v := 0
		for i := lo; i < hi; i++ {
			v += i
		}
		seed[s] = &v
	}
	baseTrials := mTrialsTotal.Value()
	baseSeeded := mShardsSeeded.Value()
	basePending := mUnitsPending.Value()

	if got := reduceSum(t, n, 2, seed); got != n*(n-1)/2 {
		t.Fatalf("sum = %d", got)
	}
	// Shards here are one trial wide (n < cap), so 10 seeded shards skip
	// exactly 10 trials.
	if d := mTrialsTotal.Value() - baseTrials; d != n-10 {
		t.Errorf("trials delta = %d, want %d", d, n-10)
	}
	if d := mShardsSeeded.Value() - baseSeeded; d != 10 {
		t.Errorf("seeded delta = %d, want 10", d)
	}
	if got := mUnitsPending.Value(); got != basePending {
		t.Errorf("pending gauge = %d, want baseline %d", got, basePending)
	}
}

func TestReduceMetricsPendingDrainsOnError(t *testing.T) {
	basePending := mUnitsPending.Value()
	boom := errors.New("boom")
	_, err := ReduceContext(context.Background(), 64, Config{Workers: 4},
		func(trial int) (int, error) {
			if trial == 17 {
				return 0, boom
			}
			return trial, nil
		},
		func() *int { return new(int) },
		func(acc *int, _ int, v int) error { *acc += v; return nil },
		func(dst, src *int) error { *dst += *src; return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Abandoned units must leave the queue with the failed run.
	if got := mUnitsPending.Value(); got != basePending {
		t.Errorf("pending gauge = %d, want baseline %d after error", got, basePending)
	}
}

func TestReduceMetricsGateOff(t *testing.T) {
	metrics.SetEnabled(false)
	defer metrics.SetEnabled(true)
	baseTrials := mTrialsTotal.Value()
	baseShards := mShardsCompleted.Value()
	basePending := mUnitsPending.Value()

	if got := reduceSum(t, 40, 4, nil); got != 40*39/2 {
		t.Fatalf("sum = %d", got)
	}
	if mTrialsTotal.Value() != baseTrials || mShardsCompleted.Value() != baseShards {
		t.Errorf("counters advanced with the gate off")
	}
	if mUnitsPending.Value() != basePending {
		t.Errorf("pending gauge moved with the gate off")
	}
}

// Streaming reduction: the memory-bounded counterpart of Map. Where Map
// materializes one result per trial (O(trials) memory), Reduce folds every
// trial's result into a shard accumulator as soon as it is produced and
// merges the shard accumulators in shard-index order, so a million-trial
// sweep retains O(Shards(n)) accumulators and nothing else.
//
// Determinism extends Map's guarantee to aggregates: the trial→shard
// partition is a pure function of the trial count (never of the worker
// count), each shard folds its trials in index order, and the final merge
// walks shards in index order — so the reduced value is bit-identical at
// any worker count, including the floating-point rounding of mean/variance
// merges and the P² marker states.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dualgraph/internal/graph"
	"dualgraph/internal/metrics"
	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

// maxShards caps the number of accumulator shards. 256 keeps the merge and
// the retained memory trivial while still load-balancing up to 256 workers.
const maxShards = 256

// Shards returns the number of accumulator shards Reduce uses for n trials:
// min(n, 256). It is a pure function of n, which is what makes reduced
// aggregates independent of the worker count.
func Shards(n int) int {
	if n < maxShards {
		return n
	}
	return maxShards
}

// ShardRange returns the half-open trial range [lo, hi) of shard s in an
// n-trial reduction: the partition every streaming entry point uses, exposed
// so checkpoint files and coordinator/worker claims can name a shard's work
// without re-deriving it. Like Shards, it is a pure function of n.
func ShardRange(n, s int) (lo, hi int) {
	return shardBounds(n, Shards(n), s)
}

// shardBounds returns the half-open trial range [lo, hi) of shard s under
// the balanced contiguous partition of 0..n-1 into `shards` blocks.
func shardBounds(n, shards, s int) (lo, hi int) {
	size, rem := n/shards, n%shards
	lo = s*size + min(s, rem)
	hi = lo + size
	if s < rem {
		hi++
	}
	return lo, hi
}

// ReduceContext runs fn for every trial index 0..n-1 across the worker pool
// and folds the results into accumulators without retaining them: each
// shard (a contiguous block of trial indices, fixed by n alone) gets a
// fresh accumulator from newAcc, fold is called per trial in index order
// within its shard, and the shard accumulators are merged in shard-index
// order with merge(dst, src) — dst accumulates left to right, src is
// discarded. The reduced value is bit-identical at any worker count.
// n == 0 returns a fresh empty accumulator. On error ReduceContext reports
// the lowest-indexed failing trial (from fn or fold) and stops claiming new
// shards.
//
// Cancelling ctx stops the pool at shard granularity: a claimed shard runs
// to completion, no new shards are claimed, and ReduceContext returns
// ctx.Err() (wrapped). Shard completion keeps the fold order of everything
// that did run deterministic; a trial error takes precedence over
// cancellation in the returned error.
//
// fn and fold run concurrently across shards: fn must derive randomness
// from its trial index alone (typically via SeedFor), and fold must only
// touch its own accumulator. merge runs sequentially after all workers
// finish.
func ReduceContext[T, A any](
	ctx context.Context, n int, cfg Config,
	fn func(trial int) (T, error),
	newAcc func() A,
	fold func(acc A, trial int, value T) error,
	merge func(dst, src A) error,
) (A, error) {
	return ReduceFromContext(ctx, n, cfg, nil, nil, fn, newAcc, fold, merge)
}

// ReduceFromContext is ReduceContext with checkpoint hooks: shards listed in
// seed (keyed by shard index) are taken as already reduced — their
// accumulators enter the shard-order merge directly and their trials never
// run — and onShard, when non-nil, is called once per freshly completed
// shard with its index, trial range, and accumulator, before the final
// merge. Because the shard partition is a pure function of n and the merge
// always walks shards 0..Shards(n)-1 in order, the reduced value is
// bit-identical whether a shard's accumulator was just folded or restored
// from a serialized checkpoint — at any worker count on either side of the
// interruption.
//
// onShard calls come from worker goroutines, possibly concurrently for
// different shards; the callback must synchronize its own state (checkpoint
// writers take a lock). Seeded accumulators become part of the reduction:
// the caller must not retain or mutate them after the call starts, and merge
// may mutate the lowest-indexed one as the fold destination.
func ReduceFromContext[T, A any](
	ctx context.Context, n int, cfg Config,
	seed map[int]A,
	onShard func(shard, lo, hi int, acc A),
	fn func(trial int) (T, error),
	newAcc func() A,
	fold func(acc A, trial int, value T) error,
	merge func(dst, src A) error,
) (A, error) {
	var zero A
	if n < 0 {
		return zero, fmt.Errorf("engine: negative trial count %d", n)
	}
	shards := Shards(n)
	for s := range seed {
		if s < 0 || s >= shards {
			return zero, fmt.Errorf("engine: seeded shard %d outside 0..%d", s, shards-1)
		}
	}
	if n == 0 {
		return newAcc(), nil
	}
	accs := make([]A, shards)
	seeded := make([]bool, shards)
	for s, acc := range seed {
		accs[s] = acc
		seeded[s] = true
	}
	workers := cfg.workers()
	if workers > shards {
		workers = shards
	}

	// Instrumentation is observe-only and recorded at shard granularity; the
	// gate is read once so a mid-run toggle cannot unbalance the pending
	// gauge. len(seed) units never enter the pool.
	mOn := metrics.Enabled()
	var completedFresh atomic.Int64
	freshUnits := int64(shards - len(seed))
	if mOn {
		mShardsSeeded.Add(int64(len(seed)))
		mUnitsPending.Add(freshUnits)
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		firstEr trialError
	)
	// One code path for any worker count: the sequential case is the same
	// shard walk on a pool of one, so fold/merge rounding is identical.
	done := ctx.Done()
	work := func() {
		clock := newWorkerClock(mOn)
		defer clock.drain()
		for !failed.Load() {
			select {
			case <-done:
				return
			default:
			}
			s := int(next.Add(1)) - 1
			if s >= shards {
				return
			}
			if seeded[s] {
				continue
			}
			lo, hi := shardBounds(n, shards, s)
			acc := newAcc()
			ok := true
			clock.beginUnit()
			for i := lo; i < hi; i++ {
				v, err := fn(i)
				if err == nil {
					err = fold(acc, i, v)
				}
				if err != nil {
					firstEr.record(i, err)
					failed.Store(true)
					ok = false
					break
				}
			}
			if !ok {
				clock.abortUnit()
				continue
			}
			clock.endUnit()
			accs[s] = acc
			if mOn {
				mTrialsTotal.Add(int64(hi - lo))
				mShardsCompleted.Inc()
				mUnitsPending.Add(-1)
				completedFresh.Add(1)
			}
			if onShard != nil {
				lo, hi := shardBounds(n, shards, s)
				onShard(s, lo, hi, acc)
			}
		}
	}
	if workers == 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	if mOn {
		// Units abandoned by error or cancellation leave the queue with the
		// run; without this the pending gauge would leak on every failure.
		mUnitsPending.Add(completedFresh.Load() - freshUnits)
	}
	if err := firstEr.get(); err != nil {
		return zero, fmt.Errorf("engine: trial %d: %w", firstEr.index, err)
	}
	// Checked before merging: a cancelled run may have skipped shards, whose
	// accumulators were never created.
	if err := ctx.Err(); err != nil {
		return zero, fmt.Errorf("engine: %w", err)
	}
	dst := accs[0]
	for s := 1; s < shards; s++ {
		if err := merge(dst, accs[s]); err != nil {
			return zero, fmt.Errorf("engine: merge shard %d: %w", s, err)
		}
	}
	return dst, nil
}

// Reduce is ReduceContext without cancellation, kept as the compatibility
// entry point for callers that predate the context-first API.
func Reduce[T, A any](
	n int, cfg Config,
	fn func(trial int) (T, error),
	newAcc func() A,
	fold func(acc A, trial int, value T) error,
	merge func(dst, src A) error,
) (A, error) {
	return ReduceContext(context.Background(), n, cfg, fn, newAcc, fold, merge)
}

// StreamConfig parameterizes the summary statistics RunStream tracks.
type StreamConfig struct {
	// Quantiles are the tracked targets; nil means 0.5, 0.9, 0.95, 0.99.
	Quantiles []float64
	// ExactK is the per-accumulator exact-until-K spill threshold passed to
	// stats.NewStream; <= 0 uses stats.DefaultExactK.
	ExactK int
}

func (sc StreamConfig) quantiles() []float64 {
	if len(sc.Quantiles) > 0 {
		return sc.Quantiles
	}
	return []float64{0.5, 0.9, 0.95, 0.99}
}

// TrialSummary is the streaming aggregate of a Monte Carlo sweep: exact
// trial/completion counts plus mergeable summaries of rounds and
// transmissions (see stats.Stream for the accuracy contract).
type TrialSummary struct {
	// Trials counts the executions folded in.
	Trials int64
	// Completed counts executions in which every process received the
	// message.
	Completed int64
	// Rounds summarizes Result.Rounds across trials.
	Rounds *stats.Stream
	// Transmissions summarizes Result.Transmissions across trials.
	Transmissions *stats.Stream
}

func (sc StreamConfig) newSummary() *TrialSummary {
	rounds, _ := stats.NewStream(sc.quantiles(), sc.ExactK)
	tx, _ := stats.NewStream(sc.quantiles(), sc.ExactK)
	return &TrialSummary{Rounds: rounds, Transmissions: tx}
}

// NewSummary returns an empty accumulator built with this configuration —
// the same constructor the streaming reducers use per shard, exported so
// out-of-engine consumers (the progress tracker) can Merge onShard
// summaries into a configuration-compatible destination.
func (sc StreamConfig) NewSummary() *TrialSummary { return sc.newSummary() }

// fold adds one execution to the summary.
func (t *TrialSummary) fold(res *sim.Result) error {
	t.Trials++
	if res.Completed {
		t.Completed++
	}
	if err := t.Rounds.Add(float64(res.Rounds)); err != nil {
		return err
	}
	return t.Transmissions.Add(float64(res.Transmissions))
}

// Merge folds another summary into t (src unchanged).
func (t *TrialSummary) Merge(src *TrialSummary) error {
	t.Trials += src.Trials
	t.Completed += src.Completed
	if err := t.Rounds.Merge(src.Rounds); err != nil {
		return err
	}
	return t.Transmissions.Merge(src.Transmissions)
}

// RunStreamContext is the memory-bounded counterpart of RunMany: it
// executes `trials` independent runs of one (net, alg, adv, simCfg)
// combination with the same per-trial seed derivation —
// SeedFor(simCfg.Seed, i) — but folds each sim.Result into shard
// accumulators instead of retaining it, so RSS stays O(Shards(trials)) no
// matter how many trials run. The summary is bit-identical at any worker
// count; its relation to the RunMany slice path is exact for
// counts/min/max, exact up to floating-point rounding for mean/variance,
// and within P² tolerance for quantiles once the trial count exceeds
// sc.ExactK (below that, quantiles are exact too). Cancellation follows
// ReduceContext's shard-granularity contract.
// It is exactly RunStreamScheduleContext over a static schedule.
func RunStreamContext(ctx context.Context, net *graph.Dual, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config,
	trials int, cfg Config, sc StreamConfig) (*TrialSummary, error) {
	return RunStreamScheduleContext(ctx, graph.Static(net), alg, adv, simCfg, trials, cfg, sc)
}

// RunStream is RunStreamContext without cancellation (compatibility entry
// point).
func RunStream(net *graph.Dual, alg sim.Algorithm, adv sim.Adversary, simCfg sim.Config,
	trials int, cfg Config, sc StreamConfig) (*TrialSummary, error) {
	return RunStreamContext(context.Background(), net, alg, adv, simCfg, trials, cfg, sc)
}

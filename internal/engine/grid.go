// Grid execution: many (network, algorithm, adversary, config) cells, each
// streamed over many trials, all sharing one worker pool. The unit of
// parallelism is a (cell, shard) pair — finer than a cell — so a grid
// parallelizes across cells and inside them at the same time: two cells
// saturate an 8-way pool, and so does one cell with enough trials.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dualgraph/internal/metrics"
	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

// RunGridStreamContext executes trials independent runs of every cell,
// folding each cell's results into its own streaming TrialSummary, and
// returns the summaries indexed like cells. Cell c's trial i runs with sim
// seed SeedFor(cells[c].Cfg.Seed, i) — exactly the derivation RunStream
// applies to a single cell — and each cell's shard accumulators are built
// over the same shard partition and merged in the same shard order, so
// every returned summary is bit-identical to RunStream of that cell alone,
// at any worker count of either call.
//
// Cells with a Sched run dynamically (sim.RunDynamic) under the same
// derivation — epoch randomness is a pure function of each trial's seed —
// so dynamic grids keep the bit-identical-at-any-worker-count guarantee.
//
// Work is fanned out at (cell, shard) granularity over one pool: with C
// cells and S = Shards(trials) shards there are C·S independent units, so
// the pool stays busy whether the grid is wide (many cells) or deep (many
// trials). On error the lowest (cell, trial) pair in lexicographic order is
// reported.
//
// onCell, when non-nil, is invoked once per cell the moment the cell's last
// shard finishes and its shards have been merged — i.e. while other cells
// are still running — with the cell index and its final summary. Calls come
// from worker goroutines, possibly concurrently for different cells and in
// nondeterministic cell order; each cell's summary value is nevertheless
// deterministic. Cells that never complete (error or cancellation) get no
// call, so everything a caller saw through onCell is final and would be
// byte-identical in an uninterrupted run.
//
// Cancelling ctx stops the pool at (cell, shard) granularity: claimed
// shards finish, nothing new is claimed, and the call returns ctx.Err()
// (wrapped). Completed cells have already been delivered through onCell.
func RunGridStreamContext(ctx context.Context, cells []Trial, trials int, cfg Config, sc StreamConfig,
	onCell func(cell int, sum *TrialSummary)) ([]*TrialSummary, error) {
	return RunGridStreamFromContext(ctx, cells, trials, cfg, sc, nil, nil, onCell)
}

// ShardKey names one (cell, shard) work unit of a grid run: cell indexes the
// cells slice, shard indexes the Shards(trials) partition. It is the key of
// checkpoint records and coordinator/worker claims.
type ShardKey struct {
	Cell  int
	Shard int
}

// ShardState is one completed work unit: the shard's identity, its trial
// range under ShardRange, and the accumulator folded over exactly those
// trials. onShard callbacks receive it the moment the shard completes; the
// Summary must be consumed (typically serialized) during the callback,
// because the engine may later mutate it as a merge destination. The
// single-cell stream entry points report Cell as 0.
type ShardState struct {
	Cell    int
	Shard   int
	TrialLo int
	TrialHi int
	Summary *TrialSummary
}

// Key returns the shard's ShardKey.
func (s ShardState) Key() ShardKey { return ShardKey{Cell: s.Cell, Shard: s.Shard} }

// RunGridStreamFromContext is RunGridStreamContext with checkpoint hooks.
// Units listed in seed are taken as already reduced: their accumulators
// enter the cell's shard-order merge directly and their trials never run.
// onShard, when non-nil, observes every freshly completed unit (never a
// seeded one) from worker goroutines, possibly concurrently; the callback
// must synchronize its own state. Because the shard partition and the merge
// order are pure functions of the trial count, the returned summaries are
// bit-identical whether a unit was just folded or restored from a serialized
// checkpoint — at any worker count on either side of the interruption.
//
// Cells whose every shard is seeded are merged and delivered through onCell
// before the pool starts, in cell-index order. Seeded accumulators become
// part of the reduction: the caller must not retain or mutate them after the
// call starts.
func RunGridStreamFromContext(ctx context.Context, cells []Trial, trials int, cfg Config, sc StreamConfig,
	seed map[ShardKey]*TrialSummary, onShard func(ShardState),
	onCell func(cell int, sum *TrialSummary)) ([]*TrialSummary, error) {
	if trials < 0 {
		return nil, fmt.Errorf("engine: negative trial count %d", trials)
	}
	if _, err := stats.NewStream(sc.quantiles(), sc.ExactK); err != nil {
		return nil, err
	}
	shards := Shards(trials)
	for k := range seed {
		if k.Cell < 0 || k.Cell >= len(cells) || k.Shard < 0 || k.Shard >= shards {
			return nil, fmt.Errorf("engine: seeded unit (cell %d, shard %d) outside %d cells × %d shards",
				k.Cell, k.Shard, len(cells), shards)
		}
	}
	summaries := make([]*TrialSummary, len(cells))
	if len(cells) == 0 {
		return summaries, nil
	}
	if trials == 0 {
		for c := range summaries {
			summaries[c] = sc.newSummary()
			if onCell != nil {
				onCell(c, summaries[c])
			}
		}
		return summaries, nil
	}

	units := len(cells) * shards
	accs := make([]*TrialSummary, units)
	// remaining[c] counts the cell's unfinished shards; the worker that
	// drops it to zero owns the (deterministic, shard-ordered) merge and the
	// onCell delivery. Failed shards never decrement, so a failing cell is
	// never delivered.
	remaining := make([]atomic.Int32, len(cells))
	for c := range remaining {
		remaining[c].Store(int32(shards))
	}
	for k, sum := range seed {
		accs[k.Cell*shards+k.Shard] = sum
		remaining[k.Cell].Add(-1)
	}
	// Fully seeded cells never enter the pool: merge and deliver them now, in
	// cell-index order, exactly as their last worker would have.
	seededCells := 0
	for c := range cells {
		if remaining[c].Load() != 0 {
			continue
		}
		seededCells++
		dst := accs[c*shards]
		for t := 1; t < shards; t++ {
			if err := dst.Merge(accs[c*shards+t]); err != nil {
				return nil, fmt.Errorf("engine: cell %d merge: %w", c, err)
			}
		}
		summaries[c] = dst
		if onCell != nil {
			onCell(c, dst)
		}
	}
	var mergeEr trialError
	workers := cfg.workers()
	if workers > units {
		workers = units
	}

	// Instrumentation is observe-only and recorded at unit granularity; the
	// gate is read once so a mid-run toggle cannot unbalance the pending
	// gauge. Seeded units never enter the pool, so they never count as
	// pending.
	mOn := metrics.Enabled()
	var completedFresh atomic.Int64
	freshUnits := int64(units - len(seed))
	if mOn {
		mShardsSeeded.Add(int64(len(seed)))
		mUnitsPending.Add(freshUnits)
		mCellsCompleted.Add(int64(seededCells))
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		firstEr trialError
	)
	// One code path at any worker count (same rationale as Reduce): the
	// sequential case is the same unit walk on a pool of one.
	done := ctx.Done()
	work := func() {
		clock := newWorkerClock(mOn)
		defer clock.drain()
		for !failed.Load() {
			select {
			case <-done:
				return
			default:
			}
			u := int(next.Add(1)) - 1
			if u >= units {
				return
			}
			if accs[u] != nil {
				// Seeded unit: its accumulator is already in place and its
				// cell's countdown was decremented upfront.
				continue
			}
			c, s := u/shards, u%shards
			cell := cells[c]
			sched := cell.schedule()
			lo, hi := shardBounds(trials, shards, s)
			acc := sc.newSummary()
			shardErr := false
			clock.beginUnit()
			for i := lo; i < hi; i++ {
				simCfg := cell.Cfg
				simCfg.Seed = SeedFor(cell.Cfg.Seed, i)
				res, err := sim.RunDynamic(sched, cell.Alg, cell.Adv, simCfg)
				if err == nil {
					err = acc.fold(res)
				}
				if err != nil {
					// Global order key: all trials of cell c sort before any
					// trial of cell c+1.
					firstEr.record(c*trials+i, err)
					failed.Store(true)
					shardErr = true
					break
				}
			}
			if shardErr {
				clock.abortUnit()
				break
			}
			clock.endUnit()
			accs[u] = acc
			if mOn {
				mTrialsTotal.Add(int64(hi - lo))
				mCellTrials.With(cellLabel(c)).Add(int64(hi - lo))
				mShardsCompleted.Inc()
				mUnitsPending.Add(-1)
				completedFresh.Add(1)
			}
			if onShard != nil {
				onShard(ShardState{Cell: c, Shard: s, TrialLo: lo, TrialHi: hi, Summary: acc})
			}
			if remaining[c].Add(-1) == 0 {
				// Last shard of the cell: merge in shard-index order — the
				// same order the post-hoc merge used to run in, so the
				// summary is byte-identical to the cell's standalone
				// RunStream — and hand the finished cell to the caller.
				dst := accs[c*shards]
				for t := 1; t < shards; t++ {
					if err := dst.Merge(accs[c*shards+t]); err != nil {
						mergeEr.record(c, err)
						failed.Store(true)
						return
					}
				}
				summaries[c] = dst
				if mOn {
					mCellsCompleted.Inc()
				}
				if onCell != nil {
					onCell(c, dst)
				}
			}
		}
	}
	if workers == 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	if mOn {
		// Units abandoned by error or cancellation leave the queue with the
		// run; without this the pending gauge would leak on every failure.
		mUnitsPending.Add(completedFresh.Load() - freshUnits)
	}
	if err := firstEr.get(); err != nil {
		c, i := firstEr.index/trials, firstEr.index%trials
		return nil, fmt.Errorf("engine: cell %d trial %d: %w", c, i, err)
	}
	if err := mergeEr.get(); err != nil {
		return nil, fmt.Errorf("engine: cell %d merge: %w", mergeEr.index, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return summaries, nil
}

// RunGridStream is RunGridStreamContext without cancellation or per-cell
// delivery, kept as the compatibility entry point for callers that predate
// the context-first API.
func RunGridStream(cells []Trial, trials int, cfg Config, sc StreamConfig) ([]*TrialSummary, error) {
	return RunGridStreamContext(context.Background(), cells, trials, cfg, sc, nil)
}

// Grid execution: many (network, algorithm, adversary, config) cells, each
// streamed over many trials, all sharing one worker pool. The unit of
// parallelism is a (cell, shard) pair — finer than a cell — so a grid
// parallelizes across cells and inside them at the same time: two cells
// saturate an 8-way pool, and so does one cell with enough trials.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dualgraph/internal/sim"
	"dualgraph/internal/stats"
)

// RunGridStream executes trials independent runs of every cell, folding each
// cell's results into its own streaming TrialSummary, and returns the
// summaries indexed like cells. Cell c's trial i runs with sim seed
// SeedFor(cells[c].Cfg.Seed, i) — exactly the derivation RunStream applies
// to a single cell — and each cell's shard accumulators are built over the
// same shard partition and merged in the same shard order, so every
// returned summary is bit-identical to RunStream of that cell alone, at any
// worker count of either call.
//
// Cells with a Sched run dynamically (sim.RunDynamic) under the same
// derivation — epoch randomness is a pure function of each trial's seed —
// so dynamic grids keep the bit-identical-at-any-worker-count guarantee.
//
// Work is fanned out at (cell, shard) granularity over one pool: with C
// cells and S = Shards(trials) shards there are C·S independent units, so
// the pool stays busy whether the grid is wide (many cells) or deep (many
// trials). On error the lowest (cell, trial) pair in lexicographic order is
// reported.
func RunGridStream(cells []Trial, trials int, cfg Config, sc StreamConfig) ([]*TrialSummary, error) {
	if trials < 0 {
		return nil, fmt.Errorf("engine: negative trial count %d", trials)
	}
	if _, err := stats.NewStream(sc.quantiles(), sc.ExactK); err != nil {
		return nil, err
	}
	summaries := make([]*TrialSummary, len(cells))
	if len(cells) == 0 {
		return summaries, nil
	}
	if trials == 0 {
		for c := range summaries {
			summaries[c] = sc.newSummary()
		}
		return summaries, nil
	}

	shards := Shards(trials)
	units := len(cells) * shards
	accs := make([]*TrialSummary, units)
	workers := cfg.workers()
	if workers > units {
		workers = units
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		firstEr trialError
	)
	// One code path at any worker count (same rationale as Reduce): the
	// sequential case is the same unit walk on a pool of one.
	work := func() {
		for !failed.Load() {
			u := int(next.Add(1)) - 1
			if u >= units {
				return
			}
			c, s := u/shards, u%shards
			cell := cells[c]
			sched := cell.schedule()
			lo, hi := shardBounds(trials, shards, s)
			acc := sc.newSummary()
			for i := lo; i < hi; i++ {
				simCfg := cell.Cfg
				simCfg.Seed = SeedFor(cell.Cfg.Seed, i)
				res, err := sim.RunDynamic(sched, cell.Alg, cell.Adv, simCfg)
				if err == nil {
					err = acc.fold(res)
				}
				if err != nil {
					// Global order key: all trials of cell c sort before any
					// trial of cell c+1.
					firstEr.record(c*trials+i, err)
					failed.Store(true)
					break
				}
			}
			accs[u] = acc
		}
	}
	if workers == 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	if err := firstEr.get(); err != nil {
		c, i := firstEr.index/trials, firstEr.index%trials
		return nil, fmt.Errorf("engine: cell %d trial %d: %w", c, i, err)
	}
	for c := range cells {
		dst := accs[c*shards]
		for s := 1; s < shards; s++ {
			if err := dst.Merge(accs[c*shards+s]); err != nil {
				return nil, fmt.Errorf("engine: cell %d merge shard %d: %w", c, s, err)
			}
		}
		summaries[c] = dst
	}
	return summaries, nil
}

package engine_test

import (
	"math/rand"
	"reflect"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

func dynamicFixture(t *testing.T) (graph.Schedule, *graph.Dual, sim.Algorithm, sim.Adversary, sim.Config) {
	t.Helper()
	base, err := graph.RandomDual(18, 0.25, 0.4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := graph.NewChurn(base, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(18, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	return sched, base, alg, adversary.GreedyCollider{}, sim.Config{Seed: 21}
}

// TestRunManyScheduleWorkerInvariance: dynamic sweeps inherit the engine's
// bit-identical-at-any-worker-count guarantee, because each trial's epoch
// randomness is a pure function of its derived trial seed.
func TestRunManyScheduleWorkerInvariance(t *testing.T) {
	sched, _, alg, adv, cfg := dynamicFixture(t)
	const trials = 24
	var want []*sim.Result
	for _, workers := range []int{1, 2, 3, 8} {
		got, err := engine.RunManySchedule(sched, alg, adv, cfg, trials, engine.Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d results differ from workers=1", workers)
		}
	}
	completed := 0
	for _, r := range want {
		if r.Completed {
			completed++
		}
	}
	if completed != trials {
		t.Fatalf("only %d/%d dynamic trials completed", completed, trials)
	}
}

// TestRunStreamScheduleMatchesSlicePath: the streamed dynamic aggregate must
// agree with the materialized RunManySchedule results (exact in the
// small-count regime) and be worker-invariant including P² marker state.
func TestRunStreamScheduleMatchesSlicePath(t *testing.T) {
	sched, _, alg, adv, cfg := dynamicFixture(t)
	const trials = 32
	results, err := engine.RunManySchedule(sched, alg, adv, cfg, trials, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var want *engine.TrialSummary
	for _, workers := range []int{1, 2, 8} {
		sum, err := engine.RunStreamSchedule(sched, alg, adv, cfg, trials, engine.Config{Workers: workers}, engine.StreamConfig{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = sum
			if sum.Trials != trials {
				t.Fatalf("summary trials = %d, want %d", sum.Trials, trials)
			}
			minR, err := sum.Rounds.Min()
			if err != nil {
				t.Fatal(err)
			}
			maxR, err := sum.Rounds.Max()
			if err != nil {
				t.Fatal(err)
			}
			gotMin, gotMax := results[0].Rounds, results[0].Rounds
			for _, r := range results {
				gotMin = min(gotMin, r.Rounds)
				gotMax = max(gotMax, r.Rounds)
			}
			if int(minR) != gotMin || int(maxR) != gotMax {
				t.Fatalf("stream min/max = %v/%v, slice path %d/%d", minR, maxR, gotMin, gotMax)
			}
			continue
		}
		if !reflect.DeepEqual(sum, want) {
			t.Fatalf("workers=%d summary differs from workers=1", workers)
		}
	}
}

// TestGridStreamDynamicCellEqualsStandalone: a grid mixing static and
// dynamic cells must reproduce, per cell, exactly the standalone
// RunStreamSchedule summary at any worker count.
func TestGridStreamDynamicCellEqualsStandalone(t *testing.T) {
	sched, base, alg, adv, cfg := dynamicFixture(t)
	const trials = 16
	cells := []engine.Trial{
		{Net: base, Alg: alg, Adv: adv, Cfg: cfg},
		{Net: base, Sched: sched, Alg: alg, Adv: adv, Cfg: cfg},
	}
	standaloneStatic, err := engine.RunStream(base, alg, adv, cfg, trials, engine.Config{}, engine.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	standaloneDyn, err := engine.RunStreamSchedule(sched, alg, adv, cfg, trials, engine.Config{}, engine.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		sums, err := engine.RunGridStream(cells, trials, engine.Config{Workers: workers}, engine.StreamConfig{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(sums[0], standaloneStatic) {
			t.Fatalf("workers=%d static cell differs from standalone RunStream", workers)
		}
		if !reflect.DeepEqual(sums[1], standaloneDyn) {
			t.Fatalf("workers=%d dynamic cell differs from standalone RunStreamSchedule", workers)
		}
	}
	// The static and dynamic cells genuinely differ (the schedule is doing
	// something).
	if reflect.DeepEqual(standaloneStatic, standaloneDyn) {
		t.Fatal("churn cell is identical to the static cell; dynamics not applied")
	}
}

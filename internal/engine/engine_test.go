package engine_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

func TestSeedFor(t *testing.T) {
	if engine.SeedFor(7, 3) != engine.SeedFor(7, 3) {
		t.Fatal("SeedFor must be a pure function of (base, trial)")
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := engine.SeedFor(424242, i)
		if seen[s] {
			t.Fatalf("seed collision at trial %d", i)
		}
		seen[s] = true
	}
}

// TestSeedForDecorrelatesBaseSeeds is the regression test for the naive
// base^trial derivation, under which two nearby base seeds produced the
// exact same multiset of trial seeds (merely permuted) and cross-seed
// replications were not independent.
func TestSeedForDecorrelatesBaseSeeds(t *testing.T) {
	const trials = 64
	setOf := func(base int64) map[int64]bool {
		s := map[int64]bool{}
		for i := 0; i < trials; i++ {
			s[engine.SeedFor(base, i)] = true
		}
		return s
	}
	a, b := setOf(5), setOf(37)
	overlap := 0
	for s := range a {
		if b[s] {
			overlap++
		}
	}
	if overlap > 0 {
		t.Fatalf("base seeds 5 and 37 share %d of %d trial seeds; replications must be independent", overlap, trials)
	}
}

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		res, err := engine.Map(100, engine.Config{Workers: workers}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestMapZeroTrials(t *testing.T) {
	res, err := engine.Map(0, engine.Config{}, func(int) (int, error) { return 0, nil })
	if err != nil || len(res) != 0 {
		t.Fatalf("zero trials: res=%v err=%v", res, err)
	}
}

func TestMapNegativeTrials(t *testing.T) {
	if _, err := engine.Map(-1, engine.Config{}, func(int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative trial count must error")
	}
}

var errBoom = errors.New("boom")

func TestMapReportsLowestIndexError(t *testing.T) {
	// Several trials fail; the reported error must be trial 13's regardless
	// of worker count or scheduling.
	for _, workers := range []int{1, 2, 8} {
		_, err := engine.Map(64, engine.Config{Workers: workers, Batch: 1}, func(i int) (int, error) {
			if i == 13 || i == 40 || i == 63 {
				return 0, fmt.Errorf("%w at %d", errBoom, i)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: want errBoom, got %v", workers, err)
		}
		if !strings.Contains(err.Error(), "trial 13") {
			t.Fatalf("workers=%d: error %q must name the lowest failing trial", workers, err)
		}
	}
}

func TestMapStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	_, err := engine.Map(10000, engine.Config{Workers: 4, Batch: 1}, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errBoom
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n == 10000 {
		t.Fatal("engine must stop claiming batches after a failure")
	}
}

// resultKey flattens the fields of a sim.Result that must match exactly.
func resultKey(r *sim.Result) string {
	return fmt.Sprintf("%v/%d/%d/%v/%v", r.Completed, r.Rounds, r.Transmissions, r.FirstReceive, r.SendersByRound)
}

// TestRunManyDeterministicAcrossWorkerCounts is the engine's core guarantee:
// the same base seed produces identical Results with 1 worker and with N
// workers, for a randomized algorithm against a stochastic adversary.
func TestRunManyDeterministicAcrossWorkerCounts(t *testing.T) {
	d, err := graph.CliqueBridge(21)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(21, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewRandom(0.4)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 321, RecordSenders: true}
	const trials = 24

	var ref []*sim.Result
	for _, workers := range []int{1, 2, 3, 8, 24} {
		res, err := engine.RunMany(d, alg, adv, simCfg, trials, engine.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != trials {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(res), trials)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res {
			if !reflect.DeepEqual(res[i], ref[i]) {
				t.Fatalf("workers=%d: trial %d diverged:\n got %s\nwant %s",
					workers, i, resultKey(res[i]), resultKey(ref[i]))
			}
		}
	}
}

// TestRunManyMatchesSequentialSimRuns checks the engine against a plain
// sequential loop over sim.Run with the documented seed derivation.
func TestRunManyMatchesSequentialSimRuns(t *testing.T) {
	d, err := graph.CompleteLayered(13)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(13, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.GreedyCollider{}
	simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 55, RecordSenders: true}
	const trials = 10

	want := make([]*sim.Result, trials)
	for i := 0; i < trials; i++ {
		c := simCfg
		c.Seed = engine.SeedFor(simCfg.Seed, i)
		want[i], err = sim.Run(d, alg, adv, c)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := engine.RunMany(d, alg, adv, simCfg, trials, engine.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("engine results differ from the sequential reference loop")
	}
}

func TestRunTrialsHeterogeneous(t *testing.T) {
	line, err := graph.Line(6)
	if err != nil {
		t.Fatal(err)
	}
	clique, err := graph.CliqueBridge(8)
	if err != nil {
		t.Fatal(err)
	}
	trials := []engine.Trial{
		{Net: line, Alg: core.NewRoundRobin(), Adv: adversary.Benign{},
			Cfg: sim.Config{Rule: sim.CR3, Start: sim.SyncStart, Seed: 1}},
		{Net: clique, Alg: core.NewRoundRobin(), Adv: adversary.GreedyCollider{},
			Cfg: sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 2}},
	}
	res, err := engine.RunTrials(trials, engine.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if !res[0].Completed || res[0].Rounds != 5 {
		t.Fatalf("round robin on a 6-line: %+v, want completion in 5 rounds", res[0])
	}
	if !res[1].Completed {
		t.Fatal("round robin on the clique-bridge must complete")
	}
}

func TestMapBatchSizeDoesNotAffectResults(t *testing.T) {
	d, err := graph.CliqueBridge(11)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(11, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 9}
	var ref []*sim.Result
	for _, batch := range []int{0, 1, 3, 100} {
		res, err := engine.RunMany(d, alg, adversary.GreedyCollider{}, simCfg, 12,
			engine.Config{Workers: 3, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("batch=%d changed results", batch)
		}
	}
}

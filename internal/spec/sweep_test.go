package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dualgraph/internal/engine"
	"dualgraph/internal/sim"
)

func testSweep() Sweep {
	base := Default()
	base.Seed = 6
	return Sweep{
		Base:       base,
		Topologies: []Choice{{Name: "clique-bridge"}, {Name: "line"}},
		Algorithms: []Choice{{Name: "harmonic"}, {Name: "round-robin"}},
		Ns:         []int{9, 17},
		Trials:     10,
	}
}

func TestCellsEnumerationOrderAndLabels(t *testing.T) {
	cells, err := testSweep().Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("2x2x2 sweep expanded to %d cells", len(cells))
	}
	wantFirst := "topo=clique-bridge alg=harmonic n=9"
	wantLast := "topo=line alg=round-robin n=17"
	if cells[0].Label != wantFirst || cells[7].Label != wantLast {
		t.Fatalf("labels [0]=%q [7]=%q, want %q / %q",
			cells[0].Label, cells[7].Label, wantFirst, wantLast)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if c.Scenario.Seed != 6 || c.Scenario.Adversary.Name != "greedy" {
			t.Fatalf("cell %d lost base fields: %+v", i, c.Scenario)
		}
	}
	// n is the innermost listed axis here: cells 0 and 1 differ only in n.
	if cells[0].Scenario.N != 9 || cells[1].Scenario.N != 17 {
		t.Fatalf("innermost axis wrong: n[0]=%d n[1]=%d", cells[0].Scenario.N, cells[1].Scenario.N)
	}
}

func TestEmptySweepIsOneBaseCell(t *testing.T) {
	cells, err := Sweep{Base: Default()}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Label != "base" {
		t.Fatalf("empty sweep = %+v", cells)
	}
}

// TestGridDeterministicAcrossWorkerCounts is the tentpole guarantee: the
// whole GridResult — every cell summary, including quantile sketch state —
// is bit-identical at 1, 2, and 8 workers, and each cell equals its
// standalone Scenario.RunStream output.
func TestGridDeterministicAcrossWorkerCounts(t *testing.T) {
	sw := testSweep()
	ref, err := sw.Run(engine.Config{Workers: 1}, engine.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := sw.Run(engine.Config{Workers: workers}, engine.StreamConfig{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("GridResult differs between 1 and %d workers", workers)
		}
	}
	for _, cr := range ref.Cells {
		standalone, err := cr.Cell.Scenario.RunStream(sw.Trials, engine.Config{Workers: 3}, engine.StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cr.Summary, standalone) {
			t.Errorf("cell %q: grid summary differs from standalone RunStream", cr.Cell.Label)
		}
	}
}

func TestSweepJSONRoundTrip(t *testing.T) {
	sw := testSweep()
	sw.Rules = []sim.CollisionRule{sim.CR3, sim.CR4}
	blob, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	var back Sweep
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sw) {
		t.Fatalf("sweep round trip drifted:\n%+v\n%+v", back, sw)
	}
	a, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cells differ after a JSON round trip")
	}
}

// TestSweepSparseJSONInheritsDefaults checks the spec-file ergonomics: a
// file that only names what it sweeps inherits the rest from Default.
func TestSweepSparseJSONInheritsDefaults(t *testing.T) {
	var sw Sweep
	blob := `{"topologies":[{"name":"line"},{"name":"star"}],"ns":[5,9],"trials":3}`
	if err := json.Unmarshal([]byte(blob), &sw); err != nil {
		t.Fatal(err)
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded to %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Scenario.Algorithm.Name != "harmonic" || c.Scenario.Rule != sim.CR4 {
			t.Fatalf("cell %q did not inherit defaults: %+v", c.Label, c.Scenario)
		}
	}
}

func TestSweepBadCellFailsWithLabel(t *testing.T) {
	sw := Sweep{
		Base:       Default(),
		Topologies: []Choice{{Name: "line"}, {Name: "nope"}},
	}
	_, err := sw.Cells()
	if err == nil || !strings.Contains(err.Error(), "topo=nope") {
		t.Fatalf("err = %v, want the failing cell's label", err)
	}
	if _, err := (Sweep{Base: Default(), Trials: -1}).Cells(); err == nil {
		t.Fatal("negative trials must fail")
	}
}

// TestSweepRejectsNAxisOverSizelessTopology: layered topologies derive
// their size from params, so an n axis would run byte-identical duplicate
// cells under different labels — the sweep must refuse.
func TestSweepRejectsNAxisOverSizelessTopology(t *testing.T) {
	sw := Sweep{
		Base:       Default(),
		Topologies: []Choice{{Name: "clique-bridge"}, {Name: "layered-random"}},
		Ns:         []int{9, 17},
	}
	if _, err := sw.Cells(); err == nil || !strings.Contains(err.Error(), "layered-random") {
		t.Fatalf("err = %v, want an ignores-n rejection naming the topology", err)
	}
	base := Default()
	base.Topology = Choice{Name: "directed-layered"}
	if _, err := (Sweep{Base: base, Ns: []int{9}}).Cells(); err == nil {
		t.Fatal("base topology that ignores n must also be rejected under an n axis")
	}
	// Without an n axis the combination is fine.
	if _, err := (Sweep{Base: base}).Cells(); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsDuplicateBuiltCells: grid rounds n up to a square, so two
// requested sizes can build the identical network — Run must refuse rather
// than report one cell twice under different n= labels.
func TestRunRejectsDuplicateBuiltCells(t *testing.T) {
	base := Default()
	base.Topology = Choice{Name: "grid"}
	sw := Sweep{Base: base, Ns: []int{33, 34}, Trials: 2}
	_, err := sw.Run(engine.Config{Workers: 2}, engine.StreamConfig{})
	if err == nil || !strings.Contains(err.Error(), "same 36-node network") {
		t.Fatalf("err = %v, want a duplicate-cell rejection", err)
	}
	// Distinct built sizes stay fine.
	sw.Ns = []int{16, 36}
	if _, err := sw.Run(engine.Config{Workers: 2}, engine.StreamConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestGridResultLookupByLabel(t *testing.T) {
	sw := Sweep{Base: Default(), Ns: []int{9, 17}, Trials: 2}
	g, err := sw.Run(engine.Config{Workers: 2}, engine.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := g.Cell("n=17")
	if !ok {
		t.Fatal("label n=17 not found")
	}
	if cr.Summary.Trials != 2 {
		t.Fatalf("cell trials = %d", cr.Summary.Trials)
	}
	if _, ok := g.Cell("n=999"); ok {
		t.Fatal("bogus label must not resolve")
	}
}

package spec

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"dualgraph/internal/engine"
)

func TestSweepHashIsStableAndDiscriminating(t *testing.T) {
	sw := testSweep()
	h1, err := sw.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sw.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("hash is not deterministic")
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex sha256", h1)
	}

	// A JSON round trip preserves the identity (resume reads the document
	// back from disk).
	blob, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	var back Sweep
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	h3, err := back.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h1 {
		t.Fatal("hash changed across a JSON round trip")
	}

	// Stating version 1 explicitly means the same document.
	versioned := sw
	versioned.Version = WireVersion
	if h, _ := versioned.Hash(); h != h1 {
		t.Fatal("explicit version 1 hashes differently from implied")
	}

	// Any semantic edit changes the identity.
	edited := testSweep()
	edited.Trials++
	if h, _ := edited.Hash(); h == h1 {
		t.Fatal("edited sweep kept the same hash")
	}
	edited = testSweep()
	edited.Base.Seed++
	if h, _ := edited.Hash(); h == h1 {
		t.Fatal("reseeded sweep kept the same hash")
	}

	bad := testSweep()
	bad.Version = 99
	if _, err := bad.Hash(); err == nil {
		t.Fatal("unsupported version hashed successfully")
	}
}

// TestStreamFromSeededMatchesFull is the spec-layer resume contract: seeding
// a subset of captured units reproduces the full grid bit-identically —
// summaries and the onCell delivery sequence alike — at several worker
// counts.
func TestStreamFromSeededMatchesFull(t *testing.T) {
	sw := testSweep()
	sc := engine.StreamConfig{ExactK: 8}

	var mu sync.Mutex
	blobs := map[engine.ShardKey][]byte{}
	var wantCells []string
	want, err := sw.StreamFrom(context.Background(), engine.Config{Workers: 1}, sc, nil,
		func(st engine.ShardState) {
			blob, err := st.Summary.MarshalBinary()
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			blobs[st.Key()] = blob
			mu.Unlock()
		},
		func(cr CellResult) {
			wantCells = append(wantCells, cr.Cell.Label)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(wantCells) != len(want.Cells) {
		t.Fatalf("delivered %d cells, grid has %d", len(wantCells), len(want.Cells))
	}

	for _, workers := range []int{1, 2, 8} {
		seed := map[engine.ShardKey]*engine.TrialSummary{}
		for k, blob := range blobs {
			if (k.Cell+k.Shard)%3 == 0 {
				var sum engine.TrialSummary
				if err := sum.UnmarshalBinary(blob); err != nil {
					t.Fatal(err)
				}
				seed[k] = &sum
			}
		}
		var gotCells []string
		got, err := sw.StreamFrom(context.Background(), engine.Config{Workers: workers}, sc, seed, nil,
			func(cr CellResult) {
				mu.Lock()
				gotCells = append(gotCells, cr.Cell.Label)
				mu.Unlock()
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotCells, wantCells) {
			t.Fatalf("workers=%d: delivery order %v, want %v", workers, gotCells, wantCells)
		}
		for i := range want.Cells {
			a, err := want.Cells[i].Summary.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.Cells[i].Summary.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("workers=%d cell %d (%s): seeded run diverged", workers, i, want.Cells[i].Cell.Label)
			}
		}
	}
}

package spec

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzScenarioUnmarshal hardens the scenario wire format: arbitrary bytes
// must either fail to decode with an ordinary error or produce a value that
// validates without panicking and round-trips through JSON unchanged.
func FuzzScenarioUnmarshal(f *testing.F) {
	seedDocs := []string{
		`{}`,
		`{"version":1,"topology":{"name":"clique-bridge"},"algorithm":{"name":"round-robin"},"adversary":{"name":"greedy"},"n":9,"rule":"CR1","start":"sync","seed":3}`,
		`{"topology":{"name":"geometric","params":{"radius":0.3}},"n":65,"max_rounds":500}`,
		`{"schedule":{"name":"churn","params":{"epoch-len":4,"p-down":0.2}}}`,
		`{"version":99}`,
		`{"rule":"CR7"}`,
		`{"n":"nine"}`,
	}
	for _, doc := range seedDocs {
		f.Add([]byte(doc))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Scenario
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		// Validate must not panic on any decodable document; only valid
		// scenarios owe us a JSON round trip (e.g. the zero collision rule
		// is invalid and refuses to marshal, by design).
		if s.Validate() != nil {
			return
		}
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("valid scenario failed to marshal: %v", err)
		}
		var again Scenario
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatalf("re-decode of marshalled scenario failed: %v", err)
		}
		// The serialized form must be a fixed point (an empty params map
		// legitimately collapses to nil under omitempty, so compare the
		// canonical JSON, not the Go values).
		blob2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("scenario serialization is not a fixed point:\n 1st %s\n 2nd %s", blob, blob2)
		}
	})
}

// FuzzSweepUnmarshal hardens the sweep wire format: any decodable document
// must expand through Cells without panicking (errors are fine — duplicate
// labels, bad versions, negative trials are all typed rejections) and
// round-trip through JSON unchanged.
func FuzzSweepUnmarshal(f *testing.F) {
	seedDocs := []string{
		`{}`,
		`{"base":{"n":17}}`,
		`{"base":{"seed":6},"topologies":[{"name":"clique-bridge"},{"name":"line"}],"algorithms":[{"name":"harmonic"},{"name":"round-robin"}],"ns":[9,17],"trials":10}`,
		`{"adversaries":[{"name":"greedy"},{"name":"adaptive","params":{"horizon":2}}],"seeds":[1,2,3]}`,
		`{"schedules":[{"name":"static"},{"name":"fade","params":{"p-fade":0.5}}],"rules":["CR1","CR4"]}`,
		`{"seeds":[1,1]}`,
		`{"trials":-4}`,
		`{"version":2}`,
	}
	for _, doc := range seedDocs {
		f.Add([]byte(doc))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sw Sweep
		if err := json.Unmarshal(data, &sw); err != nil {
			return
		}
		// Cells materializes the whole Cartesian product; cap the grid so a
		// fuzzer-constructed product of long axes cannot balloon the test.
		product := 1
		for _, n := range []int{
			len(sw.Topologies), len(sw.Algorithms), len(sw.Adversaries),
			len(sw.Schedules), len(sw.Ns), len(sw.Rules), len(sw.Seeds),
		} {
			if n > 0 {
				product *= n
			}
			if product > 10000 {
				return
			}
		}
		// Cells must not panic on any decodable document; only sweeps that
		// expand cleanly owe us a JSON round trip (an invalid base rule,
		// for instance, refuses to marshal by design).
		if _, err := sw.Cells(); err != nil {
			return
		}
		blob, err := json.Marshal(sw)
		if err != nil {
			t.Fatalf("expandable sweep failed to marshal: %v", err)
		}
		var again Sweep
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatalf("re-decode of marshalled sweep failed: %v", err)
		}
		blob2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("sweep serialization is not a fixed point:\n 1st %s\n 2nd %s", blob, blob2)
		}
	})
}

package spec

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/registry"
)

// TestWithScheduleBuildsDynamicScenario: the option threads through New,
// Validate, Build (typed schedule), and Run.
func TestWithScheduleBuildsDynamicScenario(t *testing.T) {
	s, err := New(
		WithTopology("geometric", nil),
		WithN(24),
		WithSchedule("churn", registry.Params{"p-down": 0.2, "epoch-len": 4}),
		WithSeed(9),
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Sched.(*graph.ChurnSchedule); !ok {
		t.Fatalf("built schedule is %T, want *graph.ChurnSchedule", b.Sched)
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("dynamic scenario did not complete")
	}
}

// TestScheduleDefaultsToStatic: scenarios without a schedule block — every
// pre-dynamics spec — validate, build a StaticSchedule, and keep their
// labels unchanged.
func TestScheduleDefaultsToStatic(t *testing.T) {
	var s Scenario
	if err := json.Unmarshal([]byte(`{"topology":{"name":"line"},"algorithm":{"name":"round-robin"},"adversary":{"name":"benign"},"n":8,"rule":3,"start":1,"seed":1}`), &s); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("pre-dynamics JSON no longer validates: %v", err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Sched.(*graph.StaticSchedule); !ok {
		t.Fatalf("default schedule is %T, want *graph.StaticSchedule", b.Sched)
	}
	if l := s.Label(); strings.Contains(l, "sched=") {
		t.Fatalf("static label %q mentions the schedule", l)
	}
	// Marshalling a static scenario emits no schedule block (omitzero), so
	// pre-dynamics serialized specs are byte-compatible in both directions.
	blob, err := json.Marshal(Default())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "schedule") {
		t.Fatalf("static scenario marshals a schedule block: %s", blob)
	}
	dyn, err := New(WithSchedule("fade", nil))
	if err != nil {
		t.Fatal(err)
	}
	if l := dyn.Label(); !strings.Contains(l, "sched=fade") {
		t.Fatalf("dynamic label %q missing sched fragment", l)
	}
}

// TestScheduleJSONRoundTrip: a dynamic scenario survives JSON marshal →
// unmarshal → Build with identical run output.
func TestScheduleJSONRoundTrip(t *testing.T) {
	s, err := New(
		WithTopology("geometric", nil),
		WithN(20),
		WithSchedule("churn", registry.Params{"p-down": 0.3}),
		WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"schedule"`) {
		t.Fatalf("marshalled scenario missing schedule block: %s", blob)
	}
	var back Scenario
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	want, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("round-tripped dynamic scenario runs differently")
	}
}

// TestScheduleValidation: unknown schedule names and bad params fail at
// Validate with the registry's typed error.
func TestScheduleValidation(t *testing.T) {
	s := Default()
	s.Schedule = Choice{Name: "waypont"}
	err := s.Validate()
	var unknown *registry.ErrUnknownName
	if !errors.As(err, &unknown) || unknown.Kind != "schedule" {
		t.Fatalf("err = %v, want a schedule ErrUnknownName", err)
	}
	s.Schedule = Choice{Name: "churn", Params: registry.Params{"bogus": 1}}
	if err := s.Validate(); err == nil {
		t.Fatal("bogus schedule param validated")
	}
}

// TestSweepSchedulesAxis: the schedule axis expands, labels, validates, and
// executes like any other axis — churn rate as a grid dimension.
func TestSweepSchedulesAxis(t *testing.T) {
	sw := Sweep{
		Base: func() Scenario {
			s := Default()
			s.Topology = Choice{Name: "geometric"}
			s.N = 20
			s.Seed = 3
			return s
		}(),
		Schedules: []Choice{
			{Name: "static"},
			{Name: "churn", Params: registry.Params{"p-down": 0.1}},
			{Name: "churn", Params: registry.Params{"p-down": 0.4}},
		},
		Trials: 4,
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("%d cells, want 3", len(cells))
	}
	if cells[1].Label != `sched=churn{"p-down":0.1}` {
		t.Fatalf("cell 1 label = %q", cells[1].Label)
	}
	var want *GridResult
	for _, workers := range []int{1, 2, 8} {
		grid, err := sw.Run(engine.Config{Workers: workers}, engine.StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = grid
			continue
		}
		if !reflect.DeepEqual(grid, want) {
			t.Fatalf("workers=%d grid differs from workers=1", workers)
		}
	}
	// The schedule axis must actually change outcomes across cells.
	s0, _ := want.Cells[0].Summary.Rounds.Mean()
	s2, _ := want.Cells[2].Summary.Rounds.Mean()
	if s0 == s2 {
		t.Fatal("static and churn cells have identical mean rounds; axis had no effect")
	}
	// A sweep JSON with a schedules axis parses into the same grid.
	blob := `{
		"base": {"topology": {"name": "geometric"}, "n": 20, "seed": 3},
		"schedules": [
			{"name": "static"},
			{"name": "churn", "params": {"p-down": 0.1}},
			{"name": "churn", "params": {"p-down": 0.4}}
		],
		"trials": 4
	}`
	var parsed Sweep
	if err := json.Unmarshal([]byte(blob), &parsed); err != nil {
		t.Fatal(err)
	}
	grid, err := parsed.Run(engine.Config{}, engine.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(grid, want) {
		t.Fatal("JSON sweep grid differs from the Go-constructed sweep")
	}
}

// TestSweepCellInvalidScheduleFails: axis validation reports the offending
// cell with the registry suggestion error.
func TestSweepCellInvalidScheduleFails(t *testing.T) {
	sw := Sweep{Base: Default(), Schedules: []Choice{{Name: "static"}, {Name: "churnn"}}}
	_, err := sw.Cells()
	if err == nil || !strings.Contains(err.Error(), "sweep cell 1") {
		t.Fatalf("err = %v, want a cell 1 failure", err)
	}
	var unknown *registry.ErrUnknownName
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want to wrap ErrUnknownName", err)
	}
}

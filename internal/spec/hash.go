package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Hash returns the sweep document's canonical identity: the hex SHA-256 of
// its normalized JSON form. "Not stated" versions normalize to WireVersion
// before hashing, so a file that omits version hashes identically to one
// that states version 1; every other field hashes exactly as marshalled
// (map-valued params marshal with sorted keys, so the encoding is
// deterministic). Checkpoint files and coordinator jobs record this hash and
// refuse to mix state from a different document.
func (sw Sweep) Hash() (string, error) {
	if err := checkVersion("sweep", sw.Version); err != nil {
		return "", err
	}
	norm := sw
	norm.Version = WireVersion
	if norm.Base.Version == 0 {
		norm.Base.Version = WireVersion
	}
	b, err := json.Marshal(norm)
	if err != nil {
		return "", fmt.Errorf("spec: hash sweep: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

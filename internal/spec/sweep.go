package spec

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"dualgraph/internal/engine"
	"dualgraph/internal/registry"
	"dualgraph/internal/sim"
)

// Sweep is a declarative Cartesian grid: a base Scenario plus per-axis value
// lists. Every listed axis replaces the base's value in the product; an
// omitted axis contributes the base's single value. Cells are enumerated in
// a fixed nested order — topology, algorithm, adversary, schedule, n, rule,
// seed, with the last axis innermost — so cell indices and labels are
// stable.
type Sweep struct {
	// Version is the wire-format version of the document (see WireVersion);
	// zero reads and marshals as version 1, unknown versions are rejected.
	Version int `json:"version,omitempty"`
	// Base supplies the value of every axis the sweep does not list, and
	// the non-axis fields (start rule, max rounds).
	Base Scenario `json:"base"`
	// Topologies is the topology axis (empty = base's topology).
	Topologies []Choice `json:"topologies,omitempty"`
	// Algorithms is the algorithm axis.
	Algorithms []Choice `json:"algorithms,omitempty"`
	// Adversaries is the adversary axis.
	Adversaries []Choice `json:"adversaries,omitempty"`
	// Schedules is the epoch-schedule axis (topology dynamics): sweep churn
	// rates, fade probabilities, or mobility speeds like any other axis.
	Schedules []Choice `json:"schedules,omitempty"`
	// Ns is the network-size axis.
	Ns []int `json:"ns,omitempty"`
	// Rules is the collision-rule axis.
	Rules []sim.CollisionRule `json:"rules,omitempty"`
	// Seeds is the base-seed axis (independent replications of the grid).
	Seeds []int64 `json:"seeds,omitempty"`
	// Trials is the Monte Carlo depth of every cell; 0 means 1.
	Trials int `json:"trials,omitempty"`
}

// Cell is one point of the expanded grid.
type Cell struct {
	// Index is the cell's position in enumeration order.
	Index int
	// Label identifies the cell by its swept axes (axes the sweep did not
	// list are fixed across the grid and stay out of the label).
	Label string
	// Scenario is the fully specified cell.
	Scenario Scenario
}

// UnmarshalJSON fills unset base fields with Default's values, so a spec
// file only states what it cares about: `{"base": {"n": 17}}` inherits the
// default topology, algorithm, adversary, rules, and seed. Unknown
// wire-format versions are rejected up front with *ErrUnsupportedVersion.
func (sw *Sweep) UnmarshalJSON(b []byte) error {
	type alias Sweep // drop methods to avoid recursion
	tmp := alias{Base: Default()}
	if err := json.Unmarshal(b, &tmp); err != nil {
		return err
	}
	if err := checkVersion("sweep", tmp.Version); err != nil {
		return err
	}
	*sw = Sweep(tmp)
	return nil
}

// trials returns the per-cell Monte Carlo depth.
func (sw Sweep) trials() int {
	if sw.Trials > 0 {
		return sw.Trials
	}
	return 1
}

// Cells expands the grid in enumeration order and validates every cell.
// Axis value combinations that expand to duplicate labels — e.g. a repeated
// seed or two identical topology choices — are rejected with
// *ErrDuplicateLabel, since labels key GridResult lookups and downstream
// result streams.
func (sw Sweep) Cells() ([]Cell, error) {
	if err := checkVersion("sweep", sw.Version); err != nil {
		return nil, err
	}
	if sw.Trials < 0 {
		return nil, fmt.Errorf("sweep: trials must be >= 0, got %d", sw.Trials)
	}
	if len(sw.Ns) > 0 {
		// An n axis over a topology that derives its size from parameters
		// would run byte-identical duplicate cells under different n=
		// labels; reject the combination instead.
		topos := sw.Topologies
		if len(topos) == 0 {
			topos = []Choice{sw.Base.Topology}
		}
		for _, c := range topos {
			if e, ok := registry.TopologyInfo(c.Name); ok && e.IgnoresN {
				return nil, fmt.Errorf("sweep: topology %q derives its size from its params and ignores n; drop the ns axis or sweep its size parameter instead", c.Name)
			}
		}
	}
	type axis struct {
		n      int                      // axis length (0 = not swept)
		apply  func(s *Scenario, i int) // set value i on s
		render func(s Scenario) string  // label fragment after apply
	}
	axes := []axis{
		{len(sw.Topologies),
			func(s *Scenario, i int) { s.Topology = sw.Topologies[i] },
			func(s Scenario) string { return "topo=" + s.Topology.label() }},
		{len(sw.Algorithms),
			func(s *Scenario, i int) { s.Algorithm = sw.Algorithms[i] },
			func(s Scenario) string { return "alg=" + s.Algorithm.label() }},
		{len(sw.Adversaries),
			func(s *Scenario, i int) { s.Adversary = sw.Adversaries[i] },
			func(s Scenario) string { return "adv=" + s.Adversary.label() }},
		{len(sw.Schedules),
			func(s *Scenario, i int) { s.Schedule = sw.Schedules[i] },
			func(s Scenario) string { return "sched=" + s.Schedule.label() }},
		{len(sw.Ns),
			func(s *Scenario, i int) { s.N = sw.Ns[i] },
			func(s Scenario) string { return fmt.Sprintf("n=%d", s.N) }},
		{len(sw.Rules),
			func(s *Scenario, i int) { s.Rule = sw.Rules[i] },
			func(s Scenario) string { return fmt.Sprintf("rule=%v", s.Rule) }},
		{len(sw.Seeds),
			func(s *Scenario, i int) { s.Seed = sw.Seeds[i] },
			func(s Scenario) string { return fmt.Sprintf("seed=%d", s.Seed) }},
	}
	total := 1
	for _, a := range axes {
		if a.n > 0 {
			total *= a.n
		}
	}
	cells := make([]Cell, 0, total)
	seen := make(map[string]int, total)
	// odometer enumeration: the last listed axis is the innermost digit.
	idx := make([]int, len(axes))
	for {
		s := sw.Base
		label := ""
		for ai, a := range axes {
			if a.n == 0 {
				continue
			}
			a.apply(&s, idx[ai])
			if label != "" {
				label += " "
			}
			label += a.render(s)
		}
		if label == "" {
			label = "base"
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("sweep cell %d (%s): %w", len(cells), label, err)
		}
		if first, dup := seen[label]; dup {
			return nil, &ErrDuplicateLabel{Label: label, First: first, Second: len(cells)}
		}
		seen[label] = len(cells)
		cells = append(cells, Cell{Index: len(cells), Label: label, Scenario: s})

		// advance the odometer
		ai := len(axes) - 1
		for ; ai >= 0; ai-- {
			if axes[ai].n == 0 {
				continue
			}
			idx[ai]++
			if idx[ai] < axes[ai].n {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			return cells, nil
		}
	}
}

// labelWithoutN drops the "n=..." fragment of a cell label, grouping cells
// that differ only in the requested size.
func labelWithoutN(label string) string {
	fields := strings.Fields(label)
	kept := fields[:0]
	for _, f := range fields {
		if !strings.HasPrefix(f, "n=") {
			kept = append(kept, f)
		}
	}
	return strings.Join(kept, " ")
}

// CellResult pairs a cell with its streamed Monte Carlo summary.
type CellResult struct {
	// Cell identifies the grid point.
	Cell Cell
	// Summary aggregates the cell's trials (bit-identical at any worker
	// count; equal to the cell's standalone Scenario.RunStream output).
	Summary *engine.TrialSummary
}

// GridResult is the outcome of a Sweep run, keyed by cell label.
type GridResult struct {
	// Trials is the per-cell Monte Carlo depth that was run.
	Trials int
	// Cells holds one result per grid point, in enumeration order.
	Cells []CellResult
}

// Cell returns the result with the given label.
func (g *GridResult) Cell(label string) (*CellResult, bool) {
	for i := range g.Cells {
		if g.Cells[i].Cell.Label == label {
			return &g.Cells[i], true
		}
	}
	return nil, false
}

// Stream expands the sweep and executes the whole grid on the trial
// engine: cell networks are constructed in parallel (deterministically,
// each from its own scenario seed), then all (cell, shard) work units share
// one worker pool (engine.RunGridStreamContext), so the pool stays
// saturated whether the grid is wide or deep. Every cell summary is
// bit-identical at any worker count and equal to running that cell's
// Scenario alone.
//
// onCell, when non-nil, receives finished cells in enumeration order while
// the rest of the grid is still running: a cell is delivered as soon as it
// and every cell before it have completed, so the delivered sequence is
// always a prefix of the full grid — byte-identical to the corresponding
// prefix of an uninterrupted run. Calls are serialized.
//
// Cancelling ctx stops the run at (cell, shard) granularity with a wrapped
// context error; cells already delivered through onCell remain final.
func (sw Sweep) Stream(ctx context.Context, ec engine.Config, sc engine.StreamConfig, onCell func(CellResult)) (*GridResult, error) {
	return sw.StreamFrom(ctx, ec, sc, nil, nil, onCell)
}

// StreamFrom is Stream with checkpoint hooks, threading the engine's resume
// contract through the spec layer: units in seed are restored instead of
// run, onShard observes every freshly completed unit (from worker
// goroutines, possibly concurrently — synchronize, and consume the summary
// during the call), and the grid result — including the order and content of
// onCell deliveries — is bit-identical to an uninterrupted Stream at any
// worker count on either side of the interruption.
func (sw Sweep) StreamFrom(ctx context.Context, ec engine.Config, sc engine.StreamConfig,
	seed map[engine.ShardKey]*engine.TrialSummary, onShard func(engine.ShardState),
	onCell func(CellResult)) (*GridResult, error) {
	cells, err := sw.Cells()
	if err != nil {
		return nil, err
	}
	built, err := engine.MapContext(ctx, len(cells), ec, func(i int) (engine.Trial, error) {
		b, err := cells[i].Scenario.Build()
		if err != nil {
			return engine.Trial{}, fmt.Errorf("cell %s: %w", cells[i].Label, err)
		}
		return engine.Trial{Net: b.Net, Sched: b.Sched, Alg: b.Alg, Adv: b.Adv, Cfg: b.Cfg}, nil
	})
	if err != nil {
		return nil, err
	}
	if len(sw.Ns) > 1 {
		// A size-adjusting topology (grid rounds n up to a square) can map
		// two requested n values to the same built network; those cells
		// would be byte-identical under different n= labels, so refuse.
		// Cells that differ in any other axis keep distinct keys.
		type key struct {
			rest   string
			builtN int
		}
		seen := make(map[key]string, len(cells))
		for i, c := range cells {
			k := key{rest: labelWithoutN(c.Label), builtN: built[i].Net.N()}
			if prev, ok := seen[k]; ok {
				return nil, fmt.Errorf("sweep: cells %q and %q build the same %d-node network (the topology adjusts the requested size); remove one of the n values",
					prev, c.Label, built[i].Net.N())
			}
			seen[k] = c.Label
		}
	}
	// Reorder buffer: the engine reports cells in completion order, the
	// callback contract is enumeration order. done tracks out-of-order
	// completions; next is the lowest undelivered cell.
	var (
		mu   sync.Mutex
		done []*engine.TrialSummary
		next int
	)
	var onEngineCell func(c int, sum *engine.TrialSummary)
	if onCell != nil {
		done = make([]*engine.TrialSummary, len(cells))
		onEngineCell = func(c int, sum *engine.TrialSummary) {
			mu.Lock()
			defer mu.Unlock()
			done[c] = sum
			for next < len(done) && done[next] != nil {
				onCell(CellResult{Cell: cells[next], Summary: done[next]})
				next++
			}
		}
	}
	sums, err := engine.RunGridStreamFromContext(ctx, built, sw.trials(), ec, sc, seed, onShard, onEngineCell)
	if err != nil {
		return nil, err
	}
	out := &GridResult{Trials: sw.trials(), Cells: make([]CellResult, len(cells))}
	for i, c := range cells {
		out.Cells[i] = CellResult{Cell: c, Summary: sums[i]}
	}
	return out, nil
}

// RunContext is Stream without per-cell delivery.
func (sw Sweep) RunContext(ctx context.Context, ec engine.Config, sc engine.StreamConfig) (*GridResult, error) {
	return sw.Stream(ctx, ec, sc, nil)
}

// Run is RunContext without cancellation (compatibility entry point).
func (sw Sweep) Run(ec engine.Config, sc engine.StreamConfig) (*GridResult, error) {
	return sw.RunContext(context.Background(), ec, sc)
}

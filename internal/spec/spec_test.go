package spec

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dualgraph/internal/engine"
	"dualgraph/internal/registry"
	"dualgraph/internal/sim"
)

// TestEveryRegisteredNameConstructsAtSmallN is the Spec-layer property test:
// every topology × the default algorithm/adversary, every algorithm, and
// every adversary must build through the Scenario path at small n.
func TestEveryRegisteredNameConstructsAtSmallN(t *testing.T) {
	for _, e := range registry.Topologies() {
		s, err := New(WithTopology(e.Name, nil), WithN(9), WithSeed(3))
		if err != nil {
			t.Errorf("topology %q: New: %v", e.Name, err)
			continue
		}
		if _, err := s.Build(); err != nil {
			t.Errorf("topology %q: Build: %v", e.Name, err)
		}
	}
	for _, e := range registry.Algorithms() {
		s, err := New(WithAlgorithm(e.Name, nil), WithN(9), WithSeed(3))
		if err != nil {
			t.Errorf("algorithm %q: New: %v", e.Name, err)
			continue
		}
		if _, err := s.Build(); err != nil {
			t.Errorf("algorithm %q: Build: %v", e.Name, err)
		}
	}
	for _, e := range registry.Adversaries() {
		s, err := New(WithAdversary(e.Name, nil), WithN(9), WithSeed(3))
		if err != nil {
			t.Errorf("adversary %q: New: %v", e.Name, err)
			continue
		}
		if _, err := s.Build(); err != nil {
			t.Errorf("adversary %q: Build: %v", e.Name, err)
		}
	}
}

// TestJSONRoundTripRunsBitIdentical is the serialization contract: a
// Scenario marshaled, unmarshaled, and run must produce exactly the results
// of the original value's direct RunMany path.
func TestJSONRoundTripRunsBitIdentical(t *testing.T) {
	s, err := New(
		WithTopology("geometric", registry.Params{"r-reliable": 0.3}),
		WithN(17),
		WithAlgorithm("harmonic", nil),
		WithAdversary("random", registry.Params{"p": 0.6}),
		WithCollisionRule(sim.CR4),
		WithStart(sim.AsyncStart),
		WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", blob, err)
	}
	want, err := s.RunMany(6, engine.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.RunMany(6, engine.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results after a JSON round trip differ from the original scenario's")
	}
	// And the round-tripped value must re-marshal to the same bytes.
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-marshal drifted:\n%s\n%s", blob, blob2)
	}
}

// TestScenarioMatchesPositionalPath pins the Spec path against the
// historical positional construction: same constructors, same seeds, same
// results.
func TestScenarioMatchesPositionalPath(t *testing.T) {
	s, err := New(
		WithTopology("clique-bridge", nil),
		WithN(9),
		WithAlgorithm("harmonic", nil),
		WithAdversary("greedy", nil),
		WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.RunMany(b.Net, b.Alg, b.Adv,
		sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 2}, 8, engine.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunMany(8, engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Scenario.RunMany differs from the positional engine.RunMany path")
	}
}

func TestJSONEnumEncodings(t *testing.T) {
	s := Default()
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"rule":"CR4"`, `"start":"async"`, `"name":"clique-bridge"`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("marshaled scenario missing %s: %s", want, blob)
		}
	}
	var back Scenario
	if err := json.Unmarshal([]byte(`{"topology":{"name":"line"},"algorithm":{"name":"round-robin"},
		"adversary":{"name":"benign"},"n":5,"rule":3,"start":"sync","seed":1}`), &back); err != nil {
		t.Fatal(err)
	}
	if back.Rule != sim.CR3 || back.Start != sim.SyncStart {
		t.Fatalf("numeric rule / named start decoded wrong: %+v", back)
	}
	if err := json.Unmarshal([]byte(`{"rule":"CR9"}`), &back); err == nil {
		t.Fatal("bad rule name must fail to decode")
	}
}

func TestValidationFailsLoudly(t *testing.T) {
	_, err := New(WithTopology("geometirc", nil))
	var unk *registry.ErrUnknownName
	if !errors.As(err, &unk) {
		t.Fatalf("want *registry.ErrUnknownName, got %v", err)
	}
	if _, err := New(WithN(0)); err == nil {
		t.Fatal("n=0 must fail validation")
	}
	if _, err := New(WithCollisionRule(9)); err == nil {
		t.Fatal("rule 9 must fail validation")
	}
	if _, err := New(WithAlgorithm("uniform", registry.Params{"q": 1})); err == nil {
		t.Fatal("unknown algorithm param must fail validation")
	}
	var zero Scenario
	if err := zero.Validate(); err == nil {
		t.Fatal("the zero Scenario must not validate")
	}
}

func TestBuildUsesBuiltNetworkSize(t *testing.T) {
	// A structural generator builds a different size than requested; the
	// algorithm must be constructed for the built size.
	s, err := New(
		WithTopology("layered-random", registry.Params{"layers": []int{3, 3, 3}}),
		WithN(999),
		WithAlgorithm("strong-select", nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Net.N() != 10 {
		t.Fatalf("layered-random [3,3,3] built %d nodes", b.Net.N())
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("strong select on the 10-node layered network did not complete")
	}
}

package spec

import "fmt"

// WireVersion is the current version of the spec wire format: the JSON
// encodings of Scenario and Sweep, and the job envelope the sweep service
// wraps them in. Files and requests without a "version" field are read as
// version 1 — the format that existed before the field did — so every
// pre-versioning spec file keeps its exact meaning. Unknown versions are
// rejected with *ErrUnsupportedVersion instead of being silently misread.
const WireVersion = 1

// ErrUnsupportedVersion reports a spec document whose "version" field names
// a wire format this build does not speak.
type ErrUnsupportedVersion struct {
	// Kind is the document kind: "scenario", "sweep", or "job".
	Kind string
	// Got is the rejected version number.
	Got int
}

func (e *ErrUnsupportedVersion) Error() string {
	return fmt.Sprintf("spec: unsupported %s version %d (this build speaks version %d; omit the field for version 1)",
		e.Kind, e.Got, WireVersion)
}

// checkVersion validates a document's version field: 0 (absent) and
// WireVersion are accepted, everything else is rejected.
func checkVersion(kind string, v int) error {
	if v != 0 && v != WireVersion {
		return &ErrUnsupportedVersion{Kind: kind, Got: v}
	}
	return nil
}

// ErrDuplicateLabel reports a sweep whose axis values expand to two cells
// with the same label. Labels key GridResult lookups and the service's
// result streams, so colliding cells would be indistinguishable downstream;
// the sweep is rejected instead.
type ErrDuplicateLabel struct {
	// Label is the colliding cell label.
	Label string
	// First and Second are the enumeration indices of the colliding cells.
	First, Second int
}

func (e *ErrDuplicateLabel) Error() string {
	return fmt.Sprintf("sweep: cells %d and %d expand to the same label %q (duplicate axis values?); every cell label must be unique",
		e.First, e.Second, e.Label)
}

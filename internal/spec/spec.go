// Package spec is the declarative experiment layer: a Scenario is one fully
// specified simulation cell (topology + algorithm + adversary + run config)
// as a plain, JSON-round-trippable value, and a Sweep is a whole Cartesian
// grid of them. Scenarios are built with functional options, validated once
// against the name registries (internal/registry), and executed on the
// deterministic trial engine — so a sweep serialized to a file, shipped to
// another machine, and run there produces bit-identical output.
//
// The positional call
//
//	net, _ := dualgraph.Geometric(65, 0.28, 0.7, rng)
//	alg, _ := dualgraph.NewHarmonicForN(65, 0.02)
//	res, _ := dualgraph.Run(net, alg, dualgraph.GreedyCollider{}, cfg)
//
// becomes
//
//	s, _ := spec.New(
//		spec.WithTopology("geometric", nil),
//		spec.WithN(65),
//		spec.WithAlgorithm("harmonic", nil),
//		spec.WithAdversary("greedy", nil),
//		spec.WithSeed(1),
//	)
//	res, _ := s.Run()
//
// Topology dynamics are part of the same vocabulary: WithSchedule (or a
// "schedule" JSON block, or a Sweep's "schedules" axis) names an epoch
// schedule from the registry — node churn, link fading, waypoint mobility —
// and the scenario's runs become time-varying with no other change. The
// default "static" schedule reproduces fixed-topology behaviour exactly.
package spec

import (
	"context"
	"encoding/json"
	"fmt"

	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/registry"
	"dualgraph/internal/sim"
)

// Choice names one registered constructor plus its parameters. A zero
// Params (or nil) means the registry defaults.
type Choice struct {
	// Name is the registry lookup key (e.g. "geometric").
	Name string `json:"name"`
	// Params overrides the constructor's default parameters.
	Params registry.Params `json:"params,omitempty"`
}

// label renders the choice for cell labels: the bare name, plus params only
// when overridden.
func (c Choice) label() string {
	if len(c.Params) == 0 {
		return c.Name
	}
	b, err := json.Marshal(c.Params)
	if err != nil {
		return c.Name
	}
	return c.Name + string(b)
}

// Scenario is one declarative simulation cell. The zero value is not
// runnable; build one with New (which applies defaults and validates) or
// unmarshal one from JSON and call Validate.
type Scenario struct {
	// Version is the wire-format version of the document (see WireVersion).
	// Zero means "not stated" and is read — and marshalled — exactly like
	// version 1, so pre-versioning files and their serialized forms are
	// unchanged; unknown versions are rejected when unmarshalling and when
	// validating.
	Version int `json:"version,omitempty"`
	// Topology names the network generator.
	Topology Choice `json:"topology"`
	// Algorithm names the broadcast algorithm.
	Algorithm Choice `json:"algorithm"`
	// Adversary names the adversary.
	Adversary Choice `json:"adversary"`
	// N is the requested network size. Generators with structural sizes
	// (grid, layered) may build a nearby size; the algorithm is always
	// constructed for the built size.
	N int `json:"n"`
	// Rule is the collision rule (JSON: "CR1".."CR4").
	Rule sim.CollisionRule `json:"rule"`
	// Start is the start rule (JSON: "sync"/"async").
	Start sim.StartRule `json:"start"`
	// Seed drives topology construction and the run (or, for sweeps, the
	// per-trial seed derivation).
	Seed int64 `json:"seed"`
	// MaxRounds caps the execution; 0 means the simulator default.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Schedule names the epoch schedule driving topology dynamics. The zero
	// Choice (and the explicit name "static") means the network never
	// changes, so pre-dynamics JSON files keep their exact meaning — and
	// marshalling a static scenario emits no schedule block at all
	// (omitzero), so their serialized form is unchanged too.
	Schedule Choice `json:"schedule,omitzero"`
}

// UnmarshalJSON decodes a scenario and rejects unknown wire-format versions
// up front with *ErrUnsupportedVersion, so a future-versioned file fails
// loudly instead of being silently misread. Fields already set on the
// receiver act as defaults (Sweep's base inheritance relies on this).
func (s *Scenario) UnmarshalJSON(b []byte) error {
	type alias Scenario // drop methods to avoid recursion
	tmp := alias(*s)
	if err := json.Unmarshal(b, &tmp); err != nil {
		return err
	}
	if err := checkVersion("scenario", tmp.Version); err != nil {
		return err
	}
	*s = Scenario(tmp)
	return nil
}

// scheduleName resolves the schedule choice's name, defaulting to "static".
func (s Scenario) scheduleName() string {
	if s.Schedule.Name == "" {
		return "static"
	}
	return s.Schedule.Name
}

// Option mutates a Scenario under construction.
type Option func(*Scenario)

// WithTopology selects the named topology; p may be nil for defaults.
func WithTopology(name string, p registry.Params) Option {
	return func(s *Scenario) { s.Topology = Choice{Name: name, Params: p} }
}

// WithAlgorithm selects the named algorithm; p may be nil for defaults.
func WithAlgorithm(name string, p registry.Params) Option {
	return func(s *Scenario) { s.Algorithm = Choice{Name: name, Params: p} }
}

// WithAdversary selects the named adversary; p may be nil for defaults.
func WithAdversary(name string, p registry.Params) Option {
	return func(s *Scenario) { s.Adversary = Choice{Name: name, Params: p} }
}

// WithSchedule selects the named epoch schedule (topology dynamics); p may
// be nil for defaults. "static" restores the fixed-topology behaviour.
func WithSchedule(name string, p registry.Params) Option {
	return func(s *Scenario) { s.Schedule = Choice{Name: name, Params: p} }
}

// WithN sets the requested network size.
func WithN(n int) Option { return func(s *Scenario) { s.N = n } }

// WithCollisionRule sets the collision rule.
func WithCollisionRule(r sim.CollisionRule) Option { return func(s *Scenario) { s.Rule = r } }

// WithStart sets the start rule.
func WithStart(r sim.StartRule) Option { return func(s *Scenario) { s.Start = r } }

// WithSeed sets the base seed.
func WithSeed(seed int64) Option { return func(s *Scenario) { s.Seed = seed } }

// WithMaxRounds caps the execution length (0 = simulator default).
func WithMaxRounds(m int) Option { return func(s *Scenario) { s.MaxRounds = m } }

// Default is the scenario New starts from: the paper's headline cell
// (Harmonic Broadcast vs the greedy collider on a 33-node clique-bridge
// network under CR4/async, seed 1) — the same defaults cmd/dgsim has always
// used.
func Default() Scenario {
	// Schedule stays the zero Choice — static — so default scenarios
	// marshal without a schedule block, exactly like before the dynamics
	// layer existed.
	return Scenario{
		Topology:  Choice{Name: "clique-bridge"},
		Algorithm: Choice{Name: "harmonic"},
		Adversary: Choice{Name: "greedy"},
		N:         33,
		Rule:      sim.CR4,
		Start:     sim.AsyncStart,
		Seed:      1,
	}
}

// New builds a Scenario from Default plus opts and validates it once.
func New(opts ...Option) (Scenario, error) {
	s := Default()
	for _, opt := range opts {
		opt(&s)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Validate checks the scenario without building it: all three names must
// resolve in their registries with well-typed parameters, and the scalar
// fields must be in range. Unknown names fail with *registry.ErrUnknownName,
// which lists the valid names and close suggestions.
func (s Scenario) Validate() error {
	if err := checkVersion("scenario", s.Version); err != nil {
		return err
	}
	if err := registry.ValidateTopology(s.Topology.Name, s.Topology.Params); err != nil {
		return err
	}
	if err := registry.ValidateAlgorithm(s.Algorithm.Name, s.Algorithm.Params); err != nil {
		return err
	}
	if err := registry.ValidateAdversary(s.Adversary.Name, s.Adversary.Params); err != nil {
		return err
	}
	if err := registry.ValidateSchedule(s.scheduleName(), s.Schedule.Params); err != nil {
		return err
	}
	if s.N < 1 {
		return fmt.Errorf("scenario: n must be >= 1, got %d", s.N)
	}
	if s.Rule < sim.CR1 || s.Rule > sim.CR4 {
		return fmt.Errorf("scenario: collision rule %d outside CR1..CR4", int(s.Rule))
	}
	if s.Start != sim.SyncStart && s.Start != sim.AsyncStart {
		return fmt.Errorf("scenario: start rule %d is neither sync nor async", int(s.Start))
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("scenario: max_rounds must be >= 0, got %d", s.MaxRounds)
	}
	return nil
}

// Label renders the scenario as a compact single-line identifier. The
// schedule appears only when dynamic, so static labels (the only kind that
// existed before the dynamics layer) are unchanged.
func (s Scenario) Label() string {
	l := fmt.Sprintf("topo=%s n=%d alg=%s adv=%s rule=%v start=%v seed=%d",
		s.Topology.label(), s.N, s.Algorithm.label(), s.Adversary.label(), s.Rule, s.Start, s.Seed)
	if name := s.scheduleName(); name != "static" {
		l += " sched=" + s.Schedule.label()
	}
	return l
}

// Built is a materialized Scenario: the constructed network, algorithm,
// adversary, and sim config, ready to run. Building is deterministic — the
// same Scenario always materializes the same values.
type Built struct {
	// Scenario is the spec this was built from.
	Scenario Scenario
	// Net is the constructed network (its N() may differ from the requested
	// size for structural generators).
	Net *graph.Dual
	// Alg is the algorithm, constructed for Net.N() processes.
	Alg sim.Algorithm
	// Adv is the adversary.
	Adv sim.Adversary
	// Sched is the epoch schedule built over Net; a static scenario gets
	// graph.Static(Net), so Run paths are uniformly dynamic.
	Sched graph.Schedule
	// Cfg is the run configuration (callers may adjust, e.g. MaxRounds,
	// before running).
	Cfg sim.Config
}

// Build validates and materializes the scenario.
func (s Scenario) Build() (*Built, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	net, err := registry.Topology(s.Topology.Name, s.N, s.Seed, s.Topology.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	alg, err := registry.Algorithm(s.Algorithm.Name, net.N(), s.Algorithm.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	adv, err := registry.Adversary(s.Adversary.Name, s.Adversary.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sched, err := registry.Schedule(s.scheduleName(), net, s.Schedule.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &Built{
		Scenario: s,
		Net:      net,
		Alg:      alg,
		Adv:      adv,
		Sched:    sched,
		Cfg: sim.Config{
			Rule:      s.Rule,
			Start:     s.Start,
			MaxRounds: s.MaxRounds,
			Seed:      s.Seed,
		},
	}, nil
}

// schedule resolves the run schedule: the built one when set, else the
// static wrap of Net — so a hand-constructed Built (every field is
// exported) keeps the historical fixed-network behaviour.
func (b *Built) schedule() graph.Schedule {
	if b.Sched != nil {
		return b.Sched
	}
	return graph.Static(b.Net)
}

// RunContext executes the built scenario once: dynamically when a schedule
// is set, which for the static schedule is exactly the fixed-network run. A
// single run is one indivisible trial, so ctx is only consulted before it
// starts.
func (b *Built) RunContext(ctx context.Context) (*sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sim.RunDynamic(b.schedule(), b.Alg, b.Adv, b.Cfg)
}

// Run is RunContext without cancellation (compatibility entry point).
func (b *Built) Run() (*sim.Result, error) {
	return b.RunContext(context.Background())
}

// RunManyContext fans trials independent runs over the engine (see
// engine.RunManyContext for the seed-derivation, determinism, and
// cancellation contracts, which dynamic scenarios inherit via
// engine.RunManyScheduleContext).
func (b *Built) RunManyContext(ctx context.Context, trials int, ec engine.Config) ([]*sim.Result, error) {
	return engine.RunManyScheduleContext(ctx, b.schedule(), b.Alg, b.Adv, b.Cfg, trials, ec)
}

// RunMany is RunManyContext without cancellation (compatibility entry
// point).
func (b *Built) RunMany(trials int, ec engine.Config) ([]*sim.Result, error) {
	return b.RunManyContext(context.Background(), trials, ec)
}

// RunStreamContext is the memory-bounded sweep, cancellable at shard
// granularity (see engine.RunStreamContext).
func (b *Built) RunStreamContext(ctx context.Context, trials int, ec engine.Config, sc engine.StreamConfig) (*engine.TrialSummary, error) {
	return engine.RunStreamScheduleContext(ctx, b.schedule(), b.Alg, b.Adv, b.Cfg, trials, ec, sc)
}

// RunStream is RunStreamContext without cancellation (compatibility entry
// point).
func (b *Built) RunStream(trials int, ec engine.Config, sc engine.StreamConfig) (*engine.TrialSummary, error) {
	return b.RunStreamContext(context.Background(), trials, ec, sc)
}

// RunStreamFromContext is RunStreamContext with the checkpoint-restore seed
// map and the per-shard completion callback exposed (see
// engine.RunStreamScheduleFromContext) — the entry point progress trackers
// and checkpoint writers hook into.
func (b *Built) RunStreamFromContext(ctx context.Context, trials int, ec engine.Config, sc engine.StreamConfig,
	seed map[int]*engine.TrialSummary, onShard func(engine.ShardState)) (*engine.TrialSummary, error) {
	return engine.RunStreamScheduleFromContext(ctx, b.schedule(), b.Alg, b.Adv, b.Cfg, trials, ec, sc, seed, onShard)
}

// RunContext builds the scenario and executes it once.
func (s Scenario) RunContext(ctx context.Context) (*sim.Result, error) {
	b, err := s.Build()
	if err != nil {
		return nil, err
	}
	return b.RunContext(ctx)
}

// Run is RunContext without cancellation (compatibility entry point).
func (s Scenario) Run() (*sim.Result, error) {
	return s.RunContext(context.Background())
}

// RunManyContext builds the scenario and fans trials runs over the engine.
func (s Scenario) RunManyContext(ctx context.Context, trials int, ec engine.Config) ([]*sim.Result, error) {
	b, err := s.Build()
	if err != nil {
		return nil, err
	}
	return b.RunManyContext(ctx, trials, ec)
}

// RunMany is RunManyContext without cancellation (compatibility entry
// point).
func (s Scenario) RunMany(trials int, ec engine.Config) ([]*sim.Result, error) {
	return s.RunManyContext(context.Background(), trials, ec)
}

// RunStreamContext builds the scenario and executes a memory-bounded sweep.
func (s Scenario) RunStreamContext(ctx context.Context, trials int, ec engine.Config, sc engine.StreamConfig) (*engine.TrialSummary, error) {
	b, err := s.Build()
	if err != nil {
		return nil, err
	}
	return b.RunStreamContext(ctx, trials, ec, sc)
}

// RunStream is RunStreamContext without cancellation (compatibility entry
// point).
func (s Scenario) RunStream(trials int, ec engine.Config, sc engine.StreamConfig) (*engine.TrialSummary, error) {
	return s.RunStreamContext(context.Background(), trials, ec, sc)
}

package spec

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"dualgraph/internal/engine"
)

// Absent and explicit-v1 version fields are accepted; unknown versions are
// rejected with the typed error, for both Scenario and Sweep documents.
func TestWireVersionGate(t *testing.T) {
	var sc Scenario
	if err := json.Unmarshal([]byte(`{"topology":{"name":"clique-bridge"},"algorithm":{"name":"harmonic"},"adversary":{"name":"greedy"},"n":17,"rule":"CR4","start":"async","seed":1}`), &sc); err != nil {
		t.Fatalf("versionless scenario: %v", err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("versionless scenario validate: %v", err)
	}

	var sw Sweep
	if err := json.Unmarshal([]byte(`{"version":1,"base":{"version":1,"n":17}}`), &sw); err != nil {
		t.Fatalf("explicit v1 sweep: %v", err)
	}

	var vErr *ErrUnsupportedVersion
	if err := json.Unmarshal([]byte(`{"version":2,"base":{"n":17}}`), &sw); !errors.As(err, &vErr) {
		t.Fatalf("v2 sweep: want *ErrUnsupportedVersion, got %v", err)
	} else if vErr.Kind != "sweep" || vErr.Got != 2 {
		t.Fatalf("v2 sweep error fields: %+v", vErr)
	}
	if err := json.Unmarshal([]byte(`{"base":{"version":7,"n":17}}`), &sw); !errors.As(err, &vErr) {
		t.Fatalf("v7 base scenario: want *ErrUnsupportedVersion, got %v", err)
	} else if vErr.Kind != "scenario" || vErr.Got != 7 {
		t.Fatalf("v7 scenario error fields: %+v", vErr)
	}

	// Programmatically built documents hit the same gate via Validate/Cells.
	bad := Default()
	bad.Version = 3
	if err := bad.Validate(); !errors.As(err, &vErr) {
		t.Fatalf("validate v3 scenario: want *ErrUnsupportedVersion, got %v", err)
	}
	if _, err := (Sweep{Version: 9, Base: Default()}).Cells(); !errors.As(err, &vErr) {
		t.Fatalf("cells of v9 sweep: want *ErrUnsupportedVersion, got %v", err)
	}
}

// The version field must not change the serialized form of pre-versioning
// documents: a zero version marshals to no "version" key at all.
func TestVersionZeroMarshalsAbsent(t *testing.T) {
	b, err := json.Marshal(Default())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"version"`) {
		t.Fatalf("zero-version scenario marshalled a version key: %s", b)
	}
	sb, err := json.Marshal(Sweep{Base: Default()})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(sb), `"version"`) {
		t.Fatalf("zero-version sweep marshalled a version key: %s", sb)
	}
}

// Duplicate axis values expand to colliding labels and must be rejected
// with the typed error naming both cells.
func TestDuplicateCellLabelsRejected(t *testing.T) {
	sw := Sweep{Base: Default(), Seeds: []int64{1, 2, 1}}
	_, err := sw.Cells()
	var dup *ErrDuplicateLabel
	if !errors.As(err, &dup) {
		t.Fatalf("want *ErrDuplicateLabel, got %v", err)
	}
	if dup.First != 0 || dup.Second != 2 || dup.Label != "seed=1" {
		t.Fatalf("collision fields: %+v", dup)
	}

	// Identical choices on a constructor axis collide too.
	sw = Sweep{Base: Default(), Adversaries: []Choice{{Name: "greedy"}, {Name: "greedy"}}}
	if _, err := sw.Cells(); !errors.As(err, &dup) {
		t.Fatalf("duplicate adversaries: want *ErrDuplicateLabel, got %v", err)
	}

	// Distinct values stay accepted.
	sw = Sweep{Base: Default(), Seeds: []int64{1, 2, 3}}
	if _, err := sw.Cells(); err != nil {
		t.Fatalf("distinct seeds: %v", err)
	}
}

// Stream must deliver cells in enumeration order, each equal to the
// matching entry of the returned grid, regardless of worker count.
func TestSweepStreamOrdered(t *testing.T) {
	sw := Sweep{
		Base:   Default(),
		Seeds:  []int64{1, 2, 3, 4, 5},
		Trials: 8,
	}
	sw.Base.N = 13
	for _, workers := range []int{1, 3, 8} {
		var streamed []CellResult
		grid, err := sw.Stream(context.Background(), engine.Config{Workers: workers}, engine.StreamConfig{}, func(cr CellResult) {
			streamed = append(streamed, cr)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(streamed) != len(grid.Cells) {
			t.Fatalf("workers=%d: streamed %d cells, grid has %d", workers, len(streamed), len(grid.Cells))
		}
		for i, cr := range streamed {
			if cr.Cell.Index != i {
				t.Fatalf("workers=%d: position %d delivered cell %d", workers, i, cr.Cell.Index)
			}
			if cr.Summary != grid.Cells[i].Summary {
				t.Fatalf("workers=%d: cell %d streamed summary is not the grid summary", workers, i)
			}
			if got, want := FormatSummary(cr.Summary), FormatSummary(grid.Cells[i].Summary); got != want {
				t.Fatalf("workers=%d: cell %d rendered summaries differ:\n%s\n%s", workers, i, got, want)
			}
		}
	}
}

// A cancelled Stream delivers a strict enumeration-order prefix.
func TestSweepStreamCancelDeliversPrefix(t *testing.T) {
	sw := Sweep{Base: Default(), Seeds: []int64{1, 2, 3, 4, 5, 6}, Trials: 16}
	sw.Base.N = 13
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var streamed []int
	_, err := sw.Stream(ctx, engine.Config{Workers: 2}, engine.StreamConfig{}, func(cr CellResult) {
		streamed = append(streamed, cr.Cell.Index)
		if len(streamed) == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for i, c := range streamed {
		if c != i {
			t.Fatalf("delivered sequence %v is not an enumeration-order prefix", streamed)
		}
	}
	if len(streamed) < 2 {
		t.Fatalf("cancel fired after two deliveries, got %d", len(streamed))
	}
}

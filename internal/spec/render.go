package spec

import (
	"fmt"
	"math"

	"dualgraph/internal/engine"
)

// FormatSummary renders one streamed trial summary as the canonical
// single-line aggregate — the format `dgsim -stream` and `dgsim -spec` have
// always printed. The sweep service streams exactly these lines, which is
// what makes its HTTP results byte-comparable to local CLI output: both
// sides render through this one function.
func FormatSummary(sum *engine.TrialSummary) string {
	stat := func(f func() (float64, error)) float64 {
		v, err := f()
		if err != nil {
			return math.NaN()
		}
		return v
	}
	return fmt.Sprintf("completed=%d/%d rounds: min=%.0f mean=%.2f p50=%.2f p90=%.2f p95=%.2f p99=%.2f max=%.0f mean-transmissions=%.1f",
		sum.Completed, sum.Trials,
		stat(sum.Rounds.Min), stat(sum.Rounds.Mean),
		stat(func() (float64, error) { return sum.Rounds.Quantile(0.5) }),
		stat(func() (float64, error) { return sum.Rounds.Quantile(0.9) }),
		stat(func() (float64, error) { return sum.Rounds.Quantile(0.95) }),
		stat(func() (float64, error) { return sum.Rounds.Quantile(0.99) }),
		stat(sum.Rounds.Max), stat(sum.Transmissions.Mean))
}

package exhaustive

import (
	"errors"
	"math/rand"
	"testing"

	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// tinyBridge returns the 5-node clique-bridge network, small enough for
// exhaustive search.
func tinyBridge(t *testing.T) *graph.Dual {
	t.Helper()
	d, err := graph.CliqueBridge(5)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSearchClassicalNetworkHasSingleBranch(t *testing.T) {
	// No unreliable edges: the adversary has no choices, so exactly the
	// branches along one execution are explored.
	d, err := graph.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(d, core.NewRoundRobin(), Config{Rule: sim.CR3, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllComplete {
		t.Fatal("round robin must complete on a line under every (trivial) adversary")
	}
	if res.WorstRounds != 3 {
		t.Fatalf("worst rounds = %d, want 3", res.WorstRounds)
	}
	if res.Branches != 4 {
		t.Fatalf("branches = %d, want 4 (one per prefix length)", res.Branches)
	}
}

func TestSearchWorstCaseAtLeastHeuristicAdversary(t *testing.T) {
	// The exhaustive worst case must dominate any fixed behaviour on the
	// same network — here the no-delivery baseline. (Domination over the
	// greedy heuristic and exact agreement with the adaptive adversary are
	// pinned in internal/adversary's cross-validation suite, which can
	// import both packages.)
	d := tinyBridge(t)
	alg := core.NewRoundRobin()

	heuristic, err := sim.Run(d, alg, &scriptedAdversary{}, sim.Config{
		Rule:  sim.CR1,
		Start: sim.SyncStart,
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !heuristic.Completed {
		t.Fatal("heuristic run must complete")
	}

	res, err := Search(d, alg, Config{Rule: sim.CR1, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllComplete {
		t.Fatal("round robin completes under every adversary behaviour")
	}
	if res.WorstRounds < heuristic.Rounds {
		t.Fatalf("exhaustive worst %d below heuristic adversary %d", res.WorstRounds, heuristic.Rounds)
	}
}

func TestSearchMatchesTheorem2OnTinyNetwork(t *testing.T) {
	// For round robin on clique-bridge, the Theorem 2 adversary's best
	// bridge is pid n-1 forcing n-1 rounds; the exhaustive search fixes the
	// identity assignment (bridge pid 2), under which the receiver gets the
	// message when process 2 transmits alone — round 2 at the earliest. The
	// worst case over deliveries must be at least that.
	d := tinyBridge(t)
	res, err := Search(d, core.NewRoundRobin(), Config{Rule: sim.CR1, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstRounds < 2 {
		t.Fatalf("worst rounds = %d, want >= 2", res.WorstRounds)
	}
}

func TestSearchStrongSelectAllBehavioursComplete(t *testing.T) {
	d := tinyBridge(t)
	alg, err := core.NewStrongSelect(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(d, alg, Config{Rule: sim.CR1, Horizon: 60, MaxBranches: 500000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllComplete {
		t.Fatal("strong select must complete under every adversary behaviour within the horizon")
	}
	if res.WorstRounds < 2 {
		t.Fatalf("unexpectedly fast worst case: %d", res.WorstRounds)
	}
}

func TestSearchWorstScriptReplays(t *testing.T) {
	// The returned worst delivery script, replayed, must reproduce the
	// reported completion round.
	d := tinyBridge(t)
	alg := core.NewRoundRobin()
	res, err := Search(d, alg, Config{Rule: sim.CR1, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	script := make([][]graph.EdgeID, len(res.WorstDeliveries))
	for r, arcs := range res.WorstDeliveries {
		for _, arc := range arcs {
			id, ok := d.UnreliableEdgeID(arc.From, arc.To)
			if !ok {
				t.Fatalf("worst script contains non-unreliable arc (%d,%d)", arc.From, arc.To)
			}
			script[r] = append(script[r], id)
		}
	}
	run, err := sim.Run(d, alg, &scriptedAdversary{script: script}, sim.Config{
		Rule:      sim.CR1,
		Start:     sim.SyncStart,
		MaxRounds: 30,
		Seed:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed || run.Rounds != res.WorstRounds {
		t.Fatalf("replay gave (%v, %d), want (true, %d)", run.Completed, run.Rounds, res.WorstRounds)
	}
}

func TestSearchBudgetExceeded(t *testing.T) {
	d := tinyBridge(t)
	_, err := Search(d, core.NewRoundRobin(), Config{Rule: sim.CR1, Horizon: 30, MaxBranches: 2})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestSearchTooManyArcs(t *testing.T) {
	// An 8-node clique-bridge has 7 unreliable arcs from clique nodes when
	// several transmit; cap at 1 to trigger the error. Use a spontaneous
	// algorithm so two clique nodes send together early.
	d, err := graph.CliqueBridge(8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Search(d, core.NewRoundRobin(), Config{Rule: sim.CR1, Horizon: 10, MaxArcsPerRound: 0})
	// MaxArcsPerRound 0 defaults to 16, so force a tiny cap instead:
	_, err = Search(d, core.NewRoundRobin(), Config{Rule: sim.CR1, Horizon: 10, MaxArcsPerRound: 1})
	if err == nil {
		// Round robin has single senders: source (node 0) has one
		// unreliable arc (to the receiver). A single arc never exceeds cap
		// 1, so no error is acceptable here; tighten with a chattier
		// algorithm below.
		t.Log("single-sender algorithm stayed under the cap; checking multi-sender")
	}
	_, err = Search(d, chatty{}, Config{Rule: sim.CR1, Horizon: 4, MaxArcsPerRound: 1})
	if !errors.Is(err, ErrTooManyArcs) {
		t.Fatalf("want ErrTooManyArcs, got %v", err)
	}
}

// chatty transmits every round from every process (even without the
// message), maximizing the deliverable arc count.
type chatty struct{}

func (chatty) Name() string { return "chatty" }

func (chatty) NewProcess(id, n int, _ *rand.Rand) sim.Process { return chattyProc{} }

type chattyProc struct{}

func (chattyProc) Start(int, bool)            {}
func (chattyProc) Decide(int) bool            { return true }
func (chattyProc) Receive(int, sim.Reception) {}

func TestSearchSignatureDeduplication(t *testing.T) {
	// On the 5-node bridge network with a single sender owning one
	// unreliable arc there are 2 raw choices per round but they differ in
	// signature, while rounds without senders have exactly one choice: the
	// branch count must stay far below the raw 2^arcs * rounds explosion.
	d := tinyBridge(t)
	res, err := Search(d, core.NewRoundRobin(), Config{Rule: sim.CR1, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches > 4000 {
		t.Fatalf("deduplication ineffective: %d branches", res.Branches)
	}
}

// Package exhaustive performs worst-case adversary search by exhaustive
// exploration: for small networks and bounded horizons it enumerates every
// possible per-round choice of unreliable-edge deliveries, replaying the
// (deterministic) algorithm along each branch, and reports the execution
// that maximizes broadcast completion time.
//
// This turns the model's universally-quantified adversary into an executable
// check: "algorithm A completes within k rounds on network N under every
// adversary behaviour" becomes a terminating search. Heuristic adversaries
// (such as adversary.GreedyCollider) can be validated against the true
// worst case it finds.
//
// A per-round adversary strategy is a subset of the round's deliverable
// unreliable arcs, represented as a bitset over the dual's dense EdgeID
// index; scripts are replayed through the engine's allocation-free edge-id
// sink. The search replays executions from round 1 for every expansion, so
// the algorithm must be deterministic (it must ignore its rng); the
// per-round branching is deduplicated by reception signature, which keeps
// the tree small on the paper's constructions.
//
// The package has two drivers over one shared game: Search/SearchSchedule is
// the offline enumerator (the whole tree, up front), and Planner is the
// memoized online form of the same search — the engine behind
// adversary.Adaptive — which best-responds one round at a time against a live
// run while a transposition table carries everything the earlier rounds
// already explored.
package exhaustive

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// Config parameterizes a search.
type Config struct {
	// Rule is the collision rule (CR4 collisions resolve to silence during
	// the search; see package comment). Default CR1.
	Rule sim.CollisionRule
	// Start is the start rule (default SyncStart, the lower-bound setting).
	Start sim.StartRule
	// Horizon bounds execution length; branches that have not completed by
	// the horizon are counted as incomplete.
	Horizon int
	// MaxBranches caps the total number of explored branches; the search
	// returns ErrBudgetExceeded beyond it.
	MaxBranches int
	// MaxArcsPerRound caps the number of deliverable unreliable arcs
	// enumerated in one round (2^arcs subsets); beyond it the search fails
	// rather than silently truncating. It is capped at 62 so a round's
	// strategy always fits one edge-id bitset word.
	MaxArcsPerRound int
	// Seed drives epoch materialization for schedule-aware searches
	// (SearchSchedule): the worst case is searched within the topology
	// trajectory this seed induces. Static searches ignore it beyond the
	// (inert) process rngs, so the default 0 reproduces the historical
	// Search behaviour exactly.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Rule == 0 {
		c.Rule = sim.CR1
	}
	if c.Start == 0 {
		c.Start = sim.SyncStart
	}
	if c.Horizon == 0 {
		c.Horizon = 32
	}
	if c.MaxBranches == 0 {
		c.MaxBranches = 200000
	}
	if c.MaxArcsPerRound == 0 {
		c.MaxArcsPerRound = 16
	}
	if c.MaxArcsPerRound > 62 {
		c.MaxArcsPerRound = 62
	}
	return c
}

// Result reports the outcome of a search.
type Result struct {
	// WorstRounds is the maximum completion round over all explored
	// adversary behaviours (Horizon+1 when some behaviour prevents
	// completion within the horizon).
	WorstRounds int
	// AllComplete reports whether every adversary behaviour allowed the
	// broadcast to complete within the horizon.
	AllComplete bool
	// Branches counts the distinct executions explored.
	Branches int
	// WorstDeliveries is the per-round delivery script of a worst execution
	// (round r at index r-1; each entry lists delivered unreliable arcs).
	WorstDeliveries [][]Arc
}

// Arc is a directed unreliable edge scheduled by the adversary.
type Arc struct {
	From, To graph.NodeID
}

// Errors returned by Search and Planner.
var (
	ErrBudgetExceeded = errors.New("exhaustive search exceeded its branch budget")
	ErrTooManyArcs    = errors.New("too many deliverable unreliable arcs in one round")
)

// Search explores all adversary delivery behaviours for alg on d and
// returns the worst case. The proc assignment is the identity.
func Search(d *graph.Dual, alg sim.Algorithm, cfg Config) (*Result, error) {
	return SearchSchedule(graph.Static(d), alg, cfg)
}

// SearchSchedule is Search over a time-varying network: the adversary's
// per-round choices are searched within the topology trajectory that
// (sched, cfg.Seed) induces, with each round's deliverable arcs and edge ids
// resolved against that round's epoch. A static schedule is exactly Search.
func SearchSchedule(sched graph.Schedule, alg sim.Algorithm, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	s := &searcher{g: newGame(sched, alg, cfg.Rule, cfg.Start, cfg.Seed), cfg: cfg}
	res := &Result{AllComplete: true}
	if err := s.explore(nil, res); err != nil {
		return nil, err
	}
	res.Branches = s.branches
	return res, nil
}

type searcher struct {
	g        *game
	cfg      Config
	branches int
}

// game is the machinery shared by the offline searcher and the online
// planner: a fixed (schedule, algorithm, rule, start, seed) tuple, script
// replay through the simulator, and the per-round dual resolution that keeps
// edge ids epoch-correct on dynamic schedules.
type game struct {
	sched graph.Schedule
	alg   sim.Algorithm
	rule  sim.CollisionRule
	start sim.StartRule
	seed  int64

	// One-entry epoch cache: searches resolve the same round's dual many
	// times in a row, and Epoch's purity contract makes the memo exact.
	cachedEpoch int
	cachedDual  *graph.Dual
}

func newGame(sched graph.Schedule, alg sim.Algorithm, rule sim.CollisionRule, start sim.StartRule, seed int64) *game {
	return &game{sched: sched, alg: alg, rule: rule, start: start, seed: seed, cachedEpoch: -1}
}

// dualAt returns the network of the given (1-based) round.
func (g *game) dualAt(round int) (*graph.Dual, error) {
	e := 0
	if l := g.sched.EpochLength(); l > 0 {
		e = (round - 1) / l
	}
	if e == g.cachedEpoch {
		return g.cachedDual, nil
	}
	d, err := g.sched.Epoch(e, g.seed)
	if err != nil {
		return nil, fmt.Errorf("schedule epoch %d: %w", e, err)
	}
	g.cachedEpoch, g.cachedDual = e, d
	return d, nil
}

// replay runs the algorithm under the given script for exactly `rounds`
// rounds and returns the transcript.
func (g *game) replay(script [][]graph.EdgeID, rounds int) (*sim.Result, error) {
	return sim.RunDynamic(g.sched, g.alg, &scriptedAdversary{script: script}, sim.Config{
		Rule:           g.rule,
		Start:          g.start,
		MaxRounds:      rounds,
		Seed:           g.seed,
		RecordSenders:  true,
		RunToMaxRounds: true,
	})
}

// scriptedAdversary replays a fixed per-round script of unreliable edge
// ids; rounds beyond the script deliver nothing. Edge ids are dense per
// epoch, so they are always resolved against the View's current Dual.
type scriptedAdversary struct {
	script [][]graph.EdgeID
}

var (
	_ sim.Adversary         = (*scriptedAdversary)(nil)
	_ sim.BufferedDeliverer = (*scriptedAdversary)(nil)
)

func (scriptedAdversary) Name() string { return "scripted" }

func (scriptedAdversary) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	procOf := make([]int, d.N())
	for i := range procOf {
		procOf[i] = i + 1
	}
	return procOf, nil
}

func (a *scriptedAdversary) Deliver(v *sim.View, _ []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	if v.Round > len(a.script) {
		return nil
	}
	out := make(map[graph.NodeID][]graph.NodeID)
	for _, id := range a.script[v.Round-1] {
		from, to := v.Dual.UnreliableEdge(id)
		out[from] = append(out[from], to)
	}
	return out
}

// DeliverInto implements sim.BufferedDeliverer: scripted edge ids feed the
// sink's direct-index entry point, so replays allocate nothing per round.
func (a *scriptedAdversary) DeliverInto(v *sim.View, _ []graph.NodeID, sink *sim.DeliverySink) {
	if v.Round > len(a.script) {
		return
	}
	for _, id := range a.script[v.Round-1] {
		sink.AddEdgeID(id)
	}
}

func (a *scriptedAdversary) Resolve(_ *sim.View, _ graph.NodeID, _ []graph.NodeID) graph.NodeID {
	return sim.NoDelivery
}

// explore extends the script by one round in every inequivalent way.
func (s *searcher) explore(script [][]graph.EdgeID, res *Result) error {
	s.branches++
	if s.branches > s.cfg.MaxBranches {
		return ErrBudgetExceeded
	}
	depth := len(script)

	// Replay the prefix plus one round with no deliveries to learn the
	// senders of round depth+1 and the holder set entering it.
	run, err := s.g.replay(script, depth+1)
	if err != nil {
		return err
	}

	// Completion within the prefix ends this branch.
	completionRound, complete := completionOf(run, depth)
	if complete {
		if completionRound > res.WorstRounds {
			res.WorstRounds = completionRound
			res.WorstDeliveries, err = s.g.decodeScript(script)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if depth >= s.cfg.Horizon {
		res.AllComplete = false
		if s.cfg.Horizon+1 > res.WorstRounds {
			res.WorstRounds = s.cfg.Horizon + 1
			res.WorstDeliveries, err = s.g.decodeScript(script)
			if err != nil {
				return err
			}
		}
		return nil
	}

	d, err := s.g.dualAt(depth + 1)
	if err != nil {
		return err
	}
	senders := sendersAsNodes(run, depth+1)
	edges := deliverableEdges(d, senders)
	if len(edges) > s.cfg.MaxArcsPerRound {
		return fmt.Errorf("%w: %d arcs at round %d (cap %d)", ErrTooManyArcs, len(edges), depth+1, s.cfg.MaxArcsPerRound)
	}

	holders := holdersEntering(run, depth)
	seen := map[string]bool{}
	for mask := uint64(0); mask < 1<<len(edges); mask++ {
		// The strategy is the edge-id bitset `mask` over this round's
		// deliverable arcs; materialize it only when it survives dedup.
		sig := receptionSignature(d, s.cfg.Rule, senders, edges, mask, holders)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		next := append(cloneScript(script), decodeMask(edges, mask))
		if err := s.explore(next, res); err != nil {
			return err
		}
	}
	return nil
}

// decodeMask materializes the edge-id subset the bitset mask selects.
func decodeMask(edges []graph.EdgeID, mask uint64) []graph.EdgeID {
	choice := make([]graph.EdgeID, 0, len(edges))
	for i, id := range edges {
		if mask&(1<<uint(i)) != 0 {
			choice = append(choice, id)
		}
	}
	return choice
}

// completionOf returns the completion round if all nodes received the
// message within the first `rounds` rounds of the replay.
func completionOf(run *sim.Result, rounds int) (int, bool) {
	maxRecv := 0
	for _, r := range run.FirstReceive {
		if r < 0 || r > rounds {
			return 0, false
		}
		if r > maxRecv {
			maxRecv = r
		}
	}
	return maxRecv, true
}

// sendersAsNodes converts the recorded sender pids of the given round back
// to nodes (identity assignment).
func sendersAsNodes(run *sim.Result, round int) []graph.NodeID {
	if round > len(run.SendersByRound) {
		return nil
	}
	pids := run.SendersByRound[round-1]
	nodes := make([]graph.NodeID, len(pids))
	for i, pid := range pids {
		nodes[i] = graph.NodeID(pid - 1)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// holdersEntering reports which nodes hold the message at the start of round
// `rounds`+1.
func holdersEntering(run *sim.Result, rounds int) []bool {
	holders := make([]bool, len(run.FirstReceive))
	for node, r := range run.FirstReceive {
		holders[node] = r >= 0 && r <= rounds
	}
	return holders
}

// deliverableEdges lists the ids of the unreliable arcs available to the
// senders on d. Ids are emitted in ascending order: senders arrive sorted
// and each sender's fringe row is a contiguous ascending id range.
func deliverableEdges(d *graph.Dual, senders []graph.NodeID) []graph.EdgeID {
	var edges []graph.EdgeID
	for _, snd := range senders {
		base, targets := d.UnreliableEdges(snd)
		for i := range targets {
			edges = append(edges, base+graph.EdgeID(i))
		}
	}
	return edges
}

// decodeScript expands a per-round edge-id script into (from, to) arcs for
// the public result, resolving each round's ids against that round's epoch.
func (g *game) decodeScript(script [][]graph.EdgeID) ([][]Arc, error) {
	out := make([][]Arc, len(script))
	for r, round := range script {
		d, err := g.dualAt(r + 1)
		if err != nil {
			return nil, err
		}
		arcs := make([]Arc, len(round))
		for i, id := range round {
			from, to := d.UnreliableEdge(id)
			arcs[i] = Arc{From: from, To: to}
		}
		out[r] = arcs
	}
	return out, nil
}

// receptionSignature summarizes the observable outcome of a delivery choice
// (the bitset `mask` over `edges`): per node, the reception kind and (for
// deliveries) the sending node and its holder status. Choices with equal
// signatures lead to identical algorithm states and need exploring only
// once — and, chained round by round, the signatures fully determine the
// execution state, which is what makes the planner's transposition keys
// exact.
func receptionSignature(d *graph.Dual, rule sim.CollisionRule, senders []graph.NodeID, edges []graph.EdgeID, mask uint64, holders []bool) string {
	n := d.N()
	reaching := make([][]graph.NodeID, n)
	isSender := make([]bool, n)
	for _, snd := range senders {
		isSender[snd] = true
		reaching[snd] = append(reaching[snd], snd)
		for _, v := range d.ReliableOut(snd) {
			reaching[v] = append(reaching[v], snd)
		}
	}
	for i, id := range edges {
		if mask&(1<<uint(i)) != 0 {
			from, to := d.UnreliableEdge(id)
			reaching[to] = append(reaching[to], from)
		}
	}
	sig := make([]byte, 0, 2*n)
	for node := 0; node < n; node++ {
		sig = append(sig, receptionByte(rule, graph.NodeID(node), isSender[node], reaching[node], holders)...)
	}
	return string(sig)
}

func receptionByte(rule sim.CollisionRule, node graph.NodeID, isSender bool, reaching []graph.NodeID, holders []bool) []byte {
	const (
		silence   = 0xFE
		collision = 0xFF
	)
	delivered := func(from graph.NodeID) []byte {
		b := byte(0)
		if holders[from] {
			b = 1
		}
		return []byte{byte(from), b}
	}
	switch rule {
	case sim.CR1:
		switch len(reaching) {
		case 0:
			return []byte{silence, 0}
		case 1:
			return delivered(reaching[0])
		default:
			return []byte{collision, 0}
		}
	default: // CR2, CR3, CR4(silence)
		if isSender {
			return delivered(node)
		}
		switch len(reaching) {
		case 0:
			return []byte{silence, 0}
		case 1:
			return delivered(reaching[0])
		}
		if rule == sim.CR2 {
			return []byte{collision, 0}
		}
		return []byte{silence, 0}
	}
}

func cloneScript(script [][]graph.EdgeID) [][]graph.EdgeID {
	out := make([][]graph.EdgeID, len(script))
	for i, round := range script {
		out[i] = append([]graph.EdgeID(nil), round...)
	}
	return out
}

// Package exhaustive performs worst-case adversary search by exhaustive
// exploration: for small networks and bounded horizons it enumerates every
// possible per-round choice of unreliable-edge deliveries, replaying the
// (deterministic) algorithm along each branch, and reports the execution
// that maximizes broadcast completion time.
//
// This turns the model's universally-quantified adversary into an executable
// check: "algorithm A completes within k rounds on network N under every
// adversary behaviour" becomes a terminating search. Heuristic adversaries
// (such as adversary.GreedyCollider) can be validated against the true
// worst case it finds.
//
// A per-round adversary strategy is a subset of the round's deliverable
// unreliable arcs, represented as a bitset over the dual's dense EdgeID
// index; scripts are replayed through the engine's allocation-free edge-id
// sink. The search replays executions from round 1 for every expansion, so
// the algorithm must be deterministic (it must ignore its rng); the
// per-round branching is deduplicated by reception signature, which keeps
// the tree small on the paper's constructions.
package exhaustive

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// Config parameterizes a search.
type Config struct {
	// Rule is the collision rule (CR4 collisions resolve to silence during
	// the search; see package comment). Default CR1.
	Rule sim.CollisionRule
	// Start is the start rule (default SyncStart, the lower-bound setting).
	Start sim.StartRule
	// Horizon bounds execution length; branches that have not completed by
	// the horizon are counted as incomplete.
	Horizon int
	// MaxBranches caps the total number of explored branches; the search
	// returns ErrBudgetExceeded beyond it.
	MaxBranches int
	// MaxArcsPerRound caps the number of deliverable unreliable arcs
	// enumerated in one round (2^arcs subsets); beyond it the search fails
	// rather than silently truncating. It is capped at 62 so a round's
	// strategy always fits one edge-id bitset word.
	MaxArcsPerRound int
}

func (c Config) withDefaults() Config {
	if c.Rule == 0 {
		c.Rule = sim.CR1
	}
	if c.Start == 0 {
		c.Start = sim.SyncStart
	}
	if c.Horizon == 0 {
		c.Horizon = 32
	}
	if c.MaxBranches == 0 {
		c.MaxBranches = 200000
	}
	if c.MaxArcsPerRound == 0 {
		c.MaxArcsPerRound = 16
	}
	if c.MaxArcsPerRound > 62 {
		c.MaxArcsPerRound = 62
	}
	return c
}

// Result reports the outcome of a search.
type Result struct {
	// WorstRounds is the maximum completion round over all explored
	// adversary behaviours (Horizon+1 when some behaviour prevents
	// completion within the horizon).
	WorstRounds int
	// AllComplete reports whether every adversary behaviour allowed the
	// broadcast to complete within the horizon.
	AllComplete bool
	// Branches counts the distinct executions explored.
	Branches int
	// WorstDeliveries is the per-round delivery script of a worst execution
	// (round r at index r-1; each entry lists delivered unreliable arcs).
	WorstDeliveries [][]Arc
}

// Arc is a directed unreliable edge scheduled by the adversary.
type Arc struct {
	From, To graph.NodeID
}

// Errors returned by Search.
var (
	ErrBudgetExceeded = errors.New("exhaustive search exceeded its branch budget")
	ErrTooManyArcs    = errors.New("too many deliverable unreliable arcs in one round")
)

// Search explores all adversary delivery behaviours for alg on d and
// returns the worst case. The proc assignment is the identity.
func Search(d *graph.Dual, alg sim.Algorithm, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	s := &searcher{d: d, alg: alg, cfg: cfg}
	res := &Result{AllComplete: true}
	if err := s.explore(nil, res); err != nil {
		return nil, err
	}
	res.Branches = s.branches
	return res, nil
}

type searcher struct {
	d        *graph.Dual
	alg      sim.Algorithm
	cfg      Config
	branches int
}

// scriptedAdversary replays a fixed per-round script of unreliable edge
// ids; rounds beyond the script deliver nothing.
type scriptedAdversary struct {
	d      *graph.Dual
	script [][]graph.EdgeID
}

var (
	_ sim.Adversary         = (*scriptedAdversary)(nil)
	_ sim.BufferedDeliverer = (*scriptedAdversary)(nil)
)

func (scriptedAdversary) Name() string { return "scripted" }

func (scriptedAdversary) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	procOf := make([]int, d.N())
	for i := range procOf {
		procOf[i] = i + 1
	}
	return procOf, nil
}

func (a *scriptedAdversary) Deliver(v *sim.View, _ []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	if v.Round > len(a.script) {
		return nil
	}
	out := make(map[graph.NodeID][]graph.NodeID)
	for _, id := range a.script[v.Round-1] {
		from, to := a.d.UnreliableEdge(id)
		out[from] = append(out[from], to)
	}
	return out
}

// DeliverInto implements sim.BufferedDeliverer: scripted edge ids feed the
// sink's direct-index entry point, so replays allocate nothing per round.
func (a *scriptedAdversary) DeliverInto(v *sim.View, _ []graph.NodeID, sink *sim.DeliverySink) {
	if v.Round > len(a.script) {
		return
	}
	for _, id := range a.script[v.Round-1] {
		sink.AddEdgeID(id)
	}
}

func (a *scriptedAdversary) Resolve(_ *sim.View, _ graph.NodeID, _ []graph.NodeID) graph.NodeID {
	return sim.NoDelivery
}

// replay runs the algorithm under the given script for exactly `rounds`
// rounds and returns the transcript.
func (s *searcher) replay(script [][]graph.EdgeID, rounds int) (*sim.Result, error) {
	return sim.Run(s.d, s.alg, &scriptedAdversary{d: s.d, script: script}, sim.Config{
		Rule:           s.cfg.Rule,
		Start:          s.cfg.Start,
		MaxRounds:      rounds,
		Seed:           0,
		RecordSenders:  true,
		RunToMaxRounds: true,
	})
}

// explore extends the script by one round in every inequivalent way.
func (s *searcher) explore(script [][]graph.EdgeID, res *Result) error {
	s.branches++
	if s.branches > s.cfg.MaxBranches {
		return ErrBudgetExceeded
	}
	depth := len(script)

	// Replay the prefix plus one round with no deliveries to learn the
	// senders of round depth+1 and the holder set entering it.
	run, err := s.replay(script, depth+1)
	if err != nil {
		return err
	}

	// Completion within the prefix ends this branch.
	completionRound, complete := completionOf(run, depth)
	if complete {
		if completionRound > res.WorstRounds {
			res.WorstRounds = completionRound
			res.WorstDeliveries = s.decodeScript(script)
		}
		return nil
	}
	if depth >= s.cfg.Horizon {
		res.AllComplete = false
		if s.cfg.Horizon+1 > res.WorstRounds {
			res.WorstRounds = s.cfg.Horizon + 1
			res.WorstDeliveries = s.decodeScript(script)
		}
		return nil
	}

	senders := sendersAsNodes(run, depth+1)
	edges := s.deliverableEdges(senders)
	if len(edges) > s.cfg.MaxArcsPerRound {
		return fmt.Errorf("%w: %d arcs at round %d (cap %d)", ErrTooManyArcs, len(edges), depth+1, s.cfg.MaxArcsPerRound)
	}

	holders := holdersEntering(run, depth)
	seen := map[string]bool{}
	for mask := uint64(0); mask < 1<<len(edges); mask++ {
		// The strategy is the edge-id bitset `mask` over this round's
		// deliverable arcs; materialize it only when it survives dedup.
		sig := s.receptionSignature(senders, edges, mask, holders)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		choice := make([]graph.EdgeID, 0, len(edges))
		for i, id := range edges {
			if mask&(1<<uint(i)) != 0 {
				choice = append(choice, id)
			}
		}
		next := append(cloneScript(script), choice)
		if err := s.explore(next, res); err != nil {
			return err
		}
	}
	return nil
}

// completionOf returns the completion round if all nodes received the
// message within the first `rounds` rounds of the replay.
func completionOf(run *sim.Result, rounds int) (int, bool) {
	maxRecv := 0
	for _, r := range run.FirstReceive {
		if r < 0 || r > rounds {
			return 0, false
		}
		if r > maxRecv {
			maxRecv = r
		}
	}
	return maxRecv, true
}

// sendersAsNodes converts the recorded sender pids of the given round back
// to nodes (identity assignment).
func sendersAsNodes(run *sim.Result, round int) []graph.NodeID {
	if round > len(run.SendersByRound) {
		return nil
	}
	pids := run.SendersByRound[round-1]
	nodes := make([]graph.NodeID, len(pids))
	for i, pid := range pids {
		nodes[i] = graph.NodeID(pid - 1)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// holdersEntering reports which nodes hold the message at the start of round
// `rounds`+1.
func holdersEntering(run *sim.Result, rounds int) []bool {
	holders := make([]bool, len(run.FirstReceive))
	for node, r := range run.FirstReceive {
		holders[node] = r >= 0 && r <= rounds
	}
	return holders
}

// deliverableEdges lists the ids of the unreliable arcs available to the
// senders. Ids are emitted in ascending order: senders arrive sorted and
// each sender's fringe row is a contiguous ascending id range.
func (s *searcher) deliverableEdges(senders []graph.NodeID) []graph.EdgeID {
	var edges []graph.EdgeID
	for _, snd := range senders {
		base, targets := s.d.UnreliableEdges(snd)
		for i := range targets {
			edges = append(edges, base+graph.EdgeID(i))
		}
	}
	return edges
}

// decodeScript expands a per-round edge-id script into (from, to) arcs for
// the public result.
func (s *searcher) decodeScript(script [][]graph.EdgeID) [][]Arc {
	out := make([][]Arc, len(script))
	for r, round := range script {
		arcs := make([]Arc, len(round))
		for i, id := range round {
			from, to := s.d.UnreliableEdge(id)
			arcs[i] = Arc{From: from, To: to}
		}
		out[r] = arcs
	}
	return out
}

// receptionSignature summarizes the observable outcome of a delivery choice
// (the bitset `mask` over `edges`): per node, the reception kind and (for
// deliveries) the sending node and its holder status. Choices with equal
// signatures lead to identical algorithm states and need exploring only
// once.
func (s *searcher) receptionSignature(senders []graph.NodeID, edges []graph.EdgeID, mask uint64, holders []bool) string {
	n := s.d.N()
	reaching := make([][]graph.NodeID, n)
	isSender := make([]bool, n)
	for _, snd := range senders {
		isSender[snd] = true
		reaching[snd] = append(reaching[snd], snd)
		for _, v := range s.d.ReliableOut(snd) {
			reaching[v] = append(reaching[v], snd)
		}
	}
	for i, id := range edges {
		if mask&(1<<uint(i)) != 0 {
			from, to := s.d.UnreliableEdge(id)
			reaching[to] = append(reaching[to], from)
		}
	}
	sig := make([]byte, 0, 2*n)
	for node := 0; node < n; node++ {
		sig = append(sig, s.receptionByte(graph.NodeID(node), isSender[node], reaching[node], holders)...)
	}
	return string(sig)
}

func (s *searcher) receptionByte(node graph.NodeID, isSender bool, reaching []graph.NodeID, holders []bool) []byte {
	const (
		silence   = 0xFE
		collision = 0xFF
	)
	delivered := func(from graph.NodeID) []byte {
		b := byte(0)
		if holders[from] {
			b = 1
		}
		return []byte{byte(from), b}
	}
	switch s.cfg.Rule {
	case sim.CR1:
		switch len(reaching) {
		case 0:
			return []byte{silence, 0}
		case 1:
			return delivered(reaching[0])
		default:
			return []byte{collision, 0}
		}
	default: // CR2, CR3, CR4(silence)
		if isSender {
			return delivered(node)
		}
		switch len(reaching) {
		case 0:
			return []byte{silence, 0}
		case 1:
			return delivered(reaching[0])
		}
		if s.cfg.Rule == sim.CR2 {
			return []byte{collision, 0}
		}
		return []byte{silence, 0}
	}
}

func cloneScript(script [][]graph.EdgeID) [][]graph.EdgeID {
	out := make([][]graph.EdgeID, len(script))
	for i, round := range script {
		out[i] = append([]graph.EdgeID(nil), round...)
	}
	return out
}

package exhaustive

import (
	"fmt"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// PlannerConfig parameterizes an online best-response planner.
type PlannerConfig struct {
	// Rule is the collision rule of the run being planned against (CR4
	// collisions resolve to silence, the adversary's choice). Default CR1.
	Rule sim.CollisionRule
	// Start is the start rule (default SyncStart).
	Start sim.StartRule
	// Seed is the run seed of the execution being planned against; replays
	// and epoch materialization use it, so the planner's model of the run is
	// exact (deterministic algorithms ignore it, randomized ones are
	// predicted perfectly — the paper's adversary knows the coin flips of
	// the past and, through replay, the algorithm's committed behaviour).
	Seed int64
	// SearchRounds is the evaluation horizon: executions that have not
	// completed by then are valued SearchRounds+1 (incomplete, the worst
	// outcome). Default 32.
	SearchRounds int
	// DeliverRounds is the adversary's delivery horizon h: unreliable
	// deliveries are allowed only in rounds 1..h, so the strategy sets nest
	// as h grows — value(h) ≤ value(h+1) by construction, and
	// h ≥ SearchRounds is the unbounded best response. 0 means unbounded
	// (clamped to SearchRounds, beyond which deliveries cannot matter).
	DeliverRounds int
	// NodeBudget caps the search-tree expansions (replays) of one Plan
	// call; when exceeded the remaining subtrees are skipped and Plan
	// degrades to the best choice found so far — still deterministic, no
	// longer exact. Truncated subtree values are never memoized. Default
	// 200000.
	NodeBudget int
	// TableSize caps the transposition-table entry count; a full table
	// stops admitting (correctness is unaffected, later rounds just
	// re-search). Default 65536.
	TableSize int
	// MaxArcsPerRound caps the deliverable arcs enumerated in one round
	// (2^arcs subsets before signature dedup); beyond it planning fails with
	// ErrTooManyArcs rather than silently truncating. Default 16, cap 62.
	MaxArcsPerRound int
}

func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.Rule == 0 {
		c.Rule = sim.CR1
	}
	if c.Start == 0 {
		c.Start = sim.SyncStart
	}
	if c.SearchRounds == 0 {
		c.SearchRounds = 32
	}
	if c.DeliverRounds == 0 || c.DeliverRounds > c.SearchRounds {
		c.DeliverRounds = c.SearchRounds
	}
	if c.NodeBudget == 0 {
		c.NodeBudget = 200000
	}
	if c.TableSize == 0 {
		c.TableSize = 1 << 16
	}
	if c.MaxArcsPerRound == 0 {
		c.MaxArcsPerRound = 16
	}
	if c.MaxArcsPerRound > 62 {
		c.MaxArcsPerRound = 62
	}
	return c
}

// Planner is the memoized online form of the exhaustive search: Plan(prefix)
// returns the delivery choice for round len(prefix)+1 that maximizes the
// eventual completion round, assuming the planner keeps best-responding in
// later rounds. It is the engine behind adversary.Adaptive.
//
// The search state after a script prefix is fully determined by the chain of
// per-round reception signatures (the algorithm is deterministic given the
// run seed), so subtree values are memoized in a transposition table keyed
// on a 64-bit chained hash of those signatures — each link also mixes the
// round index, which pins the epoch of dynamic schedules and the parity-
// and horizon-dependence of the value. Rounds after the first therefore
// re-use everything round 1 explored: a warm Plan call is one prefix replay
// plus table lookups.
//
// Determinism contract: for a fixed (schedule, algorithm, config), Plan is a
// pure function of the prefix — masks are enumerated in ascending bitset
// order, signature-equal choices are represented by the first (lowest-mask,
// hence lowest-EdgeID) member of their class, and ties in value keep the
// first maximizer. No randomness, no map-iteration order, no wall clock:
// adaptive-adversary sweeps stay bit-identical at any worker count.
//
// A Planner is not safe for concurrent use; fork one per run.
type Planner struct {
	g     *game
	cfg   PlannerConfig
	table map[uint64]int32
	nodes int // expansions spent by the current Plan call
}

// NewPlanner builds a planner for alg on sched under cfg.
func NewPlanner(sched graph.Schedule, alg sim.Algorithm, cfg PlannerConfig) (*Planner, error) {
	cfg = cfg.withDefaults()
	if cfg.SearchRounds < 1 {
		return nil, fmt.Errorf("planner: search rounds %d < 1", cfg.SearchRounds)
	}
	if cfg.DeliverRounds < 1 {
		return nil, fmt.Errorf("planner: delivery horizon %d < 1", cfg.DeliverRounds)
	}
	if cfg.NodeBudget < 1 {
		return nil, fmt.Errorf("planner: node budget %d < 1", cfg.NodeBudget)
	}
	if cfg.TableSize < 0 {
		return nil, fmt.Errorf("planner: table size %d < 0", cfg.TableSize)
	}
	return &Planner{
		g:     newGame(sched, alg, cfg.Rule, cfg.Start, cfg.Seed),
		cfg:   cfg,
		table: make(map[uint64]int32),
	}, nil
}

// Config returns the planner's effective (defaulted) configuration.
func (p *Planner) Config() PlannerConfig { return p.cfg }

// TableLen reports the current transposition-table occupancy.
func (p *Planner) TableLen() int { return len(p.table) }

// rootHash seeds the signature chain (FNV-1a offset basis).
const rootHash uint64 = 14695981039346656037

// chainHash extends the signature chain: FNV-1a over sig and the round
// index, finalized SplitMix64-style so single-byte differences diffuse.
func chainHash(h uint64, sig string, round int) uint64 {
	const prime = 1099511628211
	z := h ^ uint64(round)*0x9e3779b97f4a7c15
	for i := 0; i < len(sig); i++ {
		z = (z ^ uint64(sig[i])) * prime
	}
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Plan returns the best delivery for round len(prefix)+1 of the execution
// whose rounds so far delivered exactly prefix (round r at index r-1; pad
// rounds without deliveries with empty entries). The returned ids are over
// that round's epoch, ascending. A nil result means "deliver nothing": the
// broadcast already completed, or the round is beyond the delivery or
// search horizon.
func (p *Planner) Plan(prefix [][]graph.EdgeID) ([]graph.EdgeID, error) {
	depth := len(prefix)
	if depth >= p.cfg.DeliverRounds || depth >= p.cfg.SearchRounds {
		return nil, nil
	}
	p.nodes = 0
	h, run, err := p.prefixState(prefix)
	if err != nil {
		return nil, err
	}
	if _, done := completionOf(run, depth); done {
		return nil, nil
	}
	d, err := p.g.dualAt(depth + 1)
	if err != nil {
		return nil, err
	}
	senders := sendersAsNodes(run, depth+1)
	edges := deliverableEdges(d, senders)
	if len(edges) > p.cfg.MaxArcsPerRound {
		return nil, fmt.Errorf("%w: %d arcs at round %d (cap %d)", ErrTooManyArcs, len(edges), depth+1, p.cfg.MaxArcsPerRound)
	}
	holders := holdersEntering(run, depth)
	seen := map[string]bool{}
	best := -1
	var bestChoice []graph.EdgeID
	for mask := uint64(0); mask < 1<<len(edges); mask++ {
		sig := receptionSignature(d, p.cfg.Rule, senders, edges, mask, holders)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		choice := decodeMask(edges, mask)
		v, _, err := p.value(append(prefix, choice), chainHash(h, sig, depth+1))
		if err != nil {
			return nil, err
		}
		// Strict > keeps the first maximizer: the lowest surviving mask,
		// hence the lexicographically lowest EdgeID set.
		if v > best {
			best = v
			bestChoice = choice
		}
	}
	return bestChoice, nil
}

// value computes the worst (maximal) completion round reachable from the
// given script prefix, SearchRounds+1 when some continuation prevents
// completion. exact is false when the node budget truncated the subtree, in
// which case the value is a best-effort lower bound and is not memoized.
// The script slice is only read within the call (append-extended per child,
// never retained), so callers may pass shared backing arrays.
func (p *Planner) value(script [][]graph.EdgeID, h uint64) (v int, exact bool, err error) {
	if v, ok := p.table[h]; ok {
		return int(v), true, nil
	}
	if p.nodes >= p.cfg.NodeBudget {
		return 0, false, nil
	}
	p.nodes++
	depth := len(script)

	// Beyond the delivery horizon the suffix is delivery-free, so one replay
	// to the evaluation horizon settles the value exactly.
	if depth >= p.cfg.DeliverRounds {
		run, err := p.g.replay(script, p.cfg.SearchRounds)
		if err != nil {
			return 0, false, err
		}
		v, done := completionOf(run, p.cfg.SearchRounds)
		if !done {
			v = p.cfg.SearchRounds + 1
		}
		p.store(h, v)
		return v, true, nil
	}

	run, err := p.g.replay(script, depth+1)
	if err != nil {
		return 0, false, err
	}
	if round, done := completionOf(run, depth); done {
		p.store(h, round)
		return round, true, nil
	}
	if depth >= p.cfg.SearchRounds {
		v := p.cfg.SearchRounds + 1
		p.store(h, v)
		return v, true, nil
	}

	d, err := p.g.dualAt(depth + 1)
	if err != nil {
		return 0, false, err
	}
	senders := sendersAsNodes(run, depth+1)
	edges := deliverableEdges(d, senders)
	if len(edges) > p.cfg.MaxArcsPerRound {
		return 0, false, fmt.Errorf("%w: %d arcs at round %d (cap %d)", ErrTooManyArcs, len(edges), depth+1, p.cfg.MaxArcsPerRound)
	}
	holders := holdersEntering(run, depth)
	seen := map[string]bool{}
	best := 0
	exact = true
	for mask := uint64(0); mask < 1<<len(edges); mask++ {
		sig := receptionSignature(d, p.cfg.Rule, senders, edges, mask, holders)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		cv, cex, err := p.value(append(script, decodeMask(edges, mask)), chainHash(h, sig, depth+1))
		if err != nil {
			return 0, false, err
		}
		if !cex {
			exact = false
		}
		if cv > best {
			best = cv
		}
	}
	if exact {
		p.store(h, best)
	}
	return best, exact, nil
}

// store admits a fully evaluated subtree value while the table has room.
func (p *Planner) store(h uint64, v int) {
	if len(p.table) < p.cfg.TableSize {
		p.table[h] = int32(v)
	}
}

// prefixState recomputes the signature-chain hash of an already-played
// prefix with a single replay: the transcript carries every round's senders
// and holder sets, and each round's played mask is recovered from its
// delivered edge ids.
func (p *Planner) prefixState(prefix [][]graph.EdgeID) (uint64, *sim.Result, error) {
	depth := len(prefix)
	run, err := p.g.replay(prefix, depth+1)
	if err != nil {
		return 0, nil, err
	}
	h := rootHash
	for r := 1; r <= depth; r++ {
		d, err := p.g.dualAt(r)
		if err != nil {
			return 0, nil, err
		}
		senders := sendersAsNodes(run, r)
		edges := deliverableEdges(d, senders)
		if len(edges) > p.cfg.MaxArcsPerRound {
			return 0, nil, fmt.Errorf("%w: %d arcs at round %d (cap %d)", ErrTooManyArcs, len(edges), r, p.cfg.MaxArcsPerRound)
		}
		mask, err := maskOf(edges, prefix[r-1])
		if err != nil {
			return 0, nil, fmt.Errorf("prefix round %d: %w", r, err)
		}
		holders := holdersEntering(run, r-1)
		h = chainHash(h, receptionSignature(d, p.cfg.Rule, senders, edges, mask, holders), r)
	}
	return h, run, nil
}

// maskOf locates each delivered id's position within the round's ascending
// deliverable-edge list and returns the corresponding bitset.
func maskOf(edges []graph.EdgeID, delivered []graph.EdgeID) (uint64, error) {
	var mask uint64
next:
	for _, id := range delivered {
		for i, e := range edges {
			if e == id {
				mask |= 1 << uint(i)
				continue next
			}
		}
		return 0, fmt.Errorf("delivered edge id %d was not deliverable", id)
	}
	return mask, nil
}

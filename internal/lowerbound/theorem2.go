// Package lowerbound implements the paper's lower-bound constructions as
// executable adversary games: the Theorem 2 clique-bridge game that forces
// any deterministic algorithm to spend more than n-3 rounds in a
// 2-broadcastable network, the Theorem 4 Monte-Carlo harness bounding the
// success probability of randomized algorithms, and the Theorem 12
// candidate-set adversary that forces Ω(n log n) rounds on the complete
// layered network.
//
// The games drive deterministic algorithms (sim.Algorithm implementations
// that ignore their rng); re-running an execution from round 1 reproduces it
// exactly, which the drivers exploit to explore alternative extensions the
// way the proofs do.
package lowerbound

import (
	"fmt"
	"math/rand"

	"dualgraph/internal/adversary"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// Theorem2Result reports the outcome of the Theorem 2 game for one
// algorithm.
type Theorem2Result struct {
	// N is the network size.
	N int
	// PerBridge[i] is the completion round of execution α_i in which the
	// bridge holds process id i (index valid for 2..n-1); 0 entries unused.
	PerBridge []int
	// WorstBridgePid is the bridge assignment maximizing completion time.
	WorstBridgePid int
	// ForcedRounds is the completion round under the worst assignment
	// (MaxRounds+1 if some execution never completed).
	ForcedRounds int
	// WitnessRounds is the completion round of the omniscient two-round
	// schedule, certifying that the network is 2-broadcastable.
	WitnessRounds int
}

// RunTheorem2Game plays the Theorem 2 adversary game against a deterministic
// algorithm on the n-node clique-bridge network: for every bridge process id
// i in 2..n-1 it runs the execution α_i (collision rule CR1, synchronous
// start, the proof's delivery rules) and reports the worst completion time.
// Theorem 2 guarantees ForcedRounds > n-3 for every deterministic algorithm.
func RunTheorem2Game(n int, alg sim.Algorithm, maxRounds int) (*Theorem2Result, error) {
	if n < 4 {
		return nil, fmt.Errorf("theorem 2 game needs n >= 4, got %d", n)
	}
	d, err := graph.CliqueBridge(n)
	if err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = 50*n*n + 1000
	}
	res := &Theorem2Result{N: n, PerBridge: make([]int, n)}
	for i := 2; i <= n-1; i++ {
		adv, err := adversary.NewTheorem2(n, i)
		if err != nil {
			return nil, err
		}
		run, err := sim.Run(d, alg, adv, sim.Config{
			Rule:      sim.CR1,
			Start:     sim.SyncStart,
			MaxRounds: maxRounds,
			Seed:      0,
		})
		if err != nil {
			return nil, fmt.Errorf("execution α_%d: %w", i, err)
		}
		rounds := run.Rounds
		if !run.Completed {
			rounds = maxRounds + 1
		}
		res.PerBridge[i] = rounds
		if rounds > res.ForcedRounds {
			res.ForcedRounds = rounds
			res.WorstBridgePid = i
		}
	}

	witness, err := runTheorem2Witness(d, n)
	if err != nil {
		return nil, err
	}
	res.WitnessRounds = witness
	return res, nil
}

// witnessAlg is the omniscient schedule certifying 2-broadcastability of the
// clique-bridge network: process 1 (at the source) transmits in round 1 and
// the bridge process transmits in round 2.
type witnessAlg struct {
	bridgePid int
}

func (w witnessAlg) Name() string { return "witness" }

func (w witnessAlg) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	return &witnessProc{id: id, bridgePid: w.bridgePid}
}

type witnessProc struct {
	id        int
	bridgePid int
	has       bool
}

func (p *witnessProc) Start(_ int, hasMessage bool) { p.has = hasMessage }

func (p *witnessProc) Decide(round int) bool {
	if !p.has {
		return false
	}
	return (round == 1 && p.id == 1) || (round == 2 && p.id == p.bridgePid)
}

func (p *witnessProc) Receive(_ int, r sim.Reception) {
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

func runTheorem2Witness(d *graph.Dual, n int) (int, error) {
	adv, err := adversary.NewTheorem2(n, 2)
	if err != nil {
		return 0, err
	}
	run, err := sim.Run(d, witnessAlg{bridgePid: 2}, adv, sim.Config{
		Rule:      sim.CR1,
		Start:     sim.SyncStart,
		MaxRounds: 10,
		Seed:      0,
	})
	if err != nil {
		return 0, fmt.Errorf("witness: %w", err)
	}
	if !run.Completed {
		return 0, fmt.Errorf("witness schedule failed to broadcast")
	}
	return run.Rounds, nil
}

package lowerbound

import (
	"math/rand"
	"testing"

	"dualgraph/internal/core"
	"dualgraph/internal/sim"
)

func TestTheorem2GameForcesLinearRounds(t *testing.T) {
	for _, alg := range []sim.Algorithm{
		core.NewRoundRobin(),
		mustStrongSelect(t, 16),
	} {
		t.Run(alg.Name(), func(t *testing.T) {
			res, err := RunTheorem2Game(16, alg, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Theorem 2: no deterministic algorithm completes within n-3 rounds.
			if res.ForcedRounds <= 16-3 {
				t.Fatalf("forced rounds %d contradicts Theorem 2 bound > %d", res.ForcedRounds, 16-3)
			}
			// The same network is 2-broadcastable.
			if res.WitnessRounds != 2 {
				t.Fatalf("witness completed in %d rounds, want 2", res.WitnessRounds)
			}
		})
	}
}

func mustStrongSelect(t *testing.T, n int) sim.Algorithm {
	t.Helper()
	alg, err := core.NewStrongSelect(n)
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

func TestTheorem2GameValidation(t *testing.T) {
	if _, err := RunTheorem2Game(3, core.NewRoundRobin(), 0); err == nil {
		t.Fatal("expected error for n < 4")
	}
}

func TestTheorem2PerBridgeMonotoneForRoundRobin(t *testing.T) {
	// Round robin against the Theorem 2 adversary: the receiver gets the
	// message exactly when the bridge process first transmits alone, which
	// for bridge pid i is round i (all clique holders transmit in their own
	// slots; each slot has a single sender).
	n := 12
	res, err := RunTheorem2Game(n, core.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= n-1; i++ {
		if res.PerBridge[i] != i {
			t.Errorf("bridge pid %d: completion %d, want %d", i, res.PerBridge[i], i)
		}
	}
	if res.WorstBridgePid != n-1 || res.ForcedRounds != n-1 {
		t.Errorf("worst = (pid %d, %d rounds), want (pid %d, %d)",
			res.WorstBridgePid, res.ForcedRounds, n-1, n-1)
	}
}

func TestTheorem4BoundsRandomizedSuccess(t *testing.T) {
	n, k, trials := 14, 5, 60
	alg, err := core.NewUniform(0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTheorem4(n, k, trials, alg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != float64(k)/float64(n-2) {
		t.Fatalf("bound = %v, want %v", res.Bound, float64(k)/float64(n-2))
	}
	// Monte-Carlo estimate of the adversary's best case must respect the
	// theorem within sampling noise (3 sigma ~ 3*sqrt(p(1-p)/trials) < 0.2).
	if res.MinSuccess > res.Bound+0.2 {
		t.Fatalf("min success %v grossly exceeds Theorem 4 bound %v", res.MinSuccess, res.Bound)
	}
}

func TestTheorem4Validation(t *testing.T) {
	alg, err := core.NewUniform(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTheorem4(3, 1, 10, alg, 1); err == nil {
		t.Fatal("expected error for n < 4")
	}
	if _, err := RunTheorem4(10, 0, 10, alg, 1); err == nil {
		t.Fatal("expected error for k < 1")
	}
	if _, err := RunTheorem4(10, 8, 10, alg, 1); err == nil {
		t.Fatal("expected error for k > n-3")
	}
	if _, err := RunTheorem4(10, 3, 0, alg, 1); err == nil {
		t.Fatal("expected error for trials < 1")
	}
}

func TestTheorem12Validation(t *testing.T) {
	if _, err := RunTheorem12Game(8, core.NewRoundRobin(), 0); err == nil {
		t.Fatal("expected error for even n")
	}
	if _, err := RunTheorem12Game(11, core.NewRoundRobin(), 0); err == nil {
		t.Fatal("expected error for n-1 not a power of two")
	}
	if _, err := RunTheorem12Game(5, core.NewRoundRobin(), 0); err == nil {
		t.Fatal("expected error for n < 9")
	}
}

func TestTheorem12GameAgainstRoundRobin(t *testing.T) {
	n := 17
	res, err := RunTheorem12Game(n, core.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitHorizon {
		t.Fatal("round robin must keep isolating processes")
	}
	if res.StagesCompleted != res.StagesPlanned {
		t.Fatalf("completed %d of %d stages", res.StagesCompleted, res.StagesPlanned)
	}
	// Every stage must extend the execution by at least log2(n-1)-2 rounds.
	minExt := MinStageExtension(n)
	for k, ext := range res.StageExtensions {
		if ext < minExt {
			t.Errorf("stage %d extension %d below guaranteed %d", k+1, ext, minExt)
		}
	}
	if res.ForcedRounds < res.TheoryBound {
		t.Errorf("forced rounds %d below theory bound %d", res.ForcedRounds, res.TheoryBound)
	}
}

func TestTheorem12GameAgainstStrongSelect(t *testing.T) {
	if testing.Short() {
		t.Skip("strong select theorem-12 game is slow")
	}
	n := 17
	res, err := RunTheorem12Game(n, mustStrongSelect(t, n), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitHorizon && res.ForcedRounds < res.TheoryBound {
		t.Errorf("forced rounds %d below theory bound %d", res.ForcedRounds, res.TheoryBound)
	}
}

func TestTheorem12ForcedRoundsGrowSuperlinearly(t *testing.T) {
	// Ω(n log n): forced/(n) must grow with n for round robin.
	r9, err := RunTheorem12Game(9, core.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r33, err := RunTheorem12Game(33, core.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r33.ForcedRounds <= r9.ForcedRounds {
		t.Fatalf("forced rounds did not grow: %d (n=9) vs %d (n=33)", r9.ForcedRounds, r33.ForcedRounds)
	}
}

func TestMinStageExtension(t *testing.T) {
	cases := map[int]int{9: 1, 17: 2, 33: 3, 65: 4, 129: 5}
	for n, want := range cases {
		if got := MinStageExtension(n); got != want {
			t.Errorf("MinStageExtension(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTheorem12AdversarySegmentLookup(t *testing.T) {
	adv := &theorem12Adversary{
		segments: []segment{
			{fromRound: 1, alpha0: true},
			{fromRound: 5, aPids: map[int]bool{1: true}, pair: [2]int{2, 3}},
			{fromRound: 9, aPids: map[int]bool{1: true, 2: true, 3: true}, pair: [2]int{4, 5}},
		},
	}
	if !adv.segmentAt(3).alpha0 {
		t.Error("round 3 must be in the alpha0 segment")
	}
	if adv.segmentAt(5).pair != [2]int{2, 3} {
		t.Error("round 5 must be in the second segment")
	}
	if adv.segmentAt(100).pair != [2]int{4, 5} {
		t.Error("late rounds must use the last segment")
	}
}

// spontaneousAlg is a deterministic algorithm in which some processes send
// before holding the message (allowed under synchronous start); it exercises
// the adversary's rule 3 and the candidate-set machinery's N sets.
type spontaneousAlg struct{}

func (spontaneousAlg) Name() string { return "spontaneous" }

func (spontaneousAlg) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	return &spontaneousProc{id: id, n: n}
}

type spontaneousProc struct {
	id, n int
	has   bool
}

func (p *spontaneousProc) Start(_ int, hasMessage bool) { p.has = hasMessage }

func (p *spontaneousProc) Decide(round int) bool {
	// Holders use round robin; even-id non-holders chatter every id-th round.
	if p.has {
		return (round-1)%p.n == p.id-1
	}
	return p.id%2 == 0 && round%(p.id+2) == 0
}

func (p *spontaneousProc) Receive(_ int, r sim.Reception) {
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

func TestTheorem12GameAgainstSpontaneousSenders(t *testing.T) {
	n := 17
	res, err := RunTheorem12Game(n, spontaneousAlg{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitHorizon && res.ForcedRounds < res.TheoryBound {
		t.Errorf("forced rounds %d below theory bound %d", res.ForcedRounds, res.TheoryBound)
	}
}

package lowerbound

import (
	"fmt"

	"dualgraph/internal/adversary"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// Theorem4Result reports the Monte-Carlo estimate of a randomized
// algorithm's success probability within k rounds on the clique-bridge
// network, for the adversary's best bridge assignment.
type Theorem4Result struct {
	// N is the network size and K the round budget.
	N, K int
	// Trials is the number of executions per bridge assignment.
	Trials int
	// SuccessByBridge[i] is the fraction of trials in which the broadcast
	// reached all processes within K rounds when the bridge held process i
	// (index valid for 2..n-1).
	SuccessByBridge []float64
	// MinSuccess is the success probability under the adversary's best
	// (minimizing) bridge choice.
	MinSuccess float64
	// WorstBridgePid is that bridge choice.
	WorstBridgePid int
	// Bound is the Theorem 4 upper bound k/(n-2) on the success probability.
	Bound float64
}

// RunTheorem4 estimates, by simulation, the probability that the randomized
// algorithm completes broadcast within k rounds on the n-node clique-bridge
// network under the Theorem 2 adversary rules (CR1, synchronous start), for
// every bridge assignment, and compares the adversary's best choice against
// the k/(n-2) bound of Theorem 4.
func RunTheorem4(n, k, trials int, alg sim.Algorithm, seed int64) (*Theorem4Result, error) {
	if n < 4 {
		return nil, fmt.Errorf("theorem 4 needs n >= 4, got %d", n)
	}
	if k < 1 || k > n-3 {
		return nil, fmt.Errorf("theorem 4 needs 1 <= k <= n-3, got k=%d n=%d", k, n)
	}
	if trials < 1 {
		return nil, fmt.Errorf("theorem 4 needs trials >= 1, got %d", trials)
	}
	d, err := graph.CliqueBridge(n)
	if err != nil {
		return nil, err
	}
	res := &Theorem4Result{
		N:               n,
		K:               k,
		Trials:          trials,
		SuccessByBridge: make([]float64, n),
		MinSuccess:      2, // above any probability
		Bound:           float64(k) / float64(n-2),
	}
	for i := 2; i <= n-1; i++ {
		adv, err := adversary.NewTheorem2(n, i)
		if err != nil {
			return nil, err
		}
		successes := 0
		for trial := 0; trial < trials; trial++ {
			run, err := sim.Run(d, alg, adv, sim.Config{
				Rule:      sim.CR1,
				Start:     sim.SyncStart,
				MaxRounds: k,
				Seed:      seed + int64(trial)*7919 + int64(i),
			})
			if err != nil {
				return nil, fmt.Errorf("bridge %d trial %d: %w", i, trial, err)
			}
			if run.Completed {
				successes++
			}
		}
		p := float64(successes) / float64(trials)
		res.SuccessByBridge[i] = p
		if p < res.MinSuccess {
			res.MinSuccess = p
			res.WorstBridgePid = i
		}
	}
	return res, nil
}

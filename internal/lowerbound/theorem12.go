package lowerbound

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// Theorem12Result reports the outcome of the Theorem 12 game.
type Theorem12Result struct {
	// N is the network size (n-1 a power of two, n odd).
	N int
	// StagesPlanned is (n-1)/4, the number of layer-filling stages.
	StagesPlanned int
	// StagesCompleted counts stages finished before the horizon was hit.
	StagesCompleted int
	// StageExtensions[k] is the number of rounds stage k+1 added to the
	// execution; the proof guarantees at least log2(n-1)-2 per stage.
	StageExtensions []int
	// ForcedRounds is the length of the constructed execution prefix during
	// which the message is confined to the filled layers, i.e. a lower bound
	// on the algorithm's broadcast time in this network.
	ForcedRounds int
	// TheoryBound is the guaranteed (n-1)/4 · (log2(n-1) - 2) extension sum.
	TheoryBound int
	// HitHorizon reports that some stage never isolated its pair within the
	// horizon (an even stronger failure of the algorithm).
	HitHorizon bool
}

// MinStageExtension returns the per-stage extension the proof guarantees:
// log2(n-1) - 2 rounds.
func MinStageExtension(n int) int { return log2int(n-1) - 2 }

// theorem12Horizon caps the search for the next isolation round in a stage.
func theorem12Horizon(n int) int { return 50*n*n + 2000 }

// segment describes the adversary rules in force for a range of rounds of
// the constructed execution: during stage k+1, deliveries follow the proof's
// rules parameterized by the already-assigned process set A_k and the
// candidate pair placed on the next layer.
type segment struct {
	// fromRound is the first round governed by this segment (1-based).
	fromRound int
	// alpha0 marks the initial segment in which every G' edge is used.
	alpha0 bool
	// aPids is A_k, the processes assigned to layers 0..k.
	aPids map[int]bool
	// pair is the two candidate processes assigned to layer k+1.
	pair [2]int
}

// theorem12Adversary replays a scripted sequence of segments. It implements
// the proof's delivery rules on the complete layered network:
//
//  1. More than one sender: all messages reach all processes (⊤ under CR1).
//  2. A lone sender with pid in A_k: the message reaches exactly the
//     processes with pids in A_k ∪ {i, i'}.
//  3. A lone sender with an unassigned pid: the message reaches everyone.
//  4. A lone sender i or i' likewise reaches everyone (the construction cuts
//     the execution just before this first happens).
type theorem12Adversary struct {
	procOf   []int
	segments []segment
}

var _ sim.Adversary = (*theorem12Adversary)(nil)

func (a *theorem12Adversary) Name() string { return "theorem12" }

func (a *theorem12Adversary) AssignProcs(_ *graph.Dual, _ *rand.Rand) ([]int, error) {
	return a.procOf, nil
}

func (a *theorem12Adversary) segmentAt(round int) *segment {
	for i := len(a.segments) - 1; i >= 0; i-- {
		if a.segments[i].fromRound <= round {
			return &a.segments[i]
		}
	}
	return &a.segments[0]
}

func (a *theorem12Adversary) Deliver(v *sim.View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	seg := a.segmentAt(v.Round)
	deliverAll := func() map[graph.NodeID][]graph.NodeID {
		out := make(map[graph.NodeID][]graph.NodeID, len(senders))
		for _, s := range senders {
			if t := v.Dual.UnreliableOut(s); len(t) > 0 {
				out[s] = t
			}
		}
		return out
	}
	if seg.alpha0 || len(senders) > 1 {
		return deliverAll()
	}
	if len(senders) == 0 {
		return nil
	}
	s := senders[0]
	pid := v.ProcOf[s]
	if !seg.aPids[pid] {
		// Rules 3 and 4: unassigned or pair senders reach everyone.
		return deliverAll()
	}
	// Rule 2: the message reaches exactly the processes in A_k ∪ {i,i'}.
	// The sender sits in layers 0..k, so its reliable edges only reach
	// layers 0..k+1, all of which are in the target set; the adversary adds
	// unreliable edges to the remaining targets.
	targets := make(map[graph.NodeID]bool)
	for node, p := range a.procOf {
		if seg.aPids[p] || p == seg.pair[0] || p == seg.pair[1] {
			targets[graph.NodeID(node)] = true
		}
	}
	var extra []graph.NodeID
	for _, t := range v.Dual.UnreliableOut(s) {
		if targets[t] {
			extra = append(extra, t)
		}
	}
	if len(extra) == 0 {
		return nil
	}
	return map[graph.NodeID][]graph.NodeID{s: extra}
}

func (a *theorem12Adversary) Resolve(_ *sim.View, _ graph.NodeID, _ []graph.NodeID) graph.NodeID {
	return sim.NoDelivery // CR1 is used throughout; Resolve is never consulted.
}

// theorem12Driver holds the incremental construction state.
type theorem12Driver struct {
	n        int
	alg      sim.Algorithm
	dual     *graph.Dual
	horizon  int
	segments []segment
	// procOf: committed assignments for layers filled so far; 0 = unassigned.
	committed []int
	aPids     map[int]bool
	prefixLen int
}

// RunTheorem12Game plays the Theorem 12 candidate-set adversary against a
// deterministic algorithm on the complete layered network with n nodes,
// where n is odd and n-1 is a power of two with n >= 9. It constructs, stage
// by stage, an execution in which each of the (n-1)/4 stages extends the
// execution by at least log2(n-1)-2 rounds while the broadcast message stays
// confined to the filled layers — an Ω(n log n) lower bound in executable
// form.
func RunTheorem12Game(n int, alg sim.Algorithm, horizon int) (*Theorem12Result, error) {
	if n < 9 || n%2 == 0 || bits.OnesCount(uint(n-1)) != 1 {
		return nil, fmt.Errorf("theorem 12 needs odd n >= 9 with n-1 a power of two, got %d", n)
	}
	d, err := graph.CompleteLayered(n)
	if err != nil {
		return nil, err
	}
	if horizon <= 0 {
		horizon = theorem12Horizon(n)
	}
	drv := &theorem12Driver{
		n:         n,
		alg:       alg,
		dual:      d,
		horizon:   horizon,
		committed: make([]int, n),
		aPids:     map[int]bool{1: true},
	}
	drv.committed[0] = 1 // the distinguished identifier i0 = 1 at the source
	drv.segments = []segment{{fromRound: 1, alpha0: true}}

	res := &Theorem12Result{
		N:             n,
		StagesPlanned: (n - 1) / 4,
		TheoryBound:   (n - 1) / 4 * MinStageExtension(n),
	}

	// Stage 0: run with all G' edges used until i0 is about to be isolated.
	isolation, found, err := drv.findIsolation(nil, [2]int{1, 1}, map[int]bool{1: true})
	if err != nil {
		return nil, err
	}
	if !found {
		res.ForcedRounds = horizon
		res.HitHorizon = true
		return res, nil
	}
	drv.prefixLen = isolation - 1

	for stage := 1; stage <= res.StagesPlanned; stage++ {
		ext, found, err := drv.runStage(stage)
		if err != nil {
			return nil, fmt.Errorf("stage %d: %w", stage, err)
		}
		if !found {
			res.ForcedRounds = horizon
			res.HitHorizon = true
			return res, nil
		}
		res.StageExtensions = append(res.StageExtensions, ext)
		res.StagesCompleted++
	}
	res.ForcedRounds = drv.prefixLen
	return res, nil
}

// runStage executes stage `stage` (filling layer `stage`), returning the
// number of rounds the stage appended.
func (d *theorem12Driver) runStage(stage int) (ext int, found bool, err error) {
	maxDepth := MinStageExtension(d.n) // log2(n-1) - 2
	candidates := d.unassignedPids()
	for depth := 0; depth < maxDepth; depth++ {
		if len(candidates) < 4 {
			break
		}
		sendersWhenAssigned, sendersWhenNot, err := d.probeRound(candidates, depth+1)
		if err != nil {
			return 0, false, err
		}
		candidates = nextCandidates(candidates, sendersWhenAssigned, sendersWhenNot)
		if len(candidates) < 2 {
			return 0, false, fmt.Errorf("candidate set collapsed below 2 at depth %d", depth)
		}
	}
	pair := [2]int{candidates[0], candidates[1]}

	oldPrefix := d.prefixLen
	isolation, found, err := d.findIsolation(d.segmentsWith(pair), pair, pairSet(pair, d.aPids))
	if err != nil || !found {
		return 0, found, err
	}

	// Commit: assign the pair to layer `stage`, extend A and the script.
	d.segments = append(d.segments, segment{
		fromRound: oldPrefix + 1,
		aPids:     copyPidSet(d.aPids),
		pair:      pair,
	})
	d.committed[2*stage-1] = pair[0]
	d.committed[2*stage] = pair[1]
	d.aPids[pair[0]] = true
	d.aPids[pair[1]] = true
	d.prefixLen = isolation - 1
	return d.prefixLen - oldPrefix, true, nil
}

// probeRound determines, for round `depth` of the current stage's β
// executions, which candidates send when assigned to the next layer (the
// proof's S_{ℓ+1}) and which send when not assigned (N_{ℓ+1}).
func (d *theorem12Driver) probeRound(candidates []int, depth int) (whenAssigned, whenNot map[int]bool, err error) {
	absRound := d.prefixLen + 1 + depth // round `depth` of β, absolute numbering

	whenAssigned = make(map[int]bool)
	whenNot = make(map[int]bool)
	isCandidate := make(map[int]bool, len(candidates))
	for _, c := range candidates {
		isCandidate[c] = true
	}

	// N-probe: two runs with disjoint representative pairs cover everyone
	// (N_{ℓ+1} ⊆ C_ℓ, and by the proof's Property P(2) the choice of
	// representative pair does not change who sends).
	pairs := [][2]int{
		{candidates[0], candidates[1]},
		{candidates[2], candidates[3]},
	}
	for idx, pr := range pairs {
		senders, err := d.sendersAtRound(pr, absRound)
		if err != nil {
			return nil, nil, err
		}
		for _, pid := range senders {
			if pid == pr[0] || pid == pr[1] || !isCandidate[pid] {
				continue
			}
			if idx == 1 && pid != pairs[0][0] && pid != pairs[0][1] {
				continue // already covered by the first probe
			}
			whenNot[pid] = true
		}
	}

	// S-probe: one run per candidate with the candidate assigned.
	for _, pid := range candidates {
		partner := candidates[0]
		if partner == pid {
			partner = candidates[1]
		}
		senders, err := d.sendersAtRound([2]int{pid, partner}, absRound)
		if err != nil {
			return nil, nil, err
		}
		for _, s := range senders {
			if s == pid {
				whenAssigned[pid] = true
				break
			}
		}
	}
	return whenAssigned, whenNot, nil
}

// nextCandidates applies the proof's three-case candidate refinement.
func nextCandidates(candidates []int, whenAssigned, whenNot map[int]bool) []int {
	if len(whenNot) >= 2 {
		// Case I: drop the two smallest processes that send when unassigned;
		// in the remaining executions they stay unassigned and collide.
		drop := smallestTwo(whenNot)
		return removeAll(candidates, map[int]bool{drop[0]: true, drop[1]: true})
	}
	inS := 0
	for _, c := range candidates {
		if whenAssigned[c] {
			inS++
		}
	}
	if inS*2 >= len(candidates) {
		// Case II: keep exactly the candidates that send when assigned; any
		// surviving pair then collides at this depth.
		out := make([]int, 0, inS)
		for _, c := range candidates {
			if whenAssigned[c] {
				out = append(out, c)
			}
		}
		return out
	}
	// Case III: keep candidates that stay silent either way.
	banned := make(map[int]bool, len(whenAssigned)+len(whenNot))
	for pid := range whenAssigned {
		banned[pid] = true
	}
	for pid := range whenNot {
		banned[pid] = true
	}
	return removeAll(candidates, banned)
}

// sendersAtRound replays the execution β_pair up to absRound and returns the
// process ids transmitting in that round.
func (d *theorem12Driver) sendersAtRound(pair [2]int, absRound int) ([]int, error) {
	adv := &theorem12Adversary{
		procOf:   d.assignmentWith(pair),
		segments: d.segmentsWith(pair),
	}
	run, err := sim.Run(d.dual, d.alg, adv, sim.Config{
		Rule:           sim.CR1,
		Start:          sim.SyncStart,
		MaxRounds:      absRound,
		Seed:           0,
		RecordSenders:  true,
		RunToMaxRounds: true,
	})
	if err != nil {
		return nil, err
	}
	if len(run.SendersByRound) < absRound {
		return nil, fmt.Errorf("transcript too short: %d < %d", len(run.SendersByRound), absRound)
	}
	return run.SendersByRound[absRound-1], nil
}

// findIsolation replays the execution with the given trailing segment and
// returns the first round after the current prefix in which a process from
// watch transmits alone.
func (d *theorem12Driver) findIsolation(segments []segment, pair [2]int, watch map[int]bool) (round int, found bool, err error) {
	var adv *theorem12Adversary
	if segments == nil {
		// Stage 0: pure α_0 script (every G' edge used in every round).
		adv = &theorem12Adversary{
			procOf:   d.assignmentWith(pair),
			segments: d.segments,
		}
	} else {
		adv = &theorem12Adversary{
			procOf:   d.assignmentWith(pair),
			segments: segments,
		}
	}
	// Deterministic executions replay identically, so search with
	// exponentially growing caps instead of always paying the full horizon.
	for limit := d.prefixLen + 4*d.n + 64; ; limit *= 2 {
		if limit > d.horizon {
			limit = d.horizon
		}
		run, err := sim.Run(d.dual, d.alg, adv, sim.Config{
			Rule:           sim.CR1,
			Start:          sim.SyncStart,
			MaxRounds:      limit,
			Seed:           0,
			RecordSenders:  true,
			RunToMaxRounds: true,
		})
		if err != nil {
			return 0, false, err
		}
		for r := d.prefixLen + 1; r <= len(run.SendersByRound); r++ {
			senders := run.SendersByRound[r-1]
			if len(senders) == 1 && watch[senders[0]] {
				return r, true, nil
			}
		}
		if limit >= d.horizon {
			return 0, false, nil
		}
	}
}

// segmentsWith returns the committed script plus a trailing segment for the
// probe pair starting right after the current prefix.
func (d *theorem12Driver) segmentsWith(pair [2]int) []segment {
	segs := make([]segment, len(d.segments), len(d.segments)+1)
	copy(segs, d.segments)
	segs = append(segs, segment{
		fromRound: d.prefixLen + 1,
		aPids:     d.aPids,
		pair:      pair,
	})
	return segs
}

// assignmentWith builds a full node->pid assignment: committed layers, the
// probe pair on the next free layer, and all remaining pids in increasing
// order on the remaining nodes (the proof's "default rule").
func (d *theorem12Driver) assignmentWith(pair [2]int) []int {
	procOf := make([]int, d.n)
	copy(procOf, d.committed)
	used := map[int]bool{}
	for _, pid := range procOf {
		if pid != 0 {
			used[pid] = true
		}
	}
	if pair[0] != pair[1] { // stage probes place the pair on the next layer
		for node := range procOf {
			if procOf[node] == 0 {
				procOf[node] = pair[0]
				used[pair[0]] = true
				break
			}
		}
		for node := range procOf {
			if procOf[node] == 0 {
				procOf[node] = pair[1]
				used[pair[1]] = true
				break
			}
		}
	}
	next := 1
	for node := range procOf {
		if procOf[node] != 0 {
			continue
		}
		for used[next] {
			next++
		}
		procOf[node] = next
		used[next] = true
	}
	return procOf
}

// unassignedPids returns all candidate pids (I minus A_k) in increasing
// order.
func (d *theorem12Driver) unassignedPids() []int {
	var out []int
	for pid := 1; pid <= d.n; pid++ {
		if !d.aPids[pid] {
			out = append(out, pid)
		}
	}
	return out
}

func pairSet(pair [2]int, _ map[int]bool) map[int]bool {
	return map[int]bool{pair[0]: true, pair[1]: true}
}

func copyPidSet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func smallestTwo(s map[int]bool) [2]int {
	keys := make([]int, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return [2]int{keys[0], keys[1]}
}

func removeAll(xs []int, banned map[int]bool) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if !banned[x] {
			out = append(out, x)
		}
	}
	return out
}

func log2int(x int) int {
	return bits.Len(uint(x)) - 1
}

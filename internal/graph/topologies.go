package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Classical wraps a single graph g as the dual network (g, g): every link is
// reliable, which is exactly the classical static radio model. The frozen
// CSR core is shared between G and G'.
func Classical(g *Builder, source NodeID) (*Dual, error) {
	fg := g.Freeze()
	return NewDualGraphs(fg, fg, source)
}

// ClassicalFrozen is Classical for an already-frozen graph (e.g. a Dual's
// own reliable core reused as a static network).
func ClassicalFrozen(g *Graph, source NodeID) (*Dual, error) {
	return NewDualGraphs(g, g, source)
}

// Complete returns the classical complete graph on n nodes (single hop).
func Complete(n int) (*Dual, error) {
	g := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return Classical(g, 0)
}

// Line returns the classical path 0-1-...-(n-1) with the source at node 0.
func Line(n int) (*Dual, error) {
	g := NewBuilder(n, false)
	for u := 0; u+1 < n; u++ {
		g.MustAddEdge(NodeID(u), NodeID(u+1))
	}
	return Classical(g, 0)
}

// Star returns the classical star with the source at the hub (node 0).
func Star(n int) (*Dual, error) {
	g := NewBuilder(n, false)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, NodeID(v))
	}
	return Classical(g, 0)
}

// CliqueBridge builds the Theorem 2 network for n >= 3: G is an (n-1)-node
// clique C containing the source s (node 0) and a bridge b (node 1), plus a
// receiver r (node n-1) attached only to b. G' is the complete graph.
// The network is 2-broadcastable (s sends, then b sends) yet deterministic
// broadcast against the Theorem 2 adversary needs more than n-3 rounds.
func CliqueBridge(n int) (*Dual, error) {
	if n < 3 {
		return nil, fmt.Errorf("clique-bridge needs n >= 3, got %d", n)
	}
	g := NewBuilder(n, false)
	for u := 0; u < n-1; u++ {
		for v := u + 1; v < n-1; v++ {
			g.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	g.MustAddEdge(BridgeNode, NodeID(n-1))
	gp := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gp.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return NewDual(g, gp, 0)
}

// Node roles in the CliqueBridge network.
const (
	// BridgeNode is the clique node adjacent to the receiver.
	BridgeNode NodeID = 1
)

// ReceiverNode returns the receiver node of an n-node CliqueBridge network.
func ReceiverNode(n int) NodeID { return NodeID(n - 1) }

// CompleteLayered builds the Theorem 12 network. Node 0 is the source
// (layer L0); layer Lk = {2k-1, 2k} for k = 1..(n-1)/2. G connects the
// source to L1, all nodes within a layer, and all nodes in consecutive
// layers; G' is the complete graph. n must be odd and at least 5 so that
// the layers pair up exactly.
func CompleteLayered(n int) (*Dual, error) {
	if n < 5 || n%2 == 0 {
		return nil, fmt.Errorf("complete-layered needs odd n >= 5, got %d", n)
	}
	g := NewBuilder(n, false)
	layers := (n - 1) / 2
	layerOf := func(k int) []NodeID {
		if k == 0 {
			return []NodeID{0}
		}
		return []NodeID{NodeID(2*k - 1), NodeID(2 * k)}
	}
	for k := 0; k <= layers; k++ {
		cur := layerOf(k)
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				g.MustAddEdge(cur[i], cur[j])
			}
		}
		if k < layers {
			for _, u := range cur {
				for _, v := range layerOf(k + 1) {
					g.MustAddEdge(u, v)
				}
			}
		}
	}
	gp := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gp.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return NewDual(g, gp, 0)
}

// Layer returns the Theorem 12 layer index of a node in a CompleteLayered
// network (0 for the source).
func Layer(v NodeID) int {
	if v == 0 {
		return 0
	}
	return (int(v) + 1) / 2
}

// LayeredRandom builds a dual graph made of consecutive fully connected
// layers with the given sizes (source alone in layer 0); G' is complete.
// This is the layered-network shape used in the Section 7 intuition for
// Harmonic Broadcast.
func LayeredRandom(layerSizes []int) (*Dual, error) {
	n := 1
	for _, s := range layerSizes {
		if s < 1 {
			return nil, fmt.Errorf("layer size must be positive, got %d", s)
		}
		n += s
	}
	g := NewBuilder(n, false)
	prev := []NodeID{0}
	next := 1
	for _, s := range layerSizes {
		cur := make([]NodeID, 0, s)
		for i := 0; i < s; i++ {
			cur = append(cur, NodeID(next))
			next++
		}
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				g.MustAddEdge(cur[i], cur[j])
			}
		}
		for _, u := range prev {
			for _, v := range cur {
				g.MustAddEdge(u, v)
			}
		}
		prev = cur
	}
	gp := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gp.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return NewDual(g, gp, 0)
}

// Grid builds a rows x cols lattice whose lattice edges are reliable.
// Unreliable edges connect nodes at Chebyshev distance <= reach (the
// "gray zone" of longer, flaky radio links); each such candidate edge is
// included independently with probability p using rng.
func Grid(rows, cols, reach int, p float64, rng *rand.Rand) (*Dual, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("grid needs at least 2 nodes, got %dx%d", rows, cols)
	}
	if reach < 1 {
		return nil, fmt.Errorf("grid reach must be >= 1, got %d", reach)
	}
	n := rows * cols
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	g := NewBuilder(n, false)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	gp := g.Clone()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for dr := -reach; dr <= reach; dr++ {
				for dc := -reach; dc <= reach; dc++ {
					r2, c2 := r+dr, c+dc
					if r2 < 0 || r2 >= rows || c2 < 0 || c2 >= cols {
						continue
					}
					u, v := id(r, c), id(r2, c2)
					// Lattice edges (the reliable layer) are exactly the
					// axis-aligned unit steps; everything else in the reach
					// window is a gray-zone candidate.
					if u >= v || abs(dr)+abs(dc) == 1 {
						continue
					}
					if rng.Float64() < p {
						gp.MustAddEdge(u, v)
					}
				}
			}
		}
	}
	return NewDual(g, gp, 0)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RandomDual builds a random dual graph: G is a random connected graph
// (a path through a random permutation plus G(n, pReliable) edges) and
// G' adds each remaining pair independently with probability pUnreliable.
func RandomDual(n int, pReliable, pUnreliable float64, rng *rand.Rand) (*Dual, error) {
	if n < 2 {
		return nil, ErrTooSmall
	}
	g := NewBuilder(n, false)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(NodeID(perm[i]), NodeID(perm[i+1]))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(NodeID(u), NodeID(v)) && rng.Float64() < pReliable {
				g.MustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	gp := g.Clone()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !gp.HasEdge(NodeID(u), NodeID(v)) && rng.Float64() < pUnreliable {
				gp.MustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return NewDual(g, gp, 0)
}

// Geometric places n nodes uniformly at random in the unit square. Links
// shorter than rReliable are reliable, links shorter than rUnreliable are
// unreliable (the classic gray-zone picture: short links always work, longer
// ones only sometimes). A Hamiltonian path in placement order is added to G
// to guarantee source reachability, modelling a deployment with a known-good
// backbone.
//
// Candidate pairs are enumerated through a uniform cell grid of side
// >= rUnreliable, so construction costs O(n + p·log) for p pairs within
// radius instead of the quadratic all-pairs scan — a 100k-node deployment
// with local radii builds in well under a second. The edge set (and hence
// the frozen Dual) is identical to the historical all-pairs construction
// for the same rng, since positions consume the only random draws.
func Geometric(n int, rReliable, rUnreliable float64, rng *rand.Rand) (*Dual, error) {
	if n < 2 {
		return nil, ErrTooSmall
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	return DualFromPositions(xs, ys, rReliable, rUnreliable, 0)
}

// DualFromPositions builds the geometric dual over explicit unit-square
// coordinates: links shorter than rReliable are reliable, links between
// rReliable and rUnreliable are unreliable, and a Hamiltonian path in index
// order is added to G so every node stays reachable from the source. It is
// the position-driven core shared by Geometric (random placement) and the
// waypoint mobility schedule (epoch-interpolated placement).
func DualFromPositions(xs, ys []float64, rReliable, rUnreliable float64, source NodeID) (*Dual, error) {
	n := len(xs)
	if n < 2 {
		return nil, ErrTooSmall
	}
	if len(ys) != n {
		return nil, fmt.Errorf("geometric positions: %d x coordinates but %d y coordinates", n, len(ys))
	}
	if rUnreliable < rReliable {
		return nil, fmt.Errorf("rUnreliable (%v) must be >= rReliable (%v)", rUnreliable, rReliable)
	}
	dist := func(u, v int) float64 {
		return math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
	}
	g := NewBuilder(n, false)
	for u := 0; u+1 < n; u++ {
		g.MustAddEdge(NodeID(u), NodeID(u+1))
	}

	// Bucket nodes into a side x side grid with cell length >= rUnreliable:
	// all pairs within the radius live in the same or an adjacent cell. The
	// side is capped at ~sqrt(n) so bucket memory stays O(n) even for tiny
	// radii.
	side := 1
	if rUnreliable > 0 {
		side = int(1 / rUnreliable)
	}
	if maxSide := int(math.Sqrt(float64(n))) + 1; side > maxSide {
		side = maxSide
	}
	if side < 1 {
		side = 1
	}
	cellOf := func(x float64) int {
		c := int(x * float64(side))
		if c >= side {
			c = side - 1
		}
		return c
	}
	buckets := make([][]int32, side*side)
	for u := 0; u < n; u++ {
		c := cellOf(ys[u])*side + cellOf(xs[u])
		buckets[c] = append(buckets[c], int32(u))
	}

	var unreliable [][2]NodeID
	for u := 0; u < n; u++ {
		cx, cy := cellOf(xs[u]), cellOf(ys[u])
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x2, y2 := cx+dx, cy+dy
				if x2 < 0 || x2 >= side || y2 < 0 || y2 >= side {
					continue
				}
				for _, w := range buckets[y2*side+x2] {
					v := int(w)
					if v <= u {
						continue
					}
					d := dist(u, v)
					if d <= rReliable {
						g.MustAddEdge(NodeID(u), NodeID(v))
					} else if d <= rUnreliable {
						unreliable = append(unreliable, [2]NodeID{NodeID(u), NodeID(v)})
					}
				}
			}
		}
	}
	gp := g.Clone()
	for _, e := range unreliable {
		gp.MustAddEdge(e[0], e[1])
	}
	return NewDual(g, gp, source)
}

// BinaryTree returns the classical complete binary tree on n nodes rooted at
// the source.
func BinaryTree(n int) (*Dual, error) {
	if n < 2 {
		return nil, ErrTooSmall
	}
	g := NewBuilder(n, false)
	for v := 1; v < n; v++ {
		g.MustAddEdge(NodeID((v-1)/2), NodeID(v))
	}
	return Classical(g, 0)
}

// PreferentialAttachment builds a scale-free dual graph by Barabási–Albert
// growth: node v joins with min(m, v) links to existing nodes chosen
// proportionally to their current G' degree. Each node's first link is
// reliable (so G stays connected to the source, node 0); every further link
// is unreliable with probability unreliableFrac, modelling hub-and-spoke
// deployments whose long-range shortcuts are gray-zone radio links.
// Construction is O(n·m) — the generator scales to 100k+ nodes.
func PreferentialAttachment(n, m int, unreliableFrac float64, rng *rand.Rand) (*Dual, error) {
	if n < 2 {
		return nil, ErrTooSmall
	}
	if m < 1 {
		return nil, fmt.Errorf("preferential attachment needs m >= 1, got %d", m)
	}
	if unreliableFrac < 0 || unreliableFrac > 1 {
		return nil, fmt.Errorf("unreliable fraction %v outside [0,1]", unreliableFrac)
	}
	g := NewBuilder(n, false)
	var unreliable [][2]NodeID
	// ends holds one entry per arc endpoint: sampling uniformly from it is
	// sampling nodes proportionally to degree (the classic BA trick).
	ends := make([]NodeID, 0, 2*m*n)
	targets := make([]NodeID, 0, m)
	for v := 1; v < n; v++ {
		targets = targets[:0]
		if v <= m {
			// Too few existing nodes to sample distinctly: link to all.
			for t := 0; t < v; t++ {
				targets = append(targets, NodeID(t))
			}
		} else {
			for len(targets) < m {
				t := ends[rng.Intn(len(ends))]
				dup := false
				for _, prev := range targets {
					if prev == t {
						dup = true
						break
					}
				}
				if !dup {
					targets = append(targets, t)
				}
			}
		}
		for i, t := range targets {
			if i > 0 && rng.Float64() < unreliableFrac {
				unreliable = append(unreliable, [2]NodeID{NodeID(v), t})
			} else {
				g.MustAddEdge(NodeID(v), t)
			}
			ends = append(ends, NodeID(v), t)
		}
	}
	gp := g.Clone()
	for _, e := range unreliable {
		gp.MustAddEdge(e[0], e[1])
	}
	return NewDual(g, gp, 0)
}

// DirectedLayered builds a directed dual graph: a chain of layers where
// reliable edges point from each layer to the next and G' additionally has
// forward edges from every layer to all later layers. Used to exercise the
// directed-graph setting of the Section 5 upper bound.
func DirectedLayered(layerSizes []int) (*Dual, error) {
	n := 1
	for _, s := range layerSizes {
		if s < 1 {
			return nil, fmt.Errorf("layer size must be positive, got %d", s)
		}
		n += s
	}
	g := NewBuilder(n, true)
	gp := NewBuilder(n, true)
	var layers [][]NodeID
	layers = append(layers, []NodeID{0})
	next := 1
	for _, s := range layerSizes {
		cur := make([]NodeID, 0, s)
		for i := 0; i < s; i++ {
			cur = append(cur, NodeID(next))
			next++
		}
		layers = append(layers, cur)
	}
	for k := 0; k+1 < len(layers); k++ {
		for _, u := range layers[k] {
			for _, v := range layers[k+1] {
				g.MustAddEdge(u, v)
				gp.MustAddEdge(u, v)
			}
			for j := k + 2; j < len(layers); j++ {
				for _, v := range layers[j] {
					gp.MustAddEdge(u, v)
				}
			}
		}
	}
	return NewDual(g, gp, 0)
}

package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Classical wraps a single graph g as the dual network (g, g): every link is
// reliable, which is exactly the classical static radio model.
func Classical(g *Graph, source NodeID) (*Dual, error) {
	return NewDual(g, g, source)
}

// Complete returns the classical complete graph on n nodes (single hop).
func Complete(n int) (*Dual, error) {
	g := NewGraph(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return Classical(g, 0)
}

// Line returns the classical path 0-1-...-(n-1) with the source at node 0.
func Line(n int) (*Dual, error) {
	g := NewGraph(n, false)
	for u := 0; u+1 < n; u++ {
		g.MustAddEdge(NodeID(u), NodeID(u+1))
	}
	return Classical(g, 0)
}

// Star returns the classical star with the source at the hub (node 0).
func Star(n int) (*Dual, error) {
	g := NewGraph(n, false)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, NodeID(v))
	}
	return Classical(g, 0)
}

// CliqueBridge builds the Theorem 2 network for n >= 3: G is an (n-1)-node
// clique C containing the source s (node 0) and a bridge b (node 1), plus a
// receiver r (node n-1) attached only to b. G' is the complete graph.
// The network is 2-broadcastable (s sends, then b sends) yet deterministic
// broadcast against the Theorem 2 adversary needs more than n-3 rounds.
func CliqueBridge(n int) (*Dual, error) {
	if n < 3 {
		return nil, fmt.Errorf("clique-bridge needs n >= 3, got %d", n)
	}
	g := NewGraph(n, false)
	for u := 0; u < n-1; u++ {
		for v := u + 1; v < n-1; v++ {
			g.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	g.MustAddEdge(BridgeNode, NodeID(n-1))
	gp := NewGraph(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gp.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return NewDual(g, gp, 0)
}

// Node roles in the CliqueBridge network.
const (
	// BridgeNode is the clique node adjacent to the receiver.
	BridgeNode NodeID = 1
)

// ReceiverNode returns the receiver node of an n-node CliqueBridge network.
func ReceiverNode(n int) NodeID { return NodeID(n - 1) }

// CompleteLayered builds the Theorem 12 network. Node 0 is the source
// (layer L0); layer Lk = {2k-1, 2k} for k = 1..(n-1)/2. G connects the
// source to L1, all nodes within a layer, and all nodes in consecutive
// layers; G' is the complete graph. n must be odd and at least 5 so that
// the layers pair up exactly.
func CompleteLayered(n int) (*Dual, error) {
	if n < 5 || n%2 == 0 {
		return nil, fmt.Errorf("complete-layered needs odd n >= 5, got %d", n)
	}
	g := NewGraph(n, false)
	layers := (n - 1) / 2
	layerOf := func(k int) []NodeID {
		if k == 0 {
			return []NodeID{0}
		}
		return []NodeID{NodeID(2*k - 1), NodeID(2 * k)}
	}
	for k := 0; k <= layers; k++ {
		cur := layerOf(k)
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				g.MustAddEdge(cur[i], cur[j])
			}
		}
		if k < layers {
			for _, u := range cur {
				for _, v := range layerOf(k + 1) {
					g.MustAddEdge(u, v)
				}
			}
		}
	}
	gp := NewGraph(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gp.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return NewDual(g, gp, 0)
}

// Layer returns the Theorem 12 layer index of a node in a CompleteLayered
// network (0 for the source).
func Layer(v NodeID) int {
	if v == 0 {
		return 0
	}
	return (int(v) + 1) / 2
}

// LayeredRandom builds a dual graph made of consecutive fully connected
// layers with the given sizes (source alone in layer 0); G' is complete.
// This is the layered-network shape used in the Section 7 intuition for
// Harmonic Broadcast.
func LayeredRandom(layerSizes []int) (*Dual, error) {
	n := 1
	for _, s := range layerSizes {
		if s < 1 {
			return nil, fmt.Errorf("layer size must be positive, got %d", s)
		}
		n += s
	}
	g := NewGraph(n, false)
	prev := []NodeID{0}
	next := 1
	for _, s := range layerSizes {
		cur := make([]NodeID, 0, s)
		for i := 0; i < s; i++ {
			cur = append(cur, NodeID(next))
			next++
		}
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				g.MustAddEdge(cur[i], cur[j])
			}
		}
		for _, u := range prev {
			for _, v := range cur {
				g.MustAddEdge(u, v)
			}
		}
		prev = cur
	}
	gp := NewGraph(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gp.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return NewDual(g, gp, 0)
}

// Grid builds a rows x cols lattice whose lattice edges are reliable.
// Unreliable edges connect nodes at Chebyshev distance <= reach (the
// "gray zone" of longer, flaky radio links); each such candidate edge is
// included independently with probability p using rng.
func Grid(rows, cols, reach int, p float64, rng *rand.Rand) (*Dual, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("grid needs at least 2 nodes, got %dx%d", rows, cols)
	}
	if reach < 1 {
		return nil, fmt.Errorf("grid reach must be >= 1, got %d", reach)
	}
	n := rows * cols
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	g := NewGraph(n, false)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	gp := g.Clone()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for dr := -reach; dr <= reach; dr++ {
				for dc := -reach; dc <= reach; dc++ {
					r2, c2 := r+dr, c+dc
					if r2 < 0 || r2 >= rows || c2 < 0 || c2 >= cols {
						continue
					}
					u, v := id(r, c), id(r2, c2)
					if u >= v || g.HasEdge(u, v) {
						continue
					}
					if rng.Float64() < p {
						gp.MustAddEdge(u, v)
					}
				}
			}
		}
	}
	return NewDual(g, gp, 0)
}

// RandomDual builds a random dual graph: G is a random connected graph
// (a path through a random permutation plus G(n, pReliable) edges) and
// G' adds each remaining pair independently with probability pUnreliable.
func RandomDual(n int, pReliable, pUnreliable float64, rng *rand.Rand) (*Dual, error) {
	if n < 2 {
		return nil, ErrTooSmall
	}
	g := NewGraph(n, false)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(NodeID(perm[i]), NodeID(perm[i+1]))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(NodeID(u), NodeID(v)) && rng.Float64() < pReliable {
				g.MustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	gp := g.Clone()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !gp.HasEdge(NodeID(u), NodeID(v)) && rng.Float64() < pUnreliable {
				gp.MustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return NewDual(g, gp, 0)
}

// Geometric places n nodes uniformly at random in the unit square. Links
// shorter than rReliable are reliable, links shorter than rUnreliable are
// unreliable (the classic gray-zone picture: short links always work, longer
// ones only sometimes). A Hamiltonian path in placement order is added to G
// to guarantee source reachability, modelling a deployment with a known-good
// backbone.
func Geometric(n int, rReliable, rUnreliable float64, rng *rand.Rand) (*Dual, error) {
	if n < 2 {
		return nil, ErrTooSmall
	}
	if rUnreliable < rReliable {
		return nil, fmt.Errorf("rUnreliable (%v) must be >= rReliable (%v)", rUnreliable, rReliable)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(u, v int) float64 {
		return math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
	}
	g := NewGraph(n, false)
	for u := 0; u+1 < n; u++ {
		g.MustAddEdge(NodeID(u), NodeID(u+1))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if dist(u, v) <= rReliable {
				g.MustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	gp := g.Clone()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !gp.HasEdge(NodeID(u), NodeID(v)) && dist(u, v) <= rUnreliable {
				gp.MustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return NewDual(g, gp, 0)
}

// BinaryTree returns the classical complete binary tree on n nodes rooted at
// the source.
func BinaryTree(n int) (*Dual, error) {
	if n < 2 {
		return nil, ErrTooSmall
	}
	g := NewGraph(n, false)
	for v := 1; v < n; v++ {
		g.MustAddEdge(NodeID((v-1)/2), NodeID(v))
	}
	return Classical(g, 0)
}

// DirectedLayered builds a directed dual graph: a chain of layers where
// reliable edges point from each layer to the next and G' additionally has
// forward edges from every layer to all later layers. Used to exercise the
// directed-graph setting of the Section 5 upper bound.
func DirectedLayered(layerSizes []int) (*Dual, error) {
	n := 1
	for _, s := range layerSizes {
		if s < 1 {
			return nil, fmt.Errorf("layer size must be positive, got %d", s)
		}
		n += s
	}
	g := NewGraph(n, true)
	gp := NewGraph(n, true)
	var layers [][]NodeID
	layers = append(layers, []NodeID{0})
	next := 1
	for _, s := range layerSizes {
		cur := make([]NodeID, 0, s)
		for i := 0; i < s; i++ {
			cur = append(cur, NodeID(next))
			next++
		}
		layers = append(layers, cur)
	}
	for k := 0; k+1 < len(layers); k++ {
		for _, u := range layers[k] {
			for _, v := range layers[k+1] {
				g.MustAddEdge(u, v)
				gp.MustAddEdge(u, v)
			}
			for j := k + 2; j < len(layers); j++ {
				for _, v := range layers[j] {
					gp.MustAddEdge(u, v)
				}
			}
		}
	}
	return NewDual(g, gp, 0)
}

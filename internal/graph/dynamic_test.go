package graph

import (
	"math/rand"
	"testing"
)

// graphEqual reports structural equality of two frozen CSR graphs.
func graphEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for u := 0; u < a.N(); u++ {
		ra, rb := a.Out(NodeID(u)), b.Out(NodeID(u))
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
	}
	return true
}

// dualEqual reports structural equality of two duals (same G, G', source).
func dualEqual(a, b *Dual) bool {
	return a.Source() == b.Source() && graphEqual(a.G(), b.G()) && graphEqual(a.GPrime(), b.GPrime())
}

func testBase(t *testing.T) *Dual {
	t.Helper()
	d, err := RandomDual(24, 0.2, 0.4, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStaticScheduleIsTheBase(t *testing.T) {
	d := testBase(t)
	s := Static(d)
	if s.EpochLength() != 0 {
		t.Fatalf("EpochLength = %d, want 0", s.EpochLength())
	}
	if s.N() != d.N() {
		t.Fatalf("N = %d, want %d", s.N(), d.N())
	}
	for _, e := range []int{0, 1, 50} {
		got, err := s.Epoch(e, 99)
		if err != nil {
			t.Fatal(err)
		}
		if got != d {
			t.Fatalf("epoch %d is not the base network pointer", e)
		}
	}
}

// TestEpochPurity is the determinism property every schedule must satisfy:
// Epoch(e, seed) is a pure function — repeated and out-of-order calls return
// structurally identical networks, and different seeds or epochs may differ.
func TestEpochPurity(t *testing.T) {
	base := testBase(t)
	churn, err := NewChurn(base, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	fade, err := NewFade(base, 4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := NewWaypoint(base, 4, 3, 0.3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Schedule{"churn": churn, "fade": fade, "waypoint": wp} {
		// Walk epochs forward, then revisit in arbitrary order.
		first := make(map[int]*Dual)
		for e := 0; e < 6; e++ {
			d, err := s.Epoch(e, 7)
			if err != nil {
				t.Fatalf("%s epoch %d: %v", name, e, err)
			}
			first[e] = d
		}
		for _, e := range []int{5, 0, 3, 1, 5, 2} {
			d, err := s.Epoch(e, 7)
			if err != nil {
				t.Fatalf("%s revisit epoch %d: %v", name, e, err)
			}
			if !dualEqual(d, first[e]) {
				t.Fatalf("%s epoch %d is not pure: revisit differs", name, e)
			}
		}
		// A different run seed must be able to produce different dynamics
		// (epoch 0 is the base for churn/fade, so compare a later epoch).
		d7, err := s.Epoch(3, 7)
		if err != nil {
			t.Fatal(err)
		}
		d8, err := s.Epoch(3, 8)
		if err != nil {
			t.Fatal(err)
		}
		if dualEqual(d7, d8) {
			t.Logf("%s: seeds 7 and 8 coincide at epoch 3 (possible but suspicious)", name)
		}
	}
}

// TestEpochValidity: every materialized epoch must satisfy the NewDual
// invariants — the constructors revalidate, so a successful build plus a
// reachability sweep is the whole check.
func TestEpochValidity(t *testing.T) {
	base := testBase(t)
	churn, _ := NewChurn(base, 2, 0.9)
	fade, _ := NewFade(base, 2, 0.95)
	wp, _ := NewWaypoint(base, 2, 2, 0.2, 0.5)
	for name, s := range map[string]Schedule{"churn": churn, "fade": fade, "waypoint": wp} {
		for e := 0; e < 8; e++ {
			d, err := s.Epoch(e, 5)
			if err != nil {
				t.Fatalf("%s epoch %d invalid: %v", name, e, err)
			}
			if d.N() != base.N() {
				t.Fatalf("%s epoch %d has %d nodes, want %d", name, e, d.N(), base.N())
			}
			for v, dist := range d.G().DistancesFrom(d.Source()) {
				if dist < 0 {
					t.Fatalf("%s epoch %d: node %d unreachable in G", name, e, v)
				}
			}
		}
	}
}

func TestChurnEpochZeroIsBase(t *testing.T) {
	base := testBase(t)
	for _, s := range []Schedule{
		func() Schedule { s, _ := NewChurn(base, 3, 0.5); return s }(),
		func() Schedule { s, _ := NewFade(base, 3, 0.5); return s }(),
	} {
		d, err := s.Epoch(0, 42)
		if err != nil {
			t.Fatal(err)
		}
		if d != base {
			t.Fatalf("%T epoch 0 is not the base network", s)
		}
	}
}

// TestChurnTotalCrashLeavesBackbone: with p-down=1 every non-source node is
// down in every epoch > 0, so the epoch network is exactly the BFS backbone
// — G a spanning tree, empty fringe — and still valid.
func TestChurnTotalCrashLeavesBackbone(t *testing.T) {
	base := testBase(t)
	s, err := NewChurn(base, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Epoch(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * (base.N() - 1); d.G().NumEdges() != want {
		t.Fatalf("backbone epoch has %d arcs, want spanning tree %d", d.G().NumEdges(), want)
	}
	if d.NumUnreliable() != 0 {
		t.Fatalf("backbone epoch has %d unreliable arcs, want 0", d.NumUnreliable())
	}
}

func TestChurnZeroProbabilityIsIdentity(t *testing.T) {
	base := testBase(t)
	s, _ := NewChurn(base, 1, 0)
	d, err := s.Epoch(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !dualEqual(d, base) {
		t.Fatal("p-down=0 epoch differs from the base")
	}
}

// TestFadeKeepsGPrime: fading only demotes within G' — the epoch shares the
// base's frozen G' core, G shrinks (never below the backbone), and every
// demoted edge shows up in the fringe.
func TestFadeKeepsGPrime(t *testing.T) {
	base := testBase(t)
	s, _ := NewFade(base, 1, 0.6)
	d, err := s.Epoch(2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if d.GPrime() != base.GPrime() {
		t.Fatal("fade epoch does not alias the base G' core")
	}
	if got, want := d.G().NumEdges(), base.G().NumEdges(); got > want {
		t.Fatalf("fade grew G: %d arcs > base %d", got, want)
	}
	if got, want := d.NumUnreliable(), base.NumUnreliable(); got < want {
		t.Fatalf("fade shrank the fringe: %d < base %d", got, want)
	}
	// Every arc of epoch G must exist in base G (demotion only).
	for u := 0; u < d.N(); u++ {
		for _, v := range d.ReliableOut(NodeID(u)) {
			if !base.G().HasEdge(NodeID(u), v) {
				t.Fatalf("fade invented reliable arc (%d,%d)", u, v)
			}
		}
	}
}

// TestFadeTotalLeavesBackbone: p-fade=1 demotes every non-backbone reliable
// edge, so G is the spanning tree and the fringe holds everything else.
func TestFadeTotalLeavesBackbone(t *testing.T) {
	base := testBase(t)
	s, _ := NewFade(base, 1, 1.0)
	d, err := s.Epoch(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * (base.N() - 1); d.G().NumEdges() != want {
		t.Fatalf("fully faded G has %d arcs, want backbone %d", d.G().NumEdges(), want)
	}
	if want := base.GPrime().NumEdges() - 2*(base.N()-1); d.NumUnreliable() != want {
		t.Fatalf("fully faded fringe has %d arcs, want %d", d.NumUnreliable(), want)
	}
}

// TestWaypointMoves: successive legs produce different geometry (motion),
// while every epoch keeps the Hamiltonian-path backbone reachable.
func TestWaypointMoves(t *testing.T) {
	base := testBase(t)
	s, err := NewWaypoint(base, 4, 1, 0.3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := s.Epoch(0, 21)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s.Epoch(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if dualEqual(d0, d1) {
		t.Fatal("waypoint epochs 0 and 1 are identical: no motion")
	}
}

// TestDirectedBaseSchedules: churn and fade must preserve directedness and
// validity on directed bases.
func TestDirectedBaseSchedules(t *testing.T) {
	base, err := DirectedLayered([]int{3, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	churn, _ := NewChurn(base, 1, 0.5)
	fade, _ := NewFade(base, 1, 0.5)
	for name, s := range map[string]Schedule{"churn": churn, "fade": fade} {
		d, err := s.Epoch(2, 6)
		if err != nil {
			t.Fatalf("%s on directed base: %v", name, err)
		}
		if !d.G().Directed() {
			t.Fatalf("%s lost directedness", name)
		}
	}
}

func TestScheduleConstructorValidation(t *testing.T) {
	base := testBase(t)
	if _, err := NewChurn(base, 0, 0.5); err == nil {
		t.Error("churn accepted epoch length 0")
	}
	if _, err := NewChurn(base, 1, 1.5); err == nil {
		t.Error("churn accepted p-down > 1")
	}
	if _, err := NewFade(base, -1, 0.5); err == nil {
		t.Error("fade accepted negative epoch length")
	}
	if _, err := NewFade(base, 1, -0.1); err == nil {
		t.Error("fade accepted negative p-fade")
	}
	if _, err := NewWaypoint(base, 1, 0, 0.2, 0.5); err == nil {
		t.Error("waypoint accepted leg-epochs 0")
	}
	if _, err := NewWaypoint(base, 1, 1, 0.5, 0.2); err == nil {
		t.Error("waypoint accepted r-unreliable < r-reliable")
	}
}

func TestEpochSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for e := 0; e < 100; e++ {
		s := EpochSeed(1, e)
		if seen[s] {
			t.Fatalf("EpochSeed collision at epoch %d", e)
		}
		seen[s] = true
	}
	if EpochSeed(1, 5) == EpochSeed(2, 5) {
		t.Fatal("EpochSeed ignores the run seed")
	}
}

// rebuildReference re-freezes a base core through the Builder the way the
// pre-incremental schedules did: every arc of every row re-filtered, re-sorted,
// re-deduplicated. The incremental patch path must be structurally
// indistinguishable from this, down to fringe EdgeID order.
func rebuildReference(base *Graph, keep func(u, v NodeID) bool) *Graph {
	b := NewBuilder(base.N(), base.Directed())
	for u := 0; u < base.N(); u++ {
		for _, v := range base.Out(NodeID(u)) {
			if keep(NodeID(u), v) {
				b.addArc(NodeID(u), v)
			}
		}
	}
	return b.Freeze()
}

// fringeEqual compares the unreliable fringes including EdgeID order: id k
// must name the same (from, to) arc in both duals.
func fringeEqual(a, b *Dual) bool {
	if !graphEqual(a.fringe, b.fringe) || len(a.fringeFrom) != len(b.fringeFrom) {
		return false
	}
	for i := range a.fringeFrom {
		if a.fringeFrom[i] != b.fringeFrom[i] {
			return false
		}
	}
	return true
}

// TestEpochPatchingMatchesFullRebuild pins the incremental epoch-swap path
// (dirty-row CSR patching, no validation BFS) against a full Builder→Freeze→
// NewDualGraphs rebuild with the same keep predicates, for churn and fade on
// undirected and directed bases. Structural identity here is what keeps the
// simulator's dynamic goldens byte-identical across the optimization.
func TestEpochPatchingMatchesFullRebuild(t *testing.T) {
	directed, err := DirectedLayered([]int{4, 5, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	bases := map[string]*Dual{"undirected": testBase(t), "directed": directed}
	const runSeed = 7
	for name, base := range bases {
		churn, err := NewChurn(base, 3, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		fade, err := NewFade(base, 3, 0.35)
		if err != nil {
			t.Fatal(err)
		}
		backbone := newBackboneTree(base)
		for e := 1; e <= 16; e++ {
			seed := EpochSeed(runSeed, e)

			// Churn reference: recompute the down set and rebuild both cores.
			down := make([]bool, base.N())
			for v := 0; v < base.N(); v++ {
				if NodeID(v) != base.Source() && unitHash(seed, churnTag, uint64(v)) < 0.3 {
					down[v] = true
				}
			}
			keepChurn := func(u, v NodeID) bool {
				if !down[u] && !down[v] {
					return true
				}
				return backbone.has(u, v)
			}
			wantChurn, err := NewDualGraphs(
				rebuildReference(base.G(), keepChurn),
				rebuildReference(base.GPrime(), keepChurn),
				base.Source())
			if err != nil {
				t.Fatalf("%s churn reference epoch %d: %v", name, e, err)
			}
			gotChurn, err := churn.Epoch(e, runSeed)
			if err != nil {
				t.Fatalf("%s churn epoch %d: %v", name, e, err)
			}
			if !dualEqual(gotChurn, wantChurn) || !fringeEqual(gotChurn, wantChurn) {
				t.Fatalf("%s churn epoch %d: patched dual differs from full rebuild", name, e)
			}

			// Fade reference: rebuild G only; G' is shared with the base.
			keepFade := func(u, v NodeID) bool {
				if backbone.has(u, v) {
					return true
				}
				return unitHash(seed, fadeTag, canonArc(u, v, base.G().Directed())) >= 0.35
			}
			wantFade, err := NewDualGraphs(rebuildReference(base.G(), keepFade), base.GPrime(), base.Source())
			if err != nil {
				t.Fatalf("%s fade reference epoch %d: %v", name, e, err)
			}
			gotFade, err := fade.Epoch(e, runSeed)
			if err != nil {
				t.Fatalf("%s fade epoch %d: %v", name, e, err)
			}
			if !dualEqual(gotFade, wantFade) || !fringeEqual(gotFade, wantFade) {
				t.Fatalf("%s fade epoch %d: patched dual differs from full rebuild", name, e)
			}
			if gotFade != base && gotFade.GPrime() != base.GPrime() {
				t.Fatalf("%s fade epoch %d: G' no longer aliases the base core", name, e)
			}
		}
	}
}

package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := NewGraph(3, false)
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("expected error for self-loop")
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := NewGraph(3, false)
	for _, e := range [][2]NodeID{{-1, 0}, {0, 3}, {5, 1}} {
		if err := g.AddEdge(e[0], e[1]); err == nil {
			t.Errorf("expected error for edge %v", e)
		}
	}
}

func TestUndirectedAddsBothArcs(t *testing.T) {
	g := NewGraph(4, false)
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("undirected edge must exist in both directions")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("want 2 arcs, got %d", g.NumEdges())
	}
}

func TestDirectedAddsOneArc(t *testing.T) {
	g := NewGraph(4, true)
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("arc (0,2) missing")
	}
	if g.HasEdge(2, 0) {
		t.Fatal("directed graph must not add reverse arc")
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	g := NewGraph(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 1)
	if g.NumEdges() != 2 {
		t.Fatalf("duplicate edge changed edge count: %d", g.NumEdges())
	}
	if out := g.Freeze().Out(0); len(out) != 1 {
		t.Fatalf("duplicate edge duplicated adjacency: %v", out)
	}
}

func TestDistancesFromLine(t *testing.T) {
	g := NewGraph(5, false)
	for u := 0; u+1 < 5; u++ {
		g.MustAddEdge(NodeID(u), NodeID(u+1))
	}
	dist := g.Freeze().DistancesFrom(0)
	for i, d := range dist {
		if d != i {
			t.Errorf("dist[%d] = %d, want %d", i, d, i)
		}
	}
}

func TestDistancesUnreachable(t *testing.T) {
	g := NewGraph(3, true)
	g.MustAddEdge(0, 1)
	dist := g.Freeze().DistancesFrom(0)
	if dist[2] != -1 {
		t.Fatalf("node 2 should be unreachable, got dist %d", dist[2])
	}
}

func TestNewDualValidation(t *testing.T) {
	g := NewGraph(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	gp := NewGraph(3, false)
	gp.MustAddEdge(0, 1) // missing (1,2): G not subgraph

	if _, err := NewDual(g, gp, 0); !errors.Is(err, ErrNotSubgraph) {
		t.Fatalf("want ErrNotSubgraph, got %v", err)
	}

	gp.MustAddEdge(1, 2)
	if _, err := NewDual(g, gp, 0); err != nil {
		t.Fatalf("valid dual rejected: %v", err)
	}

	if _, err := NewDual(g, gp, 7); !errors.Is(err, ErrBadSource) {
		t.Fatalf("want ErrBadSource, got %v", err)
	}

	small := NewGraph(1, false)
	if _, err := NewDual(small, small, 0); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("want ErrTooSmall, got %v", err)
	}

	other := NewGraph(4, false)
	if _, err := NewDual(g, other, 0); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("want ErrSizeMismatch, got %v", err)
	}

	disconnected := NewGraph(3, false)
	disconnected.MustAddEdge(0, 1)
	gpd := disconnected.Clone()
	gpd.MustAddEdge(1, 2)
	if _, err := NewDual(disconnected, gpd, 0); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
}

func TestUnreliableOutComputed(t *testing.T) {
	g := NewGraph(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	gp := g.Clone()
	gp.MustAddEdge(0, 2)
	d, err := NewDual(g, gp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.UnreliableOut(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("UnreliableOut(0) = %v, want [2]", got)
	}
	if got := d.UnreliableOut(1); len(got) != 0 {
		t.Fatalf("UnreliableOut(1) = %v, want empty", got)
	}
	if d.Classical() {
		t.Fatal("dual with extra G' edge must not be classical")
	}
}

func TestClassicalDual(t *testing.T) {
	d, err := Line(6)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Classical() {
		t.Fatal("Line must be classical")
	}
	if d.Eccentricity() != 5 {
		t.Fatalf("line eccentricity = %d, want 5", d.Eccentricity())
	}
}

func TestCliqueBridgeShape(t *testing.T) {
	n := 8
	d, err := CliqueBridge(n)
	if err != nil {
		t.Fatal(err)
	}
	r := ReceiverNode(n)
	if got := d.ReliableOut(r); len(got) != 1 || got[0] != BridgeNode {
		t.Fatalf("receiver reliable neighbours = %v, want [bridge]", got)
	}
	// Clique: every node in C has n-2 reliable neighbours except the bridge.
	for u := 0; u < n-1; u++ {
		want := n - 2
		if NodeID(u) == BridgeNode {
			want = n - 1
		}
		if got := len(d.ReliableOut(NodeID(u))); got != want {
			t.Errorf("node %d reliable degree = %d, want %d", u, got, want)
		}
	}
	// G' complete: every node has n-1 out-neighbours in total.
	for u := 0; u < n; u++ {
		total := len(d.ReliableOut(NodeID(u))) + len(d.UnreliableOut(NodeID(u)))
		if total != n-1 {
			t.Errorf("node %d total degree = %d, want %d", u, total, n-1)
		}
	}
	if d.Eccentricity() != 2 {
		t.Fatalf("clique-bridge eccentricity = %d, want 2", d.Eccentricity())
	}
}

func TestCliqueBridgeTooSmall(t *testing.T) {
	if _, err := CliqueBridge(2); err == nil {
		t.Fatal("expected error for n=2")
	}
}

func TestCompleteLayeredShape(t *testing.T) {
	n := 9
	d, err := CompleteLayered(n)
	if err != nil {
		t.Fatal(err)
	}
	// Source connects exactly to layer 1.
	if got := d.ReliableOut(0); len(got) != 2 {
		t.Fatalf("source reliable neighbours = %v, want layer 1 (2 nodes)", got)
	}
	// Distance of layer k nodes is k.
	dist := d.G().DistancesFrom(0)
	for v := 1; v < n; v++ {
		if dist[v] != Layer(NodeID(v)) {
			t.Errorf("dist[%d] = %d, want layer %d", v, dist[v], Layer(NodeID(v)))
		}
	}
	// G' complete.
	for u := 0; u < n; u++ {
		total := len(d.ReliableOut(NodeID(u))) + len(d.UnreliableOut(NodeID(u)))
		if total != n-1 {
			t.Errorf("node %d total degree = %d, want %d", u, total, n-1)
		}
	}
}

func TestCompleteLayeredRejectsEven(t *testing.T) {
	if _, err := CompleteLayered(8); err == nil {
		t.Fatal("expected error for even n")
	}
	if _, err := CompleteLayered(3); err == nil {
		t.Fatal("expected error for n=3")
	}
}

func TestLayerIndices(t *testing.T) {
	cases := []struct {
		v    NodeID
		want int
	}{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {7, 4}, {8, 4}}
	for _, c := range cases {
		if got := Layer(c.v); got != c.want {
			t.Errorf("Layer(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLayeredRandomShape(t *testing.T) {
	d, err := LayeredRandom([]int{3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 9 {
		t.Fatalf("n = %d, want 9", d.N())
	}
	dist := d.G().DistancesFrom(0)
	wantDist := []int{0, 1, 1, 1, 2, 3, 3, 3, 3}
	for v, w := range wantDist {
		if dist[v] != w {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], w)
		}
	}
}

func TestLayeredRandomRejectsEmptyLayer(t *testing.T) {
	if _, err := LayeredRandom([]int{2, 0, 1}); err == nil {
		t.Fatal("expected error for empty layer")
	}
}

func TestGridShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := Grid(4, 5, 2, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 20 {
		t.Fatalf("n = %d, want 20", d.N())
	}
	// Interior node has reliable degree 4.
	if got := len(d.ReliableOut(NodeID(1*5 + 2))); got != 4 {
		t.Fatalf("interior reliable degree = %d, want 4", got)
	}
}

func TestGridValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Grid(1, 1, 1, 0.5, rng); err == nil {
		t.Fatal("expected error for 1x1 grid")
	}
	if _, err := Grid(2, 2, 0, 0.5, rng); err == nil {
		t.Fatal("expected error for reach 0")
	}
}

func TestDirectedLayered(t *testing.T) {
	d, err := DirectedLayered([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !d.G().Directed() {
		t.Fatal("graph should be directed")
	}
	// Layer 2 nodes have no outgoing edges.
	for v := 3; v < 6; v++ {
		if len(d.ReliableOut(NodeID(v))) != 0 || len(d.UnreliableOut(NodeID(v))) != 0 {
			t.Errorf("sink node %d has outgoing edges", v)
		}
	}
	// Source has unreliable shortcuts to layer 2.
	if got := len(d.UnreliableOut(0)); got != 3 {
		t.Fatalf("source unreliable out = %d, want 3", got)
	}
}

func TestBinaryTree(t *testing.T) {
	d, err := BinaryTree(7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Eccentricity() != 2 {
		t.Fatalf("depth of 7-node complete binary tree = %d, want 2", d.Eccentricity())
	}
}

func TestGeometricValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := Geometric(10, 0.5, 0.2, rng); err == nil {
		t.Fatal("expected error when rUnreliable < rReliable")
	}
	if _, err := Geometric(1, 0.1, 0.2, rng); err == nil {
		t.Fatal("expected error for n=1")
	}
}

// propertyDualInvariants checks the invariants every generator must satisfy.
func propertyDualInvariants(t *testing.T, d *Dual) {
	t.Helper()
	n := d.N()
	for u := 0; u < n; u++ {
		seen := make(map[NodeID]bool)
		for _, v := range d.ReliableOut(NodeID(u)) {
			if !d.GPrime().HasEdge(NodeID(u), v) {
				t.Fatalf("reliable edge (%d,%d) missing from G'", u, v)
			}
			if seen[v] {
				t.Fatalf("duplicate neighbour %d of %d", v, u)
			}
			seen[v] = true
		}
		for _, v := range d.UnreliableOut(NodeID(u)) {
			if d.G().HasEdge(NodeID(u), v) {
				t.Fatalf("unreliable list contains reliable edge (%d,%d)", u, v)
			}
			if seen[v] {
				t.Fatalf("duplicate neighbour %d of %d", v, u)
			}
			seen[v] = true
		}
	}
	for v, dist := range d.G().DistancesFrom(d.Source()) {
		if dist < 0 {
			t.Fatalf("node %d unreachable from source", v)
		}
	}
}

func TestGeneratorsSatisfyDualInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	duals := map[string]*Dual{}
	add := func(name string, d *Dual, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		duals[name] = d
	}
	d, err := CliqueBridge(11)
	add("clique-bridge", d, err)
	d, err = CompleteLayered(13)
	add("complete-layered", d, err)
	d, err = Line(9)
	add("line", d, err)
	d, err = Star(9)
	add("star", d, err)
	d, err = Complete(9)
	add("complete", d, err)
	d, err = Grid(5, 5, 2, 0.4, rng)
	add("grid", d, err)
	d, err = RandomDual(25, 0.1, 0.3, rng)
	add("random", d, err)
	d, err = Geometric(25, 0.25, 0.6, rng)
	add("geometric", d, err)
	d, err = BinaryTree(15)
	add("tree", d, err)
	d, err = DirectedLayered([]int{2, 3, 2})
	add("directed-layered", d, err)
	d, err = LayeredRandom([]int{2, 2, 2})
	add("layered-random", d, err)

	for name, dd := range duals {
		t.Run(name, func(t *testing.T) { propertyDualInvariants(t, dd) })
	}
}

func TestRandomDualProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, pr, pu float64) bool {
		n := 2 + int(nRaw%30)
		pr = math01(pr)
		pu = math01(pu)
		rng := rand.New(rand.NewSource(seed))
		d, err := RandomDual(n, pr, pu, rng)
		if err != nil {
			return false
		}
		// E ⊆ E' and connectivity hold by construction; re-validate.
		_, err = NewDualGraphs(d.G(), d.GPrime(), d.Source())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// math01 maps an arbitrary float into [0,1).
func math01(x float64) float64 {
	if x != x || x < 0 { // NaN or negative
		x = -x
	}
	if x != x {
		return 0
	}
	for x >= 1 {
		x /= 2
	}
	if x < 0 || x != x {
		return 0
	}
	return x
}

func TestTranspose(t *testing.T) {
	d, err := DirectedLayered([]int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	g := d.G()
	tr := g.Transpose()
	if !tr.Directed() || tr.N() != g.N() || tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose shape mismatch")
	}
	for u := 0; u < g.N(); u++ {
		row := tr.Out(NodeID(u))
		for i, v := range row {
			if i > 0 && row[i-1] >= v {
				t.Fatalf("transpose row %d not strictly sorted", u)
			}
			if !g.HasEdge(v, NodeID(u)) {
				t.Fatalf("transpose has %d->%d but base lacks %d->%d", u, v, v, u)
			}
		}
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Out(NodeID(u)) {
			if !tr.HasEdge(v, NodeID(u)) {
				t.Fatalf("base has %d->%d but transpose lacks %d->%d", u, v, v, u)
			}
		}
	}
	ub := NewBuilder(3, false)
	ub.MustAddEdge(0, 1)
	ub.MustAddEdge(1, 2)
	und := ub.Freeze()
	if und.Transpose() != und {
		t.Fatal("undirected transpose should return the receiver")
	}
}

// Schedule instrumentation: how each dynamic epoch was materialized.
// Recorded once per Epoch call for epochs e > 0 — epoch 0 is the run's
// starting network, not a dynamic build — and gated on metrics.Enabled().
// The mode split is the observable cost model of PR 7's incremental swaps:
// "base" epochs return the base pointer (no coin fired, zero build work),
// "incremental" epochs patch only dirty CSR rows, "rebuild" epochs
// construct a whole new dual (waypoint mobility, whose every epoch moves
// every node).
package graph

import "dualgraph/internal/metrics"

var mEpochBuilds = metrics.NewCounterVec("graph_epoch_builds_total",
	"Dynamic epoch materializations by mode: base (returned the base network unchanged), incremental (patched dirty CSR rows), rebuild (full construction).",
	"mode")

// Child handles resolved once: Epoch implementations record through these
// with a single atomic add, no map lookup.
var (
	mEpochBase        = mEpochBuilds.With("base")
	mEpochIncremental = mEpochBuilds.With("incremental")
	mEpochRebuild     = mEpochBuilds.With("rebuild")
)

package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the CSR builder pipeline to the seed implementation: a
// faithful reimplementation of the original map[edge]struct{} graph and its
// generator loops (including the exact rng draw order) must produce the
// same dual edge sets as the frozen CSR path for fixed seeds.

// refGraph is the seed's construction-oriented graph: a map edge set plus
// ragged adjacency, exactly as in the pre-CSR implementation.
type refGraph struct {
	n     int
	out   [][]NodeID
	edges map[[2]NodeID]struct{}
}

func newRefGraph(n int) *refGraph {
	return &refGraph{n: n, out: make([][]NodeID, n), edges: make(map[[2]NodeID]struct{})}
}

func (g *refGraph) addArc(u, v NodeID) {
	e := [2]NodeID{u, v}
	if _, ok := g.edges[e]; ok {
		return
	}
	g.edges[e] = struct{}{}
	g.out[u] = append(g.out[u], v)
}

func (g *refGraph) addEdge(u, v NodeID) { g.addArc(u, v); g.addArc(v, u) }

func (g *refGraph) hasEdge(u, v NodeID) bool {
	_, ok := g.edges[[2]NodeID{u, v}]
	return ok
}

func (g *refGraph) clone() *refGraph {
	c := newRefGraph(g.n)
	for e := range g.edges {
		c.addArc(e[0], e[1])
	}
	return c
}

// sortedOut returns u's neighbours sorted, as the frozen CSR exposes them.
func (g *refGraph) sortedOut(u NodeID) []NodeID {
	out := append([]NodeID(nil), g.out[u]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// assertDualMatchesRef checks that the dual's reliable and unreliable rows
// coincide with the reference (g, gp) pair for every node.
func assertDualMatchesRef(t *testing.T, d *Dual, g, gp *refGraph) {
	t.Helper()
	if d.N() != g.n {
		t.Fatalf("n = %d, want %d", d.N(), g.n)
	}
	for u := 0; u < g.n; u++ {
		wantRel := g.sortedOut(NodeID(u))
		gotRel := d.ReliableOut(NodeID(u))
		if len(gotRel) != len(wantRel) {
			t.Fatalf("node %d: reliable row %v, want %v", u, gotRel, wantRel)
		}
		for i := range wantRel {
			if gotRel[i] != wantRel[i] {
				t.Fatalf("node %d: reliable row %v, want %v", u, gotRel, wantRel)
			}
		}
		var wantUnrel []NodeID
		for _, v := range gp.sortedOut(NodeID(u)) {
			if !g.hasEdge(NodeID(u), v) {
				wantUnrel = append(wantUnrel, v)
			}
		}
		gotUnrel := d.UnreliableOut(NodeID(u))
		if len(gotUnrel) != len(wantUnrel) {
			t.Fatalf("node %d: unreliable row %v, want %v", u, gotUnrel, wantUnrel)
		}
		for i := range wantUnrel {
			if gotUnrel[i] != wantUnrel[i] {
				t.Fatalf("node %d: unreliable row %v, want %v", u, gotUnrel, wantUnrel)
			}
		}
	}
}

// refGrid replays the seed Grid loops verbatim (same rng draw order).
func refGrid(rows, cols, reach int, p float64, rng *rand.Rand) (*refGraph, *refGraph) {
	n := rows * cols
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	g := newRefGraph(n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				g.addEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				g.addEdge(id(r, c), id(r, c+1))
			}
		}
	}
	gp := g.clone()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for dr := -reach; dr <= reach; dr++ {
				for dc := -reach; dc <= reach; dc++ {
					r2, c2 := r+dr, c+dc
					if r2 < 0 || r2 >= rows || c2 < 0 || c2 >= cols {
						continue
					}
					u, v := id(r, c), id(r2, c2)
					if u >= v || g.hasEdge(u, v) {
						continue
					}
					if rng.Float64() < p {
						gp.addEdge(u, v)
					}
				}
			}
		}
	}
	return g, gp
}

func TestGridMatchesSeedImplementation(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		d, err := Grid(6, 7, 2, 0.35, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		g, gp := refGrid(6, 7, 2, 0.35, rand.New(rand.NewSource(seed)))
		assertDualMatchesRef(t, d, g, gp)
	}
}

// refGeometric replays the seed's all-pairs Geometric construction.
func refGeometric(n int, rReliable, rUnreliable float64, rng *rand.Rand) (*refGraph, *refGraph) {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(u, v int) float64 { return math.Hypot(xs[u]-xs[v], ys[u]-ys[v]) }
	g := newRefGraph(n)
	for u := 0; u+1 < n; u++ {
		g.addEdge(NodeID(u), NodeID(u+1))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if dist(u, v) <= rReliable {
				g.addEdge(NodeID(u), NodeID(v))
			}
		}
	}
	gp := g.clone()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !gp.hasEdge(NodeID(u), NodeID(v)) && dist(u, v) <= rUnreliable {
				gp.addEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g, gp
}

func TestGeometricMatchesSeedImplementation(t *testing.T) {
	// Radii both above and below the bucket-side cap exercise the cell
	// enumeration against the all-pairs reference.
	cases := []struct {
		n      int
		rR, rU float64
		seed   int64
	}{
		{25, 0.25, 0.6, 3},
		{80, 0.12, 0.3, 9},
		{200, 0.05, 0.11, 11},
		{60, 0.5, 1.5, 5}, // radius beyond the unit square: complete G'
	}
	for _, c := range cases {
		d, err := Geometric(c.n, c.rR, c.rU, rand.New(rand.NewSource(c.seed)))
		if err != nil {
			t.Fatal(err)
		}
		g, gp := refGeometric(c.n, c.rR, c.rU, rand.New(rand.NewSource(c.seed)))
		assertDualMatchesRef(t, d, g, gp)
	}
}

// refRandomDual replays the seed RandomDual loops verbatim.
func refRandomDual(n int, pReliable, pUnreliable float64, rng *rand.Rand) (*refGraph, *refGraph) {
	g := newRefGraph(n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.addEdge(NodeID(perm[i]), NodeID(perm[i+1]))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.hasEdge(NodeID(u), NodeID(v)) && rng.Float64() < pReliable {
				g.addEdge(NodeID(u), NodeID(v))
			}
		}
	}
	gp := g.clone()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !gp.hasEdge(NodeID(u), NodeID(v)) && rng.Float64() < pUnreliable {
				gp.addEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g, gp
}

func TestRandomDualMatchesSeedImplementation(t *testing.T) {
	for _, seed := range []int64{2, 5, 77} {
		d, err := RandomDual(40, 0.12, 0.35, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		g, gp := refRandomDual(40, 0.12, 0.35, rand.New(rand.NewSource(seed)))
		assertDualMatchesRef(t, d, g, gp)
	}
}

// refLayeredRandom replays the seed LayeredRandom construction.
func refLayeredRandom(layerSizes []int) (*refGraph, *refGraph) {
	n := 1
	for _, s := range layerSizes {
		n += s
	}
	g := newRefGraph(n)
	prev := []NodeID{0}
	next := 1
	for _, s := range layerSizes {
		cur := make([]NodeID, 0, s)
		for i := 0; i < s; i++ {
			cur = append(cur, NodeID(next))
			next++
		}
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				g.addEdge(cur[i], cur[j])
			}
		}
		for _, u := range prev {
			for _, v := range cur {
				g.addEdge(u, v)
			}
		}
		prev = cur
	}
	gp := newRefGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gp.addEdge(NodeID(u), NodeID(v))
		}
	}
	return g, gp
}

func TestLayeredRandomMatchesSeedImplementation(t *testing.T) {
	for _, sizes := range [][]int{{3, 1, 4}, {2, 2, 2, 2}, {5}} {
		d, err := LayeredRandom(sizes)
		if err != nil {
			t.Fatal(err)
		}
		g, gp := refLayeredRandom(sizes)
		assertDualMatchesRef(t, d, g, gp)
	}
}

// TestBuilderMatchesSeedSemantics drives a Builder and the reference map
// graph through the same random edge insertions (with duplicates and
// interleaved membership queries) and checks the frozen CSR agrees.
func TestBuilderMatchesSeedSemantics(t *testing.T) {
	for _, seed := range []int64{1, 13} {
		rng := rand.New(rand.NewSource(seed))
		const n = 30
		b := NewBuilder(n, false)
		ref := newRefGraph(n)
		for i := 0; i < 400; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			b.MustAddEdge(u, v)
			ref.addEdge(u, v)
			if i%17 == 0 { // interleave queries to force the lookup index
				if b.HasEdge(u, v) != ref.hasEdge(u, v) {
					t.Fatalf("HasEdge(%d,%d) diverged", u, v)
				}
			}
		}
		if b.NumEdges() != len(ref.edges) {
			t.Fatalf("NumEdges = %d, want %d", b.NumEdges(), len(ref.edges))
		}
		fz := b.Freeze()
		if fz.NumEdges() != len(ref.edges) {
			t.Fatalf("frozen NumEdges = %d, want %d", fz.NumEdges(), len(ref.edges))
		}
		for u := 0; u < n; u++ {
			want := ref.sortedOut(NodeID(u))
			got := fz.Out(NodeID(u))
			if len(got) != len(want) {
				t.Fatalf("node %d: row %v, want %v", u, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("node %d: row %v, want %v", u, got, want)
				}
			}
			for v := 0; v < n; v++ {
				if fz.HasEdge(NodeID(u), NodeID(v)) != ref.hasEdge(NodeID(u), NodeID(v)) {
					t.Fatalf("frozen HasEdge(%d,%d) diverged", u, v)
				}
			}
		}
	}
}

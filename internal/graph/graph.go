// Package graph provides the dual-graph network model (G, G') from
// "Broadcasting in Unreliable Radio Networks" (Kuhn, Lynch, Newport, Oshman,
// Richa; 2010). G holds the reliable links and G' ⊇ G holds all links; edges
// in G' \ G are unreliable and controlled by an adversary during simulation.
//
// The package splits graph life into two stages:
//
//   - a mutable Builder accumulates edges during topology construction
//     (AddEdge appends to a flat arc log; duplicates are tolerated and
//     removed on freeze);
//   - Freeze compacts the log into an immutable Graph in compressed sparse
//     row (CSR) form — flat offsets/targets arrays with every adjacency row
//     sorted — giving cache-friendly O(1) row iteration and O(log d)
//     HasEdge.
//
// A Dual holds three frozen CSR cores: G, G', and the unreliable fringe
// G' \ G. Every arc of the fringe has a dense, stable EdgeID (ids are
// assigned in (from, to) lexicographic order), so adversaries and the
// exhaustive searcher can name per-round delivery choices as edge-id sets
// instead of (from, to) pairs.
//
// Time-varying networks are built on the same immutable cores: a Schedule
// (see dynamic.go) produces a sequence of frozen Duals — epochs — from a
// base topology plus a mutation policy (node churn, link fading, waypoint
// mobility), each epoch assembled through the ordinary Builder→Freeze path,
// so the simulator's allocation-free hot loop is untouched within an epoch.
// EdgeIDs are dense per epoch and must never be cached across epochs.
package graph

import (
	"errors"
	"fmt"
	"slices"
)

// NodeID identifies a graph node. Nodes of an n-node graph are 0..n-1.
// It is 32-bit so frozen adjacency rows are flat []int32 arrays.
type NodeID int32

// EdgeID identifies one directed unreliable arc of a Dual. IDs are dense
// (0..NumUnreliable()-1) and stable for the lifetime of the Dual: id order
// is (from, to) lexicographic order over the fringe G' \ G.
type EdgeID int32

// packArc packs a directed arc into one word for the Builder's arc log.
func packArc(u, v NodeID) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

func unpackArc(a uint64) (u, v NodeID) { return NodeID(a >> 32), NodeID(uint32(a)) }

// Builder is the mutable construction stage of a graph over nodes 0..n-1.
// An undirected Builder records both orientations of every edge. AddEdge is
// an O(1) append; duplicate edges are deduplicated at Freeze time (or
// eagerly once HasEdge/NumEdges has forced the lookup index).
type Builder struct {
	n        int
	directed bool
	arcs     []uint64
	// lookup is built lazily on the first HasEdge/NumEdges call; once it
	// exists, AddEdge keeps it current and stops appending duplicates.
	lookup map[uint64]struct{}
}

// NewBuilder returns an empty builder for a graph with n nodes.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed}
}

// NewGraph is the historical name of NewBuilder: construction code calls
// NewGraph, adds edges, and hands the builder to NewDual (which freezes it).
func NewGraph(n int, directed bool) *Builder { return NewBuilder(n, directed) }

// N returns the number of nodes.
func (b *Builder) N() int { return b.n }

// Directed reports whether the graph is directed.
func (b *Builder) Directed() bool { return b.directed }

// AddEdge inserts the edge (u, v); for undirected graphs it also inserts
// (v, u). Self-loops and out-of-range endpoints are rejected.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("self-loop at node %d", u)
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("edge (%d,%d) out of range for %d nodes", u, v, b.n)
	}
	b.addArc(u, v)
	if !b.directed {
		b.addArc(v, u)
	}
	return nil
}

// MustAddEdge is AddEdge for construction code with static endpoints.
// It panics on invalid edges, which indicates a programming error in a
// topology generator rather than a runtime condition.
func (b *Builder) MustAddEdge(u, v NodeID) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func (b *Builder) addArc(u, v NodeID) {
	a := packArc(u, v)
	if b.lookup != nil {
		if _, ok := b.lookup[a]; ok {
			return
		}
		b.lookup[a] = struct{}{}
	}
	b.arcs = append(b.arcs, a)
}

// ensureLookup builds the arc index on first use and folds out any
// duplicates already sitting in the log.
func (b *Builder) ensureLookup() {
	if b.lookup != nil {
		return
	}
	b.lookup = make(map[uint64]struct{}, len(b.arcs))
	w := 0
	for _, a := range b.arcs {
		if _, ok := b.lookup[a]; ok {
			continue
		}
		b.lookup[a] = struct{}{}
		b.arcs[w] = a
		w++
	}
	b.arcs = b.arcs[:w]
}

// HasEdge reports whether the arc (u, v) has been added. The first call
// builds a hash index over the arcs added so far; construction paths that
// never query membership never pay for it.
func (b *Builder) HasEdge(u, v NodeID) bool {
	b.ensureLookup()
	_, ok := b.lookup[packArc(u, v)]
	return ok
}

// NumEdges returns the number of distinct directed arcs added so far. For an
// undirected graph each edge counts twice (both orientations).
func (b *Builder) NumEdges() int {
	b.ensureLookup()
	return len(b.lookup)
}

// Clone returns a deep copy of the builder.
func (b *Builder) Clone() *Builder {
	c := &Builder{n: b.n, directed: b.directed, arcs: slices.Clone(b.arcs)}
	return c
}

// Freeze compacts the arc log into an immutable CSR graph: one counting
// pass buckets arcs by source, then each adjacency row is sorted and
// deduplicated in place. Total cost O(n + m log d); the builder remains
// usable (and further mutable) afterwards.
func (b *Builder) Freeze() *Graph {
	n := b.n
	offsets := make([]int32, n+1)
	for _, a := range b.arcs {
		offsets[(a>>32)+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	targets := make([]NodeID, len(b.arcs))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, a := range b.arcs {
		u, v := unpackArc(a)
		targets[cursor[u]] = v
		cursor[u]++
	}
	// Sort each row, then compact duplicates across all rows in one pass.
	w := int32(0)
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		row := targets[lo:hi]
		slices.Sort(row)
		offsets[u] = w
		for i, v := range row {
			if i > 0 && v == row[i-1] {
				continue
			}
			targets[w] = v
			w++
		}
	}
	offsets[n] = w
	return &Graph{n: n, directed: b.directed, offsets: offsets, targets: targets[:w:w]}
}

// Graph is an immutable simple graph in CSR form: node u's out-neighbours
// are targets[offsets[u]:offsets[u+1]], sorted ascending. An undirected
// Graph stores both orientations of every edge. Graphs are produced by
// Builder.Freeze and shared freely; they must never be mutated.
type Graph struct {
	n        int
	directed bool
	offsets  []int32
	targets  []NodeID
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumEdges returns the number of stored directed arcs. For an undirected
// graph each edge counts twice (both orientations).
func (g *Graph) NumEdges() int { return len(g.targets) }

// Out returns u's out-neighbours, sorted ascending. The returned slice is a
// view into the CSR core and must not be modified.
func (g *Graph) Out(u NodeID) []NodeID { return g.targets[g.offsets[u]:g.offsets[u+1]] }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u NodeID) int { return int(g.offsets[u+1] - g.offsets[u]) }

// HasEdge reports whether the arc (u, v) exists, by binary search in u's
// sorted row: O(log d) for out-degree d.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || int(u) >= g.n {
		return false
	}
	_, ok := slices.BinarySearch(g.Out(u), v)
	return ok
}

// Transpose returns the graph with every arc reversed, in CSR form with
// sorted rows. An undirected graph stores both orientations of every edge and
// is its own transpose, so the receiver itself is returned; only directed
// graphs pay for the O(n + m) counting-sort rebuild. The result is frozen and
// shares no mutable state with the receiver.
func (g *Graph) Transpose() *Graph {
	if !g.directed {
		return g
	}
	offsets := make([]int32, g.n+1)
	for _, v := range g.targets {
		offsets[v+1]++
	}
	for i := 0; i < g.n; i++ {
		offsets[i+1] += offsets[i]
	}
	targets := make([]NodeID, len(g.targets))
	cursor := make([]int32, g.n)
	copy(cursor, offsets[:g.n])
	// Walking sources in ascending order fills each reversed row already
	// sorted, because row v receives its in-neighbours u in increasing u.
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(NodeID(u)) {
			targets[cursor[v]] = NodeID(u)
			cursor[v]++
		}
	}
	return &Graph{n: g.n, directed: true, offsets: offsets, targets: targets}
}

// MaxInDegree returns the maximum in-degree over all nodes.
func (g *Graph) MaxInDegree() int {
	in := make([]int, g.n)
	for _, v := range g.targets {
		in[v]++
	}
	maxIn := 0
	for _, d := range in {
		if d > maxIn {
			maxIn = d
		}
	}
	return maxIn
}

// DistancesFrom returns BFS distances from src; unreachable nodes get -1.
func (g *Graph) DistancesFrom(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Out(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Errors returned by NewDual validation.
var (
	ErrNotSubgraph  = errors.New("reliable graph G is not a subgraph of G'")
	ErrSizeMismatch = errors.New("G and G' have different node counts")
	ErrUnreachable  = errors.New("some node is unreachable from the source in G")
	ErrBadSource    = errors.New("source node out of range")
	ErrTooSmall     = errors.New("a dual graph network needs at least 2 nodes")
)

// Dual is a dual-graph network (G, G') with a distinguished source. It is
// immutable after construction: G, G', and the unreliable fringe G' \ G are
// frozen CSR cores, and every unreliable arc carries a dense stable EdgeID.
type Dual struct {
	g      *Graph
	gPrime *Graph
	source NodeID
	// fringe is G' \ G in CSR form; fringe.offsets doubles as the per-node
	// EdgeID base, since ids are dense in (from, to) order.
	fringe *Graph
	// fringeFrom[id] is the source node of unreliable arc id (the reverse
	// of the CSR layout, for O(1) EdgeID -> arc decoding).
	fringeFrom []NodeID
}

// NewDual validates and assembles a dual graph network from two builders.
// It checks that E ⊆ E', that node counts match, and that every node is
// reachable from the source in G (the paper's standing assumption). Both
// builders are frozen; the Dual shares nothing with them afterwards.
func NewDual(g, gPrime *Builder, source NodeID) (*Dual, error) {
	if g.N() != gPrime.N() {
		return nil, ErrSizeMismatch
	}
	return newDual(g.Freeze(), gPrime.Freeze(), source)
}

// NewDualGraphs assembles a dual graph network from already-frozen graphs,
// with the same validation as NewDual. The Dual aliases the given graphs.
func NewDualGraphs(g, gPrime *Graph, source NodeID) (*Dual, error) {
	if g.N() != gPrime.N() {
		return nil, ErrSizeMismatch
	}
	return newDual(g, gPrime, source)
}

func newDual(g, gPrime *Graph, source NodeID) (*Dual, error) {
	n := g.N()
	if n < 2 {
		return nil, ErrTooSmall
	}
	if source < 0 || int(source) >= n {
		return nil, ErrBadSource
	}
	fringe, fringeFrom, err := subtract(gPrime, g)
	if err != nil {
		return nil, err
	}
	for v, dist := range g.DistancesFrom(source) {
		if dist < 0 {
			return nil, fmt.Errorf("%w: node %d", ErrUnreachable, v)
		}
	}
	return &Dual{
		g:          g,
		gPrime:     gPrime,
		source:     source,
		fringe:     fringe,
		fringeFrom: fringeFrom,
	}, nil
}

// subtract computes the fringe gp \ g as a CSR graph by merge-walking the
// two sorted row sets, verifying g ⊆ gp along the way. O(|E'|) total.
func subtract(gp, g *Graph) (*Graph, []NodeID, error) {
	n := gp.N()
	offsets := make([]int32, n+1)
	fringeCap := len(gp.targets) - len(g.targets)
	if fringeCap < 0 {
		fringeCap = 0 // g ⊄ gp; the walk below reports the offending edge
	}
	targets := make([]NodeID, 0, fringeCap)
	from := make([]NodeID, 0, fringeCap)
	for u := 0; u < n; u++ {
		gpRow := gp.Out(NodeID(u))
		gRow := g.Out(NodeID(u))
		i := 0
		for _, v := range gpRow {
			for i < len(gRow) && gRow[i] < v {
				// A reliable arc smaller than every remaining G' arc cannot
				// be matched: G ⊄ G'.
				return nil, nil, fmt.Errorf("%w: edge (%d,%d)", ErrNotSubgraph, u, gRow[i])
			}
			if i < len(gRow) && gRow[i] == v {
				i++
				continue
			}
			targets = append(targets, v)
			from = append(from, NodeID(u))
		}
		if i < len(gRow) {
			return nil, nil, fmt.Errorf("%w: edge (%d,%d)", ErrNotSubgraph, u, gRow[i])
		}
		offsets[u+1] = int32(len(targets))
	}
	fringe := &Graph{n: n, directed: true, offsets: offsets, targets: targets}
	return fringe, from, nil
}

// MustDual is NewDual for generators whose construction is valid by design.
func MustDual(g, gPrime *Builder, source NodeID) *Dual {
	d, err := NewDual(g, gPrime, source)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of nodes.
func (d *Dual) N() int { return d.g.N() }

// Source returns the distinguished source node.
func (d *Dual) Source() NodeID { return d.source }

// G returns the reliable graph. The caller must not mutate it.
func (d *Dual) G() *Graph { return d.g }

// GPrime returns the full graph G'. The caller must not mutate it.
func (d *Dual) GPrime() *Graph { return d.gPrime }

// ReliableOut returns u's out-neighbours along reliable edges, sorted
// ascending (a view into the CSR core).
func (d *Dual) ReliableOut(u NodeID) []NodeID { return d.g.Out(u) }

// UnreliableOut returns u's out-neighbours along edges of G' \ G, the edges
// the adversary controls, sorted ascending (a view into the CSR core).
func (d *Dual) UnreliableOut(u NodeID) []NodeID { return d.fringe.Out(u) }

// NumUnreliable returns the number of unreliable arcs |E' \ E| (and hence
// the exclusive upper bound on EdgeID values).
func (d *Dual) NumUnreliable() int { return len(d.fringe.targets) }

// UnreliableEdges returns u's unreliable arcs as (base, targets): the arc
// to targets[i] has EdgeID base+i. This is the adversary-facing index —
// a delivery choice over the round's senders is a set of such ids.
func (d *Dual) UnreliableEdges(u NodeID) (base EdgeID, targets []NodeID) {
	return EdgeID(d.fringe.offsets[u]), d.fringe.Out(u)
}

// UnreliableEdge decodes an EdgeID into its (from, to) arc. It panics when
// id is outside [0, NumUnreliable()), which indicates adversary code using
// an id from a different network.
func (d *Dual) UnreliableEdge(id EdgeID) (from, to NodeID) {
	return d.fringeFrom[id], d.fringe.targets[id]
}

// UnreliableEdgeID returns the EdgeID of the unreliable arc (u, v), if any:
// O(log d) by binary search in u's fringe row.
func (d *Dual) UnreliableEdgeID(u, v NodeID) (EdgeID, bool) {
	if u < 0 || int(u) >= d.fringe.n {
		return 0, false
	}
	row := d.fringe.Out(u)
	i, ok := slices.BinarySearch(row, v)
	if !ok {
		return 0, false
	}
	return EdgeID(d.fringe.offsets[u] + int32(i)), true
}

// HasUnreliableEdge reports whether (u, v) is an edge of G' \ G, in
// O(log d) — the membership test adversaries use when deciding whether a
// jamming arc exists.
func (d *Dual) HasUnreliableEdge(u, v NodeID) bool {
	_, ok := d.UnreliableEdgeID(u, v)
	return ok
}

// Classical reports whether G = G', i.e. the network has no unreliable edges
// and behaves exactly like the classical static radio model.
func (d *Dual) Classical() bool { return d.NumUnreliable() == 0 }

// Eccentricity returns the maximum G-distance from the source, i.e. the
// source eccentricity (a lower bound on broadcast time).
func (d *Dual) Eccentricity() int {
	ecc := 0
	for _, dist := range d.g.DistancesFrom(d.source) {
		if dist > ecc {
			ecc = dist
		}
	}
	return ecc
}

// Package graph provides directed and undirected graphs and the dual-graph
// network model (G, G') from "Broadcasting in Unreliable Radio Networks"
// (Kuhn, Lynch, Newport, Oshman, Richa; 2010). G holds the reliable links and
// G' ⊇ G holds all links; edges in G' \ G are unreliable and controlled by an
// adversary during simulation.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a graph node. Nodes of an n-node graph are 0..n-1.
type NodeID int

type edge struct {
	from, to NodeID
}

// Graph is a simple directed or undirected graph over nodes 0..n-1.
// An undirected Graph stores both orientations of every edge.
type Graph struct {
	n        int
	directed bool
	out      [][]NodeID
	edges    map[edge]struct{}
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int, directed bool) *Graph {
	return &Graph{
		n:        n,
		directed: directed,
		out:      make([][]NodeID, n),
		edges:    make(map[edge]struct{}),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumEdges returns the number of stored directed arcs. For an undirected
// graph each edge counts twice (both orientations).
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts the edge (u, v); for undirected graphs it also inserts
// (v, u). Self-loops and out-of-range endpoints are rejected.
func (g *Graph) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("self-loop at node %d", u)
	}
	if u < 0 || v < 0 || int(u) >= g.n || int(v) >= g.n {
		return fmt.Errorf("edge (%d,%d) out of range for %d nodes", u, v, g.n)
	}
	g.addArc(u, v)
	if !g.directed {
		g.addArc(v, u)
	}
	return nil
}

// MustAddEdge is AddEdge for construction code with static endpoints.
// It panics on invalid edges, which indicates a programming error in a
// topology generator rather than a runtime condition.
func (g *Graph) MustAddEdge(u, v NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func (g *Graph) addArc(u, v NodeID) {
	e := edge{u, v}
	if _, ok := g.edges[e]; ok {
		return
	}
	g.edges[e] = struct{}{}
	g.out[u] = append(g.out[u], v)
}

// HasEdge reports whether the arc (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.edges[edge{u, v}]
	return ok
}

// Out returns u's out-neighbours. The returned slice must not be modified.
func (g *Graph) Out(u NodeID) []NodeID { return g.out[u] }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u NodeID) int { return len(g.out[u]) }

// MaxInDegree returns the maximum in-degree over all nodes.
func (g *Graph) MaxInDegree() int {
	in := make([]int, g.n)
	for e := range g.edges {
		in[e.to]++
	}
	maxIn := 0
	for _, d := range in {
		if d > maxIn {
			maxIn = d
		}
	}
	return maxIn
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n, g.directed)
	for e := range g.edges {
		c.addArc(e.from, e.to)
	}
	return c
}

// SortAdjacency sorts every adjacency list; useful for deterministic
// iteration in simulations and tests.
func (g *Graph) SortAdjacency() {
	for _, nbrs := range g.out {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
}

// DistancesFrom returns BFS distances from src; unreachable nodes get -1.
func (g *Graph) DistancesFrom(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.out[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Errors returned by NewDual validation.
var (
	ErrNotSubgraph  = errors.New("reliable graph G is not a subgraph of G'")
	ErrSizeMismatch = errors.New("G and G' have different node counts")
	ErrUnreachable  = errors.New("some node is unreachable from the source in G")
	ErrBadSource    = errors.New("source node out of range")
	ErrTooSmall     = errors.New("a dual graph network needs at least 2 nodes")
)

// Dual is a dual-graph network (G, G') with a distinguished source. It is
// immutable after construction.
type Dual struct {
	g             *Graph
	gPrime        *Graph
	source        NodeID
	unreliableOut [][]NodeID // out-neighbours in G' that are not in G
}

// NewDual validates and assembles a dual graph network. It checks that
// E ⊆ E', that node counts match, and that every node is reachable from the
// source in G (the paper's standing assumption).
func NewDual(g, gPrime *Graph, source NodeID) (*Dual, error) {
	if g.N() != gPrime.N() {
		return nil, ErrSizeMismatch
	}
	if g.N() < 2 {
		return nil, ErrTooSmall
	}
	if source < 0 || int(source) >= g.N() {
		return nil, ErrBadSource
	}
	for e := range g.edges {
		if !gPrime.HasEdge(e.from, e.to) {
			return nil, fmt.Errorf("%w: edge (%d,%d)", ErrNotSubgraph, e.from, e.to)
		}
	}
	for v, dist := range g.DistancesFrom(source) {
		if dist < 0 {
			return nil, fmt.Errorf("%w: node %d", ErrUnreachable, v)
		}
	}
	g = g.Clone()
	gPrime = gPrime.Clone()
	g.SortAdjacency()
	gPrime.SortAdjacency()
	d := &Dual{
		g:             g,
		gPrime:        gPrime,
		source:        source,
		unreliableOut: make([][]NodeID, g.N()),
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range gPrime.Out(NodeID(u)) {
			if !g.HasEdge(NodeID(u), v) {
				d.unreliableOut[u] = append(d.unreliableOut[u], v)
			}
		}
	}
	return d, nil
}

// MustDual is NewDual for generators whose construction is valid by design.
func MustDual(g, gPrime *Graph, source NodeID) *Dual {
	d, err := NewDual(g, gPrime, source)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of nodes.
func (d *Dual) N() int { return d.g.N() }

// Source returns the distinguished source node.
func (d *Dual) Source() NodeID { return d.source }

// G returns the reliable graph. The caller must not mutate it.
func (d *Dual) G() *Graph { return d.g }

// GPrime returns the full graph G'. The caller must not mutate it.
func (d *Dual) GPrime() *Graph { return d.gPrime }

// ReliableOut returns u's out-neighbours along reliable edges.
func (d *Dual) ReliableOut(u NodeID) []NodeID { return d.g.Out(u) }

// UnreliableOut returns u's out-neighbours along edges of G' \ G, the edges
// the adversary controls.
func (d *Dual) UnreliableOut(u NodeID) []NodeID { return d.unreliableOut[u] }

// Classical reports whether G = G', i.e. the network has no unreliable edges
// and behaves exactly like the classical static radio model.
func (d *Dual) Classical() bool {
	for _, u := range d.unreliableOut {
		if len(u) > 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum G-distance from the source, i.e. the
// source eccentricity (a lower bound on broadcast time).
func (d *Dual) Eccentricity() int {
	ecc := 0
	for _, dist := range d.g.DistancesFrom(d.source) {
		if dist > ecc {
			ecc = dist
		}
	}
	return ecc
}

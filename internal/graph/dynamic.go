// Dynamic dual graphs: epoch-scheduled time-varying topologies.
//
// A Schedule produces the sequence of frozen networks — epochs — that a
// dynamic run executes on. Each epoch is an ordinary immutable Dual built
// through the same Builder→Freeze path as a static network, so within an
// epoch the simulator's allocation-free CSR hot loop is untouched; only the
// epoch boundary pays for a swap. EdgeIDs are dense per epoch: an id names an
// arc of one epoch's fringe only, and adversaries must resolve ids against
// the Dual they are currently handed (View.Dual), never cache them across
// epochs.
//
// Determinism contract: Epoch(e, runSeed) must be a pure function of the
// schedule value, e, and runSeed. The simulator passes its run seed, so a
// trial's entire topology trajectory is fixed by (schedule, trial seed) —
// which is what keeps engine sweeps bit-identical at any worker count.
// Schedules derive per-epoch randomness with EpochSeed (or directly from
// hashed (runSeed, index) tuples, as waypoint mobility does to keep motion
// continuous across epochs), never from shared RNG state.
//
// Epochs must preserve the model invariants of NewDual — node count, E ⊆ E',
// and reachability of every node from the source in G. The built-in mutation
// policies guarantee reachability by construction: churn and fading never
// touch a BFS backbone of the base network, and waypoint mobility keeps the
// Hamiltonian-path backbone of the geometric generator.

package graph

import (
	"fmt"

	"dualgraph/internal/metrics"
)

// Schedule produces the frozen network of each epoch of a dynamic run.
// Epoch e covers rounds e·EpochLength()+1 .. (e+1)·EpochLength(); an
// EpochLength of 0 means the network never changes (a single unbounded
// epoch, the static special case).
type Schedule interface {
	// N returns the node count, constant across every epoch.
	N() int
	// EpochLength returns the number of rounds each epoch lasts; 0 means
	// the epoch-0 network is used for the whole run.
	EpochLength() int
	// Epoch materializes epoch e (0-based). It must be pure in (e, runSeed):
	// the same schedule value with the same arguments returns a structurally
	// identical Dual, whatever the call order or count.
	Epoch(e int, runSeed int64) (*Dual, error)
}

// EpochSeed derives the randomness seed of one epoch as a SplitMix64-style
// mix of the run seed and the epoch index — a pure function, like
// engine.SeedFor is for trials, so dynamic runs stay reproducible at any
// worker count without any shared RNG state.
func EpochSeed(runSeed int64, epoch int) int64 {
	z := uint64(runSeed) ^ 0xd1b54a32d192ed03*(uint64(epoch)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Domain-separation tags for unitHash, so the per-node churn coins, per-edge
// fade coins, and per-waypoint coordinates are independent streams even when
// their packed keys collide.
const (
	churnTag uint64 = 0x636875726e5f5f31 // "churn__1"
	fadeTag  uint64 = 0x666164655f5f5f31 // "fade___1"
	wpxTag   uint64 = 0x77617970745f7831 // "waypt_x1"
	wpyTag   uint64 = 0x77617970745f7931 // "waypt_y1"
)

// unitHash maps (seed, tag, key) to a uniform float64 in [0, 1) through a
// SplitMix64 finalizer. It is the stateless coin of the built-in schedules:
// pure, order-independent, and cheap enough to re-evaluate per epoch.
func unitHash(seed int64, tag, key uint64) float64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(tag^(key+1))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// StaticSchedule is the trivial schedule: every epoch is the same network.
// It is the "static" registry entry and the bridge between the static and
// dynamic run paths — sim.Run(d, ...) is exactly
// sim.RunDynamic(graph.Static(d), ...).
type StaticSchedule struct {
	d *Dual
}

// Static wraps a fixed network as a schedule.
func Static(d *Dual) *StaticSchedule { return &StaticSchedule{d: d} }

// N returns the node count.
func (s *StaticSchedule) N() int { return s.d.N() }

// EpochLength returns 0: the network never changes.
func (s *StaticSchedule) EpochLength() int { return 0 }

// Epoch returns the wrapped network, whatever the epoch.
func (s *StaticSchedule) Epoch(int, int64) (*Dual, error) { return s.d, nil }

// Base returns the wrapped network.
func (s *StaticSchedule) Base() *Dual { return s.d }

// backboneTree is the BFS-tree membership test of the mutation policies,
// stored as a parent array: arc (u, v) is a backbone arc iff one endpoint is
// the BFS parent of the other. The built-in mutation policies never remove
// or demote backbone arcs, which is what keeps every epoch a valid Dual: all
// nodes stay reachable from the source in G by construction. Two array reads
// replace the old per-arc hash-map lookup, which dominated the keep
// predicates of the full-rebuild path.
type backboneTree struct {
	parent []NodeID // parent[source] = source; tree of the base's G
}

func newBackboneTree(d *Dual) *backboneTree {
	g := d.G()
	parent := make([]NodeID, g.N())
	for i := range parent {
		parent[i] = -1
	}
	src := d.Source()
	parent[src] = src
	queue := make([]NodeID, 0, g.N())
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Out(u) {
			if parent[v] < 0 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return &backboneTree{parent: parent}
}

// has reports whether (u, v) — in either orientation — is a tree arc.
func (b *backboneTree) has(u, v NodeID) bool {
	return b.parent[v] == u || b.parent[u] == v
}

// filterRowsPatched builds the CSR graph obtained from base by deleting the
// arcs that keep rejects, given that only rows flagged dirty can change:
// clean rows are copied verbatim (one bulk copy per row, already sorted and
// deduplicated), and only dirty rows pay the per-arc keep predicate. This is
// the incremental half of an epoch swap — no Builder log, no re-sort, no
// hashing; cost O(m) of straight-line copying plus O(Σ deg(dirty)) predicate
// evaluations, against the old full Builder→Freeze rebuild that re-sorted
// every row.
//
// Callers must flag every row whose content can differ from the base; a row
// flagged dirty that turns out unchanged is merely re-filtered to an
// identical result, so over-approximating dirtiness affects cost, never
// structure.
func filterRowsPatched(base *Graph, dirty []bool, keep func(u, v NodeID) bool) *Graph {
	n := base.n
	offsets := make([]int32, n+1)
	targets := make([]NodeID, 0, len(base.targets))
	for u := 0; u < n; u++ {
		row := base.Out(NodeID(u))
		if !dirty[u] {
			targets = append(targets, row...)
		} else {
			for _, v := range row {
				if keep(NodeID(u), v) {
					targets = append(targets, v)
				}
			}
		}
		offsets[u+1] = int32(len(targets))
	}
	return &Graph{n: n, directed: base.directed, offsets: offsets, targets: targets[:len(targets):len(targets)]}
}

// subtractPatched computes the fringe gp \ g like subtract, reusing the
// base's fringe rows for every clean node: a fringe row can change only where
// the epoch's g or gp row changed, so only dirty rows pay the merge-walk.
// The caller guarantees g ⊆ gp (both sides derive from a validated base via
// the same keep predicate), so unlike subtract no subgraph violation can
// arise. The capacity len(gp) - len(g) is exact for subset inputs, so the
// append loops never reallocate.
func subtractPatched(gp, g, baseFringe *Graph, baseFrom []NodeID, dirty []bool) (*Graph, []NodeID) {
	n := gp.n
	offsets := make([]int32, n+1)
	fringeCap := len(gp.targets) - len(g.targets)
	if fringeCap < 0 {
		fringeCap = 0
	}
	targets := make([]NodeID, 0, fringeCap)
	from := make([]NodeID, 0, fringeCap)
	for u := 0; u < n; u++ {
		if !dirty[u] {
			lo, hi := baseFringe.offsets[u], baseFringe.offsets[u+1]
			targets = append(targets, baseFringe.targets[lo:hi]...)
			from = append(from, baseFrom[lo:hi]...)
			offsets[u+1] = int32(len(targets))
			continue
		}
		gRow := g.Out(NodeID(u))
		i := 0
		for _, v := range gp.Out(NodeID(u)) {
			if i < len(gRow) && gRow[i] == v {
				i++
				continue
			}
			targets = append(targets, v)
			from = append(from, NodeID(u))
		}
		offsets[u+1] = int32(len(targets))
	}
	fringe := &Graph{n: n, directed: true, offsets: offsets, targets: targets}
	return fringe, from
}

// newDualPatched assembles an epoch Dual from patched cores without
// re-running NewDual's validation sweep: subgraph containment holds because
// both cores were filtered from a validated base by one keep predicate, and
// source reachability holds because the predicate never rejects a backbone
// arc. Schedules constructed these invariants; re-proving them per epoch
// (a BFS plus a full merge re-walk) was a large share of the old swap cost.
func newDualPatched(g, gp *Graph, source NodeID, fringe *Graph, from []NodeID) *Dual {
	return &Dual{g: g, gPrime: gp, source: source, fringe: fringe, fringeFrom: from}
}

// canonArc packs an arc into the fade-coin key: undirected edges use the
// (min, max) orientation so both stored orientations flip the same coin.
func canonArc(u, v NodeID, directed bool) uint64 {
	if !directed && v < u {
		u, v = v, u
	}
	return packArc(u, v)
}

// ChurnSchedule models node churn: in every epoch after the first, each
// non-source node is independently down with probability PDown (a crashed
// radio, a rebooting host). A down node keeps only its backbone link — every
// other incident arc is removed from both G and G' for the epoch — and
// recovers automatically in the next epoch's fresh draw. Epoch 0 is always
// the unmutated base network, so runs shorter than one epoch are identical
// to static runs.
type ChurnSchedule struct {
	base     *Dual
	epochLen int
	pDown    float64
	backbone *backboneTree
	// inPrime is the in-adjacency of the base G'. An epoch differs from the
	// base only in the CSR rows of down nodes and of nodes with an arc TO a
	// down node, so this is the reverse index that turns the down set into
	// the dirty-row set. For undirected bases Transpose returns G' itself.
	inPrime *Graph
}

// NewChurn builds a churn schedule over base with the given epoch length in
// rounds and per-epoch per-node down probability.
func NewChurn(base *Dual, epochLen int, pDown float64) (*ChurnSchedule, error) {
	if epochLen < 1 {
		return nil, fmt.Errorf("churn: epoch length must be >= 1, got %d", epochLen)
	}
	if pDown < 0 || pDown > 1 {
		return nil, fmt.Errorf("churn: down probability %v outside [0,1]", pDown)
	}
	return &ChurnSchedule{
		base:     base,
		epochLen: epochLen,
		pDown:    pDown,
		backbone: newBackboneTree(base),
		inPrime:  base.GPrime().Transpose(),
	}, nil
}

// N returns the node count.
func (s *ChurnSchedule) N() int { return s.base.N() }

// EpochLength returns the epoch length in rounds.
func (s *ChurnSchedule) EpochLength() int { return s.epochLen }

// Epoch materializes epoch e: the base network for e == 0, otherwise the
// base with every non-backbone arc incident to a down node removed.
func (s *ChurnSchedule) Epoch(e int, runSeed int64) (*Dual, error) {
	if e < 0 {
		return nil, fmt.Errorf("churn: negative epoch %d", e)
	}
	if e == 0 {
		return s.base, nil
	}
	seed := EpochSeed(runSeed, e)
	n := s.base.N()
	src := s.base.Source()
	down := make([]bool, n)
	anyDown := false
	for v := 0; v < n; v++ {
		if NodeID(v) != src && unitHash(seed, churnTag, uint64(v)) < s.pDown {
			down[v] = true
			anyDown = true
		}
	}
	if !anyDown {
		// No coin fired: the epoch is structurally the base, so skip the
		// rebuild and hand the base core back (same arc sets, same dense
		// EdgeIDs — byte-identical to the rebuilt Dual).
		if metrics.Enabled() {
			mEpochBase.Inc()
		}
		return s.base, nil
	}
	// A row u changes only if u is down (its whole row is filtered) or u has
	// an arc to a down node. G ⊆ G', so the G'-in-adjacency covers the dirty
	// rows of both cores; epoch cost is proportional to the down set and its
	// neighbourhood, not to n.
	dirty := make([]bool, n)
	for v := 0; v < n; v++ {
		if !down[v] {
			continue
		}
		dirty[v] = true
		for _, u := range s.inPrime.Out(NodeID(v)) {
			dirty[u] = true
		}
	}
	keep := func(u, v NodeID) bool {
		if !down[u] && !down[v] {
			return true
		}
		return s.backbone.has(u, v)
	}
	if metrics.Enabled() {
		mEpochIncremental.Inc()
	}
	g := filterRowsPatched(s.base.G(), dirty, keep)
	gp := filterRowsPatched(s.base.GPrime(), dirty, keep)
	fringe, from := subtractPatched(gp, g, s.base.fringe, s.base.fringeFrom, dirty)
	return newDualPatched(g, gp, src, fringe, from), nil
}

// FadeSchedule models link fading: in every epoch after the first, each
// reliable non-backbone edge is independently demoted to unreliable with
// probability PFade — the link still exists in G', but for that epoch the
// adversary controls it. Demoted edges recover automatically in the next
// epoch's fresh draw ("and back"). G' never changes, so the epoch duals
// share the base's frozen G' core; only G and the fringe are re-frozen.
type FadeSchedule struct {
	base     *Dual
	epochLen int
	pFade    float64
	backbone *backboneTree
}

// NewFade builds a fading schedule over base with the given epoch length in
// rounds and per-epoch per-edge demotion probability.
func NewFade(base *Dual, epochLen int, pFade float64) (*FadeSchedule, error) {
	if epochLen < 1 {
		return nil, fmt.Errorf("fade: epoch length must be >= 1, got %d", epochLen)
	}
	if pFade < 0 || pFade > 1 {
		return nil, fmt.Errorf("fade: fade probability %v outside [0,1]", pFade)
	}
	return &FadeSchedule{base: base, epochLen: epochLen, pFade: pFade, backbone: newBackboneTree(base)}, nil
}

// N returns the node count.
func (s *FadeSchedule) N() int { return s.base.N() }

// EpochLength returns the epoch length in rounds.
func (s *FadeSchedule) EpochLength() int { return s.epochLen }

// Epoch materializes epoch e: the base network for e == 0, otherwise the
// base with faded reliable edges demoted into the adversary's fringe.
func (s *FadeSchedule) Epoch(e int, runSeed int64) (*Dual, error) {
	if e < 0 {
		return nil, fmt.Errorf("fade: negative epoch %d", e)
	}
	if e == 0 {
		return s.base, nil
	}
	seed := EpochSeed(runSeed, e)
	bg := s.base.G()
	keep := func(u, v NodeID) bool {
		if s.backbone.has(u, v) {
			return true
		}
		return unitHash(seed, fadeTag, canonArc(u, v, bg.Directed())) >= s.pFade
	}
	// One coin scan finds the faded arcs — and hence the dirty rows — before
	// anything is built. If no edge fades, the epoch is structurally the base
	// (same arc sets, same dense EdgeIDs): return the base core. Otherwise
	// the patched filter below re-draws identical outcomes (coins are pure),
	// and only the rows that lost an arc are re-filtered; an undirected edge's
	// reverse orientation flips the same canonical coin in its own row's scan,
	// so both endpoint rows get flagged.
	var dirty []bool
	anyFaded := false
	for u := 0; u < bg.N(); u++ {
		for _, v := range bg.Out(NodeID(u)) {
			if keep(NodeID(u), v) {
				continue
			}
			if !anyFaded {
				anyFaded = true
				dirty = make([]bool, bg.N())
			}
			dirty[u] = true
		}
	}
	if !anyFaded {
		if metrics.Enabled() {
			mEpochBase.Inc()
		}
		return s.base, nil
	}
	if metrics.Enabled() {
		mEpochIncremental.Inc()
	}
	g := filterRowsPatched(bg, dirty, keep)
	gp := s.base.GPrime()
	fringe, from := subtractPatched(gp, g, s.base.fringe, s.base.fringeFrom, dirty)
	return newDualPatched(g, gp, s.base.Source(), fringe, from), nil
}

// WaypointSchedule models random-waypoint mobility over the geometric
// dual-graph model: every node moves in the unit square between successive
// waypoints (one leg lasts LegEpochs epochs, positions interpolate linearly
// within a leg), and each epoch's network is the geometric dual of the
// current positions — short links reliable, longer links unreliable, plus
// the generator's Hamiltonian-path backbone so the source always reaches
// everyone. The base network contributes only its node count and source; the
// geometry is the schedule's own. Waypoints are hashed directly from the run
// seed (not the epoch seed), which is what makes motion continuous: epoch
// e+1 starts where epoch e ended.
type WaypointSchedule struct {
	n         int
	source    NodeID
	epochLen  int
	legEpochs int
	rRel      float64
	rUnrel    float64
}

// NewWaypoint builds a mobility schedule for base.N() nodes. legEpochs is
// the number of epochs one waypoint-to-waypoint leg lasts (larger = slower
// motion); rReliable/rUnreliable are the geometric link radii.
func NewWaypoint(base *Dual, epochLen, legEpochs int, rReliable, rUnreliable float64) (*WaypointSchedule, error) {
	if epochLen < 1 {
		return nil, fmt.Errorf("waypoint: epoch length must be >= 1, got %d", epochLen)
	}
	if legEpochs < 1 {
		return nil, fmt.Errorf("waypoint: leg epochs must be >= 1, got %d", legEpochs)
	}
	if rUnreliable < rReliable {
		return nil, fmt.Errorf("waypoint: rUnreliable (%v) must be >= rReliable (%v)", rUnreliable, rReliable)
	}
	return &WaypointSchedule{
		n:         base.N(),
		source:    base.Source(),
		epochLen:  epochLen,
		legEpochs: legEpochs,
		rRel:      rReliable,
		rUnrel:    rUnreliable,
	}, nil
}

// N returns the node count.
func (s *WaypointSchedule) N() int { return s.n }

// EpochLength returns the epoch length in rounds.
func (s *WaypointSchedule) EpochLength() int { return s.epochLen }

// waypoint returns node v's k-th waypoint coordinate pair.
func (s *WaypointSchedule) waypoint(runSeed int64, v NodeID, k int) (x, y float64) {
	key := uint64(uint32(v))<<32 | uint64(uint32(k))
	return unitHash(runSeed, wpxTag, key), unitHash(runSeed, wpyTag, key)
}

// Epoch materializes epoch e: the geometric dual of the interpolated
// positions at epoch e.
func (s *WaypointSchedule) Epoch(e int, runSeed int64) (*Dual, error) {
	if e < 0 {
		return nil, fmt.Errorf("waypoint: negative epoch %d", e)
	}
	if e > 0 && metrics.Enabled() {
		mEpochRebuild.Inc()
	}
	leg, step := e/s.legEpochs, e%s.legEpochs
	t := float64(step) / float64(s.legEpochs)
	xs := make([]float64, s.n)
	ys := make([]float64, s.n)
	for v := 0; v < s.n; v++ {
		x0, y0 := s.waypoint(runSeed, NodeID(v), leg)
		x1, y1 := s.waypoint(runSeed, NodeID(v), leg+1)
		xs[v] = x0*(1-t) + x1*t
		ys[v] = y0*(1-t) + y1*t
	}
	return DualFromPositions(xs, ys, s.rRel, s.rUnrel, s.source)
}

package graph

import (
	"math/rand"
	"testing"
)

// TestEdgeIDContract pins the adversary-facing EdgeID index: ids are dense,
// stable, ordered by (from, to), and UnreliableEdges/UnreliableEdge/
// UnreliableEdgeID agree with each other and with the row views.
func TestEdgeIDContract(t *testing.T) {
	d, err := Grid(5, 5, 2, 0.5, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	total := d.NumUnreliable()
	if total == 0 {
		t.Fatal("test network must have unreliable edges")
	}
	next := EdgeID(0)
	for u := 0; u < d.N(); u++ {
		base, targets := d.UnreliableEdges(NodeID(u))
		if base != next {
			t.Fatalf("node %d: base = %d, want %d (ids must be dense in from-order)", u, base, next)
		}
		row := d.UnreliableOut(NodeID(u))
		if len(row) != len(targets) {
			t.Fatalf("node %d: UnreliableEdges targets %v != UnreliableOut %v", u, targets, row)
		}
		for i, v := range targets {
			if v != row[i] {
				t.Fatalf("node %d: UnreliableEdges targets %v != UnreliableOut %v", u, targets, row)
			}
			if i > 0 && targets[i-1] >= v {
				t.Fatalf("node %d: targets not strictly ascending: %v", u, targets)
			}
			id := base + EdgeID(i)
			from, to := d.UnreliableEdge(id)
			if from != NodeID(u) || to != v {
				t.Fatalf("UnreliableEdge(%d) = (%d,%d), want (%d,%d)", id, from, to, u, v)
			}
			got, ok := d.UnreliableEdgeID(NodeID(u), v)
			if !ok || got != id {
				t.Fatalf("UnreliableEdgeID(%d,%d) = (%d,%v), want (%d,true)", u, v, got, ok, id)
			}
		}
		next = base + EdgeID(len(targets))
	}
	if int(next) != total {
		t.Fatalf("dense id count %d != NumUnreliable %d", next, total)
	}
}

// TestHasUnreliableEdgeMatchesDefinition cross-checks the O(log d) fringe
// membership against the G/G' definition on every node pair.
func TestHasUnreliableEdgeMatchesDefinition(t *testing.T) {
	d, err := RandomDual(30, 0.15, 0.4, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.N(); u++ {
		for v := 0; v < d.N(); v++ {
			want := d.GPrime().HasEdge(NodeID(u), NodeID(v)) && !d.G().HasEdge(NodeID(u), NodeID(v))
			if got := d.HasUnreliableEdge(NodeID(u), NodeID(v)); got != want {
				t.Fatalf("HasUnreliableEdge(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	if _, ok := d.UnreliableEdgeID(-1, 0); ok {
		t.Fatal("negative node must not resolve to an edge id")
	}
	if _, ok := d.UnreliableEdgeID(NodeID(d.N()), 0); ok {
		t.Fatal("out-of-range node must not resolve to an edge id")
	}
}

func TestFrozenRowsSortedAndDeduplicated(t *testing.T) {
	b := NewBuilder(6, true)
	b.MustAddEdge(0, 3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 3) // duplicate
	b.MustAddEdge(0, 2)
	b.MustAddEdge(4, 5)
	g := b.Freeze()
	row := g.Out(0)
	want := []NodeID{1, 2, 3}
	if len(row) != len(want) {
		t.Fatalf("row = %v, want %v", row, want)
	}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.OutDegree(0) != 3 || g.OutDegree(1) != 0 || g.OutDegree(4) != 1 {
		t.Fatal("OutDegree mismatch")
	}
}

func TestBuilderUsableAfterFreeze(t *testing.T) {
	b := NewBuilder(4, false)
	b.MustAddEdge(0, 1)
	g1 := b.Freeze()
	b.MustAddEdge(1, 2)
	g2 := b.Freeze()
	if g1.NumEdges() != 2 {
		t.Fatalf("first freeze mutated retroactively: %d arcs", g1.NumEdges())
	}
	if g2.NumEdges() != 4 {
		t.Fatalf("second freeze = %d arcs, want 4", g2.NumEdges())
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, err := PreferentialAttachment(300, 3, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 300 {
		t.Fatalf("n = %d, want 300", d.N())
	}
	// Every node beyond the seed attaches m=3 links (reliable + unreliable).
	arcs := d.G().NumEdges() + d.NumUnreliable()
	wantArcs := 2 * (1 + 2 + 3*297) // undirected: both orientations
	if arcs != wantArcs {
		t.Fatalf("total arcs = %d, want %d", arcs, wantArcs)
	}
	if d.NumUnreliable() == 0 {
		t.Fatal("unreliable fraction 0.5 must produce unreliable links")
	}
	// Scale-free-ness (weak check): some hub far above the mean degree.
	if delta := d.GPrime().MaxInDegree(); delta < 10 {
		t.Fatalf("max degree %d suspiciously low for preferential attachment", delta)
	}
	propertyDualInvariants(t, d)
}

func TestPreferentialAttachmentAllUnreliableStaysConnected(t *testing.T) {
	// Even at fraction 1.0 each node's first link is reliable, so the
	// network always validates (source reaches everyone through G).
	d, err := PreferentialAttachment(120, 2, 1.0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	propertyDualInvariants(t, d)
	if d.NumUnreliable() == 0 {
		t.Fatal("fraction 1.0 must produce unreliable links")
	}
}

func TestPreferentialAttachmentValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PreferentialAttachment(1, 2, 0.5, rng); err == nil {
		t.Fatal("expected error for n=1")
	}
	if _, err := PreferentialAttachment(10, 0, 0.5, rng); err == nil {
		t.Fatal("expected error for m=0")
	}
	if _, err := PreferentialAttachment(10, 2, 1.5, rng); err == nil {
		t.Fatal("expected error for fraction > 1")
	}
}

package graph

import (
	"math/rand"
	"testing"
)

// randomArcs generates a reproducible edge workload for the construction
// benchmarks: m undirected edges over n nodes.
func randomArcs(n, m int, seed int64) [][2]NodeID {
	rng := rand.New(rand.NewSource(seed))
	arcs := make([][2]NodeID, 0, m)
	for len(arcs) < m {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u != v {
			arcs = append(arcs, [2]NodeID{u, v})
		}
	}
	return arcs
}

// BenchmarkGraphConstruction compares the historical map[edge]struct{} +
// ragged-adjacency builder (reimplemented here as the reference) against the
// Builder→Freeze CSR pipeline on the same 150k-edge workload. The CSR path
// must show materially lower bytes/op and allocs/op.
func BenchmarkGraphConstruction(b *testing.B) {
	const n, m = 20000, 150000
	arcs := randomArcs(n, m, 1)
	b.Run("map-builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := newRefGraph(n)
			for _, a := range arcs {
				g.addEdge(a[0], a[1])
			}
			if len(g.edges) == 0 {
				b.Fatal("empty graph")
			}
		}
	})
	b.Run("csr-builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bd := NewBuilder(n, false)
			for _, a := range arcs {
				bd.MustAddEdge(a[0], a[1])
			}
			if bd.Freeze().NumEdges() == 0 {
				b.Fatal("empty graph")
			}
		}
	})
}

// denseFringeDual builds the 10k-node membership stress network: a reliable
// path backbone under a G' star, so the hub's unreliable fringe row holds
// ~10k arcs — the worst case for the old linear-scan membership test.
func denseFringeDual(b *testing.B, n int) *Dual {
	b.Helper()
	g := NewBuilder(n, false)
	for u := 0; u+1 < n; u++ {
		g.MustAddEdge(NodeID(u), NodeID(u+1))
	}
	gp := g.Clone()
	for v := 2; v < n; v++ {
		gp.MustAddEdge(0, NodeID(v))
	}
	d, err := NewDual(g, gp, 0)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// linearScanHasUnreliable is the pre-index membership test: walk the
// sender's whole unreliable row. Kept as the benchmark baseline.
func linearScanHasUnreliable(d *Dual, from, to NodeID) bool {
	for _, v := range d.UnreliableOut(from) {
		if v == to {
			return true
		}
	}
	return false
}

// BenchmarkUnreliableMembership is the regression guard for the
// GreedyCollider-style membership test on a dense fringe: the edge-indexed
// O(log d) path must beat the O(d) scan by orders of magnitude at d ≈ 10k.
func BenchmarkUnreliableMembership(b *testing.B) {
	const n = 10000
	d := denseFringeDual(b, n)
	if deg := len(d.UnreliableOut(0)); deg < n-2 {
		b.Fatalf("hub fringe degree = %d, want ~%d", deg, n-2)
	}
	probes := make([]NodeID, 512)
	rng := rand.New(rand.NewSource(2))
	for i := range probes {
		probes[i] = NodeID(rng.Intn(n))
	}
	b.Run("linear-scan", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if linearScanHasUnreliable(d, 0, probes[i%len(probes)]) {
				hits++
			}
		}
		_ = hits
	})
	b.Run("edge-index", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if d.HasUnreliableEdge(0, probes[i%len(probes)]) {
				hits++
			}
		}
		_ = hits
	})
}

// BenchmarkGeometricBuild100k is the construction half of the 100k-node
// stress path: the cell-bucketed generator plus two freezes and the fringe
// subtraction, ~2.7M arcs end to end. The historical all-pairs loop would
// perform 5·10^9 distance evaluations here.
func BenchmarkGeometricBuild100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := Geometric(100_000, 0.004, 0.009, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		if d.NumUnreliable() == 0 {
			b.Fatal("no unreliable arcs")
		}
	}
}

// BenchmarkPreferentialAttachmentBuild100k covers the scale-free generator
// at the same scale (m=3 links per node, half unreliable).
func BenchmarkPreferentialAttachmentBuild100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := PreferentialAttachment(100_000, 3, 0.5, rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		if d.NumUnreliable() == 0 {
			b.Fatal("no unreliable arcs")
		}
	}
}

// Package repeat implements repeated broadcast in dual graphs, the future
// work the paper's conclusion singles out: the source must disseminate a
// stream of messages m_1, m_2, ..., m_M rather than a single one, and
// long-term efficiency (throughput) matters as much as single-message
// latency.
//
// Messages are distinguishable (sequence numbers), a transmission carries
// exactly one message, and receptions follow the same collision rules as the
// single-message model. Two relay policies are provided:
//
//   - Sequential: a fresh single-message protocol per message, one after the
//     other, each given a fixed round budget (the baseline a naive user
//     would build from the single-shot primitive);
//   - Pipelined: all messages in flight at once, each node relaying the
//     newest message it knows (round-robin or harmonic transmission
//     schedule), which overlaps the per-message latencies.
package repeat

import (
	"errors"
	"fmt"
	"math/rand"

	"dualgraph/internal/core"
	"dualgraph/internal/graph"
)

// Message is a sequence number 1..M.
type Message int

// Reception is what a process hears in one round of a repeated-broadcast
// execution.
type Reception struct {
	// Kind reuses the single-message semantics: silence, delivery, or
	// collision notification.
	Kind Kind
	// Msg is the delivered message when Kind == Delivered (0 otherwise).
	Msg Message
	// Own reports whether the delivery is the receiver's own transmission.
	Own bool
}

// Kind classifies a reception.
type Kind int

// Reception kinds.
const (
	// Silence is ⊥.
	Silence Kind = iota + 1
	// Delivered is a received message.
	Delivered
	// Collision is ⊤.
	Collision
)

// Process is one automaton of a repeated-broadcast protocol.
type Process interface {
	// Start activates the process; initial lists the messages it holds
	// (non-empty only at the source).
	Start(round int, initial []Message)
	// Decide returns whether to transmit this round and which message.
	Decide(round int) (send bool, msg Message)
	// Receive delivers the round outcome.
	Receive(round int, r Reception)
}

// Protocol creates processes.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// NewProcess creates the process with identifier id of an n-node
	// network that must disseminate m messages.
	NewProcess(id, n, m int, rng *rand.Rand) Process
}

// Adversary controls unreliable deliveries for the repeated engine. The
// jam-greedy built-in mirrors adversary.GreedyCollider.
type Adversary int

// Built-in adversaries.
const (
	// Benign never uses unreliable edges.
	Benign Adversary = iota + 1
	// Greedy jams lone deliveries to nodes that lack the sent message.
	Greedy
)

// String implements fmt.Stringer.
func (a Adversary) String() string {
	switch a {
	case Benign:
		return "benign"
	case Greedy:
		return "greedy"
	}
	return fmt.Sprintf("Adversary(%d)", int(a))
}

// Config parameterizes a repeated-broadcast run.
type Config struct {
	// Messages is the stream length M.
	Messages int
	// MaxRounds caps the execution.
	MaxRounds int
	// Seed drives protocol randomness.
	Seed int64
	// Adversary selects the delivery behaviour (default Greedy).
	Adversary Adversary
}

// Result reports a repeated-broadcast execution.
type Result struct {
	// Completed reports whether all M messages reached all nodes.
	Completed bool
	// Rounds is the round in which the last (node, message) delivery
	// happened, or the executed rounds if incomplete.
	Rounds int
	// PerMessage[m-1] is the completion round of message m (-1 if never).
	PerMessage []int
	// Throughput is Messages/Rounds for completed runs (0 otherwise).
	Throughput float64
	// Transmissions counts all transmissions.
	Transmissions int
}

// ErrBadConfig reports invalid run parameters.
var ErrBadConfig = errors.New("invalid repeated-broadcast config")

// Run executes the protocol on the dual graph network under the built-in
// adversary with collision rule CR4 (silence resolution) and asynchronous
// starts.
func Run(d *graph.Dual, p Protocol, cfg Config) (*Result, error) {
	if cfg.Messages < 1 {
		return nil, fmt.Errorf("%w: need at least 1 message", ErrBadConfig)
	}
	if cfg.MaxRounds < 1 {
		return nil, fmt.Errorf("%w: need MaxRounds >= 1", ErrBadConfig)
	}
	if cfg.Adversary == 0 {
		cfg.Adversary = Greedy
	}
	n := d.N()
	baseRng := rand.New(rand.NewSource(cfg.Seed))
	procs := make([]Process, n)
	for node := 0; node < n; node++ {
		procs[node] = p.NewProcess(node+1, n, cfg.Messages, rand.New(rand.NewSource(baseRng.Int63())))
	}

	src := d.Source()
	active := make([]bool, n)
	knows := make([]map[Message]bool, n)
	for i := range knows {
		knows[i] = make(map[Message]bool)
	}
	initial := make([]Message, cfg.Messages)
	for m := 1; m <= cfg.Messages; m++ {
		initial[m-1] = Message(m)
		knows[src][Message(m)] = true
	}
	procs[src].Start(1, initial)
	active[src] = true

	res := &Result{PerMessage: make([]int, cfg.Messages)}
	for i := range res.PerMessage {
		res.PerMessage[i] = -1
	}
	known := make([]int, cfg.Messages+1) // holders per message
	for m := 1; m <= cfg.Messages; m++ {
		known[m] = 1
	}
	totalNeeded := cfg.Messages * n
	totalKnown := cfg.Messages

	sentMsg := make([]Message, n)
	sent := make([]bool, n)
	reaching := make([][]graph.NodeID, n)

	for round := 1; round <= cfg.MaxRounds; round++ {
		var senders []graph.NodeID
		for i := range sent {
			sent[i] = false
		}
		for node := 0; node < n; node++ {
			if !active[node] {
				continue
			}
			send, msg := procs[node].Decide(round)
			if !send {
				continue
			}
			if !knows[node][msg] {
				return nil, fmt.Errorf("node %d transmitted unknown message %d in round %d", node, msg, round)
			}
			sent[node] = true
			sentMsg[node] = msg
			senders = append(senders, graph.NodeID(node))
		}
		res.Transmissions += len(senders)

		for i := range reaching {
			reaching[i] = reaching[i][:0]
		}
		for _, s := range senders {
			reaching[s] = append(reaching[s], s)
			for _, v := range d.ReliableOut(s) {
				reaching[v] = append(reaching[v], s)
			}
		}
		if cfg.Adversary == Greedy {
			// Jam lone deliveries of messages the target does not know yet.
			for u := 0; u < n; u++ {
				if sent[u] || len(reaching[u]) != 1 {
					continue
				}
				s := reaching[u][0]
				if knows[u][sentMsg[s]] {
					continue
				}
				for _, other := range senders {
					if other != s && d.HasUnreliableEdge(other, graph.NodeID(u)) {
						reaching[u] = append(reaching[u], other)
						break
					}
				}
			}
		}

		type delivery struct {
			node graph.NodeID
			msg  Message
		}
		var newKnown []delivery
		for node := 0; node < n; node++ {
			var rec Reception
			switch {
			case sent[node]:
				rec = Reception{Kind: Delivered, Msg: sentMsg[node], Own: true}
			case len(reaching[node]) == 0:
				rec = Reception{Kind: Silence}
			case len(reaching[node]) == 1:
				from := reaching[node][0]
				rec = Reception{Kind: Delivered, Msg: sentMsg[from]}
			default:
				rec = Reception{Kind: Silence} // CR4 resolved to silence
			}
			if rec.Kind == Delivered && !rec.Own && !knows[node][rec.Msg] {
				newKnown = append(newKnown, delivery{graph.NodeID(node), rec.Msg})
			}
			switch {
			case active[node]:
				procs[node].Receive(round, rec)
			case rec.Kind == Delivered:
				procs[node].Start(round, nil)
				active[node] = true
				procs[node].Receive(round, rec)
			}
		}
		for _, dlv := range newKnown {
			knows[dlv.node][dlv.msg] = true
			totalKnown++
			known[dlv.msg]++
			if known[dlv.msg] == n {
				res.PerMessage[dlv.msg-1] = round
			}
		}
		res.Rounds = round
		if totalKnown == totalNeeded {
			break
		}
	}
	res.Completed = totalKnown == totalNeeded
	if res.Completed {
		res.Throughput = float64(cfg.Messages) / float64(res.Rounds)
	}
	return res, nil
}

// Sequential runs one single-message protocol per message, back to back,
// giving each message a fixed round budget before starting the next.
type Sequential struct {
	// Budget is the number of rounds allocated to each message.
	Budget int
	// Harmonic selects harmonic transmission within a slot (round robin
	// otherwise).
	Harmonic bool
	// T is the harmonic level length when Harmonic is set.
	T int
}

var _ Protocol = (*Sequential)(nil)

// NewSequential builds the sequential baseline with the given per-message
// round budget.
func NewSequential(budget int, harmonic bool, t int) (*Sequential, error) {
	if budget < 1 {
		return nil, fmt.Errorf("sequential needs budget >= 1, got %d", budget)
	}
	if harmonic && t < 1 {
		return nil, fmt.Errorf("sequential harmonic needs T >= 1, got %d", t)
	}
	return &Sequential{Budget: budget, Harmonic: harmonic, T: t}, nil
}

// Name implements Protocol.
func (s *Sequential) Name() string {
	if s.Harmonic {
		return fmt.Sprintf("sequential-harmonic(B=%d,T=%d)", s.Budget, s.T)
	}
	return fmt.Sprintf("sequential-rr(B=%d)", s.Budget)
}

// NewProcess implements Protocol.
func (s *Sequential) NewProcess(id, n, m int, rng *rand.Rand) Process {
	return &sequentialProc{cfg: s, id: id, n: n, rng: rng, recv: make(map[Message]int)}
}

type sequentialProc struct {
	cfg  *Sequential
	id   int
	n    int
	rng  *rand.Rand
	recv map[Message]int // message -> round first known
}

func (p *sequentialProc) Start(round int, initial []Message) {
	for _, m := range initial {
		p.recv[m] = 0
	}
}

// slotOf returns which message is being disseminated at the given round.
func (p *sequentialProc) slotOf(round int) Message {
	return Message((round-1)/p.cfg.Budget + 1)
}

func (p *sequentialProc) Decide(round int) (bool, Message) {
	msg := p.slotOf(round)
	got, ok := p.recv[msg]
	if !ok {
		return false, 0
	}
	if p.cfg.Harmonic {
		prob := core.SendProbability(round, got, p.cfg.T)
		return p.rng != nil && p.rng.Float64() < prob, msg
	}
	return (round-1)%p.n == p.id-1, msg
}

func (p *sequentialProc) Receive(round int, r Reception) {
	if r.Kind == Delivered && !r.Own {
		if _, ok := p.recv[r.Msg]; !ok {
			p.recv[r.Msg] = round
		}
	}
}

// Pipelined keeps all messages in flight: each node cycles through every
// message it knows (so no message is starved even when deliveries arrive out
// of order), transmitting on a round-robin or harmonic schedule. Overlapping
// the per-message dissemination amortizes the per-hop contention cost that
// the sequential baseline pays M separate times.
type Pipelined struct {
	// Harmonic selects harmonic transmission (round robin otherwise).
	Harmonic bool
	// T is the harmonic level length.
	T int
}

var _ Protocol = (*Pipelined)(nil)

// NewPipelined builds the pipelined policy.
func NewPipelined(harmonic bool, t int) (*Pipelined, error) {
	if harmonic && t < 1 {
		return nil, fmt.Errorf("pipelined harmonic needs T >= 1, got %d", t)
	}
	return &Pipelined{Harmonic: harmonic, T: t}, nil
}

// Name implements Protocol.
func (p *Pipelined) Name() string {
	if p.Harmonic {
		return fmt.Sprintf("pipelined-harmonic(T=%d)", p.T)
	}
	return "pipelined-rr"
}

// NewProcess implements Protocol.
func (p *Pipelined) NewProcess(id, n, m int, rng *rand.Rand) Process {
	return &pipelinedProc{cfg: p, id: id, n: n, rng: rng, recv: make(map[Message]int)}
}

type pipelinedProc struct {
	cfg    *Pipelined
	id     int
	n      int
	rng    *rand.Rand
	recv   map[Message]int
	order  []Message // known messages in learning order
	cursor int
}

func (p *pipelinedProc) Start(round int, initial []Message) {
	for _, m := range initial {
		p.learn(m, 0)
	}
}

func (p *pipelinedProc) learn(m Message, round int) {
	if _, ok := p.recv[m]; ok {
		return
	}
	p.recv[m] = round
	p.order = append(p.order, m)
}

func (p *pipelinedProc) Decide(round int) (bool, Message) {
	if len(p.order) == 0 {
		return false, 0
	}
	msg := p.order[p.cursor%len(p.order)]
	send := false
	if p.cfg.Harmonic {
		prob := core.SendProbability(round, p.recv[msg], p.cfg.T)
		send = p.rng != nil && p.rng.Float64() < prob
	} else {
		send = (round-1)%p.n == p.id-1
	}
	if send {
		p.cursor = (p.cursor + 1) % len(p.order)
	}
	return send, msg
}

func (p *pipelinedProc) Receive(round int, r Reception) {
	if r.Kind == Delivered && !r.Own {
		p.learn(r.Msg, round)
	}
}

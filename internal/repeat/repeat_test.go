package repeat

import (
	"errors"
	"math/rand"
	"testing"

	"dualgraph/internal/core"
	"dualgraph/internal/graph"
)

func mustLine(t *testing.T, n int) *graph.Dual {
	t.Helper()
	d, err := graph.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustBridge(t *testing.T, n int) *graph.Dual {
	t.Helper()
	d, err := graph.CliqueBridge(n)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunValidation(t *testing.T) {
	d := mustLine(t, 4)
	p, err := NewSequential(16, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, p, Config{Messages: 0, MaxRounds: 10}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig for 0 messages, got %v", err)
	}
	if _, err := Run(d, p, Config{Messages: 1, MaxRounds: 0}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig for 0 rounds, got %v", err)
	}
}

func TestSequentialValidation(t *testing.T) {
	if _, err := NewSequential(0, false, 0); err == nil {
		t.Fatal("expected error for budget 0")
	}
	if _, err := NewSequential(5, true, 0); err == nil {
		t.Fatal("expected error for harmonic T=0")
	}
}

func TestPipelinedValidation(t *testing.T) {
	if _, err := NewPipelined(true, 0); err == nil {
		t.Fatal("expected error for harmonic T=0")
	}
}

func TestSequentialRoundRobinCompletesOnLine(t *testing.T) {
	n, m := 6, 3
	d := mustLine(t, n)
	// On a line, round robin needs at most n rounds per hop: budget n².
	p, err := NewSequential(n*n, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, p, Config{Messages: m, MaxRounds: m * n * n, Seed: 1, Adversary: Benign})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("sequential did not complete: per-message %v", res.PerMessage)
	}
	// Message m completes within its own slot block.
	for i, r := range res.PerMessage {
		if r <= i*n*n || r > (i+1)*n*n {
			t.Errorf("message %d completed at round %d, outside its block (%d, %d]", i+1, r, i*n*n, (i+1)*n*n)
		}
	}
}

func TestPipelinedRoundRobinCompletesOnLine(t *testing.T) {
	n, m := 6, 4
	d := mustLine(t, n)
	p, err := NewPipelined(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, p, Config{Messages: m, MaxRounds: 20 * m * n * n, Seed: 1, Adversary: Benign})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("pipelined did not complete: per-message %v", res.PerMessage)
	}
}

func TestPipelinedBeatsSequentialThroughput(t *testing.T) {
	n, m := 10, 8
	d := mustBridge(t, n)
	budget := 3 * n
	seq, err := NewSequential(budget, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipelined(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxRounds := 4 * m * budget
	resSeq, err := Run(d, seq, Config{Messages: m, MaxRounds: maxRounds, Seed: 2, Adversary: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	resPipe, err := Run(d, pipe, Config{Messages: m, MaxRounds: maxRounds, Seed: 2, Adversary: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if !resSeq.Completed || !resPipe.Completed {
		t.Fatalf("both must complete: seq=%v pipe=%v", resSeq.Completed, resPipe.Completed)
	}
	if resPipe.Throughput <= resSeq.Throughput {
		t.Fatalf("pipelining must improve throughput: pipe=%.4f seq=%.4f",
			resPipe.Throughput, resSeq.Throughput)
	}
}

func TestHarmonicVariantsComplete(t *testing.T) {
	n, m := 12, 3
	d := mustBridge(t, n)
	T := core.HarmonicT(n, 0.1)
	seq, err := NewSequential(40*n, true, T)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipelined(true, T)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protocol{seq, pipe} {
		res, err := Run(d, p, Config{Messages: m, MaxRounds: 400 * n * m, Seed: 5, Adversary: Greedy})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%s did not complete (per-message %v)", p.Name(), res.PerMessage)
		}
	}
}

func TestEngineRejectsUnknownMessageTransmission(t *testing.T) {
	d := mustLine(t, 3)
	if _, err := Run(d, liar{}, Config{Messages: 2, MaxRounds: 10, Seed: 1}); err == nil {
		t.Fatal("engine must reject transmitting a message the node does not know")
	}
}

// liar has the source transmit message 2 and every other node transmit
// message 1 — which they can only have heard if the source sent it, so the
// first activated relay claims a message it does not know.
type liar struct{}

func (liar) Name() string { return "liar" }

func (liar) NewProcess(id, n, m int, _ *rand.Rand) Process { return liarProc{id: id} }

type liarProc struct{ id int }

func (p liarProc) Decide(int) (bool, Message) {
	if p.id == 1 {
		return true, 2
	}
	return true, 1
}

func (liarProc) Start(int, []Message)   {}
func (liarProc) Receive(int, Reception) {}

func TestResultMetrics(t *testing.T) {
	n, m := 6, 2
	d := mustBridge(t, n)
	p, err := NewSequential(3*n, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, p, Config{Messages: m, MaxRounds: 12 * n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("expected completion")
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput must be positive for completed runs")
	}
	if res.Transmissions == 0 {
		t.Fatal("transmissions must be counted")
	}
	last := 0
	for _, r := range res.PerMessage {
		if r < last {
			t.Fatalf("sequential per-message completions must be non-decreasing: %v", res.PerMessage)
		}
		last = r
	}
}

func TestAdversaryString(t *testing.T) {
	if Benign.String() != "benign" || Greedy.String() != "greedy" {
		t.Fatal("adversary strings wrong")
	}
}

package progress

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// shardState fabricates a completed shard over [lo, hi) with per-trial
// rounds values lo..hi-1, built with the same config as the tracker.
func shardState(t *testing.T, sc engine.StreamConfig, shard, lo, hi int) engine.ShardState {
	t.Helper()
	sum := sc.NewSummary()
	for i := lo; i < hi; i++ {
		sum.Trials++
		sum.Completed++
		if err := sum.Rounds.Add(float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := sum.Transmissions.Add(float64(2 * i)); err != nil {
			t.Fatal(err)
		}
	}
	return engine.ShardState{Shard: shard, TrialLo: lo, TrialHi: hi, Summary: sum}
}

func TestTrackerLine(t *testing.T) {
	sc := engine.StreamConfig{}
	tr := NewTracker(100, sc)
	tr.Observe(shardState(t, sc, 0, 0, 25))
	tr.Observe(shardState(t, sc, 1, 25, 50))

	line := tr.Line()
	if !strings.HasPrefix(line, "progress: 50/100 trials (50.0%)") {
		t.Fatalf("line = %q", line)
	}
	if !strings.Contains(line, "rounds p50=") || strings.Contains(line, "p50=-") {
		t.Fatalf("line missing live p50: %q", line)
	}
	// Rounds held 0..49, so p50 is near 24.5 (exact regime: 24 or 25).
	if !strings.Contains(line, "p50=24") && !strings.Contains(line, "p50=25") {
		t.Fatalf("p50 off: %q", line)
	}
}

func TestTrackerEmpty(t *testing.T) {
	tr := NewTracker(10, engine.StreamConfig{})
	line := tr.Line()
	if !strings.Contains(line, "0/10 trials (0.0%)") || !strings.Contains(line, "p50=- p99=-") {
		t.Fatalf("empty tracker line = %q", line)
	}
	if !strings.Contains(line, "eta ?") {
		t.Fatalf("empty tracker should have unknown eta: %q", line)
	}
}

// TestTrackerConcurrentObserve drives Observe from many goroutines while
// Line renders concurrently; the race lane runs this package.
func TestTrackerConcurrentObserve(t *testing.T) {
	sc := engine.StreamConfig{}
	const shards, per = 32, 10
	tr := NewTracker(shards*per, sc)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tr.Observe(shardState(t, sc, s, s*per, (s+1)*per))
		}(s)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Line()
			}
		}
	}()
	wg.Wait()
	close(stop)
	done, _ := tr.snapshot()
	if done != shards*per {
		t.Fatalf("done = %d, want %d", done, shards*per)
	}
	if !strings.Contains(tr.Line(), "eta 0s") {
		t.Fatalf("finished tracker line = %q", tr.Line())
	}
}

// TestTrackerTicker pins the Start/stop contract: at least one line per
// interval while running, plus exactly one final line from stop, and stop is
// idempotent.
func TestTrackerTicker(t *testing.T) {
	sc := engine.StreamConfig{}
	tr := NewTracker(10, sc)
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	stop := tr.Start(w, 10*time.Millisecond)
	time.Sleep(60 * time.Millisecond)
	tr.Observe(shardState(t, sc, 0, 0, 10))
	stop()
	stop() // idempotent
	mu.Lock()
	out := sb.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected ticker lines plus a final line, got %q", out)
	}
	if !strings.Contains(lines[len(lines)-1], "10/10 trials (100.0%)") {
		t.Fatalf("final line = %q", lines[len(lines)-1])
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestTrackerAgainstRealRun wires a tracker into a real streaming run and
// checks the observed totals agree with the run's own summary — and that
// attaching the tracker did not change the result (observe-only).
func TestTrackerAgainstRealRun(t *testing.T) {
	d, err := graph.CliqueBridge(13)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(13, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewRandom(0.4)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 99}
	sc := engine.StreamConfig{}

	base, err := engine.RunStreamScheduleFromContext(context.Background(), graph.Static(d), alg, adv, simCfg,
		500, engine.Config{Workers: 4}, sc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTracker(500, sc)
	sum, err := engine.RunStreamScheduleFromContext(context.Background(), graph.Static(d), alg, adv, simCfg,
		500, engine.Config{Workers: 4}, sc, nil, tr.Observe)
	if err != nil {
		t.Fatal(err)
	}
	done, rounds := tr.snapshot()
	if done != 500 || rounds.Count() != 500 {
		t.Fatalf("tracker saw %d trials / %d rounds values, want 500/500", done, rounds.Count())
	}
	if sum.Trials != base.Trials || sum.Completed != base.Completed {
		t.Fatalf("tracker perturbed the run: %+v vs %+v", sum, base)
	}
	bm, _ := base.Rounds.Mean()
	sm, _ := sum.Rounds.Mean()
	if bm != sm {
		t.Fatalf("tracker perturbed rounds mean: %v vs %v", bm, sm)
	}
}

// Package progress turns the engine's per-shard completion callbacks into a
// live human progress line and a set of gauges: done/total trials,
// trials/sec, ETA, and live round-quantile estimates (p50/p99) read from
// periodic read-only snapshots of the aggregated stats.Stream. It is the
// layer behind `dgsim -progress`.
//
// The tracker is deliberately observe-only: Observe merges each ShardState's
// summary into its own accumulator (TrialSummary.Merge leaves the source
// unchanged, satisfying the engine's consume-during-callback contract), so
// attaching a tracker cannot perturb the run's results. The aggregate the
// tracker holds is an *unordered* merge — shards arrive in completion order,
// not shard order — so its quantile estimates are progress telemetry, not
// the run's canonical output (which the engine still merges in shard-index
// order).
package progress

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dualgraph/internal/engine"
	"dualgraph/internal/metrics"
	"dualgraph/internal/stats"
)

var (
	mTrialsDone = metrics.NewGauge("progress_trials_done",
		"Trials completed by the tracked run (0 when no tracker is attached).")
	mTrialsTotal = metrics.NewGauge("progress_trials_total",
		"Total trials the tracked run will execute.")
	mTrialsPerSec = metrics.NewFloatGauge("progress_trials_per_second",
		"Tracked run throughput, updated on the progress ticker.")
	mRoundsP50 = metrics.NewFloatGauge("progress_rounds_p50",
		"Live p50 estimate of rounds across completed trials, updated on the progress ticker.")
	mRoundsP99 = metrics.NewFloatGauge("progress_rounds_p99",
		"Live p99 estimate of rounds across completed trials, updated on the progress ticker.")
)

// Tracker aggregates ShardState deliveries into live progress. Safe for
// concurrent Observe calls from engine worker goroutines.
type Tracker struct {
	total int64
	start time.Time

	mu   sync.Mutex
	done int64
	sum  *engine.TrialSummary
}

// NewTracker builds a tracker for a run of total trials whose accumulators
// use the given stream configuration (pass the same StreamConfig the run
// itself uses, so shard summaries merge compatibly).
func NewTracker(total int64, sc engine.StreamConfig) *Tracker {
	t := &Tracker{total: total, start: time.Now(), sum: sc.NewSummary()}
	mTrialsTotal.Set(total)
	mTrialsDone.Set(0)
	return t
}

// Observe folds one completed shard into the tracker; wire it into the
// run's onShard callback (composing with checkpoint writers as needed). The
// ShardState's summary is read, never retained or mutated.
func (t *Tracker) Observe(st engine.ShardState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done += int64(st.TrialHi - st.TrialLo)
	// Merge leaves st.Summary unchanged; a config mismatch is a caller bug
	// that surfaces in the run's own merge, so the error is ignorable here.
	_ = t.sum.Merge(st.Summary)
	mTrialsDone.Set(t.done)
}

// snapshot returns the done count and a read-only copy of the rounds stream.
func (t *Tracker) snapshot() (done int64, rounds *stats.Stream) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done, t.sum.Rounds.Snapshot()
}

// Line renders the current progress line (no trailing newline) and updates
// the progress gauges:
//
//	progress: 12800/100000 trials (12.8%) 4266 trials/s eta 20s rounds p50=21 p99=34
func (t *Tracker) Line() string {
	done, rounds := t.snapshot()
	elapsed := time.Since(t.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	mTrialsPerSec.Set(rate)

	eta := "?"
	if rate > 0 && done < t.total {
		d := time.Duration(float64(t.total-done) / rate * float64(time.Second))
		eta = d.Round(time.Second).String()
	} else if done >= t.total {
		eta = "0s"
	}
	pct := 0.0
	if t.total > 0 {
		pct = 100 * float64(done) / float64(t.total)
	}
	return fmt.Sprintf("progress: %d/%d trials (%.1f%%) %.0f trials/s eta %s rounds p50=%s p99=%s",
		done, t.total, pct, rate, eta,
		quantileGauge(rounds, 0.5, mRoundsP50), quantileGauge(rounds, 0.99, mRoundsP99))
}

// quantileGauge formats one live quantile and mirrors it into its gauge;
// "-" when the stream is empty or the target is untracked after a spill.
func quantileGauge(s *stats.Stream, q float64, g *metrics.FloatGauge) string {
	v, err := s.Quantile(q)
	if err != nil {
		return "-"
	}
	g.Set(v)
	return fmt.Sprintf("%.4g", v)
}

// Start launches the ticker goroutine: every interval it writes Line to w
// (one line per tick). The returned stop function halts the ticker and
// writes one final line — so even a run shorter than the interval reports
// its completion — and is idempotent.
func (t *Tracker) Start(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprintln(w, t.Line())
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
			fmt.Fprintln(w, t.Line())
		})
	}
}

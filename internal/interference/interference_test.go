package interference_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/interference"
	"dualgraph/internal/sim"
)

func buildModel(t *testing.T, n int, seed int64) *interference.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, err := graph.RandomDual(n, 0.15, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	return interference.FromDual(d)
}

func TestNewModelValidation(t *testing.T) {
	gt := graph.NewGraph(3, false)
	gt.MustAddEdge(0, 1)
	gt.MustAddEdge(1, 2)
	gi := graph.NewGraph(3, false)
	gi.MustAddEdge(0, 1) // missing (1,2)
	if _, err := interference.NewModel(gt, gi, 0); !errors.Is(err, interference.ErrNotSubgraph) {
		t.Fatalf("want ErrNotSubgraph, got %v", err)
	}
	gi.MustAddEdge(1, 2)
	gi.MustAddEdge(0, 2)
	m, err := interference.NewModel(gt, gi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 || m.Source() != 0 {
		t.Fatal("model shape wrong")
	}
}

func TestInterferenceOnlyEdgeNeverDelivers(t *testing.T) {
	// 0-1-2 path in G_T; interference edge 0-2 in G_I. When only the source
	// transmits, node 2 must hear silence even though the G_I message
	// reaches it.
	gt := graph.NewGraph(3, false)
	gt.MustAddEdge(0, 1)
	gt.MustAddEdge(1, 2)
	gi := gt.Clone()
	gi.MustAddEdge(0, 2)
	m, err := interference.NewModel(gt, gi, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interference.Run(m, core.NewRoundRobin(), sim.Config{
		Rule: sim.CR3, Start: sim.SyncStart, Seed: 1, MaxRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round robin: node 0 sends round 1, node 1 round 2; node 2 must first
	// receive in round 2, not round 1 via the interference edge.
	if res.FirstReceive[2] != 2 {
		t.Fatalf("FirstReceive[2] = %d, want 2", res.FirstReceive[2])
	}
}

func TestInterferenceEdgeCausesCollision(t *testing.T) {
	// G_T: 0-1, 2-1? No — build: source 0 with G_T edge to 1; node 2 has a
	// G_T path via 1 and an interference edge to 1. When 0 and 2 transmit
	// together, node 1 must collide.
	gt := graph.NewGraph(3, false)
	gt.MustAddEdge(0, 1)
	gt.MustAddEdge(0, 2)
	gi := gt.Clone()
	gi.MustAddEdge(1, 2)
	m, err := interference.NewModel(gt, gi, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Scripted: pids 1 and 3 transmit in round 1 (pid 3 spontaneously).
	alg := scriptedSenders{rounds: map[int]map[int]bool{1: {1: true, 3: true}}}
	res, err := interference.Run(m, alg, sim.Config{
		Rule: sim.CR3, Start: sim.SyncStart, Seed: 1, MaxRounds: 1, RunToMaxRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 is reached by pid 1 (G_T) and pid 3 (G_I-only): collision, so
	// under CR3 it hears silence and does not learn the message.
	if res.FirstReceive[1] != -1 {
		t.Fatalf("node 1 received despite interference collision (round %d)", res.FirstReceive[1])
	}
}

// scriptedSenders transmits exactly in the configured rounds, regardless of
// holding the message (spontaneous transmission under synchronous start).
type scriptedSenders struct {
	rounds map[int]map[int]bool // round -> pid set
}

func (scriptedSenders) Name() string { return "scripted" }

func (a scriptedSenders) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	return &scriptedSender{alg: a, id: id}
}

type scriptedSender struct {
	alg scriptedSenders
	id  int
}

func (p *scriptedSender) Start(int, bool)            {}
func (p *scriptedSender) Decide(round int) bool      { return p.alg.rounds[round][p.id] }
func (p *scriptedSender) Receive(int, sim.Reception) {}

func TestLemma1ReductionExactEquivalence(t *testing.T) {
	algs := []func(n int) (sim.Algorithm, error){
		func(n int) (sim.Algorithm, error) { return core.NewRoundRobin(), nil },
		func(n int) (sim.Algorithm, error) { return core.NewStrongSelect(n) },
		func(n int) (sim.Algorithm, error) { return core.NewHarmonicForN(n, 0.1) },
		func(n int) (sim.Algorithm, error) { return core.NewDecay(), nil },
	}
	rules := []sim.CollisionRule{sim.CR1, sim.CR2, sim.CR3, sim.CR4}
	for seed := int64(1); seed <= 3; seed++ {
		m := buildModel(t, 20, seed)
		for _, rule := range rules {
			for _, mk := range algs {
				alg, err := mk(m.N())
				if err != nil {
					t.Fatal(err)
				}
				cfg := sim.Config{
					Rule:          rule,
					Start:         sim.AsyncStart,
					Seed:          seed * 1000,
					MaxRounds:     4000,
					RecordSenders: true,
				}
				native, err := interference.Run(m, alg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				reduced, err := sim.Run(m.Dual(), alg, interference.ReductionAdversary{}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(native.SendersByRound, reduced.SendersByRound) {
					t.Fatalf("seed %d rule %v alg %s: transcripts differ", seed, rule, alg.Name())
				}
				if !reflect.DeepEqual(native.FirstReceive, reduced.FirstReceive) {
					t.Fatalf("seed %d rule %v alg %s: first-receive differs\nnative:  %v\nreduced: %v",
						seed, rule, alg.Name(), native.FirstReceive, reduced.FirstReceive)
				}
				if native.Completed != reduced.Completed || native.Rounds != reduced.Rounds {
					t.Fatalf("seed %d rule %v alg %s: summary differs (%v/%d vs %v/%d)",
						seed, rule, alg.Name(), native.Completed, native.Rounds, reduced.Completed, reduced.Rounds)
				}
			}
		}
	}
}

func TestLemma1SyncStartEquivalence(t *testing.T) {
	m := buildModel(t, 15, 9)
	alg, err := core.NewStrongSelect(m.N())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Rule:          sim.CR1,
		Start:         sim.SyncStart,
		Seed:          5,
		MaxRounds:     3000,
		RecordSenders: true,
	}
	native, err := interference.Run(m, alg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := sim.Run(m.Dual(), alg, interference.ReductionAdversary{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(native.FirstReceive, reduced.FirstReceive) {
		t.Fatal("sync-start executions differ")
	}
}

func TestNativeRunCompletes(t *testing.T) {
	m := buildModel(t, 25, 3)
	alg, err := core.NewHarmonicForN(m.N(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interference.Run(m, alg, sim.Config{Seed: 8, MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("harmonic must complete on the explicit-interference model")
	}
}

// Package interference implements the explicit-interference radio network
// model (a transmission graph G_T plus an interference graph G_I ⊇ G_T,
// e.g. Galčík et al.) and the Lemma 1 / Appendix A reduction showing that
// the dual graph model subsumes it: any algorithm for dual graphs runs
// unchanged on an explicit-interference network via a dual graph with
// G = G_T and G' = G_I and a reduction adversary that deploys exactly the
// interference edges involved in collisions.
package interference

import (
	"errors"
	"fmt"
	"math/rand"

	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// Model is an explicit-interference network: messages can only be conveyed
// along G_T edges, while G_I \ G_T edges cause interference but can never
// deliver a message. It is represented by the Lemma 1 dual graph with
// G = G_T and G' = G_I; the fringe G' \ G holds the interference-only arcs.
type Model struct {
	source graph.NodeID
	dual   *graph.Dual
}

// ErrNotSubgraph is returned when G_T is not a subgraph of G_I.
var ErrNotSubgraph = errors.New("transmission graph is not a subgraph of the interference graph")

// NewModel validates G_T ⊆ G_I and source reachability in G_T.
func NewModel(gt, gi *graph.Builder, source graph.NodeID) (*Model, error) {
	// The dual-graph constructor performs exactly the validations the
	// explicit-interference model needs (subgraph, reachability, size).
	d, err := graph.NewDual(gt, gi, source)
	if err != nil {
		if errors.Is(err, graph.ErrNotSubgraph) {
			return nil, fmt.Errorf("%w: %v", ErrNotSubgraph, err)
		}
		return nil, err
	}
	return &Model{source: source, dual: d}, nil
}

// FromDual reinterprets a dual graph (G, G') as the explicit-interference
// model (G_T = G, G_I = G').
func FromDual(d *graph.Dual) *Model {
	return &Model{source: d.Source(), dual: d}
}

// N returns the node count.
func (m *Model) N() int { return m.dual.N() }

// Source returns the source node.
func (m *Model) Source() graph.NodeID { return m.source }

// Dual returns the Lemma 1 dual graph (G = G_T, G' = G_I).
func (m *Model) Dual() *graph.Dual { return m.dual }

// Run executes alg natively in the explicit-interference model under the
// Appendix A collision-rule semantics: every G_I message reaches its
// endpoint, only G_T messages are receivable, a lone G_I-only message yields
// silence, and CR4 collisions resolve to silence (matching the reduction
// adversary). Processes are assigned to nodes by the identity mapping.
func Run(m *Model, alg sim.Algorithm, cfg sim.Config) (*sim.Result, error) {
	n := m.N()
	if cfg.Rule == 0 {
		cfg.Rule = sim.CR4
	}
	if cfg.Start == 0 {
		cfg.Start = sim.AsyncStart
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 200*n*n + 10000
	}

	// Seed derivation mirrors sim.Run so that the same Config produces the
	// same per-process randomness in both engines (required for the Lemma 1
	// equivalence tests with randomized algorithms).
	baseRng := rand.New(rand.NewSource(cfg.Seed))
	_ = baseRng.Int63() // assignment rng slot (identity mapping here)
	_ = baseRng.Int63() // adversary rng slot (no adversary natively)
	procSeeds := make([]int64, n+1)
	for pid := 1; pid <= n; pid++ {
		procSeeds[pid] = baseRng.Int63()
	}

	procs := make([]sim.Process, n)
	procOf := make([]int, n)
	for node := 0; node < n; node++ {
		pid := node + 1
		procOf[node] = pid
		procs[node] = alg.NewProcess(pid, n, rand.New(rand.NewSource(procSeeds[pid])))
	}

	src := m.source
	hasMsg := make([]bool, n)
	active := make([]bool, n)
	firstRecv := make([]int, n)
	for i := range firstRecv {
		firstRecv[i] = -1
	}
	hasMsg[src] = true
	firstRecv[src] = 0
	procs[src].Start(1, true)
	active[src] = true
	if cfg.Start == sim.SyncStart {
		for node := 0; node < n; node++ {
			if graph.NodeID(node) != src {
				procs[node].Start(1, false)
				active[node] = true
			}
		}
	}

	res := &sim.Result{FirstReceive: firstRecv, ProcOf: procOf}
	holders := 1
	sent := make([]bool, n)
	gtReach := make([][]graph.NodeID, n) // receivable messages
	giCount := make([]int, n)            // all reaching messages

	for round := 1; round <= cfg.MaxRounds; round++ {
		for i := range sent {
			sent[i] = false
		}
		var senders []graph.NodeID
		for node := 0; node < n; node++ {
			if active[node] && procs[node].Decide(round) {
				sent[node] = true
				senders = append(senders, graph.NodeID(node))
			}
		}
		res.Transmissions += len(senders)
		if cfg.RecordSenders {
			pids := make([]int, len(senders))
			for i, s := range senders {
				pids[i] = procOf[s]
			}
			res.SendersByRound = append(res.SendersByRound, pids)
		}

		for i := range gtReach {
			gtReach[i] = gtReach[i][:0]
			giCount[i] = 0
		}
		for _, s := range senders {
			gtReach[s] = append(gtReach[s], s) // own message
			giCount[s]++
			// G_I = G_T ∪ (G_I \ G_T): walk the dual's two CSR rows instead
			// of testing G_T membership per G_I arc.
			for _, v := range m.dual.ReliableOut(s) {
				giCount[v]++
				gtReach[v] = append(gtReach[v], s)
			}
			for _, v := range m.dual.UnreliableOut(s) {
				giCount[v]++
			}
		}

		newHolders := make([]graph.NodeID, 0, 4)
		for node := 0; node < n; node++ {
			rec := nativeReception(cfg.Rule, graph.NodeID(node), sent[node], gtReach[node], giCount[node], procOf, hasMsg)
			if rec.Kind == sim.Delivered && rec.Broadcast && !rec.Own && !hasMsg[node] {
				newHolders = append(newHolders, graph.NodeID(node))
			}
			switch {
			case active[node]:
				procs[node].Receive(round, rec)
			case rec.Kind == sim.Delivered && cfg.Start == sim.AsyncStart:
				procs[node].Start(round, false)
				active[node] = true
				procs[node].Receive(round, rec)
			}
		}
		for _, node := range newHolders {
			hasMsg[node] = true
			firstRecv[node] = round
			holders++
		}
		res.Rounds = round
		if holders == n && !cfg.RunToMaxRounds {
			break
		}
	}
	res.Completed = holders == n
	if res.Completed && !cfg.RunToMaxRounds {
		maxRecv := 0
		for _, r := range firstRecv {
			if r > maxRecv {
				maxRecv = r
			}
		}
		res.Rounds = maxRecv
	}
	return res, nil
}

// nativeReception applies the explicit-interference collision semantics of
// Section 2.2: interference-only (G_I \ G_T) messages can neither be
// received nor cause a collision on their own — a collision at u requires at
// least one transmitting G_T-neighbour (or u's own transmission) plus at
// least one further reaching message. giCount counts every reaching message
// and gtReach lists the receivable ones.
func nativeReception(
	rule sim.CollisionRule,
	node graph.NodeID,
	isSender bool,
	gtReach []graph.NodeID,
	giCount int,
	procOf []int,
	hasMsg []bool,
) sim.Reception {
	deliverFrom := func(s graph.NodeID) sim.Reception {
		return sim.Reception{
			Kind:      sim.Delivered,
			From:      s,
			FromProc:  procOf[s],
			Broadcast: hasMsg[s],
			Own:       s == node,
		}
	}
	if len(gtReach) == 0 {
		// No transmission message arrives: interference alone is inert.
		return sim.Reception{Kind: sim.Silence}
	}
	switch rule {
	case sim.CR1:
		if giCount == 1 {
			return deliverFrom(gtReach[0])
		}
		return sim.Reception{Kind: sim.Collision}
	case sim.CR2, sim.CR3, sim.CR4:
		if isSender {
			return deliverFrom(node)
		}
		if giCount == 1 {
			return deliverFrom(gtReach[0])
		}
		if rule == sim.CR2 {
			return sim.Reception{Kind: sim.Collision}
		}
		// CR3, and CR4 with the silence-resolving adversary used throughout
		// this package.
		return sim.Reception{Kind: sim.Silence}
	}
	return sim.Reception{Kind: sim.Silence}
}

// ReductionAdversary is the Appendix A dual-graph adversary: it deploys a
// G_I-only edge (s, u) of a sender s exactly when some G_T-neighbour of u is
// also transmitting, i.e. when the interference edge participates in a
// collision; it never delivers messages through CR4 resolution. Running any
// dual-graph algorithm on Model.Dual() with this adversary reproduces the
// native explicit-interference execution exactly (Lemma 1).
type ReductionAdversary struct{}

var _ sim.Adversary = (*ReductionAdversary)(nil)

// Name implements sim.Adversary.
func (ReductionAdversary) Name() string { return "lemma1-reduction" }

// AssignProcs implements sim.Adversary with the identity assignment.
func (ReductionAdversary) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	procOf := make([]int, d.N())
	for i := range procOf {
		procOf[i] = i + 1
	}
	return procOf, nil
}

// Deliver implements sim.Adversary.
func (ReductionAdversary) Deliver(v *sim.View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	n := v.Dual.N()
	// gtSenders[u]: does any reliable (G_T) neighbour of u transmit?
	// A sender's own message also reaches it.
	gtSenders := make([]bool, n)
	for _, s := range senders {
		gtSenders[s] = true
		for _, u := range v.Dual.ReliableOut(s) {
			gtSenders[u] = true
		}
	}
	out := make(map[graph.NodeID][]graph.NodeID)
	for _, s := range senders {
		for _, u := range v.Dual.UnreliableOut(s) {
			if gtSenders[u] {
				out[s] = append(out[s], u)
			}
		}
	}
	return out
}

// DeliverInto implements sim.BufferedDeliverer with the same reduction rule
// as Deliver, using the sink's scratch space for the G_T sender marks.
func (ReductionAdversary) DeliverInto(v *sim.View, senders []graph.NodeID, sink *sim.DeliverySink) {
	// gtSenders[u] != 0: some reliable (G_T) neighbour of u transmits, or u
	// itself does.
	gtSenders, _ := sink.Scratch()
	for _, s := range senders {
		gtSenders[s] = 1
		for _, u := range v.Dual.ReliableOut(s) {
			gtSenders[u] = 1
		}
	}
	for _, s := range senders {
		for _, u := range v.Dual.UnreliableOut(s) {
			if gtSenders[u] != 0 {
				sink.Add(s, u)
			}
		}
	}
}

// Resolve implements sim.Adversary: CR4 collisions resolve to silence,
// matching the native engine in this package.
func (ReductionAdversary) Resolve(_ *sim.View, _ graph.NodeID, _ []graph.NodeID) graph.NodeID {
	return sim.NoDelivery
}

// Package checkpoint persists a sweep's completed (cell, shard) accumulators
// in a crash-safe, append-only file, so an interrupted run can resume without
// redoing finished work — and without perturbing a single bit of the final
// results (the engine merges a restored accumulator exactly like a freshly
// folded one; see engine.RunGridStreamFromContext).
//
// File layout (all integers little-endian):
//
//	magic    uint32  'D','G','C','K'
//	version  uint16  WireVersion
//	reserved uint16  0
//	metaLen  uint32, metaLen bytes of Meta JSON, crc32 uint32 (IEEE, of the JSON)
//	records: repeated  payloadLen uint32, payload, crc32 uint32 (IEEE, of the payload)
//
// Each record payload is one completed unit:
//
//	cell uint32, shard uint32, trialLo uint64, trialHi uint64,
//	engine.TrialSummary encoding (rest of the payload)
//
// Crash safety comes from the framing, not from atomic renames: the header is
// synced before the first record, every Append syncs after writing, and
// recovery treats an incomplete trailing record (the torn write of a crash)
// as absent — Resume truncates it away and appends after it. A CRC mismatch
// or structural violation anywhere before the tail is real corruption and
// fails with a typed error instead of being silently dropped.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"reflect"
	"sync"

	"dualgraph/internal/engine"
)

// WireVersion is the checkpoint file format version. Unknown versions are
// rejected with *ErrVersion rather than misread.
const WireVersion = 1

// fileMagic brands a checkpoint file ("DGCK" little-endian).
const fileMagic uint32 = 0x4B434744

// ErrCorrupt reports checkpoint data that is structurally damaged beyond the
// torn-tail tolerance: a failed CRC, an impossible record, a mangled header.
// Errors wrap it, so errors.Is(err, ErrCorrupt) identifies them all.
var ErrCorrupt = errors.New("checkpoint: corrupt checkpoint file")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ErrVersion reports a checkpoint written by a file format this build does
// not speak.
type ErrVersion struct {
	// Got is the rejected version number.
	Got int
}

func (e *ErrVersion) Error() string {
	return fmt.Sprintf("checkpoint: unsupported file version %d (this build speaks version %d)",
		e.Got, WireVersion)
}

// ErrSpecMismatch reports a checkpoint whose recorded sweep identity differs
// from the run trying to resume it — a stale file from an edited spec, or
// from different stream parameters. Resuming it would splice accumulators
// from a different experiment, so it is rejected up front.
type ErrSpecMismatch struct {
	// Got is the identity recorded in the file.
	Got Meta
	// Want is the identity of the resuming run.
	Want Meta
}

func (e *ErrSpecMismatch) Error() string {
	if e.Got.SpecHash != e.Want.SpecHash {
		return fmt.Sprintf("checkpoint: file was written for sweep %.12s…, this run is sweep %.12s… (the spec changed; delete the checkpoint or restore the spec)",
			e.Got.SpecHash, e.Want.SpecHash)
	}
	return fmt.Sprintf("checkpoint: file was written with run parameters %+v, this run uses %+v",
		e.Got, e.Want)
}

// Meta identifies the run a checkpoint belongs to. Everything that changes
// the bit-level content of an accumulator is part of the identity: the sweep
// itself (by canonical hash), the trial depth, and the stream statistics
// configuration. Recover compares the whole struct.
type Meta struct {
	// SpecHash is the canonical hash of the sweep document (spec.Sweep.Hash).
	SpecHash string `json:"spec_hash"`
	// Cells is the expanded grid size.
	Cells int `json:"cells"`
	// Trials is the per-cell Monte Carlo depth.
	Trials int `json:"trials"`
	// Quantiles are the tracked stream targets (nil = engine defaults).
	Quantiles []float64 `json:"quantiles,omitempty"`
	// ExactK is the stream spill threshold (0 = stats default).
	ExactK int `json:"exact_k,omitempty"`
}

// MetaFor assembles a run identity from its sweep hash, expanded grid size,
// per-cell trial depth, and stream configuration. Every caller that creates
// or resumes a checkpoint (dgsim, the coordinator) goes through this one
// constructor so the identities compare equal exactly when the runs would be
// bit-identical.
func MetaFor(specHash string, cells, trials int, sc engine.StreamConfig) Meta {
	m := Meta{SpecHash: specHash, Cells: cells, Trials: trials, ExactK: sc.ExactK}
	// Normalize the no-quantiles cases: an empty slice would not survive the
	// omitempty JSON round trip, so it must mean the same thing as nil.
	if len(sc.Quantiles) > 0 {
		m.Quantiles = sc.Quantiles
	}
	return m
}

// Record is one persisted work unit: a completed (cell, shard) accumulator
// and the trial range it covers.
type Record struct {
	Cell    int
	Shard   int
	TrialLo int
	TrialHi int
	Summary *engine.TrialSummary
}

// SeedMap converts recovered records into the seed form the engine's
// *FromContext entry points take. Later records win on duplicate keys (a
// well-formed file has none).
func SeedMap(recs []Record) map[engine.ShardKey]*engine.TrialSummary {
	seed := make(map[engine.ShardKey]*engine.TrialSummary, len(recs))
	for _, r := range recs {
		seed[engine.ShardKey{Cell: r.Cell, Shard: r.Shard}] = r.Summary
	}
	return seed
}

// Writer appends records to a checkpoint file. Append is safe for concurrent
// use — the engine's onShard callbacks arrive from multiple workers.
type Writer struct {
	mu sync.Mutex
	f  *os.File
}

// Create writes a fresh checkpoint at path (truncating any existing file),
// records meta in the header, and syncs it before returning, so even a crash
// during the first shard leaves a recoverable (empty) checkpoint.
func Create(path string, meta Meta) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: encode meta: %w", err)
	}
	hdr := make([]byte, 0, 12+len(metaJSON)+4)
	hdr = binary.LittleEndian.AppendUint32(hdr, fileMagic)
	hdr = binary.LittleEndian.AppendUint16(hdr, WireVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, 0)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(metaJSON)))
	hdr = append(hdr, metaJSON...)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(metaJSON))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: sync header: %w", err)
	}
	return &Writer{f: f}, nil
}

// Append persists one completed unit: frame, write, sync. After Append
// returns, the record survives a crash.
func (w *Writer) Append(rec Record) error {
	if rec.Summary == nil {
		return fmt.Errorf("checkpoint: record (%d, %d) has no summary", rec.Cell, rec.Shard)
	}
	blob, err := rec.Summary.MarshalBinary()
	if err != nil {
		return fmt.Errorf("checkpoint: encode summary: %w", err)
	}
	payload := make([]byte, 0, 4+4+8+8+len(blob))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(rec.Cell))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(rec.Shard))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(rec.TrialLo))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(rec.TrialHi))
	payload = append(payload, blob...)
	frame := make([]byte, 0, 4+len(payload)+4)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))

	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: write record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync record: %w", err)
	}
	return nil
}

// Close releases the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Recover reads a checkpoint, validates it against want, and returns every
// intact record plus the byte offset where the intact prefix ends. An
// incomplete trailing record — the torn write of a crash — is tolerated and
// excluded (validLen stops before it); damage anywhere else fails with an
// error wrapping ErrCorrupt. A version this build does not speak fails with
// *ErrVersion; a file recorded for a different run fails with
// *ErrSpecMismatch.
func Recover(path string, want Meta) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	recs, validLen, err := decode(data, want)
	if err != nil {
		return nil, 0, err
	}
	return recs, validLen, nil
}

// decode parses a full checkpoint image. Split from Recover for fuzzing.
func decode(data []byte, want Meta) ([]Record, int64, error) {
	if len(data) < 12 {
		return nil, 0, corrupt("need 12 header bytes, have %d", len(data))
	}
	if magic := binary.LittleEndian.Uint32(data[0:]); magic != fileMagic {
		return nil, 0, corrupt("bad magic %#x", magic)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != WireVersion {
		return nil, 0, &ErrVersion{Got: int(v)}
	}
	if reserved := binary.LittleEndian.Uint16(data[6:]); reserved != 0 {
		return nil, 0, corrupt("nonzero reserved bits %#x", reserved)
	}
	metaLen := binary.LittleEndian.Uint32(data[8:])
	if uint64(len(data)) < 12+uint64(metaLen)+4 {
		return nil, 0, corrupt("truncated header: meta needs %d bytes", metaLen)
	}
	metaJSON := data[12 : 12+metaLen]
	if sum := binary.LittleEndian.Uint32(data[12+metaLen:]); sum != crc32.ChecksumIEEE(metaJSON) {
		return nil, 0, corrupt("header checksum mismatch")
	}
	var got Meta
	if err := json.Unmarshal(metaJSON, &got); err != nil {
		return nil, 0, corrupt("undecodable meta: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		return nil, 0, &ErrSpecMismatch{Got: got, Want: want}
	}

	shards := engine.Shards(want.Trials)
	var recs []Record
	seen := make(map[engine.ShardKey]bool)
	off := int64(12) + int64(metaLen) + 4
	rest := data[off:]
	for len(rest) > 0 {
		if len(rest) < 4 {
			break // torn tail: length prefix itself incomplete
		}
		payloadLen := binary.LittleEndian.Uint32(rest)
		if uint64(len(rest)) < 4+uint64(payloadLen)+4 {
			break // torn tail: record body incomplete
		}
		payload := rest[4 : 4+payloadLen]
		sum := binary.LittleEndian.Uint32(rest[4+payloadLen:])
		if sum != crc32.ChecksumIEEE(payload) {
			// A bad checksum on a *complete* frame is bit rot, not a torn
			// write: refuse rather than silently redo (or worse, trust) it.
			return nil, 0, corrupt("record %d checksum mismatch", len(recs))
		}
		rec, err := decodeRecord(payload, want, shards)
		if err != nil {
			return nil, 0, fmt.Errorf("record %d: %w", len(recs), err)
		}
		key := engine.ShardKey{Cell: rec.Cell, Shard: rec.Shard}
		if seen[key] {
			return nil, 0, corrupt("duplicate record for unit (%d, %d)", rec.Cell, rec.Shard)
		}
		seen[key] = true
		recs = append(recs, rec)
		frame := int64(4) + int64(payloadLen) + 4
		off += frame
		rest = rest[frame:]
	}
	return recs, off, nil
}

// decodeRecord validates one payload against the run identity: unit in
// range, trial range equal to the engine's partition, summary intact and
// covering exactly that range.
func decodeRecord(payload []byte, want Meta, shards int) (Record, error) {
	const header = 4 + 4 + 8 + 8
	if len(payload) < header {
		return Record{}, corrupt("payload needs %d header bytes, have %d", header, len(payload))
	}
	rec := Record{
		Cell:    int(binary.LittleEndian.Uint32(payload[0:])),
		Shard:   int(binary.LittleEndian.Uint32(payload[4:])),
		TrialLo: int(binary.LittleEndian.Uint64(payload[8:])),
		TrialHi: int(binary.LittleEndian.Uint64(payload[16:])),
	}
	if rec.Cell < 0 || rec.Cell >= want.Cells || rec.Shard < 0 || rec.Shard >= shards {
		return Record{}, corrupt("unit (%d, %d) outside %d cells × %d shards",
			rec.Cell, rec.Shard, want.Cells, shards)
	}
	if lo, hi := engine.ShardRange(want.Trials, rec.Shard); rec.TrialLo != lo || rec.TrialHi != hi {
		return Record{}, corrupt("unit (%d, %d) claims trials [%d, %d), partition says [%d, %d)",
			rec.Cell, rec.Shard, rec.TrialLo, rec.TrialHi, lo, hi)
	}
	rec.Summary = &engine.TrialSummary{}
	if err := rec.Summary.UnmarshalBinary(payload[header:]); err != nil {
		return Record{}, fmt.Errorf("%w: summary: %v", ErrCorrupt, err)
	}
	if rec.Summary.Trials != int64(rec.TrialHi-rec.TrialLo) {
		return Record{}, corrupt("unit (%d, %d) summary covers %d trials, range is %d",
			rec.Cell, rec.Shard, rec.Summary.Trials, rec.TrialHi-rec.TrialLo)
	}
	return rec, nil
}

// Resume recovers path, truncates any torn tail, and returns the intact
// records together with a Writer positioned to append after them — the
// one-call entry point for "pick up where the crash left off".
func Resume(path string, want Meta) ([]Record, *Writer, error) {
	recs, validLen, err := Recover(path, want)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	return recs, &Writer{f: f}, nil
}

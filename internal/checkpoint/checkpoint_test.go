package checkpoint

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// testRecords produces genuine shard accumulators from a tiny run, so the
// records carry realistic stream state.
func testRecords(t testing.TB, trials int) ([]Record, Meta) {
	t.Helper()
	line, err := graph.Line(7)
	if err != nil {
		t.Fatal(err)
	}
	cell := engine.Trial{Net: line, Alg: core.NewRoundRobin(), Adv: adversary.Benign{},
		Cfg: sim.Config{Rule: sim.CR3, Start: sim.SyncStart, Seed: 3}}
	sc := engine.StreamConfig{ExactK: 8}
	var recs []Record
	_, err = engine.RunGridStreamFromContext(context.Background(), []engine.Trial{cell, cell}, trials,
		engine.Config{Workers: 1}, sc, nil,
		func(st engine.ShardState) {
			var sum engine.TrialSummary
			blob, err := st.Summary.MarshalBinary()
			if err != nil {
				t.Error(err)
				return
			}
			if err := sum.UnmarshalBinary(blob); err != nil {
				t.Error(err)
				return
			}
			recs = append(recs, Record{Cell: st.Cell, Shard: st.Shard,
				TrialLo: st.TrialLo, TrialHi: st.TrialHi, Summary: &sum})
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return recs, Meta{SpecHash: "deadbeef", Cells: 2, Trials: trials, ExactK: 8}
}

// writeFile creates a checkpoint holding recs[:n].
func writeFile(t *testing.T, path string, meta Meta, recs []Record) {
	t.Helper()
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	recs, meta := testRecords(t, 12)
	path := filepath.Join(t.TempDir(), "ck")
	writeFile(t, path, meta, recs)
	got, _, err := Recover(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("recovered records differ:\n got %+v\nwant %+v", got, recs)
	}
	seed := SeedMap(got)
	if len(seed) != len(recs) {
		t.Fatalf("seed map has %d entries, want %d", len(seed), len(recs))
	}
}

func TestEmptyCheckpointRecovers(t *testing.T) {
	_, meta := testRecords(t, 4)
	path := filepath.Join(t.TempDir(), "ck")
	writeFile(t, path, meta, nil)
	got, _, err := Recover(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty checkpoint recovered %d records", len(got))
	}
}

// TestTornTailIsDropped: every truncation point after the header recovers
// the records whose frames are fully present — never an error, never a
// partial record.
func TestTornTailIsDropped(t *testing.T) {
	recs, meta := testRecords(t, 12)
	path := filepath.Join(t.TempDir(), "ck")
	writeFile(t, path, meta, recs)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the header end by recovering the empty file.
	writeFile(t, path, meta, nil)
	hdr, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := len(hdr)
	frame := (len(blob) - headerLen) / len(recs)
	for cut := headerLen; cut <= len(blob); cut++ {
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, validLen, err := Recover(path, meta)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantN := (cut - headerLen) / frame
		if len(got) != wantN {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), wantN)
		}
		if wantFrontier := int64(headerLen + wantN*frame); validLen != wantFrontier {
			t.Fatalf("cut=%d: validLen %d, want %d", cut, validLen, wantFrontier)
		}
	}
}

// TestResumeTruncatesAndAppends: a torn tail disappears on Resume and fresh
// appends land after the intact prefix.
func TestResumeTruncatesAndAppends(t *testing.T) {
	recs, meta := testRecords(t, 12)
	path := filepath.Join(t.TempDir(), "ck")
	writeFile(t, path, meta, recs[:2])
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the second record's tail off.
	if err := os.WriteFile(path, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, w, err := Resume(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("resumed with %d records, want 1", len(got))
	}
	for _, r := range recs[1:] {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	final, _, err := Recover(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final, recs) {
		t.Fatal("resume + append did not reproduce the full record set")
	}
}

func TestRejectsStaleSpec(t *testing.T) {
	recs, meta := testRecords(t, 12)
	path := filepath.Join(t.TempDir(), "ck")
	writeFile(t, path, meta, recs)
	stale := meta
	stale.SpecHash = "cafebabe"
	var mismatch *ErrSpecMismatch
	if _, _, err := Recover(path, stale); !errors.As(err, &mismatch) {
		t.Fatalf("want *ErrSpecMismatch, got %v", err)
	} else if mismatch.Got.SpecHash != meta.SpecHash || mismatch.Want.SpecHash != stale.SpecHash {
		t.Fatalf("mismatch error carries %+v / %+v", mismatch.Got, mismatch.Want)
	}
	// Changed stream parameters are a mismatch too.
	tuned := meta
	tuned.ExactK = 99
	if _, _, err := Recover(path, tuned); !errors.As(err, &mismatch) {
		t.Fatalf("want *ErrSpecMismatch for exactK change, got %v", err)
	}
}

func TestRejectsCorruption(t *testing.T) {
	recs, meta := testRecords(t, 12)
	path := filepath.Join(t.TempDir(), "ck")
	writeFile(t, path, meta, recs)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reset := func(mutate func(b []byte)) {
		b := append([]byte(nil), pristine...)
		mutate(b)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reset(func(b []byte) { b[0] ^= 0xff })
	if _, _, err := Recover(path, meta); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: want ErrCorrupt, got %v", err)
	}

	reset(func(b []byte) { b[4] = 0x7f })
	var version *ErrVersion
	if _, _, err := Recover(path, meta); !errors.As(err, &version) {
		t.Fatalf("future version: want *ErrVersion, got %v", err)
	} else if version.Got != 0x7f {
		t.Fatalf("version error carries %d", version.Got)
	}

	// Flip a byte in the middle of the first record's payload: a complete
	// frame with a failed CRC is bit rot, not a torn write.
	reset(func(b []byte) { b[len(b)/2] ^= 0x01 })
	if _, _, err := Recover(path, meta); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file flip: want ErrCorrupt, got %v", err)
	}

	// A duplicated record frame is structural damage.
	first := append([]byte(nil), pristine...)
	hdrEnd := func() int {
		p := filepath.Join(t.TempDir(), "hdr")
		writeFile(t, p, meta, nil)
		h, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return len(h)
	}()
	frame := (len(pristine) - hdrEnd) / len(recs)
	dup := append(first, first[hdrEnd:hdrEnd+frame]...)
	if err := os.WriteFile(path, dup, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(path, meta); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate record: want ErrCorrupt, got %v", err)
	}
}

// FuzzDecode: arbitrary bytes never panic; failures are always typed.
func FuzzDecode(f *testing.F) {
	recs, meta := testRecords(f, 12)
	dir, err := os.MkdirTemp("", "ckfuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ck")
	w, err := Create(path, meta)
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, err := decode(data, meta)
		if err == nil {
			return
		}
		var version *ErrVersion
		var mismatch *ErrSpecMismatch
		if !errors.Is(err, ErrCorrupt) && !errors.As(err, &version) && !errors.As(err, &mismatch) {
			t.Fatalf("rejection is not typed: %v", err)
		}
	})
}

package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzRecover drives the public torn-tail recovery path end to end: fuzz
// bytes land in a real file, Recover must never panic, every rejection must
// be typed, and a successful recovery must be idempotent — truncating the
// file to the reported valid length and recovering again yields the exact
// same records and length.
func FuzzRecover(f *testing.F) {
	recs, meta := testRecords(f, 12)
	dir, err := os.MkdirTemp("", "ckfuzzrecover")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed")
	w, err := Create(seedPath, meta)
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	blob, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)-3])   // torn record tail
	f.Add(blob[:len(blob)/2])   // torn mid-file
	f.Add(blob[:8])             // torn header
	f.Add([]byte{})             // empty file
	f.Add([]byte("not a file")) // garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, validLen, err := Recover(path, meta)
		if err != nil {
			var version *ErrVersion
			var mismatch *ErrSpecMismatch
			if !errors.Is(err, ErrCorrupt) && !errors.As(err, &version) && !errors.As(err, &mismatch) {
				t.Fatalf("rejection is not typed: %v", err)
			}
			return
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("valid length %d outside file size %d", validLen, len(data))
		}
		if err := os.WriteFile(path, data[:validLen], 0o644); err != nil {
			t.Fatal(err)
		}
		again, againLen, err := Recover(path, meta)
		if err != nil {
			t.Fatalf("recovery of the recovered prefix failed: %v", err)
		}
		if againLen != validLen || !reflect.DeepEqual(got, again) {
			t.Fatalf("recovery not idempotent: (%d records, len %d) then (%d records, len %d)",
				len(got), validLen, len(again), againLen)
		}
	})
}

// Package metrics is the zero-dependency observability registry behind
// `GET /metrics`: atomic Counter/Gauge/Histogram instruments, labeled
// families, and a Prometheus-text-format encoder, with nothing imported
// beyond the standard library. The package exists so every layer — engine,
// sim, graph, service, CLIs — can share one registry without pulling a
// client library into a deterministic simulation core.
//
// Design constraints, in order:
//
//   - Observe-only: instruments never feed back into simulation state, so a
//     run with metrics enabled is byte-identical to one without.
//   - Allocation-free on the hot path: recording into any instrument is one
//     or two atomic operations and never allocates. Labeled families resolve
//     their child once (With) and hand back the scalar instrument; hot loops
//     cache that handle instead of re-resolving per event.
//   - Scrapes never block recorders: encoding walks the registry under
//     short-held mutexes that recorders do not take.
//
// Instrumented packages register their instruments in the package-level
// Default registry at init time; cmd/metricdocs renders the same registry
// into docs/METRICS.md, so the catalog can never drift from the code.
//
// SetEnabled(false) is a test/benchmark switch for hot-path call sites
// (engine shard timing, sim epoch counters): those sites consult Enabled()
// and skip recording when it is off, which is what BenchmarkMetricsOverhead
// compares against. Service-layer lifecycle gauges ignore the switch — they
// must stay balanced across state transitions.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates hot-path instrumentation sites (see package comment).
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether hot-path instrumentation sites should record.
func Enabled() bool { return enabled.Load() }

// SetEnabled flips the hot-path instrumentation gate. On by default; turned
// off only by overhead benchmarks and tests.
func SetEnabled(on bool) { enabled.Store(on) }

// Counter is a monotonically increasing integer instrument.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float instrument (accumulated
// seconds, mostly). Add is a CAS loop on the float's bits.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds d; negative or NaN deltas are ignored.
func (c *FloatCounter) Add(d float64) {
	if !(d > 0) {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an integer instrument that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative deltas allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float instrument that can be set to arbitrary values
// (live rates and percentile estimates).
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution instrument: cumulative bucket
// counts under le upper bounds, plus an exact count and sum. Buckets are
// fixed at registration; Observe is a bounds scan plus three atomic adds.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    FloatCounter
}

// Observe records one value. NaN is ignored.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// kind is the exposition TYPE of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one registered metric name: its metadata plus either a scalar
// instrument or a labeled child map.
type family struct {
	name   string
	help   string
	typ    kind
	labels []string // empty for scalar instruments

	// Exactly one of the following is populated.
	counter   *Counter
	fcounter  *FloatCounter
	gauge     *Gauge
	fgauge    *FloatGauge
	histogram *Histogram

	mu       sync.Mutex // guards the child maps below
	keys     []string   // child keys in first-use order; sorted at scrape
	counters map[string]*labeled[*Counter]
	gauges   map[string]*labeled[*Gauge]
}

// labeled pairs a child instrument with its label values.
type labeled[T any] struct {
	values []string
	inst   T
}

// CounterVec is a labeled counter family; With resolves one child.
type CounterVec struct{ f *family }

// GaugeVec is a labeled gauge family; With resolves one child.
type GaugeVec struct{ f *family }

// childKey joins label values with an unprintable separator so distinct
// value tuples cannot collide.
func childKey(values []string) string { return strings.Join(values, "\x1f") }

// With returns the child counter for the given label values (created on
// first use). The handle is stable: hot paths should resolve once and reuse
// it, which keeps recording allocation-free.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("metrics: %s takes %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	k := childKey(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.counters[k]; ok {
		return c.inst
	}
	c := &labeled[*Counter]{values: append([]string(nil), values...), inst: &Counter{}}
	v.f.counters[k] = c
	v.f.keys = append(v.f.keys, k)
	return c.inst
}

// With returns the child gauge for the given label values (created on first
// use).
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("metrics: %s takes %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	k := childKey(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if g, ok := v.f.gauges[k]; ok {
		return g.inst
	}
	g := &labeled[*Gauge]{values: append([]string(nil), values...), inst: &Gauge{}}
	v.f.gauges[k] = g
	v.f.keys = append(v.f.keys, k)
	return g.inst
}

// Registry holds a set of uniquely named metric families. The zero value is
// not usable; construct with NewRegistry. Most code uses the package-level
// Default registry through the New* constructors.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry (tests; Default serves everyone
// else).
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// Default is the process-wide registry: instrumented packages register here
// at init, dgsimd and `dgsim -metrics` serve it, cmd/metricdocs renders it.
var Default = NewRegistry()

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// register validates and stores a family; registration happens at package
// init, so misuse (duplicate or malformed names) panics rather than
// returning an error nobody checks.
func (r *Registry) register(f *family) {
	if !nameRE.MatchString(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: %s: invalid label name %q", f.name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", f.name))
	}
	r.fams[f.name] = f
}

// NewCounter registers and returns a scalar counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: kindCounter, counter: c})
	return c
}

// NewFloatCounter registers and returns a scalar float counter.
func (r *Registry) NewFloatCounter(name, help string) *FloatCounter {
	c := &FloatCounter{}
	r.register(&family{name: name, help: help, typ: kindCounter, fcounter: c})
	return c
}

// NewGauge registers and returns a scalar gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: kindGauge, gauge: g})
	return g
}

// NewFloatGauge registers and returns a scalar float gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{}
	r.register(&family{name: name, help: help, typ: kindGauge, fgauge: g})
	return g
}

// NewHistogram registers and returns a histogram with the given upper
// bounds, which must be strictly increasing and non-empty (+Inf is
// implicit, never passed).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: %s: histogram needs at least one bucket bound", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("metrics: %s: bucket bounds must be finite and strictly increasing", name))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1), // +1 for the +Inf bucket
	}
	r.register(&family{name: name, help: help, typ: kindHistogram, histogram: h})
	return h
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: %s: a labeled family needs at least one label", name))
	}
	f := &family{
		name: name, help: help, typ: kindCounter,
		labels:   append([]string(nil), labels...),
		counters: make(map[string]*labeled[*Counter]),
	}
	r.register(f)
	return &CounterVec{f: f}
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: %s: a labeled family needs at least one label", name))
	}
	f := &family{
		name: name, help: help, typ: kindGauge,
		labels: append([]string(nil), labels...),
		gauges: make(map[string]*labeled[*Gauge]),
	}
	r.register(f)
	return &GaugeVec{f: f}
}

// Package-level constructors on the Default registry.

// NewCounter registers a scalar counter in Default.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewFloatCounter registers a scalar float counter in Default.
func NewFloatCounter(name, help string) *FloatCounter { return Default.NewFloatCounter(name, help) }

// NewGauge registers a scalar gauge in Default.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewFloatGauge registers a scalar float gauge in Default.
func NewFloatGauge(name, help string) *FloatGauge { return Default.NewFloatGauge(name, help) }

// NewHistogram registers a histogram in Default.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}

// NewCounterVec registers a labeled counter family in Default.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labels...)
}

// NewGaugeVec registers a labeled gauge family in Default.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default.NewGaugeVec(name, help, labels...)
}

// sortedFamilies snapshots the registry's families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// formatFloat renders a sample value the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelPairs renders {k="v",...} for parallel name/value slices; extra is an
// optional pre-rendered pair (histogram le) appended last.
func labelPairs(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

package metrics

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_counter", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	g := r.NewGauge("test_gauge", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge value = %d, want 4", got)
	}
	fc := r.NewFloatCounter("test_seconds_total", "seconds")
	fc.Add(0.5)
	fc.Add(0.25)
	fc.Add(math.NaN()) // ignored
	fc.Add(-1)         // ignored
	if got := fc.Value(); got != 0.75 {
		t.Fatalf("float counter value = %v, want 0.75", got)
	}
	fg := r.NewFloatGauge("test_ratio", "ratio")
	fg.Set(0.125)
	if got := fg.Value(); got != 0.125 {
		t.Fatalf("float gauge value = %v, want 0.125", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_duration_seconds", "durations", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (NaN ignored)", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative buckets: le=0.1 sees 2 (0.05 and the boundary 0.1),
	// le=1 sees 3, le=10 sees 4, +Inf sees all 5.
	for _, want := range []string{
		`test_duration_seconds_bucket{le="0.1"} 2`,
		`test_duration_seconds_bucket{le="1"} 3`,
		`test_duration_seconds_bucket{le="10"} 4`,
		`test_duration_seconds_bucket{le="+Inf"} 5`,
		`test_duration_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_cells_total", "per-cell", "cell")
	cv.With("1").Add(10)
	cv.With("0").Add(3)
	if cv.With("1") != cv.With("1") {
		t.Fatal("With must return a stable child handle")
	}
	gv := r.NewGaugeVec("test_jobs", "job states", "state")
	gv.With("queued").Set(2)
	gv.With("running").Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Children sort by label value, families by name.
	i0 := strings.Index(out, `test_cells_total{cell="0"} 3`)
	i1 := strings.Index(out, `test_cells_total{cell="1"} 10`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Fatalf("labeled samples missing or misordered:\n%s", out)
	}
	if !strings.Contains(out, `test_jobs{state="queued"} 2`) {
		t.Fatalf("gauge vec sample missing:\n%s", out)
	}
}

func TestExpositionHeadersAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "line1\nline2 \\ backslash")
	cv := r.NewCounterVec("esc_labeled_total", "labeled", "who")
	cv.With("say \"hi\"\n").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP esc_total line1\nline2 \\ backslash`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_labeled_total{who="say \"hi\"\n"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE esc_total counter\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	mustPanic("duplicate", func() { r.NewGauge("dup_total", "y") })
	mustPanic("bad name", func() { r.NewCounter("bad name", "x") })
	mustPanic("bad label", func() { r.NewCounterVec("ok_total", "x", "bad-label") })
	mustPanic("no labels", func() { r.NewCounterVec("ok2_total", "x") })
	mustPanic("empty buckets", func() { r.NewHistogram("h_total", "x", nil) })
	mustPanic("unsorted buckets", func() { r.NewHistogram("h2_total", "x", []float64{1, 1}) })
	mustPanic("wrong label arity", func() {
		v := r.NewCounterVec("arity_total", "x", "a", "b")
		v.With("only-one")
	})
}

// TestConcurrentRecordAndScrape hammers every instrument kind from many
// goroutines while scraping concurrently: the race lane runs this package,
// so any unsynchronized path fails loudly.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "x")
	fc := r.NewFloatCounter("conc_seconds_total", "x")
	g := r.NewGauge("conc_gauge", "x")
	h := r.NewHistogram("conc_hist", "x", []float64{1, 10})
	cv := r.NewCounterVec("conc_cells_total", "x", "cell")

	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := cv.With(fmt.Sprint(w % 3))
			for i := 0; i < perG; i++ {
				c.Inc()
				fc.Add(0.001)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 20))
				child.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != goroutines*perG {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	total := int64(0)
	for i := 0; i < 3; i++ {
		total += cv.With(fmt.Sprint(i)).Value()
	}
	if total != goroutines*perG {
		t.Fatalf("vec total = %d, want %d", total, goroutines*perG)
	}
	if got, want := fc.Value(), float64(goroutines*perG)*0.001; math.Abs(got-want) > 1e-6 {
		t.Fatalf("float counter = %v, want %v", got, want)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("handler_total", "x").Add(2)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 2\n") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestWriteMarkdown(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zeta_total", "last by name")
	r.NewGaugeVec("alpha_jobs", "first by name", "state")
	var sb strings.Builder
	r.WriteMarkdown(&sb)
	out := sb.String()
	ia := strings.Index(out, "`alpha_jobs`")
	iz := strings.Index(out, "`zeta_total`")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("catalog rows missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "`state`") {
		t.Fatalf("catalog missing label column content:\n%s", out)
	}
}

func TestEnabledGate(t *testing.T) {
	if !Enabled() {
		t.Fatal("metrics must default to enabled")
	}
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not take")
	}
	SetEnabled(true)
}

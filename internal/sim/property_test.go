package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// TestMessageNeverOutrunsGPrimeDistance is the simulator's conservation law:
// the broadcast message travels at most one G' hop per round, so
// FirstReceive[v] >= dist_{G'}(source, v) in every execution, whatever the
// algorithm and adversary do.
func TestMessageNeverOutrunsGPrimeDistance(t *testing.T) {
	f := func(seed int64, algPick, advPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := graph.RandomDual(16, 0.15, 0.35, rng)
		if err != nil {
			return false
		}
		var alg sim.Algorithm
		switch algPick % 3 {
		case 0:
			alg = core.NewRoundRobin()
		case 1:
			alg, err = core.NewHarmonicForN(16, 0.1)
		default:
			alg, err = core.NewStrongSelect(16)
		}
		if err != nil {
			return false
		}
		var adv sim.Adversary
		switch advPick % 3 {
		case 0:
			adv = adversary.FullDelivery{}
		case 1:
			adv = adversary.GreedyCollider{}
		default:
			adv, err = adversary.NewRandom(0.7)
		}
		if err != nil {
			return false
		}
		res, err := sim.Run(d, alg, adv, sim.Config{Seed: seed, MaxRounds: 40000})
		if err != nil {
			return false
		}
		dist := d.GPrime().DistancesFrom(d.Source())
		for v, r := range res.FirstReceive {
			if r >= 0 && r < dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTransmissionsCountedConsistently checks that the transmission counter
// equals the transcript's sender total.
func TestTransmissionsCountedConsistently(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := graph.RandomDual(20, 0.15, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(d, alg, adversary.GreedyCollider{}, sim.Config{
		Seed: 5, RecordSenders: true, MaxRounds: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, senders := range res.SendersByRound {
		total += len(senders)
	}
	if total != res.Transmissions {
		t.Fatalf("transcript total %d != Transmissions %d", total, res.Transmissions)
	}
}

// TestCompletionRoundEqualsMaxFirstReceive validates the Result contract.
func TestCompletionRoundEqualsMaxFirstReceive(t *testing.T) {
	d, err := graph.BinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(d, core.NewRoundRobin(), adversary.Benign{}, sim.Config{
		Rule: sim.CR3, Start: sim.SyncStart, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("must complete")
	}
	maxRecv := 0
	for _, r := range res.FirstReceive {
		if r > maxRecv {
			maxRecv = r
		}
	}
	if res.Rounds != maxRecv {
		t.Fatalf("Rounds = %d, max FirstReceive = %d", res.Rounds, maxRecv)
	}
}

// TestHoldersMonotone: once a node holds the message it holds it forever —
// re-running with increasing MaxRounds can only extend FirstReceive entries,
// never change recorded ones.
func TestHoldersMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d, err := graph.RandomDual(14, 0.2, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(14, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	short, err := sim.Run(d, alg, adversary.GreedyCollider{}, sim.Config{
		Seed: 2, MaxRounds: 30, RunToMaxRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	long, err := sim.Run(d, alg, adversary.GreedyCollider{}, sim.Config{
		Seed: 2, MaxRounds: 200, RunToMaxRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range short.FirstReceive {
		if r >= 0 && long.FirstReceive[v] != r {
			t.Fatalf("node %d first-receive changed from %d to %d with a longer run",
				v, r, long.FirstReceive[v])
		}
	}
}

package sim_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// scriptAlg is a test algorithm whose processes transmit in scripted rounds
// (once they hold the message, unless sendWithoutMsg is set) and record every
// reception for later assertions.
type scriptAlg struct {
	name           string
	sendRounds     map[int]map[int]bool // pid -> set of rounds
	sendWithoutMsg bool
	procs          map[int]*scriptProc
}

func newScriptAlg(sendRounds map[int]map[int]bool, sendWithoutMsg bool) *scriptAlg {
	return &scriptAlg{
		name:           "script",
		sendRounds:     sendRounds,
		sendWithoutMsg: sendWithoutMsg,
		procs:          make(map[int]*scriptProc),
	}
}

func (a *scriptAlg) Name() string { return a.name }

func (a *scriptAlg) NewProcess(id, n int, _ *rand.Rand) sim.Process {
	p := &scriptProc{alg: a, id: id, recs: map[int]sim.Reception{}}
	a.procs[id] = p
	return p
}

type scriptProc struct {
	alg     *scriptAlg
	id      int
	has     bool
	started int
	recs    map[int]sim.Reception
}

func (p *scriptProc) Start(round int, hasMessage bool) {
	p.started = round
	p.has = hasMessage
}

func (p *scriptProc) Decide(round int) bool {
	if !p.has && !p.alg.sendWithoutMsg {
		return false
	}
	return p.alg.sendRounds[p.id][round]
}

func (p *scriptProc) Receive(round int, r sim.Reception) {
	p.recs[round] = r
	if r.Kind == sim.Delivered && r.Broadcast {
		p.has = true
	}
}

func mustLine(t *testing.T, n int) *graph.Dual {
	t.Helper()
	d, err := graph.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundRobinOnClassicalLine(t *testing.T) {
	n := 6
	d := mustLine(t, n)
	res, err := sim.Run(d, core.NewRoundRobin(), adversary.Benign{}, sim.Config{
		Rule:  sim.CR3,
		Start: sim.SyncStart,
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("round robin must complete on a line")
	}
	// Node i (pid i+1) transmits in round i+1; the message advances one hop
	// per round, so node k first receives in round k.
	for k := 1; k < n; k++ {
		if res.FirstReceive[k] != k {
			t.Errorf("FirstReceive[%d] = %d, want %d", k, res.FirstReceive[k], k)
		}
	}
	if res.Rounds != n-1 {
		t.Errorf("Rounds = %d, want %d", res.Rounds, n-1)
	}
}

func TestSourceHoldsMessageBeforeRound1(t *testing.T) {
	d := mustLine(t, 3)
	res, err := sim.Run(d, core.NewRoundRobin(), adversary.Benign{}, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstReceive[0] != 0 {
		t.Fatalf("source FirstReceive = %d, want 0", res.FirstReceive[0])
	}
}

// buildTriangleWithTwoSenders runs a 3-node classical triangle where pids 1
// and 2 both transmit in round 1 and returns the reception seen by each pid.
func buildTriangleWithTwoSenders(t *testing.T, rule sim.CollisionRule) map[int]sim.Reception {
	t.Helper()
	g := graph.NewGraph(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	d, err := graph.Classical(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	alg := newScriptAlg(map[int]map[int]bool{
		1: {1: true},
		2: {1: true},
	}, true)
	_, err = sim.Run(d, alg, adversary.Benign{}, sim.Config{
		Rule:      rule,
		Start:     sim.SyncStart,
		MaxRounds: 1,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := map[int]sim.Reception{}
	for pid, p := range alg.procs {
		out[pid] = p.recs[1]
	}
	return out
}

func TestCollisionRuleCR1(t *testing.T) {
	recs := buildTriangleWithTwoSenders(t, sim.CR1)
	// Everyone (including both senders) is reached by two messages: all ⊤.
	for pid := 1; pid <= 3; pid++ {
		if recs[pid].Kind != sim.Collision {
			t.Errorf("pid %d reception = %v, want ⊤", pid, recs[pid].Kind)
		}
	}
}

func TestCollisionRuleCR2(t *testing.T) {
	recs := buildTriangleWithTwoSenders(t, sim.CR2)
	// Senders hear their own message; the non-sender gets ⊤.
	for pid := 1; pid <= 2; pid++ {
		if recs[pid].Kind != sim.Delivered || !recs[pid].Own {
			t.Errorf("sender pid %d reception = %+v, want own message", pid, recs[pid])
		}
	}
	if recs[3].Kind != sim.Collision {
		t.Errorf("non-sender reception = %v, want ⊤", recs[3].Kind)
	}
}

func TestCollisionRuleCR3(t *testing.T) {
	recs := buildTriangleWithTwoSenders(t, sim.CR3)
	if recs[3].Kind != sim.Silence {
		t.Errorf("non-sender reception = %v, want ⊥", recs[3].Kind)
	}
}

func TestCollisionRuleCR4AdversaryChoice(t *testing.T) {
	// Benign resolves to silence; FullDelivery resolves to the first message.
	g := graph.NewGraph(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	d, err := graph.Classical(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		adv  sim.Adversary
		want sim.ReceptionKind
	}{
		{adversary.Benign{}, sim.Silence},
		{adversary.FullDelivery{}, sim.Delivered},
	} {
		alg := newScriptAlg(map[int]map[int]bool{1: {1: true}, 2: {1: true}}, true)
		if _, err := sim.Run(d, alg, tc.adv, sim.Config{
			Rule: sim.CR4, Start: sim.SyncStart, MaxRounds: 1, Seed: 1,
		}); err != nil {
			t.Fatal(err)
		}
		if got := alg.procs[3].recs[1].Kind; got != tc.want {
			t.Errorf("adversary %s: non-sender reception = %v, want %v", tc.adv.Name(), got, tc.want)
		}
	}
}

func TestSingleSenderDelivers(t *testing.T) {
	d := mustLine(t, 3)
	alg := newScriptAlg(map[int]map[int]bool{1: {1: true}}, false)
	res, err := sim.Run(d, alg, adversary.Benign{}, sim.Config{
		Rule: sim.CR4, Start: sim.SyncStart, MaxRounds: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := alg.procs[2].recs[1]
	if rec.Kind != sim.Delivered || rec.FromProc != 1 || !rec.Broadcast || rec.Own {
		t.Fatalf("neighbour reception = %+v, want broadcast message from pid 1", rec)
	}
	if res.FirstReceive[1] != 1 {
		t.Fatalf("FirstReceive[1] = %d, want 1", res.FirstReceive[1])
	}
	// Node 2 is out of range of the source: silence.
	if alg.procs[3].recs[1].Kind != sim.Silence {
		t.Fatalf("far node reception = %v, want ⊥", alg.procs[3].recs[1].Kind)
	}
}

func TestAsyncStartActivatesOnFirstMessage(t *testing.T) {
	d := mustLine(t, 3)
	alg := newScriptAlg(map[int]map[int]bool{1: {1: true}, 2: {2: true}}, false)
	if _, err := sim.Run(d, alg, adversary.Benign{}, sim.Config{
		Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: 3, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if alg.procs[2].started != 1 {
		t.Fatalf("pid 2 started in round %d, want 1", alg.procs[2].started)
	}
	if alg.procs[3].started != 2 {
		t.Fatalf("pid 3 started in round %d, want 2", alg.procs[3].started)
	}
}

func TestAsyncStartInactiveHearsNothing(t *testing.T) {
	d := mustLine(t, 3)
	// Nobody ever transmits; the non-source processes must never start.
	alg := newScriptAlg(map[int]map[int]bool{}, false)
	if _, err := sim.Run(d, alg, adversary.Benign{}, sim.Config{
		Rule: sim.CR4, Start: sim.AsyncStart, MaxRounds: 5, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if alg.procs[2].started != 0 || alg.procs[3].started != 0 {
		t.Fatal("inactive processes must not be started without a message")
	}
	if len(alg.procs[2].recs) != 0 {
		t.Fatal("inactive processes must not receive")
	}
}

func TestUnreliableEdgeOnlyDeliversWhenAdversaryAllows(t *testing.T) {
	// Two nodes joined only by an unreliable edge cannot form a valid dual
	// (unreachable), so use: 0-1 reliable, 0-2 via 1 reliable, plus 0-2
	// unreliable shortcut.
	g := graph.NewGraph(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	gp := g.Clone()
	gp.MustAddEdge(0, 2)
	d, err := graph.NewDual(g, gp, 0)
	if err != nil {
		t.Fatal(err)
	}
	alg := newScriptAlg(map[int]map[int]bool{1: {1: true}}, false)
	if _, err := sim.Run(d, alg, adversary.Benign{}, sim.Config{
		Rule: sim.CR4, Start: sim.SyncStart, MaxRounds: 1, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if alg.procs[3].recs[1].Kind != sim.Silence {
		t.Fatal("benign adversary must not deliver the unreliable shortcut")
	}

	alg = newScriptAlg(map[int]map[int]bool{1: {1: true}}, false)
	if _, err := sim.Run(d, alg, adversary.FullDelivery{}, sim.Config{
		Rule: sim.CR4, Start: sim.SyncStart, MaxRounds: 1, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if alg.procs[3].recs[1].Kind != sim.Delivered {
		t.Fatal("full-delivery adversary must deliver the unreliable shortcut")
	}
}

// badDeliveryAdversary delivers along a reliable edge through the map-based
// Deliver interface (it deliberately does not implement BufferedDeliverer,
// so it exercises the compatibility shim), which the engine must reject.
type badDeliveryAdversary struct{}

func (badDeliveryAdversary) Name() string { return "bad-delivery" }

func (badDeliveryAdversary) AssignProcs(d *graph.Dual, rng *rand.Rand) ([]int, error) {
	return adversary.Benign{}.AssignProcs(d, rng)
}

func (badDeliveryAdversary) Resolve(_ *sim.View, _ graph.NodeID, _ []graph.NodeID) graph.NodeID {
	return sim.NoDelivery
}

func (badDeliveryAdversary) Deliver(v *sim.View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	if len(senders) == 0 {
		return nil
	}
	s := senders[0]
	outs := v.Dual.ReliableOut(s)
	if len(outs) == 0 {
		return nil
	}
	return map[graph.NodeID][]graph.NodeID{s: {outs[0]}}
}

func TestEngineRejectsInvalidDelivery(t *testing.T) {
	d := mustLine(t, 3)
	alg := newScriptAlg(map[int]map[int]bool{1: {1: true}}, false)
	_, err := sim.Run(d, alg, badDeliveryAdversary{}, sim.Config{MaxRounds: 1, Seed: 1})
	if !errors.Is(err, sim.ErrBadDelivery) {
		t.Fatalf("want ErrBadDelivery, got %v", err)
	}
}

// badSinkAdversary pushes the same invalid delivery through the buffered
// fast path; the sink must reject it identically.
type badSinkAdversary struct{ badDeliveryAdversary }

func (badSinkAdversary) Name() string { return "bad-sink" }

func (badSinkAdversary) DeliverInto(v *sim.View, senders []graph.NodeID, sink *sim.DeliverySink) {
	if len(senders) == 0 {
		return
	}
	s := senders[0]
	if outs := v.Dual.ReliableOut(s); len(outs) > 0 {
		sink.Add(s, outs[0])
	}
}

func TestSinkRejectsInvalidDelivery(t *testing.T) {
	d := mustLine(t, 3)
	alg := newScriptAlg(map[int]map[int]bool{1: {1: true}}, false)
	_, err := sim.Run(d, alg, badSinkAdversary{}, sim.Config{MaxRounds: 1, Seed: 1})
	if !errors.Is(err, sim.ErrBadDelivery) {
		t.Fatalf("want ErrBadDelivery, got %v", err)
	}
}

// nonSenderDeliveryAdversary returns a map entry for a node that did not
// transmit, which the shim must reject.
type nonSenderDeliveryAdversary struct{ badDeliveryAdversary }

func (nonSenderDeliveryAdversary) Name() string { return "non-sender-delivery" }

func (nonSenderDeliveryAdversary) Deliver(v *sim.View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID {
	if len(senders) == 0 {
		return nil
	}
	for node := 0; node < v.Dual.N(); node++ {
		if !v.Sent[node] {
			return map[graph.NodeID][]graph.NodeID{graph.NodeID(node): nil}
		}
	}
	return nil
}

func TestEngineRejectsNonSenderDelivery(t *testing.T) {
	d := mustLine(t, 3)
	alg := newScriptAlg(map[int]map[int]bool{1: {1: true}}, false)
	_, err := sim.Run(d, alg, nonSenderDeliveryAdversary{}, sim.Config{MaxRounds: 1, Seed: 1})
	if !errors.Is(err, sim.ErrBadDelivery) {
		t.Fatalf("want ErrBadDelivery, got %v", err)
	}
}

// badAssignAdversary returns a non-permutation assignment.
type badAssignAdversary struct{ adversary.Benign }

func (badAssignAdversary) Name() string { return "bad-assign" }

func (badAssignAdversary) AssignProcs(d *graph.Dual, _ *rand.Rand) ([]int, error) {
	procOf := make([]int, d.N())
	for i := range procOf {
		procOf[i] = 1
	}
	return procOf, nil
}

func TestEngineRejectsInvalidAssignment(t *testing.T) {
	d := mustLine(t, 3)
	_, err := sim.Run(d, core.NewRoundRobin(), badAssignAdversary{}, sim.Config{Seed: 1})
	if !errors.Is(err, sim.ErrBadAssignment) {
		t.Fatalf("want ErrBadAssignment, got %v", err)
	}
}

// badResolveAdversary resolves CR4 to a node that is not reaching.
type badResolveAdversary struct{ adversary.FullDelivery }

func (badResolveAdversary) Name() string { return "bad-resolve" }

func (badResolveAdversary) Resolve(v *sim.View, node graph.NodeID, reaching []graph.NodeID) graph.NodeID {
	return node // a node never reaches itself as a non-sender
}

func TestEngineRejectsInvalidResolve(t *testing.T) {
	g := graph.NewGraph(3, false)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	d, err := graph.Classical(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	alg := newScriptAlg(map[int]map[int]bool{1: {1: true}, 2: {1: true}}, true)
	_, err = sim.Run(d, alg, badResolveAdversary{}, sim.Config{
		Rule: sim.CR4, Start: sim.SyncStart, MaxRounds: 1, Seed: 1,
	})
	if !errors.Is(err, sim.ErrBadResolve) {
		t.Fatalf("want ErrBadResolve, got %v", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d, err := graph.RandomDual(24, 0.15, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(24, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *sim.Result {
		adv, err := adversary.NewRandom(0.5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(d, alg, adv, sim.Config{Seed: 12345, RecordSenders: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.Transmissions != b.Transmissions {
		t.Fatalf("same seed produced different results: %d/%d vs %d/%d",
			a.Rounds, a.Transmissions, b.Rounds, b.Transmissions)
	}
	if !reflect.DeepEqual(a.SendersByRound, b.SendersByRound) {
		t.Fatal("same seed produced different transcripts")
	}
	if !reflect.DeepEqual(a.FirstReceive, b.FirstReceive) {
		t.Fatal("same seed produced different first-receive rounds")
	}
}

func TestRecordSendersTranscript(t *testing.T) {
	d := mustLine(t, 4)
	res, err := sim.Run(d, core.NewRoundRobin(), adversary.Benign{}, sim.Config{
		Rule: sim.CR3, Start: sim.SyncStart, Seed: 1, RecordSenders: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SendersByRound) < res.Rounds {
		t.Fatalf("transcript has %d rounds, want >= %d", len(res.SendersByRound), res.Rounds)
	}
	if len(res.SendersByRound[0]) != 1 || res.SendersByRound[0][0] != 1 {
		t.Fatalf("round 1 senders = %v, want [1]", res.SendersByRound[0])
	}
}

func TestRunToMaxRounds(t *testing.T) {
	d := mustLine(t, 3)
	res, err := sim.Run(d, core.NewRoundRobin(), adversary.Benign{}, sim.Config{
		Rule: sim.CR3, Start: sim.SyncStart, Seed: 1,
		MaxRounds: 20, RunToMaxRounds: true, RecordSenders: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 20 {
		t.Fatalf("Rounds = %d, want 20 (run to cap)", res.Rounds)
	}
	if !res.Completed {
		t.Fatal("broadcast must still be detected as complete")
	}
}

func TestIncompleteRunReported(t *testing.T) {
	// A network where the only route to node 2 is via node 1, but pid 2
	// never transmits: broadcast cannot complete.
	d := mustLine(t, 3)
	alg := newScriptAlg(map[int]map[int]bool{1: {1: true}}, false)
	res, err := sim.Run(d, alg, adversary.Benign{}, sim.Config{MaxRounds: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("broadcast must not complete")
	}
	if res.FirstReceive[2] != -1 {
		t.Fatalf("unreached node FirstReceive = %d, want -1", res.FirstReceive[2])
	}
}

func TestCollisionRuleStrings(t *testing.T) {
	cases := map[sim.CollisionRule]string{
		sim.CR1: "CR1", sim.CR2: "CR2", sim.CR3: "CR3", sim.CR4: "CR4",
	}
	for rule, want := range cases {
		if rule.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(rule), rule.String(), want)
		}
	}
	if sim.SyncStart.String() != "sync" || sim.AsyncStart.String() != "async" {
		t.Error("start rule strings wrong")
	}
}

func TestBenignEqualsClassicalStaticModel(t *testing.T) {
	// On a classical network the benign and full-delivery adversaries give
	// identical executions: there are no unreliable edges to control.
	d, err := graph.BinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := sim.Run(d, core.NewRoundRobin(), adversary.Benign{}, sim.Config{
		Rule: sim.CR3, Start: sim.SyncStart, Seed: 7, RecordSenders: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := sim.Run(d, core.NewRoundRobin(), adversary.FullDelivery{}, sim.Config{
		Rule: sim.CR3, Start: sim.SyncStart, Seed: 7, RecordSenders: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA.SendersByRound, resB.SendersByRound) ||
		!reflect.DeepEqual(resA.FirstReceive, resB.FirstReceive) {
		t.Fatal("classical network must be adversary-independent")
	}
}

package sim_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// probeSchedule alternates between two fixed networks and records which
// epochs the simulator requested, so tests can pin the swap cadence.
type probeSchedule struct {
	a, b     *graph.Dual
	epochLen int
	requests []int
	seeds    []int64
	failAt   int // epoch index that errors; -1 for never
}

func newProbe(a, b *graph.Dual, epochLen int) *probeSchedule {
	return &probeSchedule{a: a, b: b, epochLen: epochLen, failAt: -1}
}

func (s *probeSchedule) N() int           { return s.a.N() }
func (s *probeSchedule) EpochLength() int { return s.epochLen }

func (s *probeSchedule) Epoch(e int, runSeed int64) (*graph.Dual, error) {
	s.requests = append(s.requests, e)
	s.seeds = append(s.seeds, runSeed)
	if e == s.failAt {
		return nil, fmt.Errorf("probe schedule failure at epoch %d", e)
	}
	if e%2 == 0 {
		return s.a, nil
	}
	return s.b, nil
}

// TestRunDynamicMatchesStaticRun: RunDynamic over graph.Static is the same
// code path as Run — the results must be deeply equal.
func TestRunDynamicMatchesStaticRun(t *testing.T) {
	d, err := graph.CliqueBridge(17)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(17, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Seed: 5, Rule: sim.CR4, Start: sim.AsyncStart}
	want, err := sim.Run(d, alg, adversary.GreedyCollider{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.RunDynamic(graph.Static(d), alg, adversary.GreedyCollider{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunDynamic(Static(d)) differs from Run(d)")
	}
}

// TestEpochSwapCadence pins the epoch lifecycle: epoch 0 starts the run and
// epoch e is requested exactly at round e·L+1, always with the run's seed.
func TestEpochSwapCadence(t *testing.T) {
	line := mustLine(t, 8)
	complete, err := graph.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	s := newProbe(line, complete, 3)
	cfg := sim.Config{Seed: 9, Rule: sim.CR3, Start: sim.SyncStart, MaxRounds: 10, RunToMaxRounds: true}
	if _, err := sim.RunDynamic(s, core.NewRoundRobin(), adversary.Benign{}, cfg); err != nil {
		t.Fatal(err)
	}
	// Rounds 1-3 run epoch 0, 4-6 epoch 1, 7-9 epoch 2, 10 epoch 3.
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(s.requests, want) {
		t.Fatalf("epoch requests = %v, want %v", s.requests, want)
	}
	for i, seed := range s.seeds {
		if seed != cfg.Seed {
			t.Fatalf("request %d passed seed %d, want the run seed %d", i, seed, cfg.Seed)
		}
	}
}

// TestDynamicRunDeterminism: the same dynamic run twice is deeply equal —
// epoch randomness is a pure function of (epoch, run seed).
func TestDynamicRunDeterminism(t *testing.T) {
	base, err := graph.RandomDual(20, 0.25, 0.4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := graph.NewChurn(base, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(20, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Seed: 12}
	first, err := sim.RunDynamic(sched, alg, adversary.GreedyCollider{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sim.RunDynamic(sched, alg, adversary.GreedyCollider{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("dynamic run is not deterministic in its seed")
	}
	if !first.Completed {
		t.Fatal("dynamic broadcast did not complete")
	}
}

// TestEpochSwapAcrossGrowingFringe runs a schedule that alternates between a
// fringeless line and a complete G' every epoch, with full unreliable
// delivery — the heaviest possible cross-swap buffer traffic. Completion and
// determinism prove the swap path remaps cleanly; an aliasing or stale-
// capacity bug would corrupt receptions (CR1 collisions differ) or panic.
func TestEpochSwapAcrossGrowingFringe(t *testing.T) {
	n := 10
	line := mustLine(t, n)
	dense, err := func() (*graph.Dual, error) {
		g := graph.NewBuilder(n, false)
		for u := 0; u+1 < n; u++ {
			g.MustAddEdge(graph.NodeID(u), graph.NodeID(u+1))
		}
		gp := graph.NewBuilder(n, false)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				gp.MustAddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
		return graph.NewDual(g, gp, 0)
	}()
	if err != nil {
		t.Fatal(err)
	}
	s := newProbe(line, dense, 2)
	cfg := sim.Config{Seed: 4, Rule: sim.CR3, Start: sim.SyncStart, MaxRounds: 200}
	first, err := sim.RunDynamic(s, core.NewRoundRobin(), adversary.FullDelivery{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newProbe(line, dense, 2)
	second, err := sim.RunDynamic(s2, core.NewRoundRobin(), adversary.FullDelivery{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cross-fringe dynamic run is not deterministic")
	}
	if !first.Completed {
		t.Fatalf("broadcast did not complete across epoch swaps: %+v", first)
	}
}

// TestEpochErrorSurfaces: a failing epoch build aborts the run with the
// epoch index in the error.
func TestEpochErrorSurfaces(t *testing.T) {
	line := mustLine(t, 6)
	s := newProbe(line, line, 2)
	s.failAt = 1
	cfg := sim.Config{Seed: 1, Rule: sim.CR3, Start: sim.SyncStart, MaxRounds: 20, RunToMaxRounds: true}
	_, err := sim.RunDynamic(s, core.NewRoundRobin(), adversary.Benign{}, cfg)
	if err == nil || !strings.Contains(err.Error(), "schedule epoch 1") {
		t.Fatalf("err = %v, want a schedule epoch 1 failure", err)
	}
}

// TestEpochNodeCountMismatchRejected: an epoch with a different node count
// is a schedule bug and must fail with ErrBadEpoch, not corrupt state.
func TestEpochNodeCountMismatchRejected(t *testing.T) {
	small := mustLine(t, 6)
	bigger := mustLine(t, 7)
	s := newProbe(small, bigger, 2)
	cfg := sim.Config{Seed: 1, Rule: sim.CR3, Start: sim.SyncStart, MaxRounds: 20, RunToMaxRounds: true}
	_, err := sim.RunDynamic(s, core.NewRoundRobin(), adversary.Benign{}, cfg)
	if !errors.Is(err, sim.ErrBadEpoch) {
		t.Fatalf("err = %v, want ErrBadEpoch", err)
	}
}

// TestEpochSourceDriftRejected: an epoch that moves the source would leave
// the run's holder tracking pinned to the old source while adversaries see
// the new one; it must fail with ErrBadEpoch instead.
func TestEpochSourceDriftRejected(t *testing.T) {
	a := mustLine(t, 6)
	g := graph.NewBuilder(6, false)
	for u := 0; u+1 < 6; u++ {
		g.MustAddEdge(graph.NodeID(u), graph.NodeID(u+1))
	}
	moved, err := graph.NewDual(g, g.Clone(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s := newProbe(a, moved, 2)
	cfg := sim.Config{Seed: 1, Rule: sim.CR3, Start: sim.SyncStart, MaxRounds: 20, RunToMaxRounds: true}
	_, err = sim.RunDynamic(s, core.NewRoundRobin(), adversary.Benign{}, cfg)
	if !errors.Is(err, sim.ErrBadEpoch) {
		t.Fatalf("err = %v, want ErrBadEpoch for source drift", err)
	}
}

package sim_test

import (
	"math/rand"
	"runtime"
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// TestRoundLoopAllocationFreeSteadyState guards the allocation-free delivery
// path: executing 40x more rounds must not cost meaningfully more heap
// allocations, because per-round state lives in preallocated run buffers.
// Only run setup (processes, buffers, result) may allocate.
func TestRoundLoopAllocationFreeSteadyState(t *testing.T) {
	d, err := graph.CliqueBridge(33)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewUniform(0.3)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(5, func() {
			res, err := sim.Run(d, alg, adversary.GreedyCollider{}, sim.Config{
				Rule:           sim.CR4,
				Start:          sim.SyncStart,
				Seed:           7,
				MaxRounds:      rounds,
				RunToMaxRounds: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			_ = res
		})
	}
	short := measure(2000)
	long := measure(8000)
	// The reaching lists grow to their steady-state capacity during early
	// rounds; beyond that the round loop must not allocate. Allow a small
	// slack for stragglers and runtime noise — the old map-based path cost
	// several allocations per round, which over 6000 extra rounds would blow
	// far past this bound.
	if long > short+64 {
		t.Fatalf("round loop allocates per round: %0.f allocs at 2000 rounds vs %0.f at 8000", short, long)
	}
}

// TestLargeScaleRoundLoopAllocationFree is the 100k-node stress path: a
// geometric dual with ~2.7M arcs must build via the cell-bucketed generator
// and run a 1000-round CR3 broadcast whose steady-state round loop does not
// allocate. Skipped under -short (it takes ~20s); the full CI test lane
// runs it.
func TestLargeScaleRoundLoopAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node stress sim skipped in -short mode")
	}
	const n = 100_000
	d, err := graph.Geometric(n, 0.004, 0.009, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != n {
		t.Fatalf("n = %d", d.N())
	}
	alg, err := core.NewUniform(0.05)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewRandom(0.3)
	if err != nil {
		t.Fatal(err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	measure := func(rounds int) (*sim.Result, uint64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		res, err := sim.Run(d, alg, adv, sim.Config{
			Rule:           sim.CR3,
			Start:          sim.AsyncStart,
			Seed:           7,
			MaxRounds:      rounds,
			RunToMaxRounds: true,
		})
		runtime.ReadMemStats(&after)
		if err != nil {
			t.Fatal(err)
		}
		return res, after.Mallocs - before.Mallocs
	}
	// Both runs pay the identical setup (processes, run buffers) and the
	// reaching lists reach steady-state capacity well before round 300, so
	// the malloc difference isolates the per-round cost of 700 extra rounds.
	_, baseAllocs := measure(300)
	res, fullAllocs := measure(1000)
	if !res.Completed {
		t.Fatalf("broadcast did not cover all %d nodes within 1000 rounds", n)
	}
	extra := int64(fullAllocs) - int64(baseAllocs)
	if extra > 700 { // < 1 allocation per extra round on average
		t.Fatalf("steady-state rounds allocate: %d extra mallocs over 700 rounds", extra)
	}
}

// TestLargeScaleDynamicAllocationBounded extends the 100k-node stress path
// to dynamic schedules: under churn and fade the steady-state rounds must
// stay allocation-free and only epoch boundaries may allocate, bounded by a
// fixed per-swap budget (the incremental epoch patch allocates a handful of
// arrays per epoch — down/dirty masks, patched CSR cores, the fringe — never
// anything proportional to the round count). Skipped under -short with the
// static stress test; the full CI test lane runs it.
func TestLargeScaleDynamicAllocationBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node dynamic stress sim skipped in -short mode")
	}
	const (
		n        = 100_000
		epochLen = 50
		// Per-swap allocation budget: the incremental churn epoch costs ~12
		// graph-side allocations (masks, two patched cores, fringe, dual)
		// plus the simulator's in-degree re-scan; fade slightly fewer. A full
		// Builder→Freeze rebuild costs hundreds per epoch at this scale.
		perEpochBudget = 48
	)
	d, err := graph.Geometric(n, 0.004, 0.009, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	alg, err := core.NewUniform(0.05)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := adversary.NewRandom(0.3)
	if err != nil {
		t.Fatal(err)
	}
	schedules := map[string]graph.Schedule{}
	if churn, err := graph.NewChurn(d, epochLen, 0.0001); err != nil {
		t.Fatal(err)
	} else {
		schedules["churn"] = churn
	}
	if fade, err := graph.NewFade(d, epochLen, 0.00002); err != nil {
		t.Fatal(err)
	} else {
		schedules["fade"] = fade
	}
	for name, sched := range schedules {
		t.Run(name, func(t *testing.T) {
			measure := func(rounds int) uint64 {
				var before, after runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&before)
				_, err := sim.RunDynamic(sched, alg, adv, sim.Config{
					Rule:           sim.CR3,
					Start:          sim.AsyncStart,
					Seed:           7,
					MaxRounds:      rounds,
					RunToMaxRounds: true,
				})
				runtime.ReadMemStats(&after)
				if err != nil {
					t.Fatal(err)
				}
				return after.Mallocs - before.Mallocs
			}
			// Both runs pay identical setup; the difference isolates 400
			// extra rounds containing 8 extra epoch swaps.
			baseAllocs := measure(200)
			fullAllocs := measure(600)
			extra := int64(fullAllocs) - int64(baseAllocs)
			extraEpochs := int64((600 - 200) / epochLen)
			budget := extraEpochs*perEpochBudget + 100
			if extra > budget {
				t.Fatalf("%s: %d extra mallocs over 400 rounds / %d epochs (budget %d): epoch swaps are not allocation-bounded",
					name, extra, extraEpochs, budget)
			}
		})
	}
}

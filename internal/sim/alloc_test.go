package sim_test

import (
	"testing"

	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/graph"
	"dualgraph/internal/sim"
)

// TestRoundLoopAllocationFreeSteadyState guards the allocation-free delivery
// path: executing 40x more rounds must not cost meaningfully more heap
// allocations, because per-round state lives in preallocated run buffers.
// Only run setup (processes, buffers, result) may allocate.
func TestRoundLoopAllocationFreeSteadyState(t *testing.T) {
	d, err := graph.CliqueBridge(33)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := core.NewUniform(0.3)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(5, func() {
			res, err := sim.Run(d, alg, adversary.GreedyCollider{}, sim.Config{
				Rule:           sim.CR4,
				Start:          sim.SyncStart,
				Seed:           7,
				MaxRounds:      rounds,
				RunToMaxRounds: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			_ = res
		})
	}
	short := measure(2000)
	long := measure(8000)
	// The reaching lists grow to their steady-state capacity during early
	// rounds; beyond that the round loop must not allocate. Allow a small
	// slack for stragglers and runtime noise — the old map-based path cost
	// several allocations per round, which over 6000 extra rounds would blow
	// far past this bound.
	if long > short+64 {
		t.Fatalf("round loop allocates per round: %0.f allocs at 2000 rounds vs %0.f at 8000", short, long)
	}
}

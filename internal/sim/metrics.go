// Simulator instrumentation: epoch-swap counts, recorded only at epoch
// boundaries (every EpochLength rounds), never inside the per-round
// delivery loop — the static fast path contains no metrics code at all, so
// BenchmarkSimRoundLoop's hot path is untouched. Gated on
// metrics.Enabled() and observe-only: counts never feed back into the run.
package sim

import "dualgraph/internal/metrics"

var (
	mEpochSwaps = metrics.NewCounter("sim_epoch_swaps_total",
		"Epoch boundaries where the schedule installed a different network.")
	mEpochSwapsNoop = metrics.NewCounter("sim_epoch_swaps_noop_total",
		"Epoch boundaries where the schedule returned the same network pointer (no swap work).")
)

// Package sim implements the synchronous round-based execution model of the
// dual graph paper (Section 2.1): in each round every active process decides
// whether to transmit; a transmitted message reaches all reliable
// out-neighbours, an adversary-chosen subset of unreliable out-neighbours,
// and the sender itself; receptions are then computed under one of the four
// collision rules CR1-CR4 with synchronous or asynchronous starts.
//
// Runs execute on a fixed network (Run) or on an epoch-scheduled
// time-varying one (RunDynamic): every graph.Schedule epoch boundary swaps
// the frozen network under the live processes while algorithm, adversary,
// and per-node result state survive, and the preallocated delivery buffers
// resize lazily. Both paths share one loop — Run is RunDynamic over a
// static schedule — so the static hot path is exactly what it always was.
package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"

	"dualgraph/internal/graph"
	"dualgraph/internal/metrics"
)

// CollisionRule selects one of the paper's collision rules, in decreasing
// order of strength from the algorithm's point of view.
type CollisionRule int

// The four collision rules of Section 2.1.
const (
	// CR1: any process reached by two or more messages (including its own)
	// receives collision notification ⊤.
	CR1 CollisionRule = iota + 1
	// CR2: a sender always receives its own message; a non-sender reached by
	// two or more messages receives ⊤.
	CR2
	// CR3: a sender always receives its own message; a non-sender reached by
	// two or more messages hears silence ⊥ (no collision detection).
	CR3
	// CR4: a sender always receives its own message; for a non-sender
	// reached by two or more messages the adversary chooses between ⊥ and
	// one of the reaching messages (the weakest rule).
	CR4
)

// String implements fmt.Stringer.
func (c CollisionRule) String() string {
	switch c {
	case CR1:
		return "CR1"
	case CR2:
		return "CR2"
	case CR3:
		return "CR3"
	case CR4:
		return "CR4"
	}
	return fmt.Sprintf("CollisionRule(%d)", int(c))
}

// StartRule selects when processes begin executing.
type StartRule int

// Start rules of Section 2.1.
const (
	// SyncStart activates every process in round 1.
	SyncStart StartRule = iota + 1
	// AsyncStart activates a process the first time a message is delivered
	// to it (the source is active from round 1).
	AsyncStart
)

// String implements fmt.Stringer.
func (s StartRule) String() string {
	switch s {
	case SyncStart:
		return "sync"
	case AsyncStart:
		return "async"
	}
	return fmt.Sprintf("StartRule(%d)", int(s))
}

// ReceptionKind classifies what a process hears in a round.
type ReceptionKind int

// Reception kinds.
const (
	// Silence is ⊥: no message was heard.
	Silence ReceptionKind = iota + 1
	// Delivered means exactly one message was received.
	Delivered
	// Collision is ⊤: collision notification.
	Collision
)

// String implements fmt.Stringer.
func (k ReceptionKind) String() string {
	switch k {
	case Silence:
		return "⊥"
	case Delivered:
		return "msg"
	case Collision:
		return "⊤"
	}
	return fmt.Sprintf("ReceptionKind(%d)", int(k))
}

// Reception describes the outcome of a round for one process.
type Reception struct {
	// Kind is silence, a delivered message, or collision notification.
	Kind ReceptionKind
	// From is the sending node when Kind == Delivered.
	From graph.NodeID
	// FromProc is the sender's process identifier when Kind == Delivered.
	FromProc int
	// Broadcast reports whether the delivered message carries the broadcast
	// payload (the sender held the message when transmitting).
	Broadcast bool
	// Own reports whether the delivered message is the receiver's own.
	Own bool
}

// Process is one automaton of an algorithm. The engine calls Start exactly
// once when the process becomes active, then in every subsequent round first
// Decide and then Receive. Round numbers are global (the paper justifies a
// global round counter by having the source label messages with its local
// counter; see Section 5, footnote 1).
type Process interface {
	// Start activates the process at the given round. hasMessage is true
	// only for the source process, which holds the broadcast message before
	// round 1.
	Start(round int, hasMessage bool)
	// Decide reports whether the process transmits in this round.
	Decide(round int) bool
	// Receive delivers the round's reception outcome.
	Receive(round int, r Reception)
}

// Algorithm creates the processes of a broadcast algorithm.
type Algorithm interface {
	// Name returns a short identifier for reports.
	Name() string
	// NewProcess creates the process with identifier id (1..n) for an
	// n-node network. rng is the process's private randomness source;
	// deterministic algorithms must not use it.
	NewProcess(id, n int, rng *rand.Rand) Process
}

// View is the read-only information the engine exposes to the adversary when
// it makes a choice. Slices are owned by the engine and must not be mutated.
type View struct {
	// Round is the current round (1-based).
	Round int
	// Dual is the network.
	Dual *graph.Dual
	// ProcOf maps node -> process identifier.
	ProcOf []int
	// HasMessage reports, per node, whether it held the broadcast message at
	// the start of the round.
	HasMessage []bool
	// Active reports, per node, whether the process is active.
	Active []bool
	// Sent reports, per node, whether it transmits this round.
	Sent []bool
	// Rng is the adversary's private randomness source, seeded from
	// Config.Seed for reproducibility.
	Rng *rand.Rand
}

// NoDelivery is returned by Adversary.Resolve to indicate silence under CR4.
const NoDelivery graph.NodeID = -1

// Adversary controls the three nondeterministic choices of the model: the
// process-to-node assignment, which unreliable edges deliver each round, and
// CR4 collision resolution.
type Adversary interface {
	// Name returns a short identifier for reports.
	Name() string
	// AssignProcs returns the proc mapping as a slice procOf with
	// procOf[node] = process id; it must be a permutation of 1..n.
	AssignProcs(d *graph.Dual, rng *rand.Rand) ([]int, error)
	// Deliver returns, for each sending node, the subset of its unreliable
	// out-neighbours its message reaches this round. Nodes absent from the
	// map get no unreliable deliveries. Every returned neighbour must be an
	// unreliable out-neighbour of the sender.
	//
	// Deliver is the compatibility entry point; the engine calls it only for
	// adversaries that do not implement BufferedDeliverer, and applies the
	// returned map in deterministic sender order.
	Deliver(v *View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID
	// Resolve picks the CR4 outcome for a non-sending node reached by two or
	// more messages: NoDelivery for ⊥ or one of the reaching sender nodes.
	Resolve(v *View, node graph.NodeID, reaching []graph.NodeID) graph.NodeID
}

// RunForker is the per-run instantiation hook for stateful adversaries. The
// engine shares one Adversary value across every (possibly concurrent) trial
// of a sweep, which forces implementations to be stateless; an adversary
// that needs per-run state — search memos, a script of its own past choices —
// implements RunForker, and RunDynamic replaces it with the forked instance
// for the duration of that run. ForkRun is called once per run, after config
// defaults are applied and before AssignProcs; it must not mutate the
// receiver (concurrent trials fork concurrently). The returned adversary is
// used as-is: it is not forked again, so a fork returning its receiver must
// be safe for that run.
type RunForker interface {
	// ForkRun returns the adversary instance this run will use, built
	// against the run's schedule, algorithm, and effective (defaulted)
	// config.
	ForkRun(sched graph.Schedule, alg Algorithm, cfg Config) (Adversary, error)
}

// BufferedDeliverer is the allocation-free delivery fast path: instead of
// returning a freshly allocated map every round, the adversary pushes each
// unreliable delivery into the engine-owned DeliverySink. Run prefers this
// interface when an adversary implements it; every built-in adversary does
// except Benign, which stays map-only on purpose (it delivers nothing, so
// the shim is already free, and it is the adversary most commonly embedded
// by wrappers that override Deliver). Third-party adversaries that only
// implement Adversary keep working through a shim around Deliver.
//
// Caveat for wrappers: embedding a built-in adversary inherits its
// DeliverInto, so overriding Deliver alone will not change the deliveries —
// override DeliverInto as well (or build on a plain Adversary).
type BufferedDeliverer interface {
	// DeliverInto records this round's unreliable deliveries via sink.Add.
	// The same validity rules as Deliver apply: only senders may deliver,
	// and only along edges of G' \ G.
	DeliverInto(v *View, senders []graph.NodeID, sink *DeliverySink)
}

// DeliverySink collects one round's unreliable deliveries into the run's
// preallocated reachability buffers. It validates every delivery exactly
// like the map path and latches the first error.
//
// At DeliverInto time the sink's reach state holds exactly the round's
// reliable deliveries (the reliable pass runs first), so Reached, Collided
// and EachReachedOnce let an adversary read the reliable reception picture
// word-parallel instead of recounting it edge by edge; each Add folds its
// delivery into that state immediately.
type DeliverySink struct {
	d            *graph.Dual
	sent         []bool
	buf          *runBuffers
	err          error
	scratchInts  []int
	scratchNodes []graph.NodeID
}

// Add records that sender s's message reaches v along the unreliable edge
// (s, v) this round. Invalid deliveries (s did not send, or (s, v) is not an
// edge of G' \ G) turn the run into an ErrBadDelivery failure. Membership is
// validated in O(log d) against the dual's unreliable fringe index.
func (ds *DeliverySink) Add(s, v graph.NodeID) {
	if ds.err != nil {
		return
	}
	if !ds.sent[s] {
		ds.err = fmt.Errorf("%w: node %d did not send", ErrBadDelivery, s)
		return
	}
	if !ds.d.HasUnreliableEdge(s, v) {
		ds.err = fmt.Errorf("%w: (%d,%d)", ErrBadDelivery, s, v)
		return
	}
	ds.buf.addUnrel(v, s)
}

// Reached reports whether at least one message (reliable, or already added
// unreliable) reaches v this round.
func (ds *DeliverySink) Reached(v graph.NodeID) bool { return ds.buf.reached(v) }

// Collided reports whether two or more messages reach v this round.
func (ds *DeliverySink) Collided(v graph.NodeID) bool { return ds.buf.collided(v) }

// EachReachedOnce calls yield for every node v currently reached by exactly
// one message, in ascending node order, with s the sender of that message;
// it stops early when yield returns false. The singleton set is computed
// word-parallel from the reach bitsets (O(n/64) plus the yields), which is
// what replaced the per-edge recount that jamming adversaries used to do.
//
// Deliveries Added during the iteration take effect immediately on the
// queried state but never change which nodes the current sweep yields: the
// per-word singleton mask is latched before its bits are walked, and an Add
// targets only one node's reach row.
func (ds *DeliverySink) EachReachedOnce(yield func(v, s graph.NodeID) bool) {
	b := ds.buf
	for w := range b.reach1 {
		m := b.reach1[w] &^ b.reach2[w]
		for m != 0 {
			v := graph.NodeID(w<<6 + bits.TrailingZeros64(m))
			m &= m - 1
			if !yield(v, b.singleReacher(v)) {
				return
			}
		}
	}
}

// AddEdgeID records a delivery along the unreliable arc with the given
// dense edge id (see graph.Dual.UnreliableEdges). It is the fastest sink
// entry point: the arc is resolved by direct index, so the only check left
// is that its source actually transmitted this round.
func (ds *DeliverySink) AddEdgeID(id graph.EdgeID) {
	if ds.err != nil {
		return
	}
	if id < 0 || int(id) >= ds.d.NumUnreliable() {
		ds.err = fmt.Errorf("%w: edge id %d outside [0,%d)", ErrBadDelivery, id, ds.d.NumUnreliable())
		return
	}
	s, v := ds.d.UnreliableEdge(id)
	if !ds.sent[s] {
		ds.err = fmt.Errorf("%w: node %d did not send", ErrBadDelivery, s)
		return
	}
	ds.buf.addUnrel(v, s)
}

// Fail latches err as this round's delivery failure, aborting the run with
// it. It is the typed failure path for adversaries whose DeliverInto can
// fail internally (a planning adversary exceeding a search cap, say) —
// without it they could only signal by delivering something invalid. The
// first latched error wins, matching the sink's own validation; a nil err is
// ignored.
func (ds *DeliverySink) Fail(err error) {
	if ds.err == nil && err != nil {
		ds.err = err
	}
}

// Scratch returns two zeroed n-length scratch slices that an adversary may
// use freely within a single DeliverInto call; their contents do not survive
// the call.
func (ds *DeliverySink) Scratch() ([]int, []graph.NodeID) {
	for i := range ds.scratchInts {
		ds.scratchInts[i] = 0
		ds.scratchNodes[i] = 0
	}
	return ds.scratchInts, ds.scratchNodes
}

// addFromMap is the compatibility shim for map-based Deliver
// implementations. Map iteration order is randomized in Go, so it validates
// the keys first and then applies deliveries in deterministic sender order —
// the schedule of a run must never depend on map iteration.
func (ds *DeliverySink) addFromMap(m map[graph.NodeID][]graph.NodeID, senders []graph.NodeID) {
	if len(m) == 0 {
		return
	}
	// Report the lowest offending node id so the error, too, is independent
	// of map iteration order.
	bad := graph.NodeID(-1)
	for s := range m {
		if !ds.sent[s] && (bad < 0 || s < bad) {
			bad = s
		}
	}
	if bad >= 0 {
		ds.err = fmt.Errorf("%w: node %d did not send", ErrBadDelivery, bad)
		return
	}
	for _, s := range senders {
		for _, v := range m[s] {
			ds.Add(s, v)
		}
	}
}

// Dense-mode admission: per-node delivery masks cost n²/8 bytes per
// direction, so the mode is reserved for networks that are both small
// (denseMaxN caps the quadratic memory at 2 MiB per mask set) and dense
// enough that one row of mask words carries more arcs than the word loop
// costs (arcs ≥ n²/denseArcFactor, i.e. ≥ 2 arcs per 64-bit mask word).
const (
	denseMaxN      = 4096
	denseArcFactor = 32
)

// runBuffers is the preallocated per-run state of the delivery hot path.
//
// The reaching relation of a round is held as two word-parallel bitsets
// instead of per-node sender lists: reach1 marks nodes reached by at least
// one message, reach2 nodes reached by two or more (always reach2 ⊆ reach1).
// Those two bits are everything CR1–CR3 ever ask — silence / delivered /
// collision is a count class, not a sender list — so the per-edge list
// appends of the old hot path are gone. The full reaching list of a node is
// materialized lazily, only where someone actually inspects senders: the
// CR4 resolve call on a collided non-sender, or an adversary walking the
// sink. Unreliable deliveries are the one part that stays explicit
// (adversaries choose them one by one), recorded per node in unrel rows
// carved from a flat backing sized by G' in-degree.
//
// Two modes, chosen once per run from the epoch-0 reliable graph:
//
//   - dense (small, dense networks): every node has a precomputed delivery
//     mask — its reliable out-row plus itself as a bit row — and a sender's
//     whole delivery is OR-ed into reach1/reach2 a word at a time, turning
//     ~deg(s) list appends into row/64 word ops. The transposed masks
//     (inMask) recover single reachers and CR4 lists from sentBit by bit
//     iteration. Reset is a memclr of n/64-word arrays.
//   - sparse (everything else): deliveries stay per-edge but touch only the
//     two bitsets plus firstFrom (the node's first reacher, which is the
//     whole answer for singleton receptions); reset clears only the words
//     the round made nonzero (touchedW). CR4 lists are rebuilt from the
//     reliable in-adjacency (inRows) filtered by sent.
//
// All buffers are allocated once per run; the steady-state round loop
// performs no heap allocation in either mode.
type runBuffers struct {
	n      int
	reach1 []uint64 // nodes reached by ≥1 message this round
	reach2 []uint64 // nodes reached by ≥2 messages this round

	// Sparse-mode round state.
	touchedW  []int32        // words of reach1 made nonzero this round
	firstFrom []graph.NodeID // first sender reaching v (valid while reach1 bit set)

	// Unreliable deliveries per node, in sink-add order; rows carved from
	// unrelBacking, sized by G' in-degree (every unreliable arc is a G' arc,
	// so the bound survives every epoch that shares or shrinks G').
	unrel        [][]graph.NodeID
	unrelTouched []graph.NodeID

	senders    []graph.NodeID
	newHolders []graph.NodeID
	mat        []graph.NodeID // lazy reaching-list scratch, reused per resolve
	// Dense-mode memo of the last materialized row: matKey holds the masked
	// in-row the current mat was extracted from. Dense networks resolve many
	// nodes with identical reaching sets per round (every non-sender of a
	// clique sees the same senders), so a word compare often replaces the
	// whole bit extraction. Valid only within a round for unrel-free rows.
	matKey   []uint64
	matValid bool

	// Dense mode.
	dense   bool
	maskW   int          // words per mask row: (n+63)/64
	outMask []uint64     // row s: ReliableOut(s) ∪ {s} as bits
	inMask  []uint64     // transpose of outMask (aliases outMask when undirected)
	sentBit []uint64     // this round's senders as bits
	maskFor *graph.Graph // the G core the masks encode

	// Sparse-mode CR4 index: in-adjacency of the current G (the graph itself
	// when undirected), built only when a run under CR4 can need it.
	inRows    *graph.Graph
	inRowsFor *graph.Graph

	// sizedFor is the G' core the unrel rows were last sized against; epochs
	// that share it (fade never changes G') skip the re-scan entirely.
	sizedFor *graph.Graph
}

// unrelBound returns the per-node sizing of the unreliable-delivery rows: a
// node can receive unreliable deliveries along at most its G' in-arcs. Both
// newRunBuffers and ensureCapacity size against exactly this function, so
// the initial carve and the epoch-swap overflow check can never disagree.
// (A misbehaving adversary delivering the same arc twice in a round merely
// falls back to an ordinary slice grow.)
func unrelBound(d *graph.Dual) []int32 {
	n := d.N()
	gp := d.GPrime()
	indeg := make([]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range gp.Out(graph.NodeID(u)) {
			indeg[v]++
		}
	}
	return indeg
}

// newRunBuffers builds the per-run buffer set for d, choosing the delivery
// mode from the epoch-0 reliable graph. The mode is fixed for the run —
// epochs only refresh the mode's own indexes — so the round loop never
// re-tests it per round.
func newRunBuffers(d *graph.Dual) *runBuffers {
	n := d.N()
	g := d.G()
	indeg := unrelBound(d)
	total := 0
	for _, c := range indeg {
		total += int(c)
	}
	backing := make([]graph.NodeID, total)
	unrel := make([][]graph.NodeID, n)
	off := 0
	for v := 0; v < n; v++ {
		end := off + int(indeg[v])
		unrel[v] = backing[off:off:end]
		off = end
	}
	words := (n + 63) / 64
	b := &runBuffers{
		n:            n,
		reach1:       make([]uint64, words),
		reach2:       make([]uint64, words),
		unrel:        unrel,
		unrelTouched: make([]graph.NodeID, 0, n),
		senders:      make([]graph.NodeID, 0, n),
		newHolders:   make([]graph.NodeID, 0, n),
		dense:        n <= denseMaxN && g.NumEdges()*denseArcFactor >= n*n,
		sizedFor:     d.GPrime(),
	}
	if b.dense {
		b.maskW = words
		b.sentBit = make([]uint64, words)
		b.matKey = make([]uint64, words)
		b.buildMasks(g)
	} else {
		b.touchedW = make([]int32, 0, words)
		b.firstFrom = make([]graph.NodeID, n)
	}
	return b
}

// buildMasks (re)computes the dense-mode delivery masks for reliable graph
// g: outMask row s is s's one-round reliable delivery set (out-row plus s
// itself), inMask its transpose. Undirected graphs are their own transpose,
// so both names share one array. Called at run start and again at any epoch
// swap that changes the G core.
func (b *runBuffers) buildMasks(g *graph.Graph) {
	if b.maskFor == g {
		return
	}
	size := b.n * b.maskW
	if b.outMask == nil {
		b.outMask = make([]uint64, size)
	} else {
		clear(b.outMask)
	}
	for u := 0; u < b.n; u++ {
		row := b.outMask[u*b.maskW : (u+1)*b.maskW]
		row[u>>6] |= 1 << (uint(u) & 63)
		for _, v := range g.Out(graph.NodeID(u)) {
			row[v>>6] |= 1 << (uint64(v) & 63)
		}
	}
	if !g.Directed() {
		b.inMask = b.outMask
	} else {
		if b.inMask == nil || &b.inMask[0] == &b.outMask[0] {
			b.inMask = make([]uint64, size)
		} else {
			clear(b.inMask)
		}
		for u := 0; u < b.n; u++ {
			row := b.inMask[u*b.maskW : (u+1)*b.maskW]
			row[u>>6] |= 1 << (uint(u) & 63)
		}
		for u := 0; u < b.n; u++ {
			ubit := uint64(1) << (uint(u) & 63)
			uw := u >> 6
			for _, v := range g.Out(graph.NodeID(u)) {
				b.inMask[int(v)*b.maskW+uw] |= ubit
			}
		}
	}
	b.maskFor = g
}

// ensureInRows (re)points the sparse-mode CR4 in-adjacency at the current
// reliable graph. Undirected graphs are their own transpose so this is a
// pointer copy; directed dynamic runs pay a counting-sort rebuild per
// changed epoch.
func (b *runBuffers) ensureInRows(g *graph.Graph) {
	if b.inRowsFor == g {
		return
	}
	b.inRows = g.Transpose()
	b.inRowsFor = g
}

// ensureCapacity adapts the buffers to a new epoch's network at an epoch
// swap. When every unrel row of the new network fits its existing capacity
// the buffers are kept (the caller resets them at the top of the round); any
// row that would overflow rebuilds the buffer set against the new network —
// the lazy resize that guarantees rows never alias across epochs while
// epochs with shrinking or stable in-degrees pay nothing.
func (b *runBuffers) ensureCapacity(d *graph.Dual) {
	if d.GPrime() == b.sizedFor {
		// Same frozen G' core, same in-degree bound: nothing to scan.
		return
	}
	indeg := unrelBound(d)
	for v := 0; v < d.N(); v++ {
		if int(indeg[v]) > cap(b.unrel[v]) {
			nb := newRunBuffers(d)
			// The mode is a per-run decision made against epoch 0; keep it
			// (and any already-built indexes) so the loop shape never changes
			// mid-run.
			nb.dense = b.dense
			if nb.dense && nb.sentBit == nil {
				nb.maskW = (nb.n + 63) / 64
				nb.sentBit = make([]uint64, nb.maskW)
				nb.matKey = make([]uint64, nb.maskW)
			}
			nb.outMask, nb.inMask, nb.maskFor = b.outMask, b.inMask, b.maskFor
			nb.inRows, nb.inRowsFor = b.inRows, b.inRowsFor
			if nb.firstFrom == nil && !nb.dense {
				nb.firstFrom = make([]graph.NodeID, nb.n)
			}
			*b = *nb
			return
		}
	}
	b.sizedFor = d.GPrime()
}

// clearRound resets the round state, un-marking the previous round's senders
// in sent rather than wiping all n entries. Dense mode clears whole bitset
// arrays (n/64 words, a memclr); sparse mode clears only the words the
// previous round made nonzero. Idempotent: a second call finds nothing to
// clear.
func (b *runBuffers) clearRound(sent []bool) {
	if b.dense {
		clear(b.reach1)
		clear(b.reach2)
		clear(b.sentBit)
		b.matValid = false
	} else {
		for _, w := range b.touchedW {
			b.reach1[w] = 0
			b.reach2[w] = 0
		}
		b.touchedW = b.touchedW[:0]
	}
	for _, v := range b.unrelTouched {
		b.unrel[v] = b.unrel[v][:0]
	}
	b.unrelTouched = b.unrelTouched[:0]
	for _, s := range b.senders {
		sent[s] = false
	}
	b.senders = b.senders[:0]
	b.newHolders = b.newHolders[:0]
}

func (b *runBuffers) reached(v graph.NodeID) bool {
	return b.reach1[v>>6]&(1<<(uint64(v)&63)) != 0
}

func (b *runBuffers) collided(v graph.NodeID) bool {
	return b.reach2[v>>6]&(1<<(uint64(v)&63)) != 0
}

// deliverDense ORs sender s's whole reliable delivery mask into the reach
// bitsets: one pass of word ops replaces deg(s)+1 per-edge updates. A bit
// already in reach1 is promoted into reach2, which is exactly the ≥2 count
// class (a single sender's mask never repeats a bit).
func (b *runBuffers) deliverDense(s graph.NodeID) {
	row := b.outMask[int(s)*b.maskW : (int(s)+1)*b.maskW]
	for w, mw := range row {
		if mw == 0 {
			continue
		}
		r1 := b.reach1[w]
		b.reach2[w] |= r1 & mw
		b.reach1[w] = r1 | mw
	}
	b.sentBit[s>>6] |= 1 << (uint64(s) & 63)
}

// addReach records one sparse-mode reliable delivery from s to v: first
// contact sets the reach1 bit and remembers s as the singleton answer,
// repeat contact promotes the bit into reach2. Words are registered in
// touchedW on their 0→nonzero transition so reset stays proportional to the
// round's actual traffic.
func (b *runBuffers) addReach(v, s graph.NodeID) {
	w, bit := int(v>>6), uint64(1)<<(uint64(v)&63)
	r1 := b.reach1[w]
	if r1&bit == 0 {
		if r1 == 0 {
			b.touchedW = append(b.touchedW, int32(w))
		}
		b.reach1[w] = r1 | bit
		b.firstFrom[v] = s
	} else {
		b.reach2[w] |= bit
	}
}

// addUnrel records an unreliable delivery from s to v: the reach bits update
// like a reliable delivery and the pair lands in v's unrel row, preserving
// sink-add order for lazy materialization.
func (b *runBuffers) addUnrel(v, s graph.NodeID) {
	w, bit := int(v>>6), uint64(1)<<(uint64(v)&63)
	r1 := b.reach1[w]
	if r1&bit == 0 {
		if !b.dense {
			if r1 == 0 {
				b.touchedW = append(b.touchedW, int32(w))
			}
			b.firstFrom[v] = s
		}
		b.reach1[w] = r1 | bit
	} else {
		b.reach2[w] |= bit
	}
	if len(b.unrel[v]) == 0 {
		b.unrelTouched = append(b.unrelTouched, v)
	}
	b.unrel[v] = append(b.unrel[v], s)
}

// singleReacher returns the sender of the one message reaching v; the caller
// guarantees v's count class is exactly one. Sparse mode recorded the answer
// at delivery time; dense mode recovers it as the only bit of v's in-mask
// ANDed with the sender bitset, falling back to the lone unreliable delivery.
func (b *runBuffers) singleReacher(v graph.NodeID) graph.NodeID {
	if !b.dense {
		return b.firstFrom[v]
	}
	row := b.inMask[int(v)*b.maskW : (int(v)+1)*b.maskW]
	for w, mw := range row {
		if m := mw & b.sentBit[w]; m != 0 {
			return graph.NodeID(w<<6 + bits.TrailingZeros64(m))
		}
	}
	return b.unrel[v][0]
}

// materializeReaching rebuilds the full reaching list of non-sender v in the
// order the old per-edge path produced it — reliable senders ascending, then
// unreliable deliveries in sink-add order — into a scratch slice that is
// reused on the next call. Only CR4 resolves and sink walks pay this; the
// count-class rules never do. sent is the round's sender flags (sparse mode
// filters the in-row with it; dense mode has sentBit).
func (b *runBuffers) materializeReaching(v graph.NodeID, sent []bool) []graph.NodeID {
	if b.dense {
		row := b.inMask[int(v)*b.maskW : (int(v)+1)*b.maskW]
		if len(b.unrel[v]) == 0 {
			// Memo fast path: same masked in-row as the previous unrel-free
			// materialization → same reaching list.
			if b.matValid {
				same := true
				for w, mw := range row {
					if mw&b.sentBit[w] != b.matKey[w] {
						same = false
						break
					}
				}
				if same {
					return b.mat
				}
			}
			mat := b.mat[:0]
			for w, mw := range row {
				m := mw & b.sentBit[w]
				b.matKey[w] = m
				for m != 0 {
					mat = append(mat, graph.NodeID(w<<6+bits.TrailingZeros64(m)))
					m &= m - 1
				}
			}
			b.mat = mat
			b.matValid = true
			return mat
		}
		b.matValid = false
		mat := b.mat[:0]
		for w, mw := range row {
			m := mw & b.sentBit[w]
			for m != 0 {
				mat = append(mat, graph.NodeID(w<<6+bits.TrailingZeros64(m)))
				m &= m - 1
			}
		}
		mat = append(mat, b.unrel[v]...)
		b.mat = mat
		return mat
	}
	mat := b.mat[:0]
	{
		for _, u := range b.inRows.Out(v) {
			if sent[u] {
				mat = append(mat, u)
			}
		}
	}
	mat = append(mat, b.unrel[v]...)
	b.mat = mat
	return mat
}

// Config parameterizes a run.
type Config struct {
	// Rule is the collision rule (default CR4, the weakest).
	Rule CollisionRule
	// Start is the start rule (default AsyncStart, the weakest).
	Start StartRule
	// MaxRounds caps the execution length; 0 means the default cap.
	MaxRounds int
	// Seed makes the run reproducible.
	Seed int64
	// RecordSenders stores the per-round sender process ids in the result.
	RecordSenders bool
	// RunToMaxRounds keeps executing after completion (used by lower-bound
	// drivers that inspect transcripts); by default the run stops when all
	// processes hold the message.
	RunToMaxRounds bool
}

func (c Config) withDefaults(n int) Config {
	if c.Rule == 0 {
		c.Rule = CR4
	}
	if c.Start == 0 {
		c.Start = AsyncStart
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = defaultMaxRounds(n)
	}
	return c
}

// defaultMaxRounds is a generous cap well above the paper's O(n^{3/2}√log n)
// worst case for the sizes we simulate.
func defaultMaxRounds(n int) int {
	return 200*n*n + 10000
}

// Result reports the outcome of a run.
type Result struct {
	// Completed reports whether every process received the message.
	Completed bool
	// Rounds is the round in which the last process first received the
	// message (0 when n == 1 holders initially); if not completed it is the
	// number of rounds executed.
	Rounds int
	// FirstReceive maps node -> round of first receipt of the broadcast
	// message (0 for the source, -1 if never).
	FirstReceive []int
	// Transmissions counts all transmissions across the execution.
	Transmissions int
	// SendersByRound lists the sending process ids per round (1-based round
	// r at index r-1) when Config.RecordSenders is set.
	SendersByRound [][]int
	// ProcOf is the node -> process id assignment used.
	ProcOf []int
}

// errNilFork guards the RunForker contract.
var errNilFork = errors.New("RunForker returned a nil adversary")

// Errors returned by Run.
var (
	ErrBadAssignment = errors.New("adversary returned an invalid proc assignment")
	ErrBadDelivery   = errors.New("adversary delivered along a non-unreliable edge")
	ErrBadResolve    = errors.New("adversary resolved CR4 to a non-reaching sender")
	ErrBadEpoch      = errors.New("schedule produced an epoch with a different node count or source")
)

// Run executes alg against adv on the fixed network d under cfg and returns
// the execution summary. It is exactly RunDynamic over a static schedule.
func Run(d *graph.Dual, alg Algorithm, adv Adversary, cfg Config) (*Result, error) {
	return RunDynamic(graph.Static(d), alg, adv, cfg)
}

// RunDynamic executes alg against adv on the time-varying network produced
// by sched. The run starts on epoch 0; every EpochLength rounds the current
// Dual is swapped for the next epoch — algorithm and adversary state, the
// proc assignment (made once against epoch 0), and all per-node result
// tracking survive the swap, while the adversary's EdgeID universe is the
// current epoch's (View.Dual always points at it). Epoch materialization
// derives all randomness from (epoch, cfg.Seed) via the schedule's purity
// contract, so a run is reproducible from cfg.Seed alone, and the engine's
// per-trial seed derivation extends bit-identical-at-any-worker-count
// determinism to dynamic sweeps. A static schedule takes exactly the code
// path Run always took.
func RunDynamic(sched graph.Schedule, alg Algorithm, adv Adversary, cfg Config) (*Result, error) {
	d, err := sched.Epoch(0, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("schedule epoch 0: %w", err)
	}
	n := d.N()
	cfg = cfg.withDefaults(n)
	if f, ok := adv.(RunForker); ok {
		adv, err = f.ForkRun(sched, alg, cfg)
		if err != nil {
			return nil, fmt.Errorf("fork adversary: %w", err)
		}
		if adv == nil {
			return nil, fmt.Errorf("fork adversary: %w", errNilFork)
		}
	}
	baseRng := rand.New(rand.NewSource(cfg.Seed))
	assignRng := rand.New(rand.NewSource(baseRng.Int63()))
	advRng := rand.New(rand.NewSource(baseRng.Int63()))
	procSeeds := make([]int64, n+1)
	for pid := 1; pid <= n; pid++ {
		procSeeds[pid] = baseRng.Int63()
	}

	procOf, err := adv.AssignProcs(d, assignRng)
	if err != nil {
		return nil, fmt.Errorf("assign procs: %w", err)
	}
	if err := validateAssignment(procOf, n); err != nil {
		return nil, err
	}

	procs := make([]Process, n)
	for node := 0; node < n; node++ {
		pid := procOf[node]
		procs[node] = alg.NewProcess(pid, n, rand.New(rand.NewSource(procSeeds[pid])))
	}

	src := d.Source()
	hasMsg := make([]bool, n)
	active := make([]bool, n)
	sent := make([]bool, n)
	firstRecv := make([]int, n)
	for i := range firstRecv {
		firstRecv[i] = -1
	}
	hasMsg[src] = true
	firstRecv[src] = 0

	procs[src].Start(1, true)
	active[src] = true
	if cfg.Start == SyncStart {
		for node := 0; node < n; node++ {
			if graph.NodeID(node) != src {
				procs[node].Start(1, false)
				active[node] = true
			}
		}
	}

	res := &Result{
		FirstReceive: firstRecv,
		ProcOf:       procOf,
	}
	view := &View{
		Dual:       d,
		ProcOf:     procOf,
		HasMessage: hasMsg,
		Active:     active,
		Sent:       sent,
		Rng:        advRng,
	}
	buf := newRunBuffers(d)
	if !buf.dense && cfg.Rule == CR4 {
		buf.ensureInRows(d.G())
	}
	sink := &DeliverySink{
		d:            d,
		sent:         sent,
		buf:          buf,
		scratchInts:  make([]int, n),
		scratchNodes: make([]graph.NodeID, n),
	}
	st := &runState{
		cfg:    cfg,
		sched:  sched,
		adv:    adv,
		d:      d,
		n:      n,
		src:    src,
		procs:  procs,
		procOf: procOf,
		hasMsg: hasMsg,
		active: active,
		sent:   sent,
		view:   view,
		buf:    buf,
		sink:   sink,
		res:    res,

		firstRecv: firstRecv,
		holders:   1,
	}
	// Resolve the fast path once: the type assertion must not sit in the
	// round loop.
	st.buffered, _ = adv.(BufferedDeliverer)

	// The epoch branch is hoisted out of the round loop: a static run
	// (EpochLength 0 — every sim.Run) executes a loop body with no schedule
	// test at all, so threading dynamics through the engine costs the static
	// hot path nothing. Both loops share the same clearRound + step body.
	if epochLen := sched.EpochLength(); epochLen == 0 {
		for round := 1; round <= cfg.MaxRounds; round++ {
			buf.clearRound(sent)
			if err := st.step(round); err != nil {
				return nil, err
			}
			if st.holders == n && !cfg.RunToMaxRounds {
				break
			}
		}
	} else {
		for round := 1; round <= cfg.MaxRounds; round++ {
			// The swap happens after clearRound, so the buffers carry no
			// round state across the boundary.
			buf.clearRound(sent)
			if round > 1 && (round-1)%epochLen == 0 {
				if err := st.swapEpoch((round - 1) / epochLen); err != nil {
					return nil, err
				}
			}
			if err := st.step(round); err != nil {
				return nil, err
			}
			if st.holders == n && !cfg.RunToMaxRounds {
				break
			}
		}
	}

	res.Completed = st.holders == n
	if res.Completed && !cfg.RunToMaxRounds {
		// Rounds is the completion round: the max first-receive round.
		maxRecv := 0
		for _, r := range firstRecv {
			if r > maxRecv {
				maxRecv = r
			}
		}
		res.Rounds = maxRecv
	}
	return res, nil
}

// runState bundles the per-run execution state so the static and dynamic
// round loops can share one step body without re-capturing a dozen locals.
type runState struct {
	cfg       Config
	sched     graph.Schedule
	adv       Adversary
	buffered  BufferedDeliverer
	d         *graph.Dual
	n         int
	src       graph.NodeID
	procs     []Process
	procOf    []int
	hasMsg    []bool
	active    []bool
	sent      []bool
	firstRecv []int
	view      *View
	buf       *runBuffers
	sink      *DeliverySink
	res       *Result
	holders   int
}

// swapEpoch installs the schedule's network for epoch e. Identical-pointer
// epochs (no-op churn/fade draws, cached epochs) skip the swap entirely,
// keeping the round loop allocation-free.
func (st *runState) swapEpoch(e int) error {
	nd, err := st.sched.Epoch(e, st.cfg.Seed)
	if err != nil {
		return fmt.Errorf("schedule epoch %d: %w", e, err)
	}
	if nd.N() != st.n {
		return fmt.Errorf("%w: epoch %d has %d nodes, run started with %d",
			ErrBadEpoch, e, nd.N(), st.n)
	}
	if nd.Source() != st.src {
		return fmt.Errorf("%w: epoch %d moved the source to %d, run started at %d",
			ErrBadEpoch, e, nd.Source(), st.src)
	}
	if nd == st.d {
		if metrics.Enabled() {
			mEpochSwapsNoop.Inc()
		}
		return nil
	}
	if metrics.Enabled() {
		mEpochSwaps.Inc()
	}
	st.d = nd
	st.view.Dual = nd
	st.sink.d = nd
	st.buf.ensureCapacity(nd)
	// Refresh the mode's own index against the (possibly) new G core; both
	// are keyed on the core pointer, so epochs that only change G' (never
	// the case for the built-in schedules) or return to a cached core pay a
	// pointer compare.
	if st.buf.dense {
		st.buf.buildMasks(nd.G())
	} else if st.cfg.Rule == CR4 {
		st.buf.ensureInRows(nd.G())
	}
	return nil
}

// step executes one round against the current network: decide, deliver
// (word-parallel in dense mode), then compute receptions from the count-class
// bitsets. It assumes clearRound ran first.
func (st *runState) step(round int) error {
	st.view.Round = round
	buf, d, n := st.buf, st.d, st.n
	sent, active, procs := st.sent, st.active, st.procs
	for node := 0; node < n; node++ {
		if active[node] && procs[node].Decide(round) {
			sent[node] = true
			buf.senders = append(buf.senders, graph.NodeID(node))
		}
	}
	senders := buf.senders
	st.res.Transmissions += len(senders)
	if st.cfg.RecordSenders {
		pids := make([]int, len(senders))
		for i, s := range senders {
			pids[i] = st.procOf[s]
		}
		st.res.SendersByRound = append(st.res.SendersByRound, pids)
	}

	// Reliable reachability pass: a sender's message reaches itself and
	// every reliable out-neighbour unconditionally.
	if buf.dense {
		for _, s := range senders {
			buf.deliverDense(s)
		}
	} else {
		for _, s := range senders {
			buf.addReach(s, s)
			for _, v := range d.ReliableOut(s) {
				buf.addReach(v, s)
			}
		}
	}
	// Unreliable deliveries: adversary's choice, validated by the sink.
	if len(senders) > 0 {
		st.sink.err = nil
		if st.buffered != nil {
			st.buffered.DeliverInto(st.view, senders, st.sink)
		} else {
			st.sink.addFromMap(st.adv.Deliver(st.view, senders), senders)
		}
		if st.sink.err != nil {
			return st.sink.err
		}
	}

	// Receptions come straight off the count-class bitsets; reaching lists
	// are materialized only for CR4 resolves. Broadcast/Own are evaluated
	// against the start-of-round holder set; hasMsg is only updated after
	// all receptions are computed.
	hasMsg := st.hasMsg
	for node := 0; node < n; node++ {
		v := graph.NodeID(node)
		reached := buf.reached(v)
		if !active[node] && !reached {
			// An inactive node that nothing reached hears silence and
			// cannot wake: skip it entirely.
			continue
		}
		rec, err := st.reception(v, reached)
		if err != nil {
			return err
		}
		if rec.Kind == Delivered && rec.Broadcast && !rec.Own && !hasMsg[node] {
			buf.newHolders = append(buf.newHolders, v)
		}
		switch {
		case active[node]:
			procs[node].Receive(round, rec)
		case rec.Kind == Delivered && st.cfg.Start == AsyncStart:
			// Asynchronous activation: the process wakes on its first
			// received message and observes that reception.
			procs[node].Start(round, false)
			active[node] = true
			procs[node].Receive(round, rec)
		}
	}
	for _, node := range buf.newHolders {
		hasMsg[node] = true
		st.firstRecv[node] = round
		st.holders++
	}
	st.res.Rounds = round
	return nil
}

// deliverFrom builds the Delivered reception node observes for sender s.
func (st *runState) deliverFrom(node, s graph.NodeID) Reception {
	return Reception{
		Kind:      Delivered,
		From:      s,
		FromProc:  st.procOf[s],
		Broadcast: st.hasMsg[s],
		Own:       s == node,
	}
}

// reception computes what node hears this round from its count class (not
// reached / reached once / collided) under the configured collision rule.
func (st *runState) reception(node graph.NodeID, reached bool) (Reception, error) {
	buf := st.buf
	rule := st.cfg.Rule
	if rule == CR1 {
		switch {
		case !reached:
			return Reception{Kind: Silence}, nil
		case !buf.collided(node):
			return st.deliverFrom(node, buf.singleReacher(node)), nil
		default:
			return Reception{Kind: Collision}, nil
		}
	}
	if rule != CR2 && rule != CR3 && rule != CR4 {
		return Reception{}, fmt.Errorf("unknown collision rule %v", rule)
	}
	if st.sent[node] {
		// A sender always receives its own message under CR2–CR4.
		return st.deliverFrom(node, node), nil
	}
	switch {
	case !reached:
		return Reception{Kind: Silence}, nil
	case !buf.collided(node):
		return st.deliverFrom(node, buf.singleReacher(node)), nil
	}
	switch rule {
	case CR2:
		return Reception{Kind: Collision}, nil
	case CR3:
		return Reception{Kind: Silence}, nil
	default: // CR4
		reaching := buf.materializeReaching(node, st.sent)
		choice := st.adv.Resolve(st.view, node, reaching)
		if choice == NoDelivery {
			return Reception{Kind: Silence}, nil
		}
		for _, s := range reaching {
			if s == choice {
				return st.deliverFrom(node, s), nil
			}
		}
		return Reception{}, fmt.Errorf("%w: node %d chose %d", ErrBadResolve, node, choice)
	}
}

func validateAssignment(procOf []int, n int) error {
	if len(procOf) != n {
		return fmt.Errorf("%w: length %d, want %d", ErrBadAssignment, len(procOf), n)
	}
	seen := make([]bool, n+1)
	for node, pid := range procOf {
		if pid < 1 || pid > n || seen[pid] {
			return fmt.Errorf("%w: node %d has pid %d", ErrBadAssignment, node, pid)
		}
		seen[pid] = true
	}
	return nil
}
